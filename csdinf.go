// Package csdinf is a Go implementation of the DSN-S 2024 paper
// "Empowering Data Centers with Computational Storage Drive-Based Deep
// Learning Inference Functionality to Combat Ransomware" (Friday, Bou-Harb,
// Lee, Peethambaran, Saxena).
//
// The library offloads the entire inference procedure of an LSTM classifier
// onto the FPGA of a simulated computational storage drive (Samsung
// SmartSSD class), reproducing the paper's five-kernel pipeline, its HLS
// optimization study (Fig. 3), the FPGA/CPU/GPU comparison (Table I), and
// the ransomware-detection use case trained on synthetic Cuckoo-style API
// call traces (Fig. 4, Table II, §IV metrics).
//
// The typical flow mirrors the paper end to end:
//
//	ds, _ := csdinf.BuildDataset(csdinf.DatasetConfig{Seed: 1})
//	trainDS, testDS, _ := ds.Split(0.2, 2)
//	res, _ := csdinf.Train(trainDS, testDS, csdinf.TrainConfig{Epochs: 30})
//
//	dev, _ := csdinf.NewSmartSSD(csdinf.CSDConfig{})
//	eng, _ := csdinf.Deploy(dev, res.Model, csdinf.DeployConfig{})
//	result, timing, _ := eng.PredictStored(ctx, offset) // in-storage inference
//
//	det, _ := csdinf.NewDetector(eng, csdinf.DetectorConfig{})
//	for _, call := range liveAPICalls {
//	    ev, _ := det.Observe(ctx, call) // streaming detection + mitigation
//	    _ = ev
//	}
//
// Every inference entry point — a single engine, a multi-device node, the
// concurrent serving layer, the hot-swap wrapper — implements the Inferencer
// interface and takes a context.Context, so cancellation and deadlines
// propagate from the caller down to the device queue. For sustained
// concurrent load, NewServer schedules requests over several devices with
// bounded queues and least-busy placement.
//
// All hardware (FPGA fabric and clock, SmartSSD, PCIe switch, A100/Xeon
// baselines) is simulated with calibrated timing models — see DESIGN.md for
// the substitution table — while the arithmetic (fixed-point kernels,
// training, quantization, detection) is fully functional.
package csdinf

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"github.com/kfrida1/csdinf/internal/absint"
	"github.com/kfrida1/csdinf/internal/core"
	"github.com/kfrida1/csdinf/internal/csd"
	"github.com/kfrida1/csdinf/internal/cti"
	"github.com/kfrida1/csdinf/internal/dataset"
	"github.com/kfrida1/csdinf/internal/detect"
	"github.com/kfrida1/csdinf/internal/device"
	"github.com/kfrida1/csdinf/internal/eventlog"
	"github.com/kfrida1/csdinf/internal/fleet"
	"github.com/kfrida1/csdinf/internal/fpga"
	"github.com/kfrida1/csdinf/internal/incident"
	"github.com/kfrida1/csdinf/internal/infer"
	"github.com/kfrida1/csdinf/internal/kernels"
	"github.com/kfrida1/csdinf/internal/load"
	"github.com/kfrida1/csdinf/internal/lstm"
	"github.com/kfrida1/csdinf/internal/metrics"
	"github.com/kfrida1/csdinf/internal/node"
	"github.com/kfrida1/csdinf/internal/prof"
	"github.com/kfrida1/csdinf/internal/quality"
	"github.com/kfrida1/csdinf/internal/report"
	"github.com/kfrida1/csdinf/internal/sandbox"
	"github.com/kfrida1/csdinf/internal/serve"
	"github.com/kfrida1/csdinf/internal/slo"
	"github.com/kfrida1/csdinf/internal/telemetry"
	"github.com/kfrida1/csdinf/internal/trace"
	"github.com/kfrida1/csdinf/internal/train"
	"github.com/kfrida1/csdinf/internal/vitis"
	"github.com/kfrida1/csdinf/internal/winapi"
	"github.com/kfrida1/csdinf/internal/xrt"
)

// Version is the library version.
const Version = "1.0.0"

// Core model and training types.
type (
	// Model is the embedding+LSTM+FC classifier.
	Model = lstm.Model
	// ModelConfig describes the classifier architecture.
	ModelConfig = lstm.Config
	// TrainConfig controls offline training.
	TrainConfig = train.Config
	// TrainResult is a completed training run, including the Fig. 4
	// convergence history.
	TrainResult = train.Result
	// Scores bundles accuracy/precision/recall/F1.
	Scores = metrics.Scores
	// Confusion is a binary confusion matrix.
	Confusion = metrics.Confusion
)

// Dataset types.
type (
	// Dataset is a labelled corpus of fixed-length API-call sequences.
	Dataset = dataset.Dataset
	// DatasetConfig controls corpus synthesis.
	DatasetConfig = dataset.BuildConfig
	// Sequence is one labelled example.
	Sequence = dataset.Sequence
	// Family describes one ransomware family (Table II).
	Family = sandbox.Family
)

// Device and engine types.
type (
	// SmartSSD is the simulated computational storage drive.
	SmartSSD = csd.SmartSSD
	// CSDConfig describes a SmartSSD device.
	CSDConfig = csd.Config
	// Engine is a deployed in-storage inference engine.
	Engine = core.Engine
	// DeployConfig controls engine deployment.
	DeployConfig = core.DeployConfig
	// Result is one classification.
	Result = kernels.Result
	// Timing splits a classification into transfer and compute time.
	Timing = core.Timing
	// OptLevel selects the kernel optimization level of Fig. 3.
	OptLevel = kernels.OptLevel
	// Part is an FPGA device model.
	Part = fpga.Part
	// Inferencer is the stack-wide inference contract: context-aware
	// classification of live and SSD-resident sequences. Engine, Node,
	// Server, and HotSwapEngine all implement it.
	Inferencer = infer.Inferencer
)

// Detection types.
type (
	// Detector consumes a live API-call stream and triggers in-storage
	// mitigation.
	Detector = detect.Detector
	// DetectorConfig controls the detector.
	DetectorConfig = detect.Config
	// DetectorEvent describes one classified window.
	DetectorEvent = detect.Event
)

// Optimization levels (cumulative, Fig. 3).
const (
	LevelVanilla    = kernels.LevelVanilla
	LevelII         = kernels.LevelII
	LevelFixedPoint = kernels.LevelFixedPoint
)

// Detector actions.
const (
	ActionNone  = detect.ActionNone
	ActionAlert = detect.ActionAlert
	ActionBlock = detect.ActionBlock
)

// FPGA parts.
var (
	// KU15P is the SmartSSD's Kintex UltraScale+ FPGA.
	KU15P = fpga.KU15P
	// AlveoU200 is the paper's experimental platform.
	AlveoU200 = fpga.AlveoU200
)

// Families lists the ten ransomware families of Table II.
var Families = sandbox.Families

// VocabSize is the API-call vocabulary size (278, the paper's M).
const VocabSize = winapi.VocabSize

// PaperModelConfig returns the exact architecture evaluated in the paper:
// 278-item vocabulary, embedding dimension 8, hidden size 32, softsign cell
// activation — 7,472 parameters plus the 33-parameter head.
func PaperModelConfig() ModelConfig { return lstm.PaperConfig() }

// NewModel constructs an untrained classifier with seeded initialization.
func NewModel(cfg ModelConfig, seed int64) (*Model, error) {
	return lstm.NewModel(cfg, seed)
}

// BuildDataset synthesizes an API-call corpus per the paper's Appendix A
// (sliding windows over ransomware-family and benign-application traces).
func BuildDataset(cfg DatasetConfig) (*Dataset, error) { return dataset.Build(cfg) }

// ReadDatasetCSV parses a corpus in the paper's n+1-column CSV format.
func ReadDatasetCSV(r io.Reader) (*Dataset, error) { return dataset.ReadCSV(r) }

// Train fits a fresh classifier on trainDS, evaluating on testDS, and
// records the convergence trajectory (Fig. 4).
func Train(trainDS, testDS *Dataset, cfg TrainConfig) (*TrainResult, error) {
	return train.Train(trainDS, testDS, cfg)
}

// Evaluate runs a model over a dataset and returns the confusion matrix.
func Evaluate(m *Model, ds *Dataset) (Confusion, error) { return train.Evaluate(m, ds) }

// LoadWeights parses a model from the text weight format exported by
// SaveWeights (the §III-A host-initialization file).
func LoadWeights(r io.Reader) (*Model, error) { return lstm.ReadText(r) }

// SaveWeights writes the model in the text weight format.
func SaveWeights(m *Model, w io.Writer) error { return m.WriteText(w) }

// NewSmartSSD builds a simulated computational storage drive.
func NewSmartSSD(cfg CSDConfig) (*SmartSSD, error) { return csd.New(cfg) }

// Deploy initializes the CSD's FPGA with the trained model and returns the
// in-storage inference engine.
func Deploy(dev *SmartSSD, m *Model, cfg DeployConfig) (*Engine, error) {
	return core.Deploy(dev, m, cfg)
}

// NewDetector builds a streaming ransomware detector over a deployed
// engine (or any detect.Predictor).
func NewDetector(pred detect.Predictor, cfg DetectorConfig) (*Detector, error) {
	return detect.New(pred, cfg)
}

// APIName returns the Windows API name for a vocabulary ID.
func APIName(id int) (string, error) { return winapi.Name(id) }

// APIID returns the stable vocabulary ID of a Windows API name.
func APIID(name string) (int, error) { return winapi.ID(name) }

// ErrStreamBlocked is returned by Detector.Observe after mitigation has
// fired: the device has quarantined writes and the stream is contained.
var ErrStreamBlocked = detect.ErrBlocked

// BenignApps lists the 30 portable applications whose executions form the
// benign half of the corpus (Appendix A).
var BenignApps = sandbox.BenignApps

// RansomwareTrace generates a synthetic sandbox trace of the given family
// variant — length API-call IDs, deterministic per seed.
func RansomwareTrace(family string, variant, length int, seed int64) ([]int, error) {
	p, err := sandbox.RansomwareProfile(family, variant)
	if err != nil {
		return nil, err
	}
	return p.Generate(length, seed)
}

// BenignTrace generates a synthetic execution trace of one of the benign
// applications in BenignApps.
func BenignTrace(app string, length int, seed int64) ([]int, error) {
	p, err := sandbox.BenignProfile(app)
	if err != nil {
		return nil, err
	}
	return p.Generate(length, seed)
}

// DesktopTrace generates a manual-desktop-interaction trace (the paper's
// second benign source).
func DesktopTrace(length int, seed int64) ([]int, error) {
	return sandbox.ManualInteractionProfile().Generate(length, seed)
}

// Fleet and maintenance types (multi-device nodes, CTI-driven updates).
type (
	// Node is a host with several CSD inference engines.
	Node = node.Node
	// NodeConfig describes a multi-CSD node.
	NodeConfig = node.Config
	// NodeBatchResult is the outcome of a fan-out classification.
	NodeBatchResult = node.BatchResult
	// Updater maintains the corpus and hot-swaps retrained models.
	Updater = cti.Updater
	// UpdaterConfig controls the updater.
	UpdaterConfig = cti.Config
	// UpdateResult summarizes one retraining generation.
	UpdateResult = cti.UpdateResult
	// HotSwapEngine is a detector predictor whose engine can be replaced
	// atomically while a stream is live.
	HotSwapEngine = cti.HotSwapEngine
	// AnalysisReport is a Cuckoo-style sandbox analysis report.
	AnalysisReport = report.Report
)

// LevelMixed is the mixed-precision configuration (paper §VI future work):
// DSP-packed narrow gate MACs with a full-precision cell path, sized to fit
// the SmartSSD's own KU15P.
const LevelMixed = kernels.LevelMixed

// NewNode deploys the model to several fresh CSDs and returns the
// node-level scheduler.
func NewNode(m *Model, cfg NodeConfig) (*Node, error) { return node.New(m, cfg) }

// Serving types (the concurrent request-scheduling layer).
type (
	// Server schedules inference requests over several single-stream CSD
	// engines: bounded per-device queues, least-busy placement, stored-scan
	// batching, and context cancellation end-to-end.
	Server = serve.Server
	// ServeConfig controls the request scheduler.
	ServeConfig = serve.Config
	// ServerDeviceStats describes one device's serving activity.
	ServerDeviceStats = serve.DeviceStats
)

// Device registry types (shared device identity and lifecycle).
type (
	// DeviceRegistry owns CSD identity (stable "csd-000"-style IDs),
	// lifecycle state, and capacity accounting for every serving layer.
	DeviceRegistry = device.Registry
	// DeviceRegistryConfig controls a device registry.
	DeviceRegistryConfig = device.Config
	// Device is one registered drive.
	Device = device.Device
	// DeviceID is a stable device identity.
	DeviceID = device.ID
	// DeviceState is a device lifecycle state (provisioning, ready,
	// draining, failed).
	DeviceState = device.State
	// DeviceChange describes one lifecycle transition, as delivered to
	// registry watchers.
	DeviceChange = device.Change
)

// NewDeviceRegistry builds an empty shared device registry.
func NewDeviceRegistry(cfg DeviceRegistryConfig) *DeviceRegistry {
	return device.NewRegistry(cfg)
}

// Fleet types (the rack-scale serving layer).
type (
	// Fleet serves inference over N CSD nodes with tenant-aware placement,
	// QoS admission, and device lifecycle flows.
	Fleet = fleet.Fleet
	// FleetConfig controls a fleet.
	FleetConfig = fleet.Config
	// FleetClass is one QoS admission class (a named share of fleet
	// in-flight capacity).
	FleetClass = fleet.Class
	// FleetNodeStats describes one fleet node's serving activity.
	FleetNodeStats = fleet.NodeStats
)

// Fleet errors.
var (
	// ErrFleetAdmission is returned when a request's QoS class is at its
	// in-flight cap.
	ErrFleetAdmission = fleet.ErrAdmission
	// ErrNoReadyDevice is returned when every device is out of rotation.
	ErrNoReadyDevice = serve.ErrNoReadyDevice
)

// WithTenant stamps a tenant identity on a context; the fleet places all
// of a tenant's requests on the same device via consistent hashing.
func WithTenant(ctx context.Context, tenant string) context.Context {
	return infer.WithTenant(ctx, tenant)
}

// Serving errors.
var (
	// ErrQueueFull is the scheduler's backpressure signal when a device
	// queue has no room (and ServeConfig.Block is false).
	ErrQueueFull = serve.ErrQueueFull
	// ErrServerClosed is returned for requests submitted to, or still
	// queued in, a closed server.
	ErrServerClosed = serve.ErrClosed
)

// NewServer deploys the model to nodeCfg.Devices fresh CSDs and starts the
// concurrent request scheduler over them. Close the server to stop its
// device workers. Each CSD is registered in the device registry
// (serveCfg.Devices, or a private one) and keeps its registry ID
// ("csd-000", "csd-001", ...) across every layer: telemetry labels, trace
// track groups, incident attribution, and event device fields. When
// serveCfg.Telemetry is set it is threaded into each engine deployment
// (unless nodeCfg.Deploy.Telemetry is already set), so the engines'
// transfer/compute histograms land in the same registry as the scheduler's
// queue metrics.
func NewServer(m *Model, nodeCfg NodeConfig, serveCfg ServeConfig) (*Server, error) {
	devices := nodeCfg.Devices
	if devices == 0 {
		devices = 1
	}
	if devices < 0 {
		return nil, fmt.Errorf("csdinf: device count must be positive, got %d", devices)
	}
	if serveCfg.Handles != nil {
		return nil, fmt.Errorf("csdinf: NewServer deploys its own devices; leave ServeConfig.Handles nil")
	}
	deploy := nodeCfg.Deploy
	if deploy.Telemetry == nil {
		deploy.Telemetry = serveCfg.Telemetry
	}
	if deploy.Trace == nil {
		deploy.Trace = serveCfg.Trace
	}
	if serveCfg.Devices == nil {
		serveCfg.Devices = device.NewRegistry(device.Config{
			Telemetry: serveCfg.Telemetry, Events: serveCfg.Events,
		})
	}
	engines := make([]Inferencer, devices)
	handles := make([]*Device, devices)
	for i := range engines {
		h := serveCfg.Devices.Register()
		handles[i] = h
		dev, err := csd.New(nodeCfg.CSD)
		if err != nil {
			return nil, fmt.Errorf("csdinf: device %s: %w", h.ID(), err)
		}
		devDeploy := deploy
		if devDeploy.TraceName == "" {
			devDeploy.TraceName = string(h.ID())
		}
		eng, err := core.Deploy(dev, m, devDeploy)
		if err != nil {
			return nil, fmt.Errorf("csdinf: deploy to device %s: %w", h.ID(), err)
		}
		engines[i] = eng
		if err := h.SetReady("deployed"); err != nil {
			return nil, err
		}
	}
	serveCfg.Handles = handles
	return serve.New(engines, serveCfg)
}

// NewFleet deploys the model to fleetCfg.Nodes fresh CSDs and starts the
// rack-scale serving layer: tenant-aware consistent-hash placement,
// per-class QoS admission, and drain/fail/rejoin lifecycle flows over the
// shared device registry.
func NewFleet(m *Model, fleetCfg FleetConfig) (*Fleet, error) {
	return fleet.New(m, fleetCfg)
}

// NewUpdater trains an initial model on the base corpus, deploys it, and
// returns the CTI-driven maintenance loop.
func NewUpdater(base *Dataset, cfg UpdaterConfig) (*Updater, *UpdateResult, error) {
	return cti.NewUpdater(base, cfg)
}

// ReportFromTrace wraps an API-call trace in a Cuckoo-style analysis
// report (see internal/report for the schema).
func ReportFromTrace(name, family string, variant int, trace []int) (*AnalysisReport, error) {
	return report.FromTrace(
		report.Info{Category: "file", Machine: "win10-x64", Package: "exe"},
		report.Target{Name: name, Family: family, Variant: variant},
		trace,
	)
}

// ReadReport parses a Cuckoo-style JSON analysis report.
func ReadReport(r io.Reader) (*AnalysisReport, error) { return report.Read(r) }

// DatasetFromTraces windows labelled traces into a corpus (the ingestion
// path for externally supplied sandbox reports).
func DatasetFromTraces(traces []dataset.LabeledTrace, window, stride int, seed int64) (*Dataset, error) {
	return dataset.FromTraces(traces, window, stride, seed)
}

// LabeledTrace is a full-length API-call trace with its label.
type LabeledTrace = dataset.LabeledTrace

// Toolchain and runtime types (the SmartSSD development toolkit of §II).
type (
	// FPGABinary is a linked FPGA binary (.xclbin) with its build report.
	FPGABinary = vitis.Binary
	// RuntimeDevice is an XRT-style handle to an opened CSD.
	RuntimeDevice = xrt.Device
	// BufferObject is a device-resident DDR buffer (XRT BO).
	BufferObject = xrt.BO
	// KernelHandle launches runs of a placed kernel.
	KernelHandle = xrt.Kernel
)

// BuildFPGABinary compiles the paper model's three kernels at the given
// optimization level and links them against the platform — the v++ flow
// (§IV). It fails with a resource error when the design does not fit, e.g.
// LevelFixedPoint on the KU15P.
func BuildFPGABinary(level OptLevel, part Part) (*FPGABinary, error) {
	specs, err := kernels.Specs(lstm.PaperConfig(), kernels.Config{Level: level, Part: part})
	if err != nil {
		return nil, err
	}
	objs := make([]*vitis.KernelObject, 0, len(specs))
	for _, spec := range specs {
		obj, err := vitis.Compile(spec)
		if err != nil {
			return nil, err
		}
		objs = append(objs, obj)
	}
	return vitis.Link(objs, part)
}

// OpenRuntime attaches the XRT-style runtime to a CSD.
func OpenRuntime(dev *SmartSSD) (*RuntimeDevice, error) { return xrt.Open(dev) }

// Numeric static-analysis types (the interval-domain abstract interpreter
// over the fixed-point datapath — see internal/absint). Deploy runs this
// analysis automatically for fixed-point engines and refuses models it
// cannot prove overflow-free; AnalyzeNumerics exposes the same verdict
// directly, e.g. to pick a scale before deployment or to inspect per-stage
// headroom. The CLI front end is `csdlint ranges`.
type (
	// NumericReport is the per-stage interval analysis of one (model,
	// scale, sequence-length) deployment; OverflowFree gives the verdict.
	NumericReport = absint.Report
	// NumericStageRange is one datapath stage's proven [lo, hi] bounds,
	// bit width, and headroom.
	NumericStageRange = absint.StageRange
	// NumericAnalysisConfig parameterizes an analysis run; the zero value
	// analyzes the paper's deployment (scale 10⁶, sequence length 100).
	NumericAnalysisConfig = absint.Config
)

// AnalyzeNumerics proves (or refutes) that the model's fixed-point datapath
// fits int64 at the configured scale and sequence length.
func AnalyzeNumerics(m *Model, cfg NumericAnalysisConfig) (*NumericReport, error) {
	return absint.Analyze(m, cfg)
}

// Per-process detection types.
type (
	// DetectorMux demultiplexes a system-wide API-call stream into
	// per-process detectors.
	DetectorMux = detect.Mux
	// DetectorMuxConfig controls the demultiplexer.
	DetectorMuxConfig = detect.MuxConfig
	// ProcessEvent is a classified window attributed to a process.
	ProcessEvent = detect.ProcessEvent
	// ScoredPrediction is one example's probability and ground truth.
	ScoredPrediction = metrics.ScoredPrediction
)

// NewDetectorMux builds a per-process detector demultiplexer.
func NewDetectorMux(pred detect.Predictor, cfg DetectorMuxConfig) (*DetectorMux, error) {
	return detect.NewMux(pred, cfg)
}

// Score runs the model over a dataset and returns per-sequence scored
// predictions for threshold-independent evaluation.
func Score(m *Model, ds *Dataset) ([]ScoredPrediction, error) { return train.Score(m, ds) }

// Telemetry types (the zero-dependency metrics and tracing core). A single
// Telemetry registry can be threaded through ServeConfig, NodeConfig,
// DeployConfig, DetectorConfig, and UpdaterConfig so the whole stack reports
// into one exposition surface.
type (
	// Telemetry is a registry of named counters, gauges, and latency
	// histograms with Prometheus text, JSON, and summary-table exposition.
	Telemetry = telemetry.Registry
	// TelemetryCounter is a monotonically increasing metric.
	TelemetryCounter = telemetry.Counter
	// TelemetryGauge is a set/add instantaneous metric.
	TelemetryGauge = telemetry.Gauge
	// TelemetryHistogram is a lock-free fixed-bucket latency histogram.
	TelemetryHistogram = telemetry.Histogram
	// TelemetrySnapshot summarizes a histogram: count, mean ± 95% CI, and
	// p50/p90/p99 estimates (the shape of the paper's Table I).
	TelemetrySnapshot = telemetry.HistogramSnapshot
	// Span records the phases of one request's trip through the pipeline:
	// queue wait → SSD transfer → FPGA compute → verdict.
	Span = telemetry.Span
	// SpanLog is a fixed-capacity ring of recently completed spans.
	SpanLog = telemetry.SpanLog
)

// Trace types (the device-level timeline tracer and cycle profiler, the
// reproduction's Vitis Analyzer analogue — see internal/trace).
type (
	// Tracer records timestamped begin/end events on per-CU / DDR / PCIe /
	// SSD / queue tracks; export with WriteChrome (Perfetto-loadable) or
	// aggregate with Profile.
	Tracer = trace.Tracer
	// TraceEvent is one completed interval on a track.
	TraceEvent = trace.Event
	// TraceProfile is the aggregated cycle/occupancy/overlap report.
	TraceProfile = trace.Profile
)

// NewTracer builds an empty timeline tracer. Thread it through
// ServeConfig.Trace (or DeployConfig.Trace for a single engine) and export
// with WriteChrome or Profile after the run.
func NewTracer() *Tracer { return trace.New() }

// NewTelemetry builds an empty metrics registry.
func NewTelemetry() *Telemetry { return telemetry.NewRegistry() }

// NewSpanLog builds a ring that retains the last capacity completed spans.
func NewSpanLog(capacity int) *SpanLog { return telemetry.NewSpanLog(capacity) }

// NewTelemetryHandler returns an http.Handler serving the registry at
// /metrics (Prometheus text format), /metrics.json (JSON snapshot plus
// recent spans), and /healthz. spans may be nil.
func NewTelemetryHandler(r *Telemetry, spans *SpanLog) http.Handler {
	return telemetry.NewHTTPHandler(r, spans)
}

// Event log types (the structured, leveled JSON-lines domain-event layer of
// the observability stack — see internal/eventlog). An EventLogger threaded
// through ServeConfig, DeployConfig, DetectorConfig, and UpdaterConfig
// records what happened — alerts, mitigations, model swaps, queue
// rejections — with trace-job and process correlation IDs; a nil logger is
// inert.
type (
	// EventLogger is the concurrency-safe structured event logger: bounded
	// in-memory ring plus non-blocking fan-out to attached Sinks.
	EventLogger = eventlog.Logger
	// EventLogConfig controls an EventLogger (minimum level, ring size,
	// sink queue bound).
	EventLogConfig = eventlog.Config
	// LoggedEvent is one structured record: sequence, time, level,
	// component, event name, correlation IDs, and typed fields.
	LoggedEvent = eventlog.Event
	// EventField is one structured key/value attribute of an event.
	EventField = eventlog.Field
	// EventLevel is an event severity (debug, info, warn, error).
	EventLevel = eventlog.Level
	// EventSink receives events from an EventLogger; slow sinks drop (and
	// count) rather than block emission.
	EventSink = eventlog.Sink
	// EventSinkStats reports one sink's written/dropped/error counters.
	EventSinkStats = eventlog.SinkStats
)

// Event severities, re-exported for EventLogConfig.MinLevel.
const (
	EventLevelDebug = eventlog.LevelDebug
	EventLevelInfo  = eventlog.LevelInfo
	EventLevelWarn  = eventlog.LevelWarn
	EventLevelError = eventlog.LevelError
)

// NewEventLogger builds a structured event logger.
func NewEventLogger(cfg EventLogConfig) *EventLogger { return eventlog.New(cfg) }

// NewEventFileSink opens (or truncates) a JSON-lines event file; attach the
// result with EventLogger.Attach.
func NewEventFileSink(path string) (EventSink, error) { return eventlog.NewFileSink(path) }

// Incident forensics types (see internal/incident): the recorder turns the
// per-process detection stream into SOC-facing forensic records.
type (
	// Incident is one flagged process's forensic record: confidence
	// trajectory, timestamps, model generation, device and queue-wait
	// attribution, and correlated trace job IDs.
	Incident = incident.Incident
	// IncidentWindow is one classified window inside an incident's
	// trajectory.
	IncidentWindow = incident.Window
	// IncidentRecorder accumulates incidents from detector window samples
	// and mux evictions.
	IncidentRecorder = incident.Recorder
	// IncidentConfig controls an IncidentRecorder.
	IncidentConfig = incident.Config
	// WindowSample is one classified window with its cross-layer
	// attribution (job ID, device, pipeline phases) — the payload of
	// DetectorConfig.OnWindow.
	WindowSample = detect.WindowSample
)

// NewIncidentRecorder builds an incident recorder. Wire its Window method
// to DetectorConfig.OnWindow and its Evict method to DetectorMuxConfig's
// OnEvict so every flagged process yields a forensic record.
func NewIncidentRecorder(cfg IncidentConfig) (*IncidentRecorder, error) {
	return incident.NewRecorder(cfg)
}

// AUC computes the area under the ROC curve of scored predictions.
func AUC(preds []ScoredPrediction) (float64, error) { return metrics.AUC(preds) }

// SLO types (the error-budget and burn-rate alerting layer — see
// internal/slo): declarative objectives over latency, availability, and
// detection windows, evaluated into rolling multi-window error budgets with
// Google-SRE-style multi-window multi-burn-rate alerts.
type (
	// SLObjective declares one service-level objective.
	SLObjective = slo.Objective
	// SLOKind selects what an objective measures (latency, availability,
	// detection windows-until-flagged).
	SLOKind = slo.Kind
	// BurnRule is one multi-window burn-rate alert rule.
	BurnRule = slo.Rule
	// SLOEvaluator ingests request outcomes and judges objectives; a nil
	// evaluator is inert, like the other observability hooks.
	SLOEvaluator = slo.Evaluator
	// SLOConfig wires objectives, rules, and the observability stack into
	// an evaluator.
	SLOConfig = slo.Config
	// SLOStatus is one evaluation pass: per-objective attainment, budget
	// remaining, burn rates, and the recent alert transitions.
	SLOStatus = slo.Status
	// SLObjectiveStatus is one objective's judgment inside an SLOStatus.
	SLObjectiveStatus = slo.ObjectiveStatus
)

// Objective kinds.
const (
	SLOAvailability  = slo.KindAvailability
	SLOLatency       = slo.KindLatency
	SLODetection     = slo.KindDetection
	SLORecall        = slo.KindRecall
	SLOFalsePositive = slo.KindFalsePositive
)

// NewSLOEvaluator builds an SLO evaluator over the given objectives.
func NewSLOEvaluator(cfg SLOConfig) (*SLOEvaluator, error) { return slo.NewEvaluator(cfg) }

// DefaultBurnRules returns the standard fast/slow multi-window burn-rate
// alert pair scaled to an objective window.
func DefaultBurnRules(window time.Duration) []BurnRule { return slo.DefaultRules(window) }

// Load-generation types (the open-loop generator behind cmd/csdload — see
// internal/load): Poisson or bursty arrivals dispatched at their scheduled
// times with coordinated-omission-safe latency measurement.
type (
	// LoadConfig describes one open-loop load run.
	LoadConfig = load.Config
	// LoadResult is a completed run's report: throughput, latency from
	// intended arrival, error taxonomy, SLO status, and chaos outcomes.
	LoadResult = load.Result
	// LoadTarget is anything csdload can drive — Fleet and Server both
	// satisfy it.
	LoadTarget = load.Target
	// ChaosStep is one scheduled mid-run disturbance (drain, fail, rejoin).
	ChaosStep = load.ChaosStep
)

// RunLoad executes an open-loop load run against a fleet or server and
// returns the SLO attainment report.
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadResult, error) {
	return load.Run(ctx, cfg)
}

// Continuous-profiling types (the always-on runtime profiler and hot-path
// cost attribution layer — see internal/prof): a background sampler over
// scheduler/heap/GC/contention state, per-request pipeline-stage breakdowns,
// and a bounded flight recorder dumped on incidents. A nil Profiler is
// inert, like every other observability hook.
type (
	// Profiler is the continuous profiler: background runtime sampling,
	// per-stage cost aggregation, and the flight-recorder ring.
	Profiler = prof.Profiler
	// ProfilerConfig controls sampling period, ring capacities, contention
	// profiling rates, and the telemetry/eventlog wiring.
	ProfilerConfig = prof.Config
	// ProfSample is one runtime sample: goroutines, heap, GC pauses, and
	// top contended sites.
	ProfSample = prof.Sample
	// Breakdown is one request's per-stage wall-clock (and optional
	// allocation) attribution; it rides the context like a Span.
	Breakdown = prof.Breakdown
	// ProfStage names one pipeline stage of a Breakdown.
	ProfStage = prof.Stage
	// FlightDump is the flight recorder's exported state: recent runtime
	// samples and request breakdowns around an incident.
	FlightDump = prof.FlightDump
	// ProfSnapshot is the profiler's full exported state (the /prof.json
	// document).
	ProfSnapshot = prof.Snapshot
)

// Pipeline stages of a request Breakdown.
const (
	StageQueue    = prof.StageQueue
	StageEncode   = prof.StageEncode
	StageTransfer = prof.StageTransfer
	StageCompute  = prof.StageCompute
	StageVerdict  = prof.StageVerdict
	StageObserve  = prof.StageObserve
)

// NewProfiler starts a continuous profiler. Thread it through
// ServeConfig.Prof, FleetConfig.Prof, or DetectorConfig.Prof; serve its
// Handler at /prof.json; and wire IncidentConfig.OnOpen to WriteFlight for
// incident-correlated flight dumps. Close it to stop the sampler.
func NewProfiler(cfg ProfilerConfig) (*Profiler, error) { return prof.New(cfg) }

// Detection-quality types (observability layer 6 — see internal/quality):
// ground-truth labels ride the request context, every classified window
// feeds an online confusion matrix with per-family breakdowns and
// detection-latency distributions, and a PSI drift detector watches the
// live score distribution against a pinned reference. A nil
// QualityScorecard is inert, like every other observability hook.
type (
	// QualityLabel is the ground-truth label riding a request context.
	QualityLabel = quality.Label
	// QualityScorecard is the online detection-quality aggregate behind
	// /quality.json.
	QualityScorecard = quality.Scorecard
	// QualityConfig wires the scorecard into telemetry, events, the SLO
	// feedback hook, and the drift reference.
	QualityConfig = quality.Config
	// QualityVerdict is one classified window as the scorecard sees it.
	QualityVerdict = quality.Verdict
	// QualitySnapshot is the scorecard's full exported state (the
	// /quality.json document).
	QualitySnapshot = quality.Snapshot
	// QualityReference is a pinned score distribution for PSI drift
	// detection.
	QualityReference = quality.Reference
)

// NewQualityScorecard builds a detection-quality scorecard. Thread it
// through DetectorConfig.Quality or LoadConfig.Quality, stamp generated
// traffic with WithQualityLabel, and wire QualityConfig.SLO to
// (*SLOEvaluator).Quality so recall and false-positive objectives burn on
// misclassification.
func NewQualityScorecard(cfg QualityConfig) (*QualityScorecard, error) { return quality.New(cfg) }

// WithQualityLabel stamps a ground-truth label onto a request context; the
// family string is sanitized to a bounded telemetry-legal value.
func WithQualityLabel(ctx context.Context, l QualityLabel) context.Context {
	return quality.WithLabel(ctx, l)
}

// QualityLabelFrom returns the ground-truth label stamped on the context,
// if any.
func QualityLabelFrom(ctx context.Context) (QualityLabel, bool) { return quality.LabelFrom(ctx) }

// NewQualityReference builds a pinned score-distribution reference from
// raw verdict probabilities observed in a known-good run.
func NewQualityReference(name string, scores []float64) (*QualityReference, error) {
	return quality.NewReference(name, scores)
}

// LoadQualityReference reads a pinned score-distribution reference (as
// written by WriteQualityReference or csdbench -quality-write-reference).
func LoadQualityReference(path string) (*QualityReference, error) {
	return quality.LoadReference(path)
}

// WriteQualityReference pins a reference score distribution to disk.
func WriteQualityReference(path string, r *QualityReference) error {
	return quality.WriteReference(path, r)
}
