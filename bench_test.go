package csdinf

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation, plus ablations for the design choices DESIGN.md calls out.
//
// Simulated FPGA time is reported through b.ReportMetric as "sim_µs/item"
// (the quantity the paper's figures plot); ns/op measures how fast the
// simulation itself runs on the build machine and is not a paper metric.
// `go test -bench . -benchmem` regenerates everything; cmd/csdbench prints
// the same results as formatted tables.

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"github.com/kfrida1/csdinf/internal/baseline"
	"github.com/kfrida1/csdinf/internal/core"
	"github.com/kfrida1/csdinf/internal/dataset"
	"github.com/kfrida1/csdinf/internal/experiments"
	"github.com/kfrida1/csdinf/internal/fpga"
	"github.com/kfrida1/csdinf/internal/hls"
	"github.com/kfrida1/csdinf/internal/kernels"
	"github.com/kfrida1/csdinf/internal/lstm"
	"github.com/kfrida1/csdinf/internal/train"
)

func paperModel(b *testing.B) *lstm.Model {
	b.Helper()
	m, err := lstm.NewModel(lstm.PaperConfig(), 1)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func paperSeq() []int {
	seq := make([]int, 100)
	rng := rand.New(rand.NewSource(7))
	for i := range seq {
		seq[i] = rng.Intn(278)
	}
	return seq
}

// benchFig3Level classifies full sequences at one optimization level and
// reports the simulated per-item latency (the Fig. 3 bar heights).
func benchFig3Level(b *testing.B, level kernels.OptLevel) {
	m := paperModel(b)
	p, err := kernels.New(m, kernels.Config{Level: level, Part: fpga.AlveoU200})
	if err != nil {
		b.Fatal(err)
	}
	seq := paperSeq()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := p.Classify(seq); err != nil {
			b.Fatal(err)
		}
	}
	pre, g, h, tot := p.KernelMicros()
	b.ReportMetric(pre, "sim_pre_µs/item")
	b.ReportMetric(g, "sim_gates_µs/item")
	b.ReportMetric(h, "sim_hidden_µs/item")
	b.ReportMetric(tot, "sim_µs/item")
}

// Fig. 3: per-kernel inference time under each cumulative optimization.
func BenchmarkFig3_Vanilla(b *testing.B)    { benchFig3Level(b, kernels.LevelVanilla) }
func BenchmarkFig3_II(b *testing.B)         { benchFig3Level(b, kernels.LevelII) }
func BenchmarkFig3_FixedPoint(b *testing.B) { benchFig3Level(b, kernels.LevelFixedPoint) }

// Table I, FPGA row: the fully-optimized per-item forward pass (paper:
// 2.15133 µs).
func BenchmarkTableI_FPGA(b *testing.B) {
	benchFig3Level(b, kernels.LevelFixedPoint)
}

// Table I, CPU row: per-item latency samples from the calibrated
// framework-dispatch model (paper: 991.58 µs mean).
func BenchmarkTableI_CPUModel(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var sum float64
	for i := 0; i < b.N; i++ {
		sum += baseline.CPUXeon.SampleItem(rng)
	}
	b.ReportMetric(sum/float64(b.N), "sim_µs/item")
}

// Table I, GPU row: per-item latency samples from the calibrated
// kernel-launch model (paper: 741.35 µs mean).
func BenchmarkTableI_GPUModel(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var sum float64
	for i := 0; i < b.N; i++ {
		sum += baseline.GPUA100.SampleItem(rng)
	}
	b.ReportMetric(sum/float64(b.N), "sim_µs/item")
}

// Table I honesty row: the real, framework-free Go forward pass measured on
// this machine (per item = per 100-item sequence / 100).
func BenchmarkTableI_GoCPU(b *testing.B) {
	m := paperModel(b)
	seq := paperSeq()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Forward(seq); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	perItemUS := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / 100 / 1000
	b.ReportMetric(perItemUS, "real_µs/item")
}

// Fig. 4: cost of one training epoch (the x-axis unit of the convergence
// curve) on a 1/40-scale corpus.
func BenchmarkFig4_TrainingEpoch(b *testing.B) {
	ds, err := dataset.Build(dataset.BuildConfig{
		RansomwareCount: 304, BenignCount: 341, Window: 100, Stride: 25, Seed: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	trainDS, testDS, err := ds.Split(0.2, 5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := train.Train(trainDS, testDS, train.Config{
			Epochs: 1, BatchSize: 32, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// Table II: synthesizing the ransomware/benign corpus at 1/10 scale
// (sandbox traces + sliding-window extraction + shuffle).
func BenchmarkTableII_DatasetGeneration(b *testing.B) {
	cfg := dataset.BuildConfig{
		RansomwareCount: 1334, BenignCount: 1566, Window: 100, Stride: 25, Seed: 6,
	}
	for i := 0; i < b.N; i++ {
		if _, err := dataset.Build(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// §IV metrics: evaluation throughput of a trained model over a held-out set.
func BenchmarkMetrics_Evaluate(b *testing.B) {
	ds, err := dataset.Build(dataset.BuildConfig{
		RansomwareCount: 152, BenignCount: 155, Window: 100, Stride: 50, Seed: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	m := paperModel(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := train.Evaluate(m, ds); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation (§II): P2P transfer through the on-board switch vs the
// traditional host-mediated path, for one stored 100-item sequence.
func BenchmarkAblation_P2PvsHost(b *testing.B) {
	setup := func(b *testing.B) (*SmartSSD, *Engine) {
		b.Helper()
		dev, err := NewSmartSSD(CSDConfig{})
		if err != nil {
			b.Fatal(err)
		}
		m := paperModel(b)
		eng, err := Deploy(dev, m, DeployConfig{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dev.StoreSequence(0, paperSeq()); err != nil {
			b.Fatal(err)
		}
		return dev, eng
	}
	b.Run("p2p", func(b *testing.B) {
		_, eng := setup(b)
		var last Timing
		for i := 0; i < b.N; i++ {
			_, timing, err := eng.PredictStored(context.Background(), 0)
			if err != nil {
				b.Fatal(err)
			}
			last = timing
		}
		b.ReportMetric(float64(last.Transfer.Nanoseconds())/1000, "sim_xfer_µs")
	})
	b.Run("host", func(b *testing.B) {
		_, eng := setup(b)
		var last Timing
		for i := 0; i < b.N; i++ {
			_, timing, err := eng.PredictStoredViaHost(context.Background(), 0)
			if err != nil {
				b.Fatal(err)
			}
			last = timing
		}
		b.ReportMetric(float64(last.Transfer.Nanoseconds())/1000, "sim_xfer_µs")
	})
}

// Ablation (§III-C): the four-CU gate parallelization vs serializing onto
// fewer compute units.
func BenchmarkAblation_GateCUs(b *testing.B) {
	m := paperModel(b)
	for _, cus := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "cu1", 2: "cu2", 4: "cu4"}[cus], func(b *testing.B) {
			p, err := kernels.New(m, kernels.Config{Level: kernels.LevelVanilla, GateCUs: cus})
			if err != nil {
				b.Fatal(err)
			}
			seq := paperSeq()
			for i := 0; i < b.N; i++ {
				if _, _, err := p.Classify(seq); err != nil {
					b.Fatal(err)
				}
			}
			_, _, _, tot := p.KernelMicros()
			b.ReportMetric(tot, "sim_µs/item")
		})
	}
}

// Ablation (§III-D): unroll-factor sweep of the fixed-point gate MAC loop —
// the latency/DSP trade-off that motivates full unrolling.
func BenchmarkAblation_Unroll(b *testing.B) {
	for _, u := range []int{1, 4, 16, 64, 256, 1280} {
		b.Run(map[int]string{1: "u1", 4: "u4", 16: "u16", 64: "u64", 256: "u256", 1280: "u1280"}[u],
			func(b *testing.B) {
				loop := hls.Loop{
					Name: "mac", Trip: 1280,
					Body:           []hls.Op{hls.IntMul, hls.IntAdd},
					Pipeline:       true,
					Unroll:         u,
					ArrayPartition: true,
				}
				var s hls.Schedule
				var err error
				for i := 0; i < b.N; i++ {
					s, err = hls.ScheduleLoop(loop)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(s.Cycles)/300, "sim_µs")
				b.ReportMetric(float64(s.Res.DSP), "DSPs")
			})
	}
}

// Ablation (§III-D): softsign vs tanh — the activation substitution that
// avoids exp() on the FPGA. Simulated cycles per activation evaluation.
func BenchmarkAblation_Activations(b *testing.B) {
	cases := []struct {
		name string
		body []hls.Op
	}{
		// softsign: |x| + add + constant divide.
		{"softsign_fixed", []hls.Op{hls.IntAbs, hls.IntAdd, hls.IntDivConst}},
		// tanh via exp: two exp, add, sub, divide.
		{"tanh_float", []hls.Op{hls.FExp, hls.FExp, hls.FAdd, hls.FAdd, hls.FDiv}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			loop := hls.Loop{Name: tc.name, Trip: 32, Body: tc.body, Pipeline: true, ArrayPartition: true}
			var s hls.Schedule
			var err error
			for i := 0; i < b.N; i++ {
				s, err = hls.ScheduleLoop(loop)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(s.Cycles)/300, "sim_µs")
			b.ReportMetric(float64(s.Res.LUT), "LUTs")
		})
	}
}

// Ablation (§III-C): dataflow overlap — the steady-state initiation
// interval when kernel_preprocess works on item t+1 while gates and
// hidden_state process item t, vs the paper's summed per-item time.
func BenchmarkAblation_Dataflow(b *testing.B) {
	m := paperModel(b)
	p, err := kernels.New(m, kernels.Config{Level: kernels.LevelFixedPoint})
	if err != nil {
		b.Fatal(err)
	}
	seq := paperSeq()
	for i := 0; i < b.N; i++ {
		if _, _, err := p.Classify(seq); err != nil {
			b.Fatal(err)
		}
	}
	_, _, _, sum := p.ItemCycles()
	b.ReportMetric(float64(sum)/300, "sim_sum_µs/item")
	b.ReportMetric(float64(p.PipelinedItemCycles())/300, "sim_overlap_µs/item")
}

// Ablation (§III-D): fixed-point scale sweep — classification speed is
// scale-independent, but TestScaleSweepAgreement (facade tests) shows the
// accuracy cliff below 10³; this bench tracks the simulation cost.
func BenchmarkAblation_FixedPointScale(b *testing.B) {
	m := paperModel(b)
	for _, tc := range []struct {
		name  string
		scale int64
	}{
		{"1e3", 1_000}, {"1e6", 1_000_000}, {"1e9", 1_000_000_000},
	} {
		b.Run(tc.name, func(b *testing.B) {
			p, err := kernels.New(m, kernels.Config{Level: kernels.LevelFixedPoint, Scale: tc.scale})
			if err != nil {
				b.Fatal(err)
			}
			seq := paperSeq()
			for i := 0; i < b.N; i++ {
				if _, _, err := p.Classify(seq); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// End-to-end: the complete experiment harness (all three Fig. 3 levels
// deployed and measured), as cmd/csdbench runs it.
func BenchmarkExperiments_Fig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3(); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation (§VI future work): mixed precision — DSP-packed narrow gate
// MACs that fit the SmartSSD's KU15P, vs the full fixed-point design that
// needs the U200.
func BenchmarkAblation_MixedPrecision(b *testing.B) {
	m := paperModel(b)
	for _, tc := range []struct {
		name  string
		level kernels.OptLevel
		part  fpga.Part
	}{
		{"fixed_u200", kernels.LevelFixedPoint, fpga.AlveoU200},
		{"mixed_u200", kernels.LevelMixed, fpga.AlveoU200},
		{"mixed_ku15p", kernels.LevelMixed, fpga.KU15P},
	} {
		b.Run(tc.name, func(b *testing.B) {
			p, err := kernels.New(m, kernels.Config{Level: tc.level, Part: tc.part})
			if err != nil {
				b.Fatal(err)
			}
			seq := paperSeq()
			for i := 0; i < b.N; i++ {
				if _, _, err := p.Classify(seq); err != nil {
					b.Fatal(err)
				}
			}
			_, _, _, tot := p.KernelMicros()
			b.ReportMetric(tot, "sim_µs/item")
			b.ReportMetric(float64(p.Device().Used().DSP), "DSPs")
		})
	}
}

// Ablation (§III-C): AXI4-Stream kernel links vs global-memory buffers.
func BenchmarkAblation_Streaming(b *testing.B) {
	m := paperModel(b)
	for _, tc := range []struct {
		name      string
		streaming bool
	}{
		{"buffered", false},
		{"streaming", true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			p, err := kernels.New(m, kernels.Config{
				Level: kernels.LevelFixedPoint, Streaming: tc.streaming,
			})
			if err != nil {
				b.Fatal(err)
			}
			seq := paperSeq()
			for i := 0; i < b.N; i++ {
				if _, _, err := p.Classify(seq); err != nil {
					b.Fatal(err)
				}
			}
			_, _, _, tot := p.KernelMicros()
			b.ReportMetric(tot, "sim_µs/item")
		})
	}
}

// Scalability (§II): multi-CSD node throughput on a 64-sequence batch.
func BenchmarkNode_Throughput(b *testing.B) {
	m := paperModel(b)
	batch := make([][]int, 64)
	for i := range batch {
		batch[i] = paperSeq()
	}
	for _, devices := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "dev1", 2: "dev2", 4: "dev4"}[devices], func(b *testing.B) {
			n, err := NewNode(m, NodeConfig{Devices: devices})
			if err != nil {
				b.Fatal(err)
			}
			var res *NodeBatchResult
			for i := 0; i < b.N; i++ {
				res, err = n.PredictBatch(context.Background(), batch)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Makespan.Microseconds()), "sim_makespan_µs")
			b.ReportMetric(n.ThroughputPerSecond(), "sim_seq/s")
		})
	}
}

// Concurrent serving (§II scalability): 64 goroutines push live windows
// through the request scheduler over 1/2/4 devices — bounded queues,
// least-busy placement. Reports simulated device time per request.
func BenchmarkServe_Throughput(b *testing.B) {
	m := paperModel(b)
	seq := paperSeq()
	for _, devices := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "dev1", 2: "dev2", 4: "dev4"}[devices], func(b *testing.B) {
			s, err := NewServer(m, NodeConfig{Devices: devices}, ServeConfig{Block: true})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			b.SetParallelism(64)
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, _, err := s.Predict(context.Background(), seq); err != nil {
						b.Fatal(err)
					}
				}
			})
			var busy time.Duration
			var jobs int64
			for _, st := range s.Stats() {
				busy += st.BusyTime
				jobs += st.Jobs
			}
			if jobs > 0 {
				b.ReportMetric(float64(busy.Microseconds())/float64(jobs), "sim_µs/req")
			}
		})
	}
}

// Background scanning (§I): classify SSD-resident sequences continuously
// with zero host involvement; reports simulated device time per sequence.
func BenchmarkBackgroundScan(b *testing.B) {
	dev, err := NewSmartSSD(CSDConfig{})
	if err != nil {
		b.Fatal(err)
	}
	m := paperModel(b)
	eng, err := Deploy(dev, m, DeployConfig{})
	if err != nil {
		b.Fatal(err)
	}
	offsets := make([]int64, 32)
	for i := range offsets {
		offsets[i] = int64(i * 4096)
		if _, err := dev.StoreSequence(offsets[i], paperSeq()); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	var last *core.ScanResult
	for i := 0; i < b.N; i++ {
		last, err = eng.ScanStored(context.Background(), offsets)
		if err != nil {
			b.Fatal(err)
		}
	}
	perSeq := float64(last.Timing.Transfer.Microseconds()+last.Timing.Compute.Microseconds()) / float64(len(offsets))
	b.ReportMetric(perSeq, "sim_µs/seq")
}

// BenchmarkServe_WallClock is the observability-overhead gate's benchmark
// twin: one fully-instrumented serve request per iteration, serialized, with
// allocation reporting. ns/op and allocs/op here correspond to the
// "instrumented" leg of `csdbench -experiment wallclock`, which cmd/benchdiff
// diffs against bench-results/baseline-wallclock.json in CI. The allocs/op
// figure is the interesting one: the observability path's allocation profile
// is deterministic, so growth means new per-request allocations crept into
// the hot path.
func BenchmarkServe_WallClock(b *testing.B) {
	m := paperModel(b)
	reg := NewTelemetry()
	spans := NewSpanLog(256)
	events := NewEventLogger(EventLogConfig{})
	defer events.Close()
	profiler, err := NewProfiler(ProfilerConfig{
		SampleEvery: -1, MutexFraction: -1, BlockRateNS: -1,
		CountAllocs: true, Telemetry: reg, Events: events,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer profiler.Close()
	s, err := NewServer(m, NodeConfig{Devices: 1}, ServeConfig{
		Telemetry: reg, Spans: spans, Trace: NewTracer(), Events: events, Prof: profiler,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	seq := paperSeq()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Predict(ctx, seq); err != nil {
			b.Fatal(err)
		}
	}
}
