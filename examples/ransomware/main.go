// Ransomware study: the paper's full detection experiment at reduced
// scale — synthesize the Table II corpus, train to convergence (Fig. 4),
// report accuracy/precision/recall/F1 (§IV), then verify that the deployed
// fixed-point CSD engine agrees with the offline float model on the
// held-out set (the quantization fidelity the paper's §III-D scaling
// strategy is designed to preserve).
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/kfrida1/csdinf"
)

func main() {
	// Table II corpus at 1/20 scale: same 76 variants across ten families,
	// same 46% ransomware mix.
	ds, err := csdinf.BuildDataset(csdinf.DatasetConfig{
		RansomwareCount: 667,
		BenignCount:     783,
		Seed:            1,
	})
	if err != nil {
		log.Fatal(err)
	}
	r, b := ds.Counts()
	fmt.Printf("corpus: %d sequences (%d ransomware / %d benign, %.0f%% ransomware)\n",
		len(ds.Sequences), r, b, ds.RansomwareFraction()*100)
	for _, fam := range csdinf.Families {
		fmt.Printf("  %-12s %2d variants (self-propagating: %v)\n",
			fam.Name, fam.Variants, fam.SelfPropagates)
	}

	trainDS, testDS, err := ds.Split(0.2, 2)
	if err != nil {
		log.Fatal(err)
	}

	// Fig. 4: train and watch convergence.
	fmt.Println("\ntraining (Fig. 4 convergence):")
	res, err := csdinf.Train(trainDS, testDS, csdinf.TrainConfig{
		Epochs:    25,
		EvalEvery: 5,
		Seed:      3,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, rec := range res.History {
		fmt.Printf("  epoch %3d: loss %.4f, test accuracy %.4f\n",
			rec.Epoch, rec.TrainLoss, rec.Test.Accuracy)
	}

	// §IV detection metrics.
	fmt.Printf("\ndetection metrics (paper: acc 0.9833, prec 0.9789, rec 0.9890, f1 0.9840):\n")
	fmt.Printf("  accuracy %.4f, precision %.4f, recall %.4f, f1 %.4f\n",
		res.Final.Accuracy, res.Final.Precision, res.Final.Recall, res.Final.F1)

	// Deploy and measure offline-float vs on-device-fixed-point agreement.
	dev, err := csdinf.NewSmartSSD(csdinf.CSDConfig{})
	if err != nil {
		log.Fatal(err)
	}
	eng, err := csdinf.Deploy(dev, res.Model, csdinf.DeployConfig{Level: csdinf.LevelFixedPoint})
	if err != nil {
		log.Fatal(err)
	}
	agree, n := 0, 0
	for _, s := range testDS.Sequences {
		floatPred, _, err := res.Model.Predict(s.Items)
		if err != nil {
			log.Fatal(err)
		}
		fixedRes, _, err := eng.Predict(context.Background(), s.Items)
		if err != nil {
			log.Fatal(err)
		}
		if fixedRes.Ransomware == floatPred {
			agree++
		}
		n++
	}
	fmt.Printf("\nfixed-point CSD engine agrees with the offline float model on %d/%d (%.2f%%) held-out sequences\n",
		agree, n, 100*float64(agree)/float64(n))
}
