// Streaming detection: the paper's deployment scenario. A classifier
// trained offline is deployed to the CSD; the host's live API-call stream
// is fed to the in-storage detector, which maintains the sliding window,
// classifies every fully-formed window next to the data it protects, and
// fires write-quarantine mitigation the moment a Wannacry infection is
// confirmed — before the encryption loop can finish.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"github.com/kfrida1/csdinf"
)

func main() {
	// Offline stage: quick-train a classifier (in production this would be
	// ransomtrain + exported weights, retrained as CTI feeds surface new
	// strains).
	ds, err := csdinf.BuildDataset(csdinf.DatasetConfig{
		RansomwareCount: 667, BenignCount: 783, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	trainDS, testDS, err := ds.Split(0.2, 2)
	if err != nil {
		log.Fatal(err)
	}
	res, err := csdinf.Train(trainDS, testDS, csdinf.TrainConfig{
		Epochs: 20, Seed: 3, TargetAccuracy: 0.97,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("classifier ready: test accuracy %.4f\n", res.Final.Accuracy)

	// Deploy to the drive.
	dev, err := csdinf.NewSmartSSD(csdinf.CSDConfig{})
	if err != nil {
		log.Fatal(err)
	}
	eng, err := csdinf.Deploy(dev, res.Model, csdinf.DeployConfig{})
	if err != nil {
		log.Fatal(err)
	}

	mitigated := false
	det, err := csdinf.NewDetector(eng, csdinf.DetectorConfig{
		Threshold:     0.5,
		AlertsToBlock: 2, // one confirmation window before quarantine
		OnBlock: func(e csdinf.DetectorEvent) {
			mitigated = true
			dev.SSD().Quarantine(true) // in-storage mitigation: block all writes
			fmt.Printf(">>> call %d: WRITE QUARANTINE ENGAGED (p=%.3f) <<<\n",
				e.CallIndex, e.Probability)
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Live stream: a user working normally...
	benign, err := csdinf.DesktopTrace(800, 42)
	if err != nil {
		log.Fatal(err)
	}
	// ...until a Wannacry variant detonates.
	infection, err := csdinf.RansomwareTrace("Wannacry", 3, 3000, 43)
	if err != nil {
		log.Fatal(err)
	}

	stream := append(append([]int{}, benign...), infection...)
	infectionStart := int64(len(benign))
	fmt.Printf("replaying %d API calls (infection begins at call %d)\n",
		len(stream), infectionStart)

	for _, call := range stream {
		ev, err := det.Observe(context.Background(), call)
		if err != nil {
			if errors.Is(err, csdinf.ErrStreamBlocked) {
				break
			}
			log.Fatal(err)
		}
		if ev != nil && ev.Action != csdinf.ActionNone {
			fmt.Printf("call %5d: p=%.3f %s\n", ev.CallIndex, ev.Probability, ev.Action)
		}
	}

	s := det.Stats()
	fmt.Printf("\n%d calls observed, %d windows classified, %d alerts\n",
		s.CallsObserved, s.WindowsEvaluated, s.Alerts)
	if !mitigated {
		log.Fatal("infection completed without mitigation")
	}
	detectionLatency := s.CallsObserved - infectionStart
	fmt.Printf("mitigation fired %d calls into the infection (%.1f%% of the %d-call trace)\n",
		detectionLatency, 100*float64(detectionLatency)/float64(len(infection)), len(infection))

	// The quarantine holds at the device level: encryption writes now fail
	// inside the drive, so files beyond this point remain intact.
	if _, err := dev.SSD().Write(0, []byte("ciphertext")); err != nil {
		fmt.Printf("ransomware write attempt rejected by the drive: %v\n", err)
	}
	fmt.Println("files beyond this point remain unencrypted: the engine lives next to the data it protects")
}
