// Datacenter operations: the deployment story of §I/§II/§VI. A node hosts
// several SmartSSDs sharing one classifier; the fleet fans classification
// work out across devices (the paper's "installation of multiple devices
// within a single node"), while a CTI-driven maintenance loop retrains on
// newly observed strains and hot-swaps the model under a live detection
// stream — "the FPGA-based model is compiled once and can be updated at the
// operator's discretion" (§III-A).
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/kfrida1/csdinf"
)

func main() {
	// Base corpus and initial deployment through the CTI updater.
	base, err := csdinf.BuildDataset(csdinf.DatasetConfig{
		RansomwareCount: 667, BenignCount: 783, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	dev, err := csdinf.NewSmartSSD(csdinf.CSDConfig{})
	if err != nil {
		log.Fatal(err)
	}
	updater, gen1, err := csdinf.NewUpdater(base, csdinf.UpdaterConfig{
		Device: dev,
		Train:  csdinf.TrainConfig{Epochs: 15, Seed: 2, TargetAccuracy: 0.97},
		Seed:   3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generation %d deployed: test accuracy %.4f on %d sequences\n",
		gen1.Generation, gen1.Final.Accuracy, gen1.CorpusSize)

	// A live detector runs against the hot-swappable engine.
	det, err := csdinf.NewDetector(updater.Engine(), csdinf.DetectorConfig{AlertsToBlock: 1})
	if err != nil {
		log.Fatal(err)
	}

	// CTI feed delivers analysis reports of a freshly observed strain
	// (a new Lockbit build detonated in the sandbox farm).
	fmt.Println("\nCTI feed: 3 new Lockbit samples observed; retraining...")
	var reports []*csdinf.AnalysisReport
	for v := 0; v < 3; v++ {
		trace, err := csdinf.RansomwareTrace("Lockbit", v, 3000, int64(50+v))
		if err != nil {
			log.Fatal(err)
		}
		r, err := csdinf.ReportFromTrace(fmt.Sprintf("lockbit_2024_%d.exe", v), "Lockbit", 100+v, trace)
		if err != nil {
			log.Fatal(err)
		}
		reports = append(reports, r)
	}
	gen2, err := updater.Ingest(reports)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generation %d deployed: +%d sequences (corpus %d), accuracy %.4f\n",
		gen2.Generation, gen2.NewSequences, gen2.CorpusSize, gen2.Final.Accuracy)

	// The detector kept running across the swap; verify it still fires.
	infection, err := csdinf.RansomwareTrace("Lockbit", 2, 2500, 99)
	if err != nil {
		log.Fatal(err)
	}
	for _, call := range infection {
		if _, err := det.Observe(context.Background(), call); err != nil {
			break // mitigation fired
		}
	}
	fmt.Printf("post-swap detection: blocked=%v after %d windows\n",
		det.Blocked(), det.Stats().WindowsEvaluated)

	// Scale-out: the same model across a 4-CSD node.
	fmt.Println("\nscaling out to a 4-CSD node...")
	fleet, err := csdinf.NewNode(updater.Model(), csdinf.NodeConfig{Devices: 4})
	if err != nil {
		log.Fatal(err)
	}
	batch := make([][]int, 64)
	for i := range batch {
		w, err := csdinf.BenignTrace(csdinf.BenignApps[i%len(csdinf.BenignApps)], 100, int64(i))
		if err != nil {
			log.Fatal(err)
		}
		batch[i] = w
	}
	res, err := fleet.PredictBatch(context.Background(), batch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("64-sequence batch across %d devices: makespan %v (total device time %v)\n",
		fleet.Devices(), res.Makespan, res.DeviceTime)
	fmt.Printf("node throughput: %.0f sequences/second\n", fleet.ThroughputPerSecond())
}
