// Quickstart: train a small ransomware classifier, deploy it onto a
// simulated SmartSSD, and classify sequences stored on the drive — the
// paper's end-to-end flow in ~60 lines of library calls.
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/kfrida1/csdinf"
)

func main() {
	// 1. Synthesize a small API-call corpus (sandbox traces, sliding
	//    windows; see Appendix A of the paper). Scaled to 1/40 of the
	//    paper's 29K sequences so the quickstart finishes in seconds.
	ds, err := csdinf.BuildDataset(csdinf.DatasetConfig{
		RansomwareCount: 334,
		BenignCount:     391,
		Seed:            1,
	})
	if err != nil {
		log.Fatal(err)
	}
	trainDS, testDS, err := ds.Split(0.2, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d train / %d test sequences of %d API calls\n",
		len(trainDS.Sequences), len(testDS.Sequences), ds.Window)

	// 2. Offline training (the paper trains until convergence; the
	//    synthetic corpus converges quickly).
	res, err := csdinf.Train(trainDS, testDS, csdinf.TrainConfig{
		Epochs:         15,
		TargetAccuracy: 0.97,
		Seed:           3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d epochs; test accuracy %.4f, F1 %.4f\n",
		res.EpochsRun, res.Final.Accuracy, res.Final.F1)

	// 3. Deploy to the computational storage drive: weights are quantized
	//    to scale-10⁶ fixed point and the five kernels are placed on the
	//    FPGA.
	dev, err := csdinf.NewSmartSSD(csdinf.CSDConfig{})
	if err != nil {
		log.Fatal(err)
	}
	eng, err := csdinf.Deploy(dev, res.Model, csdinf.DeployConfig{})
	if err != nil {
		log.Fatal(err)
	}
	_, _, _, perItem := eng.PerItemMicros()
	fmt.Printf("deployed: %.3f µs per sequence item on the FPGA (paper: 2.151 µs)\n", perItem)

	// 4. Classify sequences stored on the SSD over the P2P path — no host
	//    involvement on the data path.
	var off int64
	correct := 0
	n := 20
	for _, s := range testDS.Sequences[:n] {
		if _, err := dev.StoreSequence(off, s.Items); err != nil {
			log.Fatal(err)
		}
		result, timing, err := eng.PredictStored(context.Background(), off)
		if err != nil {
			log.Fatal(err)
		}
		if result.Ransomware == s.Ransomware {
			correct++
		}
		if off == 0 {
			fmt.Printf("first classification: p=%.3f in %v (%v transfer + %v compute)\n",
				result.Probability, timing.Total(), timing.Transfer, timing.Compute)
		}
		off += int64(len(s.Items) * 4)
	}
	fmt.Printf("in-storage classification: %d/%d correct\n", correct, n)
}
