// Host application: the paper's host program (§III-A, Fig. 2) written
// against the raw runtime API, the way the original C++/XRT code drives
// the hardware. Everything the higher-level Engine does implicitly is
// explicit here: build the xclbin with the v++ flow, open the device, load
// the binary, allocate buffer objects in DDR banks, push the scaled
// weights at initialization, P2P-sync a stored sequence, and launch the
// preprocess → 4×gates → hidden-state kernel sequence per item.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"time"

	"github.com/kfrida1/csdinf"
)

func main() {
	// v++ -c / v++ -l: compile the kernels and link the xclbin against the
	// paper's platform.
	bin, err := csdinf.BuildFPGABinary(csdinf.LevelFixedPoint, csdinf.AlveoU200)
	if err != nil {
		log.Fatal(err)
	}
	if err := bin.Report(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Open the CSD and load the binary.
	card, err := csdinf.NewSmartSSD(csdinf.CSDConfig{})
	if err != nil {
		log.Fatal(err)
	}
	dev, err := csdinf.OpenRuntime(card)
	if err != nil {
		log.Fatal(err)
	}
	if err := dev.LoadXclbin(bin); err != nil {
		log.Fatal(err)
	}

	// Host initialization: serialize the offline-trained weights (here a
	// fresh paper-architecture model) and push them into DDR bank 0.
	model, err := csdinf.NewModel(csdinf.PaperModelConfig(), 1)
	if err != nil {
		log.Fatal(err)
	}
	var weights bytes.Buffer
	if err := csdinf.SaveWeights(model, &weights); err != nil {
		log.Fatal(err)
	}
	weightBO, err := dev.AllocBO(int64(weights.Len()), 0)
	if err != nil {
		log.Fatal(err)
	}
	initTime, err := weightBO.SyncToDevice(weights.Bytes())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhost init: %d weight bytes to DDR bank 0 in %v\n", weights.Len(), initTime)

	// A sequence lands on the SSD (normal data-path activity)...
	seq := make([]int, 100)
	for i := range seq {
		seq[i] = (i * 7) % csdinf.VocabSize
	}
	if _, err := card.StoreSequence(0, seq); err != nil {
		log.Fatal(err)
	}
	// ...and is pulled into DDR bank 1 over the on-board P2P switch.
	seqBO, err := dev.AllocBO(int64(len(seq)*4), 1)
	if err != nil {
		log.Fatal(err)
	}
	p2pTime, err := seqBO.SyncFromSSD(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P2P sequence fetch: %v (no host involvement)\n", p2pTime)

	// Per-item kernel sequence: preprocess, four gate CUs in parallel,
	// hidden state — Fig. 2's dataflow, launched by hand.
	pre, err := dev.Kernel("kernel_preprocess")
	if err != nil {
		log.Fatal(err)
	}
	gates, err := dev.Kernel("kernel_gates")
	if err != nil {
		log.Fatal(err)
	}
	hidden, err := dev.Kernel("kernel_hidden_state")
	if err != nil {
		log.Fatal(err)
	}

	var perItem time.Duration
	for _, launch := range []struct {
		k *csdinf.KernelHandle
		n int
	}{{pre, 1}, {gates, 4}, {hidden, 1}} {
		d, err := launch.k.Start(launch.n).Wait()
		if err != nil {
			log.Fatal(err)
		}
		perItem += d
	}
	fmt.Printf("per-item kernel time: %v (paper: 2.15133 µs)\n", perItem)

	total := time.Duration(len(seq)) * perItem
	fmt.Printf("full %d-item sequence: %v compute + %v transfer\n", len(seq), total, p2pTime)
	fmt.Printf("cumulative kernel time on device: %v\n", dev.KernelTime())
}
