// Optimization study: reproduce the shape of the paper's Fig. 3 by
// deploying the same model at each cumulative optimization level —
// Vanilla (kernel parallelization only), +II (PIPELINE/UNROLL/
// ARRAY_PARTITION), +Fixed-point — and reading the per-kernel latencies
// and fabric utilization, including the resource wall that makes the
// fully-unrolled fixed-point design fit the Alveo U200 but not the
// SmartSSD's smaller KU15P.
package main

import (
	"fmt"
	"log"

	"github.com/kfrida1/csdinf"
)

func main() {
	model, err := csdinf.NewModel(csdinf.PaperModelConfig(), 1)
	if err != nil {
		log.Fatal(err)
	}
	embed, lstmP, head := model.ParamCount()
	fmt.Printf("model: %d embedding + %d LSTM + %d head parameters\n\n", embed, lstmP, head)

	fmt.Printf("%-12s %12s %12s %12s %12s %8s %8s\n",
		"Level", "Preprocess", "Gates", "Hidden", "Total", "DSP%", "LUT%")
	for _, level := range []csdinf.OptLevel{
		csdinf.LevelVanilla, csdinf.LevelII, csdinf.LevelFixedPoint,
	} {
		dev, err := csdinf.NewSmartSSD(csdinf.CSDConfig{})
		if err != nil {
			log.Fatal(err)
		}
		eng, err := csdinf.Deploy(dev, model, csdinf.DeployConfig{
			Level: level,
			Part:  csdinf.AlveoU200, // the paper's experimental platform
		})
		if err != nil {
			log.Fatal(err)
		}
		pre, gates, hidden, total := eng.PerItemMicros()
		util := eng.Pipeline().Device().Utilization()
		fmt.Printf("%-12s %9.3f µs %9.5f µs %9.3f µs %9.3f µs %7.1f%% %7.1f%%\n",
			level, pre, gates, hidden, total, util.DSP*100, util.LUT*100)
	}

	fmt.Println("\npaper Fig. 3:  Vanilla 0.740 / 5.076 / 1.651 µs," +
		" II 0.743 / 2.001 / 1.277 µs, Fixed-point 0.800 / 0.00333 / 1.348 µs")

	// The resource wall: 4 CUs × 1,280 fully-unrolled integer MACs need
	// 5,120 DSPs. The U200 has 6,840; the SmartSSD's KU15P has 1,968.
	dev, err := csdinf.NewSmartSSD(csdinf.CSDConfig{})
	if err != nil {
		log.Fatal(err)
	}
	_, err = csdinf.Deploy(dev, model, csdinf.DeployConfig{
		Level: csdinf.LevelFixedPoint,
		Part:  csdinf.KU15P,
	})
	fmt.Printf("\nfixed-point deployment on the SmartSSD's KU15P: %v\n", err)
	fmt.Println("(the paper evaluates on the U200 for exactly this reason; on the" +
		" KU15P the gate unroll factor must drop to ~492 per CU)")
}
