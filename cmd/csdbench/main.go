// Command csdbench regenerates every table and figure of the paper's
// evaluation section and prints them next to the paper's reported values.
//
// Usage:
//
//	csdbench -experiment all                  # everything (default)
//	csdbench -experiment fig3                 # kernel optimization study
//	csdbench -experiment table1 -trials 1000  # FPGA vs CPU vs GPU
//	csdbench -experiment table1 -trace out.json  # + device timeline trace
//	csdbench -experiment fig4 -epochs 40      # training convergence
//	csdbench -experiment metrics              # detection accuracy/P/R/F1
//	csdbench -experiment table2               # dataset overview
//	csdbench -experiment energy               # energy per inference item
//	csdbench -experiment latency              # calls-to-mitigation per family
//	csdbench -experiment models               # LSTM vs snapshot baseline
//	csdbench -experiment fleet -nodes 4       # rack-scale fleet throughput/p99
//	csdbench -experiment wallclock            # observability-overhead self-audit
//
// Pass -prof to run the continuous profiler alongside any experiment and
// write its snapshot to <prof-dir>/prof.json on exit.
//
// The fig4/metrics experiments train on a 1/10-scale synthetic corpus by
// default (the full 29K corpus behaves identically but takes ~10× longer in
// pure Go); pass -full for the paper-sized corpus.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/kfrida1/csdinf/internal/dataset"
	"github.com/kfrida1/csdinf/internal/experiments"
	"github.com/kfrida1/csdinf/internal/prof"
	"github.com/kfrida1/csdinf/internal/quality"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "csdbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("csdbench", flag.ContinueOnError)
	experiment := fs.String("experiment", "all", "fig3 | table1 | fig4 | metrics | table2 | energy | latency | models | window | fleet | wallclock | quality | all")
	trials := fs.Int("trials", 1000, "CPU/GPU latency samples for table1")
	epochs := fs.Int("epochs", 40, "training epochs for fig4/metrics")
	seed := fs.Int64("seed", 1, "seed for all randomized stages")
	full := fs.Bool("full", false, "use the paper-sized 29K corpus for fig4/metrics (slow)")
	measureGo := fs.Bool("measure-go", true, "include the plain-Go CPU measurement in table1")
	jsonDir := fs.String("json", "", "directory to also write results as BENCH_<experiment>.json (empty: off)")
	tracePath := fs.String("trace", "", "with table1: run the traced serving demo and write a Chrome trace (Perfetto-loadable) to this file")
	nodes := fs.Int("nodes", 4, "CSD node count for the fleet experiment")
	iterations := fs.Int("iterations", 2000, "measured requests per leg for the wallclock self-audit")
	profOn := fs.Bool("prof", false, "run the continuous profiler during the experiment")
	profDir := fs.String("prof-dir", "bench-results", "with -prof: directory for the prof.json snapshot artifact")
	qualityRef := fs.String("quality-reference", "bench-results/quality-reference.json",
		"with quality: pinned score distribution for the drift check (missing file: drift check off)")
	qualityWriteRef := fs.String("quality-write-reference", "",
		"with quality: additionally pin this run's score distribution to the given path")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *profOn {
		p, err := prof.New(prof.Config{})
		if err != nil {
			return err
		}
		defer func() {
			if path, err := p.WriteSnapshot(*profDir); err != nil {
				fmt.Fprintln(os.Stderr, "csdbench: write prof snapshot:", err)
			} else {
				fmt.Printf("(wrote %s)\n", path)
			}
			p.Close()
		}()
	}

	runs := map[string]func() error{
		"fig3":    func() error { return runFig3(*jsonDir) },
		"table1":  func() error { return runTableI(*jsonDir, *trials, *seed, *measureGo, *tracePath) },
		"fig4":    func() error { return runTraining(*jsonDir, *epochs, *seed, *full, true, false) },
		"metrics": func() error { return runTraining(*jsonDir, *epochs, *seed, *full, false, true) },
		"table2":  func() error { return runTableII(*jsonDir, *seed) },
		"energy":  func() error { return runEnergy(*jsonDir) },
		"latency": func() error { return runLatency(*jsonDir, *epochs, *seed) },
		"models":  func() error { return runModels(*jsonDir, *epochs, *seed) },
		"window":  func() error { return runWindowSweep(*jsonDir, *seed) },
		"fleet":   func() error { return runFleet(*jsonDir, *nodes, *seed) },
		"wallclock": func() error {
			return runWallClock(*jsonDir, *iterations, *seed)
		},
		"quality": func() error {
			return runQuality(*jsonDir, *epochs, *seed, *qualityRef, *qualityWriteRef)
		},
	}
	if *experiment == "all" {
		for _, name := range []string{"fig3", "table1", "table2", "energy"} {
			if err := runs[name](); err != nil {
				return err
			}
		}
		// One training run serves both fig4 and metrics.
		return runTraining(*jsonDir, *epochs, *seed, *full, true, true)
	}
	r, ok := runs[*experiment]
	if !ok {
		return fmt.Errorf("unknown experiment %q (want fig3, table1, fig4, metrics, table2, energy, latency, models, window, fleet, wallclock, quality, all)", *experiment)
	}
	return r()
}

// writeBench writes an experiment's structured result to
// dir/BENCH_<experiment>.json (no-op when dir is empty).
func writeBench(dir, experiment string, result any) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, "BENCH_"+experiment+".json")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	doc := struct {
		Experiment string `json:"experiment"`
		Result     any    `json:"result"`
	}{experiment, result}
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return fmt.Errorf("write %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("(wrote %s)\n\n", path)
	return nil
}

func runFig3(jsonDir string) error {
	fmt.Println("=== Fig. 3: FPGA-based LSTM inference time per optimization level ===")
	rows, err := experiments.Fig3()
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatFig3(rows))
	fmt.Println()
	return writeBench(jsonDir, "fig3", rows)
}

func runTableI(jsonDir string, trials int, seed int64, measureGo bool, tracePath string) error {
	fmt.Println("=== Table I: traditional DL hardware comparison ===")
	res, err := experiments.TableI(experiments.TableIConfig{
		Trials: trials, Seed: seed, MeasureGo: measureGo,
	})
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatTableI(res))
	fmt.Println()
	// Per-item latencies convert to classification throughput; include the
	// FPGA figure so downstream dashboards need no recomputation.
	doc := struct {
		*experiments.TableIResult
		FPGAItemsPerSecond float64 `json:"fpga_items_per_second"`
		// ObservabilityOverheadPercent is a small-iteration self-audit:
		// the host wall-clock premium the telemetry/trace/eventlog/prof
		// stack adds per serve request (full audit: -experiment wallclock).
		ObservabilityOverheadPercent float64                  `json:"observability_overhead_percent"`
		TraceProfile                 *experiments.TraceResult `json:"trace_profile,omitempty"`
	}{TableIResult: res}
	for _, row := range res.Rows {
		if row.Platform == "FPGA (CSD)" && row.MeanUS > 0 {
			doc.FPGAItemsPerSecond = 1e6 / row.MeanUS
		}
	}
	audit, err := experiments.WallClock(experiments.WallClockConfig{
		Iterations: 300, Warmup: 50, Seed: seed,
	})
	if err != nil {
		return err
	}
	doc.ObservabilityOverheadPercent = audit.OverheadPercent
	fmt.Printf("observability overhead (300-request self-audit): %+.1f%% wall-clock per request\n\n",
		audit.OverheadPercent)
	if tracePath != "" {
		tr, err := runTrace(tracePath, seed)
		if err != nil {
			return err
		}
		doc.TraceProfile = tr
	}
	return writeBench(jsonDir, "table1", doc)
}

// runTrace executes the traced serving demo of the table1 configuration,
// writes the Chrome trace to path, and prints the text profile report.
func runTrace(path string, seed int64) (*experiments.TraceResult, error) {
	run, err := experiments.TraceRun(experiments.TraceRunConfig{Seed: seed})
	if err != nil {
		return nil, err
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := run.Tracer.WriteChrome(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("write trace %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	fmt.Printf("--- device timeline: %d jobs traced, Chrome trace written to %s ---\n", run.Jobs, path)
	fmt.Println("    (open at https://ui.perfetto.dev or chrome://tracing)")
	fmt.Println()
	fmt.Print(run.Profile.Format())
	fmt.Println()
	return &experiments.TraceResult{Jobs: run.Jobs, Profile: run.Profile}, nil
}

func runTraining(jsonDir string, epochs int, seed int64, full, wantFig4, wantMetrics bool) error {
	cfg := experiments.TrainRunConfig{Epochs: epochs, Seed: seed}
	if full {
		cfg.RansomwareCount = dataset.PaperRansomwareCount
		cfg.BenignCount = dataset.PaperBenignCount
	}
	scale := "1/10-scale"
	if full {
		scale = "paper-scale (29K)"
	}
	fmt.Printf("(training on the %s synthetic corpus, %d epochs...)\n", scale, epochs)
	run, err := experiments.RunTraining(cfg)
	if err != nil {
		return err
	}
	if wantFig4 {
		fmt.Println("=== Fig. 4: convergence of LSTM training on ransomware API call sequences ===")
		fmt.Print(experiments.FormatFig4(run))
		fmt.Println()
	}
	if wantMetrics {
		fmt.Println("=== §IV: ransomware detection metrics ===")
		fmt.Print(experiments.FormatMetrics(run))
		fmt.Println()
	}
	if wantFig4 {
		if err := writeBench(jsonDir, "fig4", run.History); err != nil {
			return err
		}
	}
	if wantMetrics {
		if err := writeBench(jsonDir, "metrics", run.Final); err != nil {
			return err
		}
	}
	return nil
}

func runLatency(jsonDir string, epochs int, seed int64) error {
	fmt.Println("=== Detection latency: API calls from infection start to mitigation ===")
	fmt.Printf("(training a detector model first, %d epochs on the 1/10-scale corpus...)\n", epochs)
	run, err := experiments.RunTraining(experiments.TrainRunConfig{
		Epochs: epochs, Seed: seed, TargetAccuracy: 0.97,
	})
	if err != nil {
		return err
	}
	const traceLen = 3000
	rows, err := experiments.DetectionLatency(experiments.LatencyConfig{
		Model: run.Model, TraceLen: traceLen, Seed: seed,
	})
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatDetectionLatency(rows, traceLen))
	fmt.Println()
	return writeBench(jsonDir, "latency", rows)
}

func runWindowSweep(jsonDir string, seed int64) error {
	fmt.Println("=== Window-length sweep: accuracy vs detection latency (extension) ===")
	fmt.Println("(training one classifier per window length on a 1/20-scale corpus...)")
	points, err := experiments.WindowSweep(experiments.WindowSweepConfig{Seed: seed})
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatWindowSweep(points))
	fmt.Println()
	return writeBench(jsonDir, "window", points)
}

func runModels(jsonDir string, epochs int, seed int64) error {
	fmt.Println("=== Model selection: LSTM vs non-sequential snapshot baseline (§III-A) ===")
	fmt.Printf("(training the LSTM first, up to %d epochs on the 1/10-scale corpus...)\n", epochs)
	run, err := experiments.RunTraining(experiments.TrainRunConfig{
		Epochs: epochs, Seed: seed, TargetAccuracy: 0.985,
	})
	if err != nil {
		return err
	}
	res, err := experiments.ModelSelection(run, nil, seed)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatModelSelection(res))
	fmt.Println()
	return writeBench(jsonDir, "models", res)
}

func runFleet(jsonDir string, nodes int, seed int64) error {
	fmt.Println("=== Fleet: rack-scale serving throughput and queue wait (extension) ===")
	res, err := experiments.FleetRun(experiments.FleetRunConfig{Nodes: nodes, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatFleet(res))
	fmt.Println()
	return writeBench(jsonDir, "fleet", res)
}

func runWallClock(jsonDir string, iterations int, seed int64) error {
	fmt.Println("=== Observability self-audit: instrumented vs bare serve wall-clock ===")
	res, err := experiments.WallClock(experiments.WallClockConfig{
		Iterations: iterations, Seed: seed,
	})
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatWallClock(res))
	fmt.Println()
	return writeBench(jsonDir, "wallclock", res)
}

// runQuality closes the detection-quality loop: train, replay labeled
// traffic through the scorecard-instrumented detector, and pin the
// headline numbers (plus the full snapshot) in BENCH_quality.json for the
// benchdiff gate.
func runQuality(jsonDir string, epochs int, seed int64, refPath, writeRefPath string) error {
	fmt.Println("=== Detection-quality scorecard: confusion, latency-to-flag, score drift ===")
	fmt.Printf("(training a detector model first, %d epochs on the 1/10-scale corpus...)\n", epochs)
	run, err := experiments.RunTraining(experiments.TrainRunConfig{
		Epochs: epochs, Seed: seed, TargetAccuracy: 0.97,
	})
	if err != nil {
		return err
	}
	var ref *quality.Reference
	if refPath != "" {
		ref, err = quality.LoadReference(refPath)
		if err != nil {
			if !errors.Is(err, os.ErrNotExist) {
				return err
			}
			fmt.Printf("(no pinned reference at %s; drift check off)\n", refPath)
			ref = nil
		}
	}
	res, err := experiments.QualityScorecard(experiments.QualityRunConfig{
		Model: run.Model, Seed: seed, Reference: ref,
	})
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatQuality(res))
	fmt.Println()
	if writeRefPath != "" {
		pinned, err := quality.ReferenceFrom("csdbench-quality", res.Snapshot)
		if err != nil {
			return err
		}
		if err := quality.WriteReference(writeRefPath, pinned); err != nil {
			return err
		}
		fmt.Printf("(pinned score distribution to %s)\n\n", writeRefPath)
	}
	q := res.Snapshot
	doc := struct {
		Recall           float64          `json:"recall"`
		FPR              float64          `json:"fpr"`
		Precision        float64          `json:"precision"`
		Accuracy         float64          `json:"accuracy"`
		WindowsToFlagP50 float64          `json:"windows_to_flag_p50"`
		WindowsToFlagP99 float64          `json:"windows_to_flag_p99"`
		BytesAtRiskP50   float64          `json:"bytes_at_risk_p50"`
		BytesAtRiskP99   float64          `json:"bytes_at_risk_p99"`
		DriftPSI         float64          `json:"drift_psi"`
		Drifted          bool             `json:"drifted"`
		Snapshot         quality.Snapshot `json:"snapshot"`
	}{
		Recall: q.Total.Recall, FPR: q.Total.FPR,
		Precision: q.Total.Precision, Accuracy: q.Total.Accuracy,
		WindowsToFlagP50: q.WindowsToFlag.P50, WindowsToFlagP99: q.WindowsToFlag.P99,
		BytesAtRiskP50: q.BytesAtRisk.P50, BytesAtRiskP99: q.BytesAtRisk.P99,
		DriftPSI: q.Drift.PSI, Drifted: q.Drift.Drifted,
		Snapshot: q,
	}
	return writeBench(jsonDir, "quality", doc)
}

func runEnergy(jsonDir string) error {
	fmt.Println("=== Energy per inference item (paper §I/§VII efficiency claims) ===")
	res, err := experiments.Energy()
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatEnergy(res))
	fmt.Println()
	return writeBench(jsonDir, "energy", res)
}

func runTableII(jsonDir string, seed int64) error {
	fmt.Println("=== Table II: ransomware dataset overview ===")
	// Generate the extraction corpus at 1/10 scale for window counts.
	ds, err := dataset.Build(dataset.BuildConfig{
		RansomwareCount: dataset.PaperRansomwareCount / 10,
		BenignCount:     dataset.PaperBenignCount / 10,
		Seed:            seed,
	})
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatTableII(experiments.TableII(ds), ds))
	fmt.Println()
	return writeBench(jsonDir, "table2", experiments.TableII(ds))
}
