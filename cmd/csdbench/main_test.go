package main

import "testing"

func TestRunFastExperiments(t *testing.T) {
	// The training-based experiments (fig4/metrics/latency) are exercised by
	// internal/experiments tests; here we cover the CLI wiring of the fast
	// paths.
	for _, args := range [][]string{
		{"-experiment", "fig3"},
		{"-experiment", "table2", "-seed", "3"},
		{"-experiment", "energy"},
		{"-experiment", "table1", "-trials", "50", "-measure-go=false"},
	} {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "bogus"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
