package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunFastExperiments(t *testing.T) {
	// The training-based experiments (fig4/metrics/latency) are exercised by
	// internal/experiments tests; here we cover the CLI wiring of the fast
	// paths.
	for _, args := range [][]string{
		{"-experiment", "fig3"},
		{"-experiment", "table2", "-seed", "3"},
		{"-experiment", "energy"},
		{"-experiment", "table1", "-trials", "50", "-measure-go=false"},
	} {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestJSONOutput(t *testing.T) {
	dir := t.TempDir()
	for _, exp := range []string{"fig3", "energy"} {
		if err := run([]string{"-experiment", exp, "-json", dir}); err != nil {
			t.Fatalf("run(%s): %v", exp, err)
		}
		path := filepath.Join(dir, "BENCH_"+exp+".json")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s not written: %v", path, err)
		}
		var doc struct {
			Experiment string          `json:"experiment"`
			Result     json.RawMessage `json:"result"`
		}
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Fatalf("%s invalid JSON: %v", path, err)
		}
		if doc.Experiment != exp || len(doc.Result) == 0 {
			t.Fatalf("%s: experiment=%q, %d result bytes", path, doc.Experiment, len(doc.Result))
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "bogus"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
