// Command csdload is the open-loop load generator for the CSD serving
// stack: it drives a simulated fleet with Poisson or bursty arrivals from
// thousands of synthetic processes and reports SLO attainment — latency and
// availability objectives, rolling error budgets, and Google-SRE-style
// burn-rate alerts, with incidents auto-opened when the fast-burn rule
// trips.
//
// Unlike the closed-loop benchmarks under internal/experiments, csdload
// dispatches every request at its scheduled arrival time and measures
// latency from that intent, so the report is coordinated-omission-safe: a
// backed-up fleet is charged for the queueing it inflicts.
//
// Usage:
//
//	csdload -devices 4 -arrivals poisson -rate 5000 -duration 10s -seed 1
//	csdload -chaos -json slo-report.json           # drain/fail/rejoin mid-run
//	csdload -metrics-addr 127.0.0.1:9100 -hold 1m  # /metrics, /slo.json, ...
//	csdload -prof -prof-dir out/prof               # continuous profiler + flight dumps
//
// With -prof, the continuous profiler samples runtime state throughout the
// run, attributes per-stage cost to every request, and dumps its flight
// recorder (recent samples + request breakdowns) to -prof-dir whenever an
// incident opens — so a paging SLO burn arrives with the runtime context
// that surrounded it. The final profiler snapshot lands at
// -prof-dir/prof.json, also served live at /prof.json with -metrics-addr.
//
// The -seed flag makes the arrival schedule (and its report digest)
// deterministic, which is how CI pins the generator.
//
// Every run is also a labeled detection-quality experiment: a
// -ransom-fraction slice of the synthetic PID population carries
// ground-truth ransomware labels (families round-robin from the sandbox
// catalog), every measured verdict feeds the quality scorecard (confusion
// matrix, per-family breakdown, windows-to-flag latency, PSI drift against
// -quality-reference), and the report gains a detection-quality section —
// served live at /quality.json with -metrics-addr and written to
// -quality-json as an artifact. With -recall-target/-fpr-target the
// scorecard feeds recall and false-positive-rate SLOs, so missed
// ransomware burns an error budget and pages exactly like a latency
// regression; -quality-inject-miss deliberately misses every labeled
// window to drill that path.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"github.com/kfrida1/csdinf/internal/device"
	"github.com/kfrida1/csdinf/internal/eventlog"
	"github.com/kfrida1/csdinf/internal/fleet"
	"github.com/kfrida1/csdinf/internal/incident"
	"github.com/kfrida1/csdinf/internal/load"
	"github.com/kfrida1/csdinf/internal/lstm"
	"github.com/kfrida1/csdinf/internal/prof"
	"github.com/kfrida1/csdinf/internal/quality"
	"github.com/kfrida1/csdinf/internal/slo"
	"github.com/kfrida1/csdinf/internal/telemetry"
	"github.com/kfrida1/csdinf/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "csdload:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("csdload", flag.ContinueOnError)
	devices := fs.Int("devices", 4, "CSD fleet size")
	arrivals := fs.String("arrivals", "poisson", "arrival process: poisson or bursty")
	rate := fs.Float64("rate", 5000, "mean arrival rate, requests/second")
	duration := fs.Duration("duration", 10*time.Second, "run length including warmup")
	warmup := fs.Duration("warmup", 0, "leading slice excluded from measurement")
	seed := fs.Int64("seed", 1, "schedule seed (same seed: same arrivals, same report digest)")
	pids := fs.Int("pids", 2000, "synthetic process population")
	queueDepth := fs.Int("queue-depth", 0, "per-device queue depth (0: fleet default)")
	chaos := fs.Bool("chaos", false, "drain/fail/rejoin devices mid-run, including a full-rack blackout")
	jsonPath := fs.String("json", "", "write the SLO report JSON artifact to this file")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /slo.json, /events.json, /incidents.json, /healthz on this address (empty: off)")
	hold := fs.Duration("hold", 0, "keep the metrics endpoint up this long after the run")
	latencySLO := fs.Duration("latency-slo", 2*time.Millisecond, "latency objective threshold (the paper's ~2ms promise)")
	latencyTarget := fs.Float64("latency-target", 0.99, "fraction of requests that must meet -latency-slo")
	availTarget := fs.Float64("availability-target", 0.999, "fraction of requests that must succeed")
	profOn := fs.Bool("prof", false, "run the continuous profiler: runtime sampling, per-stage cost attribution, incident flight dumps")
	profDir := fs.String("prof-dir", "prof-out", "with -prof: directory for flight dumps and the final prof.json snapshot")
	ransomFraction := fs.Float64("ransom-fraction", 0.1, "fraction of the PID population labeled ground-truth ransomware")
	qualityThreshold := fs.Float64("quality-threshold", 0.5, "probability at or above which a scored verdict counts as flagged")
	qualityReference := fs.String("quality-reference", "", "pinned score-distribution JSON for PSI drift detection (empty: drift off)")
	qualityInjectMiss := fs.Bool("quality-inject-miss", false, "fault injection: score every window as un-flagged, missing all ransomware (recall SLO drill)")
	recallTarget := fs.Float64("recall-target", 0, "recall objective: fraction of ransomware windows that must be flagged (0: off)")
	fprTarget := fs.Float64("fpr-target", 0, "false-positive objective: fraction of benign windows that must NOT be flagged (0: off)")
	qualityJSON := fs.String("quality-json", "", "write the /quality.json scorecard document to this file")
	qualityMinTP := fs.Int("quality-min-tp", 0, "fail the run unless the scorecard holds at least this many true positives")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// An untrained paper-architecture model: load generation exercises the
	// serving path, not classification accuracy.
	model, err := lstm.NewModel(lstm.PaperConfig(), *seed)
	if err != nil {
		return err
	}

	reg := telemetry.NewRegistry()
	spans := telemetry.NewSpanLog(32)
	events := eventlog.New(eventlog.Config{})
	defer events.Close()

	// The detection-quality scorecard. Its SLO hook closes over the
	// evaluator built below (both Quality and the hook are nil-safe, so
	// ordering is harmless); the profiler's flight dumps embed its
	// snapshot so a recall-burn page ships with the confusion matrix that
	// burned it.
	var evaluator *slo.Evaluator
	var reference *quality.Reference
	if *qualityReference != "" {
		if reference, err = quality.LoadReference(*qualityReference); err != nil {
			return err
		}
	}
	scorecard, err := quality.New(quality.Config{
		Telemetry: reg,
		Events:    events,
		Reference: reference,
		SLO:       func(truth, flagged bool) { evaluator.Quality(truth, flagged) },
	})
	if err != nil {
		return err
	}

	var profiler *prof.Profiler
	var tracer *trace.Tracer
	incidentCfg := incident.Config{Events: events}
	if *profOn {
		profiler, err = prof.New(prof.Config{
			Telemetry:   reg,
			Events:      events,
			FlightExtra: func() any { return scorecard.Snapshot() },
		})
		if err != nil {
			return err
		}
		defer profiler.Close()
		// A tracer rides along so the scheduler allocates per-request job
		// IDs — the correlation key between flight-dump breakdowns,
		// incident windows, and trace events. Its event ring is bounded.
		tracer = trace.New()
		// Every opened incident — SLO burn, device failure, flagged
		// process — dumps the flight recorder, so the page arrives with
		// the runtime samples and request breakdowns that surrounded it.
		incidentCfg.OnOpen = func(inc incident.Incident) {
			kind := inc.Kind
			if kind == "" {
				kind = "process"
			}
			if _, err := profiler.WriteFlight(*profDir, "incident."+kind, inc.ID); err != nil {
				fmt.Fprintln(os.Stderr, "csdload: flight dump:", err)
			}
		}
	}
	rec, err := incident.NewRecorder(incidentCfg)
	if err != nil {
		return err
	}

	fl, err := fleet.New(model, fleet.Config{
		Nodes:      *devices,
		QueueDepth: *queueDepth,
		Telemetry:  reg,
		Spans:      spans,
		Events:     events,
		Incidents:  rec,
		Trace:      tracer,
		Prof:       profiler,
	})
	if err != nil {
		return err
	}
	defer fl.Close()

	// The SLO window is the measured part of the run: burn windows and the
	// error budget scale with it (a 10s run lives on a compressed clock).
	window := *duration - *warmup
	objectives := []slo.Objective{
		{
			Name:        "latency",
			Description: fmt.Sprintf("%.0f%% of requests classified within %v of intended arrival", *latencyTarget*100, *latencySLO),
			Kind:        slo.KindLatency,
			Target:      *latencyTarget,
			Threshold:   *latencySLO,
			Window:      window,
		},
		{
			Name:        "availability",
			Description: fmt.Sprintf("%.1f%% of requests succeed", *availTarget*100),
			Kind:        slo.KindAvailability,
			Target:      *availTarget,
			Window:      window,
		},
	}
	if *recallTarget > 0 {
		objectives = append(objectives, slo.Objective{
			Name:        "recall",
			Description: fmt.Sprintf("%.1f%% of ground-truth ransomware windows flagged", *recallTarget*100),
			Kind:        slo.KindRecall,
			Target:      *recallTarget,
			Window:      window,
		})
	}
	if *fprTarget > 0 {
		objectives = append(objectives, slo.Objective{
			Name:        "false-positive",
			Description: fmt.Sprintf("%.1f%% of ground-truth benign windows left unflagged", *fprTarget*100),
			Kind:        slo.KindFalsePositive,
			Target:      *fprTarget,
			Window:      window,
		})
	}
	evaluator, err = slo.NewEvaluator(slo.Config{
		Objectives: objectives,
		Telemetry:  reg,
		Events:     events,
		Incidents:  rec,
	})
	if err != nil {
		return err
	}

	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		defer ln.Close()
		fmt.Fprintf(out, "metrics at http://%s/metrics (slo at /slo.json)\n", ln.Addr())
		extra := map[string]http.Handler{
			"/slo.json":       evaluator.HTTPHandler(),
			"/events.json":    events.HTTPHandler(),
			"/incidents.json": rec.HTTPHandler(),
			"/quality.json":   scorecard.Handler(),
		}
		if profiler != nil {
			extra["/prof.json"] = profiler.Handler()
		}
		handler := telemetry.NewHTTPHandlerOpts(reg, telemetry.HTTPOptions{
			Spans:  spans,
			Extra:  extra,
			Health: fl.Registry().Health,
		})
		go func() { _ = http.Serve(ln, handler) }()
	}

	var steps []load.ChaosStep
	if *chaos {
		steps = chaosPlan(fl, *duration)
		fmt.Fprintf(out, "chaos: %d steps scheduled (drain/fail/rejoin + full-rack blackout)\n", len(steps))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	res, err := load.Run(ctx, load.Config{
		Target:            fl,
		Arrivals:          *arrivals,
		Rate:              *rate,
		Duration:          *duration,
		Warmup:            *warmup,
		PIDs:              *pids,
		Vocab:             lstm.PaperConfig().VocabSize,
		Seed:              *seed,
		Evaluator:         evaluator,
		Events:            events,
		Chaos:             steps,
		Quality:           scorecard,
		QualityThreshold:  *qualityThreshold,
		RansomFraction:    *ransomFraction,
		QualityInjectMiss: *qualityInjectMiss,
	})
	if err != nil && !errors.Is(err, context.Canceled) {
		return err
	}

	fmt.Fprintln(out)
	if err := res.WriteText(out); err != nil {
		return err
	}
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			return err
		}
		if err := res.WriteJSON(f); err != nil {
			f.Close()
			return fmt.Errorf("write %s: %w", *jsonPath, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nSLO report written to %s\n", *jsonPath)
	}
	if profiler != nil {
		path, err := profiler.WriteSnapshot(*profDir)
		if err != nil {
			return fmt.Errorf("write prof snapshot: %w", err)
		}
		fmt.Fprintf(out, "profiler snapshot written to %s\n", path)
	}
	if *qualityJSON != "" {
		if err := writeQualityJSON(*qualityJSON, scorecard); err != nil {
			return err
		}
		fmt.Fprintf(out, "quality scorecard written to %s\n", *qualityJSON)
	}
	if *qualityMinTP > 0 {
		if tp := scorecard.Snapshot().Total.TP; tp < *qualityMinTP {
			return fmt.Errorf("quality gate: %d true positives, want at least %d", tp, *qualityMinTP)
		}
	}
	if *metricsAddr != "" && *hold > 0 {
		fmt.Fprintf(out, "holding metrics endpoint for %v...\n", *hold)
		time.Sleep(*hold)
	}
	return nil
}

// writeQualityJSON writes the scorecard snapshot — the same document
// /quality.json serves — as an indented JSON artifact.
func writeQualityJSON(path string, scorecard *quality.Scorecard) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(scorecard.Snapshot()); err != nil {
		f.Close()
		return fmt.Errorf("write %s: %w", path, err)
	}
	return f.Close()
}

// chaosPlan schedules the fleet disturbances of a -chaos run: a drain and
// rejoin of one device, a hard failure and rejoin of another, and — because
// the fleet's retry-on-spillover masks single-device faults — a short
// full-rack blackout that deliberately violates the availability objective
// so the run demonstrates a fast-burn alert and its auto-opened incident.
func chaosPlan(fl *fleet.Fleet, duration time.Duration) []load.ChaosStep {
	at := func(frac float64) time.Duration {
		return time.Duration(frac * float64(duration))
	}
	var ids []device.ID
	for _, d := range fl.Registry().List() {
		ids = append(ids, d.ID())
	}
	var steps []load.ChaosStep
	if len(ids) >= 2 {
		id := ids[1]
		steps = append(steps,
			load.ChaosStep{At: at(0.35), Name: fmt.Sprintf("drain %s", id), Do: func(context.Context) error {
				return fl.Drain(id, "chaos-drain")
			}},
			load.ChaosStep{At: at(0.45), Name: fmt.Sprintf("rejoin %s", id), Do: func(context.Context) error {
				return fl.Rejoin(id, "chaos-drain-over")
			}},
		)
	}
	if len(ids) >= 3 {
		id := ids[2]
		steps = append(steps,
			load.ChaosStep{At: at(0.5), Name: fmt.Sprintf("fail %s", id), Do: func(context.Context) error {
				return fl.Fail(id, "chaos-fault")
			}},
			load.ChaosStep{At: at(0.6), Name: fmt.Sprintf("rejoin %s", id), Do: func(context.Context) error {
				return fl.Rejoin(id, "chaos-repaired")
			}},
		)
	}
	steps = append(steps,
		load.ChaosStep{At: at(0.7), Name: "blackout: fail all devices", Do: func(ctx context.Context) error {
			var first error
			for _, id := range ids {
				if err := fl.Fail(id, "chaos-blackout"); err != nil && first == nil {
					first = err
				}
			}
			return first
		}},
		load.ChaosStep{At: at(0.85), Name: "blackout over: rejoin all devices", Do: func(ctx context.Context) error {
			var first error
			for _, id := range ids {
				if err := fl.Rejoin(id, "chaos-blackout-over"); err != nil && first == nil {
					first = err
				}
			}
			return first
		}},
	)
	return steps
}
