package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/kfrida1/csdinf/internal/load"
	"github.com/kfrida1/csdinf/internal/quality"
)

// TestRunDeterministicReport runs csdload twice with the same seed at a
// small scale and pins that the schedule digest — the deterministic part of
// the SLO report — is identical, and differs for a different seed.
func TestRunDeterministicReport(t *testing.T) {
	dir := t.TempDir()
	report := func(name string, seed string) load.Result {
		t.Helper()
		path := filepath.Join(dir, name)
		var out bytes.Buffer
		err := run([]string{
			"-devices", "2", "-rate", "300", "-duration", "400ms",
			"-warmup", "100ms", "-seed", seed, "-pids", "64", "-json", path,
		}, &out)
		if err != nil {
			t.Fatalf("run: %v\noutput:\n%s", err, out.String())
		}
		if !strings.Contains(out.String(), "SLO attainment") {
			t.Fatalf("report lacks SLO attainment section:\n%s", out.String())
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var res load.Result
		if err := json.Unmarshal(raw, &res); err != nil {
			t.Fatalf("artifact not valid JSON: %v", err)
		}
		return res
	}

	a := report("a.json", "1")
	b := report("b.json", "1")
	c := report("c.json", "2")
	if a.ScheduleDigest == "" {
		t.Fatal("empty schedule digest")
	}
	if a.ScheduleDigest != b.ScheduleDigest || a.Scheduled != b.Scheduled {
		t.Errorf("same seed diverged: %s/%d vs %s/%d",
			a.ScheduleDigest, a.Scheduled, b.ScheduleDigest, b.Scheduled)
	}
	if c.ScheduleDigest == a.ScheduleDigest {
		t.Errorf("different seeds produced identical digest %s", a.ScheduleDigest)
	}
	if a.SLO == nil || len(a.SLO.Objectives) != 2 {
		t.Fatalf("report SLO = %+v, want latency + availability objectives", a.SLO)
	}
}

// TestRunChaos pins the -chaos contract: the full-rack blackout violates
// the availability objective, a burn-rate alert fires, and an incident is
// auto-opened — all visible in the report artifact.
func TestRunChaos(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chaos.json")
	var out bytes.Buffer
	err := run([]string{
		"-devices", "2", "-rate", "500", "-duration", "1s",
		"-seed", "1", "-pids", "64", "-chaos", "-json", path,
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var res load.Result
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Chaos) == 0 {
		t.Fatal("no chaos steps recorded")
	}
	if res.SLO == nil {
		t.Fatal("no SLO status in artifact")
	}
	var violated, fired bool
	var incidents int64
	for _, o := range res.SLO.Objectives {
		if o.Name == "availability" {
			violated = !o.Met
		}
	}
	for _, a := range res.SLO.Alerts {
		if a.State == "firing" {
			fired = true
		}
		if a.IncidentID != 0 {
			incidents++
		}
	}
	if !violated {
		t.Error("availability objective met despite a full-rack blackout")
	}
	if !fired {
		t.Errorf("no burn-rate alert fired; alerts = %+v", res.SLO.Alerts)
	}
	if incidents == 0 || res.SLO.IncidentsOpened == 0 {
		t.Errorf("no incident auto-opened (transitions %+v, opened %d)",
			res.SLO.Alerts, res.SLO.IncidentsOpened)
	}
	if !strings.Contains(out.String(), "chaos steps") {
		t.Errorf("text report lacks chaos section:\n%s", out.String())
	}
}

// TestRunQualityInjectMissPagesRecall is the quality loop end to end: with
// every verdict forced un-flagged, ground-truth ransomware is 100% missed,
// the recall objective burns its entire budget, the fast-burn rule pages an
// incident, and the incident's flight dump carries the scorecard snapshot
// whose confusion matrix burned it.
func TestRunQualityInjectMissPagesRecall(t *testing.T) {
	dir := t.TempDir()
	reportPath := filepath.Join(dir, "report.json")
	qualityPath := filepath.Join(dir, "quality.json")
	profDir := filepath.Join(dir, "prof")
	var out bytes.Buffer
	err := run([]string{
		"-devices", "2", "-rate", "800", "-duration", "700ms",
		"-seed", "13", "-pids", "100", "-ransom-fraction", "0.3",
		"-quality-inject-miss", "-recall-target", "0.99",
		"-prof", "-prof-dir", profDir,
		"-json", reportPath, "-quality-json", qualityPath,
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}

	raw, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	var res load.Result
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}

	// 1. The scorecard shows total blindness: zero recall, every
	//    ransomware window a false negative.
	if res.Quality == nil {
		t.Fatal("no quality block in the report artifact")
	}
	if res.Quality.Total.TP != 0 || res.Quality.Total.FN == 0 {
		t.Fatalf("confusion %+v, want tp=0 and misses under inject-miss", res.Quality.Total)
	}

	// 2. The recall objective is violated with its budget exhausted, and
	//    its paging rule fired through to an incident.
	if res.SLO == nil {
		t.Fatal("no SLO status")
	}
	var recall bool
	for _, o := range res.SLO.Objectives {
		if o.Name == "recall" {
			recall = true
			if o.Met || o.BudgetRemaining > 0 {
				t.Errorf("recall objective %+v, want violated with exhausted budget", o)
			}
		}
	}
	if !recall {
		t.Fatal("no recall objective in the report")
	}
	var pagedIncident int64
	for _, a := range res.SLO.Alerts {
		if a.Objective == "recall" && a.State == "firing" && a.IncidentID != 0 {
			pagedIncident = a.IncidentID
		}
	}
	if pagedIncident == 0 {
		t.Fatalf("no firing recall alert with an incident; alerts = %+v", res.SLO.Alerts)
	}

	// 3. The incident's flight dump embeds the scorecard snapshot.
	flights, err := filepath.Glob(filepath.Join(profDir, "flight-*.json"))
	if err != nil || len(flights) == 0 {
		t.Fatalf("no flight dumps in %s (err %v)", profDir, err)
	}
	var dumped bool
	for _, path := range flights {
		rawDump, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var dump struct {
			Reason string           `json:"reason"`
			Extra  quality.Snapshot `json:"extra"`
		}
		if err := json.Unmarshal(rawDump, &dump); err != nil {
			t.Fatalf("flight dump %s not valid JSON: %v", path, err)
		}
		if dump.Extra.Windows > 0 && dump.Extra.Total.FN > 0 {
			dumped = true
		}
	}
	if !dumped {
		t.Errorf("no flight dump carries a populated scorecard snapshot (%d dumps)", len(flights))
	}

	// 4. The standalone quality artifact matches the report's snapshot.
	rawQ, err := os.ReadFile(qualityPath)
	if err != nil {
		t.Fatal(err)
	}
	var artifact quality.Snapshot
	if err := json.Unmarshal(rawQ, &artifact); err != nil {
		t.Fatal(err)
	}
	if artifact.Total.FN != res.Quality.Total.FN || artifact.Windows != res.Quality.Windows {
		t.Errorf("quality artifact %+v diverges from report %+v", artifact.Total, res.Quality.Total)
	}

	// 5. The min-TP gate turns total blindness into a hard failure.
	var gateOut bytes.Buffer
	err = run([]string{
		"-devices", "1", "-rate", "400", "-duration", "300ms",
		"-seed", "13", "-pids", "50", "-ransom-fraction", "0.3",
		"-quality-inject-miss", "-quality-min-tp", "1",
	}, &gateOut)
	if err == nil || !strings.Contains(err.Error(), "quality gate") {
		t.Errorf("min-tp gate error = %v, want a quality gate failure", err)
	}
}
