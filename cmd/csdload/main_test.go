package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/kfrida1/csdinf/internal/load"
)

// TestRunDeterministicReport runs csdload twice with the same seed at a
// small scale and pins that the schedule digest — the deterministic part of
// the SLO report — is identical, and differs for a different seed.
func TestRunDeterministicReport(t *testing.T) {
	dir := t.TempDir()
	report := func(name string, seed string) load.Result {
		t.Helper()
		path := filepath.Join(dir, name)
		var out bytes.Buffer
		err := run([]string{
			"-devices", "2", "-rate", "300", "-duration", "400ms",
			"-warmup", "100ms", "-seed", seed, "-pids", "64", "-json", path,
		}, &out)
		if err != nil {
			t.Fatalf("run: %v\noutput:\n%s", err, out.String())
		}
		if !strings.Contains(out.String(), "SLO attainment") {
			t.Fatalf("report lacks SLO attainment section:\n%s", out.String())
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var res load.Result
		if err := json.Unmarshal(raw, &res); err != nil {
			t.Fatalf("artifact not valid JSON: %v", err)
		}
		return res
	}

	a := report("a.json", "1")
	b := report("b.json", "1")
	c := report("c.json", "2")
	if a.ScheduleDigest == "" {
		t.Fatal("empty schedule digest")
	}
	if a.ScheduleDigest != b.ScheduleDigest || a.Scheduled != b.Scheduled {
		t.Errorf("same seed diverged: %s/%d vs %s/%d",
			a.ScheduleDigest, a.Scheduled, b.ScheduleDigest, b.Scheduled)
	}
	if c.ScheduleDigest == a.ScheduleDigest {
		t.Errorf("different seeds produced identical digest %s", a.ScheduleDigest)
	}
	if a.SLO == nil || len(a.SLO.Objectives) != 2 {
		t.Fatalf("report SLO = %+v, want latency + availability objectives", a.SLO)
	}
}

// TestRunChaos pins the -chaos contract: the full-rack blackout violates
// the availability objective, a burn-rate alert fires, and an incident is
// auto-opened — all visible in the report artifact.
func TestRunChaos(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chaos.json")
	var out bytes.Buffer
	err := run([]string{
		"-devices", "2", "-rate", "500", "-duration", "1s",
		"-seed", "1", "-pids", "64", "-chaos", "-json", path,
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var res load.Result
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Chaos) == 0 {
		t.Fatal("no chaos steps recorded")
	}
	if res.SLO == nil {
		t.Fatal("no SLO status in artifact")
	}
	var violated, fired bool
	var incidents int64
	for _, o := range res.SLO.Objectives {
		if o.Name == "availability" {
			violated = !o.Met
		}
	}
	for _, a := range res.SLO.Alerts {
		if a.State == "firing" {
			fired = true
		}
		if a.IncidentID != 0 {
			incidents++
		}
	}
	if !violated {
		t.Error("availability objective met despite a full-rack blackout")
	}
	if !fired {
		t.Errorf("no burn-rate alert fired; alerts = %+v", res.SLO.Alerts)
	}
	if incidents == 0 || res.SLO.IncidentsOpened == 0 {
		t.Errorf("no incident auto-opened (transitions %+v, opened %d)",
			res.SLO.Alerts, res.SLO.IncidentsOpened)
	}
	if !strings.Contains(out.String(), "chaos steps") {
		t.Errorf("text report lacks chaos section:\n%s", out.String())
	}
}
