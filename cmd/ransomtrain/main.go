// Command ransomtrain performs the offline training stage of §III-A: it
// fits the embedding+LSTM+FC classifier on an API-call CSV (or a freshly
// synthesized corpus), reports the convergence trajectory and detection
// metrics, and exports the weights in the text format the CSD host program
// ingests at FPGA initialization.
//
// Usage:
//
//	ransomtrain -out weights.txt                      # synthesize + train
//	ransomtrain -data dataset.csv -out weights.txt    # train on a CSV
//	ransomtrain -reports analyses/ -out weights.txt   # train on sandbox reports
//	ransomtrain -epochs 60 -batch 64 -lr 0.002
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/kfrida1/csdinf/internal/dataset"
	"github.com/kfrida1/csdinf/internal/report"
	"github.com/kfrida1/csdinf/internal/train"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ransomtrain:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ransomtrain", flag.ContinueOnError)
	data := fs.String("data", "", "input CSV (empty: synthesize a 1/10-scale corpus)")
	reportsDir := fs.String("reports", "", "directory of Cuckoo-style JSON analysis reports to train on")
	out := fs.String("out", "weights.txt", "output weight file")
	epochs := fs.Int("epochs", 40, "training epochs")
	batch := fs.Int("batch", 32, "mini-batch size")
	lr := fs.Float64("lr", 3e-3, "Adam learning rate")
	testFrac := fs.Float64("test", 0.2, "held-out test fraction")
	seed := fs.Int64("seed", 1, "seed")
	target := fs.Float64("target", 0, "early-stop test accuracy (0 = run all epochs)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var ds *dataset.Dataset
	if *reportsDir != "" {
		var err error
		ds, err = datasetFromReports(*reportsDir, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("windowed %d sequences from reports in %s\n", len(ds.Sequences), *reportsDir)
	} else if *data != "" {
		f, err := os.Open(*data)
		if err != nil {
			return fmt.Errorf("open %s: %w", *data, err)
		}
		ds, err = dataset.ReadCSV(f)
		f.Close()
		if err != nil {
			return err
		}
		fmt.Printf("loaded %d sequences (window %d) from %s\n", len(ds.Sequences), ds.Window, *data)
	} else {
		var err error
		ds, err = dataset.Build(dataset.BuildConfig{
			RansomwareCount: dataset.PaperRansomwareCount / 10,
			BenignCount:     dataset.PaperBenignCount / 10,
			Seed:            *seed,
		})
		if err != nil {
			return err
		}
		fmt.Printf("synthesized %d sequences (window %d)\n", len(ds.Sequences), ds.Window)
	}

	trainDS, testDS, err := ds.Split(*testFrac, *seed+1)
	if err != nil {
		return err
	}
	fmt.Printf("training on %d sequences, evaluating on %d\n", len(trainDS.Sequences), len(testDS.Sequences))

	res, err := train.Train(trainDS, testDS, train.Config{
		Epochs:         *epochs,
		BatchSize:      *batch,
		LR:             *lr,
		Seed:           *seed,
		TargetAccuracy: *target,
	})
	if err != nil {
		return err
	}

	for _, rec := range res.History {
		fmt.Printf("epoch %4d  loss %.4f  acc %.4f  prec %.4f  rec %.4f  f1 %.4f\n",
			rec.Epoch, rec.TrainLoss, rec.Test.Accuracy, rec.Test.Precision, rec.Test.Recall, rec.Test.F1)
	}
	embed, lstmP, head := res.Model.ParamCount()
	fmt.Printf("model: %d embedding + %d LSTM + %d head parameters\n", embed, lstmP, head)
	fmt.Printf("final: %s\n", res.FinalConfusion.String())

	f, err := os.Create(*out)
	if err != nil {
		return fmt.Errorf("create %s: %w", *out, err)
	}
	defer f.Close()
	if err := res.Model.WriteText(f); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("close %s: %w", *out, err)
	}
	fmt.Printf("weights exported to %s (host-initialization format)\n", *out)
	return nil
}

// datasetFromReports windows every analysis report in dir into a corpus.
func datasetFromReports(dir string, seed int64) (*dataset.Dataset, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("no *.json reports in %s", dir)
	}
	var traces []dataset.LabeledTrace
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("open %s: %w", path, err)
		}
		r, err := report.Read(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		trace, err := r.Trace()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		traces = append(traces, dataset.LabeledTrace{
			Items:      trace,
			Ransomware: r.Ransomware(),
			Source:     r.Target.Name,
		})
	}
	return dataset.FromTraces(traces, 0, 0, seed)
}
