package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/kfrida1/csdinf/internal/dataset"
	"github.com/kfrida1/csdinf/internal/lstm"
	"github.com/kfrida1/csdinf/internal/report"
	"github.com/kfrida1/csdinf/internal/sandbox"
)

func writeSmallCSV(t *testing.T, path string) {
	t.Helper()
	ds, err := dataset.Build(dataset.BuildConfig{
		RansomwareCount: 152, BenignCount: 155, Window: 30, Stride: 15, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := ds.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
}

func TestTrainFromCSV(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "ds.csv")
	weights := filepath.Join(dir, "w.txt")
	writeSmallCSV(t, csv)

	err := run([]string{"-data", csv, "-out", weights, "-epochs", "2", "-seed", "4"})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(weights)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m, err := lstm.ReadText(f)
	if err != nil {
		t.Fatal(err)
	}
	embed, lstmP, _ := m.ParamCount()
	if embed+lstmP != 7472 {
		t.Fatalf("exported model params = %d", embed+lstmP)
	}
}

func TestTrainFromReports(t *testing.T) {
	dir := t.TempDir()
	// Write a handful of tiny reports.
	for i := 0; i < 4; i++ {
		fam := sandbox.Families[i%len(sandbox.Families)]
		p, err := sandbox.RansomwareProfile(fam.Name, 0)
		if err != nil {
			t.Fatal(err)
		}
		trace, err := p.Generate(250, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		r, err := report.FromTrace(report.Info{ID: i}, report.Target{Name: "x", Family: fam.Name}, trace)
		if err != nil {
			t.Fatal(err)
		}
		f, err := os.Create(filepath.Join(dir, filepath.Base(fam.Name)+".json"))
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Write(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	// Add a benign report so both classes exist.
	bp, err := sandbox.BenignProfile(sandbox.BenignApps[0])
	if err != nil {
		t.Fatal(err)
	}
	trace, err := bp.Generate(250, 9)
	if err != nil {
		t.Fatal(err)
	}
	br, err := report.FromTrace(report.Info{ID: 99}, report.Target{Name: "app"}, trace)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(filepath.Join(dir, "benign.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := br.Write(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	weights := filepath.Join(t.TempDir(), "w.txt")
	if err := run([]string{"-reports", dir, "-out", weights, "-epochs", "1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(weights); err != nil {
		t.Fatal(err)
	}
}

func TestTrainErrors(t *testing.T) {
	if err := run([]string{"-data", "/nonexistent.csv"}); err == nil {
		t.Error("missing CSV accepted")
	}
	if err := run([]string{"-reports", t.TempDir()}); err == nil {
		t.Error("empty reports dir accepted")
	}
}
