// Command csddetect demonstrates the paper's ransomware use case end to
// end: it deploys a trained classifier onto the simulated SmartSSD, then
// replays a live API-call stream — a benign workload that is infected by a
// ransomware variant partway through — and shows the in-storage detector
// alerting and triggering mitigation.
//
// The full pipeline is instrumented: engine transfer/compute histograms,
// scheduler queue waits, and verdict counters all report into one telemetry
// registry, summarized on stdout at exit and optionally served over HTTP:
//
//	csddetect -metrics-addr 127.0.0.1:9100         # /metrics, /metrics.json, /healthz
//	csddetect -metrics-addr 127.0.0.1:9100 -hold 1m
//
// Usage:
//
//	csddetect -weights weights.txt                 # use exported weights
//	csddetect                                      # quick-train a model first
//	csddetect -family Lockbit -variant 2 -seed 9
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"github.com/kfrida1/csdinf/internal/core"
	"github.com/kfrida1/csdinf/internal/csd"
	"github.com/kfrida1/csdinf/internal/dataset"
	"github.com/kfrida1/csdinf/internal/detect"
	"github.com/kfrida1/csdinf/internal/infer"
	"github.com/kfrida1/csdinf/internal/lstm"
	"github.com/kfrida1/csdinf/internal/sandbox"
	"github.com/kfrida1/csdinf/internal/serve"
	"github.com/kfrida1/csdinf/internal/telemetry"
	"github.com/kfrida1/csdinf/internal/trace"
	"github.com/kfrida1/csdinf/internal/train"
	"github.com/kfrida1/csdinf/internal/winapi"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "csddetect:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("csddetect", flag.ContinueOnError)
	weights := fs.String("weights", "", "weight file from ransomtrain (empty: quick-train now)")
	family := fs.String("family", "Wannacry", "ransomware family to unleash")
	variant := fs.Int("variant", 0, "variant index within the family")
	benignCalls := fs.Int("benign-calls", 600, "benign API calls before infection")
	infectedCalls := fs.Int("infected-calls", 2000, "ransomware API calls to replay (max)")
	seed := fs.Int64("seed", 1, "seed")
	threshold := fs.Float64("threshold", 0.5, "alert probability threshold")
	trainEpochs := fs.Int("train-epochs", 15, "epochs for the quick-train fallback")
	trainScale := fs.Int("train-scale", 20, "1/N corpus scale for the quick-train fallback")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /metrics.json, /spans.json, /healthz on this address (empty: off)")
	hold := fs.Duration("hold", 0, "keep the metrics endpoint up this long after the run")
	pprofOn := fs.Bool("pprof", false, "additionally mount net/http/pprof at /debug/pprof/ on the metrics address")
	tracePath := fs.String("trace", "", "write a Chrome trace (Perfetto-loadable) of the device timeline to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *pprofOn && *metricsAddr == "" {
		return errors.New("-pprof requires -metrics-addr")
	}

	model, err := loadOrTrain(*weights, *seed, *trainEpochs, *trainScale)
	if err != nil {
		return err
	}

	// One registry and span ring for the whole stack: the engine, the
	// scheduler, and the detector all report into it.
	reg := telemetry.NewRegistry()
	spans := telemetry.NewSpanLog(32)
	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		defer ln.Close()
		fmt.Printf("metrics at http://%s/metrics\n", ln.Addr())
		mux := http.NewServeMux()
		mux.Handle("/", telemetry.NewHTTPHandler(reg, spans))
		if *pprofOn {
			// Mount explicitly rather than blank-importing, so the Go
			// profiling surface exists only when asked for.
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			fmt.Printf("pprof at http://%s/debug/pprof/\n", ln.Addr())
		}
		go func() {
			_ = http.Serve(ln, mux)
		}()
	}

	var tracer *trace.Tracer
	if *tracePath != "" {
		tracer = trace.New()
	}

	dev, err := csd.New(csd.Config{})
	if err != nil {
		return err
	}
	eng, err := core.Deploy(dev, model, core.DeployConfig{Telemetry: reg, Trace: tracer})
	if err != nil {
		return err
	}
	fmt.Printf("deployed classifier to CSD (host init %v); per-item FPGA time: ", eng.InitTime())
	_, _, _, tot := eng.PerItemMicros()
	fmt.Printf("%.3f µs\n", tot)

	// Serve the single engine through the scheduler so queue-wait metrics
	// cover the request path even in this one-device demo.
	srv, err := serve.New([]infer.Inferencer{eng}, serve.Config{Telemetry: reg, Spans: spans, Trace: tracer})
	if err != nil {
		return err
	}
	defer srv.Close()

	det, err := detect.New(srv, detect.Config{
		Threshold: *threshold,
		Telemetry: reg,
		Spans:     spans,
		OnBlock: func(e detect.Event) {
			dev.SSD().Quarantine(true) // block all writes at the device level
			fmt.Printf("[call %6d] *** MITIGATION: write quarantine engaged (p=%.3f) ***\n",
				e.CallIndex, e.Probability)
		},
	})
	if err != nil {
		return err
	}

	// Phase 1: benign desktop activity.
	benign := sandbox.ManualInteractionProfile()
	benignTrace, err := benign.Generate(*benignCalls, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("\n--- replaying %d benign API calls (manual desktop interaction) ---\n", len(benignTrace))
	if err := replay(det, benignTrace, false); err != nil {
		return err
	}

	// Phase 2: the infection begins.
	prof, err := sandbox.RansomwareProfile(*family, *variant)
	if err != nil {
		return err
	}
	infected, err := prof.Generate(*infectedCalls, *seed+1)
	if err != nil {
		return err
	}
	fmt.Printf("--- %s.v%d begins executing (%d calls max) ---\n", *family, *variant, len(infected))
	if err := replay(det, infected, true); err != nil {
		return err
	}

	s := det.Stats()
	fmt.Printf("\nsummary: %d calls observed, %d windows classified, %d alerts, blocked=%v\n",
		s.CallsObserved, s.WindowsEvaluated, s.Alerts, s.Blocked)
	printTelemetry(reg, spans)
	if tracer != nil {
		if err := writeTrace(*tracePath, tracer); err != nil {
			return err
		}
	}
	if !s.Blocked {
		return fmt.Errorf("infection ran to completion without mitigation")
	}
	stoppedAfter := s.CallsObserved - int64(len(benignTrace))
	fmt.Printf("ransomware stopped after %d of its API calls (%.1f%% of the trace executed)\n",
		stoppedAfter, 100*float64(stoppedAfter)/float64(len(infected)))
	if _, err := dev.SSD().Write(0, []byte("ciphertext")); err != nil {
		fmt.Printf("subsequent encryption write rejected by the drive: %v\n", err)
	}
	if *metricsAddr != "" && *hold > 0 {
		fmt.Printf("holding metrics endpoint for %v...\n", *hold)
		time.Sleep(*hold)
	}
	return nil
}

// writeTrace exports the device timeline as Chrome trace JSON and prints
// the aggregated cycle/occupancy profile.
func writeTrace(path string, tracer *trace.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tracer.WriteChrome(f); err != nil {
		f.Close()
		return fmt.Errorf("write trace %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("\ndevice timeline written to %s (open at https://ui.perfetto.dev)\n\n", path)
	fmt.Print(tracer.Profile().Format())
	return nil
}

// printTelemetry renders the registry's summary tables and the most recent
// pipeline spans on stdout.
func printTelemetry(reg *telemetry.Registry, spans *telemetry.SpanLog) {
	fmt.Println("\ntelemetry:")
	if err := reg.WriteSummary(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "csddetect: telemetry summary:", err)
	}
	recent := spans.Snapshot()
	if len(recent) == 0 {
		return
	}
	show := recent
	if len(show) > 3 {
		show = show[len(show)-3:]
	}
	fmt.Printf("last %d pipeline spans (of %d retained):\n", len(show), len(recent))
	for _, sp := range show {
		fmt.Printf("  %s\n", sp.String())
	}
}

func replay(det *detect.Detector, trace []int, verbose bool) error {
	for _, call := range trace {
		ev, err := det.Observe(context.Background(), call)
		if err != nil {
			if errors.Is(err, detect.ErrBlocked) {
				return nil
			}
			return err
		}
		if ev == nil {
			continue
		}
		if verbose || ev.Action != detect.ActionNone {
			name, _ := winapi.Name(call)
			fmt.Printf("[call %6d] window p=%.3f action=%-5s (last call: %s)\n",
				ev.CallIndex, ev.Probability, ev.Action, name)
		}
		if ev.Action == detect.ActionBlock {
			return nil
		}
	}
	return nil
}

func loadOrTrain(path string, seed int64, epochs, scale int) (*lstm.Model, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("open %s: %w", path, err)
		}
		defer f.Close()
		m, err := lstm.ReadText(f)
		if err != nil {
			return nil, err
		}
		fmt.Printf("loaded weights from %s\n", path)
		return m, nil
	}

	fmt.Printf("no weight file given; quick-training on a 1/%d-scale corpus...\n", scale)
	ds, err := dataset.Build(dataset.BuildConfig{
		RansomwareCount: dataset.PaperRansomwareCount / scale,
		BenignCount:     dataset.PaperBenignCount / scale,
		Seed:            seed,
	})
	if err != nil {
		return nil, err
	}
	trainDS, testDS, err := ds.Split(0.2, seed+1)
	if err != nil {
		return nil, err
	}
	res, err := train.Train(trainDS, testDS, train.Config{
		Epochs: epochs, Seed: seed, TargetAccuracy: 0.97, EvalEvery: 1,
	})
	if err != nil {
		return nil, err
	}
	fmt.Printf("quick-trained to test accuracy %.4f in %d epochs\n", res.Final.Accuracy, res.EpochsRun)
	return res.Model, nil
}
