// Command csddetect demonstrates the paper's ransomware use case end to
// end: it deploys a trained classifier onto the simulated SmartSSD, then
// replays a live API-call stream — a benign desktop process running
// alongside a process that ransomware hijacks — and shows the in-storage
// detector alerting and triggering mitigation.
//
// The full pipeline is instrumented: engine transfer/compute histograms,
// scheduler queue waits, and verdict counters all report into one telemetry
// registry, summarized on stdout at exit and optionally served over HTTP;
// the structured event log and incident forensics ride the same stack:
//
//	csddetect -metrics-addr 127.0.0.1:9100         # /metrics, /events.json, /incidents.json, ...
//	csddetect -events events.jsonl                 # JSON-lines event stream (jq-friendly)
//	csddetect -incident-dir incidents/             # one JSON forensic report per incident
//	csddetect -prof -prof-dir prof/                # continuous profiler + incident flight dumps
//
// Usage:
//
//	csddetect -weights weights.txt                 # use exported weights
//	csddetect                                      # quick-train a model first
//	csddetect -family Lockbit -variant 2 -seed 9
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"github.com/kfrida1/csdinf/internal/core"
	"github.com/kfrida1/csdinf/internal/csd"
	"github.com/kfrida1/csdinf/internal/cti"
	"github.com/kfrida1/csdinf/internal/dataset"
	"github.com/kfrida1/csdinf/internal/detect"
	"github.com/kfrida1/csdinf/internal/device"
	"github.com/kfrida1/csdinf/internal/eventlog"
	"github.com/kfrida1/csdinf/internal/fleet"
	"github.com/kfrida1/csdinf/internal/incident"
	"github.com/kfrida1/csdinf/internal/infer"
	"github.com/kfrida1/csdinf/internal/lstm"
	"github.com/kfrida1/csdinf/internal/prof"
	"github.com/kfrida1/csdinf/internal/quality"
	"github.com/kfrida1/csdinf/internal/sandbox"
	"github.com/kfrida1/csdinf/internal/serve"
	"github.com/kfrida1/csdinf/internal/telemetry"
	"github.com/kfrida1/csdinf/internal/trace"
	"github.com/kfrida1/csdinf/internal/train"
	"github.com/kfrida1/csdinf/internal/winapi"
)

// The demo's two monitored processes: a benign desktop process and the
// process the ransomware hijacks. The mux tracks each separately, so the
// incident report attributes every window to the infected PID.
const (
	benignPID = 1001
	ransomPID = 2002
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "csddetect:", err)
		os.Exit(1)
	}
}

// pipeline is the full detection stack csddetect drives: CSD device(s) →
// in-storage engine(s) → scheduler (or fleet placement, with -devices > 1)
// → hot-swap wrapper → per-process detector mux, with the incident
// recorder and structured event log fed at every layer. Tests build it
// directly to drive synthetic streams.
type pipeline struct {
	dev     *csd.SmartSSD // first (or only) drive; quarantine anchor
	eng     *core.Engine  // nil in fleet mode
	srv     *serve.Server // nil in fleet mode
	fl      *fleet.Fleet  // nil in single-device mode
	hot     *cti.HotSwapEngine
	mux     *detect.Mux
	rec     *incident.Recorder
	events  *eventlog.Logger
	quality *quality.Scorecard
}

type pipelineConfig struct {
	model     *lstm.Model
	threshold float64
	// devices is the CSD count; 0 or 1 serves one drive through the
	// single-node scheduler, >1 provisions a fleet with per-process
	// (tenant) placement.
	devices int
	reg     *telemetry.Registry
	spans   *telemetry.SpanLog
	tracer  *trace.Tracer
	events  *eventlog.Logger
	// profiler, when non-nil, attributes per-stage cost to every request
	// and dumps its flight recorder whenever an incident opens.
	profiler *prof.Profiler
	// onBlock, when non-nil, observes mitigation (the pipeline always
	// engages the device write quarantine first).
	onBlock func(detect.Event)
	// onIncident, when non-nil, fires as each incident opens (csddetect
	// wires the profiler's flight dump here).
	onIncident func(incident.Incident)
}

func buildPipeline(cfg pipelineConfig) (*pipeline, error) {
	p := &pipeline{events: cfg.events}
	var pred infer.Inferencer
	var quarantine func()
	if cfg.devices > 1 {
		fl, err := fleet.New(cfg.model, fleet.Config{
			Nodes:     cfg.devices,
			Telemetry: cfg.reg, Spans: cfg.spans, Trace: cfg.tracer, Events: cfg.events,
			Prof: cfg.profiler,
		})
		if err != nil {
			return nil, err
		}
		p.fl = fl
		p.dev = fl.Device(0)
		pred = fl
		quarantine = func() {
			// The write quarantine is rack-wide: every drive the process
			// could have placed onto rejects writes.
			for i := 0; i < fl.Nodes(); i++ {
				fl.Device(i).SSD().Quarantine(true)
			}
		}
	} else {
		dev, err := csd.New(csd.Config{})
		if err != nil {
			return nil, err
		}
		eng, err := core.Deploy(dev, cfg.model, core.DeployConfig{
			Telemetry: cfg.reg, Trace: cfg.tracer, Events: cfg.events,
		})
		if err != nil {
			return nil, err
		}
		// Serve the single engine through the scheduler so queue-wait
		// metrics and device attribution cover the request path even in
		// this one-device demo.
		srv, err := serve.New([]infer.Inferencer{eng}, serve.Config{
			Telemetry: cfg.reg, Spans: cfg.spans, Trace: cfg.tracer, Events: cfg.events,
			Prof: cfg.profiler,
		})
		if err != nil {
			return nil, err
		}
		p.dev, p.eng, p.srv = dev, eng, srv
		pred = srv
		quarantine = func() { dev.SSD().Quarantine(true) }
	}
	// The hot-swap wrapper is the CTI maintenance seam; its generation
	// stamps incident reports with the model version that produced the
	// verdicts.
	hot, err := cti.NewHotSwapEngine(pred)
	if err != nil {
		p.Close()
		return nil, err
	}
	if cfg.reg != nil {
		hot.Instrument(cfg.reg)
	}
	hot.SetEvents(cfg.events)
	rec, err := incident.NewRecorder(incident.Config{
		Generation: hot.Generation, Events: cfg.events, OnOpen: cfg.onIncident,
	})
	if err != nil {
		p.Close()
		return nil, err
	}
	// The demo traffic comes from sandbox profiles, so ground truth is
	// known: the scorecard judges every window verdict against the label
	// replay stamps on the context.
	scorecard, err := quality.New(quality.Config{Telemetry: cfg.reg, Events: cfg.events})
	if err != nil {
		p.Close()
		return nil, err
	}
	p.quality = scorecard
	mux, err := detect.NewMux(hot, detect.MuxConfig{
		Detector: detect.Config{
			Threshold: cfg.threshold,
			Telemetry: cfg.reg,
			Spans:     cfg.spans,
			OnWindow:  rec.Window,
			Events:    cfg.events,
			Prof:      cfg.profiler,
			Quality:   scorecard,
			OnBlock: func(e detect.Event) {
				quarantine() // block all writes at the device level
				if cfg.onBlock != nil {
					cfg.onBlock(e)
				}
			},
		},
		OnEvict: rec.Evict,
	})
	if err != nil {
		p.Close()
		return nil, err
	}
	p.hot, p.mux, p.rec = hot, mux, rec
	return p, nil
}

// registry returns the device registry of whichever serving layer is live,
// for the /healthz readiness judgment (nil in single-node mode without a
// configured registry — then /healthz stays unconditionally ok).
func (p *pipeline) registry() *device.Registry {
	if p.fl != nil {
		return p.fl.Registry()
	}
	if p.srv != nil {
		return p.srv.Registry()
	}
	return nil
}

func (p *pipeline) Close() error {
	if p.fl != nil {
		return p.fl.Close()
	}
	if p.srv != nil {
		return p.srv.Close()
	}
	return nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("csddetect", flag.ContinueOnError)
	weights := fs.String("weights", "", "weight file from ransomtrain (empty: quick-train now)")
	family := fs.String("family", "Wannacry", "ransomware family to unleash")
	variant := fs.Int("variant", 0, "variant index within the family")
	benignCalls := fs.Int("benign-calls", 600, "benign API calls before infection")
	infectedCalls := fs.Int("infected-calls", 2000, "ransomware API calls to replay (max)")
	seed := fs.Int64("seed", 1, "seed")
	threshold := fs.Float64("threshold", 0.5, "alert probability threshold")
	trainEpochs := fs.Int("train-epochs", 15, "epochs for the quick-train fallback")
	trainScale := fs.Int("train-scale", 20, "1/N corpus scale for the quick-train fallback")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /metrics.json, /spans.json, /events.json, /incidents.json, /healthz on this address (empty: off)")
	hold := fs.Duration("hold", 0, "keep the metrics endpoint up this long after the run")
	pprofOn := fs.Bool("pprof", false, "additionally mount net/http/pprof at /debug/pprof/ on the metrics address")
	tracePath := fs.String("trace", "", "write a Chrome trace (Perfetto-loadable) of the device timeline to this file")
	eventsPath := fs.String("events", "", "write the structured event log as JSON lines to this file (enables debug-level events)")
	incidentDir := fs.String("incident-dir", "", "write one JSON forensic report per incident into this directory")
	devices := fs.Int("devices", 1, "CSD count; >1 provisions a fleet with per-process placement")
	profOn := fs.Bool("prof", false, "run the continuous profiler: runtime sampling, per-stage cost attribution, incident flight dumps")
	profDir := fs.String("prof-dir", "prof-out", "with -prof: directory for flight dumps and the final prof.json snapshot")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *pprofOn && *metricsAddr == "" {
		return errors.New("-pprof requires -metrics-addr")
	}

	model, err := loadOrTrain(*weights, *seed, *trainEpochs, *trainScale)
	if err != nil {
		return err
	}

	// One registry, span ring, and event log for the whole stack: the
	// engine, the scheduler, and the detector all report into them.
	reg := telemetry.NewRegistry()
	spans := telemetry.NewSpanLog(32)
	evCfg := eventlog.Config{}
	if *eventsPath != "" {
		// The file sink captures the full forensic stream, including the
		// per-window and per-DMA debug events.
		evCfg.MinLevel = eventlog.LevelDebug
	}
	events := eventlog.New(evCfg)
	defer events.Close()
	if *eventsPath != "" {
		sink, err := eventlog.NewFileSink(*eventsPath)
		if err != nil {
			return fmt.Errorf("event log: %w", err)
		}
		events.Attach("file", sink, 0)
	}

	var tracer *trace.Tracer
	if *tracePath != "" {
		tracer = trace.New()
	}

	var profiler *prof.Profiler
	var onIncident func(incident.Incident)
	if *profOn {
		profiler, err = prof.New(prof.Config{Telemetry: reg, Events: events})
		if err != nil {
			return err
		}
		defer profiler.Close()
		// Each opening incident dumps the flight recorder: the forensic
		// report arrives with the runtime samples and per-stage request
		// breakdowns that surrounded the detection.
		onIncident = func(inc incident.Incident) {
			kind := inc.Kind
			if kind == "" {
				kind = "process"
			}
			if _, err := profiler.WriteFlight(*profDir, "incident."+kind, inc.ID); err != nil {
				fmt.Fprintln(os.Stderr, "csddetect: flight dump:", err)
			}
		}
	}

	p, err := buildPipeline(pipelineConfig{
		model: model, threshold: *threshold, devices: *devices,
		reg: reg, spans: spans, tracer: tracer, events: events,
		profiler: profiler, onIncident: onIncident,
		onBlock: func(e detect.Event) {
			fmt.Printf("[call %6d] *** MITIGATION: write quarantine engaged (p=%.3f) ***\n",
				e.CallIndex, e.Probability)
		},
	})
	if err != nil {
		return err
	}
	defer p.Close()
	if p.eng != nil {
		fmt.Printf("deployed classifier to CSD (host init %v); per-item FPGA time: ", p.eng.InitTime())
		_, _, _, tot := p.eng.PerItemMicros()
		fmt.Printf("%.3f µs\n", tot)
	} else {
		fmt.Printf("deployed classifier to a %d-device fleet (per-process placement)\n", p.fl.Nodes())
	}

	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		defer ln.Close()
		fmt.Printf("metrics at http://%s/metrics\n", ln.Addr())
		mux := http.NewServeMux()
		mux.Handle("/", telemetry.NewHTTPHandlerOpts(reg, telemetry.HTTPOptions{
			Spans:  spans,
			Extra:  extraHandlers(events, p.rec, profiler, p.quality),
			Health: p.registry().Health,
		}))
		if *pprofOn {
			// Mount explicitly rather than blank-importing, so the Go
			// profiling surface exists only when asked for.
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			fmt.Printf("pprof at http://%s/debug/pprof/\n", ln.Addr())
		}
		go func() {
			_ = http.Serve(ln, mux)
		}()
	}

	// Phase 1: benign desktop activity on its own process.
	benign := sandbox.ManualInteractionProfile()
	benignTrace, err := benign.Generate(*benignCalls, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("\n--- replaying %d benign API calls (manual desktop interaction, pid %d) ---\n",
		len(benignTrace), benignPID)
	benignCtx := quality.WithLabel(context.Background(), benign.Label())
	if err := replay(benignCtx, p.mux, benignPID, benignTrace, false); err != nil {
		return err
	}

	// Phase 2: the infection begins on a second process.
	profile, err := sandbox.RansomwareProfile(*family, *variant)
	if err != nil {
		return err
	}
	infected, err := profile.Generate(*infectedCalls, *seed+1)
	if err != nil {
		return err
	}
	fmt.Printf("--- %s.v%d begins executing as pid %d (%d calls max) ---\n",
		*family, *variant, ransomPID, len(infected))
	ransomCtx := quality.WithLabel(context.Background(), profile.Label())
	if err := replay(ransomCtx, p.mux, ransomPID, infected, true); err != nil {
		return err
	}

	var calls, windows, alerts int64
	for _, s := range p.mux.ProcessStats() {
		calls += s.CallsObserved
		windows += s.WindowsEvaluated
		alerts += s.Alerts
	}
	blocked, blockedPID := p.mux.Blocked()
	fmt.Printf("\nsummary: %d calls observed across %d processes, %d windows classified, %d alerts, blocked=%v\n",
		calls, p.mux.Processes(), windows, alerts, blocked)
	q := p.quality.Snapshot()
	fmt.Printf("quality: tp=%d fp=%d tn=%d fn=%d  recall %.4f  fpr %.4f  (windows-to-flag p50 %.0f)\n",
		q.Total.TP, q.Total.FP, q.Total.TN, q.Total.FN,
		q.Total.Recall, q.Total.FPR, q.WindowsToFlag.P50)
	printTelemetry(reg, spans)
	if tracer != nil {
		if err := writeTrace(*tracePath, tracer); err != nil {
			return err
		}
	}

	// Close out the forensic record: flush open incidents, write reports.
	incidents := p.rec.Flush()
	if *incidentDir != "" {
		n, err := p.rec.WriteReports(*incidentDir)
		if err != nil {
			return fmt.Errorf("incident reports: %w", err)
		}
		fmt.Printf("%d incident report(s) written to %s\n", n, *incidentDir)
	}
	for _, inc := range incidents {
		fmt.Printf("incident #%d: pid %d %s (%s), %d windows (%d alerts), max p=%.3f, model gen %d, devices %v\n",
			inc.ID, inc.PID, inc.State, inc.CloseReason, inc.WindowsTotal, inc.AlertsTotal,
			inc.MaxProbability, inc.ModelGeneration, inc.Devices)
	}
	if *eventsPath != "" {
		if err := events.Close(); err != nil {
			return fmt.Errorf("event log: %w", err)
		}
		for _, st := range events.SinkStats() {
			if st.Name == "file" {
				fmt.Printf("%d event(s) written to %s (%d dropped)\n", st.Written, *eventsPath, st.Dropped)
			}
		}
	}

	if profiler != nil {
		path, err := profiler.WriteSnapshot(*profDir)
		if err != nil {
			return fmt.Errorf("write prof snapshot: %w", err)
		}
		fmt.Printf("profiler snapshot written to %s\n", path)
	}
	if !blocked {
		return fmt.Errorf("infection ran to completion without mitigation")
	}
	ransomStats := p.mux.ProcessStats()[blockedPID]
	fmt.Printf("ransomware (pid %d) stopped after %d of its API calls (%.1f%% of the trace executed)\n",
		blockedPID, ransomStats.CallsObserved, 100*float64(ransomStats.CallsObserved)/float64(len(infected)))
	if _, err := p.dev.SSD().Write(0, []byte("ciphertext")); err != nil {
		fmt.Printf("subsequent encryption write rejected by the drive: %v\n", err)
	}
	if *metricsAddr != "" && *hold > 0 {
		fmt.Printf("holding metrics endpoint for %v...\n", *hold)
		time.Sleep(*hold)
	}
	return nil
}

// extraHandlers assembles the observability endpoints mounted beside
// /metrics; /prof.json appears only when the profiler is on.
func extraHandlers(events *eventlog.Logger, rec *incident.Recorder, profiler *prof.Profiler, scorecard *quality.Scorecard) map[string]http.Handler {
	extra := map[string]http.Handler{
		"/events.json":    events.HTTPHandler(),
		"/incidents.json": rec.HTTPHandler(),
		"/quality.json":   scorecard.Handler(),
	}
	if profiler != nil {
		extra["/prof.json"] = profiler.Handler()
	}
	return extra
}

// writeTrace exports the device timeline as Chrome trace JSON and prints
// the aggregated cycle/occupancy profile.
func writeTrace(path string, tracer *trace.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tracer.WriteChrome(f); err != nil {
		f.Close()
		return fmt.Errorf("write trace %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("\ndevice timeline written to %s (open at https://ui.perfetto.dev)\n\n", path)
	fmt.Print(tracer.Profile().Format())
	return nil
}

// printTelemetry renders the registry's summary tables and the most recent
// pipeline spans on stdout.
func printTelemetry(reg *telemetry.Registry, spans *telemetry.SpanLog) {
	fmt.Println("\ntelemetry:")
	if err := reg.WriteSummary(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "csddetect: telemetry summary:", err)
	}
	recent := spans.Snapshot()
	if len(recent) == 0 {
		return
	}
	show := recent
	if len(show) > 3 {
		show = show[len(show)-3:]
	}
	fmt.Printf("last %d pipeline spans (of %d retained):\n", len(show), len(recent))
	for _, sp := range show {
		fmt.Printf("  %s\n", sp.String())
	}
}

// replay feeds one process's API-call stream into the mux, stopping when
// mitigation fires (for this or any process — the quarantine is global).
// The context carries the ground-truth quality label of the stream's
// profile so the scorecard can grade every window verdict.
func replay(ctx context.Context, mux *detect.Mux, pid int, calls []int, verbose bool) error {
	for _, call := range calls {
		ev, err := mux.Observe(ctx, pid, call)
		if err != nil {
			if errors.Is(err, detect.ErrBlocked) {
				return nil
			}
			return err
		}
		if ev == nil {
			continue
		}
		if verbose || ev.Action != detect.ActionNone {
			name, _ := winapi.Name(call)
			fmt.Printf("[call %6d] pid %d window p=%.3f action=%-5s (last call: %s)\n",
				ev.CallIndex, ev.PID, ev.Probability, ev.Action, name)
		}
		if ev.Action == detect.ActionBlock {
			return nil
		}
	}
	return nil
}

func loadOrTrain(path string, seed int64, epochs, scale int) (*lstm.Model, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("open %s: %w", path, err)
		}
		defer f.Close()
		m, err := lstm.ReadText(f)
		if err != nil {
			return nil, err
		}
		fmt.Printf("loaded weights from %s\n", path)
		return m, nil
	}

	fmt.Printf("no weight file given; quick-training on a 1/%d-scale corpus...\n", scale)
	ds, err := dataset.Build(dataset.BuildConfig{
		RansomwareCount: dataset.PaperRansomwareCount / scale,
		BenignCount:     dataset.PaperBenignCount / scale,
		Seed:            seed,
	})
	if err != nil {
		return nil, err
	}
	trainDS, testDS, err := ds.Split(0.2, seed+1)
	if err != nil {
		return nil, err
	}
	res, err := train.Train(trainDS, testDS, train.Config{
		Epochs: epochs, Seed: seed, TargetAccuracy: 0.97, EvalEvery: 1,
	})
	if err != nil {
		return nil, err
	}
	fmt.Printf("quick-trained to test accuracy %.4f in %d epochs\n", res.Final.Accuracy, res.EpochsRun)
	return res.Model, nil
}
