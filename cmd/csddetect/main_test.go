package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/kfrida1/csdinf/internal/dataset"
	"github.com/kfrida1/csdinf/internal/eventlog"
	"github.com/kfrida1/csdinf/internal/incident"
	"github.com/kfrida1/csdinf/internal/quality"
	"github.com/kfrida1/csdinf/internal/sandbox"
	"github.com/kfrida1/csdinf/internal/telemetry"
	"github.com/kfrida1/csdinf/internal/trace"
	"github.com/kfrida1/csdinf/internal/train"
)

// trainedWeights quick-trains a small model and exports it for the CLI.
func trainedWeights(t *testing.T) string {
	t.Helper()
	ds, err := dataset.Build(dataset.BuildConfig{
		RansomwareCount: 456, BenignCount: 465, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	trainDS, testDS, err := ds.Split(0.2, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := train.Train(trainDS, testDS, train.Config{
		Epochs: 8, Seed: 3, TargetAccuracy: 0.95,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "w.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := res.Model.WriteText(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDetectEndToEnd(t *testing.T) {
	weights := trainedWeights(t)
	err := run([]string{
		"-weights", weights,
		"-family", "Lockbit", "-variant", "1",
		"-benign-calls", "300", "-infected-calls", "1500",
	})
	if err != nil {
		t.Fatalf("detection run failed: %v", err)
	}
}

func TestDetectWithMetricsEndpoint(t *testing.T) {
	weights := trainedWeights(t)
	err := run([]string{
		"-weights", weights,
		"-family", "Lockbit", "-variant", "1",
		"-benign-calls", "300", "-infected-calls", "1500",
		"-metrics-addr", "127.0.0.1:0",
	})
	if err != nil {
		t.Fatalf("detection run with metrics endpoint failed: %v", err)
	}
}

// TestForensicsEndToEnd drives the CLI's full pipeline on a synthetic
// ransomware sequence and follows one flagged process across the whole
// observability stack: the incident report must carry the confidence
// trajectory, the live model generation, the serving-device attribution,
// and trace job IDs that resolve in both the Chrome trace export and
// /spans.json.
func TestForensicsEndToEnd(t *testing.T) {
	model, err := loadOrTrain(trainedWeights(t), 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	spans := telemetry.NewSpanLog(256)
	tracer := trace.New()
	events := eventlog.New(eventlog.Config{MinLevel: eventlog.LevelDebug})
	eventsPath := filepath.Join(t.TempDir(), "events.jsonl")
	sink, err := eventlog.NewFileSink(eventsPath)
	if err != nil {
		t.Fatal(err)
	}
	events.Attach("file", sink, 0)

	p, err := buildPipeline(pipelineConfig{
		model: model, threshold: 0.5,
		reg: reg, spans: spans, tracer: tracer, events: events,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	benign := sandbox.ManualInteractionProfile()
	benignTrace, err := benign.Generate(300, 1)
	if err != nil {
		t.Fatal(err)
	}
	benignCtx := quality.WithLabel(context.Background(), benign.Label())
	if err := replay(benignCtx, p.mux, benignPID, benignTrace, false); err != nil {
		t.Fatal(err)
	}
	prof, err := sandbox.RansomwareProfile("Lockbit", 1)
	if err != nil {
		t.Fatal(err)
	}
	infected, err := prof.Generate(1500, 2)
	if err != nil {
		t.Fatal(err)
	}
	ransomCtx := quality.WithLabel(context.Background(), prof.Label())
	if err := replay(ransomCtx, p.mux, ransomPID, infected, false); err != nil {
		t.Fatal(err)
	}
	blocked, pid := p.mux.Blocked()
	if !blocked || pid != ransomPID {
		t.Fatalf("mitigation: blocked=%v pid=%d, want pid %d", blocked, pid, ransomPID)
	}

	// The incident report: the ransomware process's tracking epoch, closed
	// by the block.
	p.rec.Flush()
	dir := t.TempDir()
	if _, err := p.rec.WriteReports(dir); err != nil {
		t.Fatal(err)
	}
	reports, err := filepath.Glob(filepath.Join(dir, "incident-*-pid*.json"))
	if err != nil || len(reports) == 0 {
		t.Fatalf("no incident reports written: %v", err)
	}
	var inc incident.Incident
	found := false
	for _, path := range reports {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(data, &inc); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if inc.PID == ransomPID {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no incident report for pid %d in %v", ransomPID, reports)
	}
	if inc.State != "closed" || inc.CloseReason != "blocked" {
		t.Fatalf("incident not closed by mitigation: %+v", inc)
	}

	// Ground truth rode the replay context through detect into the
	// forensic report.
	if inc.Truth != "ransomware" || inc.Family != "lockbit" {
		t.Fatalf("incident truth/family = %q/%q, want ransomware/lockbit", inc.Truth, inc.Family)
	}

	// Confidence trajectory: window-by-window verdicts ending in the block,
	// with the alerting windows above threshold.
	if len(inc.Trajectory) == 0 {
		t.Fatal("incident has no trajectory")
	}
	last := inc.Trajectory[len(inc.Trajectory)-1]
	if last.Verdict != "block" || last.Probability < 0.5 {
		t.Fatalf("trajectory tail = %+v", last)
	}
	if inc.FlaggedAt.IsZero() || inc.FirstSeen.After(inc.FlaggedAt) {
		t.Fatalf("timestamps: first_seen=%v flagged_at=%v", inc.FirstSeen, inc.FlaggedAt)
	}

	// Model generation from the cti hot-swap wrapper (initial deployment).
	if inc.ModelGeneration != p.hot.Generation() || inc.ModelGeneration != 1 {
		t.Fatalf("model_generation = %d, want %d", inc.ModelGeneration, p.hot.Generation())
	}

	// Serving-device and queue-wait attribution: the one-device demo serves
	// everything on registry device "csd-000".
	if len(inc.Devices) != 1 || inc.Devices[0] != "csd-000" {
		t.Fatalf("devices = %v, want [csd-000]", inc.Devices)
	}
	if last.Device != "csd-000" {
		t.Fatalf("trajectory tail device = %q", last.Device)
	}
	if inc.QueueWaitTotal <= 0 {
		t.Fatalf("queue wait attribution missing: %v", inc.QueueWaitTotal)
	}

	// Cross-layer correlation: the block window's job ID must appear in the
	// trace export and in /spans.json.
	job := last.Job
	if job == 0 {
		t.Fatal("trajectory tail has no trace job ID")
	}
	foundJob := false
	for _, j := range inc.Jobs {
		if j == job {
			foundJob = true
		}
	}
	if !foundJob {
		t.Fatalf("job %d missing from incident jobs %v", job, inc.Jobs)
	}
	inTrace := false
	for _, ev := range tracer.Events() {
		if ev.Job == job {
			inTrace = true
			break
		}
	}
	if !inTrace {
		t.Fatalf("job %d has no device timeline events", job)
	}
	var chrome bytes.Buffer
	if err := tracer.WriteChrome(&chrome); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(chrome.String(), `"job": `) {
		t.Fatal("trace export carries no job annotations")
	}

	srv := httptest.NewServer(telemetry.NewHTTPHandlerWith(reg, spans, map[string]http.Handler{
		"/events.json":    events.HTTPHandler(),
		"/incidents.json": p.rec.HTTPHandler(),
		"/quality.json":   p.quality.Handler(),
	}))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/spans.json")
	if err != nil {
		t.Fatal(err)
	}
	var spansDoc struct {
		Spans []telemetry.Span `json:"spans"`
	}
	err = json.NewDecoder(resp.Body).Decode(&spansDoc)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	inSpans := false
	for _, sp := range spansDoc.Spans {
		if sp.ID == job {
			inSpans = true
			if sp.Device != "csd-000" {
				t.Fatalf("span %d device = %q", job, sp.Device)
			}
		}
	}
	if !inSpans {
		t.Fatalf("job %d not in /spans.json (%d spans retained)", job, len(spansDoc.Spans))
	}

	// /incidents.json serves the same incident the report file holds.
	resp, err = http.Get(srv.URL + "/incidents.json")
	if err != nil {
		t.Fatal(err)
	}
	var incDoc struct {
		Incidents []incident.Incident `json:"incidents"`
	}
	err = json.NewDecoder(resp.Body).Decode(&incDoc)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	foundHTTP := false
	for _, got := range incDoc.Incidents {
		if got.ID == inc.ID && got.PID == ransomPID {
			foundHTTP = true
		}
	}
	if !foundHTTP {
		t.Fatalf("incident %d missing from /incidents.json", inc.ID)
	}

	// /quality.json: the scorecard graded every labeled window; the
	// infected process must register as a true positive and the detector
	// must have flagged at least one of its windows.
	resp, err = http.Get(srv.URL + "/quality.json")
	if err != nil {
		t.Fatal(err)
	}
	var qDoc quality.Snapshot
	err = json.NewDecoder(resp.Body).Decode(&qDoc)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if qDoc.Total.TP == 0 {
		t.Fatalf("/quality.json confusion has no true positives: %+v", qDoc.Total)
	}
	if qDoc.Unlabeled != 0 {
		t.Fatalf("%d windows unlabeled despite stamped contexts", qDoc.Unlabeled)
	}
	if qDoc.Labeled != qDoc.Windows {
		t.Fatalf("labeled %d of %d windows", qDoc.Labeled, qDoc.Windows)
	}
	foundFam := false
	for _, f := range qDoc.Families {
		if f.Family == "lockbit" && f.TP > 0 {
			foundFam = true
		}
	}
	if !foundFam {
		t.Fatalf("no lockbit true positives in per-family breakdown: %+v", qDoc.Families)
	}
	if qDoc.WindowsToFlag.Count == 0 || qDoc.WindowsToFlag.P50 <= 0 {
		t.Fatalf("windows-to-flag latency untracked: %+v", qDoc.WindowsToFlag)
	}

	// The JSON-lines event stream records the story with the same job ID.
	if err := events.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(eventsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var sawBlock, sawOpen, sawJob bool
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("event line invalid JSON: %v", err)
		}
		switch m["event"] {
		case "mitigation.block":
			sawBlock = true
		case "incident.open":
			sawOpen = true
		}
		if j, ok := m["job"].(float64); ok && int64(j) == job {
			sawJob = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawBlock || !sawOpen || !sawJob {
		t.Fatalf("event stream incomplete: block=%v open=%v job=%v", sawBlock, sawOpen, sawJob)
	}
}

func TestDetectWithEventsAndIncidents(t *testing.T) {
	weights := trainedWeights(t)
	dir := t.TempDir()
	eventsPath := filepath.Join(dir, "events.jsonl")
	incidentDir := filepath.Join(dir, "incidents")
	err := run([]string{
		"-weights", weights,
		"-family", "Lockbit", "-variant", "1",
		"-benign-calls", "300", "-infected-calls", "1500",
		"-events", eventsPath,
		"-incident-dir", incidentDir,
	})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	data, err := os.ReadFile(eventsPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"event":"mitigation.block"`) {
		t.Error("events file missing mitigation.block")
	}
	reports, err := filepath.Glob(filepath.Join(incidentDir, "incident-*.json"))
	if err != nil || len(reports) == 0 {
		t.Fatalf("no incident reports in %s: %v", incidentDir, err)
	}
}

func TestDetectErrors(t *testing.T) {
	weights := trainedWeights(t)
	if err := run([]string{"-weights", "/nonexistent.txt"}); err == nil {
		t.Error("missing weights accepted")
	}
	if err := run([]string{"-weights", weights, "-family", "NotAFamily"}); err == nil {
		t.Error("unknown family accepted")
	}
}

// TestDetectFleetDevices pins the -devices flag: the same detection run
// succeeds over a multi-device fleet, every drive comes from the registry
// ("csd-000"...), the infected process's windows all land on one device
// (per-process placement), and the quarantine engages rack-wide.
func TestDetectFleetDevices(t *testing.T) {
	model, err := loadOrTrain(trainedWeights(t), 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	events := eventlog.New(eventlog.Config{})
	defer events.Close()
	p, err := buildPipeline(pipelineConfig{
		model: model, threshold: 0.5, devices: 3,
		reg: reg, events: events,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	benign, err := sandbox.ManualInteractionProfile().Generate(300, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := replay(context.Background(), p.mux, benignPID, benign, false); err != nil {
		t.Fatal(err)
	}
	prof, err := sandbox.RansomwareProfile("Lockbit", 1)
	if err != nil {
		t.Fatal(err)
	}
	infected, err := prof.Generate(1500, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := replay(context.Background(), p.mux, ransomPID, infected, false); err != nil {
		t.Fatal(err)
	}
	if blocked, pid := p.mux.Blocked(); !blocked || pid != ransomPID {
		t.Fatalf("blocked=%v pid=%d, want blocked on pid %d", blocked, pid, ransomPID)
	}

	// Registry-provisioned devices, stats in ID order.
	stats := p.fl.Stats()
	if len(stats) != 3 {
		t.Fatalf("fleet nodes = %d, want 3", len(stats))
	}
	for i, st := range stats {
		if want := []string{"csd-000", "csd-001", "csd-002"}[i]; st.Serve.ID != want {
			t.Fatalf("node %d ID = %q, want %q", i, st.Serve.ID, want)
		}
	}

	// Per-process placement: each flagged process's incident names exactly
	// one serving device.
	incidents := p.rec.Flush()
	if len(incidents) == 0 {
		t.Fatal("no incidents recorded")
	}
	for _, inc := range incidents {
		if inc.PID == ransomPID && len(inc.Devices) != 1 {
			t.Fatalf("infected process served by %v, want exactly one device", inc.Devices)
		}
	}

	// Rack-wide quarantine: every drive rejects writes.
	for i := 0; i < p.fl.Nodes(); i++ {
		if _, err := p.fl.Device(i).SSD().Write(0, []byte("x")); err == nil {
			t.Fatalf("device %d accepted a write after mitigation", i)
		}
	}
}
