package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/kfrida1/csdinf/internal/dataset"
	"github.com/kfrida1/csdinf/internal/train"
)

// trainedWeights quick-trains a small model and exports it for the CLI.
func trainedWeights(t *testing.T) string {
	t.Helper()
	ds, err := dataset.Build(dataset.BuildConfig{
		RansomwareCount: 456, BenignCount: 465, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	trainDS, testDS, err := ds.Split(0.2, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := train.Train(trainDS, testDS, train.Config{
		Epochs: 8, Seed: 3, TargetAccuracy: 0.95,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "w.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := res.Model.WriteText(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDetectEndToEnd(t *testing.T) {
	weights := trainedWeights(t)
	err := run([]string{
		"-weights", weights,
		"-family", "Lockbit", "-variant", "1",
		"-benign-calls", "300", "-infected-calls", "1500",
	})
	if err != nil {
		t.Fatalf("detection run failed: %v", err)
	}
}

func TestDetectWithMetricsEndpoint(t *testing.T) {
	weights := trainedWeights(t)
	err := run([]string{
		"-weights", weights,
		"-family", "Lockbit", "-variant", "1",
		"-benign-calls", "300", "-infected-calls", "1500",
		"-metrics-addr", "127.0.0.1:0",
	})
	if err != nil {
		t.Fatalf("detection run with metrics endpoint failed: %v", err)
	}
}

func TestDetectErrors(t *testing.T) {
	weights := trainedWeights(t)
	if err := run([]string{"-weights", "/nonexistent.txt"}); err == nil {
		t.Error("missing weights accepted")
	}
	if err := run([]string{"-weights", weights, "-family", "NotAFamily"}); err == nil {
		t.Error("unknown family accepted")
	}
}
