// Command ransomgen synthesizes the API-call sequence dataset of the
// paper's Appendix A and writes it in the n+1-column CSV format the offline
// trainer consumes.
//
// Usage:
//
//	ransomgen -out dataset.csv                      # paper-sized corpus (29K rows)
//	ransomgen -out small.csv -ransomware 1334 -benign 1566
//	ransomgen -out w50.csv -window 50 -stride 10 -seed 7
//	ransomgen -reports analyses/ -trace-len 2000    # Cuckoo-style JSON reports
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/kfrida1/csdinf/internal/dataset"
	"github.com/kfrida1/csdinf/internal/experiments"
	"github.com/kfrida1/csdinf/internal/report"
	"github.com/kfrida1/csdinf/internal/sandbox"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ransomgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ransomgen", flag.ContinueOnError)
	out := fs.String("out", "dataset.csv", "output CSV path")
	ransomware := fs.Int("ransomware", dataset.PaperRansomwareCount, "ransomware window count")
	benign := fs.Int("benign", dataset.PaperBenignCount, "benign window count")
	window := fs.Int("window", dataset.PaperWindow, "sequence length")
	stride := fs.Int("stride", dataset.DefaultStride, "sliding-window stride")
	seed := fs.Int64("seed", 1, "generation seed")
	reports := fs.String("reports", "", "also write one Cuckoo-style JSON report per variant/app into this directory")
	traceLen := fs.Int("trace-len", 2000, "trace length for -reports output")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *reports != "" {
		if err := writeReports(*reports, *traceLen, *seed); err != nil {
			return err
		}
	}

	ds, err := dataset.Build(dataset.BuildConfig{
		RansomwareCount: *ransomware,
		BenignCount:     *benign,
		Window:          *window,
		Stride:          *stride,
		Seed:            *seed,
	})
	if err != nil {
		return err
	}

	f, err := os.Create(*out)
	if err != nil {
		return fmt.Errorf("create %s: %w", *out, err)
	}
	defer f.Close()
	if err := ds.WriteCSV(f); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("close %s: %w", *out, err)
	}

	fmt.Printf("wrote %d sequences (window %d) to %s\n\n", len(ds.Sequences), ds.Window, *out)
	fmt.Print(experiments.FormatTableII(experiments.TableII(ds), ds))
	return nil
}

// writeReports emits one Cuckoo-style analysis report per ransomware
// variant and benign application — the interchange format the paper's
// pipeline consumed from its sandbox farm.
func writeReports(dir string, traceLen int, seed int64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("create %s: %w", dir, err)
	}
	id := 0
	write := func(name string, fam string, variant int, trace []int) error {
		id++
		r, err := report.FromTrace(
			report.Info{ID: id, Category: "file", Machine: "win10-x64", Package: "exe"},
			report.Target{Name: name, Family: fam, Variant: variant},
			trace,
		)
		if err != nil {
			return err
		}
		path := filepath.Join(dir, fmt.Sprintf("analysis_%04d.json", id))
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("create %s: %w", path, err)
		}
		defer f.Close()
		if err := r.Write(f); err != nil {
			return err
		}
		return f.Close()
	}
	for _, fam := range sandbox.Families {
		for v := 0; v < fam.Variants; v++ {
			p, err := sandbox.RansomwareProfile(fam.Name, v)
			if err != nil {
				return err
			}
			trace, err := p.Generate(traceLen, seed+int64(id))
			if err != nil {
				return err
			}
			exe := strings.ToLower(fam.Name) + fmt.Sprintf("_v%d.exe", v)
			if err := write(exe, fam.Name, v, trace); err != nil {
				return err
			}
		}
	}
	for _, app := range sandbox.BenignApps {
		p, err := sandbox.BenignProfile(app)
		if err != nil {
			return err
		}
		trace, err := p.Generate(traceLen, seed+int64(id))
		if err != nil {
			return err
		}
		if err := write(app, "", 0, trace); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d analysis reports to %s\n", id, dir)
	return nil
}
