package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/kfrida1/csdinf/internal/dataset"
	"github.com/kfrida1/csdinf/internal/report"
)

func TestGenerateCSV(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "ds.csv")
	err := run([]string{
		"-out", out, "-ransomware", "76", "-benign", "31",
		"-window", "20", "-stride", "20", "-seed", "2",
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds, err := dataset.ReadCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Sequences) != 107 || ds.Window != 20 {
		t.Fatalf("corpus = %d sequences, window %d", len(ds.Sequences), ds.Window)
	}
}

func TestGenerateReports(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "ds.csv")
	reports := filepath.Join(dir, "analyses")
	err := run([]string{
		"-out", out, "-ransomware", "76", "-benign", "31",
		"-window", "20", "-stride", "20",
		"-reports", reports, "-trace-len", "150",
	})
	if err != nil {
		t.Fatal(err)
	}
	paths, err := filepath.Glob(filepath.Join(reports, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	// 76 variants + 30 benign apps.
	if len(paths) != 106 {
		t.Fatalf("reports = %d, want 106", len(paths))
	}
	f, err := os.Open(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := report.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := r.Trace()
	if err != nil || len(trace) != 150 {
		t.Fatalf("report trace: %d items, %v", len(trace), err)
	}
}

func TestGenerateErrors(t *testing.T) {
	if err := run([]string{"-out", "/nonexistent-dir/x.csv", "-ransomware", "76", "-benign", "31", "-window", "10", "-stride", "10"}); err == nil {
		t.Error("unwritable path accepted")
	}
	if err := run([]string{"-ransomware", "-5"}); err == nil {
		t.Error("negative count accepted")
	}
}
