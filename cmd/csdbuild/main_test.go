package main

import "testing"

func TestBuildConfigurations(t *testing.T) {
	ok := [][]string{
		{"-level", "vanilla", "-platform", "u200"},
		{"-level", "ii", "-platform", "ku15p"},
		{"-level", "fixed", "-platform", "u200"},
		{"-level", "mixed", "-platform", "ku15p"},
		{"-level", "fixed", "-streaming"},
		{"-level", "fixed", "-gatecus", "2"},
	}
	for _, args := range ok {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestBuildFailures(t *testing.T) {
	bad := [][]string{
		{"-level", "fixed", "-platform", "ku15p"}, // 5,120 DSPs > 1,968
		{"-level", "quantum"},
		{"-platform", "versal"},
		{"-level", "fixed", "-gatecus", "3"},
		{"-level", "vanilla", "-streaming"},
	}
	for _, args := range bad {
		if err := run(args); err == nil {
			t.Errorf("run(%v): expected error", args)
		}
	}
}
