// Command csdbuild runs the Vitis-style build flow for the CSD inference
// kernels: it compiles the three kernels of Fig. 2 into kernel objects and
// links them against a target platform, printing a v++-style build report
// (latency estimates, scheduling notes, fabric utilization). Linking fails
// exactly when the real toolchain would — e.g. the fully-unrolled
// fixed-point design against the SmartSSD's KU15P.
//
// Usage:
//
//	csdbuild -level fixed -platform u200
//	csdbuild -level fixed -platform ku15p          # fails: 5,120 DSPs needed
//	csdbuild -level mixed -platform ku15p          # fits: DSP-packed MACs
//	csdbuild -level ii -streaming
//	csdbuild -drc -level fixed -platform ku15p     # caught statically, before compile
//
// With -drc the static design-rule checker (internal/drc) runs first and
// error-level findings abort the build before any kernel is compiled — the
// same catalogue `csdlint drc` reports.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/kfrida1/csdinf/internal/drc"
	"github.com/kfrida1/csdinf/internal/fpga"
	"github.com/kfrida1/csdinf/internal/kernels"
	"github.com/kfrida1/csdinf/internal/lstm"
	"github.com/kfrida1/csdinf/internal/vitis"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "csdbuild:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("csdbuild", flag.ContinueOnError)
	level := fs.String("level", "fixed", "vanilla | ii | fixed | mixed")
	platform := fs.String("platform", "u200", "u200 | ku15p")
	streaming := fs.Bool("streaming", false, "use AXI4-Stream kernel links")
	gateCUs := fs.Int("gatecus", 4, "kernel_gates compute units (must divide 4)")
	runDRC := fs.Bool("drc", false, "run the static design-rule check before compiling; error findings abort the build")
	if err := fs.Parse(args); err != nil {
		return err
	}

	levels := map[string]kernels.OptLevel{
		"vanilla": kernels.LevelVanilla,
		"ii":      kernels.LevelII,
		"fixed":   kernels.LevelFixedPoint,
		"mixed":   kernels.LevelMixed,
	}
	lv, ok := levels[*level]
	if !ok {
		return fmt.Errorf("unknown level %q (want vanilla, ii, fixed, mixed)", *level)
	}
	parts := map[string]fpga.Part{"u200": fpga.AlveoU200, "ku15p": fpga.KU15P}
	part, ok := parts[*platform]
	if !ok {
		return fmt.Errorf("unknown platform %q (want u200, ku15p)", *platform)
	}

	kcfg := kernels.Config{Level: lv, Part: part, GateCUs: *gateCUs, Streaming: *streaming}
	if *runDRC {
		// The build flow has no trained weights, so the numeric rules run
		// over a seeded paper-architecture model: the same deterministic
		// initialization every test uses, enough to prove the architecture
		// fits int64 at the default scale before compiling.
		m, err := lstm.NewModel(lstm.PaperConfig(), 1)
		if err != nil {
			return err
		}
		design, err := kernels.DesignForModel(m, kcfg)
		if err != nil {
			return err
		}
		rep := drc.Check(design)
		if err := rep.WriteText(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		if !rep.OK() {
			return &drc.RejectError{Report: rep}
		}
	}

	specs, err := kernels.Specs(lstm.PaperConfig(), kcfg)
	if err != nil {
		return err
	}

	var objs []*vitis.KernelObject
	for _, spec := range specs {
		obj, err := vitis.Compile(spec)
		if err != nil {
			return err
		}
		fmt.Printf("v++ -c %s: %d cycles/invocation, %d DSP/CU\n",
			obj.Name, obj.CyclesPerInvocation, obj.ResPerCU.DSP)
		objs = append(objs, obj)
	}

	bin, err := vitis.Link(objs, part)
	if err != nil {
		return fmt.Errorf("v++ -l: %w", err)
	}
	fmt.Println()
	return bin.Report(os.Stdout)
}
