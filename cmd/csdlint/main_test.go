package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestDRCMatrixClean is the same gate CI runs: the supported deploy matrix
// must carry zero error-level findings.
func TestDRCMatrixClean(t *testing.T) {
	var out strings.Builder
	code, err := run([]string{"drc", "-q"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "7 design(s) checked, 0 error finding(s)") {
		t.Fatalf("unexpected summary:\n%s", out.String())
	}
}

// TestDRCInfeasibleDesignFails pins the nonzero exit and the text report for
// the paper's known-infeasible configuration.
func TestDRCInfeasibleDesignFails(t *testing.T) {
	var out strings.Builder
	code, err := run([]string{"drc", "-level", "fixed", "-platform", "ku15p"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; output:\n%s", code, out.String())
	}
	for _, want := range []string{"fixed on ku15p", "RES0", "error finding(s)"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestDRCJSONArtifact checks the -json artifact decodes and carries one
// element per checked design with the report embedded.
func TestDRCJSONArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "findings.json")
	var out strings.Builder
	code, err := run([]string{"drc", "-q", "-json", path}, &out)
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v", code, err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var checked []struct {
		Level    string `json:"level"`
		Platform string `json:"platform"`
		Report   struct {
			Part     string `json:"part"`
			Errors   int    `json:"errors"`
			Warnings int    `json:"warnings"`
		} `json:"report"`
	}
	if err := json.Unmarshal(data, &checked); err != nil {
		t.Fatalf("artifact does not decode: %v", err)
	}
	if len(checked) != 7 {
		t.Fatalf("artifact has %d designs, want 7", len(checked))
	}
	for _, c := range checked {
		if c.Report.Errors != 0 {
			t.Fatalf("%s/%s has %d errors in a clean matrix", c.Level, c.Platform, c.Report.Errors)
		}
		if c.Report.Part == "" {
			t.Fatalf("%s/%s report lost its part name", c.Level, c.Platform)
		}
	}
}

func TestRulesSubcommand(t *testing.T) {
	var out strings.Builder
	code, err := run([]string{"rules"}, &out)
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v", code, err)
	}
	for _, id := range []string{"PRAG001", "II001", "BUF001", "RES002", "AXI001", "DF003", "NUM001", "NUM004"} {
		if !strings.Contains(out.String(), id) {
			t.Fatalf("rule catalogue missing %s:\n%s", id, out.String())
		}
	}
	// The catalogue prints the category column (satellite of the numeric
	// analysis issue: rule listings must carry the rule group).
	for _, line := range strings.Split(out.String(), "\n") {
		if strings.Contains(line, "NUM001") && !strings.Contains(line, " NUM ") {
			t.Fatalf("NUM001 line is missing its category column: %q", line)
		}
	}
}

// TestRangesProvesQuickTrainedModel is the acceptance gate: the default run
// (deterministic quick-trained paper model, scale 10⁶) must prove the
// datapath overflow-free and exit 0.
func TestRangesProvesQuickTrainedModel(t *testing.T) {
	var out strings.Builder
	code, err := run([]string{"ranges"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; output:\n%s", code, out.String())
	}
	for _, want := range []string{"PROVED overflow-free", "kernel_hidden_state/logit", "0 error(s)"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRangesRefutesOverflowFixture pins the negative path: the seeded
// overflow weight file must be refuted with error-level NUM findings and
// exit status 1.
func TestRangesRefutesOverflowFixture(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ranges.json")
	var out strings.Builder
	code, err := run([]string{"ranges", "-weights", filepath.Join("testdata", "overflow_weights.txt"), "-json", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; output:\n%s", code, out.String())
	}
	for _, want := range []string{"REFUTED", "NUM001"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var artifact struct {
		Ranges struct {
			Scale  int64 `json:"scale"`
			Stages []struct {
				Stage    string `json:"stage"`
				Overflow bool   `json:"overflow"`
			} `json:"stages"`
		} `json:"ranges"`
		Findings []struct {
			Rule     string `json:"rule"`
			Category string `json:"category"`
			Severity string `json:"severity"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(data, &artifact); err != nil {
		t.Fatalf("artifact does not decode: %v", err)
	}
	if artifact.Ranges.Scale != 1_000_000 {
		t.Fatalf("artifact scale = %d, want the 10⁶ default", artifact.Ranges.Scale)
	}
	sawOverflowStage, sawNUM001 := false, false
	for _, s := range artifact.Ranges.Stages {
		if s.Overflow {
			sawOverflowStage = true
		}
	}
	for _, f := range artifact.Findings {
		if f.Rule == "NUM001" {
			sawNUM001 = true
			if f.Category != "NUM" {
				t.Errorf("NUM001 finding carries category %q", f.Category)
			}
		}
	}
	if !sawOverflowStage || !sawNUM001 {
		t.Fatalf("artifact missing overflow evidence (stage=%v finding=%v):\n%s",
			sawOverflowStage, sawNUM001, data)
	}
}

func TestUsageAndBadFlags(t *testing.T) {
	var out strings.Builder
	if code, _ := run(nil, &out); code != 2 {
		t.Fatalf("no args: code = %d, want 2", code)
	}
	if code, err := run([]string{"bogus"}, &out); code != 2 || err == nil {
		t.Fatalf("unknown subcommand: code=%d err=%v", code, err)
	}
	if code, err := run([]string{"drc", "-level", "fixed"}, &out); code != 2 || err == nil {
		t.Fatalf("lone -level: code=%d err=%v", code, err)
	}
	if code, err := run([]string{"drc", "-level", "nope", "-platform", "u200"}, &out); code != 2 || err == nil {
		t.Fatalf("bad level: code=%d err=%v", code, err)
	}
}
