package main

// csdlint ranges — the numeric front of the static analyzer.
//
// The subcommand runs the internal/absint interval analysis over a trained
// model's actual weight values: every fixed-point intermediate of the
// LevelFixedPoint datapath gets a worst-case [lo, hi] bound, and the verdict
// states whether the whole datapath provably fits int64 at the chosen scale
// and window. The NUM design rules (accumulator overflow, activation-domain
// escapes, scale coarseness, headroom) are then evaluated over the report —
// the same rules core.Deploy and csdbuild -drc gate on.
//
//	csdlint ranges                          # quick-trained paper model, scale 10⁶
//	csdlint ranges -scale 256               # the width-sweep's coarsest scale
//	csdlint ranges -weights model.txt       # analyze shipped weights
//	csdlint ranges -json ranges.json        # machine-readable CI artifact
//
// Exit status 1 when the analysis refutes the datapath (error-level NUM
// findings), 0 when it proves it overflow-free.

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/kfrida1/csdinf/internal/absint"
	"github.com/kfrida1/csdinf/internal/dataset"
	"github.com/kfrida1/csdinf/internal/drc"
	"github.com/kfrida1/csdinf/internal/kernels"
	"github.com/kfrida1/csdinf/internal/lstm"
	"github.com/kfrida1/csdinf/internal/train"
)

// rangesArtifact is the -json payload: the full interval report plus the NUM
// findings derived from it.
type rangesArtifact struct {
	Ranges   *absint.Report `json:"ranges"`
	Findings []drc.Finding  `json:"findings"`
}

func runRanges(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("csdlint ranges", flag.ContinueOnError)
	fs.SetOutput(out)
	weights := fs.String("weights", "", "analyze this weight file (the text format of §III-A); default: the deterministic quick-trained paper model")
	scale := fs.Int64("scale", 0, "fixed-point scale (default 1000000, the paper's 10⁶)")
	seqLen := fs.Int("seqlen", 0, "classification window length (default 100)")
	jsonPath := fs.String("json", "", "write the machine-readable report to this file")
	quiet := fs.Bool("q", false, "suppress the range table; print findings and the verdict only")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}

	m, err := rangesModel(*weights)
	if err != nil {
		return 2, err
	}

	// DesignForModel runs the interval analysis and attaches it to the full
	// fixed-point design, so the NUM rules see exactly what a deployment
	// would; ranges reports only the NUM category — the structural rules
	// have their own subcommand.
	design, err := kernels.DesignForModel(m, kernels.Config{
		Level: kernels.LevelFixedPoint, Scale: *scale, SeqLen: *seqLen,
	})
	if err != nil {
		return 2, err
	}
	rep := design.Numeric

	if !*quiet {
		if err := rep.WriteText(out); err != nil {
			return 2, err
		}
	}

	var numeric []drc.Finding
	errors := 0
	for _, f := range drc.Check(design).Findings {
		if f.Category != "NUM" {
			continue
		}
		numeric = append(numeric, f)
		if f.Severity == drc.SevError {
			errors++
		}
	}
	if len(numeric) > 0 {
		fmt.Fprintln(out)
		for _, f := range numeric {
			fmt.Fprintln(out, f)
		}
	}
	fmt.Fprintf(out, "\ncsdlint ranges: %d stage(s) analyzed, %d numeric finding(s), %d error(s)\n",
		len(rep.Stages), len(numeric), errors)

	if *jsonPath != "" {
		data, err := json.MarshalIndent(rangesArtifact{Ranges: rep, Findings: numeric}, "", "  ")
		if err != nil {
			return 2, err
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			return 2, err
		}
	}

	if errors > 0 {
		return 1, nil
	}
	return 0, nil
}

// rangesModel loads the model under analysis: the given weight file, or —
// when none is named — the deterministic quick-trained paper model (the same
// seeded corpus-split-train recipe the test suite uses, so repeated runs
// analyze identical weights).
func rangesModel(weights string) (*lstm.Model, error) {
	if weights != "" {
		f, err := os.Open(weights)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		m, err := lstm.ReadText(f)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", weights, err)
		}
		return m, nil
	}
	ds, err := dataset.Build(dataset.BuildConfig{RansomwareCount: 120, BenignCount: 120, Seed: 11})
	if err != nil {
		return nil, err
	}
	trainDS, testDS, err := ds.Split(0.2, 12)
	if err != nil {
		return nil, err
	}
	res, err := train.Train(trainDS, testDS, train.Config{Epochs: 3, Seed: 11})
	if err != nil {
		return nil, err
	}
	return res.Model, nil
}
