// Command csdlint is the static-analysis front door of the repository.
//
//	csdlint drc [flags]     run the design-rule checker over kernel designs
//	csdlint ranges [flags]  prove the fixed-point datapath overflow-free
//	csdlint rules           print the design-rule catalogue
//
// `csdlint drc` validates kernel designs — HLS pragma legality, initiation-
// interval feasibility, resource budgets, DDR-bank connectivity, dataflow
// stage matching — without running a single simulated cycle. By default it
// sweeps the supported deployment matrix (every optimization level on every
// platform it is expected to fit); -level/-platform narrow it to one
// configuration, including known-infeasible ones for inspection:
//
//	csdlint drc                                    # the CI gate: whole matrix
//	csdlint drc -level fixed -platform ku15p       # inspect the infeasible fit
//	csdlint drc -json findings.json                # machine-readable findings
//
// The exit status is 1 when any checked design carries error-level
// findings, so CI can gate on it. Warnings (e.g. the vanilla design's
// memory-port II bound — the very bottleneck Fig. 3's II level removes) are
// reported but do not fail the run.
//
// The Go-source analyzers (simclock, ctxfirst, telemetrylabels, eventname,
// fixedwidth) live in the separate tools/analyzers module and run via its
// csdlint-go driver; `make lint` runs both fronts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/kfrida1/csdinf/internal/drc"
	"github.com/kfrida1/csdinf/internal/fpga"
	"github.com/kfrida1/csdinf/internal/kernels"
	"github.com/kfrida1/csdinf/internal/lstm"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "csdlint:", err)
		if code == 0 {
			code = 2
		}
	}
	os.Exit(code)
}

// run executes the command, returning the process exit code: 0 clean, 1
// error-level findings, 2 usage or I/O failure (with err set).
func run(args []string, out io.Writer) (int, error) {
	if len(args) == 0 {
		usage(out)
		return 2, nil
	}
	switch args[0] {
	case "drc":
		return runDRC(args[1:], out)
	case "ranges":
		return runRanges(args[1:], out)
	case "rules":
		return 0, printRules(out)
	case "help", "-h", "-help", "--help":
		usage(out)
		return 0, nil
	default:
		usage(out)
		return 2, fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func usage(out io.Writer) {
	fmt.Fprintln(out, "usage: csdlint <drc|ranges|rules> [flags]")
	fmt.Fprintln(out, "  drc     run the design-rule checker (csdlint drc -h for flags)")
	fmt.Fprintln(out, "  ranges  prove the fixed-point datapath overflow-free (csdlint ranges -h)")
	fmt.Fprintln(out, "  rules   print the rule catalogue")
}

// checkedDesign is one (configuration, report) pair of a run, the JSON
// artifact element CI uploads.
type checkedDesign struct {
	Level     string     `json:"level"`
	Platform  string     `json:"platform"`
	GateCUs   int        `json:"gate_cus"`
	Streaming bool       `json:"streaming,omitempty"`
	Report    drc.Report `json:"report"`
}

var levelFlags = map[string]kernels.OptLevel{
	"vanilla": kernels.LevelVanilla,
	"ii":      kernels.LevelII,
	"fixed":   kernels.LevelFixedPoint,
	"mixed":   kernels.LevelMixed,
}

var platformFlags = map[string]fpga.Part{
	"u200":  fpga.AlveoU200,
	"ku15p": fpga.KU15P,
}

// deployMatrix is the default sweep: every configuration the repository is
// expected to deploy cleanly. fixed/ku15p is deliberately absent — it is
// the paper's known-infeasible design, inspectable with explicit flags.
var deployMatrix = []struct {
	level, platform string
}{
	{"vanilla", "u200"},
	{"ii", "u200"},
	{"fixed", "u200"},
	{"mixed", "u200"},
	{"vanilla", "ku15p"},
	{"ii", "ku15p"},
	{"mixed", "ku15p"},
}

func runDRC(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("csdlint drc", flag.ContinueOnError)
	fs.SetOutput(out)
	level := fs.String("level", "", "check one level (vanilla | ii | fixed | mixed); default: the deploy matrix")
	platform := fs.String("platform", "", "check one platform (u200 | ku15p); default: the deploy matrix")
	gateCUs := fs.Int("gatecus", 4, "kernel_gates compute units (must divide 4)")
	streaming := fs.Bool("streaming", false, "use AXI4-Stream kernel links")
	jsonPath := fs.String("json", "", "write machine-readable findings to this file")
	quiet := fs.Bool("q", false, "suppress per-design text reports; print only the summary")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}

	matrix := deployMatrix
	if *level != "" || *platform != "" {
		if *level == "" || *platform == "" {
			return 2, fmt.Errorf("-level and -platform must be given together")
		}
		matrix = []struct{ level, platform string }{{*level, *platform}}
	}

	var checked []checkedDesign
	totalErrors := 0
	for _, m := range matrix {
		lv, ok := levelFlags[m.level]
		if !ok {
			return 2, fmt.Errorf("unknown level %q (want vanilla, ii, fixed, mixed)", m.level)
		}
		part, ok := platformFlags[m.platform]
		if !ok {
			return 2, fmt.Errorf("unknown platform %q (want u200, ku15p)", m.platform)
		}
		design, err := kernels.DesignFor(lstm.PaperConfig(), kernels.Config{
			Level: lv, Part: part, GateCUs: *gateCUs, Streaming: *streaming,
		})
		if err != nil {
			return 2, fmt.Errorf("%s/%s: %w", m.level, m.platform, err)
		}
		rep := drc.Check(design)
		checked = append(checked, checkedDesign{
			Level: m.level, Platform: m.platform, GateCUs: *gateCUs,
			Streaming: *streaming, Report: rep,
		})
		totalErrors += rep.Errors
		if !*quiet {
			fmt.Fprintf(out, "--- %s on %s ---\n", m.level, m.platform)
			if err := rep.WriteText(out); err != nil {
				return 2, err
			}
		}
	}

	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, checked); err != nil {
			return 2, err
		}
	}

	fmt.Fprintf(out, "csdlint drc: %d design(s) checked, %d error finding(s)\n", len(checked), totalErrors)
	if totalErrors > 0 {
		return 1, nil
	}
	return 0, nil
}

func writeJSON(path string, checked []checkedDesign) error {
	data, err := json.MarshalIndent(checked, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func printRules(out io.Writer) error {
	fmt.Fprintln(out, "Design-rule catalogue (see DESIGN.md \"Static analysis\" for the severity policy):")
	for _, r := range drc.Rules() {
		fmt.Fprintf(out, "  %-8s %-5s %-6s %s\n", r.ID, r.Category, r.Severity, r.Title)
	}
	return nil
}
