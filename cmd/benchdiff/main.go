// Command benchdiff is the benchmark regression gate: it compares a fresh
// BENCH_table1.json (written by `make bench-json` / cmd/csdbench) against
// the checked-in baseline and fails — with a nonzero exit — when the FPGA
// classification throughput or any platform's per-item latency regressed
// beyond the tolerance.
//
// The simulated device timings are deterministic, so the default ±15%
// tolerance exists for the host-measured rows (CPU wall time varies with
// the runner) while still catching real modeling or scheduling regressions.
//
// Usage:
//
//	benchdiff                                 # compare bench-results defaults
//	benchdiff -fresh out/BENCH_table1.json -baseline bench-results/baseline.json
//	benchdiff -tolerance 0.10
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

// benchDoc is the subset of cmd/csdbench's BENCH_table1.json the gate
// compares; unknown fields (confidence intervals, trace profiles) are
// ignored.
type benchDoc struct {
	Experiment string `json:"experiment"`
	Result     struct {
		Rows []struct {
			Platform string  `json:"Platform"`
			MeanUS   float64 `json:"MeanUS"`
		} `json:"Rows"`
		FPGAItemsPerSecond float64 `json:"fpga_items_per_second"`
	} `json:"result"`
}

func readDoc(path string) (*benchDoc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc benchDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return &doc, nil
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fresh := fs.String("fresh", "bench-results/BENCH_table1.json", "freshly produced benchmark result")
	baseline := fs.String("baseline", "bench-results/baseline.json", "checked-in baseline to compare against")
	tolerance := fs.Float64("tolerance", 0.15, "relative regression tolerance (0.15 = ±15%)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tolerance <= 0 || *tolerance >= 1 {
		return fmt.Errorf("tolerance %v outside (0, 1)", *tolerance)
	}

	base, err := readDoc(*baseline)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	cur, err := readDoc(*fresh)
	if err != nil {
		return fmt.Errorf("fresh result: %w", err)
	}
	if base.Experiment != cur.Experiment {
		return fmt.Errorf("experiment mismatch: baseline %q vs fresh %q", base.Experiment, cur.Experiment)
	}

	var regressions []string
	report := func(metric string, baseVal, curVal float64, higherIsBetter bool) {
		delta := (curVal - baseVal) / baseVal
		status := "ok"
		regressed := false
		if higherIsBetter {
			regressed = delta < -*tolerance
		} else {
			regressed = delta > *tolerance
		}
		if regressed {
			status = "REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s: baseline %.4g, fresh %.4g (%+.1f%%)", metric, baseVal, curVal, 100*delta))
		}
		fmt.Fprintf(out, "%-44s baseline %12.4g  fresh %12.4g  %+7.1f%%  %s\n",
			metric, baseVal, curVal, 100*delta, status)
	}

	// Throughput: classifications per second on the in-storage engine.
	if base.Result.FPGAItemsPerSecond > 0 {
		report("throughput fpga_items_per_second", base.Result.FPGAItemsPerSecond,
			cur.Result.FPGAItemsPerSecond, true)
	}

	// Latency: per-item mean for every platform the baseline covers.
	freshRows := make(map[string]float64, len(cur.Result.Rows))
	for _, row := range cur.Result.Rows {
		freshRows[row.Platform] = row.MeanUS
	}
	for _, row := range base.Result.Rows {
		curUS, ok := freshRows[row.Platform]
		if !ok || curUS <= 0 {
			regressions = append(regressions,
				fmt.Sprintf("latency %s: missing from fresh result", row.Platform))
			fmt.Fprintf(out, "%-44s baseline %12.4g  fresh %12s  %8s  REGRESSION\n",
				"latency "+row.Platform+" mean_us", row.MeanUS, "absent", "")
			continue
		}
		report("latency "+row.Platform+" mean_us", row.MeanUS, curUS, false)
	}

	if len(regressions) > 0 {
		return fmt.Errorf("%d benchmark regression(s) beyond ±%.0f%%:\n  %s",
			len(regressions), 100**tolerance, joinLines(regressions))
	}
	fmt.Fprintf(out, "benchdiff: all metrics within ±%.0f%% of baseline\n", 100**tolerance)
	return nil
}

func joinLines(lines []string) string {
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "\n  "
		}
		out += l
	}
	return out
}
