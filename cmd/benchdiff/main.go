// Command benchdiff is the benchmark regression gate: it compares fresh
// BENCH_table1.json, BENCH_fleet.json, BENCH_wallclock.json, and
// BENCH_quality.json results (written by `make bench-gate` / cmd/csdbench)
// against the checked-in baselines and fails — with a nonzero exit — when
// the FPGA classification throughput, any platform's per-item latency, the
// fleet's serving throughput, the fleet-wide p99 queue wait, the
// instrumented serve path's per-request wall-clock or allocation count, or
// the detection-quality scorecard (recall, false-positive rate,
// windows-to-flag quantiles, score-drift PSI) regressed beyond the
// tolerance.
//
// The simulated device timings are deterministic, so the default ±15%
// table1 tolerance exists for the host-measured rows (CPU wall time varies
// with the runner) while still catching real modeling or scheduling
// regressions. The fleet benchmark is wall-clock end to end, so its gate
// uses a wider default (±50%) that still catches structural scheduling
// regressions (a lost device, a serialization bug) without flaking on
// runner noise.
//
// Usage:
//
//	benchdiff                                 # compare bench-results defaults
//	benchdiff -fresh out/BENCH_table1.json -baseline bench-results/baseline.json
//	benchdiff -tolerance 0.10
//	benchdiff -fleet-fresh "" 	              # skip the fleet gate
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

// benchDoc is the subset of cmd/csdbench's BENCH_table1.json the gate
// compares; unknown fields (confidence intervals, trace profiles) are
// ignored.
type benchDoc struct {
	Experiment string `json:"experiment"`
	Result     struct {
		Rows []struct {
			Platform string  `json:"Platform"`
			MeanUS   float64 `json:"MeanUS"`
		} `json:"Rows"`
		FPGAItemsPerSecond float64 `json:"fpga_items_per_second"`
	} `json:"result"`
}

// fleetDoc is the subset of BENCH_fleet.json the gate compares.
type fleetDoc struct {
	Experiment string `json:"experiment"`
	Result     struct {
		WindowsPerSecond float64 `json:"windows_per_second"`
		QueueWaitP99US   float64 `json:"queue_wait_p99_us"`
	} `json:"result"`
}

// wallclockDoc is the subset of BENCH_wallclock.json the gate compares:
// the instrumented leg's per-request wall-clock and allocation costs from
// the observability self-audit (cmd/csdbench -experiment wallclock).
type wallclockDoc struct {
	Experiment string `json:"experiment"`
	Result     struct {
		Instrumented struct {
			NSPerOp     float64 `json:"ns_per_op"`
			AllocsPerOp float64 `json:"allocs_per_op"`
		} `json:"instrumented"`
	} `json:"result"`
}

// qualityDoc is the subset of BENCH_quality.json the gate compares: the
// detection-quality scorecard headline numbers from csdbench's quality
// experiment.
type qualityDoc struct {
	Experiment string `json:"experiment"`
	Result     struct {
		Recall           float64 `json:"recall"`
		FPR              float64 `json:"fpr"`
		WindowsToFlagP50 float64 `json:"windows_to_flag_p50"`
		WindowsToFlagP99 float64 `json:"windows_to_flag_p99"`
		BytesAtRiskP99   float64 `json:"bytes_at_risk_p99"`
		DriftPSI         float64 `json:"drift_psi"`
	} `json:"result"`
}

func readJSON(path string, doc any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, doc); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	return nil
}

func readDoc(path string) (*benchDoc, error) {
	var doc benchDoc
	if err := readJSON(path, &doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fresh := fs.String("fresh", "bench-results/BENCH_table1.json", "freshly produced benchmark result")
	baseline := fs.String("baseline", "bench-results/baseline.json", "checked-in baseline to compare against")
	tolerance := fs.Float64("tolerance", 0.15, "relative regression tolerance (0.15 = ±15%)")
	fleetFresh := fs.String("fleet-fresh", "bench-results/BENCH_fleet.json", "freshly produced fleet benchmark result (empty: skip the fleet gate)")
	fleetBaseline := fs.String("fleet-baseline", "bench-results/baseline-fleet.json", "checked-in fleet baseline")
	fleetTolerance := fs.Float64("fleet-tolerance", 0.50, "fleet regression tolerance (wall-clock benchmark, wider by default)")
	wcFresh := fs.String("wallclock-fresh", "bench-results/BENCH_wallclock.json", "freshly produced wallclock self-audit result (empty: skip the wallclock gate)")
	wcBaseline := fs.String("wallclock-baseline", "bench-results/baseline-wallclock.json", "checked-in wallclock baseline")
	wcTolerance := fs.Float64("wallclock-tolerance", 0.50, "instrumented ns/op regression tolerance (wall-clock benchmark, wide by default)")
	wcAllocTolerance := fs.Float64("wallclock-alloc-tolerance", 0.25, "instrumented allocs/op regression tolerance (allocation counts are stable, tighter)")
	qFresh := fs.String("quality-fresh", "bench-results/BENCH_quality.json", "freshly produced detection-quality result (empty: skip the quality gate)")
	qBaseline := fs.String("quality-baseline", "bench-results/baseline-quality.json", "checked-in detection-quality baseline")
	qTolerance := fs.Float64("quality-tolerance", 0.15, "relative tolerance for recall and windows-to-flag/bytes-at-risk quantiles")
	qFPRSlack := fs.Float64("quality-fpr-slack", 0.02, "absolute false-positive-rate headroom over baseline (relative deltas blow up when the baseline FPR is 0)")
	qPSISlack := fs.Float64("quality-psi-slack", 0.2, "absolute drift-PSI headroom over baseline (0.2 = the conventional significant-shift boundary)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tolerance <= 0 || *tolerance >= 1 {
		return fmt.Errorf("tolerance %v outside (0, 1)", *tolerance)
	}
	if *fleetFresh != "" && (*fleetTolerance <= 0 || *fleetTolerance >= 1) {
		return fmt.Errorf("fleet-tolerance %v outside (0, 1)", *fleetTolerance)
	}
	if *wcFresh != "" && (*wcTolerance <= 0 || *wcTolerance >= 1 || *wcAllocTolerance <= 0 || *wcAllocTolerance >= 1) {
		return fmt.Errorf("wallclock tolerances (%v, %v) outside (0, 1)", *wcTolerance, *wcAllocTolerance)
	}
	if *qFresh != "" && (*qTolerance <= 0 || *qTolerance >= 1 || *qFPRSlack <= 0 || *qPSISlack <= 0) {
		return fmt.Errorf("quality tolerances (%v, %v, %v) invalid", *qTolerance, *qFPRSlack, *qPSISlack)
	}

	base, err := readDoc(*baseline)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	cur, err := readDoc(*fresh)
	if err != nil {
		return fmt.Errorf("fresh result: %w", err)
	}
	if base.Experiment != cur.Experiment {
		return fmt.Errorf("experiment mismatch: baseline %q vs fresh %q", base.Experiment, cur.Experiment)
	}

	var regressions []string
	reportAt := func(metric string, baseVal, curVal, tol float64, higherIsBetter bool) {
		delta := (curVal - baseVal) / baseVal
		status := "ok"
		regressed := false
		if higherIsBetter {
			regressed = delta < -tol
		} else {
			regressed = delta > tol
		}
		if regressed {
			status = "REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s: baseline %.4g, fresh %.4g (%+.1f%%)", metric, baseVal, curVal, 100*delta))
		}
		fmt.Fprintf(out, "%-44s baseline %12.4g  fresh %12.4g  %+7.1f%%  %s\n",
			metric, baseVal, curVal, 100*delta, status)
	}
	report := func(metric string, baseVal, curVal float64, higherIsBetter bool) {
		reportAt(metric, baseVal, curVal, *tolerance, higherIsBetter)
	}

	// Throughput: classifications per second on the in-storage engine.
	if base.Result.FPGAItemsPerSecond > 0 {
		report("throughput fpga_items_per_second", base.Result.FPGAItemsPerSecond,
			cur.Result.FPGAItemsPerSecond, true)
	}

	// Latency: per-item mean for every platform the baseline covers.
	freshRows := make(map[string]float64, len(cur.Result.Rows))
	for _, row := range cur.Result.Rows {
		freshRows[row.Platform] = row.MeanUS
	}
	for _, row := range base.Result.Rows {
		curUS, ok := freshRows[row.Platform]
		if !ok || curUS <= 0 {
			regressions = append(regressions,
				fmt.Sprintf("latency %s: missing from fresh result", row.Platform))
			fmt.Fprintf(out, "%-44s baseline %12.4g  fresh %12s  %8s  REGRESSION\n",
				"latency "+row.Platform+" mean_us", row.MeanUS, "absent", "")
			continue
		}
		report("latency "+row.Platform+" mean_us", row.MeanUS, curUS, false)
	}

	// Fleet: rack-scale throughput (higher is better) and fleet-wide p99
	// queue wait (lower is better), at the wider wall-clock tolerance.
	if *fleetFresh != "" {
		var fleetBase, fleetCur fleetDoc
		if err := readJSON(*fleetBaseline, &fleetBase); err != nil {
			return fmt.Errorf("fleet baseline: %w", err)
		}
		if err := readJSON(*fleetFresh, &fleetCur); err != nil {
			return fmt.Errorf("fresh fleet result: %w", err)
		}
		if fleetBase.Experiment != fleetCur.Experiment {
			return fmt.Errorf("experiment mismatch: baseline %q vs fresh %q",
				fleetBase.Experiment, fleetCur.Experiment)
		}
		reportAt("fleet windows_per_second", fleetBase.Result.WindowsPerSecond,
			fleetCur.Result.WindowsPerSecond, *fleetTolerance, true)
		reportAt("fleet queue_wait_p99_us", fleetBase.Result.QueueWaitP99US,
			fleetCur.Result.QueueWaitP99US, *fleetTolerance, false)
	}

	// Wallclock self-audit: the instrumented leg's per-request wall-clock
	// (lower is better, wide tolerance — host timing varies with the
	// runner) and allocation count (lower is better, tighter tolerance —
	// the allocation profile of the observability path is deterministic,
	// so a breach means new per-request allocations crept in).
	if *wcFresh != "" {
		var wcBase, wcCur wallclockDoc
		if err := readJSON(*wcBaseline, &wcBase); err != nil {
			return fmt.Errorf("wallclock baseline: %w", err)
		}
		if err := readJSON(*wcFresh, &wcCur); err != nil {
			return fmt.Errorf("fresh wallclock result: %w", err)
		}
		if wcBase.Experiment != wcCur.Experiment {
			return fmt.Errorf("experiment mismatch: baseline %q vs fresh %q",
				wcBase.Experiment, wcCur.Experiment)
		}
		reportAt("wallclock instrumented ns_per_op", wcBase.Result.Instrumented.NSPerOp,
			wcCur.Result.Instrumented.NSPerOp, *wcTolerance, false)
		reportAt("wallclock instrumented allocs_per_op", wcBase.Result.Instrumented.AllocsPerOp,
			wcCur.Result.Instrumented.AllocsPerOp, *wcAllocTolerance, false)
	}

	// Detection quality: recall (higher is better) and the detection-latency
	// quantiles (lower is better) gate relatively; FPR and drift PSI gate on
	// absolute slack because their baselines can legitimately be 0, where a
	// relative delta is meaningless.
	if *qFresh != "" {
		var qBase, qCur qualityDoc
		if err := readJSON(*qBaseline, &qBase); err != nil {
			return fmt.Errorf("quality baseline: %w", err)
		}
		if err := readJSON(*qFresh, &qCur); err != nil {
			return fmt.Errorf("fresh quality result: %w", err)
		}
		if qBase.Experiment != qCur.Experiment {
			return fmt.Errorf("experiment mismatch: baseline %q vs fresh %q",
				qBase.Experiment, qCur.Experiment)
		}
		reportAbs := func(metric string, baseVal, curVal, slack float64) {
			status := "ok"
			if curVal > baseVal+slack {
				status = "REGRESSION"
				regressions = append(regressions,
					fmt.Sprintf("%s: baseline %.4g, fresh %.4g (slack %.4g)", metric, baseVal, curVal, slack))
			}
			fmt.Fprintf(out, "%-44s baseline %12.4g  fresh %12.4g  %9s  %s\n",
				metric, baseVal, curVal, fmt.Sprintf("+%.4g max", slack), status)
		}
		reportAt("quality recall", qBase.Result.Recall, qCur.Result.Recall, *qTolerance, true)
		if qBase.Result.WindowsToFlagP50 > 0 {
			reportAt("quality windows_to_flag_p50", qBase.Result.WindowsToFlagP50,
				qCur.Result.WindowsToFlagP50, *qTolerance, false)
		}
		if qBase.Result.WindowsToFlagP99 > 0 {
			reportAt("quality windows_to_flag_p99", qBase.Result.WindowsToFlagP99,
				qCur.Result.WindowsToFlagP99, *qTolerance, false)
		}
		if qBase.Result.BytesAtRiskP99 > 0 {
			reportAt("quality bytes_at_risk_p99", qBase.Result.BytesAtRiskP99,
				qCur.Result.BytesAtRiskP99, *qTolerance, false)
		}
		reportAbs("quality fpr", qBase.Result.FPR, qCur.Result.FPR, *qFPRSlack)
		reportAbs("quality drift_psi", qBase.Result.DriftPSI, qCur.Result.DriftPSI, *qPSISlack)
	}

	if len(regressions) > 0 {
		return fmt.Errorf("%d benchmark regression(s) beyond tolerance:\n  %s",
			len(regressions), joinLines(regressions))
	}
	fmt.Fprintf(out, "benchdiff: all metrics within tolerance of baseline\n")
	return nil
}

func joinLines(lines []string) string {
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "\n  "
		}
		out += l
	}
	return out
}
