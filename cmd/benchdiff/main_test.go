package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeDoc(t *testing.T, dir, name, body string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baselineDoc = `{
  "experiment": "table1",
  "result": {
    "Rows": [
      {"Platform": "FPGA (CSD)", "MeanUS": 2.2},
      {"Platform": "CPU (Intel Xeon)", "MeanUS": 10.0}
    ],
    "fpga_items_per_second": 454545.45
  }
}`

func TestWithinTolerancePasses(t *testing.T) {
	dir := t.TempDir()
	base := writeDoc(t, dir, "baseline.json", baselineDoc)
	fresh := writeDoc(t, dir, "fresh.json", `{
  "experiment": "table1",
  "result": {
    "Rows": [
      {"Platform": "FPGA (CSD)", "MeanUS": 2.4},
      {"Platform": "CPU (Intel Xeon)", "MeanUS": 11.0}
    ],
    "fpga_items_per_second": 416666.0
  }
}`)
	if err := run([]string{"-baseline", base, "-fresh", fresh, "-fleet-fresh", "", "-wallclock-fresh", "", "-quality-fresh", ""}, os.Stdout); err != nil {
		t.Fatalf("within-tolerance comparison failed: %v", err)
	}
}

func TestThroughputRegressionFails(t *testing.T) {
	dir := t.TempDir()
	base := writeDoc(t, dir, "baseline.json", baselineDoc)
	fresh := writeDoc(t, dir, "fresh.json", `{
  "experiment": "table1",
  "result": {
    "Rows": [
      {"Platform": "FPGA (CSD)", "MeanUS": 2.2},
      {"Platform": "CPU (Intel Xeon)", "MeanUS": 10.0}
    ],
    "fpga_items_per_second": 300000.0
  }
}`)
	err := run([]string{"-baseline", base, "-fresh", fresh, "-fleet-fresh", "", "-wallclock-fresh", "", "-quality-fresh", ""}, os.Stdout)
	if err == nil {
		t.Fatal("34% throughput drop passed the gate")
	}
	if !strings.Contains(err.Error(), "fpga_items_per_second") {
		t.Fatalf("error does not name the regressed metric: %v", err)
	}
}

func TestLatencyRegressionFails(t *testing.T) {
	dir := t.TempDir()
	base := writeDoc(t, dir, "baseline.json", baselineDoc)
	fresh := writeDoc(t, dir, "fresh.json", `{
  "experiment": "table1",
  "result": {
    "Rows": [
      {"Platform": "FPGA (CSD)", "MeanUS": 3.0},
      {"Platform": "CPU (Intel Xeon)", "MeanUS": 10.0}
    ],
    "fpga_items_per_second": 454545.45
  }
}`)
	err := run([]string{"-baseline", base, "-fresh", fresh, "-fleet-fresh", "", "-wallclock-fresh", "", "-quality-fresh", ""}, os.Stdout)
	if err == nil {
		t.Fatal("36% latency increase passed the gate")
	}
	if !strings.Contains(err.Error(), "FPGA (CSD)") {
		t.Fatalf("error does not name the regressed platform: %v", err)
	}
}

func TestMissingPlatformFails(t *testing.T) {
	dir := t.TempDir()
	base := writeDoc(t, dir, "baseline.json", baselineDoc)
	fresh := writeDoc(t, dir, "fresh.json", `{
  "experiment": "table1",
  "result": {
    "Rows": [{"Platform": "FPGA (CSD)", "MeanUS": 2.2}],
    "fpga_items_per_second": 454545.45
  }
}`)
	if err := run([]string{"-baseline", base, "-fresh", fresh, "-fleet-fresh", "", "-wallclock-fresh", "", "-quality-fresh", ""}, os.Stdout); err == nil {
		t.Fatal("dropped CPU row passed the gate")
	}
}

func TestExperimentMismatchFails(t *testing.T) {
	dir := t.TempDir()
	base := writeDoc(t, dir, "baseline.json", baselineDoc)
	fresh := writeDoc(t, dir, "fresh.json", `{"experiment": "table2", "result": {}}`)
	if err := run([]string{"-baseline", base, "-fresh", fresh, "-fleet-fresh", "", "-wallclock-fresh", "", "-quality-fresh", ""}, os.Stdout); err == nil {
		t.Fatal("experiment mismatch passed the gate")
	}
}

func TestBadFlagsAndFiles(t *testing.T) {
	dir := t.TempDir()
	base := writeDoc(t, dir, "baseline.json", baselineDoc)
	if err := run([]string{"-baseline", base, "-fresh", filepath.Join(dir, "missing.json"), "-tolerance", "0.15", "-fleet-fresh", "", "-wallclock-fresh", "", "-quality-fresh", ""}, os.Stdout); err == nil {
		t.Fatal("missing fresh file accepted")
	}
	if err := run([]string{"-baseline", base, "-fresh", base, "-tolerance", "2", "-fleet-fresh", "", "-wallclock-fresh", "", "-quality-fresh", ""}, os.Stdout); err == nil {
		t.Fatal("tolerance 2 accepted")
	}
}

// TestCheckedInBaselineSelfComparison pins that the repository's committed
// baselines pass the gate against themselves — i.e. the default invocation
// is internally consistent.
func TestCheckedInBaselineSelfComparison(t *testing.T) {
	base := filepath.Join("..", "..", "bench-results", "baseline.json")
	fleetBase := filepath.Join("..", "..", "bench-results", "baseline-fleet.json")
	wcBase := filepath.Join("..", "..", "bench-results", "baseline-wallclock.json")
	qBase := filepath.Join("..", "..", "bench-results", "baseline-quality.json")
	for _, p := range []string{base, fleetBase, wcBase, qBase} {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("checked-in baseline missing: %v", err)
		}
	}
	if err := run([]string{"-baseline", base, "-fresh", base,
		"-fleet-baseline", fleetBase, "-fleet-fresh", fleetBase,
		"-wallclock-baseline", wcBase, "-wallclock-fresh", wcBase,
		"-quality-baseline", qBase, "-quality-fresh", qBase}, os.Stdout); err != nil {
		t.Fatalf("baselines do not pass against themselves: %v", err)
	}
}

const fleetBaselineDoc = `{
  "experiment": "fleet",
  "result": {"windows_per_second": 1200.0, "queue_wait_p99_us": 40000.0}
}`

func TestFleetWithinTolerancePasses(t *testing.T) {
	dir := t.TempDir()
	base := writeDoc(t, dir, "baseline.json", baselineDoc)
	fleetBase := writeDoc(t, dir, "baseline-fleet.json", fleetBaselineDoc)
	fresh := writeDoc(t, dir, "fresh-fleet.json", `{
  "experiment": "fleet",
  "result": {"windows_per_second": 900.0, "queue_wait_p99_us": 55000.0}
}`)
	err := run([]string{"-baseline", base, "-fresh", base,
		"-fleet-baseline", fleetBase, "-fleet-fresh", fresh, "-wallclock-fresh", "", "-quality-fresh", ""}, os.Stdout)
	if err != nil {
		t.Fatalf("within-tolerance fleet comparison failed: %v", err)
	}
}

func TestFleetThroughputRegressionFails(t *testing.T) {
	dir := t.TempDir()
	base := writeDoc(t, dir, "baseline.json", baselineDoc)
	fleetBase := writeDoc(t, dir, "baseline-fleet.json", fleetBaselineDoc)
	fresh := writeDoc(t, dir, "fresh-fleet.json", `{
  "experiment": "fleet",
  "result": {"windows_per_second": 400.0, "queue_wait_p99_us": 40000.0}
}`)
	err := run([]string{"-baseline", base, "-fresh", base,
		"-fleet-baseline", fleetBase, "-fleet-fresh", fresh, "-wallclock-fresh", "", "-quality-fresh", ""}, os.Stdout)
	if err == nil {
		t.Fatal("67% fleet throughput drop passed the gate")
	}
	if !strings.Contains(err.Error(), "windows_per_second") {
		t.Fatalf("error does not name the regressed metric: %v", err)
	}
}

func TestFleetQueueWaitRegressionFails(t *testing.T) {
	dir := t.TempDir()
	base := writeDoc(t, dir, "baseline.json", baselineDoc)
	fleetBase := writeDoc(t, dir, "baseline-fleet.json", fleetBaselineDoc)
	fresh := writeDoc(t, dir, "fresh-fleet.json", `{
  "experiment": "fleet",
  "result": {"windows_per_second": 1200.0, "queue_wait_p99_us": 90000.0}
}`)
	err := run([]string{"-baseline", base, "-fresh", base,
		"-fleet-baseline", fleetBase, "-fleet-fresh", fresh, "-wallclock-fresh", "", "-quality-fresh", ""}, os.Stdout)
	if err == nil {
		t.Fatal("125% fleet p99 increase passed the gate")
	}
	if !strings.Contains(err.Error(), "queue_wait_p99_us") {
		t.Fatalf("error does not name the regressed metric: %v", err)
	}
}

const wallclockBaselineDoc = `{
  "experiment": "wallclock",
  "result": {"instrumented": {"ns_per_op": 900000.0, "allocs_per_op": 430.0}}
}`

func TestWallclockWithinTolerancePasses(t *testing.T) {
	dir := t.TempDir()
	base := writeDoc(t, dir, "baseline.json", baselineDoc)
	wcBase := writeDoc(t, dir, "baseline-wallclock.json", wallclockBaselineDoc)
	fresh := writeDoc(t, dir, "fresh-wallclock.json", `{
  "experiment": "wallclock",
  "result": {"instrumented": {"ns_per_op": 1200000.0, "allocs_per_op": 480.0}}
}`)
	err := run([]string{"-baseline", base, "-fresh", base, "-fleet-fresh", "",
		"-wallclock-baseline", wcBase, "-wallclock-fresh", fresh, "-quality-fresh", ""}, os.Stdout)
	if err != nil {
		t.Fatalf("within-tolerance wallclock comparison failed: %v", err)
	}
}

func TestWallclockNSRegressionFails(t *testing.T) {
	dir := t.TempDir()
	base := writeDoc(t, dir, "baseline.json", baselineDoc)
	wcBase := writeDoc(t, dir, "baseline-wallclock.json", wallclockBaselineDoc)
	fresh := writeDoc(t, dir, "fresh-wallclock.json", `{
  "experiment": "wallclock",
  "result": {"instrumented": {"ns_per_op": 1500000.0, "allocs_per_op": 430.0}}
}`)
	err := run([]string{"-baseline", base, "-fresh", base, "-fleet-fresh", "",
		"-wallclock-baseline", wcBase, "-wallclock-fresh", fresh, "-quality-fresh", ""}, os.Stdout)
	if err == nil {
		t.Fatal("67% instrumented ns/op increase passed the gate")
	}
	if !strings.Contains(err.Error(), "ns_per_op") {
		t.Fatalf("error does not name the regressed metric: %v", err)
	}
}

func TestWallclockAllocRegressionFails(t *testing.T) {
	dir := t.TempDir()
	base := writeDoc(t, dir, "baseline.json", baselineDoc)
	wcBase := writeDoc(t, dir, "baseline-wallclock.json", wallclockBaselineDoc)
	fresh := writeDoc(t, dir, "fresh-wallclock.json", `{
  "experiment": "wallclock",
  "result": {"instrumented": {"ns_per_op": 900000.0, "allocs_per_op": 600.0}}
}`)
	err := run([]string{"-baseline", base, "-fresh", base, "-fleet-fresh", "",
		"-wallclock-baseline", wcBase, "-wallclock-fresh", fresh, "-quality-fresh", ""}, os.Stdout)
	if err == nil {
		t.Fatal("40% instrumented allocs/op increase passed the gate")
	}
	if !strings.Contains(err.Error(), "allocs_per_op") {
		t.Fatalf("error does not name the regressed metric: %v", err)
	}
}

const qualityBaselineDoc = `{
  "experiment": "quality",
  "result": {"recall": 0.99, "fpr": 0.01, "windows_to_flag_p50": 1.0,
             "windows_to_flag_p99": 3.0, "bytes_at_risk_p99": 1048576.0, "drift_psi": 0.0}
}`

func qualityRun(t *testing.T, freshBody string) error {
	t.Helper()
	dir := t.TempDir()
	base := writeDoc(t, dir, "baseline.json", baselineDoc)
	qBase := writeDoc(t, dir, "baseline-quality.json", qualityBaselineDoc)
	fresh := writeDoc(t, dir, "fresh-quality.json", freshBody)
	return run([]string{"-baseline", base, "-fresh", base, "-fleet-fresh", "", "-wallclock-fresh", "",
		"-quality-baseline", qBase, "-quality-fresh", fresh}, os.Stdout)
}

func TestQualityWithinTolerancePasses(t *testing.T) {
	// Recall −10% relative, FPR +0.015 absolute, PSI 0.15 absolute, latency
	// quantiles +10% — all inside the default slack.
	err := qualityRun(t, `{
  "experiment": "quality",
  "result": {"recall": 0.90, "fpr": 0.025, "windows_to_flag_p50": 1.1,
             "windows_to_flag_p99": 3.3, "bytes_at_risk_p99": 1100000.0, "drift_psi": 0.15}
}`)
	if err != nil {
		t.Fatalf("within-tolerance quality comparison failed: %v", err)
	}
}

func TestQualityRecallRegressionFails(t *testing.T) {
	err := qualityRun(t, `{
  "experiment": "quality",
  "result": {"recall": 0.60, "fpr": 0.01, "windows_to_flag_p50": 1.0,
             "windows_to_flag_p99": 3.0, "bytes_at_risk_p99": 1048576.0, "drift_psi": 0.0}
}`)
	if err == nil {
		t.Fatal("39% recall drop passed the gate")
	}
	if !strings.Contains(err.Error(), "recall") {
		t.Fatalf("error does not name the regressed metric: %v", err)
	}
}

func TestQualityFPRAbsoluteSlackFails(t *testing.T) {
	// +0.03 absolute over a 0.01 baseline: the relative delta (×4) would be
	// meaningless at a 0 baseline, but the absolute +0.02 slack catches it.
	err := qualityRun(t, `{
  "experiment": "quality",
  "result": {"recall": 0.99, "fpr": 0.04, "windows_to_flag_p50": 1.0,
             "windows_to_flag_p99": 3.0, "bytes_at_risk_p99": 1048576.0, "drift_psi": 0.0}
}`)
	if err == nil {
		t.Fatal("+0.03 absolute FPR increase passed the gate")
	}
	if !strings.Contains(err.Error(), "fpr") {
		t.Fatalf("error does not name the regressed metric: %v", err)
	}
}

func TestQualityDriftPSIFails(t *testing.T) {
	err := qualityRun(t, `{
  "experiment": "quality",
  "result": {"recall": 0.99, "fpr": 0.01, "windows_to_flag_p50": 1.0,
             "windows_to_flag_p99": 3.0, "bytes_at_risk_p99": 1048576.0, "drift_psi": 0.35}
}`)
	if err == nil {
		t.Fatal("PSI 0.35 over a drift-free baseline passed the gate")
	}
	if !strings.Contains(err.Error(), "drift_psi") {
		t.Fatalf("error does not name the regressed metric: %v", err)
	}
}

func TestQualityDetectionLatencyRegressionFails(t *testing.T) {
	err := qualityRun(t, `{
  "experiment": "quality",
  "result": {"recall": 0.99, "fpr": 0.01, "windows_to_flag_p50": 1.0,
             "windows_to_flag_p99": 6.0, "bytes_at_risk_p99": 1048576.0, "drift_psi": 0.0}
}`)
	if err == nil {
		t.Fatal("2x windows-to-flag p99 passed the gate")
	}
	if !strings.Contains(err.Error(), "windows_to_flag_p99") {
		t.Fatalf("error does not name the regressed metric: %v", err)
	}
}

func TestQualityExperimentMismatchFails(t *testing.T) {
	if err := qualityRun(t, `{"experiment": "fleet", "result": {}}`); err == nil {
		t.Fatal("quality experiment mismatch passed the gate")
	}
}

func TestWallclockExperimentMismatchFails(t *testing.T) {
	dir := t.TempDir()
	base := writeDoc(t, dir, "baseline.json", baselineDoc)
	wcBase := writeDoc(t, dir, "baseline-wallclock.json", wallclockBaselineDoc)
	fresh := writeDoc(t, dir, "fresh-wallclock.json", `{"experiment": "fleet", "result": {}}`)
	if err := run([]string{"-baseline", base, "-fresh", base, "-fleet-fresh", "",
		"-wallclock-baseline", wcBase, "-wallclock-fresh", fresh, "-quality-fresh", ""}, os.Stdout); err == nil {
		t.Fatal("wallclock experiment mismatch passed the gate")
	}
}
