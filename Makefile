GO ?= go

.PHONY: build test bench verify fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench . -benchmem ./...

# verify is the pre-merge gate: static checks, a full build, and the whole
# test suite under the race detector (the serving layer is concurrent).
verify:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

fmt:
	gofmt -w .
