GO ?= go
BENCH_JSON_DIR ?= bench-results

.PHONY: build test bench bench-json bench-gate smoke load-smoke prof-smoke quality-smoke trace lint fuzz verify fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench . -benchmem ./...

# bench-json runs the fast (non-training) experiments and writes their
# structured results to $(BENCH_JSON_DIR)/BENCH_<experiment>.json.
bench-json:
	$(GO) run ./cmd/csdbench -experiment fig3 -json $(BENCH_JSON_DIR)
	$(GO) run ./cmd/csdbench -experiment table1 -measure-go=false -json $(BENCH_JSON_DIR)
	$(GO) run ./cmd/csdbench -experiment table2 -json $(BENCH_JSON_DIR)
	$(GO) run ./cmd/csdbench -experiment energy -json $(BENCH_JSON_DIR)

# bench-gate regenerates the table1, fleet, wallclock, and quality results
# and fails (nonzero exit) when classification throughput or any platform's
# per-item latency regressed more than ±15%, the fleet's serving throughput /
# p99 queue wait regressed more than ±50% (wall-clock benchmark), the
# instrumented serve path's ns/op (±50%) or allocs/op (±25%) regressed, or
# detection quality slipped (recall / detection latency ±15%, FPR +0.02
# absolute, drift PSI +0.2 absolute), against the checked-in baselines.
# Refresh a baseline deliberately by copying a trusted BENCH_<x>.json over
# the matching bench-results/baseline-<x>.json (plain baseline.json for
# table1); refresh the drift reference with
# csdbench -experiment quality -quality-write-reference.
bench-gate:
	$(GO) run ./cmd/csdbench -experiment table1 -measure-go=false -json $(BENCH_JSON_DIR)
	$(GO) run ./cmd/csdbench -experiment fleet -json $(BENCH_JSON_DIR)
	$(GO) run ./cmd/csdbench -experiment wallclock -json $(BENCH_JSON_DIR)
	$(GO) run ./cmd/csdbench -experiment quality -json $(BENCH_JSON_DIR)
	$(GO) run ./cmd/benchdiff -fresh $(BENCH_JSON_DIR)/BENCH_table1.json \
		-fleet-fresh $(BENCH_JSON_DIR)/BENCH_fleet.json \
		-wallclock-fresh $(BENCH_JSON_DIR)/BENCH_wallclock.json \
		-quality-fresh $(BENCH_JSON_DIR)/BENCH_quality.json

# smoke replays the ransomware demo with full forensics on: the JSON-lines
# event stream and one incident report per flagged process land next to the
# benchmark results for artifact upload and jq-based inspection.
smoke:
	$(GO) run ./cmd/csddetect \
		-events $(BENCH_JSON_DIR)/events.jsonl -incident-dir $(BENCH_JSON_DIR)/incidents

# load-smoke runs a short seeded open-loop load test against a 4-device
# fleet and writes the SLO attainment report (objectives, error budgets,
# burn-rate alerts) for artifact upload. The rate sits well under the
# fleet's measured capacity so the report judges the serving path, not the
# CI runner, and the latency objective is relaxed from the paper's 2ms to a
# CI-realistic 25ms (shared runners add milliseconds of scheduling noise).
# -seed pins the arrival schedule (and its digest) for run-over-run
# comparability.
load-smoke:
	mkdir -p $(BENCH_JSON_DIR)
	$(GO) run ./cmd/csdload -devices 4 -arrivals poisson -rate 500 \
		-duration 5s -warmup 1s -seed 1 -latency-slo 25ms \
		-json $(BENCH_JSON_DIR)/slo-report.json

# prof-smoke is load-smoke with the continuous profiler on and chaos
# injected: the full-rack blackout deliberately pages the availability
# objective, so the run proves the page → incident → flight-dump chain and
# uploads the dumps (runtime samples + per-request stage breakdowns, job-ID
# correlated with the incident) and the final prof.json snapshot.
prof-smoke:
	mkdir -p $(BENCH_JSON_DIR)/prof
	$(GO) run ./cmd/csdload -devices 4 -arrivals poisson -rate 500 \
		-duration 5s -warmup 1s -seed 1 -latency-slo 25ms -chaos \
		-prof -prof-dir $(BENCH_JSON_DIR)/prof \
		-json $(BENCH_JSON_DIR)/prof/slo-report.json
	@ls $(BENCH_JSON_DIR)/prof/flight-*.json >/dev/null 2>&1 || \
		{ echo "prof-smoke: no flight dump produced" >&2; exit 1; }

# quality-smoke proves the detection-quality loop on a seeded run: the
# labeled PID population must produce true positives (the min-TP gate fails
# the run on total blindness) and the scorecard artifact — the same document
# /quality.json serves — lands next to the SLO report for upload. A second
# run with -quality-inject-miss drills the recall SLO: every verdict is
# forced un-flagged, the recall objective burns through, and the run must
# page at least one incident.
quality-smoke:
	mkdir -p $(BENCH_JSON_DIR)
	$(GO) run ./cmd/csdload -devices 2 -rate 800 -duration 3s -seed 13 \
		-pids 200 -ransom-fraction 0.3 -latency-slo 25ms \
		-quality-min-tp 1 -quality-json $(BENCH_JSON_DIR)/quality.json \
		-json $(BENCH_JSON_DIR)/quality-slo-report.json
	$(GO) run ./cmd/csdload -devices 2 -rate 800 -duration 3s -seed 13 \
		-pids 200 -ransom-fraction 0.3 -latency-slo 25ms \
		-quality-inject-miss -recall-target 0.99 \
		-json $(BENCH_JSON_DIR)/quality-miss-report.json
	@grep -q '"incidents_opened": 0' $(BENCH_JSON_DIR)/quality-miss-report.json && \
		{ echo "quality-smoke: inject-miss run paged no incident" >&2; exit 1; } || true

# trace runs the table1 configuration with the device timeline tracer on,
# writing a Perfetto-loadable Chrome trace (open at https://ui.perfetto.dev)
# next to the BENCH_*.json results and printing the cycle/occupancy profile.
trace:
	$(GO) run ./cmd/csdbench -experiment table1 -measure-go=false \
		-trace $(BENCH_JSON_DIR)/trace.json -json $(BENCH_JSON_DIR)

# lint runs both static-analysis fronts (see DESIGN.md "Static analysis"):
#   1. the design-rule checker over the supported deploy matrix, and the
#      numeric range analysis over a quick-trained paper model, each writing
#      the machine-readable findings CI uploads as artifacts;
#   2. the custom Go-source analyzers (simclock, ctxfirst, telemetrylabels,
#      eventname, fixedwidth) from the tools/analyzers module, plus that
#      module's own test suite (which includes linting this repository as a
#      fixture);
#   3. staticcheck over both modules, when the binary is installed (CI
#      installs it; locally: go install honnef.co/go/tools/cmd/staticcheck@latest).
lint:
	mkdir -p $(BENCH_JSON_DIR)
	$(GO) run ./cmd/csdlint drc -q -json $(BENCH_JSON_DIR)/drc.json
	$(GO) run ./cmd/csdlint ranges -q -json $(BENCH_JSON_DIR)/ranges.json
	cd tools/analyzers && $(GO) run ./cmd/csdlint-go -root ../..
	cd tools/analyzers && $(GO) test ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./... && cd tools/analyzers && staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# fuzz gives each native fuzz target a short smoke budget — enough to shake
# out regressions in the scheduler and the event wire format without tying
# up CI. Crashers land in testdata/fuzz/ for triage.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzScheduleLoop -fuzztime=$(FUZZTIME) ./internal/hls/
	$(GO) test -run=^$$ -fuzz=FuzzEventJSON -fuzztime=$(FUZZTIME) ./internal/eventlog/
	$(GO) test -run=^$$ -fuzz=FuzzDecodeJSON -fuzztime=$(FUZZTIME) ./internal/eventlog/
	$(GO) test -run=^$$ -fuzz=FuzzQualityLabel -fuzztime=$(FUZZTIME) ./internal/quality/
	$(GO) test -run=^$$ -fuzz=FuzzIntervalSoundness -fuzztime=$(FUZZTIME) ./internal/absint/

# verify is the pre-merge gate: static checks (vet + both lint fronts), a
# full build, and the whole test suite under the race detector (the serving
# layer is concurrent).
verify: lint
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

fmt:
	gofmt -w .
