GO ?= go
BENCH_JSON_DIR ?= bench-results

.PHONY: build test bench bench-json bench-gate smoke trace verify fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench . -benchmem ./...

# bench-json runs the fast (non-training) experiments and writes their
# structured results to $(BENCH_JSON_DIR)/BENCH_<experiment>.json.
bench-json:
	$(GO) run ./cmd/csdbench -experiment fig3 -json $(BENCH_JSON_DIR)
	$(GO) run ./cmd/csdbench -experiment table1 -measure-go=false -json $(BENCH_JSON_DIR)
	$(GO) run ./cmd/csdbench -experiment table2 -json $(BENCH_JSON_DIR)
	$(GO) run ./cmd/csdbench -experiment energy -json $(BENCH_JSON_DIR)

# bench-gate regenerates the table1 result and fails (nonzero exit) when
# classification throughput or any platform's per-item latency regressed
# more than ±15% against the checked-in baseline. Refresh the baseline
# deliberately by copying a trusted BENCH_table1.json over
# bench-results/baseline.json.
bench-gate:
	$(GO) run ./cmd/csdbench -experiment table1 -measure-go=false -json $(BENCH_JSON_DIR)
	$(GO) run ./cmd/benchdiff -fresh $(BENCH_JSON_DIR)/BENCH_table1.json

# smoke replays the ransomware demo with full forensics on: the JSON-lines
# event stream and one incident report per flagged process land next to the
# benchmark results for artifact upload and jq-based inspection.
smoke:
	$(GO) run ./cmd/csddetect \
		-events $(BENCH_JSON_DIR)/events.jsonl -incident-dir $(BENCH_JSON_DIR)/incidents

# trace runs the table1 configuration with the device timeline tracer on,
# writing a Perfetto-loadable Chrome trace (open at https://ui.perfetto.dev)
# next to the BENCH_*.json results and printing the cycle/occupancy profile.
trace:
	$(GO) run ./cmd/csdbench -experiment table1 -measure-go=false \
		-trace $(BENCH_JSON_DIR)/trace.json -json $(BENCH_JSON_DIR)

# verify is the pre-merge gate: static checks, a full build, and the whole
# test suite under the race detector (the serving layer is concurrent).
verify:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

fmt:
	gofmt -w .
