GO ?= go
BENCH_JSON_DIR ?= bench-results

.PHONY: build test bench bench-json trace verify fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench . -benchmem ./...

# bench-json runs the fast (non-training) experiments and writes their
# structured results to $(BENCH_JSON_DIR)/BENCH_<experiment>.json.
bench-json:
	$(GO) run ./cmd/csdbench -experiment fig3 -json $(BENCH_JSON_DIR)
	$(GO) run ./cmd/csdbench -experiment table1 -measure-go=false -json $(BENCH_JSON_DIR)
	$(GO) run ./cmd/csdbench -experiment table2 -json $(BENCH_JSON_DIR)
	$(GO) run ./cmd/csdbench -experiment energy -json $(BENCH_JSON_DIR)

# trace runs the table1 configuration with the device timeline tracer on,
# writing a Perfetto-loadable Chrome trace (open at https://ui.perfetto.dev)
# next to the BENCH_*.json results and printing the cycle/occupancy profile.
trace:
	$(GO) run ./cmd/csdbench -experiment table1 -measure-go=false \
		-trace $(BENCH_JSON_DIR)/trace.json -json $(BENCH_JSON_DIR)

# verify is the pre-merge gate: static checks, a full build, and the whole
# test suite under the race detector (the serving layer is concurrent).
verify:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

fmt:
	gofmt -w .
