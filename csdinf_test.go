package csdinf

import (
	"bytes"
	"context"
	"errors"
	"hash/fnv"
	"strings"
	"sync"
	"testing"
)

// TestEndToEndPipeline exercises the full public API exactly as the README
// quickstart does: build corpus → train → deploy to a CSD → classify stored
// sequences → stream-detect an infection.
func TestEndToEndPipeline(t *testing.T) {
	// Scaled-down corpus so the test stays fast.
	ds, err := BuildDataset(DatasetConfig{
		RansomwareCount: 228, // 3 windows per variant
		BenignCount:     186, // 6 per benign source
		Window:          40,
		Stride:          20,
		Seed:            1,
	})
	if err != nil {
		t.Fatal(err)
	}
	trainDS, testDS, err := ds.Split(0.25, 2)
	if err != nil {
		t.Fatal(err)
	}

	res, err := Train(trainDS, testDS, TrainConfig{
		Epochs:     10,
		BatchSize:  16,
		Seed:       3,
		EmbedDim:   6,
		HiddenSize: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Accuracy < 0.85 {
		t.Fatalf("accuracy = %v", res.Final.Accuracy)
	}

	// Weight round trip through the host-init text format.
	var buf bytes.Buffer
	if err := SaveWeights(res.Model, &buf); err != nil {
		t.Fatal(err)
	}
	model, err := LoadWeights(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Deploy to a CSD and classify sequences stored on the SSD.
	dev, err := NewSmartSSD(CSDConfig{})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Deploy(dev, model, DeployConfig{Level: LevelFixedPoint, SeqLen: 40})
	if err != nil {
		t.Fatal(err)
	}

	correct, total := 0, 0
	var off int64
	for _, s := range testDS.Sequences[:40] {
		if _, err := dev.StoreSequence(off, s.Items); err != nil {
			t.Fatal(err)
		}
		result, timing, err := eng.PredictStored(context.Background(), off)
		if err != nil {
			t.Fatal(err)
		}
		if timing.Total() <= 0 {
			t.Fatal("no time charged")
		}
		if result.Ransomware == s.Ransomware {
			correct++
		}
		total++
		off += int64(len(s.Items) * 4)
	}
	if frac := float64(correct) / float64(total); frac < 0.8 {
		t.Fatalf("stored-classification agreement = %v", frac)
	}

	// Streaming detection over a live ransomware trace.
	var ransom *Sequence
	for i := range testDS.Sequences {
		if testDS.Sequences[i].Ransomware {
			ransom = &testDS.Sequences[i]
			break
		}
	}
	if ransom == nil {
		t.Fatal("no ransomware sequence in test split")
	}
	det, err := NewDetector(eng, DetectorConfig{Stride: 10, AlertsToBlock: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, call := range ransom.Items {
		if _, err := det.Observe(context.Background(), call); err != nil {
			break // ErrBlocked is success here
		}
	}
	// Detection isn't guaranteed for every window, but the detector must
	// have evaluated at least one.
	if det.Stats().WindowsEvaluated == 0 {
		t.Fatal("detector never classified a window")
	}
}

func TestPaperModelConfigCounts(t *testing.T) {
	m, err := NewModel(PaperModelConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	embed, lstmP, head := m.ParamCount()
	if embed+lstmP != 7472 || head != 33 {
		t.Fatalf("params = %d + %d, want 7472 + 33", embed+lstmP, head)
	}
	if VocabSize != 278 {
		t.Fatalf("VocabSize = %d", VocabSize)
	}
}

func TestAPICatalogPassthrough(t *testing.T) {
	id, err := APIID("CryptEncrypt")
	if err != nil {
		t.Fatal(err)
	}
	name, err := APIName(id)
	if err != nil || name != "CryptEncrypt" {
		t.Fatalf("round trip = %q, %v", name, err)
	}
	if _, err := APIID("NotAnAPI"); err == nil {
		t.Error("unknown API accepted")
	}
}

func TestFamiliesExported(t *testing.T) {
	if len(Families) != 10 {
		t.Fatalf("families = %d", len(Families))
	}
	total := 0
	for _, f := range Families {
		total += f.Variants
	}
	if total != 76 {
		t.Fatalf("variants = %d", total)
	}
}

func TestDatasetCSVThroughFacade(t *testing.T) {
	ds, err := BuildDataset(DatasetConfig{
		RansomwareCount: 76, BenignCount: 31, Window: 20, Stride: 20, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDatasetCSV(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Sequences) != len(ds.Sequences) {
		t.Fatalf("round trip rows = %d, want %d", len(got.Sequences), len(ds.Sequences))
	}
}

func TestPartsExported(t *testing.T) {
	if KU15P.Name != "xcku15p" || AlveoU200.Name != "xcu200" {
		t.Fatal("FPGA parts misconfigured")
	}
	if LevelVanilla >= LevelII || LevelII >= LevelFixedPoint {
		t.Fatal("level ordering broken")
	}
	if ActionNone == ActionAlert || ActionAlert == ActionBlock {
		t.Fatal("action constants collide")
	}
	if Version == "" {
		t.Fatal("empty version")
	}
}

func TestBuildFPGABinaryFacade(t *testing.T) {
	bin, err := BuildFPGABinary(LevelFixedPoint, AlveoU200)
	if err != nil {
		t.Fatal(err)
	}
	if len(bin.Objects) != 3 {
		t.Fatalf("kernels = %d, want 3", len(bin.Objects))
	}
	if _, err := BuildFPGABinary(LevelFixedPoint, KU15P); err == nil {
		t.Fatal("fixed-point on KU15P should fail to link")
	}
	if _, err := BuildFPGABinary(LevelMixed, KU15P); err != nil {
		t.Fatalf("mixed on KU15P failed: %v", err)
	}
}

func TestRuntimeFacade(t *testing.T) {
	card, err := NewSmartSSD(CSDConfig{})
	if err != nil {
		t.Fatal(err)
	}
	dev, err := OpenRuntime(card)
	if err != nil {
		t.Fatal(err)
	}
	bin, err := BuildFPGABinary(LevelFixedPoint, AlveoU200)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.LoadXclbin(bin); err != nil {
		t.Fatal(err)
	}
	k, err := dev.Kernel("kernel_gates")
	if err != nil {
		t.Fatal(err)
	}
	if d, err := k.Start(4).Wait(); err != nil || d <= 0 {
		t.Fatalf("run = %v, %v", d, err)
	}
}

func TestTraceGenerationFacade(t *testing.T) {
	trace, err := RansomwareTrace("Wannacry", 0, 500, 1)
	if err != nil || len(trace) != 500 {
		t.Fatalf("RansomwareTrace: %d items, %v", len(trace), err)
	}
	if _, err := RansomwareTrace("NotAFamily", 0, 10, 1); err == nil {
		t.Error("unknown family accepted")
	}
	bt, err := BenignTrace(BenignApps[0], 200, 2)
	if err != nil || len(bt) != 200 {
		t.Fatalf("BenignTrace: %d items, %v", len(bt), err)
	}
	dt, err := DesktopTrace(100, 3)
	if err != nil || len(dt) != 100 {
		t.Fatalf("DesktopTrace: %d items, %v", len(dt), err)
	}
}

func TestReportFacade(t *testing.T) {
	trace, err := RansomwareTrace("Cerber", 0, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := ReportFromTrace("cerber.exe", "Cerber", 0, trace)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	items, err := got.Trace()
	if err != nil || len(items) != 300 {
		t.Fatalf("report trace: %d items, %v", len(items), err)
	}
	ds, err := DatasetFromTraces([]LabeledTrace{
		{Items: items, Ransomware: true, Source: "cerber.exe"},
	}, 100, 25, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Sequences) != 9 { // (300-100)/25+1
		t.Fatalf("windows = %d, want 9", len(ds.Sequences))
	}
}

func TestMitigationQuarantineFacade(t *testing.T) {
	dev, err := NewSmartSSD(CSDConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.SSD().Write(0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	dev.SSD().Quarantine(true)
	if _, err := dev.SSD().Write(0, []byte{2}); err == nil {
		t.Fatal("write under quarantine succeeded")
	}
}

func TestDetectorMuxFacade(t *testing.T) {
	ds, err := BuildDataset(DatasetConfig{
		RansomwareCount: 228, BenignCount: 186, Window: 40, Stride: 20, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	trainDS, testDS, err := ds.Split(0.25, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Train(trainDS, testDS, TrainConfig{
		Epochs: 8, Seed: 3, EmbedDim: 6, HiddenSize: 12, TargetAccuracy: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	dev, err := NewSmartSSD(CSDConfig{})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Deploy(dev, res.Model, DeployConfig{SeqLen: 40})
	if err != nil {
		t.Fatal(err)
	}
	mux, err := NewDetectorMux(eng, DetectorMuxConfig{
		Detector: DetectorConfig{Stride: 10, AlertsToBlock: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two interleaved processes: pid 7 infected, pid 3 benign desktop.
	infection, err := RansomwareTrace("Cerber", 0, 400, 5)
	if err != nil {
		t.Fatal(err)
	}
	desktop, err := DesktopTrace(400, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range infection {
		if _, err := mux.Observe(context.Background(), 3, desktop[i]); err != nil {
			break
		}
		if _, err := mux.Observe(context.Background(), 7, infection[i]); err != nil {
			break
		}
	}
	// AUC through the facade.
	preds, err := Score(res.Model, testDS)
	if err != nil {
		t.Fatal(err)
	}
	auc, err := AUC(preds)
	if err != nil {
		t.Fatal(err)
	}
	if auc < 0.9 {
		t.Fatalf("AUC = %v", auc)
	}
}

// TestCorpusDeterminismGolden guards the seeded generation pipeline: the
// same seed must always produce the same corpus (a silent generator change
// would invalidate every recorded experiment).
func TestCorpusDeterminismGolden(t *testing.T) {
	ds, err := BuildDataset(DatasetConfig{
		RansomwareCount: 76, BenignCount: 31, Window: 25, Stride: 25, Seed: 12345,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	for _, s := range ds.Sequences {
		for _, it := range s.Items {
			h.Write([]byte{byte(it), byte(it >> 8)})
		}
		if s.Ransomware {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	}
	// Golden value recorded at v1.0.0; update deliberately (and re-record
	// EXPERIMENTS.md) if the generator changes.
	const golden = uint64(0xc755d7c09e9d179d)
	if got := h.Sum64(); got != golden {
		t.Fatalf("corpus hash = %#x, want %#x — the seeded generator changed; "+
			"if intentional, re-record EXPERIMENTS.md and update this golden", got, golden)
	}
}

// TestServerFacade exercises the concurrent serving layer end to end
// through the public API: deploy to several devices, push live and stored
// work from concurrent callers, and close.
func TestServerFacade(t *testing.T) {
	cfg := PaperModelConfig()
	cfg.EmbedDim, cfg.HiddenSize = 4, 8 // scaled down to keep the test fast
	m, err := NewModel(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(m, NodeConfig{
		Devices: 2,
		Deploy:  DeployConfig{SeqLen: 16},
	}, ServeConfig{Block: true})
	if err != nil {
		t.Fatal(err)
	}
	if s.Devices() != 2 || s.SeqLen() != 16 {
		t.Fatalf("Devices = %d, SeqLen = %d", s.Devices(), s.SeqLen())
	}
	seq := make([]int, 16)
	for i := range seq {
		seq[i] = i + 1
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				if _, _, err := s.Predict(context.Background(), seq); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	var jobs int64
	for _, st := range s.Stats() {
		jobs += st.Jobs
	}
	if jobs != 32 {
		t.Fatalf("jobs = %d, want 32", jobs)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Predict(context.Background(), seq); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("post-close error = %v, want ErrServerClosed", err)
	}
}

// TestObservabilityFacade exercises the event-log and incident re-exports:
// a logger with a file sink, an incident recorder fed synthetic window
// samples, and the forensic report output.
func TestObservabilityFacade(t *testing.T) {
	events := NewEventLogger(EventLogConfig{MinLevel: EventLevelDebug})
	path := t.TempDir() + "/events.jsonl"
	sink, err := NewEventFileSink(path)
	if err != nil {
		t.Fatal(err)
	}
	events.Attach("file", sink, 0)

	rec, err := NewIncidentRecorder(IncidentConfig{
		Generation: func() int64 { return 7 },
		Events:     events,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec.Window(WindowSample{PID: 42, CallIndex: 100, Probability: 0.2, Action: ActionNone, Device: "0"})
	rec.Window(WindowSample{PID: 42, CallIndex: 125, Probability: 0.9, Action: ActionBlock, Job: 5, Device: "0"})

	incs := rec.Snapshot()
	if len(incs) != 1 {
		t.Fatalf("incidents = %d, want 1", len(incs))
	}
	inc := incs[0]
	if inc.PID != 42 || inc.State != "closed" || inc.CloseReason != "blocked" {
		t.Fatalf("incident = %+v", inc)
	}
	if inc.ModelGeneration != 7 || len(inc.Trajectory) != 2 {
		t.Fatalf("generation %d, trajectory %d", inc.ModelGeneration, len(inc.Trajectory))
	}
	if _, err := rec.WriteReports(t.TempDir()); err != nil {
		t.Fatal(err)
	}

	if err := events.Close(); err != nil {
		t.Fatal(err)
	}
	var stats []EventSinkStats = events.SinkStats()
	if len(stats) != 1 || stats[0].Written == 0 || stats[0].Dropped != 0 {
		t.Fatalf("sink stats = %+v", stats)
	}
}

// TestQualityFacade exercises the detection-quality surface end to end
// through the public API: scorecard construction, label stamping, SLO
// feedback into recall/false-positive objectives, and reference round-trip.
func TestQualityFacade(t *testing.T) {
	ev, err := NewSLOEvaluator(SLOConfig{Objectives: []SLObjective{
		{Name: "recall", Kind: SLORecall, Target: 0.5, Window: 60_000_000_000},
		{Name: "fp", Kind: SLOFalsePositive, Target: 0.5, Window: 60_000_000_000},
	}})
	if err != nil {
		t.Fatal(err)
	}
	card, err := NewQualityScorecard(QualityConfig{SLO: ev.Quality})
	if err != nil {
		t.Fatal(err)
	}
	ctx := WithQualityLabel(context.Background(), QualityLabel{Truth: true, Family: "LockBit"})
	if l, ok := QualityLabelFrom(ctx); !ok || !l.Truth || l.Family != "lockbit" {
		t.Fatalf("label round-trip = %+v, %v", l, ok)
	}
	card.Observe(ctx, QualityVerdict{PID: 1, Probability: 0.9, Flagged: true})
	card.Observe(WithQualityLabel(context.Background(), QualityLabel{Family: "benign"}),
		QualityVerdict{PID: 2, Probability: 0.1})

	var snap QualitySnapshot = card.Snapshot()
	if snap.Total.TP != 1 || snap.Total.TN != 1 {
		t.Fatalf("confusion %+v, want tp=1 tn=1", snap.Total)
	}
	for _, o := range ev.Evaluate().Objectives {
		if o.Good != 1 || o.Bad != 0 {
			t.Errorf("objective %s counts %d/%d, want 1/0", o.Name, o.Good, o.Bad)
		}
	}

	ref, err := NewQualityReference("facade", []float64{0.1, 0.2, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/ref.json"
	if err := WriteQualityReference(path, ref); err != nil {
		t.Fatal(err)
	}
	back, err := LoadQualityReference(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != ref.Name || back.Samples != ref.Samples {
		t.Fatalf("reference round-trip lost identity: %+v vs %+v", back, ref)
	}
}
