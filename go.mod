module github.com/kfrida1/csdinf

go 1.24
