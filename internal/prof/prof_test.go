package prof

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/kfrida1/csdinf/internal/eventlog"
	"github.com/kfrida1/csdinf/internal/telemetry"
)

// newManual builds a profiler with no background goroutine and no global
// profile-rate changes, suitable for deterministic unit tests.
func newManual(t *testing.T, cfg Config) *Profiler {
	t.Helper()
	if cfg.SampleEvery == 0 {
		cfg.SampleEvery = -1
	}
	if cfg.MutexFraction == 0 {
		cfg.MutexFraction = -1
	}
	if cfg.BlockRateNS == 0 {
		cfg.BlockRateNS = -1
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func TestNilProfilerIsInert(t *testing.T) {
	var p *Profiler
	if s := p.Sample(); s.Goroutines != 0 {
		t.Fatalf("nil Sample = %+v", s)
	}
	if b := p.NewBreakdown(7); b != nil {
		t.Fatalf("nil NewBreakdown = %v", b)
	}
	p.Record(nil)
	if path, err := p.WriteFlight(t.TempDir(), "test", 0); err != nil || path != "" {
		t.Fatalf("nil WriteFlight = %q, %v", path, err)
	}
	var b *Breakdown
	b.Add(StageQueue, time.Second)
	b.Begin(StageCompute).End()
	if b.Total() != 0 || b.Wall(StageQueue) != 0 {
		t.Fatal("nil breakdown recorded something")
	}
	// Nil handler still serves a well-formed disabled document.
	rr := httptest.NewRecorder()
	p.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/prof.json", nil))
	var snap Snapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatalf("nil handler JSON: %v", err)
	}
	if snap.Enabled {
		t.Fatal("nil profiler reports enabled")
	}
}

func TestSampleDeltasAndGauges(t *testing.T) {
	reg := telemetry.NewRegistry()
	p := newManual(t, Config{Telemetry: reg})
	p.Sample() // establish the baseline

	// Allocate measurably and force a GC so the second sample carries
	// allocation deltas and at least one pause.
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 16<<10))
	}
	runtime.GC()
	s := p.Sample()
	_ = sink

	if s.Goroutines <= 0 {
		t.Fatalf("goroutines = %d", s.Goroutines)
	}
	if s.HeapAllocBytes == 0 || s.HeapObjects == 0 {
		t.Fatalf("heap sample empty: %+v", s)
	}
	if s.Mallocs == 0 || s.AllocBytes == 0 {
		t.Fatalf("allocation deltas empty: mallocs=%d bytes=%d", s.Mallocs, s.AllocBytes)
	}
	if s.GCCycles == 0 || len(s.GCPausesNS) == 0 {
		t.Fatalf("GC not observed: cycles=%d pauses=%d", s.GCCycles, len(s.GCPausesNS))
	}
	if s.CostNS <= 0 {
		t.Fatalf("sample cost = %d", s.CostNS)
	}

	// The prof_* series mirror the sample.
	found := map[string]bool{}
	for _, m := range reg.Snapshot() {
		found[m.Name] = true
	}
	for _, name := range []string{
		"prof_goroutines", "prof_heap_alloc_bytes", "prof_heap_objects",
		"prof_alloc_bytes_total", "prof_mallocs_total", "prof_gc_cycles_total",
		"prof_gc_pause_seconds", "prof_sample_cost_seconds",
	} {
		if !found[name] {
			t.Errorf("series %s missing from registry snapshot", name)
		}
	}
}

func TestBreakdownStagesAndContext(t *testing.T) {
	p := newManual(t, Config{})
	b := p.NewBreakdown(42)
	if b == nil || b.Job != 42 {
		t.Fatalf("breakdown = %+v", b)
	}
	ctx := WithBreakdown(context.Background(), b)
	if BreakdownFrom(ctx) != b {
		t.Fatal("context round-trip lost the breakdown")
	}
	if BreakdownFrom(context.Background()) != nil {
		t.Fatal("empty context yielded a breakdown")
	}

	b.Add(StageQueue, 5*time.Microsecond)
	b.Add(StageQueue, 5*time.Microsecond) // accumulates
	st := b.Begin(StageCompute)
	time.Sleep(time.Millisecond)
	st.End()
	if got := b.Wall(StageQueue); got != 10*time.Microsecond {
		t.Fatalf("queue wall = %v", got)
	}
	if b.Wall(StageCompute) < time.Millisecond {
		t.Fatalf("compute wall = %v", b.Wall(StageCompute))
	}
	if b.Total() != b.Wall(StageQueue)+b.Wall(StageCompute) {
		t.Fatalf("total %v != sum", b.Total())
	}

	p.Record(b)
	snap := p.Snapshot()
	if snap.RequestsTotal != 1 {
		t.Fatalf("requests_total = %d", snap.RequestsTotal)
	}
	stages := map[string]StageSummary{}
	for _, s := range snap.Stages {
		stages[s.Stage] = s
	}
	if stages["queue"].TotalNS != int64(10*time.Microsecond) {
		t.Fatalf("queue summary = %+v", stages["queue"])
	}
	if stages["compute"].Count != 1 {
		t.Fatalf("compute summary = %+v", stages["compute"])
	}
	if len(snap.Requests) != 1 || snap.Requests[0].Job != 42 {
		t.Fatalf("flight requests = %+v", snap.Requests)
	}
}

func TestCountAllocsAttributesStageAllocations(t *testing.T) {
	p := newManual(t, Config{CountAllocs: true})
	b := p.NewBreakdown(0)
	st := b.Begin(StageEncode)
	sink := make([]byte, 1<<20)
	st.End()
	_ = sink
	if b.Allocs(StageEncode) == 0 {
		t.Fatal("alloc counting recorded nothing for a 1MiB allocation")
	}
}

func TestFlightRingBoundedAndOrdered(t *testing.T) {
	now := time.Unix(1000, 0)
	p := newManual(t, Config{Ring: 4, BreakdownRing: 3,
		Clock: func() time.Time { now = now.Add(time.Second); return now }})
	for i := 0; i < 6; i++ {
		p.Sample()
	}
	for i := 0; i < 5; i++ {
		b := p.NewBreakdown(int64(100 + i))
		b.Add(StageQueue, time.Microsecond)
		p.Record(b)
	}
	samples, breakdowns := p.flight.snapshot()
	if len(samples) != 4 {
		t.Fatalf("samples retained = %d, want 4", len(samples))
	}
	for i := 1; i < len(samples); i++ {
		if !samples[i].Time.After(samples[i-1].Time) {
			t.Fatalf("samples out of order: %v", samples)
		}
	}
	if len(breakdowns) != 3 {
		t.Fatalf("breakdowns retained = %d, want 3", len(breakdowns))
	}
	if breakdowns[0].Job != 102 || breakdowns[2].Job != 104 {
		t.Fatalf("breakdown eviction wrong: %+v", breakdowns)
	}
}

func TestWriteFlightDumpArtifactAndEvent(t *testing.T) {
	events := eventlog.New(eventlog.Config{})
	defer events.Close()
	p := newManual(t, Config{Events: events})
	b := p.NewBreakdown(9)
	b.Add(StageCompute, time.Millisecond)
	p.Record(b)

	dir := t.TempDir()
	path, err := p.WriteFlight(dir, "incident-open", 17)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "flight-001.json" {
		t.Fatalf("dump path = %s", path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var d FlightDump
	if err := json.Unmarshal(data, &d); err != nil {
		t.Fatal(err)
	}
	if d.Reason != "incident-open" || d.IncidentID != 17 {
		t.Fatalf("dump header = %+v", d)
	}
	if len(d.Samples) == 0 {
		t.Fatal("dump carries no runtime samples")
	}
	if len(d.Requests) != 1 || d.Requests[0].Job != 9 {
		t.Fatalf("dump requests = %+v", d.Requests)
	}

	var dumpEv *eventlog.Event
	for _, ev := range events.Recent() {
		if ev.Name == "prof.flight.dump" {
			e := ev
			dumpEv = &e
		}
	}
	if dumpEv == nil {
		t.Fatal("no prof.flight.dump event emitted")
	}
	if dumpEv.Component != "prof" || dumpEv.Level != eventlog.LevelWarn {
		t.Fatalf("dump event = %+v", dumpEv)
	}

	// A second dump gets the next sequence number.
	path2, err := p.WriteFlight(dir, "slo-page", 18)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path2) != "flight-002.json" {
		t.Fatalf("second dump path = %s", path2)
	}
}

func TestHandlerServesSnapshot(t *testing.T) {
	p := newManual(t, Config{})
	b := p.NewBreakdown(0)
	b.Add(StageObserve, time.Microsecond)
	p.Record(b)
	rr := httptest.NewRecorder()
	p.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/prof.json", nil))
	if ct := rr.Header().Get("Content-Type"); !strings.Contains(ct, "json") {
		t.Fatalf("content type = %s", ct)
	}
	var snap Snapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if !snap.Enabled || snap.RequestsTotal != 1 || snap.Last.Goroutines == 0 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestWriteSnapshotArtifact(t *testing.T) {
	p := newManual(t, Config{})
	dir := t.TempDir()
	path, err := p.WriteSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "prof.json" {
		t.Fatalf("snapshot path = %s", path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if !snap.Enabled {
		t.Fatal("snapshot artifact reports disabled")
	}
}

func TestBackgroundSamplerTicks(t *testing.T) {
	p, err := New(Config{SampleEvery: 2 * time.Millisecond, MutexFraction: -1, BlockRateNS: -1})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if p.Snapshot().SamplesTotal >= 3 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	got := p.Snapshot().SamplesTotal
	p.Close()
	if got < 3 {
		t.Fatalf("background sampler took %d samples, want >= 3", got)
	}
}

func TestStageStringCoversAllStages(t *testing.T) {
	seen := map[string]bool{}
	for s := Stage(0); s < numStages; s++ {
		name := s.String()
		if name == "unknown" || seen[name] {
			t.Fatalf("stage %d name %q invalid or duplicate", s, name)
		}
		seen[name] = true
	}
	if Stage(200).String() != "unknown" {
		t.Fatal("out-of-range stage should be unknown")
	}
}
