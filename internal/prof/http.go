package prof

import (
	"encoding/json"
	"net/http"
)

// StageSummary aggregates one stage across every recorded breakdown.
type StageSummary struct {
	Stage   string  `json:"stage"`
	Count   int64   `json:"count"`
	TotalNS int64   `json:"total_ns"`
	MeanNS  float64 `json:"mean_ns"`
}

// Snapshot is the /prof.json document: profiler configuration, a fresh
// runtime sample, per-stage cost aggregates, and the flight-recorder rings.
type Snapshot struct {
	Enabled            bool              `json:"enabled"`
	SampleEverySeconds float64           `json:"sample_every_seconds,omitempty"`
	MutexFraction      int               `json:"mutex_fraction,omitempty"`
	BlockRateNS        int               `json:"block_rate_ns,omitempty"`
	SamplesTotal       int64             `json:"samples_total"`
	RequestsTotal      int64             `json:"requests_total"`
	FlightDumps        int64             `json:"flight_dumps"`
	Last               Sample            `json:"last"`
	Stages             []StageSummary    `json:"stages,omitempty"`
	Samples            []Sample          `json:"samples"`
	Requests           []BreakdownRecord `json:"requests"`
}

// Snapshot takes a fresh runtime sample and returns the full profiler
// state. Nil-safe: a nil profiler reports Enabled false.
func (p *Profiler) Snapshot() Snapshot {
	if p == nil {
		return Snapshot{}
	}
	last := p.Sample()
	samples, breakdowns := p.flight.snapshot()
	p.mu.Lock()
	snap := Snapshot{
		Enabled:            true,
		SampleEverySeconds: p.cfg.SampleEvery.Seconds(),
		MutexFraction:      p.cfg.MutexFraction,
		BlockRateNS:        p.cfg.BlockRateNS,
		SamplesTotal:       p.samples,
		RequestsTotal:      p.requests,
		FlightDumps:        p.dumps,
		Last:               last,
		Samples:            samples,
		Requests:           breakdowns,
	}
	for s := Stage(0); s < numStages; s++ {
		if p.stageCount[s] == 0 {
			continue
		}
		snap.Stages = append(snap.Stages, StageSummary{
			Stage:   s.String(),
			Count:   p.stageCount[s],
			TotalNS: p.stageWall[s],
			MeanNS:  float64(p.stageWall[s]) / float64(p.stageCount[s]),
		})
	}
	p.mu.Unlock()
	return snap
}

// Handler serves the /prof.json endpoint. Valid on a nil profiler (serves
// an Enabled-false document), so wiring code needs no branches.
func (p *Profiler) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(p.Snapshot())
	})
}
