// Package prof is the continuous profiler: the fifth observability layer,
// watching the watchers. telemetry/trace/eventlog/slo answer "what is the
// service doing"; prof answers "what is the *process* doing while it does
// it" — where the host-side nanoseconds and allocations of each request go,
// how the Go runtime (goroutines, heap, GC, lock contention) behaves under
// load, and how much the observability stack itself costs.
//
// Three instruments, all zero-dependency and cheap enough to run always-on:
//
//   - A runtime sampler: periodic goroutine counts, heap/GC deltas from
//     runtime.MemStats, a GC pause histogram, and mutex/block contention
//     profiles (runtime.SetMutexProfileFraction / SetBlockProfileRate) with
//     top-N contended-site extraction — exported as prof_* telemetry series
//     and a /prof.json endpoint.
//   - Hot-path cost attribution: a per-request Breakdown of wall-clock time
//     (and, in serialized audit runs, allocations) across the pipeline
//     stages — queue, encode, transfer, compute, verdict, observe — carried
//     on the request context exactly like telemetry.Span, stamped by
//     serve/core/detect, and aggregated into prof_stage_seconds histograms.
//     The "observe" stage prices the telemetry/trace/eventlog record calls
//     themselves, so the overhead of observability is itself observable.
//   - A flight recorder: a bounded in-memory ring of recent runtime samples
//     and request breakdowns, dumped to a JSON artifact (plus a
//     prof.flight.dump event) when an SLO page fires or an incident opens,
//     so every burn-rate page ships with the runtime state that preceded it.
//
// Like the rest of the stack, a nil *Profiler (and a nil *Breakdown) is
// valid everywhere and records nothing, so instrumented code needs no
// "is profiling enabled" branches.
package prof

import (
	"context"
	"runtime"
	"sync"
	"time"

	"github.com/kfrida1/csdinf/internal/eventlog"
	"github.com/kfrida1/csdinf/internal/telemetry"
)

// Config controls the profiler.
type Config struct {
	// SampleEvery is the background runtime-sampler period; 0 defaults to
	// 250ms. Negative disables the background goroutine entirely — samples
	// are then taken only by explicit Sample calls (tests, audits) and by
	// /prof.json scrapes and flight dumps.
	SampleEvery time.Duration
	// Ring bounds the flight recorder's retained runtime samples; 0
	// defaults to 240 (one minute at the default period).
	Ring int
	// BreakdownRing bounds the flight recorder's retained per-request stage
	// breakdowns; 0 defaults to 512.
	BreakdownRing int
	// TopN bounds the contended-site lists extracted from the mutex and
	// block profiles; 0 defaults to 8.
	TopN int
	// MutexFraction is passed to runtime.SetMutexProfileFraction: 1/n of
	// contention events are sampled. 0 defaults to 100; negative leaves the
	// process-global runtime setting untouched (for callers that own it).
	MutexFraction int
	// BlockRateNS is passed to runtime.SetBlockProfileRate: one blocking
	// event is sampled per this many nanoseconds blocked. 0 defaults to
	// 100µs; negative leaves the runtime setting untouched.
	BlockRateNS int
	// CountAllocs adds per-stage allocation counts to request breakdowns.
	// The counter is process-global, so the numbers are only meaningful
	// when requests run serialized — the observability self-audit does;
	// a loaded fleet does not. Off by default.
	CountAllocs bool
	// Telemetry, when non-nil, receives the prof_* series: runtime gauges
	// (prof_goroutines, prof_heap_alloc_bytes, prof_heap_objects), GC and
	// allocation counters (prof_gc_cycles_total, prof_alloc_bytes_total,
	// prof_mallocs_total), the prof_gc_pause_seconds histogram, per-stage
	// prof_stage_seconds{stage=...} histograms, and the profiler's own cost
	// (prof_sample_cost_seconds).
	Telemetry *telemetry.Registry
	// Events, when non-nil, receives the profiler's structured events:
	// prof.start (info, at construction), prof.sample (debug, per sampler
	// tick), and prof.flight.dump (warn, per flight-recorder dump).
	Events *eventlog.Logger
	// FlightExtra, when non-nil, is invoked at every flight dump and its
	// result embedded in the dump's "extra" field — subsystem state worth
	// shipping with a page (csdload wires the detection-quality
	// scorecard's Snapshot here, so a recall-burn page carries the
	// confusion matrix that burned it). The callback must be safe to call
	// from any goroutine.
	FlightExtra func() any
	// Clock overrides time.Now for sample timestamps in tests. Durations
	// (stage costs, sampler cost) always use the monotonic host clock.
	Clock func() time.Time
}

func (c *Config) defaults() {
	if c.SampleEvery == 0 {
		c.SampleEvery = 250 * time.Millisecond
	}
	if c.Ring == 0 {
		c.Ring = 240
	}
	if c.BreakdownRing == 0 {
		c.BreakdownRing = 512
	}
	if c.TopN == 0 {
		c.TopN = 8
	}
	if c.MutexFraction == 0 {
		c.MutexFraction = 100
	}
	if c.BlockRateNS == 0 {
		c.BlockRateNS = 100_000
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
}

// Sample is one runtime-sampler observation: instantaneous runtime state
// plus the deltas accumulated since the previous sample.
type Sample struct {
	// Time stamps the sample.
	Time time.Time `json:"time"`
	// Goroutines is the live goroutine count.
	Goroutines int `json:"goroutines"`
	// HeapAllocBytes and HeapObjects are the live heap at sample time.
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	HeapObjects    uint64 `json:"heap_objects"`
	// AllocBytes and Mallocs are cumulative-allocation deltas since the
	// previous sample (zero on the first).
	AllocBytes uint64 `json:"alloc_bytes_delta"`
	Mallocs    uint64 `json:"mallocs_delta"`
	// GCCycles is the completed-GC delta since the previous sample;
	// GCPausesNS are the individual stop-the-world pauses of those cycles.
	GCCycles   uint32  `json:"gc_cycles_delta"`
	GCPausesNS []int64 `json:"gc_pauses_ns,omitempty"`
	// TopMutex and TopBlock are the most contended sites from the
	// cumulative runtime mutex/block profiles, ranked by cycles (ties
	// broken by site label, so the ordering is deterministic).
	TopMutex []SiteCount `json:"top_mutex,omitempty"`
	TopBlock []SiteCount `json:"top_block,omitempty"`
	// CostNS is what taking this sample cost the host — the profiler
	// auditing itself.
	CostNS int64 `json:"cost_ns"`
}

// Profiler is the continuous profiler. All methods are safe for concurrent
// use and valid on a nil receiver (recording nothing).
type Profiler struct {
	cfg Config

	// Sampler state: the previous MemStats for delta computation.
	mu        sync.Mutex
	prev      runtime.MemStats
	hasPrev   bool
	prevMutex int // SetMutexProfileFraction value to restore at Close

	flight *flight

	// Per-stage aggregation for Snapshot (telemetry histograms hold the
	// full distributions; these scalars feed /prof.json without a registry).
	stageCount [numStages]int64
	stageWall  [numStages]int64
	requests   int64
	samples    int64
	dumps      int64

	goroutinesG *telemetry.Gauge
	heapG       *telemetry.Gauge
	heapObjG    *telemetry.Gauge
	allocC      *telemetry.Counter
	mallocsC    *telemetry.Counter
	gcC         *telemetry.Counter
	pauseH      *telemetry.Histogram
	costH       *telemetry.Histogram
	stageH      [numStages]*telemetry.Histogram
	requestH    *telemetry.Histogram
	requestsC   *telemetry.Counter
	dumpsC      *telemetry.Counter

	quit chan struct{}
	wg   sync.WaitGroup
}

// New builds a profiler, enables the runtime contention profiles (per
// Config.MutexFraction / BlockRateNS), and — unless SampleEvery is negative
// — starts the background sampler goroutine. Close stops the goroutine and
// restores the previous mutex-profile fraction.
func New(cfg Config) (*Profiler, error) {
	cfg.defaults()
	p := &Profiler{
		cfg:    cfg,
		flight: newFlight(cfg.Ring, cfg.BreakdownRing),
		quit:   make(chan struct{}),
	}
	reg := cfg.Telemetry
	p.goroutinesG = reg.Gauge("prof_goroutines", "Live goroutines at the last runtime sample.")
	p.heapG = reg.Gauge("prof_heap_alloc_bytes", "Bytes of allocated heap objects at the last runtime sample.")
	p.heapObjG = reg.Gauge("prof_heap_objects", "Live heap objects at the last runtime sample.")
	p.allocC = reg.Counter("prof_alloc_bytes_total", "Cumulative bytes allocated, accumulated across runtime samples.")
	p.mallocsC = reg.Counter("prof_mallocs_total", "Cumulative heap allocations, accumulated across runtime samples.")
	p.gcC = reg.Counter("prof_gc_cycles_total", "Completed garbage-collection cycles, accumulated across runtime samples.")
	p.pauseH = reg.Histogram("prof_gc_pause_seconds",
		"Individual GC stop-the-world pauses observed by the runtime sampler.", telemetry.Buckets{})
	p.costH = reg.Histogram("prof_sample_cost_seconds",
		"Host cost of taking one runtime sample — the profiler auditing itself.", telemetry.Buckets{})
	for s := Stage(0); s < numStages; s++ {
		p.stageH[s] = reg.Histogram("prof_stage_seconds",
			"Host wall-clock cost per request, attributed to pipeline stages.",
			telemetry.Buckets{}, telemetry.L("stage", s.String()))
	}
	p.requestH = reg.Histogram("prof_request_wall_seconds",
		"Total attributed host wall-clock cost per request.", telemetry.Buckets{})
	p.requestsC = reg.Counter("prof_requests_total", "Request breakdowns recorded.")
	p.dumpsC = reg.Counter("prof_flight_dumps_total", "Flight-recorder dumps written.")

	if cfg.MutexFraction > 0 {
		p.prevMutex = runtime.SetMutexProfileFraction(cfg.MutexFraction)
	} else {
		p.prevMutex = runtime.SetMutexProfileFraction(-1) // read without changing
	}
	if cfg.BlockRateNS > 0 {
		runtime.SetBlockProfileRate(cfg.BlockRateNS)
	}
	cfg.Events.Info(context.Background(), "prof", "prof.start",
		eventlog.F("sample_every_ns", cfg.SampleEvery),
		eventlog.F("ring", cfg.Ring),
		eventlog.F("mutex_fraction", cfg.MutexFraction),
		eventlog.F("block_rate_ns", cfg.BlockRateNS))
	if cfg.SampleEvery > 0 {
		p.wg.Add(1)
		go p.loop()
	}
	return p, nil
}

// loop is the background sampler.
func (p *Profiler) loop() {
	defer p.wg.Done()
	t := time.NewTicker(p.cfg.SampleEvery)
	defer t.Stop()
	for {
		select {
		case <-p.quit:
			return
		case <-t.C:
			p.Sample()
		}
	}
}

// Sample takes one runtime sample immediately: reads MemStats and the
// contention profiles, updates the prof_* series, appends to the flight
// recorder, and returns the sample. Safe to call concurrently with the
// background sampler; a nil profiler returns the zero Sample.
func (p *Profiler) Sample() Sample {
	if p == nil {
		return Sample{}
	}
	start := time.Now()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)

	p.mu.Lock()
	s := Sample{
		Time:           p.cfg.Clock(),
		Goroutines:     runtime.NumGoroutine(),
		HeapAllocBytes: ms.HeapAlloc,
		HeapObjects:    ms.HeapObjects,
	}
	if p.hasPrev {
		s.AllocBytes = ms.TotalAlloc - p.prev.TotalAlloc
		s.Mallocs = ms.Mallocs - p.prev.Mallocs
		s.GCCycles = ms.NumGC - p.prev.NumGC
		// MemStats keeps the last 256 pauses in a ring indexed by cycle
		// number; extract only the cycles this sample covers.
		from := p.prev.NumGC
		if ms.NumGC > from+256 {
			from = ms.NumGC - 256
		}
		for i := from; i < ms.NumGC; i++ {
			s.GCPausesNS = append(s.GCPausesNS, int64(ms.PauseNs[(i+255)%256]))
		}
	}
	p.prev = ms
	p.hasPrev = true
	s.TopMutex = topSites(runtime.MutexProfile, p.cfg.TopN)
	s.TopBlock = topSites(runtime.BlockProfile, p.cfg.TopN)
	s.CostNS = int64(time.Since(start))
	p.samples++
	p.mu.Unlock()
	p.flight.addSample(s)

	p.goroutinesG.Set(int64(s.Goroutines))
	p.heapG.Set(int64(s.HeapAllocBytes))
	p.heapObjG.Set(int64(s.HeapObjects))
	p.allocC.Add(int64(s.AllocBytes))
	p.mallocsC.Add(int64(s.Mallocs))
	p.gcC.Add(int64(s.GCCycles))
	for _, pause := range s.GCPausesNS {
		p.pauseH.Observe(pause)
	}
	p.costH.Observe(s.CostNS)
	if p.cfg.Events.Enabled(eventlog.LevelDebug) {
		p.cfg.Events.Debug(context.Background(), "prof", "prof.sample",
			eventlog.F("goroutines", s.Goroutines),
			eventlog.F("heap_alloc_bytes", s.HeapAllocBytes),
			eventlog.F("gc_cycles_delta", s.GCCycles),
			eventlog.F("cost_ns", s.CostNS))
	}
	return s
}

// Record aggregates a completed request breakdown into the per-stage
// histograms and the flight recorder. The serving layer calls it once per
// request it created the breakdown for; callers that attached their own
// breakdown to the context record it themselves.
func (p *Profiler) Record(b *Breakdown) {
	if p == nil || b == nil {
		return
	}
	var total int64
	rec := BreakdownRecord{Time: b.Start, Job: b.Job}
	for s := Stage(0); s < numStages; s++ {
		w := b.wall[s]
		if w == 0 && b.allocs[s] == 0 {
			continue
		}
		total += w
		p.stageH[s].Observe(w)
		rec.set(s, w, b.allocs[s])
	}
	rec.TotalNS = total
	p.requestH.Observe(total)
	p.requestsC.Inc()
	p.mu.Lock()
	for s := Stage(0); s < numStages; s++ {
		if b.wall[s] != 0 {
			p.stageCount[s]++
			p.stageWall[s] += b.wall[s]
		}
	}
	p.requests++
	p.mu.Unlock()
	p.flight.addBreakdown(rec)
}

// Close stops the background sampler and restores the mutex-profile
// fraction that was in effect before New (the block-profile rate is set
// back to 0, the runtime default). Close is idempotent-safe only for a
// single call; the profiler is done after it.
func (p *Profiler) Close() error {
	if p == nil {
		return nil
	}
	close(p.quit)
	p.wg.Wait()
	if p.cfg.MutexFraction > 0 {
		runtime.SetMutexProfileFraction(p.prevMutex)
	}
	if p.cfg.BlockRateNS > 0 {
		runtime.SetBlockProfileRate(0)
	}
	return nil
}
