package prof

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/kfrida1/csdinf/internal/eventlog"
)

// BreakdownRecord is the flight recorder's JSON-friendly form of one
// request's stage breakdown.
type BreakdownRecord struct {
	// Time stamps request admission.
	Time time.Time `json:"time"`
	// Job is the trace correlation ID (0 when tracing is off).
	Job int64 `json:"job,omitempty"`
	// TotalNS sums the attributed stage costs.
	TotalNS int64 `json:"total_ns"`

	QueueNS    int64 `json:"queue_ns,omitempty"`
	EncodeNS   int64 `json:"encode_ns,omitempty"`
	TransferNS int64 `json:"transfer_ns,omitempty"`
	ComputeNS  int64 `json:"compute_ns,omitempty"`
	VerdictNS  int64 `json:"verdict_ns,omitempty"`
	ObserveNS  int64 `json:"observe_ns,omitempty"`

	QueueAllocs    int64 `json:"queue_allocs,omitempty"`
	EncodeAllocs   int64 `json:"encode_allocs,omitempty"`
	TransferAllocs int64 `json:"transfer_allocs,omitempty"`
	ComputeAllocs  int64 `json:"compute_allocs,omitempty"`
	VerdictAllocs  int64 `json:"verdict_allocs,omitempty"`
	ObserveAllocs  int64 `json:"observe_allocs,omitempty"`
}

// set stores one stage's measurements in the matching fixed fields.
func (r *BreakdownRecord) set(s Stage, wallNS, allocs int64) {
	switch s {
	case StageQueue:
		r.QueueNS, r.QueueAllocs = wallNS, allocs
	case StageEncode:
		r.EncodeNS, r.EncodeAllocs = wallNS, allocs
	case StageTransfer:
		r.TransferNS, r.TransferAllocs = wallNS, allocs
	case StageCompute:
		r.ComputeNS, r.ComputeAllocs = wallNS, allocs
	case StageVerdict:
		r.VerdictNS, r.VerdictAllocs = wallNS, allocs
	case StageObserve:
		r.ObserveNS, r.ObserveAllocs = wallNS, allocs
	}
}

// flight is the bounded in-memory ring pair behind the flight recorder:
// recent runtime samples and recent request breakdowns.
type flight struct {
	mu         sync.Mutex
	samples    []Sample
	sNext      int
	breakdowns []BreakdownRecord
	bNext      int
}

func newFlight(samples, breakdowns int) *flight {
	return &flight{
		samples:    make([]Sample, 0, samples),
		breakdowns: make([]BreakdownRecord, 0, breakdowns),
	}
}

func (f *flight) addSample(s Sample) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.samples) < cap(f.samples) {
		f.samples = append(f.samples, s)
		return
	}
	f.samples[f.sNext] = s
	f.sNext = (f.sNext + 1) % len(f.samples)
}

func (f *flight) addBreakdown(r BreakdownRecord) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.breakdowns) < cap(f.breakdowns) {
		f.breakdowns = append(f.breakdowns, r)
		return
	}
	f.breakdowns[f.bNext] = r
	f.bNext = (f.bNext + 1) % len(f.breakdowns)
}

// snapshot returns both rings, oldest first.
func (f *flight) snapshot() ([]Sample, []BreakdownRecord) {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := make([]Sample, 0, len(f.samples))
	s = append(s, f.samples[f.sNext:]...)
	s = append(s, f.samples[:f.sNext]...)
	b := make([]BreakdownRecord, 0, len(f.breakdowns))
	b = append(b, f.breakdowns[f.bNext:]...)
	b = append(b, f.breakdowns[:f.bNext]...)
	return s, b
}

// FlightDump is one flight-recorder dump: the retained runtime samples and
// request breakdowns at the moment something went wrong, stamped with the
// reason and (when an incident triggered it) the incident ID — the
// correlation keys back to /incidents.json, /events.json, and the trace.
type FlightDump struct {
	Reason     string            `json:"reason"`
	IncidentID int64             `json:"incident_id,omitempty"`
	Time       time.Time         `json:"time"`
	Seq        int64             `json:"seq"`
	Samples    []Sample          `json:"samples"`
	Requests   []BreakdownRecord `json:"requests"`
	// Extra is the Config.FlightExtra payload captured at dump time
	// (e.g. the detection-quality scorecard snapshot); absent when no
	// hook is configured.
	Extra any `json:"extra,omitempty"`
}

// Flight snapshots the flight recorder. A fresh runtime sample is taken
// first, so the dump always carries the state at the trigger instant even
// when the background sampler period is long. Nil-safe.
func (p *Profiler) Flight(reason string, incidentID int64) FlightDump {
	if p == nil {
		return FlightDump{Reason: reason, IncidentID: incidentID}
	}
	p.Sample()
	samples, breakdowns := p.flight.snapshot()
	p.mu.Lock()
	p.dumps++
	seq := p.dumps
	p.mu.Unlock()
	d := FlightDump{
		Reason: reason, IncidentID: incidentID,
		Time: p.cfg.Clock(), Seq: seq,
		Samples: samples, Requests: breakdowns,
	}
	if p.cfg.FlightExtra != nil {
		d.Extra = p.cfg.FlightExtra()
	}
	return d
}

// WriteFlight dumps the flight recorder to dir/flight-<seq>.json and emits
// the prof.flight.dump event. Wire it to incident.Config.OnOpen and
// slo.Config.OnPage so every page ships with the runtime state that
// preceded it. A nil profiler writes nothing and returns "".
func (p *Profiler) WriteFlight(dir, reason string, incidentID int64) (string, error) {
	if p == nil {
		return "", nil
	}
	d := p.Flight(reason, incidentID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("flight-%03d.json", d.Seq))
	if err := writeJSON(path, d); err != nil {
		return "", err
	}
	p.dumpsC.Inc()
	p.cfg.Events.Warn(context.Background(), "prof", "prof.flight.dump",
		eventlog.F("path", path),
		eventlog.F("reason", reason),
		eventlog.F("incident_id", incidentID),
		eventlog.F("samples", len(d.Samples)),
		eventlog.F("requests", len(d.Requests)))
	return path, nil
}

// WriteSnapshot writes the profiler snapshot (the /prof.json document) to
// dir/prof.json — the end-of-run artifact uploaded by `make prof-smoke`.
// A nil profiler writes nothing and returns "".
func (p *Profiler) WriteSnapshot(dir string) (string, error) {
	if p == nil {
		return "", nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, "prof.json")
	if err := writeJSON(path, p.Snapshot()); err != nil {
		return "", err
	}
	return path, nil
}

func writeJSON(path string, doc any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return fmt.Errorf("write %s: %w", path, err)
	}
	return f.Close()
}
