package prof

import (
	"runtime"
	"sort"
	"strings"
)

// SiteCount is one contended site of the runtime mutex or block profile:
// the innermost frame outside the runtime/sync machinery, with the
// cumulative sampled event count and waiting cycles attributed to it.
type SiteCount struct {
	// Site is the fully-qualified function that held (mutex profile) or
	// waited at (block profile) the contention point.
	Site string `json:"site"`
	// Count is the cumulative sampled contention events.
	Count int64 `json:"count"`
	// Cycles is the cumulative CPU cycles of waiting attributed to the
	// site (the runtime's unit; comparable within a process, not across).
	Cycles int64 `json:"cycles"`
}

// topSites extracts the n most contended sites from a runtime profile
// collector (runtime.MutexProfile or runtime.BlockProfile). Records are
// aggregated by site label and ranked by cycles descending, ties broken by
// site label ascending — the ordering is deterministic for a given profile
// state, so repeated snapshots of a quiesced process agree.
func topSites(collect func([]runtime.BlockProfileRecord) (int, bool), n int) []SiteCount {
	sz, _ := collect(nil)
	if sz == 0 {
		return nil
	}
	var recs []runtime.BlockProfileRecord
	for {
		recs = make([]runtime.BlockProfileRecord, sz+64)
		var ok bool
		sz, ok = collect(recs)
		if ok {
			recs = recs[:sz]
			break
		}
	}
	agg := make(map[string]*SiteCount, len(recs))
	for i := range recs {
		site := siteOf(recs[i].Stack())
		c := agg[site]
		if c == nil {
			c = &SiteCount{Site: site}
			agg[site] = c
		}
		c.Count += recs[i].Count
		c.Cycles += recs[i].Cycles
	}
	out := make([]SiteCount, 0, len(agg))
	for _, c := range agg {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cycles != out[j].Cycles {
			return out[i].Cycles > out[j].Cycles
		}
		return out[i].Site < out[j].Site
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// siteOf resolves a profile stack to its blame label: the innermost frame
// that is not runtime or sync machinery (a mutex-profile stack starts at
// sync.(*Mutex).Unlock; the caller of the unlock is the contended site).
func siteOf(stk []uintptr) string {
	if len(stk) == 0 {
		return "unknown"
	}
	frames := runtime.CallersFrames(stk)
	first := ""
	for {
		f, more := frames.Next()
		name := f.Function
		if name != "" && first == "" {
			first = name
		}
		if name != "" &&
			!strings.HasPrefix(name, "runtime.") &&
			!strings.HasPrefix(name, "runtime_") &&
			!strings.HasPrefix(name, "sync.") &&
			!strings.HasPrefix(name, "internal/sync.") {
			return name
		}
		if !more {
			break
		}
	}
	if first == "" {
		return "unknown"
	}
	return first
}
