package prof

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/kfrida1/csdinf/internal/eventlog"
	"github.com/kfrida1/csdinf/internal/telemetry"
	"github.com/kfrida1/csdinf/internal/trace"
)

// TestContentionStress hammers the observability stack — telemetry registry,
// tracer, and eventlog ring — from 64 goroutines with mutex profiling at
// fraction 1, then asserts the profiler (a) surfaces the contended sites with
// a deterministic ordering and (b) stays within a fixed cost budget while
// doing so. Run under -race this also exercises every profiler entry point
// concurrently with the workload.
func TestContentionStress(t *testing.T) {
	reg := telemetry.NewRegistry()
	tr := trace.New()
	events := eventlog.New(eventlog.Config{})
	defer events.Close()

	p, err := New(Config{
		SampleEvery:   -1, // sampled explicitly below
		MutexFraction: 1,  // sample every contention event
		BlockRateNS:   1,
		TopN:          8,
		Telemetry:     reg,
		Events:        events,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const callers = 64
	const iters = 500
	ctx := context.Background()
	hammer := func() {
		c := reg.Counter("stress_ops_total", "stress")
		h := reg.Histogram("stress_latency_seconds", "stress", telemetry.Buckets{})
		var wg sync.WaitGroup
		for g := 0; g < callers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					c.Inc()
					h.Observe(int64(i))
					tr.Emit(trace.Event{
						Track: trace.Track{Group: "stress", Name: "t0"},
						Name:  "op", Cat: trace.CatQueue,
						Start: time.Duration(i), Dur: 1})
					if i%16 == 0 {
						events.Info(ctx, "load", "load.tick", eventlog.F("i", i))
					}
					// Concurrent profiler reads must be race-free too.
					if g == 0 && i%100 == 0 {
						_ = p.Snapshot()
					}
				}
			}(g)
		}
		wg.Wait()
	}

	// The mutex profile is sampled, and a round can surface only
	// runtime-internal lock contention; retry a few rounds until a site is
	// attributed to this module before declaring the extraction broken.
	var s Sample
	moduleSite := func() bool {
		for _, sc := range s.TopMutex {
			if strings.Contains(sc.Site, "csdinf/internal") {
				return true
			}
		}
		return false
	}
	for round := 0; round < 10; round++ {
		hammer()
		s = p.Sample()
		if moduleSite() {
			break
		}
	}
	if len(s.TopMutex) == 0 {
		t.Fatal("no contended mutex sites after 64-caller hammer at fraction 1")
	}
	if len(s.TopMutex) > 8 {
		t.Fatalf("top-N not enforced: %d sites", len(s.TopMutex))
	}

	// Ordering is deterministic: cycles descending, ties by site ascending.
	for i := 1; i < len(s.TopMutex); i++ {
		a, b := s.TopMutex[i-1], s.TopMutex[i]
		if a.Cycles < b.Cycles || (a.Cycles == b.Cycles && a.Site >= b.Site) {
			t.Fatalf("site order violated at %d: %+v before %+v", i, a, b)
		}
	}
	// The blame labels must escape the sync machinery and land on this
	// module's code, not on sync.(*Mutex).Unlock. Sites still labeled
	// "runtime." are allowed: those are wholly-runtime-internal stacks
	// (e.g. the runtime._LostContendedRuntimeLock pseudo-node for
	// runtime-lock contention sampled without a stack) with no caller
	// frame to resolve to — a broken resolver would show up as "sync."
	// sites instead.
	inModule := false
	for _, sc := range s.TopMutex {
		if strings.HasPrefix(sc.Site, "sync.") {
			t.Fatalf("site %q not resolved past the lock machinery", sc.Site)
		}
		if strings.Contains(sc.Site, "csdinf/internal") {
			inModule = true
		}
	}
	if !inModule {
		t.Fatalf("no contended site attributed to this module: %+v", s.TopMutex)
	}

	// Cost budget: a full sample (MemStats + both contention profiles) must
	// stay cheap even right after the hammer. The bound is deliberately
	// loose — it guards against quadratic blowups, not scheduler jitter —
	// and still holds under -race.
	const sampleBudget = 500 * time.Millisecond
	if cost := time.Duration(s.CostNS); cost > sampleBudget {
		t.Fatalf("sample cost %v exceeds budget %v", cost, sampleBudget)
	}

	// Stage-timer overhead budget: Begin/End is two clock reads; amortized it
	// must stay well under a microsecond-scale bound per pair.
	b := p.NewBreakdown(0)
	const pairs = 10_000
	t0 := time.Now()
	for i := 0; i < pairs; i++ {
		b.Begin(StageObserve).End()
	}
	perPair := time.Since(t0) / pairs
	if perPair > 20*time.Microsecond {
		t.Fatalf("Begin/End costs %v per pair", perPair)
	}
}
