package prof

import (
	"context"
	"runtime/metrics"
	"time"
)

// Stage names one segment of a request's host-side pipeline, in request
// order. The stages cover where a request's wall-clock actually goes on the
// host: scheduler queueing, sequence encoding, the (simulated) DMA
// bookkeeping, the kernel-model compute, the detector's verdict logic, and
// the cost of recording telemetry/trace/eventlog — observability pricing
// itself.
type Stage uint8

const (
	// StageQueue is serve-layer residency: enqueue to worker dispatch.
	StageQueue Stage = iota
	// StageEncode is the host-side sequence serialization (core/csd).
	StageEncode
	// StageTransfer is the host cost of the staged transfer — buffer writes
	// and the simulated DMA bookkeeping, not the simulated device time.
	StageTransfer
	// StageCompute is the host cost of running the kernel pipeline model
	// (decode + classify).
	StageCompute
	// StageVerdict is the detector's threshold/mitigation logic.
	StageVerdict
	// StageObserve is the cost of observability itself: telemetry
	// observations, span records, trace emissions, and event-log calls made
	// on behalf of the request.
	StageObserve

	numStages
)

var stageNames = [numStages]string{
	"queue", "encode", "transfer", "compute", "verdict", "observe",
}

// String returns the stage's label ("queue", "encode", ...).
func (s Stage) String() string {
	if s < numStages {
		return stageNames[s]
	}
	return "unknown"
}

// Breakdown accumulates one request's per-stage host costs. Like
// telemetry.Span, it rides the request context and is written by one stage
// at a time as the request hands off down the stack (caller → scheduler
// worker → engine), so it needs no lock — it is NOT safe for truly
// concurrent writers. A nil *Breakdown is valid and records nothing.
type Breakdown struct {
	// Job is the trace correlation ID (0 when tracing is off) — the key
	// tying a flight-recorder breakdown to spans, events, and incidents.
	Job int64
	// Start stamps breakdown creation (request admission).
	Start time.Time

	wall        [numStages]int64
	allocs      [numStages]int64
	countAllocs bool
}

// NewBreakdown starts a breakdown for one request. A nil profiler returns
// nil, which every Breakdown method accepts.
func (p *Profiler) NewBreakdown(job int64) *Breakdown {
	if p == nil {
		return nil
	}
	return &Breakdown{Job: job, Start: p.cfg.Clock(), countAllocs: p.cfg.CountAllocs}
}

// Add attributes d to the stage, accumulating across calls.
func (b *Breakdown) Add(s Stage, d time.Duration) {
	if b == nil || s >= numStages {
		return
	}
	b.wall[s] += int64(d)
}

// Wall returns the accumulated wall time of a stage.
func (b *Breakdown) Wall(s Stage) time.Duration {
	if b == nil || s >= numStages {
		return 0
	}
	return time.Duration(b.wall[s])
}

// Allocs returns the accumulated allocation count of a stage (zero unless
// Config.CountAllocs was set).
func (b *Breakdown) Allocs(s Stage) int64 {
	if b == nil || s >= numStages {
		return 0
	}
	return b.allocs[s]
}

// Total sums all attributed stage wall time.
func (b *Breakdown) Total() time.Duration {
	if b == nil {
		return 0
	}
	var t int64
	for _, w := range b.wall {
		t += w
	}
	return time.Duration(t)
}

// StageTimer measures one stage interval. It is a value type: Begin/End
// pairs cost two clock reads and no allocation, cheap enough for the
// request hot path.
type StageTimer struct {
	b  *Breakdown
	s  Stage
	t0 time.Time
	a0 uint64
}

// Begin starts timing a stage. On a nil breakdown the returned timer is
// inert and End is free — instrumentation sites need no branches.
func (b *Breakdown) Begin(s Stage) StageTimer {
	if b == nil {
		return StageTimer{}
	}
	t := StageTimer{b: b, s: s, t0: time.Now()}
	if b.countAllocs {
		t.a0 = allocObjects()
	}
	return t
}

// End stops the timer and attributes the elapsed interval (and, when alloc
// counting is on, the allocation delta) to the stage.
func (t StageTimer) End() {
	if t.b == nil {
		return
	}
	t.b.wall[t.s] += int64(time.Since(t.t0))
	if t.b.countAllocs {
		t.b.allocs[t.s] += int64(allocObjects() - t.a0)
	}
}

// allocObjects reads the process-global cumulative heap-allocation count.
// Only meaningful between two points with no concurrent allocators — the
// serialized self-audit, not a loaded fleet.
func allocObjects() uint64 {
	s := []metrics.Sample{{Name: "/gc/heap/allocs:objects"}}
	metrics.Read(s)
	return s[0].Value.Uint64()
}

type bdCtxKey struct{}

// WithBreakdown returns a context carrying the breakdown, so lower layers
// (scheduler, engine) can stamp their stages without the Inferencer
// interface knowing about profiling.
func WithBreakdown(ctx context.Context, b *Breakdown) context.Context {
	return context.WithValue(ctx, bdCtxKey{}, b)
}

// BreakdownFrom returns the breakdown carried by ctx, or nil.
func BreakdownFrom(ctx context.Context) *Breakdown {
	b, _ := ctx.Value(bdCtxKey{}).(*Breakdown)
	return b
}
