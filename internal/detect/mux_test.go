package detect

import (
	"context"
	"errors"
	"testing"
)

func TestNewMuxValidation(t *testing.T) {
	p := &fakePredictor{window: 4, marker: 7}
	if _, err := NewMux(nil, MuxConfig{}); err == nil {
		t.Error("nil predictor: expected error")
	}
	if _, err := NewMux(p, MuxConfig{MaxProcesses: -1}); err == nil {
		t.Error("negative max processes: expected error")
	}
	if _, err := NewMux(p, MuxConfig{Detector: Config{Threshold: 2}}); err == nil {
		t.Error("bad detector config: expected error")
	}
}

func TestMuxIsolatesProcesses(t *testing.T) {
	p := &fakePredictor{window: 4, marker: 7}
	m, err := NewMux(p, MuxConfig{Detector: Config{Stride: 1, AlertsToBlock: 1}})
	if err != nil {
		t.Fatal(err)
	}
	// Interleave: pid 1 streams marker calls, pid 2 streams benign calls.
	// Without per-process windows, pid 2's calls would dilute pid 1's
	// window below detectability... here pid 1 must fire on its own.
	var blockedEv *ProcessEvent
	for i := 0; i < 8 && blockedEv == nil; i++ {
		if ev, err := m.Observe(context.Background(), 2, 1); err != nil {
			t.Fatal(err)
		} else if ev != nil && ev.Action == ActionBlock {
			t.Fatalf("benign process blocked: %+v", ev)
		}
		ev, err := m.Observe(context.Background(), 1, 7)
		if err != nil {
			t.Fatal(err)
		}
		if ev != nil && ev.Action == ActionBlock {
			blockedEv = ev
		}
	}
	if blockedEv == nil {
		t.Fatal("infected process never blocked")
	}
	if blockedEv.PID != 1 {
		t.Fatalf("blocked pid = %d, want 1", blockedEv.PID)
	}
	blocked, pid := m.Blocked()
	if !blocked || pid != 1 {
		t.Fatalf("Blocked() = %v, %d", blocked, pid)
	}
	// The mux latches globally (device-level quarantine).
	if _, err := m.Observe(context.Background(), 2, 1); !errors.Is(err, ErrBlocked) {
		t.Fatalf("post-block observe error = %v", err)
	}
}

func TestMuxEviction(t *testing.T) {
	p := &fakePredictor{window: 4, marker: 7}
	m, err := NewMux(p, MuxConfig{
		Detector:     Config{Stride: 1, Threshold: 0.99},
		MaxProcesses: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for pid := 1; pid <= 5; pid++ {
		if _, err := m.Observe(context.Background(), pid, 1); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.Processes(); got != 3 {
		t.Fatalf("tracked processes = %d, want 3 (evicted down)", got)
	}
	// The longest-idle (pid 1, 2) must be gone; recent pids remain.
	stats := m.ProcessStats()
	for _, pid := range []int{3, 4, 5} {
		if _, ok := stats[pid]; !ok {
			t.Fatalf("recent pid %d evicted", pid)
		}
	}
}

func TestMuxStats(t *testing.T) {
	p := &fakePredictor{window: 2, marker: 7}
	m, err := NewMux(p, MuxConfig{Detector: Config{Stride: 1, Threshold: 0.99}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := m.Observe(context.Background(), 10, 1); err != nil {
			t.Fatal(err)
		}
	}
	stats := m.ProcessStats()
	if s, ok := stats[10]; !ok || s.CallsObserved != 4 {
		t.Fatalf("stats[10] = %+v", stats[10])
	}
}

func TestMuxEvictionUnderChurn(t *testing.T) {
	p := &fakePredictor{window: 4, marker: 7}
	m, err := NewMux(p, MuxConfig{
		Detector:     Config{Stride: 1, Threshold: 0.99},
		MaxProcesses: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// A small hot set keeps streaming while a churn of one-shot PIDs
	// arrives. The hot set must survive every eviction round with its
	// accumulated state intact; the one-shot strangers are the idlest and
	// must be the ones evicted.
	hot := []int{100, 101, 102}
	const rounds = 20
	for r := 0; r < rounds; r++ {
		for _, pid := range hot {
			if _, err := m.Observe(ctx, pid, 1); err != nil {
				t.Fatal(err)
			}
		}
		// A fresh stranger each round forces an eviction once full.
		if _, err := m.Observe(ctx, 1000+r, 1); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.Processes(); got != 4 {
		t.Fatalf("tracked processes = %d, want 4 (bounded)", got)
	}
	stats := m.ProcessStats()
	for _, pid := range hot {
		s, ok := stats[pid]
		if !ok {
			t.Fatalf("hot pid %d evicted; stranger should have been idlest", pid)
		}
		if s.CallsObserved != rounds {
			t.Fatalf("hot pid %d calls = %d, want %d (state lost across churn)",
				pid, s.CallsObserved, rounds)
		}
	}
	// Only the newest stranger can still be resident.
	for r := 0; r < rounds-1; r++ {
		if _, ok := stats[1000+r]; ok {
			t.Fatalf("stale stranger pid %d survived churn", 1000+r)
		}
	}
	if _, ok := stats[1000+rounds-1]; !ok {
		t.Fatal("newest stranger evicted despite being most recent")
	}
}
