// Package detect implements the paper's ransomware use case (§IV): a
// streaming detector that watches the live API-call stream of the system
// housing the CSD, maintains a sliding window, classifies each fully-formed
// window on the in-storage engine, and triggers mitigation "directly within
// the CSD" — quarantining writes before encryption can proceed.
package detect

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/kfrida1/csdinf/internal/infer"
	"github.com/kfrida1/csdinf/internal/telemetry"
)

// Predictor classifies a fully-formed window. It is the stack-wide
// inference contract: a single CSD engine (core.Engine), a multi-device
// node (node.Node), the concurrent serving layer (serve.Server), and the
// hot-swappable maintenance engine (cti.HotSwapEngine) all satisfy it;
// tests may substitute fakes.
type Predictor = infer.Inferencer

// Action is the detector's response to a classified window.
type Action int

// Actions, in escalating order.
const (
	// ActionNone: window classified benign.
	ActionNone Action = iota + 1
	// ActionAlert: a window crossed the probability threshold.
	ActionAlert
	// ActionBlock: enough consecutive alerts accumulated to trigger
	// in-storage mitigation (write quarantine).
	ActionBlock
)

// String returns the action name.
func (a Action) String() string {
	switch a {
	case ActionNone:
		return "none"
	case ActionAlert:
		return "alert"
	case ActionBlock:
		return "block"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// Event describes one classified window.
type Event struct {
	// CallIndex is the index of the API call that completed the window.
	CallIndex int64
	// Probability is the classifier's ransomware probability.
	Probability float64
	// Action is the detector's response.
	Action Action
}

// Config controls the detector.
type Config struct {
	// Stride is how many new calls arrive between classifications once the
	// window is full; 0 defaults to 25 (the dataset extraction stride).
	Stride int
	// Threshold is the alert probability; 0 defaults to 0.5.
	Threshold float64
	// AlertsToBlock is how many consecutive alerting windows trigger
	// mitigation; 0 defaults to 2 (one confirmation re-check).
	AlertsToBlock int
	// OnBlock, when non-nil, is invoked exactly once when mitigation fires.
	OnBlock func(Event)
	// Telemetry, when non-nil, receives the detection counters:
	// detect_windows_total, detect_verdicts_total{verdict=...},
	// detect_alerts_total, detect_blocks_total. Detectors sharing a
	// registry (e.g. the per-process children of a Mux) share the series,
	// giving system-wide verdict rates; per-detector numbers stay in
	// Stats().
	Telemetry *telemetry.Registry
	// Spans, when non-nil, retains one pipeline span per classified window
	// (queue wait → transfer → compute → verdict).
	Spans *telemetry.SpanLog
}

func (c *Config) defaults() {
	if c.Stride == 0 {
		c.Stride = 25
	}
	if c.Threshold == 0 {
		c.Threshold = 0.5
	}
	if c.AlertsToBlock == 0 {
		c.AlertsToBlock = 2
	}
}

// Detector consumes an API-call stream and classifies sliding windows on
// the CSD engine. It is not safe for concurrent use — it models the single
// in-device stream of the paper's deployment.
type Detector struct {
	pred Predictor
	cfg  Config

	window    []int
	filled    int
	sinceEval int
	calls     int64

	consecutive int
	blocked     bool

	windowsEvaluated int64
	alerts           int64

	windowsC       *telemetry.Counter
	verdictRansomC *telemetry.Counter
	verdictBenignC *telemetry.Counter
	alertsC        *telemetry.Counter
	blocksC        *telemetry.Counter
}

// New builds a detector over the predictor.
func New(pred Predictor, cfg Config) (*Detector, error) {
	if pred == nil {
		return nil, errors.New("detect: nil predictor")
	}
	cfg.defaults()
	if cfg.Stride <= 0 {
		return nil, fmt.Errorf("detect: stride must be positive, got %d", cfg.Stride)
	}
	if cfg.Threshold <= 0 || cfg.Threshold >= 1 {
		return nil, fmt.Errorf("detect: threshold %v outside (0, 1)", cfg.Threshold)
	}
	if cfg.AlertsToBlock <= 0 {
		return nil, fmt.Errorf("detect: AlertsToBlock must be positive, got %d", cfg.AlertsToBlock)
	}
	w := pred.SeqLen()
	if w <= 0 {
		return nil, fmt.Errorf("detect: predictor window %d invalid", w)
	}
	reg := cfg.Telemetry
	return &Detector{
		pred: pred, cfg: cfg, window: make([]int, w),
		windowsC: reg.Counter("detect_windows_total", "Windows classified."),
		verdictRansomC: reg.Counter("detect_verdicts_total",
			"Classification verdicts by outcome.", telemetry.L("verdict", "ransomware")),
		verdictBenignC: reg.Counter("detect_verdicts_total",
			"Classification verdicts by outcome.", telemetry.L("verdict", "benign")),
		alertsC: reg.Counter("detect_alerts_total", "Windows crossing the alert threshold."),
		blocksC: reg.Counter("detect_blocks_total", "Mitigation activations (write quarantine)."),
	}, nil
}

// ErrBlocked is returned by Observe after mitigation has fired: the device
// has quarantined writes and the stream should be considered contained.
var ErrBlocked = errors.New("detect: mitigation active, stream blocked")

// Observe feeds one API call into the detector. When the call completes a
// classification window (every Stride calls once the window is full), the
// window is classified and an Event returned; otherwise the event is nil.
// ctx bounds the classification; a canceled ctx aborts it before the
// predictor is touched.
func (d *Detector) Observe(ctx context.Context, apiCallID int) (*Event, error) {
	if d.blocked {
		return nil, ErrBlocked
	}
	d.calls++
	if d.filled < len(d.window) {
		d.window[d.filled] = apiCallID
		d.filled++
		if d.filled < len(d.window) {
			return nil, nil
		}
		// First full window: classify immediately.
		return d.classify(ctx)
	}
	// Slide: drop the oldest call.
	copy(d.window, d.window[1:])
	d.window[len(d.window)-1] = apiCallID
	d.sinceEval++
	if d.sinceEval < d.cfg.Stride {
		return nil, nil
	}
	return d.classify(ctx)
}

func (d *Detector) classify(ctx context.Context) (*Event, error) {
	d.sinceEval = 0
	// Open a pipeline span unless the caller already carries one; the
	// layers below (scheduler queue wait, engine transfer/compute) record
	// their phases into whichever span rides the context.
	sp := telemetry.SpanFrom(ctx)
	ownSpan := false
	if sp == nil && d.cfg.Spans != nil {
		sp = &telemetry.Span{Name: "window"}
		ctx = telemetry.WithSpan(ctx, sp)
		ownSpan = true
	}
	res, _, err := d.pred.Predict(ctx, d.window)
	if err != nil {
		return nil, fmt.Errorf("detect: classify window at call %d: %w", d.calls, err)
	}
	verdictStart := time.Now()
	d.windowsEvaluated++
	d.windowsC.Inc()
	if res.Ransomware {
		d.verdictRansomC.Inc()
	} else {
		d.verdictBenignC.Inc()
	}
	ev := &Event{CallIndex: d.calls - 1, Probability: res.Probability, Action: ActionNone}
	if res.Probability >= d.cfg.Threshold {
		d.alerts++
		d.alertsC.Inc()
		d.consecutive++
		ev.Action = ActionAlert
		if d.consecutive >= d.cfg.AlertsToBlock {
			ev.Action = ActionBlock
			d.blocked = true
			d.blocksC.Inc()
			if d.cfg.OnBlock != nil {
				d.cfg.OnBlock(*ev)
			}
		}
	} else {
		d.consecutive = 0
	}
	if sp != nil {
		sp.Record(telemetry.PhaseVerdict, time.Since(verdictStart))
		if ownSpan {
			d.cfg.Spans.Add(*sp)
		}
	}
	return ev, nil
}

// Blocked reports whether mitigation has fired.
func (d *Detector) Blocked() bool { return d.blocked }

// Stats summarizes detector activity.
type Stats struct {
	CallsObserved    int64
	WindowsEvaluated int64
	Alerts           int64
	Blocked          bool
}

// Stats returns a snapshot of the detector's counters.
func (d *Detector) Stats() Stats {
	return Stats{
		CallsObserved:    d.calls,
		WindowsEvaluated: d.windowsEvaluated,
		Alerts:           d.alerts,
		Blocked:          d.blocked,
	}
}

// Reset clears all stream state (window, counters, mitigation latch).
func (d *Detector) Reset() {
	d.filled = 0
	d.sinceEval = 0
	d.calls = 0
	d.consecutive = 0
	d.blocked = false
	d.windowsEvaluated = 0
	d.alerts = 0
}
