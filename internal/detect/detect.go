// Package detect implements the paper's ransomware use case (§IV): a
// streaming detector that watches the live API-call stream of the system
// housing the CSD, maintains a sliding window, classifies each fully-formed
// window on the in-storage engine, and triggers mitigation "directly within
// the CSD" — quarantining writes before encryption can proceed.
package detect

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/kfrida1/csdinf/internal/eventlog"
	"github.com/kfrida1/csdinf/internal/infer"
	"github.com/kfrida1/csdinf/internal/prof"
	"github.com/kfrida1/csdinf/internal/quality"
	"github.com/kfrida1/csdinf/internal/telemetry"
	"github.com/kfrida1/csdinf/internal/trace"
)

// Predictor classifies a fully-formed window. It is the stack-wide
// inference contract: a single CSD engine (core.Engine), a multi-device
// node (node.Node), the concurrent serving layer (serve.Server), and the
// hot-swappable maintenance engine (cti.HotSwapEngine) all satisfy it;
// tests may substitute fakes.
type Predictor = infer.Inferencer

// Action is the detector's response to a classified window.
type Action int

// Actions, in escalating order.
const (
	// ActionNone: window classified benign.
	ActionNone Action = iota + 1
	// ActionAlert: a window crossed the probability threshold.
	ActionAlert
	// ActionBlock: enough consecutive alerts accumulated to trigger
	// in-storage mitigation (write quarantine).
	ActionBlock
)

// String returns the action name.
func (a Action) String() string {
	switch a {
	case ActionNone:
		return "none"
	case ActionAlert:
		return "alert"
	case ActionBlock:
		return "block"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// Event describes one classified window.
type Event struct {
	// CallIndex is the index of the API call that completed the window.
	CallIndex int64
	// Probability is the classifier's ransomware probability.
	Probability float64
	// Action is the detector's response.
	Action Action
}

// WindowSample is one classified window with its full pipeline attribution
// — the forensic feed consumed by the incident recorder
// (internal/incident) and by Config.OnWindow observers.
type WindowSample struct {
	// PID is the monitored process (0 for a bare Detector outside a Mux).
	PID int
	// Time is when the verdict was produced.
	Time time.Time
	// CallIndex is the index of the API call that completed the window.
	CallIndex int64
	// Probability is the classifier's ransomware probability.
	Probability float64
	// Action is the detector's response.
	Action Action
	// Job is the trace correlation ID the scheduler assigned the
	// classification request (0 when tracing is off); the same ID appears
	// on the request's telemetry.Span, its timeline events, and any
	// eventlog events it emitted.
	Job int64
	// Device is the serving device that executed the classification (the
	// scheduler's device index as a string); empty without a scheduler.
	Device string
	// QueueWait, Transfer, and Compute are the request's recorded pipeline
	// phases (zero when the corresponding layer is not instrumented).
	QueueWait time.Duration
	Transfer  time.Duration
	Compute   time.Duration
	// Truth is the ground-truth label that rode the request context
	// ("ransomware" or "benign"), empty when the traffic carried no label
	// (production streams have no ground truth; sandbox replays and load
	// generators stamp one via quality.WithLabel).
	Truth string
	// Family is the labeled generating family or benign archetype; empty
	// without a label.
	Family string
}

// Config controls the detector.
type Config struct {
	// Stride is how many new calls arrive between classifications once the
	// window is full; 0 defaults to 25 (the dataset extraction stride).
	Stride int
	// Threshold is the alert probability; 0 defaults to 0.5.
	Threshold float64
	// AlertsToBlock is how many consecutive alerting windows trigger
	// mitigation; 0 defaults to 2 (one confirmation re-check).
	AlertsToBlock int
	// OnBlock, when non-nil, is invoked exactly once when mitigation fires.
	OnBlock func(Event)
	// Telemetry, when non-nil, receives the detection counters:
	// detect_windows_total, detect_verdicts_total{verdict=...},
	// detect_alerts_total, detect_blocks_total. Detectors sharing a
	// registry (e.g. the per-process children of a Mux) share the series,
	// giving system-wide verdict rates; per-detector numbers stay in
	// Stats().
	Telemetry *telemetry.Registry
	// Spans, when non-nil, retains one pipeline span per classified window
	// (queue wait → transfer → compute → verdict).
	Spans *telemetry.SpanLog
	// OnWindow, when non-nil, receives every classified window with its
	// pipeline attribution — wire incident.Recorder.Window here to turn
	// flagged processes into forensic incident reports. Inside a Mux the
	// sample carries the process's PID.
	OnWindow func(WindowSample)
	// Events, when non-nil, receives the detector's structured events:
	// window verdicts (debug: benign, info: alert) and mitigation
	// (error: mitigation.block), each carrying the trace job ID and
	// process attribution.
	Events *eventlog.Logger
	// Prof, when non-nil, attributes each classified window's host
	// wall-clock to pipeline stages: the detector opens a prof.Breakdown
	// per classification (unless the caller already carries one), the
	// layers below stamp their stages, and the detector adds its verdict
	// and observation costs before recording the breakdown.
	Prof *prof.Profiler
	// Quality, when non-nil, receives every classified window's verdict
	// together with the ground-truth label riding the request context (if
	// any) — the detection-quality scorecard's feed.
	Quality *quality.Scorecard
}

func (c *Config) defaults() {
	if c.Stride == 0 {
		c.Stride = 25
	}
	if c.Threshold == 0 {
		c.Threshold = 0.5
	}
	if c.AlertsToBlock == 0 {
		c.AlertsToBlock = 2
	}
}

// Detector consumes an API-call stream and classifies sliding windows on
// the CSD engine. It is not safe for concurrent use — it models the single
// in-device stream of the paper's deployment.
type Detector struct {
	pred Predictor
	cfg  Config
	// pid attributes this detector's windows to a monitored process; set
	// by the Mux for its per-process children, 0 for a bare detector.
	pid int

	window    []int
	filled    int
	sinceEval int
	calls     int64

	consecutive int
	blocked     bool

	windowsEvaluated int64
	alerts           int64

	windowsC       *telemetry.Counter
	verdictRansomC *telemetry.Counter
	verdictBenignC *telemetry.Counter
	alertsC        *telemetry.Counter
	blocksC        *telemetry.Counter
}

// New builds a detector over the predictor.
func New(pred Predictor, cfg Config) (*Detector, error) {
	if pred == nil {
		return nil, errors.New("detect: nil predictor")
	}
	cfg.defaults()
	if cfg.Stride <= 0 {
		return nil, fmt.Errorf("detect: stride must be positive, got %d", cfg.Stride)
	}
	if cfg.Threshold <= 0 || cfg.Threshold >= 1 {
		return nil, fmt.Errorf("detect: threshold %v outside (0, 1)", cfg.Threshold)
	}
	if cfg.AlertsToBlock <= 0 {
		return nil, fmt.Errorf("detect: AlertsToBlock must be positive, got %d", cfg.AlertsToBlock)
	}
	w := pred.SeqLen()
	if w <= 0 {
		return nil, fmt.Errorf("detect: predictor window %d invalid", w)
	}
	reg := cfg.Telemetry
	return &Detector{
		pred: pred, cfg: cfg, window: make([]int, w),
		windowsC: reg.Counter("detect_windows_total", "Windows classified."),
		verdictRansomC: reg.Counter("detect_verdicts_total",
			"Classification verdicts by outcome.", telemetry.L("verdict", "ransomware")),
		verdictBenignC: reg.Counter("detect_verdicts_total",
			"Classification verdicts by outcome.", telemetry.L("verdict", "benign")),
		alertsC: reg.Counter("detect_alerts_total", "Windows crossing the alert threshold."),
		blocksC: reg.Counter("detect_blocks_total", "Mitigation activations (write quarantine)."),
	}, nil
}

// ErrBlocked is returned by Observe after mitigation has fired: the device
// has quarantined writes and the stream should be considered contained.
var ErrBlocked = errors.New("detect: mitigation active, stream blocked")

// Observe feeds one API call into the detector. When the call completes a
// classification window (every Stride calls once the window is full), the
// window is classified and an Event returned; otherwise the event is nil.
// ctx bounds the classification; a canceled ctx aborts it before the
// predictor is touched.
func (d *Detector) Observe(ctx context.Context, apiCallID int) (*Event, error) {
	if d.blocked {
		return nil, ErrBlocked
	}
	d.calls++
	if d.filled < len(d.window) {
		d.window[d.filled] = apiCallID
		d.filled++
		if d.filled < len(d.window) {
			return nil, nil
		}
		// First full window: classify immediately.
		return d.classify(ctx)
	}
	// Slide: drop the oldest call.
	copy(d.window, d.window[1:])
	d.window[len(d.window)-1] = apiCallID
	d.sinceEval++
	if d.sinceEval < d.cfg.Stride {
		return nil, nil
	}
	return d.classify(ctx)
}

func (d *Detector) classify(ctx context.Context) (*Event, error) {
	d.sinceEval = 0
	// Open a pipeline span unless the caller already carries one; the
	// layers below (scheduler queue wait, engine transfer/compute) record
	// their phases into whichever span rides the context. A window
	// observer (or event log) also wants the span's attribution, so one is
	// created for it even when no span ring is configured.
	sp := telemetry.SpanFrom(ctx)
	ownSpan := false
	if sp == nil && (d.cfg.Spans != nil || d.cfg.OnWindow != nil || d.cfg.Events != nil || d.cfg.Quality != nil) {
		sp = &telemetry.Span{Name: "window"}
		ctx = telemetry.WithSpan(ctx, sp)
		ownSpan = true
	}
	// Same ownership rule for the stage-cost breakdown: open one unless the
	// caller supplied it, so detector-driven requests carry verdict and
	// observation costs alongside the queue/transfer/compute stages the
	// layers below stamp.
	bd := prof.BreakdownFrom(ctx)
	ownBD := false
	if bd == nil && d.cfg.Prof != nil {
		bd = d.cfg.Prof.NewBreakdown(0)
		ctx = prof.WithBreakdown(ctx, bd)
		ownBD = true
	}
	res, _, err := d.pred.Predict(ctx, d.window)
	if err != nil {
		return nil, fmt.Errorf("detect: classify window at call %d: %w", d.calls, err)
	}
	verdictStart := time.Now()
	d.windowsEvaluated++
	d.windowsC.Inc()
	if res.Ransomware {
		d.verdictRansomC.Inc()
	} else {
		d.verdictBenignC.Inc()
	}
	ev := &Event{CallIndex: d.calls - 1, Probability: res.Probability, Action: ActionNone}
	if res.Probability >= d.cfg.Threshold {
		d.alerts++
		d.alertsC.Inc()
		d.consecutive++
		ev.Action = ActionAlert
		if d.consecutive >= d.cfg.AlertsToBlock {
			ev.Action = ActionBlock
			d.blocked = true
			d.blocksC.Inc()
			if d.cfg.OnBlock != nil {
				d.cfg.OnBlock(*ev)
			}
		}
	} else {
		d.consecutive = 0
	}
	bd.Add(prof.StageVerdict, time.Since(verdictStart))
	obs := bd.Begin(prof.StageObserve)
	if sp != nil {
		sp.Record(telemetry.PhaseVerdict, time.Since(verdictStart))
		if ownSpan {
			d.cfg.Spans.Add(*sp)
		}
	}
	d.observeWindow(ctx, ev, sp)
	obs.End()
	if ownBD {
		if sp != nil && bd.Job == 0 {
			bd.Job = sp.ID
		}
		d.cfg.Prof.Record(bd)
	}
	return ev, nil
}

// observeWindow feeds the classified window — with the pipeline
// attribution its span accumulated on the way down the stack — to the
// OnWindow observer and the event log.
func (d *Detector) observeWindow(ctx context.Context, ev *Event, sp *telemetry.Span) {
	if d.cfg.OnWindow == nil && d.cfg.Events == nil && d.cfg.Quality == nil {
		return
	}
	s := WindowSample{
		PID:         d.pid,
		Time:        time.Now(),
		CallIndex:   ev.CallIndex,
		Probability: ev.Probability,
		Action:      ev.Action,
	}
	if lbl, ok := quality.LabelFrom(ctx); ok {
		s.Truth, s.Family = "benign", lbl.Family
		if lbl.Truth {
			s.Truth = "ransomware"
		}
	}
	d.cfg.Quality.Observe(ctx, quality.Verdict{
		PID:         d.pid,
		Probability: ev.Probability,
		Flagged:     ev.Action >= ActionAlert,
		Blocked:     ev.Action == ActionBlock,
	})
	if sp != nil {
		s.Job = sp.ID
		s.Device = sp.Device
		for _, p := range sp.Phases {
			switch p.Name {
			case telemetry.PhaseQueue:
				s.QueueWait += p.Duration
			case telemetry.PhaseTransfer:
				s.Transfer += p.Duration
			case telemetry.PhaseCompute:
				s.Compute += p.Duration
			}
		}
	}
	if d.cfg.OnWindow != nil {
		d.cfg.OnWindow(s)
	}
	lvl, name := eventlog.LevelDebug, "window.benign"
	switch s.Action {
	case ActionAlert:
		lvl, name = eventlog.LevelInfo, "window.alert"
	case ActionBlock:
		lvl, name = eventlog.LevelError, "mitigation.block"
	}
	if !d.cfg.Events.Enabled(lvl) {
		return
	}
	// Ride the job ID on the context so the event correlates with the
	// request's span and timeline events.
	d.cfg.Events.LogPID(trace.WithJob(ctx, s.Job), lvl, "detect", name, s.PID,
		eventlog.F("call_index", s.CallIndex),
		eventlog.F("probability", s.Probability),
		eventlog.F("device", s.Device),
		eventlog.F("queue_wait_ns", s.QueueWait),
		eventlog.F("compute_ns", s.Compute),
	)
}

// Blocked reports whether mitigation has fired.
func (d *Detector) Blocked() bool { return d.blocked }

// Stats summarizes detector activity.
type Stats struct {
	CallsObserved    int64
	WindowsEvaluated int64
	Alerts           int64
	Blocked          bool
}

// Stats returns a snapshot of the detector's counters.
func (d *Detector) Stats() Stats {
	return Stats{
		CallsObserved:    d.calls,
		WindowsEvaluated: d.windowsEvaluated,
		Alerts:           d.alerts,
		Blocked:          d.blocked,
	}
}

// Reset clears all stream state (window, counters, mitigation latch).
func (d *Detector) Reset() {
	d.filled = 0
	d.sinceEval = 0
	d.calls = 0
	d.consecutive = 0
	d.blocked = false
	d.windowsEvaluated = 0
	d.alerts = 0
}
