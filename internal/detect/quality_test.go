package detect

import (
	"context"
	"testing"

	"github.com/kfrida1/csdinf/internal/quality"
)

// TestQualityLabelStamping pins the detect -> quality handoff: a label
// riding the request context lands on the WindowSample truth fields, and
// every classified window reaches the scorecard as a Verdict whose
// Flagged/Blocked mirror the escalation ladder (alert and block both count
// as flagged; only a block latches Blocked).
func TestQualityLabelStamping(t *testing.T) {
	card, err := quality.New(quality.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var samples []WindowSample
	p := &fakePredictor{window: 4, marker: 7}
	m, err := NewMux(p, MuxConfig{Detector: Config{
		Stride:        4,
		AlertsToBlock: 2,
		Quality:       card,
		OnWindow:      func(s WindowSample) { samples = append(samples, s) },
	}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := quality.WithLabel(context.Background(), quality.Label{Truth: true, Family: "LockBit"})

	// Window 1: benign calls — scored, not flagged.
	for i := 0; i < 4; i++ {
		if _, err := m.Observe(ctx, 42, 1); err != nil {
			t.Fatal(err)
		}
	}
	// Windows 2 and 3: the marker drives alert then block.
	for i := 0; i < 8; i++ {
		if _, err := m.Observe(ctx, 42, 7); err != nil {
			t.Fatal(err)
		}
	}

	if len(samples) != 3 {
		t.Fatalf("%d window samples, want 3", len(samples))
	}
	for i, s := range samples {
		if s.Truth != "ransomware" || s.Family != "lockbit" {
			t.Errorf("sample %d truth=%q family=%q, want ransomware/lockbit (sanitized)", i, s.Truth, s.Family)
		}
		if s.PID != 42 {
			t.Errorf("sample %d pid=%d, want 42", i, s.PID)
		}
	}
	if samples[0].Action != ActionNone || samples[1].Action != ActionAlert || samples[2].Action != ActionBlock {
		t.Fatalf("escalation = %v %v %v, want none/alert/block", samples[0].Action, samples[1].Action, samples[2].Action)
	}

	q := card.Snapshot()
	// Verdict mapping: the benign-looking window is a miss (FN), the alert
	// and block windows are hits (TP).
	if q.Total.TP != 2 || q.Total.FN != 1 {
		t.Errorf("confusion %+v, want tp=2 fn=1", q.Total)
	}
	if q.Processes.Flagged != 1 || q.Processes.Blocked != 1 {
		t.Errorf("processes %+v, want the one PID flagged and blocked", q.Processes)
	}
	// Flagged on window 2, blocked on window 3.
	if q.WindowsToFlag.P50 != 2 {
		t.Errorf("windows-to-flag p50 %v, want 2", q.WindowsToFlag.P50)
	}
	if want := float64(3 * quality.DefaultBytesPerWindow); q.BytesAtRisk.P50 != want {
		t.Errorf("bytes-at-risk p50 %v, want %v (3 windows)", q.BytesAtRisk.P50, want)
	}
}

// TestQualityUnlabeledWindows pins that windows observed without a
// ground-truth label still count (as unlabeled) and leave the truth
// fields empty.
func TestQualityUnlabeledWindows(t *testing.T) {
	card, err := quality.New(quality.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var sample WindowSample
	p := &fakePredictor{window: 4, marker: 99}
	d, err := New(p, Config{
		Stride:   4,
		Quality:  card,
		OnWindow: func(s WindowSample) { sample = s },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := d.Observe(context.Background(), 1); err != nil {
			t.Fatal(err)
		}
	}
	if sample.Truth != "" || sample.Family != "" {
		t.Errorf("unlabeled sample truth=%q family=%q, want empty", sample.Truth, sample.Family)
	}
	q := card.Snapshot()
	if q.Windows != 1 || q.Unlabeled != 1 || q.Labeled != 0 {
		t.Errorf("scorecard windows=%d unlabeled=%d labeled=%d, want 1/1/0", q.Windows, q.Unlabeled, q.Labeled)
	}
}
