package detect

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"github.com/kfrida1/csdinf/internal/eventlog"
	"github.com/kfrida1/csdinf/internal/infer"
	"github.com/kfrida1/csdinf/internal/telemetry"
)

// Mux demultiplexes a system-wide API-call stream into per-process
// detectors. Cuckoo-style monitoring reports calls per process, and
// ransomware typically runs as its own process tree; classifying each
// process's stream separately keeps one noisy benign process from diluting
// an infected one's window (and matches how the paper's traces were
// captured: "all API calls that were made, in the order in which they
// would be observed on a system housing a CSD").
//
// Mux is not safe for concurrent use, mirroring the single ingest stream
// of the device.
type Mux struct {
	pred Predictor
	cfg  Config

	detectors map[int]*Detector
	// maxProcesses bounds tracked processes; oldest-idle are evicted.
	maxProcesses int
	lastSeen     map[int]int64
	clock        int64

	blockedPID int
	blocked    bool

	onEvict func(pid int)
	events  *eventlog.Logger

	evictionsC *telemetry.Counter
	processesG *telemetry.Gauge
}

// MuxConfig controls the demultiplexer.
type MuxConfig struct {
	// Detector is the per-process detector configuration. Its OnWindow
	// observer and Events logger are inherited by every per-process child,
	// with samples and events carrying the child's PID.
	Detector Config
	// MaxProcesses bounds concurrently tracked processes; 0 defaults to
	// 64. When exceeded, the longest-idle process's state is evicted.
	MaxProcesses int
	// OnEvict, when non-nil, is invoked with the PID whose detector state
	// was just evicted under the process cap — wire
	// incident.Recorder.Evict here so an open incident for the process is
	// closed rather than silently merged with a later reappearance.
	OnEvict func(pid int)
}

// NewMux builds a per-process detector demultiplexer over the predictor.
func NewMux(pred Predictor, cfg MuxConfig) (*Mux, error) {
	if pred == nil {
		return nil, errors.New("detect: nil predictor")
	}
	if cfg.MaxProcesses == 0 {
		cfg.MaxProcesses = 64
	}
	if cfg.MaxProcesses < 0 {
		return nil, fmt.Errorf("detect: MaxProcesses %d must be positive", cfg.MaxProcesses)
	}
	// Validate the detector configuration eagerly with a probe detector.
	if _, err := New(pred, cfg.Detector); err != nil {
		return nil, err
	}
	reg := cfg.Detector.Telemetry
	return &Mux{
		pred:         pred,
		cfg:          cfg.Detector,
		detectors:    make(map[int]*Detector),
		maxProcesses: cfg.MaxProcesses,
		lastSeen:     make(map[int]int64),
		onEvict:      cfg.OnEvict,
		events:       cfg.Detector.Events,
		evictionsC: reg.Counter("mux_evictions_total",
			"Per-process detector states evicted under the process cap."),
		processesG: reg.Gauge("mux_processes",
			"Processes with live detector state."),
	}, nil
}

// ProcessEvent is a classified window attributed to a process.
type ProcessEvent struct {
	PID int
	Event
}

// Observe routes one API call of the given process. When mitigation fires
// for any process, the whole mux latches blocked (the device-level write
// quarantine is global).
func (m *Mux) Observe(ctx context.Context, pid, apiCallID int) (*ProcessEvent, error) {
	if m.blocked {
		return nil, ErrBlocked
	}
	m.clock++
	det, ok := m.detectors[pid]
	if !ok {
		if len(m.detectors) >= m.maxProcesses {
			m.evictIdlest(ctx)
		}
		var err error
		det, err = New(m.pred, m.cfg)
		if err != nil {
			return nil, fmt.Errorf("detect: process %d: %w", pid, err)
		}
		det.pid = pid
		m.detectors[pid] = det
		m.processesG.Set(int64(len(m.detectors)))
		m.events.LogPID(ctx, eventlog.LevelDebug, "detect", "process.track", pid,
			eventlog.F("tracked", len(m.detectors)))
	}
	m.lastSeen[pid] = m.clock

	// Each monitored process is a placement tenant: the fleet layer pins a
	// tenant's windows to one device, keeping a process's classification
	// stream (and its per-device trace timeline) together.
	if infer.TenantFrom(ctx) == "" {
		ctx = infer.WithTenant(ctx, fmt.Sprintf("pid-%d", pid))
	}
	ev, err := det.Observe(ctx, apiCallID)
	if err != nil {
		return nil, fmt.Errorf("detect: process %d: %w", pid, err)
	}
	if ev == nil {
		return nil, nil
	}
	out := &ProcessEvent{PID: pid, Event: *ev}
	if ev.Action == ActionBlock {
		m.blocked = true
		m.blockedPID = pid
	}
	return out, nil
}

// evictIdlest drops the longest-idle process. The caller's ctx is threaded
// through so the eviction event keeps the trace job ID of the API call that
// forced it — that correlation is what lets incident forensics explain why
// a process's history was truncated.
func (m *Mux) evictIdlest(ctx context.Context) {
	var pids []int
	for pid := range m.detectors {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return m.lastSeen[pids[i]] < m.lastSeen[pids[j]] })
	victim := pids[0]
	delete(m.detectors, victim)
	delete(m.lastSeen, victim)
	m.evictionsC.Inc()
	m.processesG.Set(int64(len(m.detectors)))
	m.events.LogPID(ctx, eventlog.LevelInfo, "detect", "process.evict", victim,
		eventlog.F("tracked", len(m.detectors)))
	if m.onEvict != nil {
		m.onEvict(victim)
	}
}

// Blocked reports whether mitigation has fired, and for which process.
func (m *Mux) Blocked() (bool, int) { return m.blocked, m.blockedPID }

// Processes returns the number of currently tracked processes.
func (m *Mux) Processes() int { return len(m.detectors) }

// ProcessStats returns the per-process detector statistics.
func (m *Mux) ProcessStats() map[int]Stats {
	out := make(map[int]Stats, len(m.detectors))
	for pid, det := range m.detectors {
		out[pid] = det.Stats()
	}
	return out
}
