package detect

import (
	"context"
	"errors"
	"testing"

	"github.com/kfrida1/csdinf/internal/infer"
	"github.com/kfrida1/csdinf/internal/kernels"
)

// fakePredictor flags any window containing the marker item.
type fakePredictor struct {
	window int
	marker int
	calls  int
	err    error
}

func (f *fakePredictor) Predict(ctx context.Context, seq []int) (kernels.Result, infer.Timing, error) {
	if err := ctx.Err(); err != nil {
		return kernels.Result{}, infer.Timing{}, err
	}
	f.calls++
	if f.err != nil {
		return kernels.Result{}, infer.Timing{}, f.err
	}
	for _, it := range seq {
		if it == f.marker {
			return kernels.Result{Ransomware: true, Probability: 0.95}, infer.Timing{}, nil
		}
	}
	return kernels.Result{Probability: 0.05}, infer.Timing{}, nil
}

func (f *fakePredictor) PredictStored(ctx context.Context, ssdOff int64) (kernels.Result, infer.Timing, error) {
	return kernels.Result{}, infer.Timing{}, infer.ErrNoStoredData
}

func (f *fakePredictor) SeqLen() int { return f.window }

func TestNewValidation(t *testing.T) {
	p := &fakePredictor{window: 10, marker: 1}
	if _, err := New(nil, Config{}); err == nil {
		t.Error("nil predictor: expected error")
	}
	if _, err := New(p, Config{Stride: -1}); err == nil {
		t.Error("negative stride: expected error")
	}
	if _, err := New(p, Config{Threshold: 1.5}); err == nil {
		t.Error("bad threshold: expected error")
	}
	if _, err := New(p, Config{AlertsToBlock: -1}); err == nil {
		t.Error("negative alerts-to-block: expected error")
	}
	if _, err := New(&fakePredictor{window: 0}, Config{}); err == nil {
		t.Error("zero-window predictor: expected error")
	}
}

func TestActionString(t *testing.T) {
	if ActionNone.String() != "none" || ActionAlert.String() != "alert" || ActionBlock.String() != "block" {
		t.Error("action names broken")
	}
	if Action(0).String() != "Action(0)" {
		t.Error("unknown action formatting broken")
	}
}

func TestFirstWindowClassifiedWhenFull(t *testing.T) {
	p := &fakePredictor{window: 5, marker: 99}
	d, err := New(p, Config{Stride: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		ev, err := d.Observe(context.Background(), 1)
		if err != nil {
			t.Fatal(err)
		}
		if ev != nil {
			t.Fatalf("event before window full at call %d", i)
		}
	}
	ev, err := d.Observe(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if ev == nil {
		t.Fatal("no event when window filled")
	}
	if ev.Action != ActionNone {
		t.Fatalf("benign window action = %v", ev.Action)
	}
	if ev.CallIndex != 4 {
		t.Fatalf("CallIndex = %d, want 4", ev.CallIndex)
	}
}

func TestStrideBetweenEvaluations(t *testing.T) {
	p := &fakePredictor{window: 5, marker: 99}
	d, err := New(p, Config{Stride: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := d.Observe(context.Background(), 1); err != nil {
			t.Fatal(err)
		}
	}
	if p.calls != 1 {
		t.Fatalf("evaluations after first window = %d", p.calls)
	}
	// Next evaluation exactly Stride calls later.
	for i := 0; i < 2; i++ {
		ev, err := d.Observe(context.Background(), 1)
		if err != nil {
			t.Fatal(err)
		}
		if ev != nil {
			t.Fatalf("early evaluation at slide %d", i)
		}
	}
	ev, err := d.Observe(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if ev == nil || p.calls != 2 {
		t.Fatalf("evaluation did not fire at stride boundary (calls=%d)", p.calls)
	}
}

func TestAlertEscalatesToBlock(t *testing.T) {
	p := &fakePredictor{window: 4, marker: 7}
	var blocked []Event
	d, err := New(p, Config{
		Stride:        2,
		AlertsToBlock: 2,
		OnBlock:       func(e Event) { blocked = append(blocked, e) },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Fill the window with marker items: first evaluation alerts.
	var last *Event
	feed := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			ev, err := d.Observe(context.Background(), 7)
			if err != nil {
				t.Fatal(err)
			}
			if ev != nil {
				last = ev
			}
		}
	}
	feed(4)
	if last == nil || last.Action != ActionAlert {
		t.Fatalf("first malicious window action = %+v", last)
	}
	feed(2) // second consecutive alert -> block
	if last.Action != ActionBlock {
		t.Fatalf("second alert action = %v, want block", last.Action)
	}
	if !d.Blocked() {
		t.Fatal("detector not latched after block")
	}
	if len(blocked) != 1 {
		t.Fatalf("OnBlock fired %d times, want 1", len(blocked))
	}
	if _, err := d.Observe(context.Background(), 7); !errors.Is(err, ErrBlocked) {
		t.Fatalf("post-block Observe error = %v, want ErrBlocked", err)
	}
}

func TestConsecutiveCounterResetsOnBenign(t *testing.T) {
	p := &fakePredictor{window: 1, marker: 7}
	d, err := New(p, Config{Stride: 1, AlertsToBlock: 2})
	if err != nil {
		t.Fatal(err)
	}
	// alert, benign, alert, benign... must never block.
	items := []int{7, 1, 7, 1, 7, 1, 7, 1}
	for _, it := range items {
		if _, err := d.Observe(context.Background(), it); err != nil {
			t.Fatal(err)
		}
	}
	if d.Blocked() {
		t.Fatal("alternating alerts blocked despite reset rule")
	}
}

func TestPredictorErrorPropagates(t *testing.T) {
	p := &fakePredictor{window: 2, marker: 7, err: errors.New("boom")}
	d, err := New(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Observe(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Observe(context.Background(), 1); err == nil {
		t.Fatal("predictor error swallowed")
	}
}

func TestStatsAndReset(t *testing.T) {
	p := &fakePredictor{window: 3, marker: 7}
	d, err := New(p, Config{Stride: 1, AlertsToBlock: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range []int{1, 1, 7} {
		if _, err := d.Observe(context.Background(), it); err != nil {
			t.Fatal(err)
		}
	}
	s := d.Stats()
	if s.CallsObserved != 3 || s.WindowsEvaluated != 1 || s.Alerts != 1 || !s.Blocked {
		t.Fatalf("stats = %+v", s)
	}
	d.Reset()
	s = d.Stats()
	if s.CallsObserved != 0 || s.Blocked {
		t.Fatalf("post-reset stats = %+v", s)
	}
	if _, err := d.Observe(context.Background(), 1); err != nil {
		t.Fatalf("Observe after Reset: %v", err)
	}
}
