package detect

import (
	"context"
	"testing"

	"github.com/kfrida1/csdinf/internal/telemetry"
)

func counterValue(t *testing.T, reg *telemetry.Registry, name string, labels ...telemetry.Label) int64 {
	t.Helper()
	snap := reg.Snapshot()
	for _, m := range snap {
		if m.Name != name || len(m.Labels) != len(labels) {
			continue
		}
		match := true
		for i, l := range labels {
			if m.Labels[i] != l {
				match = false
				break
			}
		}
		if match {
			return m.Value
		}
	}
	t.Fatalf("series %s%v not in registry (%d series)", name, labels, len(snap))
	return 0
}

// feed drives calls through the detector until it blocks or the trace ends.
func feed(t *testing.T, d *Detector, trace []int) {
	t.Helper()
	for _, call := range trace {
		if _, err := d.Observe(context.Background(), call); err != nil {
			if err == ErrBlocked {
				return
			}
			t.Fatal(err)
		}
	}
}

func TestDetectorCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	p := &fakePredictor{window: 4, marker: 7}
	d, err := New(p, Config{Stride: 2, AlertsToBlock: 2, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	// 4 benign calls fill the window (verdict 1, benign), then a marker
	// slides in: two strides later it alerts, the confirmation re-check
	// blocks.
	feed(t, d, []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})

	if got := counterValue(t, reg, "detect_windows_total"); got != int64(d.Stats().WindowsEvaluated) {
		t.Fatalf("detect_windows_total = %d, stats say %d", got, d.Stats().WindowsEvaluated)
	}
	ransom := counterValue(t, reg, "detect_verdicts_total", telemetry.L("verdict", "ransomware"))
	benign := counterValue(t, reg, "detect_verdicts_total", telemetry.L("verdict", "benign"))
	if ransom+benign != int64(d.Stats().WindowsEvaluated) {
		t.Fatalf("verdicts %d+%d don't sum to windows %d", ransom, benign, d.Stats().WindowsEvaluated)
	}
	if ransom == 0 || benign == 0 {
		t.Fatalf("expected both verdict outcomes, got ransomware=%d benign=%d", ransom, benign)
	}
	if got := counterValue(t, reg, "detect_alerts_total"); got != int64(d.Stats().Alerts) {
		t.Fatalf("detect_alerts_total = %d, stats say %d", got, d.Stats().Alerts)
	}
	if got := counterValue(t, reg, "detect_blocks_total"); got != 1 {
		t.Fatalf("detect_blocks_total = %d, want 1", got)
	}
	if !d.Blocked() {
		t.Fatal("detector should have blocked")
	}
}

func TestDetectorSpans(t *testing.T) {
	reg := telemetry.NewRegistry()
	spans := telemetry.NewSpanLog(8)
	p := &fakePredictor{window: 3, marker: 99}
	d, err := New(p, Config{Stride: 1, Telemetry: reg, Spans: spans})
	if err != nil {
		t.Fatal(err)
	}
	feed(t, d, []int{1, 2, 3, 4, 5})

	got := spans.Snapshot()
	if int64(len(got)) != d.Stats().WindowsEvaluated {
		t.Fatalf("%d spans for %d windows", len(got), d.Stats().WindowsEvaluated)
	}
	for _, sp := range got {
		if sp.Name != "window" {
			t.Fatalf("span name %q", sp.Name)
		}
		found := false
		for _, ph := range sp.Phases {
			if ph.Name == telemetry.PhaseVerdict {
				found = true
			}
		}
		if !found {
			t.Fatalf("span %v lacks verdict phase", sp)
		}
	}
}

// TestDetectorHonorsCallerSpan: when the caller already carries a span, the
// detector records into it rather than opening (and logging) its own.
func TestDetectorHonorsCallerSpan(t *testing.T) {
	spans := telemetry.NewSpanLog(8)
	p := &fakePredictor{window: 2, marker: 99}
	d, err := New(p, Config{Stride: 1, Spans: spans})
	if err != nil {
		t.Fatal(err)
	}
	sp := &telemetry.Span{Name: "caller"}
	ctx := telemetry.WithSpan(context.Background(), sp)
	if _, err := d.Observe(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Observe(ctx, 2); err != nil { // completes the window
		t.Fatal(err)
	}
	if n := len(spans.Snapshot()); n != 0 {
		t.Fatalf("detector logged %d spans despite caller-owned span", n)
	}
	if len(sp.Phases) == 0 || sp.Phases[0].Name != telemetry.PhaseVerdict {
		t.Fatalf("caller span not recorded into: %v", sp.Phases)
	}
}

func TestMuxEvictionTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	p := &fakePredictor{window: 4, marker: 7}
	m, err := NewMux(p, MuxConfig{
		Detector:     Config{Stride: 2, Telemetry: reg},
		MaxProcesses: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Three distinct PIDs against a cap of two forces one eviction.
	for _, pid := range []int{100, 200, 300} {
		if _, err := m.Observe(context.Background(), pid, 1); err != nil {
			t.Fatal(err)
		}
	}
	if got := counterValue(t, reg, "mux_evictions_total"); got != 1 {
		t.Fatalf("mux_evictions_total = %d, want 1", got)
	}
	if got := counterValue(t, reg, "mux_processes"); got != 2 {
		t.Fatalf("mux_processes = %d, want 2", got)
	}
	if m.Processes() != 2 {
		t.Fatalf("Processes() = %d", m.Processes())
	}
}
