package detect

import (
	"testing"

	"github.com/kfrida1/csdinf/internal/eventlog"
	"github.com/kfrida1/csdinf/internal/trace"
)

// TestEvictionEventKeepsCallerJob pins the ctx threading through
// evictIdlest: the process.evict event must carry the trace job ID of the
// API call that forced the eviction, not an unattributed background
// context.
func TestEvictionEventKeepsCallerJob(t *testing.T) {
	p := &fakePredictor{window: 4, marker: 7}
	log := eventlog.New(eventlog.Config{MinLevel: eventlog.LevelDebug})
	m, err := NewMux(p, MuxConfig{
		MaxProcesses: 2,
		Detector:     Config{Stride: 1, Events: log},
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx := trace.WithJob(t.Context(), 4242)
	for pid := 1; pid <= 3; pid++ {
		if _, err := m.Observe(ctx, pid, 1); err != nil {
			t.Fatal(err)
		}
	}
	if m.Processes() != 2 {
		t.Fatalf("tracked processes = %d, want cap of 2", m.Processes())
	}

	var evict *eventlog.Event
	for _, ev := range log.Recent() {
		if ev.Name == "process.evict" {
			ev := ev
			evict = &ev
		}
	}
	if evict == nil {
		t.Fatal("no process.evict event emitted")
	}
	if evict.PID != 1 {
		t.Errorf("evicted pid = %d, want the idlest (1)", evict.PID)
	}
	if evict.Job != 4242 {
		t.Errorf("evict event job = %d, want the observing call's 4242", evict.Job)
	}
}
