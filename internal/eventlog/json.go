package eventlog

import (
	"encoding/json"
	"fmt"
	"strconv"
	"time"
	"unicode/utf8"
)

// AppendJSON appends the event as one flat JSON object — the JSON-lines
// wire format. Fixed keys come first (seq, ts, level, component, event,
// then job, pid, and device when attributed), followed by the event's
// fields in emission order, so `jq 'select(.job == 12)'` style pipelines
// see every attribute at the top level.
func (e Event) AppendJSON(buf []byte) []byte {
	buf = append(buf, '{')
	buf = appendKey(buf, "seq", true)
	buf = strconv.AppendInt(buf, e.Seq, 10)
	buf = appendKey(buf, "ts", false)
	buf = appendString(buf, e.Time.UTC().Format(time.RFC3339Nano))
	buf = appendKey(buf, "level", false)
	buf = appendString(buf, e.Level.String())
	buf = appendKey(buf, "component", false)
	buf = appendString(buf, e.Component)
	buf = appendKey(buf, "event", false)
	buf = appendString(buf, e.Name)
	if e.Job != 0 {
		buf = appendKey(buf, "job", false)
		buf = strconv.AppendInt(buf, e.Job, 10)
	}
	if e.PID != 0 {
		buf = appendKey(buf, "pid", false)
		buf = strconv.AppendInt(buf, int64(e.PID), 10)
	}
	if e.Device != "" {
		buf = appendKey(buf, "device", false)
		buf = appendString(buf, e.Device)
	}
	for _, f := range e.Fields {
		buf = appendKey(buf, f.Key, false)
		buf = appendValue(buf, f.Value)
	}
	return append(buf, '}')
}

// MarshalJSON implements json.Marshaler with the flat JSON-lines shape, so
// /events.json and the file sink render identically.
func (e Event) MarshalJSON() ([]byte, error) {
	return e.AppendJSON(make([]byte, 0, 256)), nil
}

func appendKey(buf []byte, key string, first bool) []byte {
	if !first {
		buf = append(buf, ',')
	}
	buf = appendString(buf, key)
	return append(buf, ':')
}

// appendValue renders a field value. The supported kinds cover everything
// the instrumented layers emit; unknown types degrade to their fmt "%v"
// string rather than failing.
func appendValue(buf []byte, v any) []byte {
	switch x := v.(type) {
	case nil:
		return append(buf, "null"...)
	case string:
		return appendString(buf, x)
	case bool:
		return strconv.AppendBool(buf, x)
	case int:
		return strconv.AppendInt(buf, int64(x), 10)
	case int8:
		return strconv.AppendInt(buf, int64(x), 10)
	case int16:
		return strconv.AppendInt(buf, int64(x), 10)
	case int32:
		return strconv.AppendInt(buf, int64(x), 10)
	case int64:
		return strconv.AppendInt(buf, x, 10)
	case uint:
		return strconv.AppendUint(buf, uint64(x), 10)
	case uint8:
		return strconv.AppendUint(buf, uint64(x), 10)
	case uint16:
		return strconv.AppendUint(buf, uint64(x), 10)
	case uint32:
		return strconv.AppendUint(buf, uint64(x), 10)
	case uint64:
		return strconv.AppendUint(buf, x, 10)
	case float32:
		return appendFloat(buf, float64(x))
	case float64:
		return appendFloat(buf, x)
	case json.Number:
		// Produced by DecodeJSON; re-emit the exact wire digits so
		// decode/encode round-trips byte-for-byte.
		if x == "" {
			return append(buf, '0')
		}
		return append(buf, x...)
	case time.Duration:
		// Integer nanoseconds; field keys name the unit (*_ns).
		return strconv.AppendInt(buf, int64(x), 10)
	case time.Time:
		return appendString(buf, x.UTC().Format(time.RFC3339Nano))
	case error:
		return appendString(buf, x.Error())
	case fmt.Stringer:
		return appendString(buf, x.String())
	default:
		return appendString(buf, fmt.Sprintf("%v", x))
	}
}

// appendFloat renders a float as JSON; NaN and infinities (invalid JSON)
// become strings.
func appendFloat(buf []byte, f float64) []byte {
	if f != f || f > 1.797693134862315708145274237317043567981e308 || f < -1.797693134862315708145274237317043567981e308 {
		return appendString(buf, fmt.Sprintf("%v", f))
	}
	return strconv.AppendFloat(buf, f, 'g', -1, 64)
}

const hexDigits = "0123456789abcdef"

// appendString appends a JSON-escaped string literal.
func appendString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	for i := 0; i < len(s); {
		c := s[i]
		if c >= 0x20 && c != '"' && c != '\\' && c < utf8.RuneSelf {
			buf = append(buf, c)
			i++
			continue
		}
		if c < utf8.RuneSelf {
			switch c {
			case '"':
				buf = append(buf, '\\', '"')
			case '\\':
				buf = append(buf, '\\', '\\')
			case '\n':
				buf = append(buf, '\\', 'n')
			case '\r':
				buf = append(buf, '\\', 'r')
			case '\t':
				buf = append(buf, '\\', 't')
			default:
				buf = append(buf, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
			}
			i++
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			buf = append(buf, '\\', 'u', 'f', 'f', 'f', 'd')
			i++
			continue
		}
		buf = append(buf, s[i:i+size]...)
		i += size
	}
	return append(buf, '"')
}
