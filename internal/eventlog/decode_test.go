package eventlog

import (
	"context"
	"encoding/json"
	"testing"
	"time"
)

func TestDecodeJSONRoundTripsLoggerOutput(t *testing.T) {
	l := New(Config{MinLevel: LevelDebug})
	ctx := context.Background()
	l.LogPID(ctx, LevelWarn, "detect", "window.alert", 4242,
		F("p", 0.97), F("window", 40), F("blocked", true), F("note", "π ≈ 3"))

	events := l.Recent()
	if len(events) != 1 {
		t.Fatalf("events = %d, want 1", len(events))
	}
	wire := events[0].AppendJSON(nil)
	got, err := DecodeJSON(wire)
	if err != nil {
		t.Fatalf("DecodeJSON: %v\nwire: %s", err, wire)
	}
	if got.Seq != events[0].Seq || got.Level != LevelWarn ||
		got.Component != "detect" || got.Name != "window.alert" || got.PID != 4242 {
		t.Fatalf("decoded %+v from %s", got, wire)
	}
	if !got.Time.Equal(events[0].Time.UTC().Truncate(time.Nanosecond)) {
		t.Fatalf("time = %v, want %v", got.Time, events[0].Time)
	}
	want := []Field{
		{Key: "p", Value: json.Number("0.97")},
		{Key: "window", Value: json.Number("40")},
		{Key: "blocked", Value: true},
		{Key: "note", Value: "π ≈ 3"},
	}
	if len(got.Fields) != len(want) {
		t.Fatalf("fields = %+v, want %+v", got.Fields, want)
	}
	for i := range want {
		if got.Fields[i] != want[i] {
			t.Errorf("field %d = %#v, want %#v", i, got.Fields[i], want[i])
		}
	}

	// The decoded event re-encodes to the identical wire bytes.
	again := got.AppendJSON(nil)
	if string(again) != string(wire) {
		t.Fatalf("re-encode drifted:\n got %s\nwant %s", again, wire)
	}
}

func TestDecodeJSONRejectsMalformedInput(t *testing.T) {
	cases := map[string]string{
		"empty":         ``,
		"array":         `[1]`,
		"truncated":     `{"seq":1`,
		"non-string":    `{1:2}`,
		"nested object": `{"x":{"y":1}}`,
		"nested array":  `{"x":[1]}`,
		"bad level":     `{"level":"loud"}`,
		"bad ts":        `{"ts":"yesterday"}`,
		"seq type":      `{"seq":"one"}`,
		"trailing":      `{"seq":1}{"seq":2}`,
	}
	for name, in := range cases {
		if _, err := DecodeJSON([]byte(in)); err == nil {
			t.Errorf("%s: DecodeJSON(%q) succeeded", name, in)
		}
	}
}
