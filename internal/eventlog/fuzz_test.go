package eventlog

import (
	"testing"
	"time"
)

// FuzzEventJSON pins the JSON-lines wire format by round-trip: an encoded
// event must decode back, and from the first decode onward the
// encode/decode pair must be a byte-exact fixed point. (The first encoding
// may normalize — invalid UTF-8 is replaced, fractional-second zeros are
// dropped — so the fixed point is asserted from the normalized form.)
func FuzzEventJSON(f *testing.F) {
	f.Add(int64(1), uint8(2), "serve", "request.done", int64(12), 0,
		"latency_ns", "x", int64(12345), true, 0.25, int64(1700000000000000000))
	f.Add(int64(9), uint8(4), "detect", "mitigation.block", int64(0), 4242,
		"p", "ransom\nware\x80", int64(-3), false, -1.5e-7, int64(0))
	f.Fuzz(func(t *testing.T, seq int64, lvl uint8, component, name string, job int64, pid int,
		fkey, fstr string, fint int64, fbool bool, ffloat float64, tnanos int64) {

		e := Event{
			Seq:  seq,
			Time: time.Unix(0, tnanos&(1<<61-1)).UTC(), // keep the year RFC3339-parseable
			// Level must be one of the four named severities: anything else
			// renders as "Level(n)", which is not part of the wire format.
			Level:     Level(int(lvl)%4 + 1),
			Component: component,
			Name:      name,
			Job:       job,
			PID:       pid,
			Fields: []Field{
				// The f_ prefix keeps fuzzed keys off the reserved fixed
				// names (seq, ts, ...), which by contract do not round-trip.
				{Key: "f_" + fkey, Value: fstr},
				{Key: "f_i", Value: fint},
				{Key: "f_b", Value: fbool},
				{Key: "f_f", Value: ffloat},
			},
		}

		enc1 := e.AppendJSON(nil)
		d1, err := DecodeJSON(enc1)
		if err != nil {
			t.Fatalf("decode of encoder output failed: %v\nwire: %s", err, enc1)
		}
		if d1.Seq != e.Seq || d1.Level != e.Level || d1.Job != e.Job || d1.PID != e.PID {
			t.Fatalf("fixed fields corrupted: got %+v, want %+v", d1, e)
		}
		if !d1.Time.Equal(e.Time) {
			t.Fatalf("timestamp corrupted: got %v, want %v", d1.Time, e.Time)
		}
		if len(d1.Fields) != len(e.Fields) {
			t.Fatalf("field count %d, want %d\nwire: %s", len(d1.Fields), len(e.Fields), enc1)
		}

		enc2 := d1.AppendJSON(nil)
		d2, err := DecodeJSON(enc2)
		if err != nil {
			t.Fatalf("decode of re-encoded event failed: %v\nwire: %s", err, enc2)
		}
		enc3 := d2.AppendJSON(nil)
		if string(enc2) != string(enc3) {
			t.Fatalf("encode/decode is not a fixed point:\nenc2: %s\nenc3: %s", enc2, enc3)
		}
	})
}

// FuzzDecodeJSON feeds the decoder raw bytes: it must never panic, and on
// success the decoded event must re-encode into something it can decode
// again.
func FuzzDecodeJSON(f *testing.F) {
	f.Add([]byte(`{"seq":1,"ts":"2026-01-02T03:04:05Z","level":"info","component":"c","event":"a.b"}`))
	f.Add([]byte(`{"seq":1`))
	f.Add([]byte(`[1,2]`))
	f.Add([]byte(`{"seq":1,"ts":"2026-01-02T03:04:05Z","level":"info","component":"c","event":"a.b","x":{"nested":true}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := DecodeJSON(data)
		if err != nil {
			return
		}
		if _, err := DecodeJSON(e.AppendJSON(nil)); err != nil {
			t.Fatalf("re-encoded event does not decode: %v\nwire: %s", err, e.AppendJSON(nil))
		}
	})
}
