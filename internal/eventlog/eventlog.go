// Package eventlog is the domain-event layer of the observability stack:
// structured, leveled JSON-lines events with cross-layer correlation IDs.
//
// Metrics (internal/telemetry) answer "how much / how fast", the device
// timeline (internal/trace) answers "where did the cycles go", but neither
// records *what happened* — which process alerted, which model generation
// was live, why a request was rejected. SHIELD (arXiv:2501.16619) argues a
// detector's output must be auditable to be deployable; this package gives
// every layer of the serving stack a shared, append-only event stream a SOC
// can tail, filter, and correlate.
//
// A Logger fans events out to pluggable Sinks (a JSON-lines file, a test
// capture, a network forwarder) through per-sink bounded queues: emission
// never blocks on a slow sink, dropped events are counted per sink instead.
// The most recent events are additionally retained in a fixed in-memory
// ring served at /events.json (see HTTPHandler).
//
// Correlation: an event emitted with a context that carries a trace job ID
// (internal/trace.WithJob — the ID the scheduler allocates per request and
// mirrors onto telemetry.Span.ID) is stamped with that ID, so one `jq`
// pass joins the event stream against /spans.json and the Chrome trace
// export. Events may also carry a process attribution (PID) for the
// per-process detection mux.
//
// A nil *Logger is valid everywhere and records nothing, matching the
// optional-instrumentation convention of telemetry and trace.
package eventlog

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/kfrida1/csdinf/internal/trace"
)

// Level is an event severity.
type Level int8

// Severities, in escalating order. The zero value is reserved so that an
// unset configuration can default (to LevelInfo).
const (
	LevelDebug Level = iota + 1
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the lowercase level name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return fmt.Sprintf("Level(%d)", int8(l))
	}
}

// ParseLevel parses a level name as accepted by command-line flags.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	default:
		return 0, fmt.Errorf("eventlog: unknown level %q (want debug, info, warn, error)", s)
	}
}

// Field is one structured key/value attribute of an event. Values are
// rendered by the JSON-lines encoder (see Event.AppendJSON): strings,
// booleans, integers, floats, time.Duration (as integer nanoseconds —
// name duration keys *_ns), time.Time (RFC 3339), and errors all encode
// natively; anything else falls back to its fmt.Sprintf("%v") string.
type Field struct {
	Key   string
	Value any
}

// F is shorthand for building a Field.
func F(key string, value any) Field { return Field{Key: key, Value: value} }

// Event is one structured log record.
type Event struct {
	// Seq is the logger-assigned sequence number (1, 2, 3, ...); gaps after
	// level filtering never occur because filtered events are not assigned
	// one.
	Seq int64
	// Time is the emission timestamp.
	Time time.Time
	// Level is the severity.
	Level Level
	// Component names the emitting layer ("serve", "engine", "csd",
	// "detect", "cti", "incident", ...).
	Component string
	// Name is the dot-scoped event name within the component, e.g.
	// "window.classified" or "queue.full".
	Name string
	// Job is the trace correlation ID carried by the emitting context
	// (trace.JobFrom); 0 means unattributed. The same ID appears on the
	// request's telemetry.Span and its timeline events.
	Job int64
	// PID attributes the event to a monitored process; 0 means none.
	PID int
	// Device attributes the event to a registry device (internal/device
	// IDs, e.g. "csd-000"); empty means none. The same ID labels the
	// device's telemetry series and names its trace tracks.
	Device string
	// Fields are the event's structured attributes, in emission order.
	Fields []Field
}

// Config controls a Logger.
type Config struct {
	// MinLevel is the lowest severity recorded; 0 defaults to LevelInfo.
	MinLevel Level
	// Ring bounds the in-memory ring of recent events; 0 defaults to 512.
	Ring int
	// SinkBuffer bounds each attached sink's queue; 0 defaults to 1024.
	// When a sink's queue is full the event is dropped for that sink (and
	// counted), never blocking the emitting goroutine.
	SinkBuffer int
	// Clock overrides the timestamp source (tests); nil uses time.Now.
	Clock func() time.Time
}

func (c *Config) defaults() {
	if c.MinLevel == 0 {
		c.MinLevel = LevelInfo
	}
	if c.Ring <= 0 {
		c.Ring = 512
	}
	if c.SinkBuffer <= 0 {
		c.SinkBuffer = 1024
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
}

// Logger is a concurrency-safe structured event logger. All methods are
// safe for concurrent use; a nil *Logger ignores everything.
type Logger struct {
	cfg Config

	min   atomic.Int32
	seq   atomic.Int64
	total atomic.Int64 // events past the level filter

	mu   sync.Mutex
	ring []Event
	next int

	sinkMu sync.Mutex
	sinks  []*attachedSink
	closed bool
	// finalStats preserves the delivery counters of sinks detached by
	// Close, so SinkStats stays meaningful after shutdown.
	finalStats []SinkStats
}

// New builds a logger from the configuration.
func New(cfg Config) *Logger {
	cfg.defaults()
	l := &Logger{cfg: cfg, ring: make([]Event, 0, cfg.Ring)}
	l.min.Store(int32(cfg.MinLevel))
	return l
}

// SetLevel changes the minimum recorded severity at runtime.
func (l *Logger) SetLevel(lvl Level) {
	if l == nil {
		return
	}
	l.min.Store(int32(lvl))
}

// Enabled reports whether events at lvl would be recorded — hot paths use
// it to skip building field payloads entirely.
func (l *Logger) Enabled(lvl Level) bool {
	if l == nil {
		return false
	}
	return int32(lvl) >= l.min.Load()
}

// Log records one event. The context supplies the trace correlation ID
// (if any); component and name identify the emitter; fields carry the
// structured payload. Use the level helpers (Debug, Info, Warn, Error)
// at call sites.
func (l *Logger) Log(ctx context.Context, lvl Level, component, name string, fields ...Field) {
	l.emit(ctx, lvl, component, name, 0, "", fields)
}

// LogPID is Log with a process attribution.
func (l *Logger) LogPID(ctx context.Context, lvl Level, component, name string, pid int, fields ...Field) {
	l.emit(ctx, lvl, component, name, pid, "", fields)
}

// LogDevice is Log with a device attribution — the registry ID of the
// drive the event concerns (lifecycle edges, placement decisions,
// per-device scheduling).
func (l *Logger) LogDevice(ctx context.Context, lvl Level, component, name, device string, fields ...Field) {
	l.emit(ctx, lvl, component, name, 0, device, fields)
}

// Debug records a debug-level event.
func (l *Logger) Debug(ctx context.Context, component, name string, fields ...Field) {
	l.emit(ctx, LevelDebug, component, name, 0, "", fields)
}

// Info records an info-level event.
func (l *Logger) Info(ctx context.Context, component, name string, fields ...Field) {
	l.emit(ctx, LevelInfo, component, name, 0, "", fields)
}

// Warn records a warn-level event.
func (l *Logger) Warn(ctx context.Context, component, name string, fields ...Field) {
	l.emit(ctx, LevelWarn, component, name, 0, "", fields)
}

// Error records an error-level event.
func (l *Logger) Error(ctx context.Context, component, name string, fields ...Field) {
	l.emit(ctx, LevelError, component, name, 0, "", fields)
}

func (l *Logger) emit(ctx context.Context, lvl Level, component, name string, pid int, device string, fields []Field) {
	if !l.Enabled(lvl) {
		return
	}
	ev := Event{
		Seq:       l.seq.Add(1),
		Time:      l.cfg.Clock(),
		Level:     lvl,
		Component: component,
		Name:      name,
		PID:       pid,
		Device:    device,
		Fields:    fields,
	}
	if ctx != nil {
		ev.Job = trace.JobFrom(ctx)
	}
	l.total.Add(1)

	l.mu.Lock()
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, ev)
	} else {
		l.ring[l.next] = ev
		l.next = (l.next + 1) % len(l.ring)
	}
	l.mu.Unlock()

	l.sinkMu.Lock()
	sinks := l.sinks
	l.sinkMu.Unlock()
	for _, s := range sinks {
		select {
		case s.queue <- ev:
		default:
			s.dropped.Add(1)
		}
	}
}

// Recent returns the retained ring of events, oldest first.
func (l *Logger) Recent() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, len(l.ring))
	out = append(out, l.ring[l.next:]...)
	out = append(out, l.ring[:l.next]...)
	return out
}

// Total counts all events recorded past the level filter, including those
// evicted from the ring.
func (l *Logger) Total() int64 {
	if l == nil {
		return 0
	}
	return l.total.Load()
}

// Attach registers a sink under the given name and starts its delivery
// goroutine. buffer bounds the sink's private queue (<=0 takes
// Config.SinkBuffer); when full, events are dropped for this sink only.
// Events already emitted are not replayed. Attaching to a nil or closed
// logger is a no-op.
func (l *Logger) Attach(name string, s Sink, buffer int) {
	if l == nil || s == nil {
		return
	}
	if buffer <= 0 {
		buffer = l.cfg.SinkBuffer
	}
	l.sinkMu.Lock()
	defer l.sinkMu.Unlock()
	if l.closed {
		return
	}
	as := &attachedSink{name: name, sink: s, queue: make(chan Event, buffer)}
	as.done.Add(1)
	go as.run()
	l.sinks = append(l.sinks, as)
}

// Close stops delivery: every queued event is flushed to its sink, sink
// goroutines exit, and sinks that implement io.Closer are closed. Close
// is idempotent; emission after Close still feeds the in-memory ring but
// reaches no sink.
func (l *Logger) Close() error {
	if l == nil {
		return nil
	}
	l.sinkMu.Lock()
	sinks := l.sinks
	l.sinks = nil
	l.closed = true
	l.sinkMu.Unlock()
	var first error
	for _, s := range sinks {
		close(s.queue)
		s.done.Wait()
		if err := s.close(); err != nil && first == nil {
			first = err
		}
	}
	if len(sinks) > 0 {
		final := statsOf(sinks)
		l.sinkMu.Lock()
		l.finalStats = append(l.finalStats, final...)
		l.sinkMu.Unlock()
	}
	return first
}

// SinkStats describes one attached sink's delivery counters.
type SinkStats struct {
	// Name is the label the sink was attached under.
	Name string `json:"name"`
	// Written counts events delivered to the sink.
	Written int64 `json:"written"`
	// Dropped counts events discarded because the sink's queue was full —
	// the non-blocking backpressure policy.
	Dropped int64 `json:"dropped"`
	// Errors counts WriteEvent failures (the event is counted written).
	Errors int64 `json:"errors,omitempty"`
}

// SinkStats returns per-sink delivery counters, in attachment order. Sinks
// detached by Close keep their final counters.
func (l *Logger) SinkStats() []SinkStats {
	if l == nil {
		return nil
	}
	l.sinkMu.Lock()
	sinks := append([]*attachedSink(nil), l.sinks...)
	out := append([]SinkStats(nil), l.finalStats...)
	l.sinkMu.Unlock()
	return append(out, statsOf(sinks)...)
}

func statsOf(sinks []*attachedSink) []SinkStats {
	out := make([]SinkStats, len(sinks))
	for i, s := range sinks {
		out[i] = SinkStats{
			Name:    s.name,
			Written: s.written.Load(),
			Dropped: s.dropped.Load(),
			Errors:  s.errors.Load(),
		}
	}
	return out
}
