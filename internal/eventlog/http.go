package eventlog

import (
	"net/http"
	"strconv"
)

// HTTPHandler serves the logger's in-memory ring as /events.json: a JSON
// document with the total event count, per-sink delivery counters, and the
// retained events (flat JSON-lines objects, oldest first).
//
// Query parameters:
//
//	?level=warn   only events at or above the level
//	?n=100        only the most recent n matching events
//
// A nil *Logger serves an empty document, so the telemetry mux can mount
// the endpoint unconditionally.
func (l *Logger) HTTPHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		events := l.Recent()
		if lv := r.URL.Query().Get("level"); lv != "" {
			min, err := ParseLevel(lv)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			kept := events[:0]
			for _, ev := range events {
				if ev.Level >= min {
					kept = append(kept, ev)
				}
			}
			events = kept
		}
		if ns := r.URL.Query().Get("n"); ns != "" {
			n, err := strconv.Atoi(ns)
			if err != nil || n < 0 {
				http.Error(w, "eventlog: n must be a non-negative integer", http.StatusBadRequest)
				return
			}
			if n < len(events) {
				events = events[len(events)-n:]
			}
		}

		// Hand-rolled rendering keeps the per-event bytes identical to the
		// file sink's JSON lines.
		buf := make([]byte, 0, 1024+256*len(events))
		buf = append(buf, `{"total":`...)
		buf = strconv.AppendInt(buf, l.Total(), 10)
		buf = append(buf, `,"retained":`...)
		buf = strconv.AppendInt(buf, int64(len(events)), 10)
		buf = append(buf, `,"sinks":[`...)
		for i, s := range l.SinkStats() {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = append(buf, `{"name":`...)
			buf = appendString(buf, s.Name)
			buf = append(buf, `,"written":`...)
			buf = strconv.AppendInt(buf, s.Written, 10)
			buf = append(buf, `,"dropped":`...)
			buf = strconv.AppendInt(buf, s.Dropped, 10)
			buf = append(buf, `,"errors":`...)
			buf = strconv.AppendInt(buf, s.Errors, 10)
			buf = append(buf, '}')
		}
		buf = append(buf, `],"events":[`...)
		for i, ev := range events {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = ev.AppendJSON(buf)
		}
		buf = append(buf, "]}\n"...)
		_, _ = w.Write(buf)
	})
}
