package eventlog

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/kfrida1/csdinf/internal/trace"
)

// fixedClock returns a deterministic, strictly increasing clock.
func fixedClock() func() time.Time {
	t0 := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	var n int64
	var mu sync.Mutex
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		n++
		return t0.Add(time.Duration(n) * time.Millisecond)
	}
}

func TestEventJSONGolden(t *testing.T) {
	ev := Event{
		Seq:       7,
		Time:      time.Date(2026, 8, 5, 12, 0, 0, 123456789, time.UTC),
		Level:     LevelWarn,
		Component: "serve",
		Name:      "queue.full",
		Job:       42,
		PID:       1337,
		Device:    "csd-003",
		Fields: []Field{
			F("depth", 64),
			F("wait_ns", 1500*time.Nanosecond),
			F("ratio", 0.25),
			F("blocked", true),
			F("err", errors.New(`boom "quoted"`)),
		},
	}
	got := string(ev.AppendJSON(nil))
	want := `{"seq":7,"ts":"2026-08-05T12:00:00.123456789Z","level":"warn","component":"serve",` +
		`"event":"queue.full","job":42,"pid":1337,"device":"csd-003","depth":64,"wait_ns":1500,` +
		`"ratio":0.25,"blocked":true,"err":"boom \"quoted\""}`
	if got != want {
		t.Errorf("AppendJSON:\n got %s\nwant %s", got, want)
	}
	// The line must round-trip through a standard JSON decoder.
	var m map[string]any
	if err := json.Unmarshal([]byte(got), &m); err != nil {
		t.Fatalf("line is not valid JSON: %v", err)
	}
	if m["job"] != float64(42) || m["wait_ns"] != float64(1500) {
		t.Errorf("decoded fields wrong: %v", m)
	}
}

func TestLevelsAndFiltering(t *testing.T) {
	l := New(Config{MinLevel: LevelWarn, Clock: fixedClock()})
	ctx := context.Background()
	l.Debug(ctx, "c", "dropped.debug")
	l.Info(ctx, "c", "dropped.info")
	l.Warn(ctx, "c", "kept.warn")
	l.Error(ctx, "c", "kept.error")
	if got := l.Total(); got != 2 {
		t.Fatalf("Total = %d, want 2", got)
	}
	rec := l.Recent()
	if len(rec) != 2 || rec[0].Name != "kept.warn" || rec[1].Name != "kept.error" {
		t.Fatalf("Recent = %+v", rec)
	}
	// Sequence numbers have no gaps: filtered events are never assigned one.
	if rec[0].Seq != 1 || rec[1].Seq != 2 {
		t.Errorf("seq gap after filtering: %d, %d", rec[0].Seq, rec[1].Seq)
	}
	if l.Enabled(LevelInfo) || !l.Enabled(LevelWarn) {
		t.Error("Enabled disagrees with MinLevel")
	}
	l.SetLevel(LevelDebug)
	if !l.Enabled(LevelDebug) {
		t.Error("SetLevel did not lower the threshold")
	}
}

func TestRingEviction(t *testing.T) {
	l := New(Config{Ring: 4, Clock: fixedClock()})
	for i := 0; i < 10; i++ {
		l.Info(context.Background(), "c", fmt.Sprintf("e%d", i))
	}
	rec := l.Recent()
	if len(rec) != 4 {
		t.Fatalf("retained %d, want 4", len(rec))
	}
	for i, ev := range rec {
		if want := fmt.Sprintf("e%d", 6+i); ev.Name != want {
			t.Errorf("ring[%d] = %s, want %s", i, ev.Name, want)
		}
	}
	if l.Total() != 10 {
		t.Errorf("Total = %d, want 10", l.Total())
	}
}

func TestJobCorrelationFromContext(t *testing.T) {
	l := New(Config{Clock: fixedClock()})
	ctx := trace.WithJob(context.Background(), 99)
	l.Info(ctx, "engine", "classified")
	l.LogPID(ctx, LevelWarn, "detect", "window.alert", 4242, F("p", 0.97))
	rec := l.Recent()
	if rec[0].Job != 99 {
		t.Errorf("Job = %d, want 99", rec[0].Job)
	}
	if rec[1].Job != 99 || rec[1].PID != 4242 {
		t.Errorf("LogPID event = %+v", rec[1])
	}
	// A nil logger ignores everything without panicking.
	var nilLog *Logger
	nilLog.Info(ctx, "c", "x")
	nilLog.LogPID(ctx, LevelError, "c", "x", 1)
	if nilLog.Enabled(LevelError) || nilLog.Total() != 0 || nilLog.Recent() != nil {
		t.Error("nil logger not inert")
	}
	if err := nilLog.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
}

func TestFileSinkJSONLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	sink, err := NewFileSink(path)
	if err != nil {
		t.Fatal(err)
	}
	l := New(Config{Clock: fixedClock()})
	l.Attach("file", sink, 0)
	for i := 0; i < 5; i++ {
		l.Info(context.Background(), "c", "tick", F("i", i))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var lines int
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %d invalid JSON: %v", lines, err)
		}
		if m["i"] != float64(lines) {
			t.Errorf("line %d: i = %v", lines, m["i"])
		}
		lines++
	}
	if lines != 5 {
		t.Errorf("file has %d lines, want 5", lines)
	}
	// Close detaches sinks but preserves their final delivery counters.
	stats := l.SinkStats()
	if len(stats) != 1 || stats[0].Name != "file" || stats[0].Written != 5 || stats[0].Dropped != 0 {
		t.Errorf("SinkStats after Close = %+v", stats)
	}
}

// blockingSink blocks every WriteEvent until released.
type blockingSink struct {
	release chan struct{}
	got     []Event
	mu      sync.Mutex
}

func (b *blockingSink) WriteEvent(ev Event) error {
	<-b.release
	b.mu.Lock()
	b.got = append(b.got, ev)
	b.mu.Unlock()
	return nil
}

func TestSlowSinkDropsWithoutBlocking(t *testing.T) {
	blocked := &blockingSink{release: make(chan struct{})}
	l := New(Config{Clock: fixedClock()})
	l.Attach("slow", blocked, 1)
	capture := &CaptureSink{}
	l.Attach("fast", capture, 128)

	done := make(chan struct{})
	go func() {
		for i := 0; i < 64; i++ {
			l.Info(context.Background(), "c", "burst", F("i", i))
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("emission blocked on a slow sink")
	}
	close(blocked.release)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	blocked.mu.Lock()
	delivered := len(blocked.got)
	blocked.mu.Unlock()
	dropped := 64 - delivered
	if dropped < 32 {
		t.Errorf("slow sink dropped %d of 64, expected most of the burst dropped", dropped)
	}
	// The healthy sink saw everything despite its sibling stalling.
	if got := len(capture.Events()); got != 64 {
		t.Errorf("fast sink received %d of 64", got)
	}
}

// failingSink always errors.
type failingSink struct{}

func (failingSink) WriteEvent(Event) error { return errors.New("disk full") }

func TestSinkErrorsCounted(t *testing.T) {
	l := New(Config{Clock: fixedClock()})
	l.Attach("bad", failingSink{}, 0)
	l.Info(context.Background(), "c", "x")
	l.Info(context.Background(), "c", "y")
	// Wait for delivery before reading stats.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := l.SinkStats()
		if len(st) == 1 && st[0].Written == 2 {
			if st[0].Errors != 2 {
				t.Errorf("Errors = %d, want 2", st[0].Errors)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sink never drained: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestHTTPHandler(t *testing.T) {
	l := New(Config{MinLevel: LevelDebug, Ring: 64, Clock: fixedClock()})
	ctx := context.Background()
	l.Debug(ctx, "csd", "transfer.p2p", F("bytes", 400))
	l.Info(ctx, "serve", "dispatch", F("device", "0"))
	l.Warn(ctx, "detect", "window.alert", F("p", 0.9))
	l.Error(ctx, "detect", "mitigation.block", F("p", 0.99))

	srv := httptest.NewServer(l.HTTPHandler())
	defer srv.Close()
	get := func(q string) map[string]any {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + q)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", q, resp.StatusCode)
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		var doc map[string]any
		if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
			t.Fatalf("GET %s: invalid JSON: %v\n%s", q, err, buf.String())
		}
		return doc
	}

	doc := get("/events.json")
	if doc["total"] != float64(4) || len(doc["events"].([]any)) != 4 {
		t.Fatalf("unfiltered doc = %v", doc)
	}
	doc = get("/events.json?level=warn")
	if evs := doc["events"].([]any); len(evs) != 2 {
		t.Fatalf("level=warn returned %d events", len(evs))
	}
	doc = get("/events.json?n=1")
	evs := doc["events"].([]any)
	if len(evs) != 1 || evs[0].(map[string]any)["event"] != "mitigation.block" {
		t.Fatalf("n=1 = %v", evs)
	}
	if resp, err := srv.Client().Get(srv.URL + "?level=bogus"); err != nil || resp.StatusCode != 400 {
		t.Errorf("bad level: %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}

	// A nil logger still serves a valid, empty document.
	var nilLog *Logger
	nilSrv := httptest.NewServer(nilLog.HTTPHandler())
	defer nilSrv.Close()
	resp, err := nilSrv.Client().Get(nilSrv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var empty struct {
		Total  int     `json:"total"`
		Events []Event `json:"-"`
		Raw    []any   `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&empty); err != nil {
		t.Fatalf("nil logger doc invalid: %v", err)
	}
	if empty.Total != 0 || len(empty.Raw) != 0 {
		t.Errorf("nil logger doc = %+v", empty)
	}
}

// TestConcurrentEmission pins concurrency safety: many writers, a reader,
// a sink, and the HTTP handler all running under -race.
func TestConcurrentEmission(t *testing.T) {
	l := New(Config{Ring: 128})
	capture := &CaptureSink{}
	l.Attach("cap", capture, 0)
	srv := httptest.NewServer(l.HTTPHandler())
	defer srv.Close()

	const writers = 8
	const perWriter = 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := trace.WithJob(context.Background(), int64(w+1))
			for i := 0; i < perWriter; i++ {
				l.Info(ctx, "stress", "tick", F("writer", w), F("i", i))
			}
		}(w)
	}
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for i := 0; i < 50; i++ {
			_ = l.Recent()
			_ = l.SinkStats()
			resp, err := srv.Client().Get(srv.URL)
			if err == nil {
				resp.Body.Close()
			}
		}
	}()
	wg.Wait()
	<-readerDone
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if got := l.Total(); got != writers*perWriter {
		t.Errorf("Total = %d, want %d", got, writers*perWriter)
	}
	// Every event has a unique sequence number.
	seen := make(map[int64]bool)
	for _, ev := range capture.Events() {
		if seen[ev.Seq] {
			t.Fatalf("duplicate seq %d", ev.Seq)
		}
		seen[ev.Seq] = true
	}
}

func TestParseLevel(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Level
	}{{"debug", LevelDebug}, {"info", LevelInfo}, {"warn", LevelWarn}, {"error", LevelError}} {
		got, err := ParseLevel(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseLevel(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted nonsense")
	}
}
