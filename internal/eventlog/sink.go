package eventlog

import (
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// Sink receives events from a Logger. Each attached sink is serviced by
// its own delivery goroutine reading a bounded queue, so WriteEvent is
// never called concurrently for one sink and a slow sink cannot block the
// emitting goroutines — excess events are dropped for that sink and
// counted (see SinkStats).
//
// A sink that also implements io.Closer is closed by Logger.Close after
// its queue drains.
type Sink interface {
	WriteEvent(Event) error
}

// attachedSink is one registered sink plus its delivery machinery.
type attachedSink struct {
	name  string
	sink  Sink
	queue chan Event
	done  sync.WaitGroup

	written atomic.Int64
	dropped atomic.Int64
	errors  atomic.Int64
}

// run is the delivery goroutine: drains the queue until it is closed.
func (s *attachedSink) run() {
	defer s.done.Done()
	for ev := range s.queue {
		if err := s.sink.WriteEvent(ev); err != nil {
			s.errors.Add(1)
		}
		s.written.Add(1)
	}
}

func (s *attachedSink) close() error {
	if c, ok := s.sink.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// writerSink renders events as JSON lines to an io.Writer, one Write call
// per event so lines stay whole even on unbuffered destinations.
type writerSink struct {
	w io.Writer
	c io.Closer // nil when the writer is not owned
}

// NewWriterSink returns a sink writing one JSON line per event to w. The
// writer is not closed by Logger.Close.
func NewWriterSink(w io.Writer) Sink { return &writerSink{w: w} }

// NewFileSink creates (or truncates) a JSON-lines event file at path. The
// file is closed by Logger.Close.
func NewFileSink(path string) (Sink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("eventlog: create sink file: %w", err)
	}
	return &writerSink{w: f, c: f}, nil
}

func (s *writerSink) WriteEvent(ev Event) error {
	line := ev.AppendJSON(make([]byte, 0, 256))
	line = append(line, '\n')
	_, err := s.w.Write(line)
	return err
}

func (s *writerSink) Close() error {
	if s.c == nil {
		return nil
	}
	return s.c.Close()
}

// CaptureSink retains every event it receives — a test and tooling helper.
// Its accessors are safe for concurrent use with delivery.
type CaptureSink struct {
	mu     sync.Mutex
	events []Event
}

// WriteEvent implements Sink.
func (c *CaptureSink) WriteEvent(ev Event) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, ev)
	return nil
}

// Events returns the captured events in delivery order.
func (c *CaptureSink) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}
