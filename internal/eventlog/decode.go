package eventlog

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// DecodeJSON parses one flat JSON-lines object produced by AppendJSON back
// into an Event. Fixed keys (seq, ts, level, component, event, job, pid,
// device) populate the struct fields; every other key becomes a Field,
// preserving wire order. Decoded field values are string, bool, nil, or json.Number —
// the JSON value domain; re-encoding a decoded event reproduces the wire
// bytes, which is how the fuzz harness pins the format.
//
// Because the format is flat, an event whose Field key collides with a
// fixed key does not round-trip; emitters own their key space and the
// fixed names are reserved.
func DecodeJSON(data []byte) (Event, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	if err := expectDelim(dec, '{'); err != nil {
		return Event{}, err
	}
	var e Event
	seen := map[string]bool{}
	for dec.More() {
		tok, err := dec.Token()
		if err != nil {
			return Event{}, fmt.Errorf("eventlog: decode key: %w", err)
		}
		key, ok := tok.(string)
		if !ok {
			return Event{}, fmt.Errorf("eventlog: decode: non-string key %v", tok)
		}
		val, err := decodeValue(dec)
		if err != nil {
			return Event{}, fmt.Errorf("eventlog: decode %q: %w", key, err)
		}
		switch key {
		case "seq", "ts", "level", "component", "event":
			seen[key] = true
		}
		switch key {
		case "seq":
			e.Seq, err = asInt64(val)
		case "ts":
			var s string
			if s, err = asString(val); err == nil {
				e.Time, err = time.Parse(time.RFC3339Nano, s)
			}
		case "level":
			var s string
			if s, err = asString(val); err == nil {
				e.Level, err = ParseLevel(s)
			}
		case "component":
			e.Component, err = asString(val)
		case "event":
			e.Name, err = asString(val)
		case "job":
			e.Job, err = asInt64(val)
		case "pid":
			var pid int64
			if pid, err = asInt64(val); err == nil {
				e.PID = int(pid)
			}
		case "device":
			e.Device, err = asString(val)
		default:
			e.Fields = append(e.Fields, Field{Key: key, Value: val})
		}
		if err != nil {
			return Event{}, fmt.Errorf("eventlog: decode %q: %w", key, err)
		}
	}
	if err := expectDelim(dec, '}'); err != nil {
		return Event{}, err
	}
	if _, err := dec.Token(); err != io.EOF {
		return Event{}, fmt.Errorf("eventlog: decode: trailing data after event object")
	}
	// AppendJSON always writes these five; their absence means the input
	// is not an event line.
	for _, key := range []string{"seq", "ts", "level", "component", "event"} {
		if !seen[key] {
			return Event{}, fmt.Errorf("eventlog: decode: missing required key %q", key)
		}
	}
	return e, nil
}

func expectDelim(dec *json.Decoder, want json.Delim) error {
	tok, err := dec.Token()
	if err != nil {
		return fmt.Errorf("eventlog: decode: %w", err)
	}
	if d, ok := tok.(json.Delim); !ok || d != want {
		return fmt.Errorf("eventlog: decode: got %v, want %v", tok, want)
	}
	return nil
}

// decodeValue reads one scalar value token. The encoder emits a flat
// object — nested arrays or objects are a format violation.
func decodeValue(dec *json.Decoder) (any, error) {
	tok, err := dec.Token()
	if err != nil {
		return nil, err
	}
	switch v := tok.(type) {
	case string, bool, json.Number, nil:
		return v, nil
	case json.Delim:
		return nil, fmt.Errorf("nested %v value in flat event object", v)
	default:
		return nil, fmt.Errorf("unsupported token %T", tok)
	}
}

func asString(v any) (string, error) {
	s, ok := v.(string)
	if !ok {
		return "", fmt.Errorf("got %T, want string", v)
	}
	return s, nil
}

func asInt64(v any) (int64, error) {
	n, ok := v.(json.Number)
	if !ok {
		return 0, fmt.Errorf("got %T, want number", v)
	}
	return n.Int64()
}
