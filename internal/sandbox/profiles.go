package sandbox

import (
	"fmt"
	"hash/fnv"
	"math/rand"
)

// Shared building blocks. Two deliberate ambiguity channels keep the
// learning problem realistically hard (the paper's model peaks at 0.9833,
// not 1.0):
//
//  1. Ransomware reconnaissance is *identical* to benign application
//     startup (droppers mimic legitimate installers), so sliding windows
//     taken entirely from the first moments of an infection carry no
//     signal — the false-negative channel.
//  2. Benign archivers creating encrypted archives run the *same*
//     open→read→encrypt→write→move file cycle as ransomware, differing
//     only in the absence of service tampering — the false-positive
//     channel.

func sysNoise() []int {
	return ids("GetTickCount", "QueryPerformanceCounter", "HeapAlloc",
		"HeapFree", "GetModuleHandleW", "GetProcAddress", "GetLastError",
		"LoadLibraryW", "FreeLibrary", "NtClose")
}

func guiNoise() []int {
	return ids("GetMessageW", "PeekMessageW", "DispatchMessageW",
		"TranslateMessage", "DefWindowProcW", "SendMessageW", "GetKeyState",
		"GetCursorPos", "ShowWindow", "Sleep")
}

func fileNoise() []int {
	return ids("GetFileAttributesW", "NtQueryInformationFile",
		"SetFilePointerEx", "GetFileSize", "NtClose", "HeapAlloc")
}

func regReadMotif() Motif {
	return Motif{Seq: ids("RegOpenKeyExW", "RegQueryValueExW", "RegCloseKey"), Weight: 2}
}

func fileReadMotif() Motif {
	return Motif{Seq: ids("CreateFileW", "GetFileSize", "ReadFile", "ReadFile", "NtClose"), Weight: 3}
}

func fileWriteMotif() Motif {
	return Motif{Seq: ids("CreateFileW", "WriteFile", "FlushFileBuffers", "NtClose"), Weight: 2}
}

func enumMotif() Motif {
	return Motif{
		Seq:    ids("FindFirstFileExW", "GetFileAttributesW", "FindNextFileW", "FindNextFileW", "FindClose"),
		Weight: 4,
	}
}

// encryptionMotif is the file-encryption cycle. It is shared verbatim by
// the ransomware encryption phase and the benign archiver's
// encrypted-archive phase (ambiguity channel 2). Modern variants use the
// CNG stack instead of classic CryptoAPI.
func encryptionMotif(useCNG bool) Motif {
	if useCNG {
		return Motif{
			Seq: ids("NtCreateFile", "NtReadFile", "BCryptEncrypt",
				"NtWriteFile", "SetEndOfFile", "NtClose", "MoveFileWithProgressW"),
			Weight: 5,
		}
	}
	return Motif{
		Seq: ids("CreateFileW", "ReadFile", "CryptEncrypt", "WriteFile",
			"SetEndOfFile", "NtClose", "MoveFileW"),
		Weight: 5,
	}
}

// startupPhase is the shared benign-looking opening of every process:
// module loading, registry probing, first file reads. Ransomware recon
// (ambiguity channel 1) uses exactly this phase.
func startupPhase(name string, frac float64) Phase {
	return Phase{
		Name: name, Frac: frac,
		Motifs:    []Motif{regReadMotif(), fileReadMotif()},
		Noise:     append(sysNoise(), guiNoise()...),
		MotifProb: 0.3,
	}
}

// RansomwareProfile builds the behaviour profile of one variant of a
// family. Variant indices run [0, family.Variants); each variant gets
// deterministic perturbations (crypto stack choice, motif weights, phase
// proportions) so the 76 variants produce recognizably related but
// distinct traces, the way real family variants differ.
func RansomwareProfile(familyName string, variant int) (*Profile, error) {
	fam, err := FamilyByName(familyName)
	if err != nil {
		return nil, err
	}
	if variant < 0 || variant >= fam.Variants {
		return nil, fmt.Errorf("sandbox: family %s has %d variants, requested %d",
			fam.Name, fam.Variants, variant)
	}
	rng := rand.New(rand.NewSource(profileSeed(fam.Name, variant)))

	useCNG := rng.Float64() < 0.5
	jitter := func(base float64) float64 { return base * (0.85 + 0.3*rng.Float64()) }

	keygenMotif := Motif{
		Seq:    ids("CryptAcquireContextW", "CryptGenKey", "CryptExportKey", "CryptGenRandom"),
		Weight: 3,
	}
	if useCNG {
		keygenMotif.Seq = ids("BCryptOpenAlgorithmProvider",
			"BCryptGenerateSymmetricKey", "BCryptGenRandom", "NCryptCreatePersistedKey")
	}
	shadowMotif := Motif{
		// Shadow-copy deletion and service tampering surface as
		// service-control plus process-launch activity in Cuckoo traces —
		// the discriminative behaviour benign archivers never show.
		Seq:    ids("OpenSCManagerW", "OpenServiceW", "ControlService", "CreateProcessW", "NtClose"),
		Weight: 1.5,
	}
	persistMotif := Motif{
		Seq:    ids("RegOpenKeyExW", "RegSetValueExW", "RegCloseKey", "CopyFileW"),
		Weight: 2,
	}
	antiDebugMotif := Motif{
		Seq:    ids("IsDebuggerPresent", "CheckRemoteDebuggerPresent", "GetTickCount", "Sleep"),
		Weight: 2.5,
	}
	mutexMotif := Motif{
		Seq:    ids("CreateMutexW", "GetLastError", "WaitForSingleObject"),
		Weight: 1,
	}
	noteMotif := Motif{
		Seq:    ids("CreateFileW", "WriteFile", "NtClose", "SetClipboardData"),
		Weight: 2,
	}
	propagationMotif := Motif{
		Seq: ids("WSAStartup", "socket", "connect", "send", "recv",
			"WriteProcessMemory", "CreateRemoteThread", "closesocket"),
		Weight: 3,
	}
	c2Motif := Motif{
		Seq:    ids("getaddrinfo", "socket", "connect", "send", "recv", "closesocket"),
		Weight: 2,
	}

	phases := []Phase{
		// Ambiguity channel 1: the dropper's opening moments look exactly
		// like a legitimate application starting up. Windows drawn entirely
		// from here are labelled ransomware yet carry benign content.
		startupPhase("recon", jitter(0.03)),
		{
			Name: "persistence", Frac: jitter(0.05),
			Motifs:    []Motif{persistMotif, mutexMotif, antiDebugMotif},
			Noise:     sysNoise(),
			MotifProb: 0.45,
		},
		{
			Name: "keygen", Frac: jitter(0.06),
			Motifs:    []Motif{keygenMotif, c2Motif},
			Noise:     sysNoise(),
			MotifProb: 0.5,
		},
		{
			Name: "enumeration", Frac: jitter(0.12),
			Motifs:    []Motif{enumMotif()},
			Noise:     fileNoise(),
			MotifProb: 0.6,
		},
		{
			Name: "encryption", Frac: 0.55,
			Motifs:    []Motif{encryptionMotif(useCNG), enumMotif(), shadowMotif},
			Noise:     fileNoise(),
			MotifProb: 0.75,
		},
		{
			// Ransom notes are dropped per directory while encryption is
			// still running, so note windows keep carrying the encryption
			// cycle.
			Name: "note", Frac: jitter(0.05),
			Motifs:    []Motif{noteMotif, encryptionMotif(useCNG)},
			Noise:     fileNoise(),
			MotifProb: 0.6,
		},
	}
	if fam.SelfPropagates {
		phases = append(phases, Phase{
			Name: "propagation", Frac: jitter(0.12),
			Motifs:    []Motif{propagationMotif, c2Motif},
			Noise:     sysNoise(),
			MotifProb: 0.6,
		})
	}

	return &Profile{
		Name:       fmt.Sprintf("%s.v%d", fam.Name, variant),
		Ransomware: true,
		Phases:     phases,
	}, nil
}

// BenignProfile builds the behaviour profile of one of the 30 benign apps.
func BenignProfile(app string) (*Profile, error) {
	arch, err := ArchetypeOf(app)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(profileSeed(app, 0)))
	jitter := func(base float64) float64 { return base * (0.85 + 0.3*rng.Float64()) }

	browseMotif := Motif{
		Seq: ids("getaddrinfo", "socket", "connect", "WSASend", "WSARecv",
			"WSARecv", "closesocket"),
		Weight: 4,
	}
	httpMotif := Motif{
		Seq: ids("InternetOpenW", "InternetConnectW", "HttpOpenRequestW",
			"HttpSendRequestW", "InternetReadFile", "InternetCloseHandle"),
		Weight: 3,
	}
	regWriteMotif := Motif{
		Seq:    ids("RegCreateKeyExW", "RegSetValueExW", "RegCloseKey"),
		Weight: 1,
	}
	// Benign crypto: signature verification and password-vault hashing —
	// crypto-adjacent but distinguishable from bulk encryption.
	hashVerifyMotif := Motif{
		Seq:    ids("CryptAcquireContextW", "CryptCreateHash", "CryptHashData", "CryptGetHashParam", "CryptDestroyHash"),
		Weight: 2,
	}
	mediaReadMotif := Motif{
		Seq:    ids("ReadFile", "ReadFile", "ReadFile", "SetFilePointerEx"),
		Weight: 4,
	}

	var phases []Phase
	switch arch {
	case ArchFileManager:
		phases = []Phase{
			startupPhase("startup", jitter(0.1)),
			{Name: "scan", Frac: jitter(0.55), Motifs: []Motif{enumMotif(), fileReadMotif()}, Noise: guiNoise(), MotifProb: 0.55},
			{Name: "interact", Frac: 0.35, Motifs: []Motif{fileReadMotif(), fileWriteMotif()}, Noise: guiNoise(), MotifProb: 0.25},
		}
	case ArchBrowser:
		phases = []Phase{
			startupPhase("startup", jitter(0.1)),
			{Name: "browse", Frac: jitter(0.65), Motifs: []Motif{browseMotif, httpMotif, fileWriteMotif()}, Noise: guiNoise(), MotifProb: 0.5},
			{Name: "cache", Frac: 0.25, Motifs: []Motif{fileWriteMotif(), fileReadMotif()}, Noise: guiNoise(), MotifProb: 0.35},
		}
	case ArchEditor:
		phases = []Phase{
			startupPhase("startup", jitter(0.12)),
			{Name: "edit", Frac: jitter(0.6), Motifs: []Motif{fileReadMotif()}, Noise: guiNoise(), MotifProb: 0.12},
			{Name: "save", Frac: 0.28, Motifs: []Motif{fileWriteMotif(), fileReadMotif()}, Noise: guiNoise(), MotifProb: 0.3},
		}
	case ArchMediaPlayer:
		phases = []Phase{
			startupPhase("startup", jitter(0.1)),
			{Name: "play", Frac: 0.9, Motifs: []Motif{mediaReadMotif}, Noise: guiNoise(), MotifProb: 0.5},
		}
	case ArchArchiver:
		phases = []Phase{
			startupPhase("startup", jitter(0.08)),
			{Name: "scan", Frac: jitter(0.22), Motifs: []Motif{enumMotif()}, Noise: sysNoise(), MotifProb: 0.5},
			{Name: "compress", Frac: jitter(0.48), Motifs: []Motif{fileReadMotif(), fileWriteMotif()}, Noise: sysNoise(), MotifProb: 0.6},
			// Ambiguity channel 2: creating an encrypted archive runs the
			// very same file-encryption cycle as ransomware (same motif,
			// same background noise) — only the service tampering is
			// absent. Windows from here are labelled benign yet look
			// malicious.
			{Name: "encrypt-archive", Frac: 0.22,
				Motifs:    []Motif{encryptionMotif(false), enumMotif()},
				Noise:     fileNoise(),
				MotifProb: 0.75},
		}
	case ArchInstaller:
		phases = []Phase{
			{Name: "verify", Frac: jitter(0.2), Motifs: []Motif{hashVerifyMotif, fileReadMotif()}, Noise: sysNoise(), MotifProb: 0.5},
			{Name: "install", Frac: jitter(0.55), Motifs: []Motif{fileWriteMotif(), regWriteMotif, fileReadMotif()}, Noise: sysNoise(), MotifProb: 0.5},
			{Name: "finish", Frac: 0.25, Motifs: []Motif{regWriteMotif}, Noise: guiNoise(), MotifProb: 0.2},
		}
	case ArchNetTool:
		phases = []Phase{
			startupPhase("startup", jitter(0.1)),
			{Name: "transfer", Frac: jitter(0.65), Motifs: []Motif{browseMotif, fileWriteMotif(), fileReadMotif()}, Noise: sysNoise(), MotifProb: 0.55},
			{Name: "idle", Frac: 0.25, Motifs: nil, Noise: guiNoise(), MotifProb: 0},
		}
	case ArchSysUtility:
		phases = []Phase{
			{Name: "probe", Frac: jitter(0.7), Motifs: []Motif{regReadMotif()},
				Noise: ids("GetSystemInfo", "GetNativeSystemInfo", "GetVersionExW",
					"NtDeviceIoControlFile", "GetSystemDirectoryW", "QueryPerformanceCounter",
					"GetTickCount64", "HeapAlloc", "HeapFree"),
				MotifProb: 0.3},
			{Name: "report", Frac: 0.3, Motifs: []Motif{fileWriteMotif()}, Noise: guiNoise(), MotifProb: 0.2},
		}
	default:
		return nil, fmt.Errorf("sandbox: unhandled archetype %v", arch)
	}

	return &Profile{Name: app, Ransomware: false, Phases: phases}, nil
}

// ManualInteractionProfile models a user operating the Windows desktop: GUI
// message pumping, clipboard, occasional file and registry access. The
// paper derives part of its benign corpus from such manual interaction.
func ManualInteractionProfile() *Profile {
	desktopNoise := ids("GetMessageW", "PeekMessageW", "DispatchMessageW",
		"TranslateMessage", "SendMessageW", "PostMessageW", "GetKeyState",
		"GetAsyncKeyState", "GetCursorPos", "SetCursorPos", "ShowWindow",
		"GetForegroundWindow", "Sleep")
	clipboardMotif := Motif{
		Seq:    ids("OpenClipboard", "GetClipboardData", "CloseClipboard"),
		Weight: 2,
	}
	openDocMotif := Motif{
		Seq:    ids("CreateFileW", "ReadFile", "NtClose"),
		Weight: 2,
	}
	return &Profile{
		Name:       "manual-interaction",
		Ransomware: false,
		Phases: []Phase{
			{Name: "desktop", Frac: 1.0,
				Motifs:    []Motif{clipboardMotif, openDocMotif},
				Noise:     desktopNoise,
				MotifProb: 0.12},
		},
	}
}

// profileSeed derives a stable seed from a profile identity.
func profileSeed(name string, variant int) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	h.Write([]byte{byte(variant), byte(variant >> 8)})
	return int64(h.Sum64())
}
