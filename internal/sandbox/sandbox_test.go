package sandbox

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/kfrida1/csdinf/internal/winapi"
)

func TestFamiliesMatchTableII(t *testing.T) {
	want := map[string]struct {
		variants int
		selfProp bool
	}{
		"Ryuk":       {5, true},
		"Lockbit":    {6, true},
		"Teslacrypt": {10, false},
		"Virlock":    {11, false},
		"Cryptowall": {8, false},
		"Cerber":     {9, false},
		"Wannacry":   {7, true},
		"Locky":      {6, false},
		"Chimera":    {9, false},
		"BadRabbit":  {5, true},
	}
	if len(Families) != 10 {
		t.Fatalf("len(Families) = %d, want 10", len(Families))
	}
	for _, f := range Families {
		w, ok := want[f.Name]
		if !ok {
			t.Errorf("unexpected family %q", f.Name)
			continue
		}
		if f.Variants != w.variants {
			t.Errorf("%s variants = %d, want %d", f.Name, f.Variants, w.variants)
		}
		if f.SelfPropagates != w.selfProp {
			t.Errorf("%s self-propagation = %v, want %v", f.Name, f.SelfPropagates, w.selfProp)
		}
		if !f.Encrypts {
			t.Errorf("%s must encrypt (all Table II families do)", f.Name)
		}
	}
	// Table II rows sum to 76 (the prose says 78; we follow the table).
	if got := TotalVariants(); got != 76 {
		t.Errorf("TotalVariants() = %d, want 76", got)
	}
}

func TestFamilyByName(t *testing.T) {
	f, err := FamilyByName("Wannacry")
	if err != nil {
		t.Fatal(err)
	}
	if f.Variants != 7 || !f.SelfPropagates {
		t.Fatalf("Wannacry = %+v", f)
	}
	if _, err := FamilyByName("NotAFamily"); err == nil {
		t.Fatal("FamilyByName(unknown) expected error")
	}
}

func TestThirtyBenignApps(t *testing.T) {
	if len(BenignApps) != 30 {
		t.Fatalf("len(BenignApps) = %d, want 30 (paper Appendix A)", len(BenignApps))
	}
	seen := make(map[string]bool)
	for _, app := range BenignApps {
		if seen[app] {
			t.Errorf("duplicate app %q", app)
		}
		seen[app] = true
		if _, err := ArchetypeOf(app); err != nil {
			t.Errorf("app %q has no archetype: %v", app, err)
		}
	}
	if _, err := ArchetypeOf("Unknown App"); err == nil {
		t.Error("ArchetypeOf(unknown) expected error")
	}
}

func TestArchetypeString(t *testing.T) {
	for a := ArchFileManager; a <= ArchSysUtility; a++ {
		if s := a.String(); strings.HasPrefix(s, "Archetype(") {
			t.Errorf("archetype %d has no name", int(a))
		}
	}
	if Archetype(0).String() != "Archetype(0)" {
		t.Error("invalid archetype formatting broke")
	}
}

func TestRansomwareProfileErrors(t *testing.T) {
	if _, err := RansomwareProfile("NotAFamily", 0); err == nil {
		t.Error("unknown family: expected error")
	}
	if _, err := RansomwareProfile("Ryuk", 5); err == nil {
		t.Error("variant index beyond family count: expected error")
	}
	if _, err := RansomwareProfile("Ryuk", -1); err == nil {
		t.Error("negative variant: expected error")
	}
}

func TestRansomwareProfileStructure(t *testing.T) {
	for _, fam := range Families {
		p, err := RansomwareProfile(fam.Name, 0)
		if err != nil {
			t.Fatalf("%s: %v", fam.Name, err)
		}
		if !p.Ransomware {
			t.Errorf("%s profile not labelled ransomware", fam.Name)
		}
		names := make([]string, len(p.Phases))
		for i, ph := range p.Phases {
			names[i] = ph.Name
		}
		joined := strings.Join(names, ",")
		if !strings.Contains(joined, "encryption") {
			t.Errorf("%s lacks encryption phase: %v", fam.Name, names)
		}
		if fam.SelfPropagates != strings.Contains(joined, "propagation") {
			t.Errorf("%s propagation phase presence = %v, want %v",
				fam.Name, strings.Contains(joined, "propagation"), fam.SelfPropagates)
		}
	}
}

func TestGenerateLengthAndRange(t *testing.T) {
	p, err := RansomwareProfile("Lockbit", 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, length := range []int{1, 100, 997, 5000} {
		trace, err := p.Generate(length, 42)
		if err != nil {
			t.Fatalf("Generate(%d): %v", length, err)
		}
		if len(trace) != length {
			t.Fatalf("Generate(%d) returned %d calls", length, len(trace))
		}
		for i, id := range trace {
			if id < 0 || id >= winapi.VocabSize {
				t.Fatalf("trace[%d] = %d outside vocabulary", i, id)
			}
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	p, err := BenignProfile("Rufus")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Generate(0, 1); err == nil {
		t.Error("Generate(0) expected error")
	}
	empty := &Profile{Name: "empty"}
	if _, err := empty.Generate(10, 1); err == nil {
		t.Error("Generate with no phases expected error")
	}
	bad := &Profile{Name: "bad", Phases: []Phase{{Name: "x", Frac: 1}}}
	if _, err := bad.Generate(10, 1); err == nil {
		t.Error("Generate with empty phase expected error")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p, err := RansomwareProfile("Cerber", 3)
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Generate(500, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Generate(500, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	c, err := p.Generate(500, 8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestVariantsDiffer(t *testing.T) {
	p0, err := RansomwareProfile("Teslacrypt", 0)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := RansomwareProfile("Teslacrypt", 1)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := p0.Generate(1000, 1)
	b, _ := p1.Generate(1000, 1)
	diff := 0
	for i := range a {
		if a[i] != b[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("two variants produced identical traces")
	}
}

func TestRansomwareTraceContainsEncryptionSignal(t *testing.T) {
	p, err := RansomwareProfile("Ryuk", 0)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := p.Generate(4000, 3)
	if err != nil {
		t.Fatal(err)
	}
	crypto := 0
	for _, id := range trace {
		cat, err := winapi.CategoryOf(id)
		if err != nil {
			t.Fatal(err)
		}
		if cat == winapi.CatCrypto {
			crypto++
		}
	}
	// The encryption phase is 55% of the trace with a crypto call in most
	// motif emissions; crypto activity must be prominent.
	if frac := float64(crypto) / float64(len(trace)); frac < 0.03 {
		t.Fatalf("crypto fraction %v too low for a ransomware trace", frac)
	}
}

func TestBenignProfilesAllArchetypes(t *testing.T) {
	for _, app := range BenignApps {
		p, err := BenignProfile(app)
		if err != nil {
			t.Fatalf("%s: %v", app, err)
		}
		if p.Ransomware {
			t.Errorf("%s labelled ransomware", app)
		}
		trace, err := p.Generate(300, 11)
		if err != nil {
			t.Fatalf("%s generate: %v", app, err)
		}
		if len(trace) != 300 {
			t.Fatalf("%s trace length %d", app, len(trace))
		}
	}
	if _, err := BenignProfile("Unknown App"); err == nil {
		t.Error("BenignProfile(unknown) expected error")
	}
}

func TestBenignTracesMostlyNonCrypto(t *testing.T) {
	// Across the benign corpus, crypto activity must stay rare (though not
	// zero: installers and archivers legitimately use CryptoAPI).
	totalCrypto, totalCalls := 0, 0
	for _, app := range BenignApps {
		p, err := BenignProfile(app)
		if err != nil {
			t.Fatal(err)
		}
		trace, err := p.Generate(1000, 5)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range trace {
			cat, _ := winapi.CategoryOf(id)
			if cat == winapi.CatCrypto {
				totalCrypto++
			}
		}
		totalCalls += len(trace)
	}
	frac := float64(totalCrypto) / float64(totalCalls)
	if frac > 0.05 {
		t.Fatalf("benign corpus crypto fraction %v too high", frac)
	}
	if totalCrypto == 0 {
		t.Fatal("benign corpus has zero crypto calls; ambiguity injection missing")
	}
}

func TestManualInteractionProfile(t *testing.T) {
	p := ManualInteractionProfile()
	if p.Ransomware {
		t.Fatal("manual interaction labelled ransomware")
	}
	trace, err := p.Generate(200, 1)
	if err != nil {
		t.Fatal(err)
	}
	gui := 0
	for _, id := range trace {
		cat, _ := winapi.CategoryOf(id)
		if cat == winapi.CatGUI {
			gui++
		}
	}
	if frac := float64(gui) / float64(len(trace)); frac < 0.4 {
		t.Fatalf("manual interaction GUI fraction %v too low", frac)
	}
}

// Property: generation never emits an out-of-vocabulary ID and always honours
// the requested length, for any profile and seed.
func TestPropGenerateWellFormed(t *testing.T) {
	f := func(famIdx uint8, variant uint8, seed int64, lenRaw uint16) bool {
		fam := Families[int(famIdx)%len(Families)]
		p, err := RansomwareProfile(fam.Name, int(variant)%fam.Variants)
		if err != nil {
			return false
		}
		length := int(lenRaw)%2000 + 1
		trace, err := p.Generate(length, seed)
		if err != nil || len(trace) != length {
			return false
		}
		for _, id := range trace {
			if id < 0 || id >= winapi.VocabSize {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGenerateRansomwareTrace(b *testing.B) {
	p, err := RansomwareProfile("Lockbit", 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Generate(4000, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
