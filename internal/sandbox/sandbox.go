// Package sandbox generates Windows API-call traces that stand in for the
// paper's Cuckoo Sandbox runs (Appendix A).
//
// The paper detonated 78 variants across ten ransomware families in Cuckoo on
// Windows 10/11 and recorded every API call in order, and likewise captured
// benign traces from 30 popular portable applications plus manual desktop
// interaction. Live detonation is not reproducible here, so this package
// synthesizes traces from behaviour profiles instead: each profile is a
// sequence of phases (reconnaissance, persistence, key generation, file
// enumeration, the encryption loop, ransom note, propagation; or benign
// archetypes like browsing and document editing), and each phase interleaves
// characteristic API motifs with category-weighted background noise.
//
// The substitution preserves what the classifier actually learns from the
// real data: short-range API n-gram structure (e.g. the
// CreateFileW→ReadFile→CryptEncrypt→WriteFile→MoveFileW encryption cycle)
// embedded in realistic, noisy context — including ambiguous stretches
// (benign-looking ransomware reconnaissance, crypto-using benign installers)
// so the learning problem is hard enough that accuracy lands near the paper's
// 0.9833 rather than at a trivial 1.0.
//
// All generation is deterministic given (profile, seed).
package sandbox

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/kfrida1/csdinf/internal/quality"
	"github.com/kfrida1/csdinf/internal/winapi"
)

// Family describes one ransomware family, mirroring the paper's Table II.
type Family struct {
	Name string
	// Variants is the number of distinct variants aggregated by the paper.
	Variants int
	// Encrypts reports file-encryption behaviour (true for every family in
	// the paper; locker-only ransomware is obsolete).
	Encrypts bool
	// SelfPropagates reports worm-like lateral movement.
	SelfPropagates bool
}

// Families reproduces the paper's Table II.
//
// Note: the table rows sum to 76 variants although the paper's prose says
// "78 variants"; we follow the table, the more specific source. The
// discrepancy is recorded in EXPERIMENTS.md.
var Families = []Family{
	{Name: "Ryuk", Variants: 5, Encrypts: true, SelfPropagates: true},
	{Name: "Lockbit", Variants: 6, Encrypts: true, SelfPropagates: true},
	{Name: "Teslacrypt", Variants: 10, Encrypts: true, SelfPropagates: false},
	{Name: "Virlock", Variants: 11, Encrypts: true, SelfPropagates: false},
	{Name: "Cryptowall", Variants: 8, Encrypts: true, SelfPropagates: false},
	{Name: "Cerber", Variants: 9, Encrypts: true, SelfPropagates: false},
	{Name: "Wannacry", Variants: 7, Encrypts: true, SelfPropagates: true},
	{Name: "Locky", Variants: 6, Encrypts: true, SelfPropagates: false},
	{Name: "Chimera", Variants: 9, Encrypts: true, SelfPropagates: false},
	{Name: "BadRabbit", Variants: 5, Encrypts: true, SelfPropagates: true},
}

// TotalVariants returns the number of ransomware variants across families.
func TotalVariants() int {
	n := 0
	for _, f := range Families {
		n += f.Variants
	}
	return n
}

// FamilyByName returns the family record with the given name.
func FamilyByName(name string) (Family, error) {
	for _, f := range Families {
		if f.Name == name {
			return f, nil
		}
	}
	return Family{}, fmt.Errorf("sandbox: unknown ransomware family %q", name)
}

// BenignApps lists the 30 popular portable applications whose executions the
// paper captured (Top Ten lists of The Portable Freeware Collection
// 2018-2021 plus Popular Titles). Each maps to a behaviour archetype below.
var BenignApps = []string{
	"7-Zip Portable", "Notepad++ Portable", "VLC Media Player Portable",
	"Firefox Portable", "Chromium Portable", "Everything Search",
	"SumatraPDF", "IrfanView Portable", "KeePass Portable",
	"FileZilla Portable", "PuTTY Portable", "WinDirStat Portable",
	"Audacity Portable", "GIMP Portable", "LibreOffice Portable",
	"Thunderbird Portable", "qBittorrent Portable", "HWiNFO Portable",
	"CPU-Z Portable", "Rufus", "Ventoy", "CrystalDiskInfo",
	"ShareX Portable", "Greenshot Portable", "PeaZip Portable",
	"FreeCommander", "Double Commander", "MusicBee Portable",
	"foobar2000 Portable", "Inkscape Portable",
}

// Archetype is a benign behaviour class.
type Archetype int

// Benign behaviour archetypes.
const (
	ArchFileManager Archetype = iota + 1
	ArchBrowser
	ArchEditor
	ArchMediaPlayer
	ArchArchiver  // reads/writes many files; PeaZip/7-Zip can also encrypt archives
	ArchInstaller // writes program files, registry, verifies signatures (crypto!)
	ArchNetTool
	ArchSysUtility
)

// String returns the archetype name.
func (a Archetype) String() string {
	switch a {
	case ArchFileManager:
		return "file-manager"
	case ArchBrowser:
		return "browser"
	case ArchEditor:
		return "editor"
	case ArchMediaPlayer:
		return "media-player"
	case ArchArchiver:
		return "archiver"
	case ArchInstaller:
		return "installer"
	case ArchNetTool:
		return "net-tool"
	case ArchSysUtility:
		return "sys-utility"
	default:
		return fmt.Sprintf("Archetype(%d)", int(a))
	}
}

// appArchetypes maps each benign app to its archetype.
var appArchetypes = map[string]Archetype{
	"7-Zip Portable":            ArchArchiver,
	"Notepad++ Portable":        ArchEditor,
	"VLC Media Player Portable": ArchMediaPlayer,
	"Firefox Portable":          ArchBrowser,
	"Chromium Portable":         ArchBrowser,
	"Everything Search":         ArchFileManager,
	"SumatraPDF":                ArchEditor,
	"IrfanView Portable":        ArchMediaPlayer,
	"KeePass Portable":          ArchInstaller, // crypto-heavy password vault
	"FileZilla Portable":        ArchNetTool,
	"PuTTY Portable":            ArchNetTool,
	"WinDirStat Portable":       ArchFileManager,
	"Audacity Portable":         ArchMediaPlayer,
	"GIMP Portable":             ArchEditor,
	"LibreOffice Portable":      ArchEditor,
	"Thunderbird Portable":      ArchBrowser,
	"qBittorrent Portable":      ArchNetTool,
	"HWiNFO Portable":           ArchSysUtility,
	"CPU-Z Portable":            ArchSysUtility,
	"Rufus":                     ArchInstaller,
	"Ventoy":                    ArchInstaller,
	"CrystalDiskInfo":           ArchSysUtility,
	"ShareX Portable":           ArchMediaPlayer,
	"Greenshot Portable":        ArchMediaPlayer,
	"PeaZip Portable":           ArchArchiver,
	"FreeCommander":             ArchFileManager,
	"Double Commander":          ArchFileManager,
	"MusicBee Portable":         ArchMediaPlayer,
	"foobar2000 Portable":       ArchMediaPlayer,
	"Inkscape Portable":         ArchEditor,
}

// ArchetypeOf returns the behaviour archetype of a benign app.
func ArchetypeOf(app string) (Archetype, error) {
	a, ok := appArchetypes[app]
	if !ok {
		return 0, fmt.Errorf("sandbox: unknown benign app %q", app)
	}
	return a, nil
}

// Motif is a short, characteristic API sequence emitted atomically.
type Motif struct {
	Seq    []int
	Weight float64
}

// Phase is one stage of a behaviour profile.
type Phase struct {
	// Name identifies the phase in diagnostics.
	Name string
	// Frac is the fraction of the total trace length this phase occupies.
	Frac float64
	// Motifs are the characteristic sequences of this phase.
	Motifs []Motif
	// Noise are background API IDs drawn between motifs.
	Noise []int
	// MotifProb is the probability of emitting a motif (vs one noise call)
	// at each draw.
	MotifProb float64
}

// Profile is a complete behaviour description from which traces are drawn.
type Profile struct {
	// Name identifies the profile (family/variant or app).
	Name string
	// Ransomware reports the ground-truth label of traces from this profile.
	Ransomware bool
	// Phases run in order; their Frac values should sum to ~1.
	Phases []Phase
}

// Label returns the ground-truth quality label of traces drawn from this
// profile, ready to stamp on a request context via quality.WithLabel so
// the detection-quality scorecard can judge the verdicts downstream. The
// family is the profile name with any ".vN" variant suffix stripped
// ("Wannacry.v3" → "wannacry"); benign profiles keep their app name as the
// archetype.
func (p *Profile) Label() quality.Label {
	fam := p.Name
	if i := strings.IndexByte(fam, '.'); i >= 0 {
		fam = fam[:i]
	}
	return quality.Label{Truth: p.Ransomware, Family: quality.SanitizeFamily(fam)}
}

// Generate draws a trace of exactly length API-call IDs from the profile,
// deterministically for a given seed.
func (p *Profile) Generate(length int, seed int64) ([]int, error) {
	if length <= 0 {
		return nil, fmt.Errorf("sandbox: trace length must be positive, got %d", length)
	}
	if len(p.Phases) == 0 {
		return nil, fmt.Errorf("sandbox: profile %q has no phases", p.Name)
	}
	rng := rand.New(rand.NewSource(seed))
	trace := make([]int, 0, length)
	for i, ph := range p.Phases {
		target := int(float64(length) * ph.Frac)
		if i == len(p.Phases)-1 {
			target = length - len(trace) // absorb rounding in the last phase
		}
		if err := emitPhase(&trace, ph, target, rng); err != nil {
			return nil, fmt.Errorf("sandbox: profile %q phase %q: %w", p.Name, ph.Name, err)
		}
	}
	if len(trace) > length {
		trace = trace[:length]
	}
	return trace, nil
}

func emitPhase(trace *[]int, ph Phase, target int, rng *rand.Rand) error {
	if target <= 0 {
		return nil
	}
	if len(ph.Noise) == 0 && len(ph.Motifs) == 0 {
		return fmt.Errorf("phase has neither motifs nor noise")
	}
	var totalW float64
	for _, m := range ph.Motifs {
		totalW += m.Weight
	}
	emitted := 0
	for emitted < target {
		if len(ph.Motifs) > 0 && (len(ph.Noise) == 0 || rng.Float64() < ph.MotifProb) {
			m := pickMotif(ph.Motifs, totalW, rng)
			*trace = append(*trace, m.Seq...)
			emitted += len(m.Seq)
			continue
		}
		*trace = append(*trace, ph.Noise[rng.Intn(len(ph.Noise))])
		emitted++
	}
	return nil
}

func pickMotif(motifs []Motif, totalW float64, rng *rand.Rand) Motif {
	r := rng.Float64() * totalW
	for _, m := range motifs {
		r -= m.Weight
		if r <= 0 {
			return m
		}
	}
	return motifs[len(motifs)-1]
}

// ids is shorthand for winapi.MustIDs inside profile definitions.
func ids(names ...string) []int { return winapi.MustIDs(names...) }
