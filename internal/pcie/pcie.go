// Package pcie models PCI Express links and the on-board switch of a
// computational storage drive.
//
// The SmartSSD pairs its PM1733 SSD with the KU15P FPGA over a PCIe Gen3 x4
// bus behind an on-board switch (paper §II, Fig. 1). The switch supports
// peer-to-peer (P2P) transfers between the SSD and the FPGA DRAM that never
// cross to the host root complex — the feature that "drastically reduces
// PCIe traffic and CPU overhead". This package provides the timing model for
// both the direct device-internal path and host-mediated paths.
package pcie

import (
	"fmt"
	"time"
)

// Gen is a PCIe generation.
type Gen int

// Supported generations.
const (
	Gen3 Gen = 3
	Gen4 Gen = 4
)

// perLaneGBps returns the post-encoding per-lane throughput in GB/s.
func (g Gen) perLaneGBps() (float64, error) {
	switch g {
	case Gen3:
		return 0.985, nil // 8 GT/s with 128b/130b encoding
	case Gen4:
		return 1.969, nil // 16 GT/s with 128b/130b encoding
	default:
		return 0, fmt.Errorf("pcie: unsupported generation %d", int(g))
	}
}

// Link is a PCIe link.
type Link struct {
	// Gen is the PCIe generation.
	Gen Gen
	// Lanes is the lane count (x4, x8, ...).
	Lanes int
	// Efficiency is the fraction of raw bandwidth usable after TLP/DLLP
	// protocol overhead; 0 defaults to 0.85, typical for 256-byte payloads.
	Efficiency float64
	// PropagationDelay is the fixed per-transfer latency (root-complex or
	// switch traversal); 0 defaults to 1 µs.
	PropagationDelay time.Duration
}

// SmartSSDInternal is the SmartSSD's device-internal Gen3 x4 path through
// the on-board switch (SSD ↔ FPGA DRAM). Switch-local traversal is cheaper
// than a root-complex round trip.
var SmartSSDInternal = Link{Gen: Gen3, Lanes: 4, PropagationDelay: 500 * time.Nanosecond}

// HostGen3x4 is a host-to-device Gen3 x4 path through the root complex.
var HostGen3x4 = Link{Gen: Gen3, Lanes: 4, PropagationDelay: 2 * time.Microsecond}

func (l Link) normalized() (Link, error) {
	if l.Lanes <= 0 {
		return l, fmt.Errorf("pcie: lane count must be positive, got %d", l.Lanes)
	}
	if _, err := l.Gen.perLaneGBps(); err != nil {
		return l, err
	}
	if l.Efficiency == 0 {
		l.Efficiency = 0.85
	}
	if l.Efficiency < 0 || l.Efficiency > 1 {
		return l, fmt.Errorf("pcie: efficiency %v outside (0, 1]", l.Efficiency)
	}
	if l.PropagationDelay == 0 {
		l.PropagationDelay = time.Microsecond
	}
	return l, nil
}

// Bandwidth returns the effective link bandwidth in bytes per second.
func (l Link) Bandwidth() (float64, error) {
	n, err := l.normalized()
	if err != nil {
		return 0, err
	}
	perLane, err := n.Gen.perLaneGBps()
	if err != nil {
		return 0, err
	}
	return perLane * 1e9 * float64(n.Lanes) * n.Efficiency, nil
}

// TransferTime returns the time to move size bytes across the link:
// propagation delay plus serialization at effective bandwidth.
func (l Link) TransferTime(size int64) (time.Duration, error) {
	if size < 0 {
		return 0, fmt.Errorf("pcie: negative transfer size %d", size)
	}
	n, err := l.normalized()
	if err != nil {
		return 0, err
	}
	bw, err := n.Bandwidth()
	if err != nil {
		return 0, err
	}
	ser := time.Duration(float64(size) / bw * float64(time.Second))
	return n.PropagationDelay + ser, nil
}
