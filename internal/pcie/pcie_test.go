package pcie

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestBandwidthGen3x4(t *testing.T) {
	bw, err := HostGen3x4.Bandwidth()
	if err != nil {
		t.Fatal(err)
	}
	// Gen3 x4 ≈ 3.94 GB/s raw, ~3.35 GB/s at 85% efficiency.
	if bw < 3.0e9 || bw > 3.6e9 {
		t.Fatalf("Gen3 x4 effective bandwidth = %v B/s, want ~3.35e9", bw)
	}
}

func TestBandwidthGen4Doubles(t *testing.T) {
	g3, err := Link{Gen: Gen3, Lanes: 4}.Bandwidth()
	if err != nil {
		t.Fatal(err)
	}
	g4, err := Link{Gen: Gen4, Lanes: 4}.Bandwidth()
	if err != nil {
		t.Fatal(err)
	}
	if ratio := g4 / g3; math.Abs(ratio-2) > 0.02 {
		t.Fatalf("Gen4/Gen3 ratio = %v, want ~2", ratio)
	}
}

func TestLinkValidation(t *testing.T) {
	if _, err := (Link{Gen: Gen3, Lanes: 0}).Bandwidth(); err == nil {
		t.Error("zero lanes: expected error")
	}
	if _, err := (Link{Gen: Gen(9), Lanes: 4}).Bandwidth(); err == nil {
		t.Error("unknown gen: expected error")
	}
	if _, err := (Link{Gen: Gen3, Lanes: 4, Efficiency: 1.5}).Bandwidth(); err == nil {
		t.Error("efficiency > 1: expected error")
	}
	if _, err := HostGen3x4.TransferTime(-1); err == nil {
		t.Error("negative size: expected error")
	}
}

func TestTransferTimeComponents(t *testing.T) {
	// Zero bytes: pure propagation delay.
	d0, err := SmartSSDInternal.TransferTime(0)
	if err != nil {
		t.Fatal(err)
	}
	if d0 != 500*time.Nanosecond {
		t.Fatalf("zero-byte transfer = %v, want propagation delay 500ns", d0)
	}
	// 1 MB at ~3.35 GB/s ≈ 300 µs serialization.
	d1, err := HostGen3x4.TransferTime(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if d1 < 200*time.Microsecond || d1 > 500*time.Microsecond {
		t.Fatalf("1MB transfer = %v, want ~315µs", d1)
	}
}

func TestInternalPathFasterThanHost(t *testing.T) {
	// The P2P premise: the switch-local path has lower fixed latency than a
	// root-complex traversal.
	pi, err := SmartSSDInternal.TransferTime(4096)
	if err != nil {
		t.Fatal(err)
	}
	ph, err := HostGen3x4.TransferTime(4096)
	if err != nil {
		t.Fatal(err)
	}
	if pi >= ph {
		t.Fatalf("internal path %v not faster than host path %v", pi, ph)
	}
}

// Property: transfer time is monotone in size and superadditive-free
// (splitting a transfer only adds propagation delay).
func TestPropTransferMonotone(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		tx, err1 := HostGen3x4.TransferTime(x)
		ty, err2 := HostGen3x4.TransferTime(y)
		return err1 == nil && err2 == nil && tx <= ty
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
