// Package dataset builds, stores, and splits the API-call sequence dataset
// described in the paper's Appendix A.
//
// The paper's corpus contains 29K sequences of length 100 — 13,340 extracted
// from ransomware traces with a sliding window and 15,660 from benign
// activity (30 popular portable applications plus manual desktop
// interaction) — merged and shuffled for binary classification, 46%
// ransomware. The on-disk format is the CSV the offline trainer consumes
// (§III-A): n+1 columns for sequences of n items plus a label, N rows.
package dataset

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"

	"github.com/kfrida1/csdinf/internal/sandbox"
	"github.com/kfrida1/csdinf/internal/winapi"
)

// Sequence is one labelled example.
type Sequence struct {
	// Items are API-call IDs, each in [0, winapi.VocabSize).
	Items []int
	// Ransomware is the ground-truth label.
	Ransomware bool
	// Source identifies the originating profile (family.variant or app);
	// informational only, not written to CSV.
	Source string
}

// Dataset is a labelled corpus of fixed-length sequences.
type Dataset struct {
	// Window is the sequence length n (100 in the paper).
	Window int
	// Sequences are the examples.
	Sequences []Sequence
}

// PaperRansomwareCount and PaperBenignCount are the corpus sizes from
// Appendix A.
const (
	PaperRansomwareCount = 13340
	PaperBenignCount     = 15660
	// PaperWindow is the paper's sequence length.
	PaperWindow = 100
	// DefaultStride is the sliding-window stride used during extraction. The
	// paper does not state its stride; 25 keeps adjacent windows overlapping
	// (promoting the paper's stage-coverage goal) while bounding near-
	// duplicate rows.
	DefaultStride = 25
)

// BuildConfig controls corpus synthesis.
type BuildConfig struct {
	// RansomwareCount and BenignCount are the target number of windows per
	// class. Zero values default to the paper's sizes.
	RansomwareCount int
	BenignCount     int
	// Window is the sequence length; zero defaults to PaperWindow.
	Window int
	// Stride is the sliding-window stride; zero defaults to DefaultStride.
	Stride int
	// Seed drives all trace generation and the final shuffle.
	Seed int64
}

func (c *BuildConfig) defaults() {
	if c.RansomwareCount == 0 {
		c.RansomwareCount = PaperRansomwareCount
	}
	if c.BenignCount == 0 {
		c.BenignCount = PaperBenignCount
	}
	if c.Window == 0 {
		c.Window = PaperWindow
	}
	if c.Stride == 0 {
		c.Stride = DefaultStride
	}
}

func (c *BuildConfig) validate() error {
	if c.RansomwareCount < 0 || c.BenignCount < 0 {
		return fmt.Errorf("dataset: negative class counts (%d, %d)", c.RansomwareCount, c.BenignCount)
	}
	if c.RansomwareCount+c.BenignCount == 0 {
		return errors.New("dataset: empty corpus requested")
	}
	if c.Window <= 0 {
		return fmt.Errorf("dataset: window must be positive, got %d", c.Window)
	}
	if c.Stride <= 0 {
		return fmt.Errorf("dataset: stride must be positive, got %d", c.Stride)
	}
	return nil
}

// SlidingWindows extracts length-window sub-sequences of trace at the given
// stride, beginning with the first call (the paper starts at the first API
// call made "to promote early detection"). The final partial window is
// discarded. Each returned window is a copy.
func SlidingWindows(trace []int, window, stride int) ([][]int, error) {
	if window <= 0 || stride <= 0 {
		return nil, fmt.Errorf("dataset: window %d and stride %d must be positive", window, stride)
	}
	if len(trace) < window {
		return nil, nil
	}
	n := (len(trace)-window)/stride + 1
	out := make([][]int, 0, n)
	for i := 0; i+window <= len(trace); i += stride {
		w := make([]int, window)
		copy(w, trace[i:i+window])
		out = append(out, w)
	}
	return out, nil
}

// WindowCount returns how many windows SlidingWindows would yield for a
// trace of the given length.
func WindowCount(traceLen, window, stride int) int {
	if traceLen < window {
		return 0
	}
	return (traceLen-window)/stride + 1
}

// Build synthesizes a corpus per cfg: ransomware windows are distributed as
// evenly as possible across the 76 variants of the ten families, benign
// windows across the 30 applications plus manual interaction, exactly as the
// paper aggregates its data. The result is shuffled.
func Build(cfg BuildConfig) (*Dataset, error) {
	cfg.defaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ds := &Dataset{Window: cfg.Window}

	// Ransomware side.
	var variants []*sandbox.Profile
	for _, fam := range sandbox.Families {
		for v := 0; v < fam.Variants; v++ {
			p, err := sandbox.RansomwareProfile(fam.Name, v)
			if err != nil {
				return nil, fmt.Errorf("dataset: build ransomware profiles: %w", err)
			}
			variants = append(variants, p)
		}
	}
	if err := appendWindows(ds, variants, cfg.RansomwareCount, cfg, rng); err != nil {
		return nil, err
	}

	// Benign side: 30 apps + manual interaction.
	var benign []*sandbox.Profile
	for _, app := range sandbox.BenignApps {
		p, err := sandbox.BenignProfile(app)
		if err != nil {
			return nil, fmt.Errorf("dataset: build benign profiles: %w", err)
		}
		benign = append(benign, p)
	}
	benign = append(benign, sandbox.ManualInteractionProfile())
	if err := appendWindows(ds, benign, cfg.BenignCount, cfg, rng); err != nil {
		return nil, err
	}

	rng.Shuffle(len(ds.Sequences), func(i, j int) {
		ds.Sequences[i], ds.Sequences[j] = ds.Sequences[j], ds.Sequences[i]
	})
	return ds, nil
}

// appendWindows distributes `total` windows as evenly as possible over the
// profiles and extracts them from freshly generated traces.
//
// Traces are always generated at the *paper-scale* length for the profile's
// class (≈176 windows per ransomware variant, ≈505 per benign source), and
// when fewer windows are requested an evenly-spaced subset is taken. This
// keeps the per-window phase statistics — in particular the fraction of
// ambiguous windows (benign-looking ransomware reconnaissance, ransomware-
// looking archiver encryption) — identical at every corpus scale, so a
// 1/10-scale training run measures the same learning problem as the full
// 29K corpus.
func appendWindows(ds *Dataset, profiles []*sandbox.Profile, total int, cfg BuildConfig, rng *rand.Rand) error {
	if total == 0 {
		return nil
	}
	// Paper-scale windows per profile for this class.
	var paperTotal int
	if profiles[0].Ransomware {
		paperTotal = PaperRansomwareCount
	} else {
		paperTotal = PaperBenignCount
	}
	fullPerProfile := (paperTotal + len(profiles) - 1) / len(profiles)

	base := total / len(profiles)
	extra := total % len(profiles)
	for i, p := range profiles {
		want := base
		if i < extra {
			want++
		}
		if want == 0 {
			continue
		}
		full := fullPerProfile
		if want > full {
			full = want
		}
		traceLen := cfg.Window + cfg.Stride*(full-1)
		trace, err := p.Generate(traceLen, rng.Int63())
		if err != nil {
			return fmt.Errorf("dataset: generate %s: %w", p.Name, err)
		}
		windows, err := SlidingWindows(trace, cfg.Window, cfg.Stride)
		if err != nil {
			return err
		}
		if len(windows) != full {
			return fmt.Errorf("dataset: %s yielded %d windows, want %d", p.Name, len(windows), full)
		}
		// Evenly-spaced subset with a per-profile rotation: without the
		// rotation every profile would contribute its window 0 (the
		// benign-looking process startup), over-representing ambiguous
		// windows at small scales. The rotation keeps each trace position
		// equally likely across the corpus, so phase-composition statistics
		// match the full-scale corpus in expectation.
		off := rng.Intn(full)
		for k := 0; k < want; k++ {
			idx := ((k*full + off) / want) % full
			w := windows[idx]
			ds.Sequences = append(ds.Sequences, Sequence{Items: w, Ransomware: p.Ransomware, Source: p.Name})
		}
	}
	return nil
}

// Counts returns the number of (ransomware, benign) sequences.
func (d *Dataset) Counts() (ransomware, benign int) {
	for _, s := range d.Sequences {
		if s.Ransomware {
			ransomware++
		} else {
			benign++
		}
	}
	return ransomware, benign
}

// RansomwareFraction returns the ransomware share of the corpus (the paper
// reports 46%).
func (d *Dataset) RansomwareFraction() float64 {
	if len(d.Sequences) == 0 {
		return 0
	}
	r, _ := d.Counts()
	return float64(r) / float64(len(d.Sequences))
}

// SourceCounts returns the number of sequences per originating profile.
func (d *Dataset) SourceCounts() map[string]int {
	out := make(map[string]int)
	for _, s := range d.Sequences {
		out[s.Source]++
	}
	return out
}

// Split partitions the dataset into train and test subsets with the given
// test fraction, shuffling first with the seed. Both subsets share the
// window length.
func (d *Dataset) Split(testFrac float64, seed int64) (train, test *Dataset, err error) {
	if testFrac < 0 || testFrac > 1 {
		return nil, nil, fmt.Errorf("dataset: test fraction %v outside [0, 1]", testFrac)
	}
	idx := make([]int, len(d.Sequences))
	for i := range idx {
		idx[i] = i
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	nTest := int(float64(len(idx)) * testFrac)
	test = &Dataset{Window: d.Window}
	train = &Dataset{Window: d.Window}
	for i, j := range idx {
		if i < nTest {
			test.Sequences = append(test.Sequences, d.Sequences[j])
		} else {
			train.Sequences = append(train.Sequences, d.Sequences[j])
		}
	}
	return train, test, nil
}

// Subsample returns a class-balanced random subsample with at most n
// sequences, preserving the corpus's label ratio.
func (d *Dataset) Subsample(n int, seed int64) *Dataset {
	if n >= len(d.Sequences) {
		out := &Dataset{Window: d.Window, Sequences: make([]Sequence, len(d.Sequences))}
		copy(out.Sequences, d.Sequences)
		return out
	}
	idx := make([]int, len(d.Sequences))
	for i := range idx {
		idx[i] = i
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	out := &Dataset{Window: d.Window, Sequences: make([]Sequence, 0, n)}
	for _, j := range idx[:n] {
		out.Sequences = append(out.Sequences, d.Sequences[j])
	}
	return out
}

// ErrBadCSV wraps all CSV parse failures.
var ErrBadCSV = errors.New("dataset: malformed CSV")

// WriteCSV writes the corpus in the paper's n+1-column format: each row is
// window item IDs followed by the label (1 = ransomware).
func (d *Dataset) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, s := range d.Sequences {
		if len(s.Items) != d.Window {
			return fmt.Errorf("dataset: sequence of length %d in window-%d corpus", len(s.Items), d.Window)
		}
		for _, it := range s.Items {
			bw.WriteString(strconv.Itoa(it))
			bw.WriteByte(',')
		}
		if s.Ransomware {
			bw.WriteString("1\n")
		} else {
			bw.WriteString("0\n")
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("dataset: write CSV: %w", err)
	}
	return nil
}

// ReadCSV parses a corpus in the n+1-column format. All rows must have the
// same column count; item IDs must be within the vocabulary.
func ReadCSV(r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	ds := &Dataset{}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) < 2 {
			return nil, fmt.Errorf("%w: line %d has %d columns", ErrBadCSV, line, len(fields))
		}
		n := len(fields) - 1
		if ds.Window == 0 {
			ds.Window = n
		} else if n != ds.Window {
			return nil, fmt.Errorf("%w: line %d has %d items, want %d", ErrBadCSV, line, n, ds.Window)
		}
		items := make([]int, n)
		for i, f := range fields[:n] {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return nil, fmt.Errorf("%w: line %d item %d: %v", ErrBadCSV, line, i, err)
			}
			if v < 0 || v >= winapi.VocabSize {
				return nil, fmt.Errorf("%w: line %d item %d = %d outside vocabulary", ErrBadCSV, line, i, v)
			}
			items[i] = v
		}
		switch strings.TrimSpace(fields[n]) {
		case "1":
			ds.Sequences = append(ds.Sequences, Sequence{Items: items, Ransomware: true})
		case "0":
			ds.Sequences = append(ds.Sequences, Sequence{Items: items, Ransomware: false})
		default:
			return nil, fmt.Errorf("%w: line %d label %q not 0/1", ErrBadCSV, line, fields[n])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: read CSV: %w", err)
	}
	if len(ds.Sequences) == 0 {
		return nil, fmt.Errorf("%w: no rows", ErrBadCSV)
	}
	return ds, nil
}

// LabeledTrace is a full-length API-call trace with its ground-truth label,
// the flattened form of a sandbox analysis report.
type LabeledTrace struct {
	Items      []int
	Ransomware bool
	Source     string
}

// FromTraces windows a set of labelled traces into a corpus: the ingestion
// path for externally supplied sandbox reports (Appendix A consumes Cuckoo
// analysis reports this way). Traces shorter than the window are skipped.
// The result is shuffled with the seed.
func FromTraces(traces []LabeledTrace, window, stride int, seed int64) (*Dataset, error) {
	if len(traces) == 0 {
		return nil, errors.New("dataset: no traces")
	}
	if window <= 0 {
		window = PaperWindow
	}
	if stride <= 0 {
		stride = DefaultStride
	}
	ds := &Dataset{Window: window}
	for i, tr := range traces {
		for _, it := range tr.Items {
			if it < 0 || it >= winapi.VocabSize {
				return nil, fmt.Errorf("dataset: trace %d (%s) contains OOV item %d", i, tr.Source, it)
			}
		}
		windows, err := SlidingWindows(tr.Items, window, stride)
		if err != nil {
			return nil, err
		}
		for _, w := range windows {
			ds.Sequences = append(ds.Sequences, Sequence{Items: w, Ransomware: tr.Ransomware, Source: tr.Source})
		}
	}
	if len(ds.Sequences) == 0 {
		return nil, fmt.Errorf("dataset: no trace reached the window length %d", window)
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(ds.Sequences), func(i, j int) {
		ds.Sequences[i], ds.Sequences[j] = ds.Sequences[j], ds.Sequences[i]
	})
	return ds, nil
}
