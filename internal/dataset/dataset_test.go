package dataset

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"github.com/kfrida1/csdinf/internal/winapi"
)

func smallConfig() BuildConfig {
	return BuildConfig{
		RansomwareCount: 152, // 2 windows per variant
		BenignCount:     93,  // 3 per benign source
		Window:          40,
		Stride:          10,
		Seed:            1,
	}
}

func TestSlidingWindows(t *testing.T) {
	trace := make([]int, 20)
	for i := range trace {
		trace[i] = i
	}
	tests := []struct {
		name           string
		window, stride int
		wantN          int
	}{
		{"exact fit", 20, 5, 1},
		{"stride 5", 10, 5, 3},
		{"stride 1", 10, 1, 11},
		{"window larger than trace", 25, 5, 0},
		{"stride larger than window", 5, 10, 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ws, err := SlidingWindows(trace, tt.window, tt.stride)
			if err != nil {
				t.Fatal(err)
			}
			if len(ws) != tt.wantN {
				t.Fatalf("got %d windows, want %d", len(ws), tt.wantN)
			}
			for i, w := range ws {
				if len(w) != tt.window {
					t.Fatalf("window %d has length %d", i, len(w))
				}
				if w[0] != i*tt.stride {
					t.Fatalf("window %d starts at %d, want %d", i, w[0], i*tt.stride)
				}
			}
		})
	}
}

func TestSlidingWindowsErrors(t *testing.T) {
	if _, err := SlidingWindows([]int{1, 2}, 0, 1); err == nil {
		t.Error("window 0: expected error")
	}
	if _, err := SlidingWindows([]int{1, 2}, 1, 0); err == nil {
		t.Error("stride 0: expected error")
	}
}

func TestSlidingWindowsCopies(t *testing.T) {
	trace := []int{1, 2, 3, 4}
	ws, err := SlidingWindows(trace, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	ws[0][0] = 99
	if trace[0] == 99 {
		t.Fatal("window aliases the trace")
	}
}

// Property: WindowCount matches len(SlidingWindows(...)).
func TestPropWindowCountFormula(t *testing.T) {
	f := func(lenRaw, winRaw, strideRaw uint8) bool {
		traceLen := int(lenRaw)
		window := int(winRaw)%50 + 1
		stride := int(strideRaw)%20 + 1
		trace := make([]int, traceLen)
		ws, err := SlidingWindows(trace, window, stride)
		if err != nil {
			return false
		}
		return len(ws) == WindowCount(traceLen, window, stride)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBuildSmall(t *testing.T) {
	ds, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	r, b := ds.Counts()
	if r != 152 || b != 93 {
		t.Fatalf("counts = (%d, %d), want (152, 93)", r, b)
	}
	if len(ds.Sequences) != 245 {
		t.Fatalf("total = %d", len(ds.Sequences))
	}
	for i, s := range ds.Sequences {
		if len(s.Items) != 40 {
			t.Fatalf("sequence %d has length %d", i, len(s.Items))
		}
		if s.Source == "" {
			t.Fatalf("sequence %d has no source", i)
		}
		for _, it := range s.Items {
			if it < 0 || it >= winapi.VocabSize {
				t.Fatalf("sequence %d contains OOV item %d", i, it)
			}
		}
	}
}

func TestBuildShuffled(t *testing.T) {
	ds, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	// If shuffled, ransomware examples should not all be at the front.
	firstBenign := -1
	for i, s := range ds.Sequences {
		if !s.Ransomware {
			firstBenign = i
			break
		}
	}
	if firstBenign < 0 || firstBenign > 152 {
		t.Fatalf("first benign at %d; corpus not shuffled", firstBenign)
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Sequences) != len(b.Sequences) {
		t.Fatal("different sizes for same seed")
	}
	for i := range a.Sequences {
		if a.Sequences[i].Ransomware != b.Sequences[i].Ransomware ||
			a.Sequences[i].Items[0] != b.Sequences[i].Items[0] {
			t.Fatalf("sequence %d differs for same seed", i)
		}
	}
}

func TestBuildValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  BuildConfig
	}{
		{"negative counts", BuildConfig{RansomwareCount: -1, BenignCount: 10}},
		{"negative stride", BuildConfig{RansomwareCount: 10, BenignCount: 10, Stride: -1}},
		{"negative window", BuildConfig{RansomwareCount: 10, BenignCount: 10, Window: -5}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Build(tt.cfg); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestBuildPaperFraction(t *testing.T) {
	// A proportionally scaled-down paper corpus keeps the 46% ransomware mix.
	ds, err := Build(BuildConfig{RansomwareCount: 1334, BenignCount: 1566, Window: 100, Stride: 25, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if f := ds.RansomwareFraction(); math.Abs(f-0.46) > 0.001 {
		t.Fatalf("ransomware fraction = %v, want ~0.46", f)
	}
}

func TestSourceCounts(t *testing.T) {
	ds, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	counts := ds.SourceCounts()
	// 76 variants + 31 benign sources.
	if len(counts) != 107 {
		t.Fatalf("distinct sources = %d, want 107", len(counts))
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != len(ds.Sequences) {
		t.Fatalf("source counts sum %d != corpus %d", total, len(ds.Sequences))
	}
}

func TestSplit(t *testing.T) {
	ds, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := ds.Split(0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(test.Sequences); got != 49 {
		t.Fatalf("test size = %d, want 49", got)
	}
	if len(train.Sequences)+len(test.Sequences) != len(ds.Sequences) {
		t.Fatal("split lost sequences")
	}
	if train.Window != ds.Window || test.Window != ds.Window {
		t.Fatal("split lost window size")
	}
	if _, _, err := ds.Split(1.5, 0); err == nil {
		t.Error("Split(1.5) expected error")
	}
	if _, _, err := ds.Split(-0.1, 0); err == nil {
		t.Error("Split(-0.1) expected error")
	}
}

func TestSubsample(t *testing.T) {
	ds, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	sub := ds.Subsample(50, 4)
	if len(sub.Sequences) != 50 {
		t.Fatalf("subsample size = %d", len(sub.Sequences))
	}
	all := ds.Subsample(10_000, 4)
	if len(all.Sequences) != len(ds.Sequences) {
		t.Fatal("oversized subsample should return the full corpus")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ds, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	// n+1 columns per row.
	firstLine, _, _ := strings.Cut(buf.String(), "\n")
	if got := len(strings.Split(firstLine, ",")); got != 41 {
		t.Fatalf("CSV has %d columns, want window+1 = 41", got)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Window != ds.Window || len(got.Sequences) != len(ds.Sequences) {
		t.Fatalf("round trip shape mismatch: %d/%d vs %d/%d",
			got.Window, len(got.Sequences), ds.Window, len(ds.Sequences))
	}
	for i := range ds.Sequences {
		if got.Sequences[i].Ransomware != ds.Sequences[i].Ransomware {
			t.Fatalf("label %d lost in round trip", i)
		}
		for j := range ds.Sequences[i].Items {
			if got.Sequences[i].Items[j] != ds.Sequences[i].Items[j] {
				t.Fatalf("item (%d, %d) lost in round trip", i, j)
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	tests := []struct {
		name, input string
	}{
		{"empty", ""},
		{"one column", "5\n"},
		{"ragged rows", "1,2,1\n1,2,3,0\n"},
		{"bad item", "a,2,1\n"},
		{"oov item", "9999,2,1\n"},
		{"negative item", "-1,2,1\n"},
		{"bad label", "1,2,7\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := ReadCSV(strings.NewReader(tt.input))
			if err == nil {
				t.Fatal("expected error")
			}
			if !errors.Is(err, ErrBadCSV) {
				t.Fatalf("error %v does not wrap ErrBadCSV", err)
			}
		})
	}
}

func TestReadCSVSkipsBlankLines(t *testing.T) {
	ds, err := ReadCSV(strings.NewReader("1,2,1\n\n3,4,0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Sequences) != 2 {
		t.Fatalf("rows = %d, want 2", len(ds.Sequences))
	}
}

func TestWriteCSVLengthMismatch(t *testing.T) {
	ds := &Dataset{Window: 3, Sequences: []Sequence{{Items: []int{1, 2}}}}
	if err := ds.WriteCSV(&bytes.Buffer{}); err == nil {
		t.Fatal("expected error for mismatched sequence length")
	}
}

func BenchmarkBuildScaledCorpus(b *testing.B) {
	cfg := BuildConfig{RansomwareCount: 1334, BenignCount: 1566, Window: 100, Stride: 25, Seed: 5}
	for i := 0; i < b.N; i++ {
		if _, err := Build(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestFromTraces(t *testing.T) {
	traces := []LabeledTrace{
		{Items: make([]int, 100), Ransomware: true, Source: "a"},
		{Items: make([]int, 60), Ransomware: false, Source: "b"},
		{Items: make([]int, 10), Ransomware: false, Source: "short"}, // skipped
	}
	ds, err := FromTraces(traces, 50, 25, 1)
	if err != nil {
		t.Fatal(err)
	}
	// a: (100-50)/25+1 = 3 windows; b: 1 window; short: 0.
	if len(ds.Sequences) != 4 {
		t.Fatalf("windows = %d, want 4", len(ds.Sequences))
	}
	r, b := ds.Counts()
	if r != 3 || b != 1 {
		t.Fatalf("counts = (%d, %d)", r, b)
	}
}

func TestFromTracesErrors(t *testing.T) {
	if _, err := FromTraces(nil, 10, 5, 1); err == nil {
		t.Error("no traces: expected error")
	}
	if _, err := FromTraces([]LabeledTrace{{Items: []int{99999}}}, 1, 1, 1); err == nil {
		t.Error("OOV trace: expected error")
	}
	if _, err := FromTraces([]LabeledTrace{{Items: make([]int, 5)}}, 10, 5, 1); err == nil {
		t.Error("all-short traces: expected error")
	}
}

func TestFromTracesDefaults(t *testing.T) {
	ds, err := FromTraces([]LabeledTrace{{Items: make([]int, 150), Ransomware: true}}, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Window != PaperWindow {
		t.Fatalf("default window = %d", ds.Window)
	}
	// (150-100)/25+1 = 3 windows.
	if len(ds.Sequences) != 3 {
		t.Fatalf("windows = %d, want 3", len(ds.Sequences))
	}
}
