// Package winapi provides the catalog of Windows API calls that make up the
// classifier's vocabulary.
//
// The paper's model has an embedding table of 2,224 parameters with an
// embedding dimension of 8, i.e. a vocabulary of exactly 278 distinct API
// calls observed across the Cuckoo Sandbox traces (§IV). This package fixes
// that vocabulary: 278 real Windows/NT API names, grouped into behavioural
// categories that the sandbox trace generator composes into ransomware and
// benign activity.
//
// IDs are stable: they are assigned in catalog order and never change, so a
// trained model, an exported weight file, and a generated dataset always
// agree on the meaning of each item ID.
package winapi

import (
	"fmt"
	"sort"
)

// Category classifies an API call by the subsystem it touches.
type Category int

// Categories of the catalog. They start at 1 so the zero value is invalid.
const (
	CatFile Category = iota + 1
	CatRegistry
	CatProcess
	CatMemory
	CatCrypto
	CatNetwork
	CatService
	CatGUI
	CatSync
	CatSystem
)

// String returns the category name.
func (c Category) String() string {
	switch c {
	case CatFile:
		return "file"
	case CatRegistry:
		return "registry"
	case CatProcess:
		return "process"
	case CatMemory:
		return "memory"
	case CatCrypto:
		return "crypto"
	case CatNetwork:
		return "network"
	case CatService:
		return "service"
	case CatGUI:
		return "gui"
	case CatSync:
		return "sync"
	case CatSystem:
		return "system"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// Categories lists all categories in catalog order.
var Categories = []Category{
	CatFile, CatRegistry, CatProcess, CatMemory, CatCrypto,
	CatNetwork, CatService, CatGUI, CatSync, CatSystem,
}

// catalog maps each category to its API names, in stable order. The total
// across all categories is exactly 278 (asserted by tests and init).
var catalog = map[Category][]string{
	CatFile: {
		"NtCreateFile", "NtOpenFile", "NtReadFile", "NtWriteFile", "NtDeleteFile",
		"NtQueryInformationFile", "NtSetInformationFile", "NtQueryDirectoryFile",
		"NtClose", "NtDeviceIoControlFile", "CreateFileW", "ReadFile", "WriteFile",
		"DeleteFileW", "CopyFileW", "CopyFileExW", "MoveFileW", "MoveFileWithProgressW",
		"GetFileAttributesW", "SetFileAttributesW", "GetFileSize", "SetFilePointer",
		"SetFilePointerEx", "SetEndOfFile", "FlushFileBuffers", "FindFirstFileExW",
		"FindNextFileW", "FindClose", "GetFileInformationByHandle", "GetFileType",
		"CreateDirectoryW", "RemoveDirectoryW", "GetTempPathW", "GetTempFileNameW",
		"WriteConsoleW", "GetFullPathNameW", "SearchPathW", "LockFileEx",
		"UnlockFileEx", "ReplaceFileW",
	},
	CatRegistry: {
		"RegOpenKeyExW", "RegCreateKeyExW", "RegCloseKey", "RegQueryValueExW",
		"RegSetValueExW", "RegDeleteValueW", "RegDeleteKeyW", "RegEnumKeyExW",
		"RegEnumValueW", "RegQueryInfoKeyW", "RegFlushKey", "RegSaveKeyW",
		"RegLoadKeyW", "RegUnLoadKeyW", "RegNotifyChangeKeyValue", "NtOpenKey",
		"NtCreateKey", "NtQueryValueKey", "NtSetValueKey", "NtDeleteKey",
		"NtDeleteValueKey", "NtEnumerateKey", "NtEnumerateValueKey", "NtQueryKey",
		"NtRenameKey", "NtSaveKey", "NtLoadKey", "RegOpenKeyExA", "RegSetValueExA",
		"RegQueryValueExA",
	},
	CatProcess: {
		"CreateProcessW", "CreateProcessInternalW", "OpenProcess", "TerminateProcess",
		"ExitProcess", "NtCreateProcess", "NtCreateUserProcess", "NtOpenProcess",
		"NtTerminateProcess", "NtSuspendProcess", "NtResumeProcess", "CreateThread",
		"CreateRemoteThread", "OpenThread", "SuspendThread", "ResumeThread",
		"TerminateThread", "ExitThread", "NtCreateThreadEx", "NtOpenThread",
		"GetThreadContext", "SetThreadContext", "QueueUserAPC",
		"CreateToolhelp32Snapshot", "Process32FirstW", "Process32NextW",
		"Thread32First", "Thread32Next", "Module32FirstW", "Module32NextW",
		"ShellExecuteExW", "WinExec", "GetExitCodeProcess", "GetCurrentProcessId",
		"GetProcessTimes",
	},
	CatMemory: {
		"VirtualAlloc", "VirtualAllocEx", "VirtualFree", "VirtualProtect",
		"VirtualProtectEx", "VirtualQuery", "VirtualQueryEx",
		"NtAllocateVirtualMemory", "NtFreeVirtualMemory", "NtProtectVirtualMemory",
		"NtQueryVirtualMemory", "NtReadVirtualMemory", "NtWriteVirtualMemory",
		"WriteProcessMemory", "ReadProcessMemory", "HeapAlloc", "HeapFree",
		"HeapCreate", "GlobalAlloc", "LocalAlloc",
	},
	CatCrypto: {
		"CryptAcquireContextW", "CryptReleaseContext", "CryptGenKey", "CryptDeriveKey",
		"CryptDestroyKey", "CryptEncrypt", "CryptDecrypt", "CryptHashData",
		"CryptCreateHash", "CryptDestroyHash", "CryptGetHashParam", "CryptImportKey",
		"CryptExportKey", "CryptGenRandom", "BCryptOpenAlgorithmProvider",
		"BCryptCloseAlgorithmProvider", "BCryptGenerateSymmetricKey", "BCryptEncrypt",
		"BCryptDecrypt", "BCryptGenRandom", "BCryptDestroyKey",
		"NCryptOpenStorageProvider", "NCryptCreatePersistedKey", "NCryptEncrypt",
		"CryptProtectData",
	},
	CatNetwork: {
		"socket", "connect", "send", "recv", "sendto", "recvfrom", "bind", "listen",
		"accept", "closesocket", "select", "ioctlsocket", "gethostbyname",
		"getaddrinfo", "WSAStartup", "WSACleanup", "WSASocketW", "WSAConnect",
		"WSASend", "WSARecv", "InternetOpenW", "InternetOpenUrlW", "InternetConnectW",
		"InternetReadFile", "InternetWriteFile", "InternetCloseHandle",
		"HttpOpenRequestW", "HttpSendRequestW", "HttpQueryInfoW", "WinHttpOpen",
		"WinHttpConnect", "WinHttpSendRequest", "WinHttpReceiveResponse",
		"URLDownloadToFileW", "DnsQuery_W",
	},
	CatService: {
		"OpenSCManagerW", "CreateServiceW", "OpenServiceW", "StartServiceW",
		"ControlService", "DeleteService", "QueryServiceStatusEx",
		"CloseServiceHandle", "EnumServicesStatusExW", "ChangeServiceConfigW",
		"RegisterServiceCtrlHandlerW", "SetServiceStatus", "QueryServiceConfigW",
		"NotifyServiceStatusChangeW", "StartServiceCtrlDispatcherW",
	},
	CatGUI: {
		"CreateWindowExW", "DestroyWindow", "ShowWindow", "FindWindowW",
		"FindWindowExW", "GetForegroundWindow", "SetForegroundWindow",
		"GetWindowTextW", "SetWindowTextW", "SendMessageW", "PostMessageW",
		"GetMessageW", "PeekMessageW", "DispatchMessageW", "TranslateMessage",
		"DefWindowProcW", "RegisterClassExW", "MessageBoxW", "SetWindowsHookExW",
		"UnhookWindowsHookEx", "CallNextHookEx", "GetKeyState", "GetAsyncKeyState",
		"GetCursorPos", "SetCursorPos", "ClipCursor", "OpenClipboard",
		"GetClipboardData", "SetClipboardData", "CloseClipboard",
	},
	CatSync: {
		"CreateMutexW", "OpenMutexW", "ReleaseMutex", "CreateEventW", "OpenEventW",
		"SetEvent", "ResetEvent", "WaitForSingleObject", "WaitForMultipleObjects",
		"CreateSemaphoreW", "ReleaseSemaphore", "Sleep", "SleepEx",
		"NtDelayExecution", "NtWaitForSingleObject", "InitializeCriticalSection",
		"EnterCriticalSection", "LeaveCriticalSection",
	},
	CatSystem: {
		"GetSystemInfo", "GetNativeSystemInfo", "GetVersionExW", "GetComputerNameW",
		"GetUserNameW", "GetSystemTime", "GetLocalTime", "GetTickCount",
		"GetTickCount64", "QueryPerformanceCounter", "GetSystemDirectoryW",
		"GetWindowsDirectoryW", "GetEnvironmentVariableW", "SetEnvironmentVariableW",
		"ExpandEnvironmentStringsW", "GetCommandLineW", "GetModuleHandleW",
		"GetModuleFileNameW", "LoadLibraryW", "LoadLibraryExW", "FreeLibrary",
		"GetProcAddress", "LdrLoadDll", "LdrGetProcedureAddress",
		"IsDebuggerPresent", "CheckRemoteDebuggerPresent", "OutputDebugStringW",
		"SetErrorMode", "GetLastError", "AdjustTokenPrivileges",
	},
}

// VocabSize is the number of distinct API calls: the paper's M = 278.
const VocabSize = 278

var (
	names      []string
	nameToID   map[string]int
	categories []Category
	catToIDs   map[Category][]int
)

func init() {
	names = make([]string, 0, VocabSize)
	nameToID = make(map[string]int, VocabSize)
	catToIDs = make(map[Category][]int, len(Categories))
	for _, cat := range Categories {
		for _, n := range catalog[cat] {
			if _, dup := nameToID[n]; dup {
				panic(fmt.Sprintf("winapi: duplicate API name %q", n))
			}
			id := len(names)
			nameToID[n] = id
			names = append(names, n)
			categories = append(categories, cat)
			catToIDs[cat] = append(catToIDs[cat], id)
		}
	}
	if len(names) != VocabSize {
		panic(fmt.Sprintf("winapi: catalog has %d calls, want %d", len(names), VocabSize))
	}
}

// Count returns the catalog size (always VocabSize).
func Count() int { return len(names) }

// Name returns the API name for id, or an error when id is out of range.
func Name(id int) (string, error) {
	if id < 0 || id >= len(names) {
		return "", fmt.Errorf("winapi: id %d out of range [0, %d)", id, len(names))
	}
	return names[id], nil
}

// ID returns the stable ID of the named API call.
func ID(name string) (int, error) {
	id, ok := nameToID[name]
	if !ok {
		return 0, fmt.Errorf("winapi: unknown API %q", name)
	}
	return id, nil
}

// MustID is ID for compile-time-known names; it panics on unknown names so
// trace profiles fail loudly at package init rather than producing corrupt
// datasets.
func MustID(name string) int {
	id, err := ID(name)
	if err != nil {
		panic(err)
	}
	return id
}

// CategoryOf returns the category of the API call with the given id.
func CategoryOf(id int) (Category, error) {
	if id < 0 || id >= len(categories) {
		return 0, fmt.Errorf("winapi: id %d out of range [0, %d)", id, len(categories))
	}
	return categories[id], nil
}

// IDsByCategory returns the IDs belonging to a category, in stable order.
// The returned slice is a copy.
func IDsByCategory(cat Category) []int {
	ids := catToIDs[cat]
	out := make([]int, len(ids))
	copy(out, ids)
	return out
}

// AllNames returns every API name in ID order. The returned slice is a copy.
func AllNames() []string {
	out := make([]string, len(names))
	copy(out, names)
	return out
}

// MustIDs maps a list of names to IDs, panicking on any unknown name. It is
// the bulk form of MustID for building static trace motifs.
func MustIDs(apiNames ...string) []int {
	out := make([]int, len(apiNames))
	for i, n := range apiNames {
		out[i] = MustID(n)
	}
	return out
}

// CategoryCounts returns the number of API calls per category, sorted by
// category value; useful for dataset statistics.
func CategoryCounts() map[Category]int {
	out := make(map[Category]int, len(catToIDs))
	for c, ids := range catToIDs {
		out[c] = len(ids)
	}
	return out
}

// SortedNames returns all names sorted lexicographically (for display).
func SortedNames() []string {
	out := AllNames()
	sort.Strings(out)
	return out
}
