package winapi

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestVocabSizeMatchesPaper(t *testing.T) {
	// Paper §IV: 2,224 embedding parameters at embedding dim 8 ⇒ M = 278.
	if Count() != 278 {
		t.Fatalf("Count() = %d, want 278", Count())
	}
	if Count() != VocabSize {
		t.Fatalf("Count() = %d disagrees with VocabSize %d", Count(), VocabSize)
	}
}

func TestNamesUniqueAndNonEmpty(t *testing.T) {
	seen := make(map[string]bool, Count())
	for id := 0; id < Count(); id++ {
		n, err := Name(id)
		if err != nil {
			t.Fatalf("Name(%d): %v", id, err)
		}
		if n == "" {
			t.Fatalf("Name(%d) is empty", id)
		}
		if seen[n] {
			t.Fatalf("duplicate API name %q", n)
		}
		seen[n] = true
	}
}

func TestIDNameRoundTrip(t *testing.T) {
	for id := 0; id < Count(); id++ {
		n, err := Name(id)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ID(n)
		if err != nil {
			t.Fatalf("ID(%q): %v", n, err)
		}
		if got != id {
			t.Fatalf("ID(Name(%d)) = %d", id, got)
		}
	}
}

func TestNameErrors(t *testing.T) {
	for _, id := range []int{-1, Count(), 1 << 20} {
		if _, err := Name(id); err == nil {
			t.Errorf("Name(%d) expected error", id)
		}
	}
}

func TestIDErrors(t *testing.T) {
	if _, err := ID("NotARealAPICall"); err == nil {
		t.Error("ID(unknown) expected error")
	}
}

func TestMustIDPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustID(unknown) did not panic")
		}
	}()
	MustID("NotARealAPICall")
}

func TestMustIDs(t *testing.T) {
	ids := MustIDs("CreateFileW", "ReadFile", "CryptEncrypt", "WriteFile")
	if len(ids) != 4 {
		t.Fatalf("MustIDs length = %d", len(ids))
	}
	for i, id := range ids {
		if id < 0 || id >= Count() {
			t.Fatalf("MustIDs[%d] = %d out of range", i, id)
		}
	}
}

func TestCategoryOf(t *testing.T) {
	tests := []struct {
		api  string
		want Category
	}{
		{"CreateFileW", CatFile},
		{"RegSetValueExW", CatRegistry},
		{"CreateProcessW", CatProcess},
		{"VirtualAlloc", CatMemory},
		{"CryptEncrypt", CatCrypto},
		{"connect", CatNetwork},
		{"OpenSCManagerW", CatService},
		{"MessageBoxW", CatGUI},
		{"CreateMutexW", CatSync},
		{"IsDebuggerPresent", CatSystem},
	}
	for _, tt := range tests {
		cat, err := CategoryOf(MustID(tt.api))
		if err != nil {
			t.Fatalf("CategoryOf(%s): %v", tt.api, err)
		}
		if cat != tt.want {
			t.Errorf("CategoryOf(%s) = %v, want %v", tt.api, cat, tt.want)
		}
	}
	if _, err := CategoryOf(-1); err == nil {
		t.Error("CategoryOf(-1) expected error")
	}
}

func TestCategoryString(t *testing.T) {
	for _, c := range Categories {
		if s := c.String(); s == "" || s[0] == 'C' {
			t.Errorf("Category(%d).String() = %q looks wrong", int(c), s)
		}
	}
	if Category(0).String() != "Category(0)" {
		t.Errorf("invalid category formatting: %q", Category(0).String())
	}
}

func TestIDsByCategoryPartition(t *testing.T) {
	total := 0
	seen := make(map[int]bool)
	for _, cat := range Categories {
		ids := IDsByCategory(cat)
		if len(ids) == 0 {
			t.Errorf("category %v has no APIs", cat)
		}
		for _, id := range ids {
			if seen[id] {
				t.Fatalf("id %d in more than one category", id)
			}
			seen[id] = true
			got, err := CategoryOf(id)
			if err != nil || got != cat {
				t.Fatalf("CategoryOf(%d) = %v, %v; want %v", id, got, err, cat)
			}
		}
		total += len(ids)
	}
	if total != Count() {
		t.Fatalf("categories cover %d ids, want %d", total, Count())
	}
}

func TestIDsByCategoryReturnsCopy(t *testing.T) {
	a := IDsByCategory(CatFile)
	a[0] = -999
	b := IDsByCategory(CatFile)
	if b[0] == -999 {
		t.Fatal("IDsByCategory exposes internal state")
	}
}

func TestAllNamesReturnsCopy(t *testing.T) {
	a := AllNames()
	a[0] = "mutated"
	b := AllNames()
	if b[0] == "mutated" {
		t.Fatal("AllNames exposes internal state")
	}
}

func TestCategoryCounts(t *testing.T) {
	counts := CategoryCounts()
	sum := 0
	for _, n := range counts {
		sum += n
	}
	if sum != VocabSize {
		t.Fatalf("category counts sum to %d, want %d", sum, VocabSize)
	}
}

func TestSortedNames(t *testing.T) {
	s := SortedNames()
	if !sort.StringsAreSorted(s) {
		t.Fatal("SortedNames not sorted")
	}
	if len(s) != VocabSize {
		t.Fatalf("SortedNames length = %d", len(s))
	}
}

// Property: every valid id has a category and a name.
func TestPropValidIDsTotal(t *testing.T) {
	f := func(raw uint16) bool {
		id := int(raw) % VocabSize
		if _, err := Name(id); err != nil {
			return false
		}
		_, err := CategoryOf(id)
		return err == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
