// Package infer defines the inference-serving contract shared by every
// layer of the stack. The paper's deployment story (§II, §IV) is a
// data-center node running background ransomware scanning across many
// SmartSSDs under real request load; that requires consumers — detectors,
// nodes, benchmarks, the maintenance loop — to program against a small
// context-aware interface rather than a concrete engine, so that a single
// engine, a multi-device node, a host-side baseline, or the concurrent
// serving layer can be substituted freely.
//
// The package is deliberately tiny: the Inferencer interface, the shared
// Timing breakdown, and the sentinel errors of the contract. Everything
// above it (internal/core, internal/node, internal/serve, internal/cti,
// internal/baseline) implements or consumes it; nothing below it imports
// it.
package infer

import (
	"context"
	"errors"
	"time"

	"github.com/kfrida1/csdinf/internal/kernels"
)

// Timing breaks a classification's simulated latency into data movement
// and FPGA compute. It is shared by every Inferencer implementation;
// host-side baselines report their dispatch latency as Compute with zero
// Transfer.
type Timing struct {
	// Transfer is the data-movement time (SSD read + PCIe path).
	Transfer time.Duration
	// Compute is the kernel (or host model) execution time.
	Compute time.Duration
}

// Total returns Transfer + Compute.
func (t Timing) Total() time.Duration { return t.Transfer + t.Compute }

// Inferencer classifies API-call sequences. Implementations must honor
// context cancellation and deadlines: a canceled ctx aborts the call with
// ctx.Err() before (or instead of) touching the device.
//
// Implementations: core.Engine (one CSD), node.Node (multi-CSD fan-out),
// serve.Server (queued concurrent serving), cti.HotSwapEngine (atomic
// model replacement), and the host-side baselines in internal/baseline.
type Inferencer interface {
	// Predict classifies one host-provided sequence of API-call IDs.
	Predict(ctx context.Context, seq []int) (kernels.Result, Timing, error)
	// PredictStored classifies the sequence resident at the given SSD byte
	// offset — the paper's headline in-storage dataflow. Implementations
	// without attached storage return an error wrapping ErrNoStoredData.
	PredictStored(ctx context.Context, ssdOff int64) (kernels.Result, Timing, error)
	// SeqLen returns the classification window length the inferencer
	// expects.
	SeqLen() int
}

// ErrNoStoredData is returned (wrapped) by PredictStored on inferencers
// with no attached storage, e.g. the host-side baseline models.
var ErrNoStoredData = errors.New("infer: inferencer has no attached storage")
