package infer

import "context"

// tenantKey is the context key carrying a request's tenant identity.
type tenantKey struct{}

// WithTenant stamps a tenant identity on the context. The fleet layer
// reads it to place all of a tenant's requests on the same device
// (consistent hashing), which keeps one tenant's detector traffic from
// smearing across the rack. The detection mux stamps "pid-<n>" so each
// monitored process is a tenant; multi-tenant hosts can stamp coarser
// identities (container, VM, customer). It lives in the shared inference
// contract package so callers at any layer can set it without importing
// the fleet.
func WithTenant(ctx context.Context, tenant string) context.Context {
	if tenant == "" {
		return ctx
	}
	return context.WithValue(ctx, tenantKey{}, tenant)
}

// TenantFrom returns the tenant identity stamped on the context, or ""
// when the request is untenanted (placement then falls back to pure
// least-busy).
func TenantFrom(ctx context.Context) string {
	t, _ := ctx.Value(tenantKey{}).(string)
	return t
}
