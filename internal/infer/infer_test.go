package infer

import (
	"testing"
	"time"
)

func TestTimingTotal(t *testing.T) {
	tm := Timing{Transfer: 3 * time.Microsecond, Compute: 5 * time.Microsecond}
	if tm.Total() != 8*time.Microsecond {
		t.Fatalf("Total() = %v", tm.Total())
	}
	if (Timing{}).Total() != 0 {
		t.Fatal("zero timing has nonzero total")
	}
}
