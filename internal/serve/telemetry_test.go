package serve

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/kfrida1/csdinf/internal/infer"
	"github.com/kfrida1/csdinf/internal/telemetry"
)

func findSeries(t *testing.T, reg *telemetry.Registry, name, device string) *telemetry.Metric {
	t.Helper()
	for _, m := range reg.Snapshot() {
		if m.Name != name {
			continue
		}
		for _, l := range m.Labels {
			if l.Key == "device" && l.Value == device {
				mc := m
				return &mc
			}
		}
	}
	t.Fatalf("series %s{device=%q} not in registry", name, device)
	return nil
}

// TestQueueWaitRecorded holds a worker busy so a second request measurably
// queues, then checks the wait lands in the histogram, DeviceStats, and the
// request's span.
func TestQueueWaitRecorded(t *testing.T) {
	reg := telemetry.NewRegistry()
	spans := telemetry.NewSpanLog(8)
	f := &fakeInf{seqLen: 8, cost: time.Millisecond,
		started: make(chan struct{}, 4), release: make(chan struct{}, 4)}
	s, err := New([]infer.Inferencer{f}, Config{Telemetry: reg, Spans: spans})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var wg sync.WaitGroup
	wg.Add(2)
	for i := 0; i < 2; i++ {
		go func() {
			defer wg.Done()
			if _, _, err := s.Predict(context.Background(), testSeq()); err != nil {
				t.Error(err)
			}
		}()
	}
	<-f.started // first request is on the device
	// Second request queues behind it; give it a measurable wait.
	waitQueued(t, s, 0, 2)
	time.Sleep(5 * time.Millisecond)
	f.release <- struct{}{}
	<-f.started
	f.release <- struct{}{}
	wg.Wait()

	st := s.Stats()[0]
	if st.QueueWaits != 2 {
		t.Fatalf("QueueWaits = %d, want 2", st.QueueWaits)
	}
	if st.QueueWaitMean <= 0 {
		t.Fatalf("QueueWaitMean = %v", st.QueueWaitMean)
	}
	h := findSeries(t, reg, "serve_queue_wait_seconds", "csd-000").Histogram
	if h == nil || h.Count != 2 {
		t.Fatalf("histogram snapshot %+v", h)
	}
	// The queued request waited through the 5ms sleep; the wall-time
	// histogram must reflect at least that.
	if h.Max < int64(5*time.Millisecond) {
		t.Fatalf("max queue wait %v, expected >= 5ms", time.Duration(h.Max))
	}

	got := spans.Snapshot()
	if len(got) != 2 {
		t.Fatalf("%d spans, want 2", len(got))
	}
	for _, sp := range got {
		if sp.Name != "predict" {
			t.Fatalf("span name %q", sp.Name)
		}
		if len(sp.Phases) == 0 || sp.Phases[0].Name != telemetry.PhaseQueue {
			t.Fatalf("span lacks leading queue phase: %v", sp.Phases)
		}
	}
}

func TestServeCountersExposed(t *testing.T) {
	reg := telemetry.NewRegistry()
	f := &fakeInf{seqLen: 8, cost: time.Millisecond}
	s, err := New([]infer.Inferencer{f, &fakeInf{seqLen: 8, cost: time.Millisecond}},
		Config{Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 6; i++ {
		if _, _, err := s.Predict(context.Background(), testSeq()); err != nil {
			t.Fatal(err)
		}
	}
	var jobs int64
	for _, dev := range []string{"csd-000", "csd-001"} {
		jobs += findSeries(t, reg, "serve_jobs_total", dev).Value
	}
	if jobs != 6 {
		t.Fatalf("serve_jobs_total across devices = %d, want 6", jobs)
	}

	// The full per-device set must render in the exposition.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, name := range []string{
		"serve_jobs_total", "serve_dispatches_total", "serve_errors_total",
		"serve_canceled_total", "serve_queue_full_total", "device_pending_requests",
		"device_busy_nanoseconds_total", "device_state", "serve_queue_wait_seconds_bucket",
		"serve_batch_size_bucket",
	} {
		if !strings.Contains(text, name) {
			t.Errorf("exposition missing %s", name)
		}
	}
}

func TestQueueFullAndCanceledCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	f := &fakeInf{seqLen: 8, started: make(chan struct{}, 1), release: make(chan struct{}, 1)}
	s, err := New([]infer.Inferencer{f}, Config{QueueDepth: 1, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Predict(context.Background(), testSeq())
	}()
	<-f.started // request holds the device
	// Fill the queue with a request that will be canceled before dispatch.
	ctx, cancel := context.WithCancel(context.Background())
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, _, err := s.Predict(ctx, testSeq()); !errors.Is(err, context.Canceled) {
			t.Errorf("canceled request: %v", err)
		}
	}()
	waitQueued(t, s, 0, 2)
	// Queue (depth 1) is full: the next submit sheds.
	if _, _, err := s.Predict(context.Background(), testSeq()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("expected ErrQueueFull, got %v", err)
	}
	cancel()
	f.release <- struct{}{}
	wg.Wait()
	s.Close()

	if v := findSeries(t, reg, "serve_queue_full_total", "csd-000").Value; v != 1 {
		t.Fatalf("serve_queue_full_total = %d, want 1", v)
	}
	if v := findSeries(t, reg, "serve_canceled_total", "csd-000").Value; v != 1 {
		t.Fatalf("serve_canceled_total = %d, want 1", v)
	}
	if v := findSeries(t, reg, "device_pending_requests", "csd-000").Value; v != 0 {
		t.Fatalf("device_pending_requests = %d after drain, want 0", v)
	}
}

// TestCallerSpanThreadsThroughServer: a span in the submitting context is
// recorded into (queue phase) but not logged by the server.
func TestCallerSpanThreadsThroughServer(t *testing.T) {
	spans := telemetry.NewSpanLog(4)
	f := &fakeInf{seqLen: 8}
	s, err := New([]infer.Inferencer{f}, Config{Spans: spans})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sp := &telemetry.Span{Name: "caller"}
	ctx := telemetry.WithSpan(context.Background(), sp)
	if _, _, err := s.Predict(ctx, testSeq()); err != nil {
		t.Fatal(err)
	}
	if len(sp.Phases) == 0 || sp.Phases[0].Name != telemetry.PhaseQueue {
		t.Fatalf("caller span missing queue phase: %v", sp.Phases)
	}
	if n := len(spans.Snapshot()); n != 0 {
		t.Fatalf("server logged %d caller-owned spans", n)
	}
}
