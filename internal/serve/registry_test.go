package serve

import (
	"context"
	"errors"
	"sort"
	"testing"
	"time"

	"github.com/kfrida1/csdinf/internal/device"
	"github.com/kfrida1/csdinf/internal/infer"
)

// TestDeviceStatsOrderedByID pins the deterministic ordering contract:
// Stats() is sorted by registry ID regardless of internal slot order, so
// multi-device output diffs cleanly at any fleet size.
func TestDeviceStatsOrderedByID(t *testing.T) {
	engines := []infer.Inferencer{
		&fakeInf{seqLen: 8}, &fakeInf{seqLen: 8}, &fakeInf{seqLen: 8}, &fakeInf{seqLen: 8},
	}
	s, err := New(engines, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	st := s.Stats()
	if len(st) != 4 {
		t.Fatalf("%d stats", len(st))
	}
	ids := make([]string, len(st))
	for i, d := range st {
		ids[i] = d.ID
	}
	if !sort.StringsAreSorted(ids) {
		t.Fatalf("DeviceStats not ID-ordered: %v", ids)
	}
	want := []string{"csd-000", "csd-001", "csd-002", "csd-003"}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("DeviceStats IDs = %v, want %v", ids, want)
		}
		if st[i].State != "ready" {
			t.Fatalf("device %s state %q, want ready", ids[i], st[i].State)
		}
	}
}

// TestSharedRegistryHandles runs the server over pre-registered devices and
// checks lifecycle state steers placement: a drained device attracts no new
// work, and with every device out of rotation submits fail fast.
func TestSharedRegistryHandles(t *testing.T) {
	reg := device.NewRegistry(device.Config{})
	d0, d1 := reg.Register(), reg.Register()
	for _, d := range []*device.Device{d0, d1} {
		if err := d.SetReady("test"); err != nil {
			t.Fatal(err)
		}
	}
	engines := []infer.Inferencer{
		&fakeInf{seqLen: 8, cost: time.Millisecond},
		&fakeInf{seqLen: 8, cost: time.Millisecond},
	}
	s, err := New(engines, Config{Devices: reg, Handles: []*device.Device{d0, d1}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Registry() != reg {
		t.Fatal("Registry() is not the shared registry")
	}
	if reg.Len() != 2 {
		t.Fatalf("server registered extra devices: %d", reg.Len())
	}

	if err := d0.Drain("maintenance"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, _, err := s.Predict(context.Background(), testSeq()); err != nil {
			t.Fatal(err)
		}
	}
	for _, st := range s.Stats() {
		switch st.ID {
		case "csd-000":
			if st.Jobs != 0 {
				t.Fatalf("drained device executed %d jobs", st.Jobs)
			}
			if st.State != "draining" {
				t.Fatalf("csd-000 state %q", st.State)
			}
		case "csd-001":
			if st.Jobs != 8 {
				t.Fatalf("ready device executed %d jobs, want 8", st.Jobs)
			}
		}
	}

	if err := d1.Fail("simulated-fault"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Predict(context.Background(), testSeq()); !errors.Is(err, ErrNoReadyDevice) {
		t.Fatalf("with no ready device, err = %v, want ErrNoReadyDevice", err)
	}

	// Rejoin restores placement.
	if err := d0.SetReady("maintenance-done"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Predict(context.Background(), testSeq()); err != nil {
		t.Fatalf("after rejoin: %v", err)
	}
}

func TestHandleCountValidation(t *testing.T) {
	reg := device.NewRegistry(device.Config{})
	d := reg.Register()
	_, err := New([]infer.Inferencer{&fakeInf{seqLen: 8}, &fakeInf{seqLen: 8}},
		Config{Devices: reg, Handles: []*device.Device{d}})
	if err == nil {
		t.Fatal("mismatched handle count should fail")
	}
}
