// Package serve is the node-level request scheduler: the layer that turns a
// rack of single-stream CSD engines into a concurrent inference service.
//
// The paper's scalability argument (§II) is that SmartSSDs scale by
// "allowing for the installation of multiple devices within a single node";
// this package supplies the serving discipline that argument presumes. Each
// device's engine owns one hardware pipeline and is not safe for concurrent
// use, so the server gives every device a single worker goroutine fed by a
// bounded queue. Incoming requests are placed on the device with the least
// simulated outstanding work (accumulated busy time plus an estimate of its
// queued backlog), a policy that beats round-robin when request costs or
// device loads are uneven. A full queue pushes back — immediately with
// ErrQueueFull, or by blocking until space frees, per Config.Block. Workers
// coalesce adjacent stored-scan requests into one dispatch, the background
// scanning pattern the paper's introduction motivates. Context cancellation
// is honored end-to-end: a canceled request still in a queue is abandoned
// before it ever touches the device.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/kfrida1/csdinf/internal/infer"
	"github.com/kfrida1/csdinf/internal/kernels"
)

// ErrQueueFull is returned (when Config.Block is false) if the chosen
// device's queue has no room — the service is saturated and the caller
// should shed or retry.
var ErrQueueFull = errors.New("serve: device queue full")

// ErrClosed is returned for requests submitted after Close, and for
// requests still queued when Close ran.
var ErrClosed = errors.New("serve: server closed")

// Config controls the scheduler.
type Config struct {
	// QueueDepth bounds each device's request queue; 0 defaults to 64.
	QueueDepth int
	// Block makes a full queue block the caller (until space, cancellation,
	// or close) instead of failing fast with ErrQueueFull.
	Block bool
	// BatchMax bounds how many adjacent queued stored-scan requests a
	// device worker coalesces into one dispatch; 0 defaults to 8, 1
	// disables batching.
	BatchMax int
}

func (c *Config) defaults() error {
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.QueueDepth < 0 {
		return fmt.Errorf("serve: QueueDepth must be positive, got %d", c.QueueDepth)
	}
	if c.BatchMax == 0 {
		c.BatchMax = 8
	}
	if c.BatchMax < 0 {
		return fmt.Errorf("serve: BatchMax must be positive, got %d", c.BatchMax)
	}
	return nil
}

// response carries a completed classification back to its caller.
type response struct {
	res    kernels.Result
	timing infer.Timing
	err    error
}

// request is one queued classification. done is buffered (capacity 1) so a
// worker can always complete a request whose caller has already abandoned
// it.
type request struct {
	ctx    context.Context
	seq    []int // live window; nil for stored requests
	off    int64 // SSD offset; meaningful when stored
	stored bool
	done   chan response
}

// device is one engine plus its serving state.
type device struct {
	inf   infer.Inferencer
	queue chan *request

	busy       atomic.Int64 // accumulated simulated device time, ns
	pending    atomic.Int64 // requests queued or executing
	est        atomic.Int64 // EWMA per-request simulated cost, ns
	jobs       atomic.Int64 // requests executed successfully
	dispatches atomic.Int64 // worker wake-ups (batches count once)
}

// estFloor is the backlog cost assumed for a device whose EWMA has no
// samples yet, so queued requests count against placement from the start.
const estFloor = int64(time.Microsecond)

// score is the device's simulated outstanding work: accumulated busy time
// plus the estimated cost of its backlog.
func (d *device) score() int64 {
	est := d.est.Load()
	if est < estFloor {
		est = estFloor
	}
	return d.busy.Load() + d.pending.Load()*est
}

// Server schedules classification requests over a set of single-stream
// inference engines. It implements infer.Inferencer, so a detector, mux, or
// hot-swap wrapper can sit directly on top of a whole rack of devices. Its
// methods are safe for concurrent use.
type Server struct {
	cfg     Config
	devices []*device

	quit   chan struct{}
	closed atomic.Bool
	wg     sync.WaitGroup
}

var _ infer.Inferencer = (*Server)(nil)

// New starts a server over the given engines — one worker goroutine per
// engine. Engines must all use the same window length. The server takes
// ownership of serializing access to them; callers must not use the engines
// directly while the server is running.
func New(engines []infer.Inferencer, cfg Config) (*Server, error) {
	if len(engines) == 0 {
		return nil, errors.New("serve: no engines")
	}
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	for i, e := range engines {
		if e == nil {
			return nil, fmt.Errorf("serve: engine %d is nil", i)
		}
		if e.SeqLen() != engines[0].SeqLen() {
			return nil, fmt.Errorf("serve: engine %d window %d differs from engine 0 window %d",
				i, e.SeqLen(), engines[0].SeqLen())
		}
	}
	s := &Server{cfg: cfg, quit: make(chan struct{})}
	for _, e := range engines {
		d := &device{inf: e, queue: make(chan *request, cfg.QueueDepth)}
		s.devices = append(s.devices, d)
		s.wg.Add(1)
		go s.run(d)
	}
	return s, nil
}

// Devices returns the number of devices being served.
func (s *Server) Devices() int { return len(s.devices) }

// SeqLen returns the classification window length of the deployed engines.
func (s *Server) SeqLen() int { return s.devices[0].inf.SeqLen() }

// Predict classifies a live window, scheduling it on the device with the
// least simulated outstanding work. The window is copied, so the caller may
// reuse its slice (detectors slide theirs) as soon as Predict returns.
func (s *Server) Predict(ctx context.Context, seq []int) (kernels.Result, infer.Timing, error) {
	req := &request{ctx: ctx, seq: append([]int(nil), seq...), done: make(chan response, 1)}
	return s.submit(ctx, req)
}

// PredictStored classifies the sequence at the given SSD byte offset on the
// least-loaded device. Offsets address the chosen device's SSD, so stored
// serving presumes scan targets are mirrored across the rack (as the
// background-scan replication deployment does). Adjacent queued stored
// requests are coalesced into one device dispatch.
func (s *Server) PredictStored(ctx context.Context, ssdOff int64) (kernels.Result, infer.Timing, error) {
	req := &request{ctx: ctx, off: ssdOff, stored: true, done: make(chan response, 1)}
	return s.submit(ctx, req)
}

// pick returns the device with the least simulated outstanding work.
func (s *Server) pick() *device {
	best := s.devices[0]
	bestScore := best.score()
	for _, d := range s.devices[1:] {
		if sc := d.score(); sc < bestScore {
			best, bestScore = d, sc
		}
	}
	return best
}

func (s *Server) submit(ctx context.Context, req *request) (kernels.Result, infer.Timing, error) {
	if err := ctx.Err(); err != nil {
		return kernels.Result{}, infer.Timing{}, err
	}
	if s.closed.Load() {
		return kernels.Result{}, infer.Timing{}, ErrClosed
	}
	d := s.pick()
	d.pending.Add(1)
	if s.cfg.Block {
		select {
		case d.queue <- req:
		case <-ctx.Done():
			d.pending.Add(-1)
			return kernels.Result{}, infer.Timing{}, ctx.Err()
		case <-s.quit:
			d.pending.Add(-1)
			return kernels.Result{}, infer.Timing{}, ErrClosed
		}
	} else {
		select {
		case d.queue <- req:
		default:
			d.pending.Add(-1)
			return kernels.Result{}, infer.Timing{}, ErrQueueFull
		}
	}
	select {
	case resp := <-req.done:
		return resp.res, resp.timing, resp.err
	case <-ctx.Done():
		// Abandon: the worker will observe the canceled ctx before
		// touching the device and complete the buffered done channel.
		return kernels.Result{}, infer.Timing{}, ctx.Err()
	case <-s.quit:
		// The worker may have finished this request just before closing.
		select {
		case resp := <-req.done:
			return resp.res, resp.timing, resp.err
		default:
			return kernels.Result{}, infer.Timing{}, ErrClosed
		}
	}
}

// run is the device worker: the single goroutine with access to the engine.
func (s *Server) run(d *device) {
	defer s.wg.Done()
	for {
		select {
		case <-s.quit:
			// Fail whatever is still queued.
			for {
				select {
				case req := <-d.queue:
					d.pending.Add(-1)
					req.done <- response{err: ErrClosed}
				default:
					return
				}
			}
		case req := <-d.queue:
			batch := s.collect(d, req)
			d.dispatches.Add(1)
			for _, r := range batch {
				s.execute(d, r)
			}
		}
	}
}

// collect coalesces adjacent queued stored-scan requests behind the first
// into one dispatch, stopping at a live request, an empty queue, or
// BatchMax.
func (s *Server) collect(d *device, first *request) []*request {
	batch := []*request{first}
	if !first.stored || s.cfg.BatchMax <= 1 {
		return batch
	}
	for len(batch) < s.cfg.BatchMax {
		select {
		case next := <-d.queue:
			batch = append(batch, next)
			if !next.stored {
				return batch
			}
		default:
			return batch
		}
	}
	return batch
}

// execute runs one request on the device's engine and completes it. A
// request whose context is already done never touches the engine.
func (s *Server) execute(d *device, req *request) {
	if err := req.ctx.Err(); err != nil {
		d.pending.Add(-1)
		req.done <- response{err: err}
		return
	}
	var resp response
	if req.stored {
		resp.res, resp.timing, resp.err = d.inf.PredictStored(req.ctx, req.off)
	} else {
		resp.res, resp.timing, resp.err = d.inf.Predict(req.ctx, req.seq)
	}
	if total := int64(resp.timing.Total()); total > 0 {
		d.busy.Add(total)
		if old := d.est.Load(); old == 0 {
			d.est.Store(total)
		} else {
			d.est.Store((3*old + total) / 4)
		}
	}
	if resp.err == nil {
		d.jobs.Add(1)
	}
	// Drop the backlog count before releasing the caller, so a caller
	// submitting its next request sees this device's true score.
	d.pending.Add(-1)
	req.done <- resp
}

// DeviceStats describes one device's serving activity.
type DeviceStats struct {
	// Jobs counts successfully executed requests.
	Jobs int64
	// Dispatches counts worker wake-ups; a coalesced stored batch counts
	// once, so Dispatches < Jobs indicates batching is occurring.
	Dispatches int64
	// BusyTime is the accumulated simulated device time.
	BusyTime time.Duration
	// Queued is the current backlog (queued or executing requests).
	Queued int64
}

// Stats returns a snapshot of per-device serving activity.
func (s *Server) Stats() []DeviceStats {
	out := make([]DeviceStats, len(s.devices))
	for i, d := range s.devices {
		out[i] = DeviceStats{
			Jobs:       d.jobs.Load(),
			Dispatches: d.dispatches.Load(),
			BusyTime:   time.Duration(d.busy.Load()),
			Queued:     d.pending.Load(),
		}
	}
	return out
}

// Close stops the workers, fails queued requests with ErrClosed, and waits
// for the workers to exit. Close is idempotent.
func (s *Server) Close() error {
	if s.closed.CompareAndSwap(false, true) {
		close(s.quit)
	}
	s.wg.Wait()
	return nil
}
