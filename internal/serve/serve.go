// Package serve is the node-level request scheduler: the layer that turns a
// rack of single-stream CSD engines into a concurrent inference service.
//
// The paper's scalability argument (§II) is that SmartSSDs scale by
// "allowing for the installation of multiple devices within a single node";
// this package supplies the serving discipline that argument presumes. Each
// device's engine owns one hardware pipeline and is not safe for concurrent
// use, so the server gives every device a single worker goroutine fed by a
// bounded queue. Incoming requests are placed on the ready device with the
// least simulated outstanding work (accumulated busy time plus an estimate
// of its queued backlog), a policy that beats round-robin when request
// costs or device loads are uneven. A full queue pushes back — immediately
// with ErrQueueFull, or by blocking until space frees, per Config.Block.
// Workers coalesce adjacent stored-scan requests into one dispatch, the
// background scanning pattern the paper's introduction motivates. Context
// cancellation is honored end-to-end: a canceled request still in a queue
// is abandoned before it ever touches the device.
//
// Device identity, lifecycle, and busy accounting live in the shared
// internal/device registry, not here: the server consumes registry handles
// (its own, for standalone use, or pre-registered ones handed down by the
// fleet layer), labels its telemetry and trace tracks with registry IDs,
// and respects lifecycle state in placement — a draining device finishes
// its queue but attracts no new work.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/kfrida1/csdinf/internal/device"
	"github.com/kfrida1/csdinf/internal/eventlog"
	"github.com/kfrida1/csdinf/internal/infer"
	"github.com/kfrida1/csdinf/internal/kernels"
	"github.com/kfrida1/csdinf/internal/prof"
	"github.com/kfrida1/csdinf/internal/telemetry"
	"github.com/kfrida1/csdinf/internal/trace"
)

// ErrQueueFull is returned (when Config.Block is false) if the chosen
// device's queue has no room — the service is saturated and the caller
// should shed or retry.
var ErrQueueFull = errors.New("serve: device queue full")

// ErrClosed is returned for requests submitted after Close, and for
// requests still queued when Close ran.
var ErrClosed = errors.New("serve: server closed")

// ErrNoReadyDevice is returned when no device is in the Ready lifecycle
// state — every drive is provisioning, draining, or failed.
var ErrNoReadyDevice = errors.New("serve: no ready device")

// Config controls the scheduler.
type Config struct {
	// QueueDepth bounds each device's request queue; 0 defaults to 64.
	QueueDepth int
	// Block makes a full queue block the caller (until space, cancellation,
	// or close) instead of failing fast with ErrQueueFull.
	Block bool
	// BatchMax bounds how many adjacent queued stored-scan requests a
	// device worker coalesces into one dispatch; 0 defaults to 8, 1
	// disables batching.
	BatchMax int
	// Devices is the shared device registry owning identity, lifecycle,
	// and busy accounting for the engines. Nil builds a private registry
	// (against Config.Telemetry and Config.Events), preserving standalone
	// use; fleet-scale callers pass their own so every layer sees the same
	// device IDs.
	Devices *device.Registry
	// Handles pairs pre-registered devices with engines, index for index
	// (len must equal the engine count). Nil makes the server register one
	// device per engine in Devices and mark it Ready; non-nil leaves
	// lifecycle entirely to the caller — the fleet layer drains, fails,
	// and rejoins devices while the server keeps scheduling around them.
	Handles []*device.Device
	// Telemetry, when non-nil, receives the per-device serving metrics:
	// serve_jobs_total, serve_dispatches_total, serve_errors_total,
	// serve_canceled_total, serve_queue_full_total, the
	// serve_queue_wait_seconds wall-time histogram, and the
	// serve_batch_size histogram — all labeled device="<registry ID>".
	// Busy-time and backlog instruments live with the registry
	// (device_busy_nanoseconds_total, device_pending_requests). With a nil
	// registry the same instruments still back Stats(), just unexported.
	Telemetry *telemetry.Registry
	// Spans, when non-nil, retains a completed telemetry.Span per request
	// for requests that did not already carry one in their context (e.g.
	// direct Predict calls outside a detector).
	Spans *telemetry.SpanLog
	// Trace, when non-nil, records each request's queue residency on the
	// scheduler's per-device tracks (named by registry ID) and assigns the
	// request a trace job ID that rides its context — the correlation key
	// tying the queue event to the transfer and kernel events the device
	// emits for the same request (and mirrored onto the request's
	// telemetry.Span as Span.ID).
	Trace *trace.Tracer
	// Events, when non-nil, receives the scheduler's structured events:
	// per-request completions (debug: request.done, with device and
	// queue-wait attribution), backpressure rejections (warn: queue.full),
	// device-side failures (warn: request.error), and lifecycle events
	// (info: server.start / server.close). Device-attributed events carry
	// the registry ID.
	Events *eventlog.Logger
	// Prof, when non-nil, attributes each request's host wall-clock to
	// pipeline stages (queue, encode, transfer, compute, observe, ...): the
	// server creates a prof.Breakdown per request that does not already
	// carry one in its context, threads it down to the engine, and records
	// it on completion. Requests that arrive with a caller-owned breakdown
	// (e.g. from a detector) are stamped but recorded by their creator.
	Prof *prof.Profiler
}

func (c *Config) defaults() error {
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.QueueDepth < 0 {
		return fmt.Errorf("serve: QueueDepth must be positive, got %d", c.QueueDepth)
	}
	if c.BatchMax == 0 {
		c.BatchMax = 8
	}
	if c.BatchMax < 0 {
		return fmt.Errorf("serve: BatchMax must be positive, got %d", c.BatchMax)
	}
	return nil
}

// response carries a completed classification back to its caller.
type response struct {
	res    kernels.Result
	timing infer.Timing
	err    error
}

// claim states for request.claim.
const (
	claimNone   int32 = iota // unresolved
	claimWorker              // worker will complete done (result or error)
	claimCaller              // caller reclaimed at close; never executed
)

// request is one queued classification. done is buffered (capacity 1) so a
// worker can always complete a request whose caller has already abandoned
// it.
type request struct {
	ctx    context.Context
	seq    []int // live window; nil for stored requests
	off    int64 // SSD offset; meaningful when stored
	stored bool
	done   chan response
	// enqueuedAt stamps submission, so the dispatching worker can record
	// the request's queue wait (wall time: queueing happens in the real
	// host scheduler, unlike the simulated device time in Timing).
	enqueuedAt time.Time
	// claim resolves the close-time race between the caller and the
	// worker: 0 = unresolved, 1 = worker owns it (will deliver done),
	// 2 = caller reclaimed it (ErrClosed, eligible for re-placement
	// upstream). Whoever wins the CAS also decrements the device's
	// pending count. Without it, a caller observing quit while its
	// request executes would abandon work the worker still completes —
	// and a fleet-level retry would then duplicate the window.
	claim atomic.Int32
	// span, when non-nil, accumulates the request's pipeline phases. It is
	// the context span when the caller supplied one, else a server-created
	// span destined for Config.Spans.
	span *telemetry.Span
	// ownSpan marks a server-created span that should be logged on
	// completion (caller-owned spans are the caller's to log).
	ownSpan bool
	// bd, when non-nil, accumulates the request's per-stage host costs —
	// the context breakdown when the caller supplied one, else a
	// server-created breakdown destined for Config.Prof.
	bd *prof.Breakdown
	// ownBD marks a server-created breakdown that should be recorded on
	// completion (caller-owned breakdowns are the caller's to record).
	ownBD bool
	// job is the trace correlation ID (0 when tracing is off).
	job int64
}

// slot is one engine plus its serving state. Identity, lifecycle, and
// busy/backlog accounting live on the registry handle; the scalar serving
// counters live directly in telemetry instruments (created against
// Config.Telemetry or detached when telemetry is off), so Stats() and
// /metrics read the same source of truth.
type slot struct {
	h     *device.Device
	inf   infer.Inferencer
	queue chan *request

	jobs       *telemetry.Counter // requests executed successfully
	dispatches *telemetry.Counter // worker wake-ups (batches count once)
	errors     *telemetry.Counter // failed executions (cancellations excluded)
	canceled   *telemetry.Counter // requests abandoned before touching the device
	queueFull  *telemetry.Counter // ErrQueueFull rejections
	queueWait  *telemetry.Histogram
	batchSize  *telemetry.Histogram
}

// Server schedules classification requests over a set of single-stream
// inference engines. It implements infer.Inferencer, so a detector, mux, or
// hot-swap wrapper can sit directly on top of a whole rack of devices. Its
// methods are safe for concurrent use.
type Server struct {
	cfg   Config
	slots []*slot

	quit   chan struct{}
	closed atomic.Bool
	wg     sync.WaitGroup
}

var _ infer.Inferencer = (*Server)(nil)

// New starts a server over the given engines — one worker goroutine per
// engine. Engines must all use the same window length. The server takes
// ownership of serializing access to them; callers must not use the engines
// directly while the server is running.
//
// Device identity comes from cfg.Handles when supplied (pre-registered by
// the fleet layer, lifecycle managed by the caller); otherwise the server
// registers one device per engine in cfg.Devices (or a private registry)
// and marks it Ready.
func New(engines []infer.Inferencer, cfg Config) (*Server, error) {
	if len(engines) == 0 {
		return nil, errors.New("serve: no engines")
	}
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	for i, e := range engines {
		if e == nil {
			return nil, fmt.Errorf("serve: engine %d is nil", i)
		}
		if e.SeqLen() != engines[0].SeqLen() {
			return nil, fmt.Errorf("serve: engine %d window %d differs from engine 0 window %d",
				i, e.SeqLen(), engines[0].SeqLen())
		}
	}
	if cfg.Handles != nil && len(cfg.Handles) != len(engines) {
		return nil, fmt.Errorf("serve: %d device handles for %d engines", len(cfg.Handles), len(engines))
	}
	handles := cfg.Handles
	if handles == nil {
		if cfg.Devices == nil {
			cfg.Devices = device.NewRegistry(device.Config{
				Telemetry: cfg.Telemetry, Events: cfg.Events,
			})
		}
		for range engines {
			d := cfg.Devices.Register()
			if err := d.SetReady("serve-start"); err != nil {
				return nil, err
			}
			handles = append(handles, d)
		}
	} else {
		for i, h := range handles {
			if h == nil {
				return nil, fmt.Errorf("serve: device handle %d is nil", i)
			}
		}
	}
	s := &Server{cfg: cfg, quit: make(chan struct{})}
	reg := cfg.Telemetry
	for i, e := range engines {
		h := handles[i]
		dl := telemetry.L("device", string(h.ID()))
		d := &slot{
			h:     h,
			inf:   e,
			queue: make(chan *request, cfg.QueueDepth),
			jobs: reg.Counter("serve_jobs_total",
				"Requests executed successfully.", dl),
			dispatches: reg.Counter("serve_dispatches_total",
				"Worker wake-ups; a coalesced stored batch counts once.", dl),
			errors: reg.Counter("serve_errors_total",
				"Requests that failed on the device (cancellations excluded).", dl),
			canceled: reg.Counter("serve_canceled_total",
				"Requests abandoned by context cancellation before touching the device.", dl),
			queueFull: reg.Counter("serve_queue_full_total",
				"Requests rejected with ErrQueueFull.", dl),
			queueWait: reg.Histogram("serve_queue_wait_seconds",
				"Wall time between enqueue and worker dispatch.", telemetry.Buckets{}, dl),
			batchSize: reg.Histogram("serve_batch_size",
				"Stored-scan requests coalesced per dispatch.", telemetry.DefaultCountBuckets(), dl),
		}
		s.slots = append(s.slots, d)
		s.wg.Add(1)
		go s.run(d)
	}
	cfg.Events.Info(context.Background(), "serve", "server.start",
		eventlog.F("devices", len(engines)),
		eventlog.F("queue_depth", cfg.QueueDepth),
		eventlog.F("batch_max", cfg.BatchMax),
		eventlog.F("block", cfg.Block))
	return s, nil
}

// Devices returns the number of devices being served.
func (s *Server) Devices() int { return len(s.slots) }

// Closed reports whether Close has begun: new submits fail with ErrClosed
// and queued requests are being failed for re-placement.
func (s *Server) Closed() bool { return s.closed.Load() }

// Registry returns the device registry the server's engines are
// registered in.
func (s *Server) Registry() *device.Registry { return s.cfg.Devices }

// SeqLen returns the classification window length of the deployed engines.
func (s *Server) SeqLen() int { return s.slots[0].inf.SeqLen() }

// Predict classifies a live window, scheduling it on the ready device with
// the least simulated outstanding work. The window is copied, so the caller
// may reuse its slice (detectors slide theirs) as soon as Predict returns.
func (s *Server) Predict(ctx context.Context, seq []int) (kernels.Result, infer.Timing, error) {
	req := &request{ctx: ctx, seq: append([]int(nil), seq...), done: make(chan response, 1)}
	return s.submit(ctx, req)
}

// PredictStored classifies the sequence at the given SSD byte offset on the
// least-loaded ready device. Offsets address the chosen device's SSD, so
// stored serving presumes scan targets are mirrored across the rack (as the
// background-scan replication deployment does). Adjacent queued stored
// requests are coalesced into one device dispatch.
func (s *Server) PredictStored(ctx context.Context, ssdOff int64) (kernels.Result, infer.Timing, error) {
	req := &request{ctx: ctx, off: ssdOff, stored: true, done: make(chan response, 1)}
	return s.submit(ctx, req)
}

// pick returns the ready device with the least simulated outstanding work,
// or nil when every device is out of rotation (draining, failed, or still
// provisioning).
func (s *Server) pick() *slot {
	var best *slot
	var bestScore int64
	for _, d := range s.slots {
		if !d.h.IsReady() {
			continue
		}
		if sc := d.h.Score(); best == nil || sc < bestScore {
			best, bestScore = d, sc
		}
	}
	return best
}

func (s *Server) submit(ctx context.Context, req *request) (kernels.Result, infer.Timing, error) {
	if err := ctx.Err(); err != nil {
		return kernels.Result{}, infer.Timing{}, err
	}
	if s.closed.Load() {
		return kernels.Result{}, infer.Timing{}, ErrClosed
	}
	if req.span = telemetry.SpanFrom(ctx); req.span == nil && s.cfg.Spans != nil {
		name := "predict"
		if req.stored {
			name = "predict-stored"
		}
		req.span = &telemetry.Span{Name: name}
		req.ownSpan = true
	}
	if s.cfg.Trace.Enabled() {
		req.job = s.cfg.Trace.NewJob()
		req.ctx = trace.WithJob(req.ctx, req.job)
		if req.span != nil {
			req.span.ID = req.job
		}
	}
	if req.bd = prof.BreakdownFrom(req.ctx); req.bd != nil {
		// Caller-owned breakdown: stamp the trace job the scheduler just
		// allocated so the flight recorder can correlate it.
		if req.bd.Job == 0 {
			req.bd.Job = req.job
		}
	} else if s.cfg.Prof != nil {
		req.bd = s.cfg.Prof.NewBreakdown(req.job)
		req.ownBD = true
	}
	d := s.pick()
	if d == nil {
		return kernels.Result{}, infer.Timing{}, ErrNoReadyDevice
	}
	d.h.IncPending()
	req.enqueuedAt = time.Now()
	if s.cfg.Block {
		select {
		case d.queue <- req:
		case <-ctx.Done():
			d.h.DecPending()
			d.canceled.Inc()
			return kernels.Result{}, infer.Timing{}, ctx.Err()
		case <-s.quit:
			d.h.DecPending()
			return kernels.Result{}, infer.Timing{}, ErrClosed
		}
	} else {
		select {
		case d.queue <- req:
		default:
			d.h.DecPending()
			d.queueFull.Inc()
			s.cfg.Events.LogDevice(req.ctx, eventlog.LevelWarn, "serve", "queue.full",
				string(d.h.ID()),
				eventlog.F("queue_depth", s.cfg.QueueDepth))
			return kernels.Result{}, infer.Timing{}, ErrQueueFull
		}
	}
	select {
	case resp := <-req.done:
		return resp.res, resp.timing, resp.err
	case <-ctx.Done():
		// Abandon: the worker will observe the canceled ctx before
		// touching the device and complete the buffered done channel.
		return kernels.Result{}, infer.Timing{}, ctx.Err()
	case <-s.quit:
		if req.claim.CompareAndSwap(claimNone, claimCaller) {
			// Still queued and unclaimed: this request never touched the
			// device and never will — safe for the caller (or a fleet
			// layer) to re-place elsewhere.
			d.h.DecPending()
			return kernels.Result{}, infer.Timing{}, ErrClosed
		}
		// The worker owns it: the device is (or was) executing this
		// request, so the exactly-once answer is whatever the worker
		// delivers.
		resp := <-req.done
		return resp.res, resp.timing, resp.err
	}
}

// run is the device worker: the single goroutine with access to the engine.
func (s *Server) run(d *slot) {
	defer s.wg.Done()
	for {
		// Quit takes priority over further queued work: once Close has run,
		// remaining queued requests are failed with ErrClosed (so a fleet
		// layer can re-place them), not executed. Without this check the
		// blocking select below picks randomly when both are ready.
		select {
		case <-s.quit:
			s.failQueued(d)
			return
		default:
		}
		select {
		case <-s.quit:
			s.failQueued(d)
			return
		case req := <-d.queue:
			batch := s.collect(d, req)
			d.dispatches.Inc()
			d.batchSize.Observe(int64(len(batch)))
			for _, r := range batch {
				s.execute(d, r)
			}
		}
	}
}

// failQueued completes every still-queued request with ErrClosed.
func (s *Server) failQueued(d *slot) {
	for {
		select {
		case req := <-d.queue:
			if req.claim.CompareAndSwap(claimNone, claimWorker) {
				d.h.DecPending()
				req.done <- response{err: ErrClosed}
			}
		default:
			return
		}
	}
}

// collect coalesces adjacent queued stored-scan requests behind the first
// into one dispatch, stopping at a live request, an empty queue, or
// BatchMax.
func (s *Server) collect(d *slot, first *request) []*request {
	batch := []*request{first}
	if !first.stored || s.cfg.BatchMax <= 1 {
		return batch
	}
	for len(batch) < s.cfg.BatchMax {
		select {
		case next := <-d.queue:
			batch = append(batch, next)
			if !next.stored {
				return batch
			}
		default:
			return batch
		}
	}
	return batch
}

// execute runs one request on the device's engine and completes it. A
// request whose context is already done never touches the engine.
func (s *Server) execute(d *slot, req *request) {
	if !req.claim.CompareAndSwap(claimNone, claimWorker) {
		// The caller reclaimed this request at close; it was never
		// executed and the caller has already re-placed it.
		return
	}
	// Queue wait ends here, whether the request proceeds or was abandoned:
	// the scheduling delay was paid either way.
	wait := time.Since(req.enqueuedAt)
	req.bd.Add(prof.StageQueue, wait)
	obs := req.bd.Begin(prof.StageObserve)
	d.queueWait.ObserveDuration(wait)
	if req.span != nil {
		req.span.Record(telemetry.PhaseQueue, wait)
		req.span.Device = string(d.h.ID())
	}
	if tr := s.cfg.Trace; tr.Enabled() {
		// Pure wall-clock domain: the wait really elapsed on the host.
		name := "queue:predict"
		if req.stored {
			name = "queue:predict-stored"
		}
		start := tr.Elapsed() - wait
		if start < 0 {
			start = 0
		}
		tr.Emit(trace.Event{
			Track: trace.Track{Group: "serve", Name: string(d.h.ID())},
			Name:  name, Cat: trace.CatQueue,
			Start: start, Dur: wait, Job: req.job,
		})
	}
	obs.End()
	if err := req.ctx.Err(); err != nil {
		d.h.DecPending()
		d.canceled.Inc()
		req.done <- response{err: err}
		return
	}
	// The engine records transfer/compute phases into the span (and stage
	// costs into the breakdown) it finds in the context; thread the
	// request's down even when the server created them.
	ctx := req.ctx
	if req.ownSpan {
		ctx = telemetry.WithSpan(ctx, req.span)
	}
	if req.ownBD {
		ctx = prof.WithBreakdown(ctx, req.bd)
	}
	var resp response
	if req.stored {
		resp.res, resp.timing, resp.err = d.inf.PredictStored(ctx, req.off)
	} else {
		resp.res, resp.timing, resp.err = d.inf.Predict(ctx, req.seq)
	}
	obs = req.bd.Begin(prof.StageObserve)
	d.h.AddBusy(int64(resp.timing.Total()))
	if resp.err == nil {
		d.jobs.Inc()
		if s.cfg.Events.Enabled(eventlog.LevelDebug) {
			s.cfg.Events.LogDevice(req.ctx, eventlog.LevelDebug, "serve", "request.done",
				string(d.h.ID()),
				eventlog.F("stored", req.stored),
				eventlog.F("queue_wait_ns", wait),
				eventlog.F("device_time_ns", resp.timing.Total()))
		}
	} else {
		d.errors.Inc()
		s.cfg.Events.LogDevice(req.ctx, eventlog.LevelWarn, "serve", "request.error",
			string(d.h.ID()),
			eventlog.F("stored", req.stored),
			eventlog.F("error", resp.err))
	}
	if req.ownSpan {
		s.cfg.Spans.Add(*req.span)
	}
	obs.End()
	if req.ownBD {
		s.cfg.Prof.Record(req.bd)
	}
	// Drop the backlog count before releasing the caller, so a caller
	// submitting its next request sees this device's true score.
	d.h.DecPending()
	req.done <- resp
}

// DeviceStats describes one device's serving activity. It is a read of the
// same telemetry instruments exposed at /metrics.
type DeviceStats struct {
	// ID is the device's stable registry identity.
	ID string
	// State is the device's lifecycle state name.
	State string
	// Jobs counts successfully executed requests.
	Jobs int64
	// Dispatches counts worker wake-ups; a coalesced stored batch counts
	// once, so Dispatches < Jobs indicates batching is occurring.
	Dispatches int64
	// BusyTime is the accumulated simulated device time.
	BusyTime time.Duration
	// Queued is the current backlog (queued or executing requests).
	Queued int64
	// Errors counts failed executions (cancellations excluded).
	Errors int64
	// Canceled counts requests abandoned before touching the device.
	Canceled int64
	// QueueFull counts ErrQueueFull rejections.
	QueueFull int64
	// QueueWaits counts dispatches with a recorded queue wait.
	QueueWaits int64
	// QueueWaitMean and QueueWaitP90 summarize the wall-time queue-wait
	// distribution (zero until the first dispatch).
	QueueWaitMean time.Duration
	QueueWaitP90  time.Duration
}

// Stats returns a snapshot of per-device serving activity, deterministically
// ordered by device ID so multi-device output diffs cleanly at any fleet
// size.
func (s *Server) Stats() []DeviceStats {
	out := make([]DeviceStats, len(s.slots))
	for i, d := range s.slots {
		wait := d.queueWait.Snapshot()
		out[i] = DeviceStats{
			ID:            string(d.h.ID()),
			State:         d.h.State().String(),
			Jobs:          d.jobs.Value(),
			Dispatches:    d.dispatches.Value(),
			BusyTime:      time.Duration(d.h.Busy()),
			Queued:        d.h.Pending(),
			Errors:        d.errors.Value(),
			Canceled:      d.canceled.Value(),
			QueueFull:     d.queueFull.Value(),
			QueueWaits:    wait.Count,
			QueueWaitMean: time.Duration(wait.Mean),
			QueueWaitP90:  time.Duration(wait.P90),
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Close stops the workers, fails queued requests with ErrClosed, and waits
// for the workers to exit. Close is idempotent.
func (s *Server) Close() error {
	if s.closed.CompareAndSwap(false, true) {
		close(s.quit)
		s.wg.Wait()
		// Sweep once more after the workers exit: a submit racing with
		// Close can commit its enqueue after the worker's drain.
		for _, d := range s.slots {
			s.failQueued(d)
		}
		var jobs int64
		for _, d := range s.slots {
			jobs += d.jobs.Value()
		}
		s.cfg.Events.Info(context.Background(), "serve", "server.close",
			eventlog.F("jobs_total", jobs))
		return nil
	}
	s.wg.Wait()
	return nil
}
