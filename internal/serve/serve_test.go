package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/kfrida1/csdinf/internal/activation"
	"github.com/kfrida1/csdinf/internal/core"
	"github.com/kfrida1/csdinf/internal/csd"
	"github.com/kfrida1/csdinf/internal/infer"
	"github.com/kfrida1/csdinf/internal/kernels"
	"github.com/kfrida1/csdinf/internal/lstm"
	"github.com/kfrida1/csdinf/internal/ssd"
)

// fakeInf is a controllable engine: it charges a fixed simulated cost and
// can be gated so requests stay in flight (or queued) while a test arranges
// the scenario it wants.
type fakeInf struct {
	seqLen  int
	cost    time.Duration
	calls   atomic.Int64
	started chan struct{} // when non-nil, receives a token as a call begins
	release chan struct{} // when non-nil, every call waits for a token
}

func (f *fakeInf) exec() (kernels.Result, infer.Timing, error) {
	f.calls.Add(1)
	if f.started != nil {
		f.started <- struct{}{}
	}
	if f.release != nil {
		<-f.release
	}
	return kernels.Result{Probability: 0.1}, infer.Timing{Compute: f.cost}, nil
}

func (f *fakeInf) Predict(ctx context.Context, seq []int) (kernels.Result, infer.Timing, error) {
	return f.exec()
}

func (f *fakeInf) PredictStored(ctx context.Context, ssdOff int64) (kernels.Result, infer.Timing, error) {
	return f.exec()
}

func (f *fakeInf) SeqLen() int { return f.seqLen }

func testSeq() []int { return []int{1, 2, 3, 4, 5, 6, 7, 8} }

// waitQueued polls until the single device's backlog reaches want.
func waitQueued(t *testing.T, s *Server, dev int, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.Stats()[dev].Queued >= want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("backlog never reached %d (stats %+v)", want, s.Stats())
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Error("no engines: expected error")
	}
	if _, err := New([]infer.Inferencer{nil}, Config{}); err == nil {
		t.Error("nil engine: expected error")
	}
	if _, err := New([]infer.Inferencer{&fakeInf{seqLen: 4}}, Config{QueueDepth: -1}); err == nil {
		t.Error("negative queue depth: expected error")
	}
	if _, err := New([]infer.Inferencer{&fakeInf{seqLen: 4}}, Config{BatchMax: -1}); err == nil {
		t.Error("negative batch max: expected error")
	}
	if _, err := New([]infer.Inferencer{&fakeInf{seqLen: 4}, &fakeInf{seqLen: 8}}, Config{}); err == nil {
		t.Error("mismatched windows: expected error")
	}
	s, err := New([]infer.Inferencer{&fakeInf{seqLen: 8}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Devices() != 1 || s.SeqLen() != 8 {
		t.Fatalf("Devices = %d, SeqLen = %d", s.Devices(), s.SeqLen())
	}
}

func TestLeastBusyPlacement(t *testing.T) {
	slow := &fakeInf{seqLen: 8, cost: 10 * time.Millisecond}
	fast := &fakeInf{seqLen: 8, cost: time.Millisecond}
	s, err := New([]infer.Inferencer{slow, fast}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 22; i++ {
		if _, _, err := s.Predict(context.Background(), testSeq()); err != nil {
			t.Fatal(err)
		}
	}
	sc, fc := slow.calls.Load(), fast.calls.Load()
	if sc+fc != 22 {
		t.Fatalf("calls = %d + %d, want 22", sc, fc)
	}
	// A 10× cost asymmetry must steer most work to the fast device;
	// round-robin would split 11/11.
	if fc <= 2*sc {
		t.Fatalf("least-busy placement ineffective: slow %d, fast %d", sc, fc)
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	f := &fakeInf{seqLen: 8, started: make(chan struct{}, 8), release: make(chan struct{}, 8)}
	s, err := New([]infer.Inferencer{f}, Config{QueueDepth: 1, BatchMax: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	results := make(chan error, 2)
	submit := func() {
		defer wg.Done()
		_, _, err := s.Predict(context.Background(), testSeq())
		results <- err
	}
	wg.Add(1)
	go submit() // A: begins executing
	<-f.started
	wg.Add(1)
	go submit() // B: sits in the depth-1 queue
	waitQueued(t, s, 0, 2)
	// C: queue is full, non-blocking mode sheds immediately.
	if _, _, err := s.Predict(context.Background(), testSeq()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("saturated submit error = %v, want ErrQueueFull", err)
	}
	f.release <- struct{}{}
	f.release <- struct{}{}
	wg.Wait()
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Fatal(err)
		}
	}
}

func TestBlockingBackpressureHonorsCancel(t *testing.T) {
	f := &fakeInf{seqLen: 8, started: make(chan struct{}, 8), release: make(chan struct{}, 8)}
	s, err := New([]infer.Inferencer{f}, Config{QueueDepth: 1, Block: true, BatchMax: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	submit := func() {
		defer wg.Done()
		s.Predict(context.Background(), testSeq())
	}
	wg.Add(1)
	go submit() // A: executing
	<-f.started
	wg.Add(1)
	go submit() // B: queued
	waitQueued(t, s, 0, 2)
	// C: blocks in the queue send until its context is canceled.
	ctx, cancel := context.WithCancel(context.Background())
	cErr := make(chan error, 1)
	go func() {
		_, _, err := s.Predict(ctx, testSeq())
		cErr <- err
	}()
	waitQueued(t, s, 0, 3) // pending counts the blocked sender
	cancel()
	if err := <-cErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("blocked submit error = %v, want context.Canceled", err)
	}
	f.release <- struct{}{}
	f.release <- struct{}{}
	wg.Wait()
}

func TestCanceledQueuedRequestNeverReachesDevice(t *testing.T) {
	f := &fakeInf{seqLen: 8, started: make(chan struct{}, 8), release: make(chan struct{}, 8)}
	s, err := New([]infer.Inferencer{f}, Config{QueueDepth: 4, BatchMax: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // A: begins executing and holds the device
		defer wg.Done()
		if _, _, err := s.Predict(context.Background(), testSeq()); err != nil {
			t.Error(err)
		}
	}()
	<-f.started
	// B: queued behind A with a cancelable context.
	ctx, cancel := context.WithCancel(context.Background())
	bErr := make(chan error, 1)
	go func() {
		_, _, err := s.Predict(ctx, testSeq())
		bErr <- err
	}()
	waitQueued(t, s, 0, 2)
	cancel()
	if err := <-bErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled queued request error = %v, want context.Canceled", err)
	}
	f.release <- struct{}{} // let A finish; the worker then drains B
	wg.Wait()
	// C proves the device keeps serving after the abandoned request.
	f.release <- struct{}{}
	if _, _, err := s.Predict(context.Background(), testSeq()); err != nil {
		t.Fatal(err)
	}
	if got := f.calls.Load(); got != 2 {
		t.Fatalf("engine executed %d requests, want 2 (the canceled one must never reach it)", got)
	}
}

func TestExpiredDeadlineRejectedUpFront(t *testing.T) {
	f := &fakeInf{seqLen: 8}
	s, err := New([]infer.Inferencer{f}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, _, err := s.Predict(ctx, testSeq()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline error = %v, want context.DeadlineExceeded", err)
	}
	if f.calls.Load() != 0 {
		t.Fatal("expired request reached the device")
	}
}

func TestStoredScanBatching(t *testing.T) {
	f := &fakeInf{seqLen: 8, started: make(chan struct{}, 8), release: make(chan struct{}, 8)}
	s, err := New([]infer.Inferencer{f}, Config{QueueDepth: 8, BatchMax: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // live request holds the device while the scan burst queues
		defer wg.Done()
		if _, _, err := s.Predict(context.Background(), testSeq()); err != nil {
			t.Error(err)
		}
	}()
	<-f.started
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, _, err := s.PredictStored(context.Background(), int64(i*64)); err != nil {
				t.Error(err)
			}
		}(i)
	}
	waitQueued(t, s, 0, 5)
	for i := 0; i < 5; i++ {
		f.release <- struct{}{}
	}
	wg.Wait()
	st := s.Stats()[0]
	if st.Jobs != 5 {
		t.Fatalf("jobs = %d, want 5", st.Jobs)
	}
	// The live request is one dispatch; the 4 adjacent stored requests must
	// coalesce into a single dispatch.
	if st.Dispatches != 2 {
		t.Fatalf("dispatches = %d, want 2 (batching inactive)", st.Dispatches)
	}
}

func TestCloseFailsPendingAndRejectsNew(t *testing.T) {
	f := &fakeInf{seqLen: 8}
	s, err := New([]infer.Inferencer{f}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Predict(context.Background(), testSeq()); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("second Close must be a no-op, got", err)
	}
	if _, _, err := s.Predict(context.Background(), testSeq()); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close error = %v, want ErrClosed", err)
	}
}

// testEngines deploys one trained model onto n fresh simulated CSDs, with
// the scan target mirrored at offset 0 on every drive.
func testEngines(t *testing.T, n int) []infer.Inferencer {
	t.Helper()
	m, err := lstm.NewModel(lstm.Config{
		VocabSize: 20, EmbedDim: 4, HiddenSize: 6, CellActivation: activation.Softsign,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]infer.Inferencer, n)
	for i := range out {
		dev, err := csd.New(csd.Config{SSD: ssd.Config{Capacity: 1 << 20}})
		if err != nil {
			t.Fatal(err)
		}
		eng, err := core.Deploy(dev, m, core.DeployConfig{SeqLen: 8})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dev.StoreSequence(0, testSeq()); err != nil {
			t.Fatal(err)
		}
		out[i] = eng
	}
	return out
}

// TestConcurrentStress drives 64 concurrent callers through 4 simulated
// devices — run under -race, it proves the scheduler serializes every
// engine correctly.
func TestConcurrentStress(t *testing.T) {
	s, err := New(testEngines(t, 4), Config{Block: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const callers, perCaller = 64, 8
	var wg sync.WaitGroup
	errCh := make(chan error, callers)
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perCaller; i++ {
				var err error
				if (g+i)%2 == 0 {
					_, _, err = s.Predict(context.Background(), testSeq())
				} else {
					_, _, err = s.PredictStored(context.Background(), 0)
				}
				if err != nil {
					errCh <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	var jobs int64
	for i, st := range s.Stats() {
		if st.Jobs == 0 {
			t.Errorf("device %d served nothing; placement starved it", i)
		}
		jobs += st.Jobs
	}
	if jobs != callers*perCaller {
		t.Fatalf("total jobs = %d, want %d", jobs, callers*perCaller)
	}
}
