// Package energy models the power and energy-per-inference comparison
// behind the paper's efficiency claims: CSD-based inference "not only
// inherently reduces power consumption" but also frees the CPU, reducing
// operational costs such as cooling (§I, §VII).
//
// FPGA power is estimated from placed-resource utilization — the standard
// first-order model used by the Xilinx Power Estimator: a static floor plus
// dynamic power proportional to active DSP/BRAM/LUT counts at the kernel
// clock. CPU/GPU power uses package-level draw under inference load. The
// energy per classification is then power × latency, which is where the CSD
// wins twice: an order of magnitude lower power *and* orders of magnitude
// lower latency.
package energy

import (
	"errors"
	"fmt"

	"github.com/kfrida1/csdinf/internal/hls"
)

// Power coefficients for the FPGA dynamic-power model at the 300 MHz
// kernel clock, in watts per active unit. They are first-order XPE-class
// estimates for UltraScale+ fabric.
const (
	// StaticFPGAWatts is the device static power floor (SmartSSD-class
	// FPGA plus its DDR).
	StaticFPGAWatts = 4.0
	// WattsPerDSP is dynamic power per active DSP slice.
	WattsPerDSP = 0.0025
	// WattsPerKLUT is dynamic power per thousand active LUTs.
	WattsPerKLUT = 0.12
	// WattsPerBRAM is dynamic power per active BRAM36.
	WattsPerBRAM = 0.015
)

// Platform power draws under inference load (package level).
const (
	// XeonWatts is a Xeon Silver-class package under single-stream
	// inference load.
	XeonWatts = 85.0
	// A100Watts is an A100 under single-stream small-model inference —
	// barely above its ~50 W idle draw and far below the 400 W TDP, which
	// requires saturating batch sizes.
	A100Watts = 70.0
	// SmartSSDWatts is the SmartSSD's device-level power envelope
	// (SSD + FPGA active), per its product brief.
	SmartSSDWatts = 25.0
)

// FPGAPower estimates watts for a design occupying the given resources.
func FPGAPower(used hls.Resources) (float64, error) {
	if used.DSP < 0 || used.LUT < 0 || used.BRAM < 0 {
		return 0, errors.New("energy: negative resource counts")
	}
	return StaticFPGAWatts +
		float64(used.DSP)*WattsPerDSP +
		float64(used.LUT)/1000*WattsPerKLUT +
		float64(used.BRAM)*WattsPerBRAM, nil
}

// Estimate is an energy-per-inference figure for one platform.
type Estimate struct {
	Platform string
	// Watts is the power draw during inference.
	Watts float64
	// LatencyUS is the per-item inference latency in µs.
	LatencyUS float64
	// MicroJoules is the energy per sequence item: W × µs.
	MicroJoules float64
}

// PerItem computes the energy per sequence item.
func PerItem(platform string, watts, latencyUS float64) (Estimate, error) {
	if watts <= 0 {
		return Estimate{}, fmt.Errorf("energy: power must be positive, got %v W", watts)
	}
	if latencyUS <= 0 {
		return Estimate{}, fmt.Errorf("energy: latency must be positive, got %v µs", latencyUS)
	}
	return Estimate{
		Platform:    platform,
		Watts:       watts,
		LatencyUS:   latencyUS,
		MicroJoules: watts * latencyUS,
	}, nil
}

// Compare builds the three-platform energy comparison of the paper's
// efficiency argument from measured/modelled latencies.
func Compare(fpgaUsed hls.Resources, fpgaLatencyUS, cpuLatencyUS, gpuLatencyUS float64) ([]Estimate, error) {
	fpgaDynamic, err := FPGAPower(fpgaUsed)
	if err != nil {
		return nil, err
	}
	// The deployed CSD draws its device envelope or the XPE estimate,
	// whichever is larger (the SSD side is active serving P2P reads).
	watts := fpgaDynamic
	if SmartSSDWatts > watts {
		watts = SmartSSDWatts
	}
	fpga, err := PerItem("FPGA (CSD)", watts, fpgaLatencyUS)
	if err != nil {
		return nil, err
	}
	cpu, err := PerItem("CPU (Intel Xeon)", XeonWatts, cpuLatencyUS)
	if err != nil {
		return nil, err
	}
	gpu, err := PerItem("GPU (NVIDIA A100)", A100Watts, gpuLatencyUS)
	if err != nil {
		return nil, err
	}
	return []Estimate{fpga, cpu, gpu}, nil
}

// SavingsVs returns how many times less energy per item a uses than b.
func SavingsVs(a, b Estimate) float64 {
	if a.MicroJoules == 0 {
		return 0
	}
	return b.MicroJoules / a.MicroJoules
}
