package energy

import (
	"math"
	"testing"

	"github.com/kfrida1/csdinf/internal/hls"
)

func TestFPGAPower(t *testing.T) {
	// Empty design: static floor only.
	p, err := FPGAPower(hls.Resources{})
	if err != nil {
		t.Fatal(err)
	}
	if p != StaticFPGAWatts {
		t.Fatalf("idle power = %v, want %v", p, StaticFPGAWatts)
	}
	// The paper's fixed-point design: ~5,200 DSPs, ~330K LUTs.
	p, err = FPGAPower(hls.Resources{DSP: 5200, LUT: 330_000, BRAM: 10})
	if err != nil {
		t.Fatal(err)
	}
	// 4 + 13 + 39.6 + 0.15 ≈ 57 W — an accelerator-card figure, far below
	// CPU/GPU package draw.
	if p < 30 || p > 80 {
		t.Fatalf("fixed-point design power = %v W, expected tens of watts", p)
	}
	if _, err := FPGAPower(hls.Resources{DSP: -1}); err == nil {
		t.Error("negative resources: expected error")
	}
}

func TestPerItemValidation(t *testing.T) {
	if _, err := PerItem("x", 0, 1); err == nil {
		t.Error("zero watts: expected error")
	}
	if _, err := PerItem("x", 1, -1); err == nil {
		t.Error("negative latency: expected error")
	}
	e, err := PerItem("x", 10, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if e.MicroJoules != 25 {
		t.Fatalf("energy = %v µJ, want 25", e.MicroJoules)
	}
}

func TestCompareOrdering(t *testing.T) {
	// Latencies from Table I.
	ests, err := Compare(hls.Resources{DSP: 5200, LUT: 330_000}, 2.15, 991.58, 741.35)
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 3 {
		t.Fatalf("platforms = %d", len(ests))
	}
	fpga, cpu, gpu := ests[0], ests[1], ests[2]
	// The efficiency claim: the CSD wins on power AND latency, so energy
	// per item is orders of magnitude lower.
	if !(fpga.MicroJoules < gpu.MicroJoules && gpu.MicroJoules < cpu.MicroJoules) {
		t.Fatalf("energy ordering broken: %v %v %v",
			fpga.MicroJoules, gpu.MicroJoules, cpu.MicroJoules)
	}
	if s := SavingsVs(fpga, gpu); s < 100 {
		t.Fatalf("CSD energy savings vs GPU = %.0f×, expected > 100×", s)
	}
	if s := SavingsVs(fpga, cpu); s < 300 {
		t.Fatalf("CSD energy savings vs CPU = %.0f×, expected > 300×", s)
	}
	// FPGA power below both platforms.
	if fpga.Watts >= gpu.Watts || fpga.Watts >= cpu.Watts {
		t.Fatalf("CSD power %v W not below CPU %v / GPU %v", fpga.Watts, cpu.Watts, gpu.Watts)
	}
}

func TestCompareErrorPaths(t *testing.T) {
	if _, err := Compare(hls.Resources{DSP: -1}, 1, 1, 1); err == nil {
		t.Error("bad resources: expected error")
	}
	if _, err := Compare(hls.Resources{}, 0, 1, 1); err == nil {
		t.Error("zero fpga latency: expected error")
	}
	if _, err := Compare(hls.Resources{}, 1, 0, 1); err == nil {
		t.Error("zero cpu latency: expected error")
	}
	if _, err := Compare(hls.Resources{}, 1, 1, 0); err == nil {
		t.Error("zero gpu latency: expected error")
	}
}

func TestSavingsVsZero(t *testing.T) {
	if got := SavingsVs(Estimate{}, Estimate{MicroJoules: 5}); got != 0 {
		t.Fatalf("SavingsVs with zero baseline = %v", got)
	}
}

func TestSmartSSDEnvelopeFloor(t *testing.T) {
	// A tiny design's XPE estimate is below the device envelope; Compare
	// must charge at least the SmartSSD's device power.
	ests, err := Compare(hls.Resources{DSP: 10}, 2.15, 991.58, 741.35)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ests[0].Watts-SmartSSDWatts) > 1e-9 {
		t.Fatalf("small-design power = %v, want device envelope %v", ests[0].Watts, SmartSSDWatts)
	}
}
