package core

import (
	"context"
	"testing"

	"github.com/kfrida1/csdinf/internal/activation"
	"github.com/kfrida1/csdinf/internal/csd"
	"github.com/kfrida1/csdinf/internal/lstm"
	"github.com/kfrida1/csdinf/internal/ssd"
	"github.com/kfrida1/csdinf/internal/telemetry"
)

// TestEngineRecordsTelemetry deploys against a registry and checks each
// classification lands in the transfer/compute histograms, the prediction
// counter, and any span riding the context — with the simulated timings,
// not wall time.
func TestEngineRecordsTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	dev, err := csd.New(csd.Config{SSD: ssd.Config{Capacity: 1 << 20}})
	if err != nil {
		t.Fatal(err)
	}
	m, err := lstm.NewModel(lstm.Config{
		VocabSize: 30, EmbedDim: 4, HiddenSize: 8, CellActivation: activation.Softsign,
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Deploy(dev, m, DeployConfig{SeqLen: 10, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}

	seq := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	sp := &telemetry.Span{Name: "test"}
	ctx := telemetry.WithSpan(context.Background(), sp)
	const n = 3
	var lastTiming Timing
	for i := 0; i < n; i++ {
		_, timing, err := eng.Predict(ctx, seq)
		if err != nil {
			t.Fatal(err)
		}
		lastTiming = timing
	}

	var xfer, compute *telemetry.HistogramSnapshot
	var preds int64
	for _, mt := range reg.Snapshot() {
		switch mt.Name {
		case "engine_transfer_seconds":
			h := *mt.Histogram
			xfer = &h
		case "engine_compute_seconds":
			h := *mt.Histogram
			compute = &h
		case "engine_predictions_total":
			preds = mt.Value
		}
	}
	if xfer == nil || compute == nil {
		t.Fatal("engine histograms not registered")
	}
	if xfer.Count != n || compute.Count != n {
		t.Fatalf("histogram counts transfer=%d compute=%d, want %d", xfer.Count, compute.Count, n)
	}
	if preds != n {
		t.Fatalf("engine_predictions_total = %d, want %d", preds, n)
	}
	// The histograms must hold the simulated device model's timings: every
	// identical classification costs the same, so min == max == observed.
	if xfer.Min != int64(lastTiming.Transfer) || xfer.Max != int64(lastTiming.Transfer) {
		t.Fatalf("transfer histogram [%d, %d] != simulated %d", xfer.Min, xfer.Max, lastTiming.Transfer)
	}
	if compute.Min != int64(lastTiming.Compute) || compute.Max != int64(lastTiming.Compute) {
		t.Fatalf("compute histogram [%d, %d] != simulated %d", compute.Min, compute.Max, lastTiming.Compute)
	}

	// The span accumulated one transfer + one compute phase per prediction.
	if len(sp.Phases) != 2*n {
		t.Fatalf("span has %d phases, want %d", len(sp.Phases), 2*n)
	}
	if sp.Phases[0].Name != telemetry.PhaseTransfer || sp.Phases[1].Name != telemetry.PhaseCompute {
		t.Fatalf("phase order %q, %q", sp.Phases[0].Name, sp.Phases[1].Name)
	}
	if sp.Phases[0].Duration != lastTiming.Transfer || sp.Phases[1].Duration != lastTiming.Compute {
		t.Fatal("span phases don't carry the simulated timings")
	}
}

// TestEngineWithoutTelemetryStillCounts: a nil registry hands out detached
// instruments; classification must work identically.
func TestEngineWithoutTelemetryStillCounts(t *testing.T) {
	_, eng := testSetup(t, 0, 10)
	if _, _, err := eng.Predict(context.Background(), []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}); err != nil {
		t.Fatal(err)
	}
	if eng.predictions.Value() != 1 {
		t.Fatalf("detached prediction counter = %d", eng.predictions.Value())
	}
}
