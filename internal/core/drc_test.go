package core

import (
	"errors"
	"testing"

	"github.com/kfrida1/csdinf/internal/csd"
	"github.com/kfrida1/csdinf/internal/drc"
	"github.com/kfrida1/csdinf/internal/eventlog"
	"github.com/kfrida1/csdinf/internal/fpga"
	"github.com/kfrida1/csdinf/internal/kernels"
	"github.com/kfrida1/csdinf/internal/lstm"
)

// TestDeployRefusesIllegalDesign pins the static gate: the fixed-point
// design does not fit the KU15P, and Deploy must refuse it from the
// design-rule check — before any device allocation — with an error that
// matches both the DRC sentinel and the legacy resource-exhaustion probe.
func TestDeployRefusesIllegalDesign(t *testing.T) {
	dev, err := csd.New(csd.Config{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := lstm.NewModel(lstm.PaperConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}

	_, err = Deploy(dev, m, DeployConfig{Level: kernels.LevelFixedPoint, Part: fpga.KU15P})
	if err == nil {
		t.Fatal("fixed-point on KU15P should be refused")
	}
	var rej *drc.RejectError
	if !errors.As(err, &rej) {
		t.Fatalf("error = %v, want *drc.RejectError", err)
	}
	if !errors.Is(err, drc.ErrRejected) || !errors.Is(err, fpga.ErrResourceExhausted) {
		t.Fatalf("error %v should match ErrRejected and ErrResourceExhausted", err)
	}
	if rej.Report.Errors == 0 {
		t.Fatal("rejection carries no error findings")
	}

	// No device state may have been touched: the weight buffer allocation
	// happens after the gate, so a fresh allocation of the full bank must
	// still succeed.
	if _, err := dev.Alloc(1<<30, 0); err != nil {
		t.Fatalf("device was touched before the refusal: %v", err)
	}
}

// TestDeployDRCWarnAllowsAndLogs checks the warn policy deploys anyway but
// surfaces the findings on the event log.
func TestDeployDRCWarnAllowsAndLogs(t *testing.T) {
	dev, err := csd.New(csd.Config{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := lstm.NewModel(lstm.PaperConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	log := eventlog.New(eventlog.Config{MinLevel: eventlog.LevelDebug})

	// Vanilla has warn-level II findings (the memory-port bound on the
	// cell-update loop) but no errors: both policies must admit it.
	eng, err := Deploy(dev, m, DeployConfig{Level: kernels.LevelVanilla, SeqLen: 4, Events: log})
	if err != nil {
		t.Fatalf("vanilla deploy under enforce: %v", err)
	}
	if eng == nil {
		t.Fatal("nil engine")
	}
	var sawFinding bool
	for _, ev := range log.Recent() {
		if ev.Name == "engine.drc_finding" {
			sawFinding = true
		}
	}
	if !sawFinding {
		t.Fatal("warn-level findings were not surfaced as events")
	}
}

// TestDeployDRCOff pins the escape hatch: with the check off, the refusal
// comes from the runtime placement instead (kernels.New), preserving the
// old failure mode.
func TestDeployDRCOff(t *testing.T) {
	dev, err := csd.New(csd.Config{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := lstm.NewModel(lstm.PaperConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Deploy(dev, m, DeployConfig{Level: kernels.LevelFixedPoint, Part: fpga.KU15P, DRC: DRCOff})
	if err == nil {
		t.Fatal("fixed-point on KU15P should still fail at placement")
	}
	var rej *drc.RejectError
	if errors.As(err, &rej) {
		t.Fatal("DRCOff should not produce a RejectError")
	}
	if !errors.Is(err, fpga.ErrResourceExhausted) {
		t.Fatalf("error = %v, want runtime ErrResourceExhausted", err)
	}
}
