package core

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"github.com/kfrida1/csdinf/internal/activation"
	"github.com/kfrida1/csdinf/internal/csd"
	"github.com/kfrida1/csdinf/internal/kernels"
	"github.com/kfrida1/csdinf/internal/lstm"
	"github.com/kfrida1/csdinf/internal/ssd"
)

func testSetup(t *testing.T, level kernels.OptLevel, seqLen int) (*csd.SmartSSD, *Engine) {
	t.Helper()
	dev, err := csd.New(csd.Config{SSD: ssd.Config{Capacity: 1 << 20}})
	if err != nil {
		t.Fatal(err)
	}
	m, err := lstm.NewModel(lstm.Config{
		VocabSize: 30, EmbedDim: 4, HiddenSize: 8, CellActivation: activation.Softsign,
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Deploy(dev, m, DeployConfig{Level: level, SeqLen: seqLen})
	if err != nil {
		t.Fatal(err)
	}
	return dev, eng
}

func TestDeployValidation(t *testing.T) {
	dev, err := csd.New(csd.Config{SSD: ssd.Config{Capacity: 1 << 20}})
	if err != nil {
		t.Fatal(err)
	}
	m, err := lstm.NewModel(lstm.Config{
		VocabSize: 10, EmbedDim: 2, HiddenSize: 4, CellActivation: activation.Softsign,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Deploy(nil, m, DeployConfig{}); err == nil {
		t.Error("nil device: expected error")
	}
	if _, err := Deploy(dev, nil, DeployConfig{}); err == nil {
		t.Error("nil model: expected error")
	}
	if _, err := Deploy(dev, m, DeployConfig{SeqLen: -2}); err == nil {
		t.Error("bad seqlen: expected error")
	}
}

func TestDeployChargesInitTime(t *testing.T) {
	_, eng := testSetup(t, kernels.LevelFixedPoint, 10)
	if eng.InitTime() <= 0 {
		t.Fatal("deployment charged no host-initialization time")
	}
	if eng.SeqLen() != 10 {
		t.Fatalf("SeqLen = %d", eng.SeqLen())
	}
}

func TestPredictStoredP2P(t *testing.T) {
	dev, eng := testSetup(t, kernels.LevelFixedPoint, 10)
	seq := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if _, err := dev.StoreSequence(8192, seq); err != nil {
		t.Fatal(err)
	}
	before := dev.Traffic()
	res, timing, err := eng.PredictStored(context.Background(), 8192)
	if err != nil {
		t.Fatal(err)
	}
	if timing.Transfer <= 0 || timing.Compute <= 0 {
		t.Fatalf("timing = %+v", timing)
	}
	if timing.Total() != timing.Transfer+timing.Compute {
		t.Fatal("Total() arithmetic broken")
	}
	if res.Probability <= 0 || res.Probability >= 1 {
		t.Fatalf("probability = %v", res.Probability)
	}
	after := dev.Traffic()
	if after.P2PBytes <= before.P2PBytes {
		t.Fatal("P2P path moved no bytes through the switch")
	}
	if after.HostBytes != before.HostBytes {
		t.Fatal("P2P classification leaked traffic through the host")
	}
}

func TestPredictStoredHostPathSlower(t *testing.T) {
	dev, eng := testSetup(t, kernels.LevelFixedPoint, 10)
	seq := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if _, err := dev.StoreSequence(0, seq); err != nil {
		t.Fatal(err)
	}
	_, p2p, err := eng.PredictStored(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	_, host, err := eng.PredictStoredViaHost(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if p2p.Transfer >= host.Transfer {
		t.Fatalf("P2P transfer %v not faster than host path %v", p2p.Transfer, host.Transfer)
	}
	if p2p.Compute != host.Compute {
		t.Fatalf("compute should be identical: %v vs %v", p2p.Compute, host.Compute)
	}
}

func TestPredictDirect(t *testing.T) {
	_, eng := testSetup(t, kernels.LevelVanilla, 5)
	res, timing, err := eng.Predict(context.Background(), []int{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if timing.Transfer <= 0 {
		t.Fatal("direct predict should pay a host-link transfer")
	}
	if res.Probability <= 0 || res.Probability >= 1 {
		t.Fatalf("probability = %v", res.Probability)
	}
	if _, _, err := eng.Predict(context.Background(), []int{1, 2}); err == nil {
		t.Error("short sequence: expected error")
	}
	if _, _, err := eng.Predict(context.Background(), []int{-1, 2, 3, 4, 5}); err == nil {
		t.Error("negative item: expected error")
	}
}

func TestPredictMatchesReferenceModel(t *testing.T) {
	dev, err := csd.New(csd.Config{SSD: ssd.Config{Capacity: 1 << 20}})
	if err != nil {
		t.Fatal(err)
	}
	m, err := lstm.NewModel(lstm.Config{
		VocabSize: 30, EmbedDim: 4, HiddenSize: 8, CellActivation: activation.Softsign,
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Deploy(dev, m, DeployConfig{Level: kernels.LevelII, SeqLen: 6})
	if err != nil {
		t.Fatal(err)
	}
	seq := []int{3, 1, 4, 1, 5, 9}
	res, _, err := eng.Predict(context.Background(), seq)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.Forward(seq)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Probability-want) > 1e-12 {
		t.Fatalf("engine %v vs reference %v", res.Probability, want)
	}
}

func TestPredictStoredPropagatesMediaFault(t *testing.T) {
	dev, eng := testSetup(t, kernels.LevelFixedPoint, 10)
	if err := dev.SSD().InjectReadFault(0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.PredictStored(context.Background(), 0); !errors.Is(err, ssd.ErrMediaFault) {
		t.Fatalf("error = %v, want wrapped ErrMediaFault", err)
	}
}

func TestPredictStoredRejectsOOVData(t *testing.T) {
	dev, eng := testSetup(t, kernels.LevelFixedPoint, 10)
	// Store garbage item IDs beyond the vocabulary.
	bogus := make([]int, 10)
	for i := range bogus {
		bogus[i] = 1 << 20
	}
	if _, err := dev.StoreSequence(0, bogus); err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.PredictStored(context.Background(), 0); !errors.Is(err, lstm.ErrItemOutOfRange) {
		t.Fatalf("error = %v, want wrapped ErrItemOutOfRange", err)
	}
}

func TestPerItemMicrosExposed(t *testing.T) {
	_, eng := testSetup(t, kernels.LevelFixedPoint, 10)
	pre, gates, hidden, total := eng.PerItemMicros()
	if pre <= 0 || gates <= 0 || hidden <= 0 {
		t.Fatalf("kernel micros = %v %v %v", pre, gates, hidden)
	}
	if math.Abs(total-(pre+gates+hidden)) > 1e-9 {
		t.Fatalf("total %v != sum %v", total, pre+gates+hidden)
	}
	if eng.Pipeline() == nil || eng.Device() == nil {
		t.Fatal("accessors returned nil")
	}
}

func TestScanStored(t *testing.T) {
	dev, eng := testSetup(t, kernels.LevelFixedPoint, 10)
	seq := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	var offsets []int64
	for i := 0; i < 5; i++ {
		off := int64(i * 4096)
		if _, err := dev.StoreSequence(off, seq); err != nil {
			t.Fatal(err)
		}
		offsets = append(offsets, off)
	}
	res, err := eng.ScanStored(context.Background(), offsets)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 5 {
		t.Fatalf("results = %d", len(res.Results))
	}
	if res.Timing.Transfer <= 0 || res.Timing.Compute <= 0 {
		t.Fatalf("timing = %+v", res.Timing)
	}
	// Identical sequences: all verdicts identical, Flagged is 0 or 5.
	if res.Flagged != 0 && res.Flagged != len(offsets) {
		t.Fatalf("inconsistent verdicts: flagged %d of %d", res.Flagged, len(offsets))
	}
	if _, err := eng.ScanStored(context.Background(), nil); err == nil {
		t.Error("empty scan: expected error")
	}
	// A media fault mid-scan surfaces with the completed prefix intact.
	if err := dev.SSD().InjectReadFault(offsets[2]); err != nil {
		t.Fatal(err)
	}
	partial, err := eng.ScanStored(context.Background(), offsets)
	if err == nil {
		t.Fatal("faulty scan: expected error")
	}
	if !errors.Is(err, ssd.ErrMediaFault) {
		t.Fatalf("scan error = %v, want wrapped ErrMediaFault", err)
	}
	var offErr *OffsetError
	if !errors.As(err, &offErr) {
		t.Fatalf("scan error = %T, want *OffsetError", err)
	}
	if offErr.Offset != offsets[2] || offErr.Index != 2 {
		t.Fatalf("OffsetError = %+v, want offset %d index 2", offErr, offsets[2])
	}
	if partial == nil || len(partial.Results) != 2 {
		t.Fatalf("partial results = %v, want the 2 completed classifications", partial)
	}
}

func TestPredictValidatesLengthBeforeEncode(t *testing.T) {
	_, eng := testSetup(t, kernels.LevelFixedPoint, 5)
	// Wrong length AND an item the encoder would reject: the length check
	// must win, proving the oversized sequence never pays the encode.
	_, _, err := eng.Predict(context.Background(), []int{-1, 2, 3})
	if err == nil {
		t.Fatal("short sequence accepted")
	}
	if !strings.Contains(err.Error(), "length") {
		t.Fatalf("error = %v, want the length validation, not the encode failure", err)
	}
}

func TestPredictHonorsCanceledContext(t *testing.T) {
	dev, eng := testSetup(t, kernels.LevelFixedPoint, 10)
	seq := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if _, err := dev.StoreSequence(0, seq); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := eng.Predict(ctx, seq); !errors.Is(err, context.Canceled) {
		t.Fatalf("Predict error = %v, want context.Canceled", err)
	}
	if _, _, err := eng.PredictStored(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("PredictStored error = %v, want context.Canceled", err)
	}
	if _, _, err := eng.PredictStoredViaHost(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("PredictStoredViaHost error = %v, want context.Canceled", err)
	}
	partial, err := eng.ScanStored(ctx, []int64{0})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ScanStored error = %v, want context.Canceled", err)
	}
	if partial == nil || len(partial.Results) != 0 {
		t.Fatalf("canceled scan results = %v, want empty partial", partial)
	}
}
