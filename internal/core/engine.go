// Package core implements the paper's primary contribution: an inference
// engine that runs the *entire* LSTM classifier inside a computational
// storage drive.
//
// Deploy plays the role of the paper's host program (§III-A): it ingests the
// offline-trained weights, scales them to fixed point, initializes the FPGA
// (placing the five kernels of Fig. 2 on the fabric and loading the
// parameter buffers over the host PCIe link), and allocates the sequence
// buffers in FPGA DRAM. After deployment the host is out of the data path:
// Predict* calls move sequences from the SSD to the FPGA over the on-board
// peer-to-peer switch and classify them entirely on-device.
package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/kfrida1/csdinf/internal/csd"
	"github.com/kfrida1/csdinf/internal/drc"
	"github.com/kfrida1/csdinf/internal/eventlog"
	"github.com/kfrida1/csdinf/internal/fpga"
	"github.com/kfrida1/csdinf/internal/infer"
	"github.com/kfrida1/csdinf/internal/kernels"
	"github.com/kfrida1/csdinf/internal/lstm"
	"github.com/kfrida1/csdinf/internal/prof"
	"github.com/kfrida1/csdinf/internal/telemetry"
	"github.com/kfrida1/csdinf/internal/trace"
)

// DRCPolicy selects how Deploy treats static design-rule findings.
type DRCPolicy int

const (
	// DRCEnforce (the default) refuses to deploy a design with error-level
	// findings, returning a *drc.RejectError before the device is touched.
	// Warnings and infos are surfaced as events but do not block.
	DRCEnforce DRCPolicy = iota
	// DRCWarn surfaces all findings as events but never blocks deployment.
	DRCWarn
	// DRCOff skips the design-rule check entirely.
	DRCOff
)

// DeployConfig controls engine deployment.
type DeployConfig struct {
	// Level is the kernel optimization level; zero defaults to
	// LevelFixedPoint, the paper's fully-optimized configuration.
	Level kernels.OptLevel
	// Part is the FPGA part; zero value defaults to the Alveo U200.
	Part fpga.Part
	// SeqLen is the classification window length; zero defaults to 100.
	SeqLen int
	// Scale is the fixed-point scale; zero defaults to 10⁶.
	Scale int64
	// Telemetry, when non-nil, receives the engine's per-classification
	// transfer and compute histograms (engine_transfer_seconds,
	// engine_compute_seconds). Engines deployed against the same registry
	// share the series, aggregating across devices; per-device breakdowns
	// live one layer up in internal/serve.
	Telemetry *telemetry.Registry
	// Trace, when non-nil, receives the engine's device-level timeline
	// events: SSD/PCIe/DDR transfer stages (emitted by the CSD itself,
	// which Deploy attaches to the tracer) and per-CU kernel events with
	// loop-nest cycle attributions.
	Trace *trace.Tracer
	// TraceName is the trace track group naming this device (one group per
	// physical device); empty defaults to "csd0".
	TraceName string
	// Events, when non-nil, receives the engine's structured events: one
	// info deploy event (with init cost and pipeline shape), plus the
	// per-DMA debug transfer events the CSD emits (Deploy attaches the
	// logger to the device under the TraceName device name).
	Events *eventlog.Logger
	// DRC selects the static design-rule gate policy. The zero value is
	// DRCEnforce: a design with error-level findings (budget overflow,
	// illegal pragma combination, broken dataflow) is refused before any
	// device state is touched, exactly as Vitis refuses to synthesize it.
	DRC DRCPolicy
}

// Engine is a deployed CSD inference engine. It is not safe for concurrent
// use (it owns recurrent kernel state), matching the single-stream dataflow
// of the hardware pipeline; serialize access externally (internal/node,
// internal/serve) to share one engine between goroutines.
//
// Engine implements infer.Inferencer.
type Engine struct {
	dev  *csd.SmartSSD
	pipe *kernels.Pipeline

	seqBuf   *csd.Buffer
	initTime time.Duration

	// Simulated-time latency histograms (see DESIGN.md "Telemetry": the
	// histograms record the calibrated device timing model, not wall time).
	xferHist    *telemetry.Histogram
	computeHist *telemetry.Histogram
	predictions *telemetry.Counter

	// Timeline tracing (nil when DeployConfig.Trace is unset). stages is
	// the fixed per-classification compute timeline — one entry per kernel
	// stage (gate CUs share a stage and overlap) — precomputed at Deploy so
	// the per-classification cost of tracing is a handful of Emit calls.
	tracer     *trace.Tracer
	traceGroup string
	stages     []computeStage
}

// computeStage is one serial stage of the per-classification compute
// timeline: all tracks of a stage run the same interval in parallel (the
// four kernel_gates CUs), and stages execute back to back.
type computeStage struct {
	name   string
	tracks []trace.Track
	dur    time.Duration
	cycles int64 // per track
	loops  []trace.LoopCycles
}

// Deploy initializes the FPGA of the given CSD with the trained model.
//
// The returned engine's initTime accounts the one-time host work: shipping
// the weight file (the text format of §III-A) over the host PCIe link into
// FPGA DRAM. Per-classification calls never pay it again — the paper's
// model is "compiled once and can be updated at the operator's discretion".
func Deploy(dev *csd.SmartSSD, m *lstm.Model, cfg DeployConfig) (*Engine, error) {
	if dev == nil {
		return nil, errors.New("core: nil device")
	}
	if m == nil {
		return nil, errors.New("core: nil model")
	}
	if cfg.DRC != DRCOff {
		// DesignForModel (not DesignFor): with the trained weights in hand
		// the design carries the interval analysis of internal/absint, so
		// the checker also proves the fixed-point datapath overflow-free at
		// the deployment's scale and window before any kernel is placed.
		design, derr := kernels.DesignForModel(m, kernels.Config{
			Level: cfg.Level, Part: cfg.Part, SeqLen: cfg.SeqLen, Scale: cfg.Scale,
		})
		if derr != nil {
			return nil, fmt.Errorf("core: design check: %w", derr)
		}
		rep := drc.Check(design)
		emitDRCFindings(cfg.Events, rep)
		if !rep.OK() && cfg.DRC == DRCEnforce {
			return nil, &drc.RejectError{Report: rep}
		}
	}
	pipe, err := kernels.New(m, kernels.Config{
		Level: cfg.Level, Part: cfg.Part, SeqLen: cfg.SeqLen, Scale: cfg.Scale,
	})
	if err != nil {
		return nil, fmt.Errorf("core: build pipeline: %w", err)
	}

	// Host initialization: serialize weights exactly as the offline trainer
	// exports them and push them to FPGA DRAM bank 0.
	var wbuf bytes.Buffer
	if err := m.WriteText(&wbuf); err != nil {
		return nil, fmt.Errorf("core: serialize weights: %w", err)
	}
	weightBuf, err := dev.Alloc(int64(wbuf.Len()), 0)
	if err != nil {
		return nil, fmt.Errorf("core: allocate weight buffer: %w", err)
	}
	initTime, err := dev.WriteBuffer(weightBuf, wbuf.Bytes())
	if err != nil {
		return nil, fmt.Errorf("core: load weights: %w", err)
	}

	// Sequence staging buffer in bank 1 (or bank 0 on single-bank devices):
	// the P2P landing zone for SSD-resident sequences.
	seqBank := 0
	if dev.Banks() > 1 {
		seqBank = 1
	}
	seqBuf, err := dev.Alloc(int64(pipe.SeqLen()*csd.ItemBytes), seqBank)
	if err != nil {
		return nil, fmt.Errorf("core: allocate sequence buffer: %w", err)
	}

	reg := cfg.Telemetry
	e := &Engine{
		dev: dev, pipe: pipe, seqBuf: seqBuf, initTime: initTime,
		xferHist: reg.Histogram("engine_transfer_seconds",
			"Simulated SSD-to-FPGA data movement time per classification.", telemetry.Buckets{}),
		computeHist: reg.Histogram("engine_compute_seconds",
			"Simulated FPGA kernel time per classification.", telemetry.Buckets{}),
		predictions: reg.Counter("engine_predictions_total",
			"Classifications completed by deployed engines."),
	}
	group := cfg.TraceName
	if group == "" {
		group = "csd0"
	}
	if cfg.Trace.Enabled() {
		dev.SetTracer(cfg.Trace, group)
		e.tracer = cfg.Trace
		e.traceGroup = group
		e.stages = computeStages(pipe)
	}
	if cfg.Events != nil {
		dev.SetEventLogger(cfg.Events, group)
		cfg.Events.Info(context.Background(), "core", "engine.deploy",
			eventlog.F("device", group),
			eventlog.F("seq_len", pipe.SeqLen()),
			eventlog.F("gate_cus", pipe.GateCUs()),
			eventlog.F("weight_bytes", wbuf.Len()),
			eventlog.F("init_ns", initTime))
	}
	return e, nil
}

// emitDRCFindings reports the design-rule outcome on the event log: one
// summary event, plus one event per finding at a level mirroring its
// severity (drc warns land at eventlog warn, infos at debug).
func emitDRCFindings(events *eventlog.Logger, rep drc.Report) {
	if events == nil || rep.Clean() {
		return
	}
	events.Info(context.Background(), "core", "engine.drc",
		eventlog.F("part", rep.Part),
		eventlog.F("errors", rep.Errors),
		eventlog.F("warnings", rep.Warnings),
		eventlog.F("infos", rep.Infos))
	for _, f := range rep.Findings {
		lvl := eventlog.LevelDebug
		switch f.Severity {
		case drc.SevWarn:
			lvl = eventlog.LevelWarn
		case drc.SevError:
			lvl = eventlog.LevelError
		}
		events.Log(context.Background(), lvl, "core", "engine.drc_finding",
			eventlog.F("rule", f.Rule),
			eventlog.F("kernel", f.Kernel),
			eventlog.F("object", f.Object),
			eventlog.F("message", f.Message))
	}
}

// computeStages precomputes the per-classification compute timeline from
// the pipeline's placed kernels: preprocess → four parallel gate CUs →
// hidden state, each stage's cycles scaled by the window length (and, for
// gates, by the serialization rounds when fewer than four CUs are placed).
// The loop attributions come from the HLS schedules, so they sum exactly to
// each stage's cycle count.
func computeStages(pipe *kernels.Pipeline) []computeStage {
	dev := pipe.Device()
	seq := int64(pipe.SeqLen())
	stage := func(kernel string, mult int64, tracks ...trace.Track) computeStage {
		pk := pipe.Placed(kernel)
		st := computeStage{
			name:   kernel,
			tracks: tracks,
			cycles: pk.CyclesPerInvocation * mult,
			dur:    dev.Duration(pk.CyclesPerInvocation * mult),
		}
		for i, l := range pk.Spec.Loops {
			st.loops = append(st.loops, trace.LoopCycles{
				Name: l.Name, Cycles: pk.Schedules[i].Cycles * mult,
			})
		}
		return st
	}
	gateTracks := make([]trace.Track, pipe.GateCUs())
	for i := range gateTracks {
		gateTracks[i] = trace.Track{Name: fmt.Sprintf("cu-%s-%d", kernels.KernelGates, i)}
	}
	rounds := int64(kernels.GateCUs / pipe.GateCUs())
	return []computeStage{
		stage(kernels.KernelPreprocess, seq, trace.Track{Name: "cu-" + kernels.KernelPreprocess}),
		stage(kernels.KernelGates, rounds*seq, gateTracks...),
		stage(kernels.KernelHiddenState, seq, trace.Track{Name: "cu-" + kernels.KernelHiddenState}),
	}
}

// Timing breaks a classification's simulated latency into data movement and
// FPGA compute. It is an alias of infer.Timing, the breakdown shared by
// every Inferencer implementation.
type Timing = infer.Timing

var _ infer.Inferencer = (*Engine)(nil)

// PredictStored classifies the sequence stored at the given SSD byte
// offset, moving it to the FPGA over the P2P path — the paper's headline
// dataflow with no host involvement. A canceled ctx aborts the call before
// the device is touched.
func (e *Engine) PredictStored(ctx context.Context, ssdOff int64) (kernels.Result, Timing, error) {
	if err := ctx.Err(); err != nil {
		return kernels.Result{}, Timing{}, err
	}
	e.stampJob(ctx)
	st := prof.BreakdownFrom(ctx).Begin(prof.StageTransfer)
	xfer, err := e.dev.TransferP2P(ssdOff, e.seqBuf)
	st.End()
	if err != nil {
		return kernels.Result{}, Timing{}, fmt.Errorf("core: fetch sequence: %w", err)
	}
	return e.classifyBuffer(ctx, Timing{Transfer: xfer})
}

// PredictStoredViaHost classifies the stored sequence but stages it through
// host memory — the traditional path, kept for the P2P ablation.
func (e *Engine) PredictStoredViaHost(ctx context.Context, ssdOff int64) (kernels.Result, Timing, error) {
	if err := ctx.Err(); err != nil {
		return kernels.Result{}, Timing{}, err
	}
	e.stampJob(ctx)
	st := prof.BreakdownFrom(ctx).Begin(prof.StageTransfer)
	xfer, err := e.dev.TransferViaHost(ssdOff, e.seqBuf)
	st.End()
	if err != nil {
		return kernels.Result{}, Timing{}, fmt.Errorf("core: fetch sequence via host: %w", err)
	}
	return e.classifyBuffer(ctx, Timing{Transfer: xfer})
}

// Predict classifies a host-provided sequence (e.g. a live window from the
// detection pipeline), paying one host-link transfer to stage it. The
// length check runs before the encode so an oversized sequence is rejected
// without paying for serialization.
func (e *Engine) Predict(ctx context.Context, seq []int) (kernels.Result, Timing, error) {
	if err := ctx.Err(); err != nil {
		return kernels.Result{}, Timing{}, err
	}
	if len(seq) != e.pipe.SeqLen() {
		return kernels.Result{}, Timing{}, fmt.Errorf("core: sequence length %d, engine expects %d",
			len(seq), e.pipe.SeqLen())
	}
	bd := prof.BreakdownFrom(ctx)
	st := bd.Begin(prof.StageEncode)
	data, err := csd.EncodeItems(seq)
	st.End()
	if err != nil {
		return kernels.Result{}, Timing{}, fmt.Errorf("core: encode sequence: %w", err)
	}
	e.stampJob(ctx)
	st = bd.Begin(prof.StageTransfer)
	xfer, err := e.dev.WriteBuffer(e.seqBuf, data)
	st.End()
	if err != nil {
		return kernels.Result{}, Timing{}, fmt.Errorf("core: stage sequence: %w", err)
	}
	return e.classifyBuffer(ctx, Timing{Transfer: xfer})
}

func (e *Engine) classifyBuffer(ctx context.Context, t Timing) (kernels.Result, Timing, error) {
	bd := prof.BreakdownFrom(ctx)
	st := bd.Begin(prof.StageCompute)
	seq, err := csd.DecodeItems(e.seqBuf.Bytes())
	if err != nil {
		return kernels.Result{}, Timing{}, fmt.Errorf("core: decode sequence: %w", err)
	}
	res, cycles, err := e.pipe.Classify(seq)
	if err != nil {
		return kernels.Result{}, Timing{}, fmt.Errorf("core: classify: %w", err)
	}
	t.Compute = e.pipe.Device().Duration(cycles)
	st.End()
	obs := bd.Begin(prof.StageObserve)
	e.emitCompute(ctx, t)
	e.xferHist.ObserveDuration(t.Transfer)
	e.computeHist.ObserveDuration(t.Compute)
	e.predictions.Inc()
	if sp := telemetry.SpanFrom(ctx); sp != nil {
		sp.Record(telemetry.PhaseTransfer, t.Transfer)
		sp.Record(telemetry.PhaseCompute, t.Compute)
	}
	obs.End()
	return res, t, nil
}

// stampJob forwards the context's trace correlation ID to the device, so
// the transfer events the CSD emits carry the same job as the scheduler's
// queue event and the engine's kernel events (the raw transfer APIs model
// DMA and take no context of their own).
func (e *Engine) stampJob(ctx context.Context) {
	if e.tracer.Enabled() {
		e.dev.TraceJob(trace.JobFrom(ctx))
	}
}

// emitCompute places the classification's kernel stages on the timeline.
// The transfer that fed this classification has just advanced the group
// cursor to its end; compute is modeled as starting once the *first* item
// has landed (the kernels stream items as they arrive), so the tail of the
// transfer overlaps kernel execution on the trace exactly as the dataflow
// hardware behaves. The engine's reported Timing stays the conservative
// serial transfer+compute sum.
func (e *Engine) emitCompute(ctx context.Context, t Timing) {
	if e.tracer == nil || len(e.stages) == 0 {
		return
	}
	job := trace.JobFrom(ctx)
	end := e.tracer.Cursor(e.traceGroup)
	at := end - t.Transfer + t.Transfer/time.Duration(e.pipe.SeqLen())
	if at < 0 {
		at = 0
	}
	for _, st := range e.stages {
		for _, trk := range st.tracks {
			trk.Group = e.traceGroup
			e.tracer.Emit(trace.Event{
				Track: trk, Name: st.name, Cat: trace.CatKernel,
				Start: at, Dur: st.dur, Job: job, Cycles: st.cycles, Loops: st.loops,
			})
		}
		at += st.dur
	}
	e.tracer.Advance(e.traceGroup, at)
}

// PerItemMicros returns the per-item kernel latencies in microseconds
// (preprocess, gates, hidden state, total) — the quantities of Fig. 3 and
// the FPGA row of Table I.
func (e *Engine) PerItemMicros() (preprocess, gates, hidden, total float64) {
	return e.pipe.KernelMicros()
}

// InitTime returns the one-time host initialization cost paid at Deploy.
func (e *Engine) InitTime() time.Duration { return e.initTime }

// Pipeline exposes the kernel pipeline (for benchmarks and diagnostics).
func (e *Engine) Pipeline() *kernels.Pipeline { return e.pipe }

// Device exposes the CSD the engine is deployed on.
func (e *Engine) Device() *csd.SmartSSD { return e.dev }

// SeqLen returns the classification window length.
func (e *Engine) SeqLen() int { return e.pipe.SeqLen() }

// ScanResult is the outcome of a background scan over stored sequences.
type ScanResult struct {
	// Results are per-sequence classifications, in offset order.
	Results []kernels.Result
	// Flagged counts ransomware verdicts.
	Flagged int
	// Timing is the aggregate simulated device time (transfers + compute).
	Timing Timing
}

// OffsetError attributes a scan failure to the SSD offset that caused it.
type OffsetError struct {
	// Offset is the failing SSD byte offset.
	Offset int64
	// Index is the offset's position in the scanned slice.
	Index int
	// Err is the underlying cause.
	Err error
}

func (e *OffsetError) Error() string {
	return fmt.Sprintf("core: scan offset %d (index %d): %v", e.Offset, e.Index, e.Err)
}

// Unwrap returns the underlying cause.
func (e *OffsetError) Unwrap() error { return e.Err }

// ScanStored classifies a batch of sequences resident on the SSD — the
// background-scanning deployment the paper's introduction motivates ("data
// centers can execute the classifier continuously in the background ...
// without exhausting the CPU"). Each sequence moves over the P2P path; the
// host never touches the data.
//
// On a per-offset failure the scan stops, but the classifications completed
// so far are returned alongside an *OffsetError naming the failing offset
// and wrapping the cause; a canceled ctx likewise returns the partial
// results with ctx.Err().
func (e *Engine) ScanStored(ctx context.Context, offsets []int64) (*ScanResult, error) {
	if len(offsets) == 0 {
		return nil, errors.New("core: no offsets to scan")
	}
	out := &ScanResult{Results: make([]kernels.Result, 0, len(offsets))}
	for i, off := range offsets {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		res, timing, err := e.PredictStored(ctx, off)
		if err != nil {
			return out, &OffsetError{Offset: off, Index: i, Err: err}
		}
		out.Results = append(out.Results, res)
		if res.Ransomware {
			out.Flagged++
		}
		out.Timing.Transfer += timing.Transfer
		out.Timing.Compute += timing.Compute
	}
	return out, nil
}
