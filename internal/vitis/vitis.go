// Package vitis models the build flow the paper uses to produce its FPGA
// binary (§IV): kernels written in HLS are compiled into kernel objects
// (.xo files) with v++, then linked against the target platform into the
// .xclbin binary that the host program loads at initialization.
//
// Compile schedules each kernel's loop nests (surfacing the II bounds and
// resource estimates a real v++ compile log reports), and Link places all
// compute units on the platform, failing exactly when the real linker
// would: insufficient fabric. The resulting Binary carries the
// utilization/timing summary and can render a v++-style build report.
package vitis

import (
	"errors"
	"fmt"
	"io"
	"strings"

	"github.com/kfrida1/csdinf/internal/fpga"
	"github.com/kfrida1/csdinf/internal/hls"
)

// KernelObject is a compiled kernel (.xo): its specification plus the
// schedules and resource estimates of one compute unit.
type KernelObject struct {
	// Name is the kernel name.
	Name string
	// Spec is the kernel specification, including requested CU count.
	Spec fpga.KernelSpec
	// Schedules are the per-loop schedules of one CU.
	Schedules []hls.Schedule
	// CyclesPerInvocation is one CU's latency per invocation.
	CyclesPerInvocation int64
	// ResPerCU is one CU's fabric estimate (loops + buffers).
	ResPerCU hls.Resources
}

// Compile schedules a kernel specification into a kernel object — the
// v++ -c step.
func Compile(spec fpga.KernelSpec) (*KernelObject, error) {
	if spec.Name == "" {
		return nil, errors.New("vitis: kernel must have a name")
	}
	if spec.CUs <= 0 {
		return nil, fmt.Errorf("vitis: kernel %q must request at least one CU", spec.Name)
	}
	obj := &KernelObject{Name: spec.Name, Spec: spec}
	for _, l := range spec.Loops {
		s, err := hls.ScheduleLoop(l)
		if err != nil {
			return nil, fmt.Errorf("vitis: compile %s: %w", spec.Name, err)
		}
		obj.Schedules = append(obj.Schedules, s)
		obj.CyclesPerInvocation += s.Cycles
		obj.ResPerCU.Add(s.Res)
	}
	for _, b := range spec.Buffers {
		obj.ResPerCU.Add(b.Resources())
	}
	return obj, nil
}

// Binary is the linked FPGA binary (.xclbin): every kernel placed on the
// platform, with the build summary.
type Binary struct {
	// Platform is the target part.
	Platform fpga.Part
	// Objects are the linked kernel objects.
	Objects []*KernelObject
	// Utilization is post-link fabric utilization.
	Utilization fpga.Utilization
	// Used is the absolute fabric consumption.
	Used hls.Resources

	device *fpga.Device
}

// Link places the kernel objects on the platform — the v++ -l step. It
// fails with fpga.ErrResourceExhausted when the design does not fit,
// exactly as the paper's fixed-point design would fail to link against the
// KU15P.
func Link(objs []*KernelObject, platform fpga.Part) (*Binary, error) {
	if len(objs) == 0 {
		return nil, errors.New("vitis: no kernel objects to link")
	}
	dev, err := fpga.NewDevice(platform)
	if err != nil {
		return nil, fmt.Errorf("vitis: %w", err)
	}
	b := &Binary{Platform: platform, device: dev}
	for _, obj := range objs {
		if obj == nil {
			return nil, errors.New("vitis: nil kernel object")
		}
		if _, err := dev.Place(obj.Spec); err != nil {
			return nil, fmt.Errorf("vitis: link %s: %w", obj.Name, err)
		}
		b.Objects = append(b.Objects, obj)
	}
	b.Utilization = dev.Utilization()
	b.Used = dev.Used()
	return b, nil
}

// Device exposes the placed device of the linked binary.
func (b *Binary) Device() *fpga.Device { return b.device }

// Report renders a v++-style build summary: per-kernel timing estimates,
// scheduling notes (II bounds that fired), and the utilization table.
func (b *Binary) Report(w io.Writer) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== Build summary: platform %s @ %.0f MHz ===\n",
		b.Platform.Name, b.Platform.ClockMHz)
	fmt.Fprintf(&sb, "%-22s %4s %14s %16s %8s %10s\n",
		"Kernel", "CUs", "Cycles/invoc", "Latency", "DSP/CU", "LUT/CU")
	for _, o := range b.Objects {
		us := float64(o.CyclesPerInvocation) / b.Platform.ClockMHz
		fmt.Fprintf(&sb, "%-22s %4d %14d %13.3f µs %8d %10d\n",
			o.Name, o.Spec.CUs, o.CyclesPerInvocation, us, o.ResPerCU.DSP, o.ResPerCU.LUT)
		for _, s := range o.Schedules {
			for _, note := range s.Notes {
				fmt.Fprintf(&sb, "    note: %s\n", note)
			}
		}
	}
	fmt.Fprintf(&sb, "Utilization: DSP %.1f%% (%d/%d)  LUT %.1f%% (%d/%d)  FF %.1f%%  BRAM %.1f%%\n",
		b.Utilization.DSP*100, b.Used.DSP, b.Platform.Budget.DSP,
		b.Utilization.LUT*100, b.Used.LUT, b.Platform.Budget.LUT,
		b.Utilization.FF*100, b.Utilization.BRAM*100)
	if _, err := io.WriteString(w, sb.String()); err != nil {
		return fmt.Errorf("vitis: write report: %w", err)
	}
	return nil
}
