package vitis

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"github.com/kfrida1/csdinf/internal/fpga"
	"github.com/kfrida1/csdinf/internal/hls"
	"github.com/kfrida1/csdinf/internal/kernels"
	"github.com/kfrida1/csdinf/internal/lstm"
)

func paperSpecs(t *testing.T, level kernels.OptLevel) []fpga.KernelSpec {
	t.Helper()
	specs, err := kernels.Specs(lstm.PaperConfig(), kernels.Config{Level: level})
	if err != nil {
		t.Fatal(err)
	}
	return specs
}

func TestCompile(t *testing.T) {
	specs := paperSpecs(t, kernels.LevelFixedPoint)
	for _, spec := range specs {
		obj, err := Compile(spec)
		if err != nil {
			t.Fatalf("compile %s: %v", spec.Name, err)
		}
		if obj.CyclesPerInvocation <= 0 {
			t.Errorf("%s: no latency estimate", spec.Name)
		}
		if obj.ResPerCU == (hls.Resources{}) {
			t.Errorf("%s: no resource estimate", spec.Name)
		}
	}
}

func TestCompileValidation(t *testing.T) {
	if _, err := Compile(fpga.KernelSpec{Name: "", CUs: 1}); err == nil {
		t.Error("unnamed kernel: expected error")
	}
	if _, err := Compile(fpga.KernelSpec{Name: "k", CUs: 0}); err == nil {
		t.Error("zero CUs: expected error")
	}
	bad := fpga.KernelSpec{Name: "k", CUs: 1, Loops: []hls.Loop{{Name: "neg", Trip: -1}}}
	if _, err := Compile(bad); err == nil {
		t.Error("bad loop: expected error")
	}
}

func TestLinkFixedPointOnU200(t *testing.T) {
	var objs []*KernelObject
	for _, spec := range paperSpecs(t, kernels.LevelFixedPoint) {
		obj, err := Compile(spec)
		if err != nil {
			t.Fatal(err)
		}
		objs = append(objs, obj)
	}
	bin, err := Link(objs, fpga.AlveoU200)
	if err != nil {
		t.Fatal(err)
	}
	if bin.Utilization.DSP <= 0.5 {
		t.Errorf("fixed-point DSP utilization = %v, expected ~75%%", bin.Utilization.DSP)
	}
	if bin.Device() == nil {
		t.Error("linked binary lost its device")
	}
}

func TestLinkFailsOnKU15P(t *testing.T) {
	var objs []*KernelObject
	for _, spec := range paperSpecs(t, kernels.LevelFixedPoint) {
		obj, err := Compile(spec)
		if err != nil {
			t.Fatal(err)
		}
		objs = append(objs, obj)
	}
	if _, err := Link(objs, fpga.KU15P); !errors.Is(err, fpga.ErrResourceExhausted) {
		t.Fatalf("error = %v, want ErrResourceExhausted", err)
	}
}

func TestLinkValidation(t *testing.T) {
	if _, err := Link(nil, fpga.AlveoU200); err == nil {
		t.Error("no objects: expected error")
	}
	if _, err := Link([]*KernelObject{nil}, fpga.AlveoU200); err == nil {
		t.Error("nil object: expected error")
	}
	if _, err := Link([]*KernelObject{{Name: "x", Spec: fpga.KernelSpec{Name: "x", CUs: 1}}},
		fpga.Part{Name: "bad"}); err == nil {
		t.Error("invalid platform: expected error")
	}
}

func TestReport(t *testing.T) {
	var objs []*KernelObject
	for _, spec := range paperSpecs(t, kernels.LevelVanilla) {
		obj, err := Compile(spec)
		if err != nil {
			t.Fatal(err)
		}
		objs = append(objs, obj)
	}
	bin, err := Link(objs, fpga.AlveoU200)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := bin.Report(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Build summary", "xcu200", "kernel_preprocess", "kernel_gates",
		"kernel_hidden_state", "Utilization", "µs",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestSpecsValidation(t *testing.T) {
	if _, err := kernels.Specs(lstm.Config{}, kernels.Config{}); err == nil {
		t.Error("invalid model config: expected error")
	}
	if _, err := kernels.Specs(lstm.PaperConfig(), kernels.Config{GateCUs: 3}); err == nil {
		t.Error("bad gate CUs: expected error")
	}
	if _, err := kernels.Specs(lstm.PaperConfig(), kernels.Config{Level: kernels.LevelVanilla, Streaming: true}); err == nil {
		t.Error("streaming at vanilla: expected error")
	}
}
