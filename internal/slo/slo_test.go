package slo

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/kfrida1/csdinf/internal/eventlog"
	"github.com/kfrida1/csdinf/internal/incident"
	"github.com/kfrida1/csdinf/internal/telemetry"
)

// fakeClock is a hand-advanced clock shared by the evaluator and its
// collaborators.
type fakeClock struct{ now time.Time }

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) Now() time.Time                    { return c.now }
func (c *fakeClock) Advance(d time.Duration) time.Time { c.now = c.now.Add(d); return c.now }

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindAvailability: "availability",
		KindLatency:      "latency",
		KindDetection:    "detection",
		Kind(42):         "Kind(42)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestObjectiveValidation(t *testing.T) {
	bad := []Objective{
		{Target: 0.9},                                  // no name
		{Name: "x", Target: 0},                         // target at 0
		{Name: "x", Target: 1},                         // target at 1
		{Name: "x", Target: 0.9, Kind: KindLatency},    // no threshold
		{Name: "x", Target: 0.9, Kind: KindDetection},  // no max windows
		{Name: "x", Target: 0.9, Window: -time.Second}, // negative window
	}
	for i, o := range bad {
		if _, err := NewEvaluator(Config{Objectives: []Objective{o}}); err == nil {
			t.Errorf("case %d: NewEvaluator accepted invalid objective %+v", i, o)
		}
	}
	if _, err := NewEvaluator(Config{}); err == nil {
		t.Error("NewEvaluator accepted empty objective list")
	}
	dup := []Objective{
		{Name: "x", Target: 0.9},
		{Name: "x", Target: 0.99},
	}
	if _, err := NewEvaluator(Config{Objectives: dup}); err == nil {
		t.Error("NewEvaluator accepted duplicate objective names")
	}
}

func TestDefaultRulesScale(t *testing.T) {
	rules := DefaultRules(time.Hour)
	if len(rules) != 2 {
		t.Fatalf("DefaultRules returned %d rules, want 2", len(rules))
	}
	fast, slow := rules[0], rules[1]
	if !fast.Page || fast.Burn != 14.4 || fast.Long != 6*time.Minute || fast.Short != 30*time.Second {
		t.Errorf("fast rule = %+v, want paging 14.4x over 6m/30s", fast)
	}
	if slow.Page || slow.Burn != 6 || slow.Long != 30*time.Minute || slow.Short != 150*time.Second {
		t.Errorf("slow rule = %+v, want warning 6x over 30m/2m30s", slow)
	}
	if got := DefaultRules(0)[0].Long; got != 6*time.Minute {
		t.Errorf("DefaultRules(0) fast long = %v, want one-hour default scaling", got)
	}
}

func TestAvailabilityAttainmentAndBudget(t *testing.T) {
	clk := newFakeClock()
	e, err := NewEvaluator(Config{
		Objectives: []Objective{{
			Name: "availability", Kind: KindAvailability,
			Target: 0.99, Window: time.Hour,
		}},
		Clock: clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 995 good / 5 bad = 99.5% attainment; budget is 1%, half spent.
	for i := 0; i < 995; i++ {
		e.Outcome(true)
	}
	for i := 0; i < 5; i++ {
		e.Outcome(false)
	}
	st := e.Evaluate()
	if len(st.Objectives) != 1 {
		t.Fatalf("got %d objectives, want 1", len(st.Objectives))
	}
	o := st.Objectives[0]
	if o.Good != 995 || o.Bad != 5 || o.WindowGood != 995 || o.WindowBad != 5 {
		t.Errorf("counts = %d/%d window %d/%d, want 995/5", o.Good, o.Bad, o.WindowGood, o.WindowBad)
	}
	if math.Abs(o.Attainment-0.995) > 1e-9 {
		t.Errorf("attainment = %v, want 0.995", o.Attainment)
	}
	if math.Abs(o.BudgetRemaining-0.5) > 1e-9 {
		t.Errorf("budget remaining = %v, want 0.5", o.BudgetRemaining)
	}
	if !o.Met {
		t.Error("objective should be met at 99.5% against a 99% target")
	}

	// An empty window (the ring slid past all events) means no violations.
	clk.Advance(2 * time.Hour)
	o = e.Evaluate().Objectives[0]
	if o.WindowGood != 0 || o.WindowBad != 0 {
		t.Errorf("window counts after slide = %d/%d, want 0/0", o.WindowGood, o.WindowBad)
	}
	if o.Attainment != 1 || o.BudgetRemaining != 1 {
		t.Errorf("idle window: attainment %v budget %v, want 1/1", o.Attainment, o.BudgetRemaining)
	}
	if o.Good != 995 || o.Bad != 5 {
		t.Errorf("lifetime counts changed after slide: %d/%d", o.Good, o.Bad)
	}
}

func TestLatencyObjectiveThreshold(t *testing.T) {
	clk := newFakeClock()
	e, err := NewEvaluator(Config{
		Objectives: []Objective{{
			Name: "latency-2ms", Kind: KindLatency,
			Target: 0.5, Threshold: 2 * time.Millisecond, Window: time.Minute,
		}},
		Clock: clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Latency(time.Millisecond, true)      // good: fast and ok
	e.Latency(2*time.Millisecond, true)    // good: exactly at threshold
	e.Latency(5*time.Millisecond, true)    // bad: too slow
	e.Latency(500*time.Microsecond, false) // bad: fast but errored
	o := e.Evaluate().Objectives[0]
	if o.Good != 2 || o.Bad != 2 {
		t.Errorf("latency counts = %d/%d, want 2/2", o.Good, o.Bad)
	}
	if o.ThresholdSeconds != 0.002 {
		t.Errorf("threshold_s = %v, want 0.002", o.ThresholdSeconds)
	}
}

func TestDetectionObjectiveWindows(t *testing.T) {
	clk := newFakeClock()
	e, err := NewEvaluator(Config{
		Objectives: []Objective{{
			Name: "detect-3w", Kind: KindDetection,
			Target: 0.5, MaxWindows: 3, Window: time.Minute,
		}},
		Clock: clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Detection(1)  // good
	e.Detection(3)  // good: at the bound
	e.Detection(4)  // bad: too slow
	e.Detection(-1) // bad: never flagged
	o := e.Evaluate().Objectives[0]
	if o.Good != 2 || o.Bad != 2 {
		t.Errorf("detection counts = %d/%d, want 2/2", o.Good, o.Bad)
	}
	if o.MaxWindows != 3 {
		t.Errorf("max_windows = %d, want 3", o.MaxWindows)
	}
}

// TestQualityObjectives pins the scorecard feedback loop: ransomware
// verdicts burn recall objectives (good iff flagged), benign verdicts burn
// false-positive objectives (good iff not flagged), and each kind only
// sees its own class.
func TestQualityObjectives(t *testing.T) {
	clk := newFakeClock()
	e, err := NewEvaluator(Config{
		Objectives: []Objective{
			{Name: "recall", Kind: KindRecall, Target: 0.5, Window: time.Minute},
			{Name: "fp", Kind: KindFalsePositive, Target: 0.5, Window: time.Minute},
		},
		Clock: clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Quality(true, true)   // ransomware caught: recall good
	e.Quality(true, false)  // ransomware missed: recall bad
	e.Quality(false, false) // benign passed: fp good
	e.Quality(false, true)  // benign flagged: fp bad
	e.Quality(false, false) // benign passed: fp good
	for _, o := range e.Evaluate().Objectives {
		switch o.Name {
		case "recall":
			if o.Good != 1 || o.Bad != 1 {
				t.Errorf("recall counts = %d/%d, want 1/1 (benign verdicts excluded)", o.Good, o.Bad)
			}
		case "fp":
			if o.Good != 2 || o.Bad != 1 {
				t.Errorf("fp counts = %d/%d, want 2/1 (ransomware verdicts excluded)", o.Good, o.Bad)
			}
		}
	}
	// The method value is safe on a nil evaluator — quality.Config.SLO can
	// be wired unconditionally.
	var nilEval *Evaluator
	nilEval.Quality(true, false)
}

// TestBurnAlertLifecycle drives an availability objective through a burst of
// failures and checks the full alert lifecycle: both burn rules fire, the
// paging rule opens an incident, slo.* events land in the stream, and the
// alerts resolve once the burn windows slide past the burst.
func TestBurnAlertLifecycle(t *testing.T) {
	clk := newFakeClock()
	events := eventlog.New(eventlog.Config{Clock: clk.Now})
	incidents, err := incident.NewRecorder(incident.Config{Clock: clk.Now, Events: events})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	e, err := NewEvaluator(Config{
		Objectives: []Objective{{
			Name: "availability", Kind: KindAvailability,
			Target: 0.99, Window: time.Hour,
		}},
		Telemetry: reg,
		Events:    events,
		Incidents: incidents,
		Clock:     clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}

	// 20% failures burn the 1% budget at 20x — over both the fast rule's
	// windows (6m/30s) and the slow rule's (30m/2m30s), since all events
	// land in the current bucket.
	for i := 0; i < 80; i++ {
		e.Outcome(true)
	}
	for i := 0; i < 20; i++ {
		e.Outcome(false)
	}
	st := e.Evaluate()
	o := st.Objectives[0]
	if len(o.Burns) != 2 {
		t.Fatalf("got %d burn statuses, want 2", len(o.Burns))
	}
	for _, b := range o.Burns {
		if !b.Firing {
			t.Errorf("rule %q not firing at 20x burn (long %.1f short %.1f)", b.Rule, b.BurnLong, b.BurnShort)
		}
		if math.Abs(b.BurnLong-20) > 1e-9 || math.Abs(b.BurnShort-20) > 1e-9 {
			t.Errorf("rule %q burn = %.2f/%.2f, want 20/20", b.Rule, b.BurnLong, b.BurnShort)
		}
	}
	if o.BudgetRemaining > -18.9 { // 1 - 0.2/0.01 = -19
		t.Errorf("budget remaining = %v, want about -19", o.BudgetRemaining)
	}
	if st.IncidentsOpened != 1 {
		t.Errorf("incidents opened = %d, want 1 (only the paging rule opens incidents)", st.IncidentsOpened)
	}
	if len(st.Alerts) != 2 {
		t.Fatalf("alert log has %d transitions, want 2 firings", len(st.Alerts))
	}
	var pagingInc int64
	for _, a := range st.Alerts {
		if a.State != "firing" {
			t.Errorf("transition %+v, want state firing", a)
		}
		if a.Rule == "fast" {
			pagingInc = a.IncidentID
		}
	}
	if pagingInc == 0 {
		t.Error("fast-rule firing carries no incident ID")
	}

	// The incident recorder holds a closed Kind "slo" incident naming the
	// objective.
	var found bool
	for _, inc := range incidents.Snapshot() {
		if inc.Kind == "slo" && inc.Objective == "availability" && inc.ID == pagingInc {
			found = true
			if inc.CloseReason != "slo-breach" {
				t.Errorf("incident close reason = %q, want slo-breach", inc.CloseReason)
			}
		}
	}
	if !found {
		t.Error("no slo incident recorded for the availability objective")
	}

	// The event stream carries the burn alert and the budget-exhausted edge.
	var sawAlert, sawExhausted, sawBreach bool
	for _, ev := range events.Recent() {
		switch ev.Name {
		case EventBurnAlert:
			sawAlert = true
			if ev.Component != "slo" {
				t.Errorf("burn alert component = %q, want slo", ev.Component)
			}
		case EventBudgetExhausted:
			sawExhausted = true
		case "incident.slo_breach":
			sawBreach = true
		}
	}
	if !sawAlert || !sawExhausted || !sawBreach {
		t.Errorf("event stream: alert=%v exhausted=%v breach=%v, want all true",
			sawAlert, sawExhausted, sawBreach)
	}

	// A second evaluation is edge-triggered: no duplicate transitions.
	st = e.Evaluate()
	if len(st.Alerts) != 2 || st.IncidentsOpened != 1 {
		t.Errorf("re-evaluation added transitions: %d alerts, %d incidents",
			len(st.Alerts), st.IncidentsOpened)
	}

	// Slide past every burn window (slow long = 30m) but stay inside the
	// objective window: alerts resolve, the budget stays exhausted.
	clk.Advance(31 * time.Minute)
	st = e.Evaluate()
	o = st.Objectives[0]
	for _, b := range o.Burns {
		if b.Firing {
			t.Errorf("rule %q still firing after the burst left its windows", b.Rule)
		}
	}
	if o.BudgetRemaining > 0 {
		t.Errorf("budget recovered too early: %v", o.BudgetRemaining)
	}
	if len(st.Alerts) != 4 {
		t.Errorf("alert log has %d transitions, want 2 firings + 2 resolves", len(st.Alerts))
	}

	// Slide past the objective window: the budget recovers and says so.
	clk.Advance(time.Hour)
	o = e.Evaluate().Objectives[0]
	if o.BudgetRemaining != 1 {
		t.Errorf("budget after full slide = %v, want 1", o.BudgetRemaining)
	}
	var sawRecovered, sawResolve bool
	for _, ev := range events.Recent() {
		switch ev.Name {
		case EventBudgetRecovered:
			sawRecovered = true
		case EventBurnResolve:
			sawResolve = true
		}
	}
	if !sawRecovered || !sawResolve {
		t.Errorf("event stream: recovered=%v resolve=%v, want both", sawRecovered, sawResolve)
	}

	// Telemetry mirrors the judgment.
	var sawBudgetGauge bool
	for _, m := range reg.Snapshot() {
		if m.Name == "slo_budget_remaining_permille" {
			sawBudgetGauge = true
			if m.Value != 1000 {
				t.Errorf("budget gauge = %d permille, want 1000", m.Value)
			}
		}
	}
	if !sawBudgetGauge {
		t.Error("slo_budget_remaining_permille not in registry snapshot")
	}
}

// TestOnPageHook pins the paging callback: OnPage fires once per paging-rule
// firing edge (not on re-evaluation, not for non-paging rules) and carries
// the incident ID recorded for the page.
func TestOnPageHook(t *testing.T) {
	clk := newFakeClock()
	incidents, err := incident.NewRecorder(incident.Config{Clock: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	type page struct {
		objective, rule string
		incidentID      int64
	}
	var pages []page
	e, err := NewEvaluator(Config{
		Objectives: []Objective{{
			Name: "availability", Kind: KindAvailability,
			Target: 0.99, Window: time.Hour,
		}},
		Incidents: incidents,
		OnPage: func(objective, rule string, incidentID int64) {
			pages = append(pages, page{objective, rule, incidentID})
		},
		Clock: clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 80; i++ {
		e.Outcome(true)
	}
	for i := 0; i < 20; i++ {
		e.Outcome(false)
	}
	e.Evaluate()
	e.Evaluate() // edge-triggered: no duplicate page
	if len(pages) != 1 {
		t.Fatalf("OnPage fired %d times, want 1 (only the paging rule, only the edge)", len(pages))
	}
	if pages[0].objective != "availability" || pages[0].rule != "fast" {
		t.Fatalf("page = %+v", pages[0])
	}
	if pages[0].incidentID == 0 {
		t.Fatal("page carries no incident ID despite a wired recorder")
	}
	incs := incidents.Snapshot()
	if len(incs) != 1 || incs[0].ID != pages[0].incidentID {
		t.Fatalf("incident/page mismatch: pages=%+v incidents=%+v", pages, incs)
	}
}

func TestAlertLogBounded(t *testing.T) {
	clk := newFakeClock()
	e, err := NewEvaluator(Config{
		Objectives: []Objective{{
			Name: "availability", Kind: KindAvailability,
			Target: 0.99, Window: time.Hour,
		}},
		Rules:     []Rule{{Name: "fast", Burn: 14.4, Long: time.Minute, Short: 10 * time.Second}},
		Clock:     clk.Now,
		MaxAlerts: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Alternate bursts and quiet periods to generate many transitions.
	for cycle := 0; cycle < 5; cycle++ {
		for i := 0; i < 10; i++ {
			e.Outcome(false)
		}
		e.Evaluate() // firing
		clk.Advance(2 * time.Minute)
		e.Evaluate() // resolved
	}
	st := e.Evaluate()
	if len(st.Alerts) != 4 {
		t.Errorf("alert log has %d entries, want the 4 most recent", len(st.Alerts))
	}
}

func TestHTTPHandler(t *testing.T) {
	clk := newFakeClock()
	e, err := NewEvaluator(Config{
		Objectives: []Objective{{
			Name: "availability", Kind: KindAvailability,
			Target: 0.999, Window: time.Minute,
		}},
		Clock: clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Outcome(true)
	e.Outcome(false)

	srv := httptest.NewServer(e.HTTPHandler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/slo.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /slo.json = %d, want 200", resp.StatusCode)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.Objectives) != 1 || st.Objectives[0].Name != "availability" {
		t.Fatalf("decoded status = %+v, want one availability objective", st)
	}
	if st.Objectives[0].WindowBad != 1 {
		t.Errorf("window bad = %d, want 1", st.Objectives[0].WindowBad)
	}

	post, err := srv.Client().Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != 405 {
		t.Errorf("POST /slo.json = %d, want 405", post.StatusCode)
	}
}

func TestNilCollaboratorsSafe(t *testing.T) {
	clk := newFakeClock()
	e, err := NewEvaluator(Config{
		Objectives: []Objective{{
			Name: "availability", Kind: KindAvailability,
			Target: 0.9, Window: time.Minute,
		}},
		Clock: clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Burn hard with nil Events/Incidents/Telemetry: must not panic.
	for i := 0; i < 50; i++ {
		e.Outcome(false)
	}
	st := e.Evaluate()
	if st.IncidentsOpened != 0 {
		t.Errorf("incidents opened with nil recorder = %d, want 0", st.IncidentsOpened)
	}
	var firing bool
	for _, b := range st.Objectives[0].Burns {
		firing = firing || b.Firing
	}
	if !firing {
		t.Error("no rule firing at 100% failure rate")
	}
}
