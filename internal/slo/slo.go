// Package slo turns raw telemetry into judgments: declarative service-level
// objectives, rolling error budgets, and Google-SRE-style multi-window
// multi-burn-rate alerting for the CSD detection stack.
//
// The paper's value proposition is detection under production traffic — a
// drive that keeps up with datacenter I/O while flagging ransomware in near
// real time. RanStop (arXiv:2011.12248) frames hardware-assisted detection
// as a ~2 ms latency promise; SHIELD (arXiv:2501.16619) stresses sustained
// host-independent operation. Both are SLO claims, and metrics alone cannot
// verify them: a histogram says what the p99 was, not whether the service
// kept its promise, how much failure headroom remains, or when an operator
// must be paged. This package closes that loop.
//
// An Objective declares what "good" means for one stream of events — a
// request classified within a latency threshold, a request that succeeded
// at all, a ransomware process flagged within a bounded number of windows —
// plus the fraction of events that must be good (the target) over a rolling
// window. The complement of the target is the error budget. An Evaluator
// ingests the event stream into per-objective time-bucketed rings and, on
// each evaluation pass, computes windowed attainment, budget remaining, and
// burn rates over multiple alert windows. When both the long and the short
// window of a rule burn faster than the rule's threshold, the alert fires:
// an slo.* event is emitted, and paging rules open an incident through
// internal/incident so SLO breaches land in the same SOC-facing history as
// ransomware verdicts and drive faults.
//
// The Evaluator is safe for concurrent use; recording is a mutex-guarded
// bucket increment, cheap enough for per-request call sites.
package slo

import (
	"fmt"
	"time"
)

// Kind discriminates what an objective's events measure.
type Kind uint8

const (
	// KindAvailability: an event is good when the request succeeded.
	KindAvailability Kind = iota
	// KindLatency: an event is good when the request succeeded within
	// Objective.Threshold of its intended start (coordinated-omission-safe
	// recording measures from intended arrival, not dispatch).
	KindLatency
	// KindDetection: an event is one flagged (or abandoned) process; it is
	// good when the detector flagged the process within
	// Objective.MaxWindows classified windows — the paper's
	// detection-latency promise expressed as windows-until-flagged.
	KindDetection
	// KindRecall: an event is one ground-truth-ransomware window (labeled
	// via the quality layer); it is good when the detector flagged it.
	// Attainment is live recall, so a burst of missed ransomware burns
	// the budget and pages.
	KindRecall
	// KindFalsePositive: an event is one ground-truth-benign window; it
	// is good when the detector did NOT flag it. Attainment is
	// 1 − false-positive-rate.
	KindFalsePositive
)

// String returns the kind name used in JSON status.
func (k Kind) String() string {
	switch k {
	case KindAvailability:
		return "availability"
	case KindLatency:
		return "latency"
	case KindDetection:
		return "detection"
	case KindRecall:
		return "recall"
	case KindFalsePositive:
		return "false-positive"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Objective is one declarative service-level objective.
type Objective struct {
	// Name identifies the objective in status, events, metric labels, and
	// incidents ("latency-2ms", "availability").
	Name string
	// Description is a human sentence for reports; optional.
	Description string
	// Kind selects which recorded events feed the objective.
	Kind Kind
	// Target is the fraction of events that must be good, in (0, 1) —
	// e.g. 0.999 leaves a 0.1% error budget.
	Target float64
	// Threshold is the good-latency bound for KindLatency objectives.
	Threshold time.Duration
	// MaxWindows is the windows-until-flagged bound for KindDetection
	// objectives.
	MaxWindows int
	// Window is the rolling error-budget window; 0 defaults to one hour.
	// Load runs typically set it to the measured run duration.
	Window time.Duration
}

func (o *Objective) validate() error {
	if o.Name == "" {
		return fmt.Errorf("slo: objective has no name")
	}
	if o.Target <= 0 || o.Target >= 1 {
		return fmt.Errorf("slo: objective %q target %v outside (0, 1)", o.Name, o.Target)
	}
	if o.Kind == KindLatency && o.Threshold <= 0 {
		return fmt.Errorf("slo: latency objective %q needs a positive Threshold", o.Name)
	}
	if o.Kind == KindDetection && o.MaxWindows <= 0 {
		return fmt.Errorf("slo: detection objective %q needs a positive MaxWindows", o.Name)
	}
	if o.Window == 0 {
		o.Window = time.Hour
	}
	if o.Window < 0 {
		return fmt.Errorf("slo: objective %q window must be positive, got %v", o.Name, o.Window)
	}
	return nil
}

// Rule is one burn-rate alert: the alert fires when the error budget burns
// at more than Burn× the sustainable rate over both the Long and the Short
// window (the short window makes the alert reset quickly once the burn
// stops — the Google SRE multi-window refinement).
type Rule struct {
	// Name labels the rule ("fast", "slow").
	Name string
	// Burn is the burn-rate threshold: 1.0 means exactly consuming the
	// budget over the objective window; 14.4 is the classic page-now rate.
	Burn float64
	// Long and Short are the two evaluation windows; both must exceed Burn.
	Long, Short time.Duration
	// Page marks the rule severe enough to open an incident when it fires
	// (the fast-burn condition); non-paging rules only emit events.
	Page bool
}

// DefaultRules scales the Google SRE multi-window multi-burn-rate pair to
// an objective window: a paging fast-burn rule (14.4× over window/10, with
// a window/120 short window) and a warning slow-burn rule (6× over
// window/2, short window/24). The canonical 30-day/1-hour/5-minute shape
// survives the rescale — load runs just live on a compressed clock.
func DefaultRules(window time.Duration) []Rule {
	if window <= 0 {
		window = time.Hour
	}
	return []Rule{
		{Name: "fast", Burn: 14.4, Long: window / 10, Short: window / 120, Page: true},
		{Name: "slow", Burn: 6, Long: window / 2, Short: window / 24},
	}
}
