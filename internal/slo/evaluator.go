package slo

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/kfrida1/csdinf/internal/eventlog"
	"github.com/kfrida1/csdinf/internal/incident"
	"github.com/kfrida1/csdinf/internal/telemetry"
)

// Event names emitted by the evaluator, named so the eventname analyzer can
// pin the vocabulary.
const (
	// EventBurnAlert fires on the inactive → firing edge of a burn rule
	// (error level for paging rules, warn otherwise).
	EventBurnAlert = "slo.burn.alert"
	// EventBurnResolve fires when a firing rule's burn drops back under
	// threshold.
	EventBurnResolve = "slo.burn.resolve"
	// EventBudgetExhausted fires once when an objective's windowed error
	// budget reaches zero.
	EventBudgetExhausted = "slo.budget.exhausted"
	// EventBudgetRecovered fires when an exhausted budget becomes positive
	// again as the window slides.
	EventBudgetRecovered = "slo.budget.recovered"
)

// Config controls an Evaluator.
type Config struct {
	// Objectives are the SLOs to track; at least one is required.
	Objectives []Objective
	// Rules are the burn-rate alert rules applied to every objective; nil
	// defaults to DefaultRules scaled to each objective's window. Long
	// windows are clamped to the objective window, short windows to the
	// bucket resolution.
	Rules []Rule
	// Resolution is the bucket width of the rolling rings; 0 derives
	// window/360 per objective, clamped to [1ms, 10s]. Burn windows
	// shorter than the resolution are evaluated at resolution granularity.
	Resolution time.Duration
	// Telemetry, when non-nil, receives slo_good_total / slo_bad_total /
	// slo_budget_remaining_permille / slo_alerts_total, labeled by
	// objective (and rule, for alerts).
	Telemetry *telemetry.Registry
	// Events, when non-nil, receives the slo.* event stream.
	Events *eventlog.Logger
	// Incidents, when non-nil, receives one SLO-breach incident per firing
	// of a paging rule.
	Incidents *incident.Recorder
	// OnPage, when non-nil, is invoked (outside the evaluator's lock) every
	// time a paging burn-rate rule starts firing, with the objective, the
	// rule name, and the incident ID recorded for the page (0 when no
	// incident recorder is wired). Callers that already wire
	// incident.Config.OnOpen for flight-recorder dumps should not also dump
	// here, or every page produces two dumps.
	OnPage func(objective, rule string, incidentID int64)
	// Clock overrides time.Now for tests.
	Clock func() time.Time
	// MaxAlerts bounds the retained alert transition log; 0 defaults to 256.
	MaxAlerts int
}

// bucket is one resolution slice of an objective's rolling window.
type bucket struct {
	good, bad int64
}

// alertState tracks one (objective, rule) alert.
type alertState struct {
	rule    Rule
	firing  bool
	firings int64
}

// objState is one objective's runtime state.
type objState struct {
	obj Objective
	res time.Duration
	// ring covers [headStart - (len-1)*res, headStart + res); head is the
	// bucket currently receiving events.
	ring      []bucket
	head      int
	headStart time.Time

	totalGood, totalBad int64
	alerts              []alertState
	exhausted           bool

	goodC   *telemetry.Counter
	badC    *telemetry.Counter
	budgetG *telemetry.Gauge
}

// AlertTransition is one entry of the evaluator's alert log: a burn rule
// firing or resolving.
type AlertTransition struct {
	Time      time.Time `json:"time"`
	Objective string    `json:"objective"`
	Rule      string    `json:"rule"`
	// State is "firing" or "resolved".
	State string `json:"state"`
	// BurnLong and BurnShort are the burn rates over the rule's windows at
	// transition time.
	BurnLong  float64 `json:"burn_long"`
	BurnShort float64 `json:"burn_short"`
	// IncidentID is the SLO-breach incident opened for a paging firing; 0
	// otherwise.
	IncidentID int64 `json:"incident_id,omitempty"`
}

// Evaluator ingests good/bad events per objective and judges attainment,
// budget, and burn on demand. A nil *Evaluator is valid everywhere and
// records nothing, matching the optional-instrumentation convention of
// telemetry and eventlog.
type Evaluator struct {
	cfg Config

	mu     sync.Mutex
	objs   []*objState
	log    []AlertTransition
	opened int64
}

// NewEvaluator builds an evaluator over the configured objectives.
func NewEvaluator(cfg Config) (*Evaluator, error) {
	if len(cfg.Objectives) == 0 {
		return nil, fmt.Errorf("slo: no objectives configured")
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.MaxAlerts == 0 {
		cfg.MaxAlerts = 256
	}
	if cfg.MaxAlerts < 0 {
		return nil, fmt.Errorf("slo: MaxAlerts must be positive, got %d", cfg.MaxAlerts)
	}
	e := &Evaluator{cfg: cfg}
	now := cfg.Clock()
	seen := make(map[string]bool, len(cfg.Objectives))
	for i := range cfg.Objectives {
		obj := cfg.Objectives[i]
		if err := obj.validate(); err != nil {
			return nil, err
		}
		if seen[obj.Name] {
			return nil, fmt.Errorf("slo: duplicate objective %q", obj.Name)
		}
		seen[obj.Name] = true
		res := cfg.Resolution
		if res <= 0 {
			res = obj.Window / 360
			if res < time.Millisecond {
				res = time.Millisecond
			}
			if res > 10*time.Second {
				res = 10 * time.Second
			}
		}
		n := int(obj.Window / res)
		if n < 1 {
			n = 1
		}
		rules := cfg.Rules
		if rules == nil {
			rules = DefaultRules(obj.Window)
		}
		name := obj.Name
		st := &objState{
			obj: obj, res: res,
			ring:      make([]bucket, n),
			headStart: now.Truncate(res),
			goodC: cfg.Telemetry.Counter("slo_good_total",
				"Events meeting the objective.", telemetry.L("objective", name)),
			badC: cfg.Telemetry.Counter("slo_bad_total",
				"Events violating the objective.", telemetry.L("objective", name)),
			budgetG: cfg.Telemetry.Gauge("slo_budget_remaining_permille",
				"Windowed error budget remaining, in permille (may go negative).",
				telemetry.L("objective", name)),
		}
		st.budgetG.Set(1000)
		for _, r := range rules {
			if r.Burn <= 0 || r.Long <= 0 || r.Short <= 0 {
				return nil, fmt.Errorf("slo: rule %q needs positive burn and windows", r.Name)
			}
			if r.Long > obj.Window {
				r.Long = obj.Window
			}
			if r.Short < res {
				r.Short = res
			}
			st.alerts = append(st.alerts, alertState{rule: r})
		}
		e.objs = append(e.objs, st)
	}
	return e, nil
}

// advance rotates the ring so st.headStart covers now. Caller holds e.mu.
func (st *objState) advance(now time.Time) {
	steps := 0
	for !now.Before(st.headStart.Add(st.res)) {
		st.head = (st.head + 1) % len(st.ring)
		st.ring[st.head] = bucket{}
		st.headStart = st.headStart.Add(st.res)
		if steps++; steps >= len(st.ring) {
			// Idle longer than the whole window: clear everything and
			// re-anchor instead of looping bucket by bucket.
			for i := range st.ring {
				st.ring[i] = bucket{}
			}
			st.headStart = now.Truncate(st.res)
			return
		}
	}
}

// record adds one event to the objective's current bucket.
func (st *objState) record(now time.Time, good bool) {
	st.advance(now)
	if good {
		st.ring[st.head].good++
		st.totalGood++
		st.goodC.Inc()
	} else {
		st.ring[st.head].bad++
		st.totalBad++
		st.badC.Inc()
	}
}

// windowSum totals the buckets covering the trailing duration d.
func (st *objState) windowSum(d time.Duration) (good, bad int64) {
	k := int((d + st.res - 1) / st.res)
	if k < 1 {
		k = 1
	}
	if k > len(st.ring) {
		k = len(st.ring)
	}
	for i := 0; i < k; i++ {
		b := st.ring[(st.head-i+len(st.ring))%len(st.ring)]
		good += b.good
		bad += b.bad
	}
	return good, bad
}

// badRatio is the fraction of bad events over the trailing duration d
// (zero when the window saw no events).
func (st *objState) badRatio(d time.Duration) float64 {
	good, bad := st.windowSum(d)
	if good+bad == 0 {
		return 0
	}
	return float64(bad) / float64(good+bad)
}

// Latency records one request outcome into every latency objective: good
// when the request succeeded within the objective's threshold. Measure d
// from the request's *intended* start so queueing and scheduling delay
// count (coordinated-omission safety is the recorder's contract).
func (e *Evaluator) Latency(d time.Duration, ok bool) {
	e.record(KindLatency, func(o Objective) bool { return ok && d <= o.Threshold })
}

// Outcome records one request outcome into every availability objective.
func (e *Evaluator) Outcome(ok bool) {
	e.record(KindAvailability, func(Objective) bool { return ok })
}

// Detection records one flagged process into every detection objective:
// good when the detector needed at most MaxWindows classified windows.
// Pass a negative count for a process that was never flagged.
func (e *Evaluator) Detection(windows int) {
	e.record(KindDetection, func(o Objective) bool {
		return windows >= 0 && windows <= o.MaxWindows
	})
}

// Quality records one ground-truth-labeled window verdict: ransomware
// windows feed recall objectives (good when flagged), benign windows feed
// false-positive objectives (good when not flagged). Wire this method
// value to quality.Config.SLO — the scorecard calls it for every labeled
// verdict. Safe as a method value on a nil evaluator.
func (e *Evaluator) Quality(truth, flagged bool) {
	if truth {
		e.record(KindRecall, func(Objective) bool { return flagged })
		return
	}
	e.record(KindFalsePositive, func(Objective) bool { return !flagged })
}

func (e *Evaluator) record(kind Kind, good func(Objective) bool) {
	if e == nil {
		return
	}
	now := e.cfg.Clock()
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, st := range e.objs {
		if st.obj.Kind == kind {
			st.record(now, good(st.obj))
		}
	}
}

// BurnStatus is one rule's judgment inside an ObjectiveStatus.
type BurnStatus struct {
	Rule string `json:"rule"`
	// Threshold is the rule's burn-rate threshold.
	Threshold float64 `json:"threshold"`
	// LongSeconds and ShortSeconds are the evaluated window lengths.
	LongSeconds  float64 `json:"long_s"`
	ShortSeconds float64 `json:"short_s"`
	// BurnLong and BurnShort are the current burn rates (1.0 = consuming
	// exactly the budget over the objective window).
	BurnLong  float64 `json:"burn_long"`
	BurnShort float64 `json:"burn_short"`
	// Firing reports whether the alert is currently active.
	Firing bool `json:"firing"`
	// Firings counts inactive → firing transitions so far.
	Firings int64 `json:"firings"`
	// Page marks the rule as incident-opening.
	Page bool `json:"page,omitempty"`
}

// ObjectiveStatus is one objective's judgment at evaluation time.
type ObjectiveStatus struct {
	Name        string  `json:"name"`
	Description string  `json:"description,omitempty"`
	Kind        string  `json:"kind"`
	Target      float64 `json:"target"`
	// ThresholdSeconds / MaxWindows echo the kind-specific good bound.
	ThresholdSeconds float64 `json:"threshold_s,omitempty"`
	MaxWindows       int     `json:"max_windows,omitempty"`
	WindowSeconds    float64 `json:"window_s"`
	// Good and Bad are lifetime event counts; WindowGood and WindowBad
	// cover the rolling objective window.
	Good       int64 `json:"good"`
	Bad        int64 `json:"bad"`
	WindowGood int64 `json:"window_good"`
	WindowBad  int64 `json:"window_bad"`
	// Attainment is the windowed good fraction (1 when the window is
	// empty — no events means no violations).
	Attainment float64 `json:"attainment"`
	// BudgetRemaining is the fraction of the windowed error budget left;
	// negative once overspent.
	BudgetRemaining float64 `json:"budget_remaining"`
	// Met reports Attainment >= Target.
	Met   bool         `json:"met"`
	Burns []BurnStatus `json:"burn_rates"`
}

// Status is one evaluation pass over every objective.
type Status struct {
	Time       time.Time         `json:"time"`
	Objectives []ObjectiveStatus `json:"objectives"`
	// Alerts is the retained alert transition log, oldest first.
	Alerts []AlertTransition `json:"alerts,omitempty"`
	// IncidentsOpened counts SLO-breach incidents opened so far.
	IncidentsOpened int64 `json:"incidents_opened"`
}

// Evaluate advances every objective to the current clock, updates alert
// state (emitting slo.* events and opening incidents on edges), and returns
// the full judgment. Call it periodically — from a load generator's sample
// tick, or lazily from the /slo.json handler.
func (e *Evaluator) Evaluate() Status {
	if e == nil {
		return Status{}
	}
	now := e.cfg.Clock()
	type firedAlert struct {
		objective string
		rule      Rule
		burnLong  float64
		burnShort float64
		firing    bool
		budget    float64
	}
	type budgetEdge struct {
		objective string
		exhausted bool
		remaining float64
	}
	var fired []firedAlert
	var budgets []budgetEdge

	e.mu.Lock()
	st := Status{Time: now, Objectives: make([]ObjectiveStatus, 0, len(e.objs))}
	for _, o := range e.objs {
		o.advance(now)
		budget := 1 - o.obj.Target
		wGood, wBad := o.windowSum(o.obj.Window)
		attain := 1.0
		if wGood+wBad > 0 {
			attain = float64(wGood) / float64(wGood+wBad)
		}
		remaining := 1 - (1-attain)/budget
		o.budgetG.Set(int64(remaining * 1000))
		if remaining <= 0 && !o.exhausted {
			o.exhausted = true
			budgets = append(budgets, budgetEdge{o.obj.Name, true, remaining})
		} else if remaining > 0 && o.exhausted {
			o.exhausted = false
			budgets = append(budgets, budgetEdge{o.obj.Name, false, remaining})
		}
		os := ObjectiveStatus{
			Name:            o.obj.Name,
			Description:     o.obj.Description,
			Kind:            o.obj.Kind.String(),
			Target:          o.obj.Target,
			WindowSeconds:   o.obj.Window.Seconds(),
			Good:            o.totalGood,
			Bad:             o.totalBad,
			WindowGood:      wGood,
			WindowBad:       wBad,
			Attainment:      attain,
			BudgetRemaining: remaining,
			Met:             attain >= o.obj.Target,
		}
		if o.obj.Kind == KindLatency {
			os.ThresholdSeconds = o.obj.Threshold.Seconds()
		}
		if o.obj.Kind == KindDetection {
			os.MaxWindows = o.obj.MaxWindows
		}
		for i := range o.alerts {
			a := &o.alerts[i]
			burnLong := o.badRatio(a.rule.Long) / budget
			burnShort := o.badRatio(a.rule.Short) / budget
			firing := burnLong >= a.rule.Burn && burnShort >= a.rule.Burn
			if firing != a.firing {
				a.firing = firing
				if firing {
					a.firings++
				}
				fired = append(fired, firedAlert{
					objective: o.obj.Name, rule: a.rule,
					burnLong: burnLong, burnShort: burnShort,
					firing: firing, budget: remaining,
				})
			}
			os.Burns = append(os.Burns, BurnStatus{
				Rule: a.rule.Name, Threshold: a.rule.Burn,
				LongSeconds: a.rule.Long.Seconds(), ShortSeconds: a.rule.Short.Seconds(),
				BurnLong: burnLong, BurnShort: burnShort,
				Firing: firing, Firings: a.firings, Page: a.rule.Page,
			})
		}
		st.Objectives = append(st.Objectives, os)
	}
	e.mu.Unlock()

	// Emit edges outside the lock: event sinks and the incident recorder
	// take their own locks.
	ctx := context.Background()
	for _, b := range budgets {
		if b.exhausted {
			e.cfg.Events.Error(ctx, "slo", EventBudgetExhausted,
				eventlog.F("objective", b.objective),
				eventlog.F("budget_remaining", b.remaining))
		} else {
			e.cfg.Events.Info(ctx, "slo", EventBudgetRecovered,
				eventlog.F("objective", b.objective),
				eventlog.F("budget_remaining", b.remaining))
		}
	}
	for _, f := range fired {
		tr := AlertTransition{
			Time: now, Objective: f.objective, Rule: f.rule.Name,
			BurnLong: f.burnLong, BurnShort: f.burnShort,
		}
		if f.firing {
			tr.State = "firing"
			level := eventlog.LevelWarn
			if f.rule.Page {
				level = eventlog.LevelError
			}
			e.cfg.Events.Log(ctx, level, "slo", EventBurnAlert,
				eventlog.F("objective", f.objective),
				eventlog.F("rule", f.rule.Name),
				eventlog.F("burn_long", f.burnLong),
				eventlog.F("burn_short", f.burnShort),
				eventlog.F("budget_remaining", f.budget),
				eventlog.F("page", f.rule.Page))
			if f.rule.Page && e.cfg.Incidents != nil {
				inc := e.cfg.Incidents.SLOBreach(f.objective, f.rule.Name,
					fmt.Sprintf("burn %.1fx over %v (threshold %.1fx)",
						f.burnLong, f.rule.Long, f.rule.Burn))
				tr.IncidentID = inc.ID
				e.mu.Lock()
				e.opened++
				e.mu.Unlock()
			}
			if f.rule.Page && e.cfg.OnPage != nil {
				e.cfg.OnPage(f.objective, f.rule.Name, tr.IncidentID)
			}
		} else {
			tr.State = "resolved"
			e.cfg.Events.Info(ctx, "slo", EventBurnResolve,
				eventlog.F("objective", f.objective),
				eventlog.F("rule", f.rule.Name),
				eventlog.F("burn_long", f.burnLong))
		}
		e.cfg.Telemetry.Counter("slo_alerts_total",
			"Burn-rate alert transitions (firing and resolved).",
			telemetry.L("objective", f.objective),
			telemetry.L("rule", tr.Rule)).Inc()
		e.mu.Lock()
		if len(e.log) >= e.cfg.MaxAlerts {
			drop := len(e.log) - e.cfg.MaxAlerts + 1
			e.log = append(e.log[:0], e.log[drop:]...)
		}
		e.log = append(e.log, tr)
		e.mu.Unlock()
	}

	e.mu.Lock()
	st.Alerts = append([]AlertTransition(nil), e.log...)
	st.IncidentsOpened = e.opened
	e.mu.Unlock()
	return st
}
