package slo

import (
	"encoding/json"
	"net/http"
)

// HTTPHandler serves the evaluator's current judgment as JSON — mount it at
// /slo.json beside /metrics and /incidents.json. Each request runs a full
// Evaluate pass, so alert edges are detected even when no load-generator
// tick is driving evaluation; the edge-triggered transition logic makes the
// extra passes idempotent.
func (e *Evaluator) HTTPHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		st := e.Evaluate()
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(st); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
