package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// KernelProfile aggregates every invocation of one kernel across all CUs:
// total simulated cycles and their breakdown by named loop nest (from the
// kernel's hls.Schedule).
type KernelProfile struct {
	Kernel string       `json:"kernel"`
	CUs    int          `json:"cus"`
	Events int          `json:"events"`
	Cycles int64        `json:"cycles"`
	Share  float64      `json:"share"`
	Loops  []LoopCycles `json:"loops,omitempty"`
}

// TrackProfile reports one track's busy time (merged, so overlapping
// events do not double-count) and its occupancy over the trace span.
type TrackProfile struct {
	Track     Track         `json:"track"`
	Cat       string        `json:"cat"`
	Events    int           `json:"events"`
	Busy      time.Duration `json:"busy_ns"`
	Occupancy float64       `json:"occupancy"`
}

// Profile is the text-report counterpart of the Chrome timeline: the same
// events aggregated into per-kernel cycle attributions, per-track
// occupancy, transfer/compute overlap, and queue-wait totals. It is the
// reproduction's stand-in for the Vitis Analyzer profile summary.
type Profile struct {
	Events  int   `json:"events"`
	Dropped int64 `json:"dropped,omitempty"`
	// Span is the timeline extent: first event start to last event end.
	Span time.Duration `json:"span_ns"`

	// Cycle attribution. TotalKernelCycles sums the cycle counts of every
	// kernel event; AttributedCycles is the part carried by named loop
	// nests. AttributedShare >= 0.95 is the acceptance bar — in practice
	// it is 1.0 because every schedule's loop cycles sum exactly to the
	// kernel's cycles-per-invocation.
	TotalKernelCycles int64   `json:"total_kernel_cycles"`
	AttributedCycles  int64   `json:"attributed_cycles"`
	AttributedShare   float64 `json:"attributed_share"`

	Kernels []KernelProfile `json:"kernels,omitempty"`
	Tracks  []TrackProfile  `json:"tracks,omitempty"`

	// Transfer/compute overlap, summed per group then across groups:
	// Overlap is the total time during which a group had both a transfer
	// and a kernel event in flight. OverlapShare is Overlap/TransferBusy.
	TransferBusy time.Duration `json:"transfer_busy_ns"`
	ComputeBusy  time.Duration `json:"compute_busy_ns"`
	Overlap      time.Duration `json:"overlap_ns"`
	OverlapShare float64       `json:"overlap_share"`

	// Queue-wait attribution from the serve layer's queue events.
	QueueJobs int           `json:"queue_jobs"`
	QueueWait time.Duration `json:"queue_wait_ns"`
}

type interval struct{ start, end time.Duration }

// mergeIntervals coalesces overlapping/adjacent intervals and returns the
// merged set plus its total length.
func mergeIntervals(in []interval) ([]interval, time.Duration) {
	if len(in) == 0 {
		return nil, 0
	}
	sort.Slice(in, func(i, j int) bool { return in[i].start < in[j].start })
	out := in[:1:1]
	for _, iv := range in[1:] {
		last := &out[len(out)-1]
		if iv.start <= last.end {
			if iv.end > last.end {
				last.end = iv.end
			}
			continue
		}
		out = append(out, iv)
	}
	var total time.Duration
	for _, iv := range out {
		total += iv.end - iv.start
	}
	return out, total
}

// intersect returns the total length of the intersection of two merged
// interval sets.
func intersect(a, b []interval) time.Duration {
	var total time.Duration
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		lo := a[i].start
		if b[j].start > lo {
			lo = b[j].start
		}
		hi := a[i].end
		if b[j].end < hi {
			hi = b[j].end
		}
		if hi > lo {
			total += hi - lo
		}
		if a[i].end < b[j].end {
			i++
		} else {
			j++
		}
	}
	return total
}

// Profile aggregates the recorded events into a Profile.
func (t *Tracer) Profile() *Profile {
	events := t.Events()
	p := &Profile{Events: len(events), Dropped: t.Dropped()}
	if len(events) == 0 {
		return p
	}

	var first, last time.Duration = events[0].Start, 0
	for _, ev := range events {
		if ev.Start < first {
			first = ev.Start
		}
		if ev.End() > last {
			last = ev.End()
		}
	}
	p.Span = last - first

	// Per-kernel cycle attribution.
	type kacc struct {
		cus    map[string]bool
		events int
		cycles int64
		loops  map[string]int64
	}
	kernels := map[string]*kacc{}
	// Per-track busy intervals, and per-group transfer/compute intervals.
	trackIvs := map[Track][]interval{}
	trackCat := map[Track]string{}
	trackEvents := map[Track]int{}
	groupXfer := map[string][]interval{}
	groupComp := map[string][]interval{}

	for _, ev := range events {
		iv := interval{ev.Start, ev.End()}
		trackIvs[ev.Track] = append(trackIvs[ev.Track], iv)
		trackCat[ev.Track] = ev.Cat
		trackEvents[ev.Track]++
		switch ev.Cat {
		case CatKernel:
			k := kernels[ev.Name]
			if k == nil {
				k = &kacc{cus: map[string]bool{}, loops: map[string]int64{}}
				kernels[ev.Name] = k
			}
			k.cus[ev.Track.Name] = true
			k.events++
			k.cycles += ev.Cycles
			p.TotalKernelCycles += ev.Cycles
			for _, l := range ev.Loops {
				k.loops[l.Name] += l.Cycles
				p.AttributedCycles += l.Cycles
			}
			groupComp[ev.Track.Group] = append(groupComp[ev.Track.Group], iv)
		case CatTransfer:
			groupXfer[ev.Track.Group] = append(groupXfer[ev.Track.Group], iv)
		case CatQueue:
			p.QueueJobs++
			p.QueueWait += ev.Dur
		}
	}
	if p.TotalKernelCycles > 0 {
		p.AttributedShare = float64(p.AttributedCycles) / float64(p.TotalKernelCycles)
	}

	names := make([]string, 0, len(kernels))
	for n := range kernels {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		k := kernels[n]
		kp := KernelProfile{Kernel: n, CUs: len(k.cus), Events: k.events, Cycles: k.cycles}
		if p.TotalKernelCycles > 0 {
			kp.Share = float64(k.cycles) / float64(p.TotalKernelCycles)
		}
		loopNames := make([]string, 0, len(k.loops))
		for ln := range k.loops {
			loopNames = append(loopNames, ln)
		}
		sort.Strings(loopNames)
		for _, ln := range loopNames {
			kp.Loops = append(kp.Loops, LoopCycles{Name: ln, Cycles: k.loops[ln]})
		}
		// Largest loop first, name as tiebreak, for a Vitis-style report.
		sort.SliceStable(kp.Loops, func(i, j int) bool {
			return kp.Loops[i].Cycles > kp.Loops[j].Cycles
		})
		p.Kernels = append(p.Kernels, kp)
	}
	sort.SliceStable(p.Kernels, func(i, j int) bool {
		return p.Kernels[i].Cycles > p.Kernels[j].Cycles
	})

	tracks := make([]Track, 0, len(trackIvs))
	for tr := range trackIvs {
		tracks = append(tracks, tr)
	}
	sort.Slice(tracks, func(i, j int) bool {
		if tracks[i].Group != tracks[j].Group {
			return tracks[i].Group < tracks[j].Group
		}
		return tracks[i].Name < tracks[j].Name
	})
	for _, tr := range tracks {
		_, busy := mergeIntervals(trackIvs[tr])
		tp := TrackProfile{Track: tr, Cat: trackCat[tr], Events: trackEvents[tr], Busy: busy}
		if p.Span > 0 {
			tp.Occupancy = float64(busy) / float64(p.Span)
		}
		p.Tracks = append(p.Tracks, tp)
	}

	// Overlap is computed per device group — a transfer on csd0 overlapping
	// a kernel on csd1 is concurrency, not streaming overlap.
	for g, xi := range groupXfer {
		xm, xb := mergeIntervals(xi)
		p.TransferBusy += xb
		if ci := groupComp[g]; len(ci) > 0 {
			cm, _ := mergeIntervals(ci)
			p.Overlap += intersect(xm, cm)
		}
	}
	for _, ci := range groupComp {
		_, cb := mergeIntervals(ci)
		p.ComputeBusy += cb
	}
	if p.TransferBusy > 0 {
		p.OverlapShare = float64(p.Overlap) / float64(p.TransferBusy)
	}
	return p
}

// Format renders the profile as the text report: per-kernel cycle tables
// with loop-nest breakdowns, track occupancy, overlap, and queue waits.
func (p *Profile) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace profile: %d events over %v", p.Events, p.Span)
	if p.Dropped > 0 {
		fmt.Fprintf(&b, " (%d dropped)", p.Dropped)
	}
	b.WriteString("\n\n")

	fmt.Fprintf(&b, "kernel cycles (%.1f%% attributed to named loops):\n", 100*p.AttributedShare)
	fmt.Fprintf(&b, "  %-22s %4s %7s %14s %7s\n", "kernel", "cus", "events", "cycles", "share")
	for _, k := range p.Kernels {
		fmt.Fprintf(&b, "  %-22s %4d %7d %14d %6.1f%%\n", k.Kernel, k.CUs, k.Events, k.Cycles, 100*k.Share)
		for _, l := range k.Loops {
			var share float64
			if k.Cycles > 0 {
				share = float64(l.Cycles) / float64(k.Cycles)
			}
			fmt.Fprintf(&b, "    %-20s %27d %6.1f%%\n", l.Name, l.Cycles, 100*share)
		}
	}
	b.WriteString("\n")

	b.WriteString("track occupancy:\n")
	fmt.Fprintf(&b, "  %-28s %-10s %7s %14s %7s\n", "track", "cat", "events", "busy", "occ")
	for _, t := range p.Tracks {
		fmt.Fprintf(&b, "  %-28s %-10s %7d %14v %6.1f%%\n",
			t.Track.Group+"/"+t.Track.Name, t.Cat, t.Events, t.Busy, 100*t.Occupancy)
	}
	b.WriteString("\n")

	fmt.Fprintf(&b, "transfer/compute overlap: transfer busy %v, compute busy %v, overlap %v (%.1f%% of transfer)\n",
		p.TransferBusy, p.ComputeBusy, p.Overlap, 100*p.OverlapShare)
	if p.QueueJobs > 0 {
		fmt.Fprintf(&b, "queue wait: %d jobs, %v total, %v mean\n",
			p.QueueJobs, p.QueueWait, p.QueueWait/time.Duration(p.QueueJobs))
	}
	return b.String()
}
