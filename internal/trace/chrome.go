package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one entry of the Chrome trace-event format's traceEvents
// array. Only the fields the viewers read are emitted; ts/dur are
// microseconds (fractional), per the format spec.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChrome exports the recorded timeline as Chrome trace-event JSON,
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing. Each track
// group becomes a named process and each track a named thread, so the
// viewer renders one swimlane per CU / DDR bank / PCIe link / SSD channel
// / device queue. Output is deterministic for a fixed event set: events
// are sorted, process/thread IDs are assigned in sorted track order, and
// JSON object keys are emitted in struct order.
func (t *Tracer) WriteChrome(w io.Writer) error {
	events := t.Events()

	// Assign stable pids per group and tids per track, in sorted order.
	type trackID struct{ pid, tid int }
	groups := map[string][]string{}
	for _, ev := range events {
		names := groups[ev.Track.Group]
		found := false
		for _, n := range names {
			if n == ev.Track.Name {
				found = true
				break
			}
		}
		if !found {
			groups[ev.Track.Group] = append(names, ev.Track.Name)
		}
	}
	groupNames := make([]string, 0, len(groups))
	for g := range groups {
		groupNames = append(groupNames, g)
	}
	sort.Strings(groupNames)

	ids := map[Track]trackID{}
	var out []chromeEvent
	for pi, g := range groupNames {
		pid := pi + 1
		out = append(out, chromeEvent{
			Name: "process_name", Ph: "M", PID: pid,
			Args: map[string]any{"name": g},
		})
		names := groups[g]
		sort.Strings(names)
		for ti, n := range names {
			tid := ti + 1
			ids[Track{Group: g, Name: n}] = trackID{pid, tid}
			out = append(out, chromeEvent{
				Name: "thread_name", Ph: "M", PID: pid, TID: tid,
				Args: map[string]any{"name": n},
			})
		}
	}

	for _, ev := range events {
		id := ids[ev.Track]
		ce := chromeEvent{
			Name: ev.Name,
			Cat:  ev.Cat,
			Ph:   "X",
			TS:   float64(ev.Start.Nanoseconds()) / 1e3,
			Dur:  float64(ev.Dur.Nanoseconds()) / 1e3,
			PID:  id.pid,
			TID:  id.tid,
		}
		args := map[string]any{}
		if ev.Job != 0 {
			args["job"] = ev.Job
		}
		if ev.Cycles != 0 {
			args["cycles"] = ev.Cycles
		}
		if len(ev.Loops) > 0 {
			loops := map[string]any{}
			for _, l := range ev.Loops {
				loops[l.Name] = l.Cycles
			}
			args["loops"] = loops
		}
		if len(args) > 0 {
			ce.Args = args
		}
		out = append(out, ce)
	}

	doc := struct {
		DisplayTimeUnit string        `json:"displayTimeUnit"`
		TraceEvents     []chromeEvent `json:"traceEvents"`
	}{"ns", out}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("trace: write chrome json: %w", err)
	}
	return nil
}
