// Package trace is the device-level timeline tracer of the simulated CSD
// stack — the reproduction's analogue of the Vitis Analyzer timelines the
// paper's optimization study (§III-D, Fig. 3) was read off of.
//
// A Tracer records timestamped begin/end events on virtual *tracks*: one
// per compute unit, DDR bank, PCIe link, SSD channel, and serve device
// queue. Instrumented layers (internal/csd, internal/core, internal/xrt,
// internal/serve) emit into a shared Tracer; the result exports as Chrome
// trace-event JSON — loadable in Perfetto or chrome://tracing — and as a
// text profile report (see Profile) that attributes simulated device
// cycles to named kernels and loop nests, reports compute-unit occupancy,
// and quantifies transfer/compute overlap.
//
// # Clock domains
//
// The trace timeline mixes two clock domains deliberately:
//
//   - Host events (queue waits) live in *wall clock*: their start is the
//     tracer-relative wall time at which they really happened.
//   - Device events (kernel runs, SSD reads, PCIe transfers) have
//     *simulated* durations from the calibrated timing models, anchored on
//     the timeline at the wall-clock moment the device picked the work up,
//     pushed later if the device's previous simulated work has not finished
//     yet (the per-group cursor below).
//
// Wall clock therefore provides ordering and cross-device concurrency;
// simulated durations provide magnitudes. Within one job the sub-events
// (SSD read → PCIe transfer → kernel stages) are placed relative to each
// other in pure device time, so intra-job overlap (e.g. the four
// kernel_gates CUs, or compute consuming items while the tail of the
// transfer is still in flight) renders exactly as the hardware would
// execute it.
//
// A nil *Tracer is valid everywhere and records nothing, so instrumented
// layers thread an optional tracer without branching.
package trace

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Track identifies one horizontal timeline lane. Group names the owning
// hardware unit (one simulated device, or the serve scheduler) and renders
// as a Chrome trace "process"; Name is the lane within it (a CU, a DDR
// bank, a PCIe link, an SSD channel, a device queue) and renders as a
// "thread".
type Track struct {
	Group string `json:"group"`
	Name  string `json:"name"`
}

// Event categories. The profiler aggregates by category: CatKernel events
// carry simulated cycles and loop attributions, CatTransfer events form
// the data-movement intervals of the overlap computation, CatQueue events
// are host-side scheduling waits, and CatRuntime events are informational
// wrappers (XRT API calls) excluded from the aggregates.
const (
	CatKernel   = "kernel"
	CatTransfer = "transfer"
	CatQueue    = "queue"
	CatRuntime  = "runtime"
)

// LoopCycles attributes simulated cycles to one named loop nest of a
// kernel, taken from its hls.Schedule.
type LoopCycles struct {
	Name   string `json:"name"`
	Cycles int64  `json:"cycles"`
}

// Event is one completed interval on a track.
type Event struct {
	// Track is the lane the event occupies.
	Track Track `json:"track"`
	// Name labels the event (kernel name, transfer kind, "queue").
	Name string `json:"name"`
	// Cat is the event category (CatKernel, CatTransfer, ...).
	Cat string `json:"cat"`
	// Start is the event's position on the trace timeline, relative to the
	// tracer's start (see the package comment for the clock-domain rules).
	Start time.Duration `json:"start_ns"`
	// Dur is the event length: simulated device time for kernel/transfer
	// events, wall time for queue events.
	Dur time.Duration `json:"dur_ns"`
	// Job correlates every event of one request across layers (serve queue
	// → transfers → kernel runs); 0 means unattributed.
	Job int64 `json:"job,omitempty"`
	// Cycles is the simulated device cycle count (kernel events only).
	Cycles int64 `json:"cycles,omitempty"`
	// Loops breaks Cycles down by named loop nest (kernel events only).
	Loops []LoopCycles `json:"loops,omitempty"`
}

// End returns Start + Dur.
func (e Event) End() time.Duration { return e.Start + e.Dur }

// DefaultLimit bounds retained events; past it new events are counted as
// dropped rather than grown without bound (a trace of the table1 demo is a
// few thousand events; DefaultLimit is ample headroom for long holds).
const DefaultLimit = 1 << 18

// Option configures a Tracer.
type Option func(*Tracer)

// WithLimit caps retained events (<=0 keeps DefaultLimit).
func WithLimit(n int) Option {
	return func(t *Tracer) {
		if n > 0 {
			t.limit = n
		}
	}
}

// WithClock replaces the wall-clock source with now, which must report
// elapsed time since trace start. Tests use a manual clock to obtain
// deterministic timelines.
func WithClock(now func() time.Duration) Option {
	return func(t *Tracer) { t.now = now }
}

// Tracer is a low-overhead, concurrency-safe trace recorder. Emission is
// one short critical section appending to a preallocated-capacity slice;
// there is no per-event allocation beyond the event itself.
type Tracer struct {
	now   func() time.Duration
	limit int

	nextJob atomic.Int64

	mu      sync.Mutex
	events  []Event
	cursors map[string]time.Duration
	dropped int64
}

// New builds an empty tracer whose timeline starts now.
func New(opts ...Option) *Tracer {
	start := time.Now()
	t := &Tracer{
		now:     func() time.Duration { return time.Since(start) },
		limit:   DefaultLimit,
		cursors: make(map[string]time.Duration),
	}
	for _, o := range opts {
		o(t)
	}
	return t
}

// Enabled reports whether events will actually be recorded; instrumented
// layers use it to skip building event payloads for a nil tracer.
func (t *Tracer) Enabled() bool { return t != nil }

// Elapsed returns the current wall-clock position on the trace timeline.
func (t *Tracer) Elapsed() time.Duration {
	if t == nil {
		return 0
	}
	return t.now()
}

// NewJob allocates the next correlation ID (1, 2, 3, ...). The scheduler
// calls it once per request and threads the ID down via WithJob.
func (t *Tracer) NewJob() int64 {
	if t == nil {
		return 0
	}
	return t.nextJob.Add(1)
}

// Anchor reserves the start position for a serial batch of device events
// in group: the current wall-clock offset, pushed later if the group's
// previously recorded device work extends past it. Callers place their
// events at offsets from the anchor and then Advance the group to the
// batch's end.
func (t *Tracer) Anchor(group string) time.Duration {
	if t == nil {
		return 0
	}
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if c := t.cursors[group]; c > now {
		return c
	}
	return now
}

// Advance moves the group's device-time cursor to end (never backward).
func (t *Tracer) Advance(group string, end time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if end > t.cursors[group] {
		t.cursors[group] = end
	}
}

// Cursor returns the group's device-time cursor: the end of its last
// recorded device work.
func (t *Tracer) Cursor(group string) time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cursors[group]
}

// Emit records one event. Past the retention limit the event is counted
// as dropped instead.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.events) >= t.limit {
		t.dropped++
		return
	}
	t.events = append(t.events, ev)
}

// Events returns a snapshot of the recorded events sorted by start time
// (then track, then name — a stable order shared by all exports).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]Event(nil), t.events...)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Track.Group != b.Track.Group {
			return a.Track.Group < b.Track.Group
		}
		if a.Track.Name != b.Track.Name {
			return a.Track.Name < b.Track.Name
		}
		return a.Name < b.Name
	})
	return out
}

// Len returns the number of retained events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped counts events discarded past the retention limit.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

type jobCtxKey struct{}

// WithJob returns a context carrying the trace correlation ID, so lower
// layers (engine, device, runtime) stamp their events with the same job as
// the scheduler's queue event. The same ID is mirrored onto the request's
// telemetry.Span (Span.ID), tying the metrics pipeline and the trace
// timeline together.
func WithJob(ctx context.Context, id int64) context.Context {
	if id == 0 {
		return ctx
	}
	return context.WithValue(ctx, jobCtxKey{}, id)
}

// JobFrom returns the correlation ID carried by ctx, or 0.
func JobFrom(ctx context.Context) int64 {
	id, _ := ctx.Value(jobCtxKey{}).(int64)
	return id
}
