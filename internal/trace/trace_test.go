package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestNilTracerIsNoop(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.Emit(Event{Name: "x"})
	tr.Advance("g", time.Second)
	if tr.Anchor("g") != 0 || tr.Cursor("g") != 0 || tr.Elapsed() != 0 {
		t.Fatal("nil tracer reports nonzero time")
	}
	if tr.NewJob() != 0 || tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer reports state")
	}
	if tr.Events() != nil {
		t.Fatal("nil tracer returned events")
	}
	if p := tr.Profile(); p.Events != 0 {
		t.Fatal("nil tracer produced a profile")
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("nil tracer WriteChrome: %v", err)
	}
}

func TestAnchorAdvanceCursor(t *testing.T) {
	var now time.Duration
	tr := New(WithClock(func() time.Duration { return now }))

	// With no device backlog the anchor is the wall clock.
	now = 10 * time.Microsecond
	if a := tr.Anchor("csd0"); a != 10*time.Microsecond {
		t.Fatalf("anchor = %v, want wall clock", a)
	}
	// Device work extending past the wall clock pushes the next anchor.
	tr.Advance("csd0", 50*time.Microsecond)
	if a := tr.Anchor("csd0"); a != 50*time.Microsecond {
		t.Fatalf("anchor = %v, want cursor 50µs", a)
	}
	// Advance never moves backward, and groups are independent.
	tr.Advance("csd0", 30*time.Microsecond)
	if c := tr.Cursor("csd0"); c != 50*time.Microsecond {
		t.Fatalf("cursor moved backward to %v", c)
	}
	if a := tr.Anchor("csd1"); a != 10*time.Microsecond {
		t.Fatalf("csd1 anchor = %v, want wall clock", a)
	}
	// Once the wall clock passes the cursor, the anchor follows it again.
	now = 80 * time.Microsecond
	if a := tr.Anchor("csd0"); a != 80*time.Microsecond {
		t.Fatalf("anchor = %v, want wall clock 80µs", a)
	}
}

func TestEmitLimitCountsDropped(t *testing.T) {
	tr := New(WithLimit(2))
	for i := 0; i < 5; i++ {
		tr.Emit(Event{Name: "e"})
	}
	if tr.Len() != 2 || tr.Dropped() != 3 {
		t.Fatalf("len %d dropped %d, want 2 and 3", tr.Len(), tr.Dropped())
	}
}

func TestEventsSorted(t *testing.T) {
	tr := New()
	tr.Emit(Event{Track: Track{"csd1", "b"}, Name: "late", Start: 30})
	tr.Emit(Event{Track: Track{"csd0", "a"}, Name: "early", Start: 10})
	tr.Emit(Event{Track: Track{"csd0", "a"}, Name: "mid", Start: 20})
	events := tr.Events()
	if len(events) != 3 {
		t.Fatalf("got %d events", len(events))
	}
	for i, want := range []string{"early", "mid", "late"} {
		if events[i].Name != want {
			t.Fatalf("event %d = %q, want %q", i, events[i].Name, want)
		}
	}
}

func TestJobContext(t *testing.T) {
	ctx := context.Background()
	if JobFrom(ctx) != 0 {
		t.Fatal("empty context carries a job")
	}
	if WithJob(ctx, 0) != ctx {
		t.Fatal("job 0 should not wrap the context")
	}
	if got := JobFrom(WithJob(ctx, 42)); got != 42 {
		t.Fatalf("JobFrom = %d, want 42", got)
	}
	tr := New()
	if a, b := tr.NewJob(), tr.NewJob(); a != 1 || b != 2 {
		t.Fatalf("job IDs = %d, %d, want 1, 2", a, b)
	}
}

// goldenTracer builds the fixed timeline behind the Chrome-export golden: a
// miniature of the real instrumentation's shape — SSD read feeding a P2P
// transfer, a kernel run with loop attribution on two CUs, a DDR landing,
// and a serve queue event — all with hand-placed times so the export is
// byte-stable.
func goldenTracer() *Tracer {
	tr := New(WithClock(func() time.Duration { return 0 }))
	job := tr.NewJob()
	tr.Emit(Event{Track: Track{"serve", "device0"}, Name: "queue:predict-stored",
		Cat: CatQueue, Start: 0, Dur: 2 * time.Microsecond, Job: job})
	tr.Emit(Event{Track: Track{"csd0", "ssd"}, Name: "ssd-read",
		Cat: CatTransfer, Start: 2 * time.Microsecond, Dur: 8 * time.Microsecond, Job: job})
	tr.Emit(Event{Track: Track{"csd0", "pcie-internal"}, Name: "p2p",
		Cat: CatTransfer, Start: 10 * time.Microsecond, Dur: 4 * time.Microsecond, Job: job})
	tr.Emit(Event{Track: Track{"csd0", "ddr-bank1"}, Name: "ddr:p2p",
		Cat: CatTransfer, Start: 10 * time.Microsecond, Dur: 4 * time.Microsecond, Job: job})
	tr.Emit(Event{Track: Track{"csd0", "xrt"}, Name: "SyncFromSSD",
		Cat: CatRuntime, Start: 2 * time.Microsecond, Dur: 12 * time.Microsecond, Job: job})
	for cu := 0; cu < 2; cu++ {
		name := "cu-kernel_gates-0"
		if cu == 1 {
			name = "cu-kernel_gates-1"
		}
		tr.Emit(Event{Track: Track{"csd0", name}, Name: "kernel_gates",
			Cat: CatKernel, Start: 12 * time.Microsecond, Dur: 6 * time.Microsecond,
			Job: job, Cycles: 300, Loops: []LoopCycles{{Name: "mac", Cycles: 300}}})
	}
	return tr
}

func TestWriteChromeGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTracer().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "chrome.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome export mismatch\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
	// Determinism: a second export of the same timeline is byte-identical.
	var again bytes.Buffer
	if err := goldenTracer().WriteChrome(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("two exports of the same timeline differ")
	}
}

func TestWriteChromeIsValidTraceJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTracer().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	meta, complete := 0, 0
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
			if ev.Args["name"] == nil {
				t.Errorf("metadata event %q missing args.name", ev.Name)
			}
		case "X":
			complete++
			if ev.PID == 0 || ev.TID == 0 {
				t.Errorf("event %q missing pid/tid", ev.Name)
			}
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	// 2 process_name + 7 thread_name metadata records, 7 complete events.
	if meta != 9 || complete != 7 {
		t.Fatalf("got %d metadata + %d complete events, want 9 + 7", meta, complete)
	}
}

func TestProfileAggregation(t *testing.T) {
	tr := New()
	// Transfer 0–10µs; kernel 5–15µs on the same device group: 5µs overlap.
	tr.Emit(Event{Track: Track{"csd0", "pcie-internal"}, Name: "p2p",
		Cat: CatTransfer, Start: 0, Dur: 10 * time.Microsecond})
	tr.Emit(Event{Track: Track{"csd0", "cu-k"}, Name: "k", Cat: CatKernel,
		Start: 5 * time.Microsecond, Dur: 10 * time.Microsecond,
		Cycles: 100, Loops: []LoopCycles{{"a", 60}, {"b", 40}}})
	// A second kernel on another group: concurrency, not overlap.
	tr.Emit(Event{Track: Track{"csd1", "cu-k"}, Name: "k", Cat: CatKernel,
		Start: 0, Dur: 10 * time.Microsecond, Cycles: 100,
		Loops: []LoopCycles{{"a", 50}, {"b", 50}}})
	tr.Emit(Event{Track: Track{"serve", "device0"}, Name: "queue:predict",
		Cat: CatQueue, Start: 0, Dur: 3 * time.Microsecond, Job: 1})

	p := tr.Profile()
	if p.Events != 4 || p.Span != 15*time.Microsecond {
		t.Fatalf("events %d span %v", p.Events, p.Span)
	}
	if p.TotalKernelCycles != 200 || p.AttributedCycles != 200 || p.AttributedShare != 1.0 {
		t.Fatalf("attribution = %d/%d (%.2f)", p.AttributedCycles, p.TotalKernelCycles, p.AttributedShare)
	}
	if len(p.Kernels) != 1 {
		t.Fatalf("kernel profiles = %d", len(p.Kernels))
	}
	k := p.Kernels[0]
	if k.Kernel != "k" || k.CUs != 1 || k.Events != 2 || k.Cycles != 200 {
		t.Fatalf("kernel profile %+v", k)
	}
	if len(k.Loops) != 2 || k.Loops[0].Name != "a" || k.Loops[0].Cycles != 110 {
		t.Fatalf("loop breakdown %+v", k.Loops)
	}
	if p.Overlap != 5*time.Microsecond {
		t.Fatalf("overlap = %v, want 5µs (cross-group concurrency must not count)", p.Overlap)
	}
	if p.TransferBusy != 10*time.Microsecond || p.ComputeBusy != 20*time.Microsecond {
		t.Fatalf("transfer %v compute %v", p.TransferBusy, p.ComputeBusy)
	}
	if p.QueueJobs != 1 || p.QueueWait != 3*time.Microsecond {
		t.Fatalf("queue jobs %d wait %v", p.QueueJobs, p.QueueWait)
	}
	out := p.Format()
	for _, want := range []string{"kernel cycles", "100.0% attributed", "track occupancy", "overlap"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestProfileMergesOverlappingIntervals(t *testing.T) {
	tr := New()
	// Two transfers sharing the same 0–10µs window (the DDR-landing pattern)
	// must count as 10µs busy, not 20µs.
	tr.Emit(Event{Track: Track{"csd0", "pcie-internal"}, Name: "p2p",
		Cat: CatTransfer, Start: 0, Dur: 10 * time.Microsecond})
	tr.Emit(Event{Track: Track{"csd0", "ddr-bank0"}, Name: "ddr:p2p",
		Cat: CatTransfer, Start: 0, Dur: 10 * time.Microsecond})
	if p := tr.Profile(); p.TransferBusy != 10*time.Microsecond {
		t.Fatalf("transfer busy = %v, want 10µs", p.TransferBusy)
	}
}

// TestConcurrentEmitStress drives every mutating and reading entry point
// from many goroutines at once; run under -race it is the data-race proof
// for the instrumented serving path (multiple device workers sharing one
// tracer).
func TestConcurrentEmitStress(t *testing.T) {
	tr := New()
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			group := "csd" + string(rune('0'+w%2))
			for i := 0; i < perWorker; i++ {
				job := tr.NewJob()
				at := tr.Anchor(group)
				tr.Emit(Event{Track: Track{group, "cu-k"}, Name: "k", Cat: CatKernel,
					Start: at, Dur: time.Microsecond, Job: job, Cycles: 10,
					Loops: []LoopCycles{{"l", 10}}})
				tr.Advance(group, at+time.Microsecond)
				if i%50 == 0 {
					_ = tr.Events()
					_ = tr.Profile()
					_ = tr.WriteChrome(io.Discard)
				}
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != workers*perWorker {
		t.Fatalf("retained %d events, want %d", tr.Len(), workers*perWorker)
	}
	if p := tr.Profile(); p.AttributedShare != 1.0 {
		t.Fatalf("attribution = %.3f", p.AttributedShare)
	}
}
