package fpga

import (
	"errors"
	"math"
	"testing"
	"time"

	"github.com/kfrida1/csdinf/internal/hls"
)

func simpleSpec(name string, cus int) KernelSpec {
	return KernelSpec{
		Name: name,
		CUs:  cus,
		Loops: []hls.Loop{
			{Name: "l", Trip: 100, Body: []hls.Op{hls.IntMul, hls.IntAdd}, Pipeline: true},
		},
		Buffers: []hls.Buffer{{Name: "b", Words: 2048}},
	}
}

func TestPartModels(t *testing.T) {
	if KU15P.Budget.DSP != 1968 {
		t.Errorf("KU15P DSP = %d, want 1968", KU15P.Budget.DSP)
	}
	if AlveoU200.Budget.DSP != 6840 {
		t.Errorf("U200 DSP = %d, want 6840", AlveoU200.Budget.DSP)
	}
	if AlveoU200.DDRBanks != 4 {
		t.Errorf("U200 DDR banks = %d, want 4 (paper §III-C)", AlveoU200.DDRBanks)
	}
	if KU15P.ClockMHz != 300 || AlveoU200.ClockMHz != 300 {
		t.Error("kernel clock should be the 300 MHz Vitis default")
	}
}

func TestNewDeviceValidation(t *testing.T) {
	if _, err := NewDevice(Part{Name: "bad", ClockMHz: 0}); err == nil {
		t.Fatal("zero clock: expected error")
	}
}

func TestPlaceAndRetrieve(t *testing.T) {
	d, err := NewDevice(AlveoU200)
	if err != nil {
		t.Fatal(err)
	}
	pk, err := d.Place(simpleSpec("kernel_gates", 4))
	if err != nil {
		t.Fatal(err)
	}
	if pk.CyclesPerInvocation <= 0 {
		t.Fatal("no latency computed")
	}
	// 4 CUs quadruple resources.
	single, err := NewDevice(AlveoU200)
	if err != nil {
		t.Fatal(err)
	}
	pk1, err := single.Place(simpleSpec("kernel_gates", 1))
	if err != nil {
		t.Fatal(err)
	}
	if pk.Res.DSP != 4*pk1.Res.DSP {
		t.Fatalf("4-CU DSP = %d, want %d", pk.Res.DSP, 4*pk1.Res.DSP)
	}
	got, err := d.Kernel("kernel_gates")
	if err != nil || got != pk {
		t.Fatalf("Kernel() = %v, %v", got, err)
	}
	if _, err := d.Kernel("missing"); err == nil {
		t.Error("Kernel(missing) expected error")
	}
}

func TestPlaceValidation(t *testing.T) {
	d, err := NewDevice(AlveoU200)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Place(KernelSpec{Name: "", CUs: 1}); err == nil {
		t.Error("empty name: expected error")
	}
	if _, err := d.Place(KernelSpec{Name: "k", CUs: 0}); err == nil {
		t.Error("zero CUs: expected error")
	}
	if _, err := d.Place(simpleSpec("dup", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Place(simpleSpec("dup", 1)); !errors.Is(err, ErrDuplicateKernel) {
		t.Errorf("duplicate error = %v, want ErrDuplicateKernel", err)
	}
}

func TestResourceExhaustion(t *testing.T) {
	d, err := NewDevice(KU15P)
	if err != nil {
		t.Fatal(err)
	}
	// A fully-unrolled 4096-wide integer MAC needs 4096 DSPs > KU15P's 1968.
	spec := KernelSpec{
		Name: "huge",
		CUs:  1,
		Loops: []hls.Loop{{
			Name: "mac", Trip: 4096, Body: []hls.Op{hls.IntMul},
			Pipeline: true, Unroll: 4096, ArrayPartition: true,
		}},
	}
	if _, err := d.Place(spec); !errors.Is(err, ErrResourceExhausted) {
		t.Fatalf("error = %v, want ErrResourceExhausted", err)
	}
	// The same kernel fits the U200.
	u, err := NewDevice(AlveoU200)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u.Place(spec); err != nil {
		t.Fatalf("U200 placement failed: %v", err)
	}
}

func TestScheduleErrorPropagates(t *testing.T) {
	d, err := NewDevice(AlveoU200)
	if err != nil {
		t.Fatal(err)
	}
	spec := KernelSpec{
		Name:  "bad",
		CUs:   1,
		Loops: []hls.Loop{{Name: "neg", Trip: -1}},
	}
	if _, err := d.Place(spec); err == nil {
		t.Fatal("expected schedule error")
	}
}

func TestDurationConversion(t *testing.T) {
	d, err := NewDevice(AlveoU200) // 300 MHz -> 3.333 ns/cycle
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Duration(300); got != time.Microsecond {
		t.Fatalf("Duration(300) = %v, want 1µs", got)
	}
	if got := d.Microseconds(645); math.Abs(got-2.15) > 1e-9 {
		t.Fatalf("Microseconds(645) = %v, want 2.15", got)
	}
}

func TestUtilization(t *testing.T) {
	d, err := NewDevice(AlveoU200)
	if err != nil {
		t.Fatal(err)
	}
	u := d.Utilization()
	if u.DSP != 0 || u.LUT != 0 {
		t.Fatal("fresh device should be idle")
	}
	if _, err := d.Place(simpleSpec("k", 4)); err != nil {
		t.Fatal(err)
	}
	u = d.Utilization()
	if u.DSP <= 0 || u.DSP > 1 {
		t.Fatalf("DSP utilization = %v", u.DSP)
	}
	if u.BRAM <= 0 {
		t.Fatal("buffer should consume BRAM")
	}
}

func TestNotesAggregated(t *testing.T) {
	d, err := NewDevice(AlveoU200)
	if err != nil {
		t.Fatal(err)
	}
	spec := KernelSpec{
		Name: "noted",
		CUs:  1,
		Loops: []hls.Loop{{
			Name: "acc", Trip: 10, Body: []hls.Op{hls.FAdd},
			CarriedDep: true, Pipeline: true,
		}},
	}
	pk, err := d.Place(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(pk.Notes()) == 0 {
		t.Fatal("expected carried-dependency note")
	}
}
