// Package fpga models the FPGA accelerator of a computational storage drive:
// a part with finite DSP/LUT/FF/BRAM budgets and a kernel clock, onto which
// compute units are placed and executed.
//
// Two parts are provided: the Kintex UltraScale+ KU15P inside Samsung's
// SmartSSD, and the Alveo U200 the paper uses as its experimental platform
// (§IV, "part of the UltraScale family and similar to the SmartSSD's Kintex
// KU15P"). Placement validates that every kernel's scheduled resource usage
// — which grows with unrolling, exactly as in real HLS — fits the part, so
// infeasible pragma combinations fail loudly instead of reporting fantasy
// speedups.
package fpga

import (
	"errors"
	"fmt"
	"time"

	"github.com/kfrida1/csdinf/internal/hls"
)

// Part is an FPGA device model.
type Part struct {
	// Name is the part number.
	Name string
	// Budget is the available fabric.
	Budget hls.Resources
	// ClockMHz is the kernel clock frequency.
	ClockMHz float64
	// DDRBanks is the number of attached global-memory banks.
	DDRBanks int
}

// KU15P is the Xilinx Kintex UltraScale+ XCKU15P inside the SmartSSD.
var KU15P = Part{
	Name:     "xcku15p",
	Budget:   hls.Resources{DSP: 1968, LUT: 522_720, FF: 1_045_440, BRAM: 984},
	ClockMHz: 300,
	DDRBanks: 1,
}

// AlveoU200 is the Alveo U200 accelerator card, the paper's experimental
// platform. The paper's approach conservatively uses two of its four DDR
// banks (§III-C).
var AlveoU200 = Part{
	Name:     "xcu200",
	Budget:   hls.Resources{DSP: 6840, LUT: 1_182_240, FF: 2_364_480, BRAM: 2160},
	ClockMHz: 300,
	DDRBanks: 4,
}

// KernelSpec describes a kernel to be placed on the device.
type KernelSpec struct {
	// Name identifies the kernel (e.g. "kernel_gates").
	Name string
	// CUs is the number of compute units to instantiate (the paper places
	// four kernel_gates CUs).
	CUs int
	// Loops are the loop nests executed per invocation, in order.
	Loops []hls.Loop
	// Buffers are the kernel's on-chip buffers.
	Buffers []hls.Buffer
}

// PlacedKernel is a kernel resident on a device.
type PlacedKernel struct {
	// Spec is the placed specification.
	Spec KernelSpec
	// Schedules holds the per-loop schedules, in Spec.Loops order.
	Schedules []hls.Schedule
	// CyclesPerInvocation is the total latency of one invocation of one CU.
	CyclesPerInvocation int64
	// Res is the total fabric consumed by all CUs of this kernel.
	Res hls.Resources
}

// Notes aggregates the scheduling notes of all loops.
func (k *PlacedKernel) Notes() []string {
	var out []string
	for _, s := range k.Schedules {
		out = append(out, s.Notes...)
	}
	return out
}

// Device is an FPGA with kernels placed on it.
type Device struct {
	part    Part
	used    hls.Resources
	kernels map[string]*PlacedKernel
}

// NewDevice returns an empty device for the part.
func NewDevice(part Part) (*Device, error) {
	if part.ClockMHz <= 0 {
		return nil, fmt.Errorf("fpga: part %q has non-positive clock %v", part.Name, part.ClockMHz)
	}
	return &Device{part: part, kernels: make(map[string]*PlacedKernel)}, nil
}

// Part returns the device's part model.
func (d *Device) Part() Part { return d.part }

// Used returns the fabric consumed so far.
func (d *Device) Used() hls.Resources { return d.used }

// ErrResourceExhausted is returned when a kernel does not fit the remaining
// fabric.
var ErrResourceExhausted = errors.New("fpga: insufficient fabric resources")

// ErrDuplicateKernel is returned when a kernel name is placed twice.
var ErrDuplicateKernel = errors.New("fpga: kernel already placed")

// Place schedules the kernel's loops, accounts its resources (times CUs),
// and admits it onto the device if it fits.
func (d *Device) Place(spec KernelSpec) (*PlacedKernel, error) {
	if spec.Name == "" {
		return nil, errors.New("fpga: kernel must have a name")
	}
	if _, dup := d.kernels[spec.Name]; dup {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateKernel, spec.Name)
	}
	if spec.CUs <= 0 {
		return nil, fmt.Errorf("fpga: kernel %q must have at least one CU, got %d", spec.Name, spec.CUs)
	}
	pk := &PlacedKernel{Spec: spec}
	var perCU hls.Resources
	for _, l := range spec.Loops {
		s, err := hls.ScheduleLoop(l)
		if err != nil {
			return nil, fmt.Errorf("fpga: kernel %q: %w", spec.Name, err)
		}
		pk.Schedules = append(pk.Schedules, s)
		pk.CyclesPerInvocation += s.Cycles
		perCU.Add(s.Res)
	}
	for _, b := range spec.Buffers {
		perCU.Add(b.Resources())
	}
	pk.Res = perCU.Scale(spec.CUs)

	total := d.used
	total.Add(pk.Res)
	if !total.Fits(d.part.Budget) {
		return nil, fmt.Errorf("%w: kernel %q needs %+v, device %q has %+v used of %+v",
			ErrResourceExhausted, spec.Name, pk.Res, d.part.Name, d.used, d.part.Budget)
	}
	d.used = total
	d.kernels[spec.Name] = pk
	return pk, nil
}

// Kernel returns the placed kernel with the given name.
func (d *Device) Kernel(name string) (*PlacedKernel, error) {
	k, ok := d.kernels[name]
	if !ok {
		return nil, fmt.Errorf("fpga: kernel %q not placed", name)
	}
	return k, nil
}

// Duration converts a cycle count to wall-clock time at the kernel clock.
func (d *Device) Duration(cycles int64) time.Duration {
	ns := float64(cycles) * 1000 / d.part.ClockMHz
	return time.Duration(ns * float64(time.Nanosecond))
}

// Microseconds converts a cycle count to microseconds at the kernel clock.
func (d *Device) Microseconds(cycles int64) float64 {
	return float64(cycles) / d.part.ClockMHz
}

// Utilization reports the fraction of each resource class in use.
type Utilization struct {
	DSP, LUT, FF, BRAM float64
}

// Utilization returns current fabric utilization fractions.
func (d *Device) Utilization() Utilization {
	frac := func(used, budget int) float64 {
		if budget == 0 {
			return 0
		}
		return float64(used) / float64(budget)
	}
	return Utilization{
		DSP:  frac(d.used.DSP, d.part.Budget.DSP),
		LUT:  frac(d.used.LUT, d.part.Budget.LUT),
		FF:   frac(d.used.FF, d.part.Budget.FF),
		BRAM: frac(d.used.BRAM, d.part.Budget.BRAM),
	}
}
