package node

import (
	"context"
	"errors"
	"testing"

	"github.com/kfrida1/csdinf/internal/activation"
	"github.com/kfrida1/csdinf/internal/core"
	"github.com/kfrida1/csdinf/internal/csd"
	"github.com/kfrida1/csdinf/internal/lstm"
	"github.com/kfrida1/csdinf/internal/ssd"
)

func testNode(t *testing.T, devices int) *Node {
	t.Helper()
	m, err := lstm.NewModel(lstm.Config{
		VocabSize: 20, EmbedDim: 4, HiddenSize: 6, CellActivation: activation.Softsign,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(m, Config{
		Devices: devices,
		CSD:     csd.Config{SSD: ssd.Config{Capacity: 1 << 20}},
		Deploy:  core.DeployConfig{SeqLen: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func testSeq() []int { return []int{1, 2, 3, 4, 5, 6, 7, 8} }

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Error("nil model: expected error")
	}
	m, err := lstm.NewModel(lstm.Config{
		VocabSize: 5, EmbedDim: 2, HiddenSize: 3, CellActivation: activation.Softsign,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(m, Config{Devices: -2}); err == nil {
		t.Error("negative devices: expected error")
	}
	n, err := New(m, Config{}) // defaults to 1 device
	if err != nil {
		t.Fatal(err)
	}
	if n.Devices() != 1 {
		t.Fatalf("default devices = %d", n.Devices())
	}
}

func TestPredictRoundRobin(t *testing.T) {
	n := testNode(t, 3)
	for i := 0; i < 6; i++ {
		if _, _, err := n.Predict(context.Background(), testSeq()); err != nil {
			t.Fatal(err)
		}
	}
	for i, s := range n.Stats() {
		if s.Jobs != 2 {
			t.Fatalf("device %d jobs = %d, want 2 (round robin)", i, s.Jobs)
		}
		if s.BusyTime <= 0 {
			t.Fatalf("device %d has no accumulated time", i)
		}
	}
}

func TestPredictBatchStriping(t *testing.T) {
	n := testNode(t, 4)
	batch := make([][]int, 10)
	for i := range batch {
		batch[i] = testSeq()
	}
	res, err := n.PredictBatch(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 10 {
		t.Fatalf("results = %d", len(res.Results))
	}
	if res.Makespan <= 0 || res.DeviceTime < res.Makespan {
		t.Fatalf("timing inconsistent: makespan %v, total %v", res.Makespan, res.DeviceTime)
	}
	// 4 devices: makespan should be well below total device time.
	if res.Makespan*2 > res.DeviceTime {
		t.Fatalf("no parallel speedup: makespan %v vs total %v", res.Makespan, res.DeviceTime)
	}
}

func TestPredictBatchErrors(t *testing.T) {
	n := testNode(t, 2)
	if _, err := n.PredictBatch(context.Background(), nil); err == nil {
		t.Error("empty batch: expected error")
	}
	if _, err := n.PredictBatch(context.Background(), [][]int{{99}}); err == nil {
		t.Error("bad sequence: expected error")
	}
}

func TestMoreDevicesReduceMakespan(t *testing.T) {
	batch := make([][]int, 16)
	for i := range batch {
		batch[i] = testSeq()
	}
	n1 := testNode(t, 1)
	n4 := testNode(t, 4)
	r1, err := n1.PredictBatch(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := n4.PredictBatch(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	if r4.Makespan >= r1.Makespan {
		t.Fatalf("4 devices (%v) not faster than 1 (%v)", r4.Makespan, r1.Makespan)
	}
}

func TestThroughputScalesWithDevices(t *testing.T) {
	n1, n4 := testNode(t, 1), testNode(t, 4)
	t1, t4 := n1.ThroughputPerSecond(), n4.ThroughputPerSecond()
	if t1 <= 0 {
		t.Fatalf("throughput = %v", t1)
	}
	if ratio := t4 / t1; ratio < 3.9 || ratio > 4.1 {
		t.Fatalf("throughput ratio = %v, want ~4", ratio)
	}
}

func TestPredictStoredRoundRobin(t *testing.T) {
	n := testNode(t, 2)
	// Mirror the same stored sequence on every device's SSD, as the
	// background-scan replication deployment would.
	for d := 0; d < n.Devices(); d++ {
		if _, err := n.Device(d).StoreSequence(0, testSeq()); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if _, _, err := n.PredictStored(context.Background(), 0); err != nil {
			t.Fatal(err)
		}
	}
	for i, s := range n.Stats() {
		if s.Jobs != 2 {
			t.Fatalf("device %d jobs = %d, want 2", i, s.Jobs)
		}
	}
}

func TestPredictHonorsCanceledContext(t *testing.T) {
	n := testNode(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := n.Predict(ctx, testSeq()); !errors.Is(err, context.Canceled) {
		t.Fatalf("Predict error = %v, want context.Canceled", err)
	}
	batch := [][]int{testSeq(), testSeq()}
	if _, err := n.PredictBatch(ctx, batch); !errors.Is(err, context.Canceled) {
		t.Fatalf("PredictBatch error = %v, want context.Canceled", err)
	}
}

func TestConcurrentPredict(t *testing.T) {
	n := testNode(t, 2)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 10; i++ {
				if _, _, err := n.Predict(context.Background(), testSeq()); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	var jobs int64
	for _, s := range n.Stats() {
		jobs += s.Jobs
	}
	if jobs != 80 {
		t.Fatalf("total jobs = %d, want 80", jobs)
	}
}
