// Package node models a data-center node hosting several computational
// storage drives. The paper's scalability argument (§II) is that the
// SmartSSD "represents a scalable solution ... allowing for the
// installation of multiple devices within a single node"; this package
// provides that node-level view: one trained classifier deployed to N
// simulated CSDs, work fanned out across them, and aggregate throughput
// accounting.
package node

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/kfrida1/csdinf/internal/core"
	"github.com/kfrida1/csdinf/internal/csd"
	"github.com/kfrida1/csdinf/internal/device"
	"github.com/kfrida1/csdinf/internal/infer"
	"github.com/kfrida1/csdinf/internal/kernels"
	"github.com/kfrida1/csdinf/internal/lstm"
	"github.com/kfrida1/csdinf/internal/telemetry"
)

// Config describes a node.
type Config struct {
	// Devices is the number of CSDs installed; 0 defaults to 1.
	Devices int
	// CSD configures each drive (zero value = SmartSSD defaults).
	CSD csd.Config
	// Deploy configures each engine (zero value = paper defaults).
	Deploy core.DeployConfig
	// Telemetry, when non-nil, receives the per-device node job counter
	// (node_jobs_total, labeled device="<registry ID>") and is threaded
	// into each engine deployment unless Deploy.Telemetry is already set.
	// Busy-time accounting lives with the device registry
	// (device_busy_nanoseconds_total).
	Telemetry *telemetry.Registry
	// Registry, when non-nil, is the shared device registry the node
	// registers its drives in; nil builds a private one. Either way each
	// drive gets a stable ID ("csd-000", ...) that labels its telemetry
	// and names its trace track group.
	Registry *device.Registry
}

// Node is a host with several CSD inference engines. Its methods are safe
// for concurrent use. Node implements infer.Inferencer with a round-robin
// placement policy; internal/serve layers bounded queues and least-busy
// placement on top for sustained request load.
type Node struct {
	engines  []*engineSlot
	registry *device.Registry
	next     int
	nextMu   sync.Mutex
}

var _ infer.Inferencer = (*Node)(nil)

// engineSlot serializes access to one engine (a single hardware pipeline
// per device). Identity and busy accounting live on the registry handle;
// the job counter is a telemetry instrument so Stats() and /metrics read
// the same counter.
type engineSlot struct {
	mu   sync.Mutex
	h    *device.Device
	eng  *core.Engine
	dev  *csd.SmartSSD
	jobs *telemetry.Counter
}

// New builds a node: cfg.Devices fresh CSDs, each with the model deployed.
func New(m *lstm.Model, cfg Config) (*Node, error) {
	if m == nil {
		return nil, errors.New("node: nil model")
	}
	if cfg.Devices == 0 {
		cfg.Devices = 1
	}
	if cfg.Devices < 0 {
		return nil, fmt.Errorf("node: device count must be positive, got %d", cfg.Devices)
	}
	deploy := cfg.Deploy
	if deploy.Telemetry == nil {
		deploy.Telemetry = cfg.Telemetry
	}
	reg := cfg.Registry
	if reg == nil {
		reg = device.NewRegistry(device.Config{
			Telemetry: cfg.Telemetry, Events: deploy.Events,
		})
	}
	n := &Node{registry: reg}
	for i := 0; i < cfg.Devices; i++ {
		h := reg.Register()
		dev, err := csd.New(cfg.CSD)
		if err != nil {
			return nil, fmt.Errorf("node: device %s: %w", h.ID(), err)
		}
		devDeploy := deploy
		if devDeploy.TraceName == "" {
			devDeploy.TraceName = string(h.ID())
		}
		eng, err := core.Deploy(dev, m, devDeploy)
		if err != nil {
			return nil, fmt.Errorf("node: deploy to device %s: %w", h.ID(), err)
		}
		if err := h.SetReady("node-deploy"); err != nil {
			return nil, err
		}
		dl := telemetry.L("device", string(h.ID()))
		n.engines = append(n.engines, &engineSlot{
			h: h, eng: eng, dev: dev,
			jobs: cfg.Telemetry.Counter("node_jobs_total",
				"Classifications completed by the device.", dl),
		})
	}
	return n, nil
}

// Devices returns the number of installed CSDs.
func (n *Node) Devices() int { return len(n.engines) }

// Device returns the i-th CSD (e.g. to store sequences for stored scans).
func (n *Node) Device(i int) *csd.SmartSSD { return n.engines[i].dev }

// Registry returns the device registry the node's drives are registered in.
func (n *Node) Registry() *device.Registry { return n.registry }

// SeqLen returns the classification window length of the deployed model.
func (n *Node) SeqLen() int { return n.engines[0].eng.SeqLen() }

// pick returns the next slot under the round-robin policy.
func (n *Node) pick() *engineSlot {
	n.nextMu.Lock()
	slot := n.engines[n.next%len(n.engines)]
	n.next++
	n.nextMu.Unlock()
	return slot
}

// Predict classifies one sequence on the next device (round-robin).
func (n *Node) Predict(ctx context.Context, seq []int) (kernels.Result, core.Timing, error) {
	slot := n.pick()
	slot.mu.Lock()
	defer slot.mu.Unlock()
	res, timing, err := slot.eng.Predict(ctx, seq)
	if err != nil {
		return kernels.Result{}, core.Timing{}, err
	}
	slot.h.AddBusy(int64(timing.Total()))
	slot.jobs.Inc()
	return res, timing, nil
}

// PredictStored classifies the sequence at the given SSD byte offset on the
// next device (round-robin). Offsets address the selected device's SSD, so
// this is meaningful when scan targets are mirrored across the node's
// drives (the background-scan replication deployment).
func (n *Node) PredictStored(ctx context.Context, ssdOff int64) (kernels.Result, core.Timing, error) {
	slot := n.pick()
	slot.mu.Lock()
	defer slot.mu.Unlock()
	res, timing, err := slot.eng.PredictStored(ctx, ssdOff)
	if err != nil {
		return kernels.Result{}, core.Timing{}, err
	}
	slot.h.AddBusy(int64(timing.Total()))
	slot.jobs.Inc()
	return res, timing, nil
}

// BatchResult is the outcome of a fan-out classification.
type BatchResult struct {
	// Results are per-sequence classifications, in input order.
	Results []kernels.Result
	// Makespan is the simulated completion time: the busiest device's
	// total simulated time for its share of the batch.
	Makespan time.Duration
	// DeviceTime is the summed simulated time across all devices.
	DeviceTime time.Duration
}

// PredictBatch fans a batch out across all devices (striped assignment)
// and reports the simulated makespan — the node-level throughput figure.
// Cancelling ctx aborts each device's remaining share of the batch.
func (n *Node) PredictBatch(ctx context.Context, seqs [][]int) (*BatchResult, error) {
	if len(seqs) == 0 {
		return nil, errors.New("node: empty batch")
	}
	results := make([]kernels.Result, len(seqs))
	perDevice := make([]time.Duration, len(n.engines))
	errs := make([]error, len(n.engines))

	var wg sync.WaitGroup
	for d := range n.engines {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			slot := n.engines[d]
			slot.mu.Lock()
			defer slot.mu.Unlock()
			for i := d; i < len(seqs); i += len(n.engines) {
				res, timing, err := slot.eng.Predict(ctx, seqs[i])
				if err != nil {
					errs[d] = fmt.Errorf("node: device %d sequence %d: %w", d, i, err)
					return
				}
				results[i] = res
				perDevice[d] += timing.Total()
				slot.h.AddBusy(int64(timing.Total()))
				slot.jobs.Inc()
			}
		}(d)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := &BatchResult{Results: results}
	for _, t := range perDevice {
		out.DeviceTime += t
		if t > out.Makespan {
			out.Makespan = t
		}
	}
	return out, nil
}

// DeviceStats describes one device's accumulated work.
type DeviceStats struct {
	// ID is the device's stable registry identity.
	ID       string
	Jobs     int64
	BusyTime time.Duration
}

// Stats returns per-device accumulated work, ordered by device ID.
func (n *Node) Stats() []DeviceStats {
	out := make([]DeviceStats, len(n.engines))
	for i, s := range n.engines {
		out[i] = DeviceStats{
			ID:       string(s.h.ID()),
			Jobs:     s.jobs.Value(),
			BusyTime: time.Duration(s.h.Busy()),
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ThroughputPerSecond estimates node classification throughput from the
// deployed per-sequence latency: devices / seconds-per-sequence.
func (n *Node) ThroughputPerSecond() float64 {
	if len(n.engines) == 0 {
		return 0
	}
	eng := n.engines[0].eng
	_, _, _, perItemUS := eng.PerItemMicros()
	perSeq := perItemUS * float64(eng.SeqLen()) / 1e6 // seconds
	if perSeq <= 0 {
		return 0
	}
	return float64(len(n.engines)) / perSeq
}
