// Package load is an open-loop workload generator for the CSD serving
// stack, with coordinated-omission-safe latency measurement and SLO
// attainment reporting.
//
// Closed-loop benchmarks (internal/experiments) issue the next request only
// after the previous one returns, so a slow server quietly slows the
// workload down and the measured latency distribution omits exactly the
// requests that would have suffered — the coordinated-omission trap. This
// package instead pre-generates a deterministic arrival schedule (Poisson
// or bursty Markov-modulated, seeded for CI) and dispatches each request at
// its *intended* arrival time regardless of how the system is coping.
// Latency is measured from the intended arrival, not from dispatch, so
// queueing delay the server inflicts on a backed-up workload is charged to
// the server.
//
// Every post-warmup outcome feeds an slo.Evaluator, turning the run into a
// judgment: per-objective attainment, error budget remaining, a burn-rate
// timeline sampled through the run, and any alert firings — the report
// cmd/csdload renders. Chaos steps (fleet drain/fail/rejoin) can be
// scheduled mid-run to show budget burn during re-placement.
package load

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/kfrida1/csdinf/internal/eventlog"
	"github.com/kfrida1/csdinf/internal/fleet"
	"github.com/kfrida1/csdinf/internal/infer"
	"github.com/kfrida1/csdinf/internal/kernels"
	"github.com/kfrida1/csdinf/internal/quality"
	"github.com/kfrida1/csdinf/internal/sandbox"
	"github.com/kfrida1/csdinf/internal/serve"
	"github.com/kfrida1/csdinf/internal/slo"
	"github.com/kfrida1/csdinf/internal/telemetry"
)

// Event names emitted by a run.
const (
	// EventRunStart fires when dispatch begins.
	EventRunStart = "load.run.start"
	// EventRunDone fires after the last in-flight request returns.
	EventRunDone = "load.run.done"
	// EventChaosStep fires as each scheduled chaos step executes; the step
	// name is carried as a field so the event name stays constant.
	EventChaosStep = "load.chaos.step"
)

// Arrival process names accepted by Config.Arrivals.
const (
	// ArrivalsPoisson draws exponential inter-arrival gaps — memoryless
	// traffic at the configured mean rate.
	ArrivalsPoisson = "poisson"
	// ArrivalsBursty draws from a two-state Markov-modulated Poisson
	// process: calm stretches at 0.4x the mean rate punctuated by bursts at
	// 2.6x, with dwell times chosen so the long-run mean matches Rate.
	ArrivalsBursty = "bursty"
)

// Target is the system under test — fleet.Fleet and serve.Server both
// satisfy it directly.
type Target interface {
	Predict(ctx context.Context, seq []int) (kernels.Result, infer.Timing, error)
	SeqLen() int
}

// ChaosStep is one scheduled mid-run disturbance.
type ChaosStep struct {
	// At is the step's offset from run start.
	At time.Duration
	// Name labels the step in events and the report ("drain csd-001").
	Name string
	// Do executes the disturbance (typically a fleet Drain/Fail/Rejoin).
	Do func(ctx context.Context) error
}

// Config controls a run.
type Config struct {
	// Target is the system under test; required.
	Target Target
	// Arrivals selects the arrival process; "" defaults to ArrivalsPoisson.
	Arrivals string
	// Rate is the mean arrival rate in requests per second; required.
	Rate float64
	// Duration is the total run length (including warmup); required.
	Duration time.Duration
	// Warmup is the leading slice of the run excluded from measurement —
	// requests whose intended arrival falls inside it are dispatched but
	// not recorded. Must be shorter than Duration.
	Warmup time.Duration
	// PIDs is the synthetic process population: each arrival is attributed
	// to one of PIDs processes, each with its own tenant key for fleet
	// placement and its own deterministic call sequence. 0 defaults to 2000.
	PIDs int
	// Vocab bounds the synthetic sequence tokens; 0 defaults to the
	// paper's 278-call vocabulary.
	Vocab int
	// Seed makes the schedule deterministic: same seed, same arrivals,
	// same PIDs, same sequences (and the same ScheduleDigest).
	Seed int64
	// MaxInFlight sheds arrivals when this many requests are outstanding —
	// a safety valve, not a throttle; shed arrivals count as bad
	// availability outcomes. 0 defaults to 16384.
	MaxInFlight int
	// SampleEvery is the burn-rate timeline resolution; 0 defaults to
	// Duration/20, clamped to at least 50ms.
	SampleEvery time.Duration
	// Evaluator, when non-nil, receives every post-warmup outcome and is
	// evaluated on the sample tick and once more at run end.
	Evaluator *slo.Evaluator
	// Events, when non-nil, receives the load.* event stream.
	Events *eventlog.Logger
	// Chaos steps execute at their offsets, in At order.
	Chaos []ChaosStep
	// Quality, when non-nil, turns the run into a labeled detection-quality
	// experiment: a RansomFraction slice of the PID population is labeled
	// ground-truth ransomware (families assigned round-robin from the
	// sandbox catalog), each request context carries its PID's label, and
	// every measured successful prediction is scored into the scorecard as
	// flagged iff probability >= QualityThreshold. Label assignment is a
	// pure function of the PID, so it never perturbs the seeded arrival
	// schedule (ScheduleDigest is unchanged by quality settings).
	Quality *quality.Scorecard
	// QualityThreshold is the flag boundary for quality scoring; 0
	// defaults to 0.5.
	QualityThreshold float64
	// RansomFraction is the fraction of the PID population labeled
	// ransomware, in [0, 1]; 0 defaults to 0.1.
	RansomFraction float64
	// QualityInjectMiss is a fault injection for SLO drills: every scored
	// verdict is recorded as un-flagged, so ground-truth ransomware is
	// always missed and a recall objective burns its entire budget.
	QualityInjectMiss bool
}

// arrival is one scheduled request.
type arrival struct {
	at     time.Duration
	pid    int
	tenant string
	seq    []int
}

// labelFor derives a PID's ground-truth label: the first
// round(RansomFraction × PIDs) PIDs of the population are ransomware,
// with families assigned round-robin from the sandbox catalog. Pure in
// the PID so quality labeling never consumes schedule randomness.
func labelFor(cfg *Config, pid int) quality.Label {
	idx := pid - 1000
	ransom := int(cfg.RansomFraction*float64(cfg.PIDs) + 0.5)
	if idx < ransom {
		fam := sandbox.Families[idx%len(sandbox.Families)]
		return quality.Label{Truth: true, Family: quality.SanitizeFamily(fam.Name)}
	}
	return quality.Label{Truth: false, Family: "benign"}
}

// ErrorCount is one entry of the run's error breakdown.
type ErrorCount struct {
	Reason string `json:"reason"`
	Count  int64  `json:"count"`
}

// ChaosResult records one executed chaos step.
type ChaosResult struct {
	Name string `json:"name"`
	// AtSeconds is the scheduled offset; ExecutedSeconds the actual one.
	AtSeconds       float64 `json:"at_s"`
	ExecutedSeconds float64 `json:"executed_s"`
	Err             string  `json:"error,omitempty"`
}

// TimelineObjective is one objective's judgment at a timeline point.
type TimelineObjective struct {
	Name            string  `json:"name"`
	BudgetRemaining float64 `json:"budget_remaining"`
	// WorstBurn is the highest long-window burn rate across the
	// objective's rules.
	WorstBurn float64 `json:"worst_burn"`
	Firing    bool    `json:"firing"`
}

// TimelinePoint is one sample of the burn-rate timeline.
type TimelinePoint struct {
	OffsetSeconds float64             `json:"offset_s"`
	InFlight      int64               `json:"in_flight"`
	Measured      int64               `json:"measured"`
	Objectives    []TimelineObjective `json:"objectives,omitempty"`
}

// LatencySummary condenses the measured latency distribution, in
// milliseconds (coordinated-omission-safe: measured from intended arrival).
type LatencySummary struct {
	Count  int64   `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	MinMS  float64 `json:"min_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// Result is the full report of one run.
type Result struct {
	Arrivals       string  `json:"arrivals"`
	RateHz         float64 `json:"rate_hz"`
	DurationSecond float64 `json:"duration_s"`
	WarmupSeconds  float64 `json:"warmup_s"`
	Seed           int64   `json:"seed"`
	PIDs           int     `json:"pids"`
	// ScheduleDigest fingerprints the generated arrival schedule; it
	// depends only on the configuration and seed, so two runs with the
	// same flags produce the same digest.
	ScheduleDigest string `json:"schedule_digest"`
	// Scheduled counts every generated arrival; Warmup the ones dispatched
	// inside the warmup slice; Requests the measured (post-warmup) ones.
	Scheduled int64 `json:"scheduled"`
	Warmup    int64 `json:"warmup"`
	Requests  int64 `json:"requests"`
	Succeeded int64 `json:"succeeded"`
	Failed    int64 `json:"failed"`
	// Shed counts arrivals dropped at the MaxInFlight safety valve (also
	// included in Failed's availability accounting).
	Shed           int64          `json:"shed"`
	ThroughputHz   float64        `json:"throughput_hz"`
	ElapsedSeconds float64        `json:"elapsed_s"`
	Errors         []ErrorCount   `json:"errors,omitempty"`
	Latency        LatencySummary `json:"latency"`
	// SLO is the final evaluation pass, nil when no evaluator was
	// configured.
	SLO      *slo.Status     `json:"slo,omitempty"`
	Timeline []TimelinePoint `json:"timeline,omitempty"`
	Chaos    []ChaosResult   `json:"chaos,omitempty"`
	// Quality is the detection-quality scorecard at run end, nil when no
	// scorecard was configured.
	Quality *quality.Snapshot `json:"quality,omitempty"`
}

func (c *Config) validate() error {
	if c.Target == nil {
		return errors.New("load: Config.Target is required")
	}
	if c.Rate <= 0 {
		return fmt.Errorf("load: Rate must be positive, got %v", c.Rate)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("load: Duration must be positive, got %v", c.Duration)
	}
	if c.Warmup < 0 || c.Warmup >= c.Duration {
		return fmt.Errorf("load: Warmup %v must be in [0, Duration)", c.Warmup)
	}
	if c.Arrivals == "" {
		c.Arrivals = ArrivalsPoisson
	}
	if c.Arrivals != ArrivalsPoisson && c.Arrivals != ArrivalsBursty {
		return fmt.Errorf("load: unknown arrival process %q (want %s or %s)",
			c.Arrivals, ArrivalsPoisson, ArrivalsBursty)
	}
	if c.PIDs == 0 {
		c.PIDs = 2000
	}
	if c.PIDs < 0 {
		return fmt.Errorf("load: PIDs must be positive, got %d", c.PIDs)
	}
	if c.Vocab == 0 {
		c.Vocab = 278
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 16384
	}
	if c.QualityThreshold == 0 {
		c.QualityThreshold = 0.5
	}
	if c.QualityThreshold < 0 || c.QualityThreshold >= 1 {
		return fmt.Errorf("load: QualityThreshold %v outside (0, 1)", c.QualityThreshold)
	}
	if c.RansomFraction == 0 {
		c.RansomFraction = 0.1
	}
	if c.RansomFraction < 0 || c.RansomFraction > 1 {
		return fmt.Errorf("load: RansomFraction %v outside [0, 1]", c.RansomFraction)
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = c.Duration / 20
		if c.SampleEvery < 50*time.Millisecond {
			c.SampleEvery = 50 * time.Millisecond
		}
	}
	return nil
}

// Schedule pre-generates the run's deterministic arrival schedule and
// returns its digest. Exposed so tests can pin determinism without running
// load.
func Schedule(cfg Config) (int, string, error) {
	if err := cfg.validate(); err != nil {
		return 0, "", err
	}
	sched := buildSchedule(cfg, cfg.Target.SeqLen())
	return len(sched), digestOf(sched), nil
}

// buildSchedule draws the arrival offsets, PID attributions, and synthetic
// call sequences from the seeded source.
func buildSchedule(cfg Config, seqLen int) []arrival {
	r := rand.New(rand.NewSource(cfg.Seed))
	var out []arrival

	// Bursty modulation: calm/burst rates bracket the mean so that with
	// 400ms calm and 150ms burst dwells the long-run rate matches Rate
	// ((0.4*400 + 2.6*150) / 550 = 1.0).
	const calmFactor, burstFactor = 0.4, 2.6
	burst := false
	stateEnd := time.Duration(0)
	dwell := func() time.Duration {
		mean := 400 * time.Millisecond
		if burst {
			mean = 150 * time.Millisecond
		}
		return time.Duration(r.ExpFloat64() * float64(mean))
	}
	if cfg.Arrivals == ArrivalsBursty {
		stateEnd = dwell()
	}

	t := time.Duration(0)
	for {
		rate := cfg.Rate
		if cfg.Arrivals == ArrivalsBursty {
			for t >= stateEnd {
				burst = !burst
				stateEnd += dwell()
			}
			if burst {
				rate *= burstFactor
			} else {
				rate *= calmFactor
			}
		}
		gap := time.Duration(r.ExpFloat64() / rate * float64(time.Second))
		if gap < time.Nanosecond {
			gap = time.Nanosecond
		}
		t += gap
		if t >= cfg.Duration {
			return out
		}
		pid := 1000 + r.Intn(cfg.PIDs)
		seq := make([]int, seqLen)
		for i := range seq {
			seq[i] = r.Intn(cfg.Vocab)
		}
		out = append(out, arrival{
			at:     t,
			pid:    pid,
			tenant: fmt.Sprintf("pid-%d", pid),
			seq:    seq,
		})
	}
}

// digestOf fingerprints a schedule: arrival offsets, PIDs, and sequences.
func digestOf(sched []arrival) string {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v int64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(int64(len(sched)))
	for _, a := range sched {
		put(int64(a.at))
		put(int64(a.pid))
		for _, s := range a.seq {
			put(int64(s))
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// reason classifies a request error for the report's breakdown.
func reason(err error) string {
	switch {
	case errors.Is(err, fleet.ErrAdmission):
		return "admission"
	case errors.Is(err, serve.ErrQueueFull):
		return "queue-full"
	case errors.Is(err, serve.ErrNoReadyDevice):
		return "no-ready-device"
	case errors.Is(err, serve.ErrClosed), errors.Is(err, fleet.ErrClosed):
		return "closed"
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return "canceled"
	default:
		return "other"
	}
}

// Run executes the configured workload and returns the report. It blocks
// until every dispatched request has returned (or ctx is canceled, which
// stops dispatch and waits for in-flight requests).
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	sched := buildSchedule(cfg, cfg.Target.SeqLen())
	digest := digestOf(sched)

	cfg.Events.Info(ctx, "load", EventRunStart,
		eventlog.F("arrivals", cfg.Arrivals),
		eventlog.F("rate_hz", cfg.Rate),
		eventlog.F("duration_ns", cfg.Duration),
		eventlog.F("warmup_ns", cfg.Warmup),
		eventlog.F("seed", cfg.Seed),
		eventlog.F("scheduled", len(sched)),
		eventlog.F("schedule_digest", digest))

	hist := telemetry.NewHistogram(telemetry.Buckets{})
	var (
		measured, succeeded, failed, shed, warm atomic.Int64
		inflight                                atomic.Int64

		errMu     sync.Mutex
		errCounts = map[string]int64{}

		tlMu     sync.Mutex
		timeline []TimelinePoint
		chaosRes []ChaosResult
	)
	countErr := func(r string) {
		errMu.Lock()
		errCounts[r]++
		errMu.Unlock()
	}

	start := time.Now()
	warmEnd := start.Add(cfg.Warmup)
	done := make(chan struct{})
	var aux sync.WaitGroup

	// Chaos executor: steps fire at their offsets, in order.
	steps := append([]ChaosStep(nil), cfg.Chaos...)
	sort.SliceStable(steps, func(i, j int) bool { return steps[i].At < steps[j].At })
	if len(steps) > 0 {
		aux.Add(1)
		go func() {
			defer aux.Done()
			for _, s := range steps {
				t := time.NewTimer(time.Until(start.Add(s.At)))
				select {
				case <-t.C:
				case <-ctx.Done():
					t.Stop()
					return
				case <-done:
					t.Stop()
					return
				}
				executed := time.Since(start)
				err := s.Do(ctx)
				res := ChaosResult{
					Name:            s.Name,
					AtSeconds:       s.At.Seconds(),
					ExecutedSeconds: executed.Seconds(),
				}
				fields := []eventlog.Field{
					eventlog.F("step", s.Name),
					eventlog.F("offset_ns", executed),
				}
				if err != nil {
					res.Err = err.Error()
					fields = append(fields, eventlog.F("error", err))
					cfg.Events.Warn(ctx, "load", EventChaosStep, fields...)
				} else {
					cfg.Events.Info(ctx, "load", EventChaosStep, fields...)
				}
				tlMu.Lock()
				chaosRes = append(chaosRes, res)
				tlMu.Unlock()
			}
		}()
	}

	// Burn-rate timeline sampler.
	if cfg.Evaluator != nil {
		aux.Add(1)
		go func() {
			defer aux.Done()
			tick := time.NewTicker(cfg.SampleEvery)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
				case <-ctx.Done():
					return
				case <-done:
					return
				}
				st := cfg.Evaluator.Evaluate()
				pt := TimelinePoint{
					OffsetSeconds: time.Since(start).Seconds(),
					InFlight:      inflight.Load(),
					Measured:      measured.Load(),
				}
				for _, o := range st.Objectives {
					to := TimelineObjective{Name: o.Name, BudgetRemaining: o.BudgetRemaining}
					for _, b := range o.Burns {
						if b.BurnLong > to.WorstBurn {
							to.WorstBurn = b.BurnLong
						}
						to.Firing = to.Firing || b.Firing
					}
					pt.Objectives = append(pt.Objectives, to)
				}
				tlMu.Lock()
				timeline = append(timeline, pt)
				tlMu.Unlock()
			}
		}()
	}

	// Open-loop dispatch: each request launches at its intended arrival no
	// matter how the target is coping; latency is charged from that intent.
	var wg sync.WaitGroup
dispatch:
	for _, a := range sched {
		intended := start.Add(a.at)
		if wait := time.Until(intended); wait > 0 {
			t := time.NewTimer(wait)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				break dispatch
			}
		}
		if ctx.Err() != nil {
			break dispatch
		}
		post := !intended.Before(warmEnd)
		if inflight.Load() >= int64(cfg.MaxInFlight) {
			// The safety valve: record the shed arrival as a bad outcome
			// instead of silently omitting it.
			if post {
				shed.Add(1)
				measured.Add(1)
				failed.Add(1)
				countErr("shed")
				cfg.Evaluator.Outcome(false)
			} else {
				warm.Add(1)
			}
			continue
		}
		wg.Add(1)
		inflight.Add(1)
		go func(a arrival, intended time.Time, post bool) {
			defer wg.Done()
			defer inflight.Add(-1)
			tctx := infer.WithTenant(ctx, a.tenant)
			if cfg.Quality != nil {
				tctx = quality.WithLabel(tctx, labelFor(&cfg, a.pid))
			}
			res, _, err := cfg.Target.Predict(tctx, a.seq)
			lat := time.Since(intended)
			if !post {
				warm.Add(1)
				return
			}
			measured.Add(1)
			ok := err == nil
			if ok {
				succeeded.Add(1)
			} else {
				failed.Add(1)
				countErr(reason(err))
			}
			hist.ObserveDuration(lat)
			cfg.Evaluator.Outcome(ok)
			cfg.Evaluator.Latency(lat, ok)
			if cfg.Quality != nil && ok {
				flagged := res.Probability >= cfg.QualityThreshold
				if cfg.QualityInjectMiss {
					flagged = false
				}
				cfg.Quality.Observe(tctx, quality.Verdict{
					PID:         a.pid,
					Probability: res.Probability,
					Flagged:     flagged,
				})
			}
		}(a, intended, post)
	}
	wg.Wait()
	close(done)
	aux.Wait()

	elapsed := time.Since(start)
	res := &Result{
		Arrivals:       cfg.Arrivals,
		RateHz:         cfg.Rate,
		DurationSecond: cfg.Duration.Seconds(),
		WarmupSeconds:  cfg.Warmup.Seconds(),
		Seed:           cfg.Seed,
		PIDs:           cfg.PIDs,
		ScheduleDigest: digest,
		Scheduled:      int64(len(sched)),
		Warmup:         warm.Load(),
		Requests:       measured.Load(),
		Succeeded:      succeeded.Load(),
		Failed:         failed.Load(),
		Shed:           shed.Load(),
		ElapsedSeconds: elapsed.Seconds(),
		Timeline:       timeline,
		Chaos:          chaosRes,
	}
	if span := elapsed - cfg.Warmup; span > 0 {
		res.ThroughputHz = float64(res.Requests) / span.Seconds()
	}
	snap := hist.Snapshot()
	ms := func(v float64) float64 { return v / float64(time.Millisecond) }
	res.Latency = LatencySummary{
		Count:  snap.Count,
		MeanMS: ms(snap.Mean),
		P50MS:  ms(snap.P50),
		P90MS:  ms(snap.P90),
		P99MS:  ms(snap.P99),
		MinMS:  ms(float64(snap.Min)),
		MaxMS:  ms(float64(snap.Max)),
	}
	for r, n := range errCounts {
		res.Errors = append(res.Errors, ErrorCount{Reason: r, Count: n})
	}
	sort.Slice(res.Errors, func(i, j int) bool { return res.Errors[i].Reason < res.Errors[j].Reason })
	if cfg.Evaluator != nil {
		st := cfg.Evaluator.Evaluate()
		res.SLO = &st
	}
	if cfg.Quality != nil {
		q := cfg.Quality.Snapshot()
		res.Quality = &q
	}

	doneFields := []eventlog.Field{
		eventlog.F("requests", res.Requests),
		eventlog.F("succeeded", res.Succeeded),
		eventlog.F("failed", res.Failed),
		eventlog.F("shed", res.Shed),
		eventlog.F("throughput_hz", res.ThroughputHz),
		eventlog.F("p99_ms", res.Latency.P99MS),
	}
	if res.SLO != nil {
		met := true
		worst := math.Inf(1)
		for _, o := range res.SLO.Objectives {
			met = met && o.Met
			if o.BudgetRemaining < worst {
				worst = o.BudgetRemaining
			}
		}
		doneFields = append(doneFields,
			eventlog.F("slo_met", met),
			eventlog.F("worst_budget_remaining", worst))
	}
	cfg.Events.Info(ctx, "load", EventRunDone, doneFields...)
	return res, ctx.Err()
}
