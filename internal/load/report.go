package load

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// WriteJSON writes the result as an indented JSON artifact (the
// slo-report.json CI uploads).
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText renders the human-facing attainment report.
func (r *Result) WriteText(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "csdload: %s arrivals @ %.0f req/s for %.1fs (warmup %.1fs, seed %d, %d pids)\n",
		r.Arrivals, r.RateHz, r.DurationSecond, r.WarmupSeconds, r.Seed, r.PIDs)
	fmt.Fprintf(&b, "schedule  %d arrivals, digest %s\n", r.Scheduled, r.ScheduleDigest)
	fmt.Fprintf(&b, "requests  %d measured (%d warmup) | %d ok, %d failed, %d shed | %.0f req/s sustained\n",
		r.Requests, r.Warmup, r.Succeeded, r.Failed, r.Shed, r.ThroughputHz)
	if len(r.Errors) > 0 {
		b.WriteString("errors    ")
		for i, e := range r.Errors {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s=%d", e.Reason, e.Count)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "latency   p50 %.3fms  p90 %.3fms  p99 %.3fms  max %.3fms  (from intended arrival)\n",
		r.Latency.P50MS, r.Latency.P90MS, r.Latency.P99MS, r.Latency.MaxMS)

	if r.SLO != nil {
		b.WriteString("\nSLO attainment\n")
		for _, o := range r.SLO.Objectives {
			verdict := "MET"
			if !o.Met {
				verdict = "VIOLATED"
			}
			fmt.Fprintf(&b, "  %-16s %-12s target %.4f  attained %.4f  budget %+.1f%%  [%s]\n",
				o.Name, o.Kind, o.Target, o.Attainment, o.BudgetRemaining*100, verdict)
			for _, br := range o.Burns {
				state := "ok"
				if br.Firing {
					state = "FIRING"
				}
				fmt.Fprintf(&b, "    rule %-6s burn %.2fx/%.2fx (threshold %.1fx over %s/%s)  %s",
					br.Rule, br.BurnLong, br.BurnShort, br.Threshold,
					secondsLabel(br.LongSeconds), secondsLabel(br.ShortSeconds), state)
				if br.Firings > 0 {
					fmt.Fprintf(&b, "  fired %dx", br.Firings)
				}
				b.WriteByte('\n')
			}
		}
		if len(r.SLO.Alerts) > 0 {
			fmt.Fprintf(&b, "\nalert transitions (%d, incidents opened %d)\n",
				len(r.SLO.Alerts), r.SLO.IncidentsOpened)
			for _, a := range r.SLO.Alerts {
				fmt.Fprintf(&b, "  %s %s/%s burn %.1fx/%.1fx",
					a.State, a.Objective, a.Rule, a.BurnLong, a.BurnShort)
				if a.IncidentID != 0 {
					fmt.Fprintf(&b, "  incident #%d", a.IncidentID)
				}
				b.WriteByte('\n')
			}
		}
	}
	if q := r.Quality; q != nil {
		b.WriteString("\ndetection quality\n")
		fmt.Fprintf(&b, "  confusion tp=%d fp=%d tn=%d fn=%d  (%d labeled windows, %d unlabeled)\n",
			q.Total.TP, q.Total.FP, q.Total.TN, q.Total.FN, q.Labeled, q.Unlabeled)
		fmt.Fprintf(&b, "  rates     recall %.4f  fpr %.4f  precision %.4f  accuracy %.4f\n",
			q.Total.Recall, q.Total.FPR, q.Total.Precision, q.Total.Accuracy)
		fmt.Fprintf(&b, "  to-flag   p50 %.0f  p99 %.0f  max %.0f windows  (%d flagged processes of %d tracked)\n",
			q.WindowsToFlag.P50, q.WindowsToFlag.P99, q.WindowsToFlag.Max,
			q.Processes.Flagged, q.Processes.Tracked)
		if q.Drift.Reference != "" {
			state := "stable"
			if q.Drift.Drifted {
				state = "DRIFTED"
			}
			if q.Drift.LowCount {
				state = "low-count"
			}
			fmt.Fprintf(&b, "  drift     psi %.4f vs %s (threshold %.2f)  [%s]\n",
				q.Drift.PSI, q.Drift.Reference, q.Drift.Threshold, state)
		}
	}
	if len(r.Chaos) > 0 {
		b.WriteString("\nchaos steps\n")
		for _, c := range r.Chaos {
			fmt.Fprintf(&b, "  %7.2fs %s", c.ExecutedSeconds, c.Name)
			if c.Err != "" {
				fmt.Fprintf(&b, "  (error: %s)", c.Err)
			}
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// secondsLabel renders a burn window compactly: sub-second windows in
// milliseconds ("400ms"), whole seconds without a fraction ("2s").
func secondsLabel(s float64) string {
	if s < 1 {
		return fmt.Sprintf("%.0fms", s*1000)
	}
	return fmt.Sprintf("%.0fs", s)
}
