package load

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"github.com/kfrida1/csdinf/internal/eventlog"
	"github.com/kfrida1/csdinf/internal/incident"
	"github.com/kfrida1/csdinf/internal/infer"
	"github.com/kfrida1/csdinf/internal/kernels"
	"github.com/kfrida1/csdinf/internal/slo"
)

// stubTarget is a hermetic Target whose failure mode is flipped by chaos
// steps.
type stubTarget struct {
	seqLen  int
	delay   time.Duration
	failing atomic.Bool
}

var errInjected = errors.New("stub: injected fault")

func (s *stubTarget) Predict(ctx context.Context, seq []int) (kernels.Result, infer.Timing, error) {
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	if s.failing.Load() {
		return kernels.Result{}, infer.Timing{}, errInjected
	}
	return kernels.Result{}, infer.Timing{}, nil
}

func (s *stubTarget) SeqLen() int { return s.seqLen }

func TestConfigValidation(t *testing.T) {
	tgt := &stubTarget{seqLen: 4}
	bad := []Config{
		{Rate: 100, Duration: time.Second},                                    // no target
		{Target: tgt, Duration: time.Second},                                  // no rate
		{Target: tgt, Rate: 100},                                              // no duration
		{Target: tgt, Rate: 100, Duration: time.Second, Warmup: time.Second},  // warmup == duration
		{Target: tgt, Rate: 100, Duration: time.Second, Arrivals: "constant"}, // unknown process
		{Target: tgt, Rate: 100, Duration: time.Second, PIDs: -1},             // negative pids
	}
	for i, cfg := range bad {
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Errorf("case %d: Run accepted invalid config %+v", i, cfg)
		}
	}
}

func TestScheduleDeterministic(t *testing.T) {
	tgt := &stubTarget{seqLen: 8}
	for _, arrivals := range []string{ArrivalsPoisson, ArrivalsBursty} {
		cfg := Config{Target: tgt, Arrivals: arrivals, Rate: 2000, Duration: time.Second, Seed: 1}
		n1, d1, err := Schedule(cfg)
		if err != nil {
			t.Fatal(err)
		}
		n2, d2, err := Schedule(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if n1 != n2 || d1 != d2 {
			t.Errorf("%s: same seed diverged: %d/%s vs %d/%s", arrivals, n1, d1, n2, d2)
		}
		if n1 == 0 {
			t.Errorf("%s: empty schedule at 2000 req/s over 1s", arrivals)
		}
		// A 2000/s process over 1s should land within a factor of two of
		// its mean count — a loose bound that still catches unit slips.
		if n1 < 1000 || n1 > 4000 {
			t.Errorf("%s: %d arrivals, want about 2000", arrivals, n1)
		}
		cfg.Seed = 2
		_, d3, err := Schedule(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if d3 == d1 {
			t.Errorf("%s: different seeds produced identical digest %s", arrivals, d1)
		}
	}
}

func TestRunHealthyTarget(t *testing.T) {
	tgt := &stubTarget{seqLen: 8}
	ev, err := slo.NewEvaluator(slo.Config{
		Objectives: []slo.Objective{
			{Name: "availability", Kind: slo.KindAvailability, Target: 0.999, Window: 300 * time.Millisecond},
			// The threshold is deliberately enormous: latency is measured
			// from intended arrival, and on a CI box running the whole suite
			// in parallel the dispatcher's timers can fire tens of
			// milliseconds late. The objective pins the accounting (every
			// request good → budget untouched), not scheduler luck.
			{Name: "latency", Kind: slo.KindLatency, Target: 0.99,
				Threshold: 10 * time.Second, Window: 300 * time.Millisecond},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	events := eventlog.New(eventlog.Config{})
	res, err := Run(context.Background(), Config{
		Target:    tgt,
		Rate:      2000,
		Duration:  300 * time.Millisecond,
		Warmup:    50 * time.Millisecond,
		Seed:      7,
		Evaluator: ev,
		Events:    events,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 || res.Succeeded != res.Requests {
		t.Errorf("requests %d succeeded %d, want all measured requests to succeed", res.Requests, res.Succeeded)
	}
	if res.Warmup == 0 {
		t.Error("no warmup requests recorded with a 50ms warmup")
	}
	if res.Requests+res.Warmup != res.Scheduled {
		t.Errorf("measured %d + warmup %d != scheduled %d", res.Requests, res.Warmup, res.Scheduled)
	}
	if res.SLO == nil {
		t.Fatal("no SLO status in result")
	}
	for _, o := range res.SLO.Objectives {
		if !o.Met {
			t.Errorf("objective %s violated on a healthy instant target: attainment %v", o.Name, o.Attainment)
		}
		if o.BudgetRemaining != 1 {
			t.Errorf("objective %s budget %v, want untouched 1.0", o.Name, o.BudgetRemaining)
		}
	}
	if res.Latency.Count != res.Requests {
		t.Errorf("latency count %d != measured %d", res.Latency.Count, res.Requests)
	}
	var sawStart, sawDone bool
	for _, e := range events.Recent() {
		sawStart = sawStart || e.Name == EventRunStart
		sawDone = sawDone || e.Name == EventRunDone
	}
	if !sawStart || !sawDone {
		t.Errorf("event stream: start=%v done=%v, want both", sawStart, sawDone)
	}
}

func TestRunReportRenders(t *testing.T) {
	tgt := &stubTarget{seqLen: 4}
	res, err := Run(context.Background(), Config{
		Target: tgt, Rate: 500, Duration: 100 * time.Millisecond, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var text, jsonBuf bytes.Buffer
	if err := res.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if text.Len() == 0 {
		t.Error("empty text report")
	}
	if err := res.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(jsonBuf.Bytes(), &back); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if back.ScheduleDigest != res.ScheduleDigest {
		t.Error("digest lost in JSON round-trip")
	}
}

// TestSLOEndToEnd follows one burn-rate alert end to end: a chaos step
// deliberately violates the availability objective mid-run, the evaluator's
// fast-burn rule fires, the firing shows up in the slo.* event stream, an
// incident auto-opens in the recorder, and /slo.json serves the transition.
func TestSLOEndToEnd(t *testing.T) {
	clkEvents := eventlog.New(eventlog.Config{})
	incidents, err := incident.NewRecorder(incident.Config{Events: clkEvents})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := slo.NewEvaluator(slo.Config{
		Objectives: []slo.Objective{{
			Name: "availability", Kind: slo.KindAvailability,
			Target: 0.99, Window: 600 * time.Millisecond,
		}},
		Events:    clkEvents,
		Incidents: incidents,
	})
	if err != nil {
		t.Fatal(err)
	}

	tgt := &stubTarget{seqLen: 8}
	res, err := Run(context.Background(), Config{
		Target:      tgt,
		Rate:        3000,
		Duration:    600 * time.Millisecond,
		Seed:        11,
		Evaluator:   ev,
		Events:      clkEvents,
		SampleEvery: 25 * time.Millisecond,
		Chaos: []ChaosStep{
			{At: 200 * time.Millisecond, Name: "inject-fault", Do: func(context.Context) error {
				tgt.failing.Store(true)
				return nil
			}},
			{At: 450 * time.Millisecond, Name: "clear-fault", Do: func(context.Context) error {
				tgt.failing.Store(false)
				return nil
			}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// The report shows the violation and the chaos steps.
	if res.SLO == nil {
		t.Fatal("no SLO status")
	}
	obj := res.SLO.Objectives[0]
	if obj.Met {
		t.Errorf("availability met at %v despite a 250ms full outage in a 600ms window", obj.Attainment)
	}
	if obj.BudgetRemaining > 0 {
		t.Errorf("budget remaining %v, want exhausted (negative)", obj.BudgetRemaining)
	}
	if len(res.Chaos) != 2 {
		t.Errorf("chaos results = %d, want 2", len(res.Chaos))
	}
	if len(res.Timeline) == 0 {
		t.Error("no burn-rate timeline sampled")
	}

	// 1. Burn-rate evaluation: the paging fast rule fired and the
	//    transition log carries an incident ID.
	var pagingIncident int64
	for _, a := range res.SLO.Alerts {
		if a.Objective == "availability" && a.Rule == "fast" && a.State == "firing" {
			pagingIncident = a.IncidentID
		}
	}
	if pagingIncident == 0 {
		t.Fatalf("no firing fast-rule transition with an incident in %+v", res.SLO.Alerts)
	}

	// 2. The event stream carries the alert and the chaos steps.
	var sawAlert, sawChaos, sawBreachEvent bool
	for _, e := range clkEvents.Recent() {
		switch e.Name {
		case slo.EventBurnAlert:
			sawAlert = true
		case EventChaosStep:
			sawChaos = true
		case "incident.slo_breach":
			sawBreachEvent = true
		}
	}
	if !sawAlert || !sawChaos || !sawBreachEvent {
		t.Errorf("event stream: alert=%v chaos=%v breach=%v, want all", sawAlert, sawChaos, sawBreachEvent)
	}

	// 3. The incident report holds the auto-opened SLO breach.
	var found bool
	for _, inc := range incidents.Snapshot() {
		if inc.ID == pagingIncident {
			found = true
			if inc.Kind != "slo" || inc.Objective != "availability" || inc.CloseReason != "slo-breach" {
				t.Errorf("incident %+v, want Kind slo / Objective availability / slo-breach", inc)
			}
		}
	}
	if !found {
		t.Errorf("incident #%d not in recorder snapshot", pagingIncident)
	}

	// 4. /slo.json serves the same judgment.
	srv := httptest.NewServer(ev.HTTPHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/slo.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var status slo.Status
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	var served bool
	for _, a := range status.Alerts {
		if a.IncidentID == pagingIncident {
			served = true
		}
	}
	if !served {
		t.Errorf("/slo.json alert log %+v does not carry incident #%d", status.Alerts, pagingIncident)
	}
	if status.IncidentsOpened == 0 {
		t.Error("/slo.json reports zero incidents opened")
	}
}

// TestTenantPropagation pins that each dispatched request carries its
// synthetic PID's tenant key, which is what spreads load across the fleet's
// placement ring.
func TestTenantPropagation(t *testing.T) {
	var tenants atomic.Int64
	tgt := &tenantProbe{seqLen: 4, seen: &tenants}
	if _, err := Run(context.Background(), Config{
		Target: tgt, Rate: 500, Duration: 100 * time.Millisecond, Seed: 5, PIDs: 16,
	}); err != nil {
		t.Fatal(err)
	}
	if tenants.Load() == 0 {
		t.Error("no request carried a tenant key")
	}
}

type tenantProbe struct {
	seqLen int
	seen   *atomic.Int64
}

func (p *tenantProbe) Predict(ctx context.Context, seq []int) (kernels.Result, infer.Timing, error) {
	if infer.TenantFrom(ctx) != "" {
		p.seen.Add(1)
	}
	return kernels.Result{}, infer.Timing{}, nil
}

func (p *tenantProbe) SeqLen() int { return p.seqLen }
