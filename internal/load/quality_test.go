package load

import (
	"bytes"
	"context"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/kfrida1/csdinf/internal/infer"
	"github.com/kfrida1/csdinf/internal/kernels"
	"github.com/kfrida1/csdinf/internal/quality"
)

// qualityStub is a perfect oracle Target: it reads the ground-truth label
// off the request context and answers 0.9 for ransomware, 0.1 for benign,
// while counting how many labeled requests it served per class. That makes
// the expected confusion matrix exactly computable from its own counters.
type qualityStub struct {
	seqLen    int
	truth     atomic.Int64
	benign    atomic.Int64
	unlabeled atomic.Int64
}

func (s *qualityStub) Predict(ctx context.Context, seq []int) (kernels.Result, infer.Timing, error) {
	l, ok := quality.LabelFrom(ctx)
	switch {
	case !ok:
		s.unlabeled.Add(1)
	case l.Truth:
		s.truth.Add(1)
		return kernels.Result{Probability: 0.9}, infer.Timing{}, nil
	default:
		s.benign.Add(1)
	}
	return kernels.Result{Probability: 0.1}, infer.Timing{}, nil
}

func (s *qualityStub) SeqLen() int { return s.seqLen }

// TestRunQualityExactConfusion pins the scorecard bookkeeping against the
// generator's own ground truth: with no warmup and no chaos, every measured
// success is scored, and a perfect-oracle target must produce a confusion
// matrix of exactly (TP = ransomware requests, TN = benign requests, 0
// misclassifications).
func TestRunQualityExactConfusion(t *testing.T) {
	tgt := &qualityStub{seqLen: 8}
	card, err := quality.New(quality.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), Config{
		Target:         tgt,
		Rate:           2000,
		Duration:       200 * time.Millisecond,
		Seed:           9,
		PIDs:           20,
		RansomFraction: 0.25, // 5 of 20 PIDs are ground-truth ransomware
		Quality:        card,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Quality == nil {
		t.Fatal("no quality snapshot in result despite a configured scorecard")
	}
	q := res.Quality
	if tgt.unlabeled.Load() != 0 {
		t.Errorf("%d requests reached the target without a ground-truth label", tgt.unlabeled.Load())
	}
	if q.Unlabeled != 0 {
		t.Errorf("scorecard saw %d unlabeled windows, want 0", q.Unlabeled)
	}
	if q.Windows != res.Succeeded {
		t.Errorf("scored windows %d != measured successes %d (Warmup=0, so every success is scored)", q.Windows, res.Succeeded)
	}
	truthSeen, benignSeen := tgt.truth.Load(), tgt.benign.Load()
	if truthSeen == 0 || benignSeen == 0 {
		t.Fatalf("degenerate run: truth=%d benign=%d requests, want both classes exercised", truthSeen, benignSeen)
	}
	if int64(q.Total.TP) != truthSeen || int64(q.Total.TN) != benignSeen || q.Total.FP != 0 || q.Total.FN != 0 {
		t.Errorf("confusion tp=%d fp=%d tn=%d fn=%d, want exactly tp=%d tn=%d fp=0 fn=0",
			q.Total.TP, q.Total.FP, q.Total.TN, q.Total.FN, truthSeen, benignSeen)
	}
	if q.Total.Recall != 1 || q.Total.FPR != 0 {
		t.Errorf("perfect oracle scored recall %v fpr %v, want 1 / 0", q.Total.Recall, q.Total.FPR)
	}
	// Families assigned round-robin from the sandbox catalog: with 5
	// ransomware PIDs the first five families each carry traffic.
	var ransomFamilies int
	for _, f := range q.Families {
		if f.Family == "benign" {
			continue
		}
		ransomFamilies++
		if f.TP == 0 || f.FN != 0 {
			t.Errorf("family %s: tp=%d fn=%d, want flagged traffic and no misses", f.Family, f.TP, f.FN)
		}
	}
	if ransomFamilies != 5 {
		t.Errorf("%d ransomware families in breakdown, want 5 (round-robin over 5 labeled PIDs)", ransomFamilies)
	}
	// Every flagged process crossed the threshold on its first window.
	if q.WindowsToFlag.Count == 0 || q.WindowsToFlag.P50 != 1 {
		t.Errorf("windows-to-flag count=%d p50=%v, want instant (1-window) detection", q.WindowsToFlag.Count, q.WindowsToFlag.P50)
	}
}

// TestRunQualityDigestNeutral pins that quality labeling is RNG-neutral:
// the same seed produces the identical arrival schedule whether or not a
// scorecard is attached, because labels are a pure function of the PID.
func TestRunQualityDigestNeutral(t *testing.T) {
	base := Config{
		Target: &qualityStub{seqLen: 8}, Rate: 1000,
		Duration: 100 * time.Millisecond, Seed: 21, PIDs: 16,
	}
	plain, err := Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	card, err := quality.New(quality.Config{})
	if err != nil {
		t.Fatal(err)
	}
	withQ := base
	withQ.Target = &qualityStub{seqLen: 8}
	withQ.Quality = card
	withQ.RansomFraction = 0.5
	withQ.QualityThreshold = 0.7
	labeled, err := Run(context.Background(), withQ)
	if err != nil {
		t.Fatal(err)
	}
	if plain.ScheduleDigest != labeled.ScheduleDigest {
		t.Errorf("quality settings perturbed the schedule: %s vs %s", plain.ScheduleDigest, labeled.ScheduleDigest)
	}
}

// TestRunQualityInjectMiss pins the SLO-drill fault injection: with every
// verdict forced un-flagged, ground-truth ransomware is always missed and
// the scorecard shows zero recall.
func TestRunQualityInjectMiss(t *testing.T) {
	tgt := &qualityStub{seqLen: 8}
	card, err := quality.New(quality.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), Config{
		Target:            tgt,
		Rate:              1000,
		Duration:          150 * time.Millisecond,
		Seed:              4,
		PIDs:              10,
		RansomFraction:    0.3,
		Quality:           card,
		QualityInjectMiss: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := res.Quality
	if q == nil {
		t.Fatal("no quality snapshot")
	}
	if q.Total.TP != 0 || q.Total.FP != 0 {
		t.Errorf("inject-miss still flagged windows: tp=%d fp=%d", q.Total.TP, q.Total.FP)
	}
	if int64(q.Total.FN) != tgt.truth.Load() {
		t.Errorf("fn=%d, want every ransomware request missed (%d)", q.Total.FN, tgt.truth.Load())
	}
	if q.Total.FN > 0 && q.Total.Recall != 0 {
		t.Errorf("recall %v with all detections suppressed, want 0", q.Total.Recall)
	}
}

// TestRunQualityReportRenders pins the "detection quality" section of the
// text report and the quality block of the JSON report.
func TestRunQualityReportRenders(t *testing.T) {
	card, err := quality.New(quality.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), Config{
		Target:         &qualityStub{seqLen: 4},
		Rate:           800,
		Duration:       100 * time.Millisecond,
		Seed:           6,
		PIDs:           12,
		RansomFraction: 0.25,
		Quality:        card,
	})
	if err != nil {
		t.Fatal(err)
	}
	var text bytes.Buffer
	if err := res.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	out := text.String()
	for _, want := range []string{"detection quality", "confusion tp=", "recall"} {
		if !strings.Contains(out, want) {
			t.Errorf("text report missing %q:\n%s", want, out)
		}
	}
	var jsonBuf bytes.Buffer
	if err := res.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jsonBuf.String(), `"quality"`) {
		t.Error("JSON report has no quality block")
	}
}
