package fleet

import (
	"fmt"
	"testing"

	"github.com/kfrida1/csdinf/internal/device"
)

// TestRingBalance pins the property the placement layer is built on: with
// the default vnode count, tenant load spreads across every device. This
// regressed once before — raw FNV-1a clusters the near-identical vnode
// labels so badly that two of four devices received zero tenants — so the
// bound here is deliberately generous (half the fair share) but would have
// caught that collapse outright.
func TestRingBalance(t *testing.T) {
	ids := []device.ID{"csd-000", "csd-001", "csd-002", "csd-003"}
	r := newRing(ids, 0)
	all := func(device.ID) bool { return true }

	const tenants = 1000
	counts := map[device.ID]int{}
	for i := 0; i < tenants; i++ {
		counts[r.lookup(fmt.Sprintf("tenant-%d", i), all)]++
	}
	fair := tenants / len(ids)
	for _, id := range ids {
		if counts[id] < fair/2 {
			t.Errorf("device %s received %d of %d tenants, want at least %d (distribution %v)",
				id, counts[id], tenants, fair/2, counts)
		}
	}
}

// TestRingDrainStability pins the consistent-hashing property: rejecting
// one device moves only that device's tenants, everyone else stays put.
func TestRingDrainStability(t *testing.T) {
	ids := []device.ID{"csd-000", "csd-001", "csd-002", "csd-003"}
	r := newRing(ids, 0)
	all := func(device.ID) bool { return true }
	const drained = device.ID("csd-002")
	without := func(id device.ID) bool { return id != drained }

	const tenants = 500
	moved := 0
	for i := 0; i < tenants; i++ {
		key := fmt.Sprintf("tenant-%d", i)
		before := r.lookup(key, all)
		after := r.lookup(key, without)
		if after == drained {
			t.Fatalf("tenant %s placed on drained device", key)
		}
		if before == drained {
			moved++
			continue
		}
		if after != before {
			t.Errorf("tenant %s moved %s -> %s though its device was not drained", key, before, after)
		}
	}
	if moved == 0 {
		t.Fatal("no tenants were assigned to the drained device; balance test should have caught this")
	}
}
