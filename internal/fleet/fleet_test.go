package fleet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/kfrida1/csdinf/internal/device"
	"github.com/kfrida1/csdinf/internal/eventlog"
	"github.com/kfrida1/csdinf/internal/incident"
	"github.com/kfrida1/csdinf/internal/infer"
	"github.com/kfrida1/csdinf/internal/kernels"
	"github.com/kfrida1/csdinf/internal/telemetry"
)

// fakeInf is a minimal engine: counts executions, optionally blocks until
// released, charges a fixed simulated cost.
type fakeInf struct {
	seqLen  int
	cost    time.Duration
	execs   atomic.Int64
	started chan struct{}
	release chan struct{}
}

func (f *fakeInf) exec(ctx context.Context) (kernels.Result, infer.Timing, error) {
	if f.started != nil {
		f.started <- struct{}{}
		select {
		case <-f.release:
		case <-ctx.Done():
			return kernels.Result{}, infer.Timing{}, ctx.Err()
		}
	}
	f.execs.Add(1)
	cost := f.cost
	if cost == 0 {
		cost = time.Microsecond
	}
	return kernels.Result{Probability: 0.5}, infer.Timing{Compute: cost}, nil
}

func (f *fakeInf) Predict(ctx context.Context, seq []int) (kernels.Result, infer.Timing, error) {
	return f.exec(ctx)
}

func (f *fakeInf) PredictStored(ctx context.Context, off int64) (kernels.Result, infer.Timing, error) {
	return f.exec(ctx)
}

func (f *fakeInf) SeqLen() int { return f.seqLen }

func engines(n int) ([]infer.Inferencer, []*fakeInf) {
	out := make([]infer.Inferencer, n)
	raw := make([]*fakeInf, n)
	for i := range out {
		f := &fakeInf{seqLen: 8}
		out[i], raw[i] = f, f
	}
	return out, raw
}

func seq() []int { return []int{1, 2, 3, 4, 5, 6, 7, 8} }

func totalExecs(raw []*fakeInf) int64 {
	var n int64
	for _, f := range raw {
		n += f.execs.Load()
	}
	return n
}

func TestTenantAffinity(t *testing.T) {
	engs, raw := engines(4)
	f, err := NewFromEngines(engs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	ctx := infer.WithTenant(context.Background(), "tenant-alpha")
	for i := 0; i < 50; i++ {
		if _, _, err := f.Predict(ctx, seq()); err != nil {
			t.Fatal(err)
		}
	}
	// Consistent hashing: every window of one tenant lands on one device.
	var nonZero int
	for _, e := range raw {
		if n := e.execs.Load(); n > 0 {
			nonZero++
			if n != 50 {
				t.Fatalf("home device executed %d windows, want 50", n)
			}
		}
	}
	if nonZero != 1 {
		t.Fatalf("tenant smeared across %d devices, want 1", nonZero)
	}
}

// TestDrainReplacesTenantsWithoutLossOrDuplication drains each tenant's
// home device mid-stream and checks the stream continues on other devices
// with every window executed exactly once, then slides home on rejoin.
func TestDrainReplacesTenantsWithoutLossOrDuplication(t *testing.T) {
	engs, raw := engines(3)
	reg := telemetry.NewRegistry()
	f, err := NewFromEngines(engs, Config{Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	ctx := infer.WithTenant(context.Background(), "victim")
	// homeOf runs one probe window and returns the device that executed it.
	homeOf := func() int {
		before := make([]int64, len(raw))
		for i, e := range raw {
			before[i] = e.execs.Load()
		}
		if _, _, err := f.Predict(ctx, seq()); err != nil {
			t.Fatal(err)
		}
		for i, e := range raw {
			if e.execs.Load() > before[i] {
				return i
			}
		}
		t.Fatal("no device executed the probe")
		return -1
	}

	home := homeOf()
	homeID := f.Registry().List()[home].ID()
	if err := f.Drain(homeID, "reflash"); err != nil {
		t.Fatal(err)
	}
	const windows = 40
	for i := 0; i < windows; i++ {
		if _, _, err := f.Predict(ctx, seq()); err != nil {
			t.Fatalf("window %d during drain: %v", i, err)
		}
	}
	probeExecs := totalExecs(raw) - windows
	if n := raw[home].execs.Load(); n != probeExecs {
		t.Fatalf("drained device executed %d windows beyond the probes", n-probeExecs)
	}
	// Exactly once each: total executions == probes + windows.
	if n := totalExecs(raw); n != windows+probeExecs {
		t.Fatalf("fleet executed %d windows, want %d (lost or duplicated)", n, windows+probeExecs)
	}
	// The spilled tenant re-placed deterministically: one fallback device.
	var fallback int
	for i, e := range raw {
		if i != home && e.execs.Load() == windows {
			fallback++
		}
	}
	if fallback != 1 {
		t.Fatalf("drain spillover smeared across devices: %v",
			[]int64{raw[0].execs.Load(), raw[1].execs.Load(), raw[2].execs.Load()})
	}

	if err := f.Rejoin(homeID, "reflash-done"); err != nil {
		t.Fatal(err)
	}
	if got := homeOf(); got != home {
		t.Fatalf("tenant homed on device %d after rejoin, want %d", got, home)
	}
}

// TestFailureRecordsIncidentAndRetriesInFlight fails a device with requests
// in flight: queued requests re-place onto surviving devices (exactly-once),
// and the failure lands in the incident history with the right device ID.
func TestFailureRecordsIncidentAndRetriesInFlight(t *testing.T) {
	rec, err := incident.NewRecorder(incident.Config{})
	if err != nil {
		t.Fatal(err)
	}
	events := eventlog.New(eventlog.Config{})
	blocker := &fakeInf{seqLen: 8, started: make(chan struct{}, 1), release: make(chan struct{}, 8)}
	free := &fakeInf{seqLen: 8}
	f, err := NewFromEngines([]infer.Inferencer{blocker, free},
		Config{Block: true, Incidents: rec, Events: events})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Find the tenant whose home is the blocking device.
	victimID := f.Registry().List()[0].ID()
	var tenant string
	for i := 0; ; i++ {
		tenant = fmt.Sprintf("tenant-%d", i)
		if f.ring.lookup(tenant, func(device.ID) bool { return true }) == victimID {
			break
		}
	}
	ctx := infer.WithTenant(context.Background(), tenant)

	const inFlight = 4
	var wg sync.WaitGroup
	errs := make([]error, inFlight)
	for i := 0; i < inFlight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = f.Predict(ctx, seq())
		}(i)
	}
	<-blocker.started // one request is on the device
	// Wait for the rest to be queued behind it, so the failure genuinely
	// catches them in flight on the victim.
	victim := f.byID[victimID]
	for deadline := time.Now().Add(2 * time.Second); victim.h.Pending() != inFlight; {
		if time.Now().After(deadline) {
			t.Fatalf("only %d requests reached the victim", victim.h.Pending())
		}
		time.Sleep(time.Millisecond)
	}
	victimSrv := victim.srv.Load()

	done := make(chan error, 1)
	go func() { done <- f.Fail(victimID, "simulated-fault") }()
	// Fail closes the victim's scheduler, which waits for the executing
	// request; release it only once the close is underway, so the worker
	// observes the quit signal and fails the queued requests over to the
	// survivor instead of executing them.
	for !victimSrv.Closed() {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(2 * time.Millisecond)
	blocker.release <- struct{}{}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	// Exactly once: the executing request finished on the failed device,
	// the queued ones re-placed onto the survivor.
	if n := blocker.execs.Load() + free.execs.Load(); n != inFlight {
		t.Fatalf("%d executions for %d requests", n, inFlight)
	}
	if free.execs.Load() == 0 {
		t.Fatal("no request re-placed onto the surviving device")
	}

	// The failure is in the incident history, attributed to the device.
	var found bool
	for _, inc := range rec.Snapshot() {
		if inc.Kind == "device" {
			found = true
			if len(inc.Devices) != 1 || inc.Devices[0] != string(victimID) {
				t.Fatalf("device incident attributes %v, want [%s]", inc.Devices, victimID)
			}
			if inc.CloseReason != "device-failed" || inc.FailureReason != "simulated-fault" {
				t.Fatalf("device incident = %+v", inc)
			}
		}
	}
	if !found {
		t.Fatal("no device incident recorded")
	}

	// fleet.* events carry the device attribution.
	var wire bytes.Buffer
	for _, e := range events.Recent() {
		wire.Write(e.AppendJSON(nil))
		wire.WriteByte('\n')
	}
	for _, want := range []string{
		`"event":"fleet.node.fail"`,
		`"event":"fleet.retry"`,
		fmt.Sprintf(`"device":"%s"`, victimID),
	} {
		if !bytes.Contains(wire.Bytes(), []byte(want)) {
			t.Errorf("event stream missing %s", want)
		}
	}

	// Rejoin rebuilds the scheduler and the device serves again.
	if err := f.Rejoin(victimID, "repaired"); err != nil {
		t.Fatal(err)
	}
	blocker.started = nil // serve freely from here
	before := blocker.execs.Load()
	for i := 0; i < 4; i++ {
		if _, _, err := f.Predict(ctx, seq()); err != nil {
			t.Fatal(err)
		}
	}
	if blocker.execs.Load() == before {
		t.Fatal("rejoined device never served its tenant again")
	}
}

func TestAdmissionCaps(t *testing.T) {
	reg := telemetry.NewRegistry()
	blocker := &fakeInf{seqLen: 8, started: make(chan struct{}, 8), release: make(chan struct{}, 8)}
	f, err := NewFromEngines([]infer.Inferencer{blocker}, Config{
		QueueDepth: 4,
		Block:      true,
		Telemetry:  reg,
		Classes:    []Class{{Name: "bulk", Share: 0.5}, {Name: "interactive", Share: 1}},
		ClassOf: func(tenant string) string {
			if tenant == "scanner" {
				return "bulk"
			}
			return "interactive"
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// bulk cap = floor(0.5 × 1 × 4) = 2: two in flight, the third rejects.
	ctx := infer.WithTenant(context.Background(), "scanner")
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := f.Predict(ctx, seq()); err != nil {
				t.Error(err)
			}
		}()
	}
	<-blocker.started
	waitInflight(t, f, "bulk", 2)
	if _, _, err := f.Predict(ctx, seq()); !errors.Is(err, ErrAdmission) {
		t.Fatalf("over-cap submit: %v, want ErrAdmission", err)
	}
	// The other class is unaffected by bulk's saturation.
	ictx := infer.WithTenant(context.Background(), "user-1")
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, _, err := f.Predict(ictx, seq()); err != nil {
			t.Error(err)
		}
	}()
	for i := 0; i < 3; i++ {
		blocker.release <- struct{}{}
	}
	wg.Wait()

	snap := findSeries(t, reg, "fleet_rejected_total", "class", "bulk")
	if snap != 1 {
		t.Fatalf("fleet_rejected_total{class=bulk} = %d, want 1", snap)
	}
	if n := findSeries(t, reg, "fleet_admitted_total", "class", "interactive"); n != 1 {
		t.Fatalf("fleet_admitted_total{class=interactive} = %d, want 1", n)
	}
}

func waitInflight(t *testing.T, f *Fleet, class string, want int64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if f.classes[class].inflight.Load() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("class %s never reached %d in flight", class, want)
}

func findSeries(t *testing.T, reg *telemetry.Registry, name, labelKey, labelVal string) int64 {
	t.Helper()
	for _, m := range reg.Snapshot() {
		if m.Name != name {
			continue
		}
		for _, l := range m.Labels {
			if l.Key == labelKey && l.Value == labelVal {
				return m.Value
			}
		}
	}
	t.Fatalf("series %s{%s=%q} not in registry", name, labelKey, labelVal)
	return 0
}

func TestQueueWaitMergesAcrossDevices(t *testing.T) {
	engs, _ := engines(3)
	reg := telemetry.NewRegistry()
	f, err := NewFromEngines(engs, Config{Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < 30; i++ {
		ctx := infer.WithTenant(context.Background(), fmt.Sprintf("t-%d", i))
		if _, _, err := f.Predict(ctx, seq()); err != nil {
			t.Fatal(err)
		}
	}
	snap := f.QueueWait()
	if snap.Count != 30 {
		t.Fatalf("merged queue-wait count = %d, want 30", snap.Count)
	}
	if snap.P99 < float64(snap.P50) || snap.Max < snap.Min {
		t.Fatalf("merged snapshot inconsistent: %+v", snap)
	}
}

// TestStressConcurrentDrainRejoin is the acceptance stress: 64 concurrent
// callers against a 16-node fleet while one device runs a drain/rejoin
// cycle mid-load. Run with -race. Drain is the graceful path, so every
// window must succeed and execute exactly once.
func TestStressConcurrentDrainRejoin(t *testing.T) {
	engs, raw := engines(16)
	f, err := NewFromEngines(engs, Config{Block: true, QueueDepth: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	const callers = 64
	const perCaller = 25
	var wg sync.WaitGroup
	start := make(chan struct{})
	var failures atomic.Int64
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			ctx := infer.WithTenant(context.Background(), fmt.Sprintf("tenant-%d", c))
			<-start
			for i := 0; i < perCaller; i++ {
				if _, _, err := f.Predict(ctx, seq()); err != nil {
					t.Errorf("caller %d window %d: %v", c, i, err)
					failures.Add(1)
					return
				}
			}
		}(c)
	}

	drained := f.Registry().List()[3].ID()
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		time.Sleep(2 * time.Millisecond)
		if err := f.Drain(drained, "stress-maintenance"); err != nil {
			t.Error(err)
			return
		}
		time.Sleep(5 * time.Millisecond)
		if err := f.Rejoin(drained, "stress-maintenance-done"); err != nil {
			t.Error(err)
		}
	}()

	close(start)
	wg.Wait()
	if failures.Load() > 0 {
		t.Fatalf("%d callers failed", failures.Load())
	}
	if n := totalExecs(raw); n != callers*perCaller {
		t.Fatalf("fleet executed %d windows, want %d (lost or duplicated)", n, callers*perCaller)
	}
}

func TestClosedFleetRejects(t *testing.T) {
	engs, _ := engines(2)
	f, err := NewFromEngines(engs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, _, err := f.Predict(context.Background(), seq()); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed fleet: %v", err)
	}
}
