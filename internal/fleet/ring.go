package fleet

import (
	"hash/fnv"
	"sort"
	"strconv"

	"github.com/kfrida1/csdinf/internal/device"
)

// ring is a consistent-hash ring over device IDs. Each device contributes
// virtualNodes points, so tenant load spreads evenly even at small fleet
// sizes, and a tenant's hash maps to the same device for as long as that
// device is in rotation — the property that keeps one tenant's detector
// traffic (and its per-device trace timeline) on one drive. Membership is
// fixed at construction (the registry never forgets a device); lifecycle
// is honored at lookup time instead, so a drained device's tenants slide
// to the next point on the ring and slide back when it rejoins, with no
// rebuild and no remapping of unrelated tenants.
type ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	id   device.ID
}

// defaultVirtualNodes balances spread against lookup cost; at 64 points
// per device a 16-drive fleet has 1024 points, and the worst observed
// tenant imbalance stays within a few percent.
const defaultVirtualNodes = 64

func newRing(ids []device.ID, virtualNodes int) *ring {
	if virtualNodes <= 0 {
		virtualNodes = defaultVirtualNodes
	}
	r := &ring{points: make([]ringPoint, 0, len(ids)*virtualNodes)}
	for _, id := range ids {
		for v := 0; v < virtualNodes; v++ {
			r.points = append(r.points, ringPoint{
				hash: hashKey(string(id) + "#" + strconv.Itoa(v)),
				id:   id,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].id < r.points[j].id
	})
	return r
}

// lookup returns the first device at or after the tenant's hash for which
// ok reports true (in practice: is Ready), walking the ring clockwise.
// Returns "" when no device qualifies.
func (r *ring) lookup(tenant string, ok func(device.ID) bool) device.ID {
	if len(r.points) == 0 {
		return ""
	}
	h := hashKey(tenant)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	// Walk at most one full revolution, skipping duplicate device IDs via
	// the ok predicate's own short-circuiting (a rejected device is
	// re-tested cheaply at each of its points).
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if ok(p.id) {
			return p.id
		}
	}
	return ""
}

// hashKey is 64-bit FNV-1a followed by a splitmix64-style finalizer.
// Raw FNV-1a has weak avalanche on short, near-identical keys — the
// vnode labels "csd-003#0".."csd-003#63" differ only in trailing digits
// and hash to tightly clustered values, which collapses the ring into a
// handful of wide arcs owned by one or two devices. The finalizer's
// xor-shift/multiply rounds diffuse every input bit across the word, so
// each device's points scatter uniformly. Deterministic across runs (no
// seed) and still cheap.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer (Steele et al.), a bijective
// avalanche function: every output bit depends on every input bit.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
