// Package fleet is the rack-scale serving layer: N simulated CSD nodes
// behind tenant-aware placement, per-tenant QoS admission, and device
// failure/drain/rejoin flows.
//
// The paper deploys one SmartSSD; its scalability argument (§II) is that
// data centers install many. At rack scale three concerns appear that no
// single-node scheduler addresses. Placement: a tenant's windows should
// land on one device (cache locality, coherent per-device forensic
// timelines), so the fleet consistent-hashes tenant IDs over the device
// ring and spills to the least-simulated-busy ready device only when the
// home device is out of rotation or the request is untenanted. Admission:
// one tenant class must not starve another, so requests pass per-class
// in-flight caps (shares of the fleet's total queue capacity) before they
// touch a queue. Lifecycle: drives drain for maintenance, fail, and
// rejoin; the fleet watches the shared device registry, re-places affected
// tenants (a failed node's in-flight requests are retried once on another
// device — the failing server completes or fails each request exactly
// once, so no window is lost or duplicated), records device incidents,
// and emits fleet.* events alongside the registry's device.* stream.
//
// Each node is one registry device, one simulated SmartSSD with a deployed
// engine, and a single-engine serve.Server providing the bounded queue and
// backpressure; the fleet layers placement, admission, and lifecycle on
// top. All methods are safe for concurrent use.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"github.com/kfrida1/csdinf/internal/core"
	"github.com/kfrida1/csdinf/internal/csd"
	"github.com/kfrida1/csdinf/internal/device"
	"github.com/kfrida1/csdinf/internal/eventlog"
	"github.com/kfrida1/csdinf/internal/incident"
	"github.com/kfrida1/csdinf/internal/infer"
	"github.com/kfrida1/csdinf/internal/kernels"
	"github.com/kfrida1/csdinf/internal/lstm"
	"github.com/kfrida1/csdinf/internal/prof"
	"github.com/kfrida1/csdinf/internal/serve"
	"github.com/kfrida1/csdinf/internal/telemetry"
	"github.com/kfrida1/csdinf/internal/trace"
)

// ErrAdmission is returned when a request's QoS class is at its in-flight
// cap; the tenant is over its share and should back off.
var ErrAdmission = errors.New("fleet: admission limit reached for class")

// ErrClosed is returned for requests submitted after Close.
var ErrClosed = errors.New("fleet: closed")

// ErrNoReadyDevice is returned when no device in the fleet is Ready.
var ErrNoReadyDevice = errors.New("fleet: no ready device")

// Class is one QoS admission class: a named share of the fleet's total
// in-flight capacity (nodes × queue depth). Shares need not sum to 1 —
// overcommit is allowed and simply means classes compete inside the
// bounded queues like before; the cap guarantees a floor of isolation,
// bounding how much of the fleet any one class can occupy.
type Class struct {
	// Name labels the class in telemetry and events.
	Name string
	// Share is the fraction of fleet in-flight capacity the class may
	// occupy, (0, 1]. The cap is max(1, floor(Share × nodes × depth)).
	Share float64
}

// Config controls a Fleet.
type Config struct {
	// Nodes is the number of CSD nodes; 0 defaults to 2.
	Nodes int
	// QueueDepth bounds each node's request queue; 0 defaults to 64.
	QueueDepth int
	// Block makes a full home-node queue block the caller instead of
	// failing fast (per-node serve semantics).
	Block bool
	// BatchMax bounds per-node stored-scan coalescing; 0 defaults to 8.
	BatchMax int
	// VirtualNodes is the consistent-hash points per device; 0 defaults
	// to 64.
	VirtualNodes int
	// Classes are the QoS admission classes; empty defaults to one
	// "default" class with Share 1 (admission never rejects).
	Classes []Class
	// ClassOf maps a tenant to a class name; nil maps every tenant to the
	// first class. Unknown names also fall back to the first class.
	ClassOf func(tenant string) string
	// CSD configures each node's drive (zero value = SmartSSD defaults).
	CSD csd.Config
	// Deploy configures each engine (zero value = paper defaults). The
	// per-device TraceName is derived from the registry ID.
	Deploy core.DeployConfig
	// Registry, when non-nil, is the shared device registry; nil builds a
	// private one. Each node registers one device ("csd-000", ...).
	Registry *device.Registry
	// Telemetry, when non-nil, receives the fleet metrics
	// (fleet_admitted_total / fleet_rejected_total / fleet_inflight by
	// class, fleet_retries_total, fleet_spillover_total) plus every
	// per-device serve and registry series.
	Telemetry *telemetry.Registry
	// Spans, Trace, and Events are threaded into each node's scheduler and
	// engine, so fleet requests carry the same correlation IDs as
	// single-node serving.
	Spans  *telemetry.SpanLog
	Trace  *trace.Tracer
	Events *eventlog.Logger
	// Incidents, when non-nil, receives a device incident per failure.
	Incidents *incident.Recorder
	// Prof, when non-nil, is threaded into each node's scheduler so every
	// fleet request gets a per-stage host-cost breakdown in the continuous
	// profiler's flight recorder.
	Prof *prof.Profiler
}

func (c *Config) defaults() error {
	if c.Nodes == 0 {
		c.Nodes = 2
	}
	if c.Nodes < 0 {
		return fmt.Errorf("fleet: Nodes must be positive, got %d", c.Nodes)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.QueueDepth < 0 {
		return fmt.Errorf("fleet: QueueDepth must be positive, got %d", c.QueueDepth)
	}
	if len(c.Classes) == 0 {
		c.Classes = []Class{{Name: "default", Share: 1}}
	}
	for i, cl := range c.Classes {
		if cl.Name == "" {
			return fmt.Errorf("fleet: class %d has no name", i)
		}
		if cl.Share <= 0 || cl.Share > 1 {
			return fmt.Errorf("fleet: class %q share %v outside (0, 1]", cl.Name, cl.Share)
		}
	}
	return nil
}

// node is one CSD node: a registry device, its engine, and the single-engine
// scheduler that serializes access. srv is swapped atomically on fail/rejoin;
// a caller holding the old server gets ErrClosed and retries elsewhere.
type node struct {
	h   *device.Device
	dev *csd.SmartSSD // nil when built from bare engines (tests)
	eng infer.Inferencer
	srv atomic.Pointer[serve.Server]
}

// class is one admission class's runtime state.
type class struct {
	name     string
	cap      int64
	inflight atomic.Int64

	admitted  *telemetry.Counter
	rejected  *telemetry.Counter
	inflightG *telemetry.Gauge
}

// Fleet is the rack-scale serving layer. It implements infer.Inferencer.
type Fleet struct {
	cfg      Config
	registry *device.Registry
	nodes    []*node
	byID     map[device.ID]*node
	ring     *ring
	classes  map[string]*class
	first    *class

	retries   *telemetry.Counter
	spillover *telemetry.Counter

	closed  atomic.Bool
	unwatch func()
}

var _ infer.Inferencer = (*Fleet)(nil)

// New builds a fleet: cfg.Nodes fresh simulated CSDs, each with the model
// deployed and fronted by its own bounded-queue scheduler.
func New(m *lstm.Model, cfg Config) (*Fleet, error) {
	if m == nil {
		return nil, errors.New("fleet: nil model")
	}
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	f, err := newFleet(&cfg)
	if err != nil {
		return nil, err
	}
	deploy := cfg.Deploy
	if deploy.Telemetry == nil {
		deploy.Telemetry = cfg.Telemetry
	}
	if deploy.Trace == nil {
		deploy.Trace = cfg.Trace
	}
	if deploy.Events == nil {
		deploy.Events = cfg.Events
	}
	for i := 0; i < cfg.Nodes; i++ {
		h := f.registry.Register()
		dev, err := csd.New(cfg.CSD)
		if err != nil {
			return nil, fmt.Errorf("fleet: device %s: %w", h.ID(), err)
		}
		devDeploy := deploy
		devDeploy.TraceName = string(h.ID())
		eng, err := core.Deploy(dev, m, devDeploy)
		if err != nil {
			return nil, fmt.Errorf("fleet: deploy to device %s: %w", h.ID(), err)
		}
		if err := f.addNode(h, dev, eng); err != nil {
			return nil, err
		}
	}
	return f.start()
}

// NewFromEngines builds a fleet over caller-supplied engines, one node per
// engine — the test seam (no CSD deployment, so stored scans depend on the
// engines' own storage). cfg.Nodes is ignored in favor of len(engines).
func NewFromEngines(engines []infer.Inferencer, cfg Config) (*Fleet, error) {
	if len(engines) == 0 {
		return nil, errors.New("fleet: no engines")
	}
	cfg.Nodes = len(engines)
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	f, err := newFleet(&cfg)
	if err != nil {
		return nil, err
	}
	for _, eng := range engines {
		if eng == nil {
			return nil, errors.New("fleet: nil engine")
		}
		if err := f.addNode(f.registry.Register(), nil, eng); err != nil {
			return nil, err
		}
	}
	return f.start()
}

func newFleet(cfg *Config) (*Fleet, error) {
	reg := cfg.Registry
	if reg == nil {
		reg = device.NewRegistry(device.Config{
			Telemetry: cfg.Telemetry, Events: cfg.Events,
		})
	}
	f := &Fleet{
		cfg:      *cfg,
		registry: reg,
		byID:     make(map[device.ID]*node),
		classes:  make(map[string]*class),
		retries: cfg.Telemetry.Counter("fleet_retries_total",
			"In-flight requests re-placed after a device failure."),
		spillover: cfg.Telemetry.Counter("fleet_spillover_total",
			"Tenant requests placed off their hash-home device."),
	}
	total := int64(cfg.Nodes) * int64(cfg.QueueDepth)
	for _, cl := range cfg.Classes {
		cap := int64(cl.Share * float64(total))
		if cap < 1 {
			cap = 1
		}
		lbl := telemetry.L("class", cl.Name)
		c := &class{
			name: cl.Name, cap: cap,
			admitted: cfg.Telemetry.Counter("fleet_admitted_total",
				"Requests admitted past QoS admission.", lbl),
			rejected: cfg.Telemetry.Counter("fleet_rejected_total",
				"Requests rejected at QoS admission.", lbl),
			inflightG: cfg.Telemetry.Gauge("fleet_inflight",
				"Requests currently admitted and not yet completed.", lbl),
		}
		f.classes[cl.Name] = c
		if f.first == nil {
			f.first = c
		}
	}
	return f, nil
}

func (f *Fleet) addNode(h *device.Device, dev *csd.SmartSSD, eng infer.Inferencer) error {
	n := &node{h: h, dev: dev, eng: eng}
	srv, err := f.newServer(n)
	if err != nil {
		return err
	}
	n.srv.Store(srv)
	if err := h.SetReady("fleet-deploy"); err != nil {
		return err
	}
	f.nodes = append(f.nodes, n)
	f.byID[h.ID()] = n
	return nil
}

// newServer builds the single-engine scheduler for one node.
func (f *Fleet) newServer(n *node) (*serve.Server, error) {
	return serve.New([]infer.Inferencer{n.eng}, serve.Config{
		QueueDepth: f.cfg.QueueDepth,
		Block:      f.cfg.Block,
		BatchMax:   f.cfg.BatchMax,
		Devices:    f.registry,
		Handles:    []*device.Device{n.h},
		Telemetry:  f.cfg.Telemetry,
		Spans:      f.cfg.Spans,
		Trace:      f.cfg.Trace,
		Events:     f.cfg.Events,
		Prof:       f.cfg.Prof,
	})
}

// start wires the lifecycle watcher and announces the fleet.
func (f *Fleet) start() (*Fleet, error) {
	ids := make([]device.ID, len(f.nodes))
	for i, n := range f.nodes {
		ids[i] = n.h.ID()
	}
	f.ring = newRing(ids, f.cfg.VirtualNodes)
	f.unwatch = f.registry.Watch(f.onChange)
	f.cfg.Events.Info(context.Background(), "fleet", "fleet.start",
		eventlog.F("nodes", len(f.nodes)),
		eventlog.F("queue_depth", f.cfg.QueueDepth),
		eventlog.F("classes", len(f.classes)))
	return f, nil
}

// onChange reacts to registry lifecycle transitions for the fleet's own
// devices: a failure closes the node's scheduler (releasing in-flight
// requests for retry elsewhere) and records a device incident; drains and
// rejoins are placement-only (the ring honors state at lookup time) and
// are echoed as fleet.* events for the fleet-level audit trail.
func (f *Fleet) onChange(ch device.Change) {
	n, ok := f.byID[ch.Device]
	if !ok {
		return // another layer's device in a shared registry
	}
	ctx := context.Background()
	switch {
	case ch.To == device.Failed:
		if srv := n.srv.Swap(nil); srv != nil {
			srv.Close()
		}
		f.cfg.Events.LogDevice(ctx, eventlog.LevelError, "fleet", "fleet.node.fail",
			string(ch.Device), eventlog.F("reason", ch.Reason))
		f.cfg.Incidents.DeviceFailure(string(ch.Device), ch.Reason)
	case ch.To == device.Draining:
		f.cfg.Events.LogDevice(ctx, eventlog.LevelInfo, "fleet", "fleet.node.drain",
			string(ch.Device), eventlog.F("reason", ch.Reason))
	case ch.To == device.Ready && ch.From != device.Provisioning:
		f.cfg.Events.LogDevice(ctx, eventlog.LevelInfo, "fleet", "fleet.node.rejoin",
			string(ch.Device), eventlog.F("reason", ch.Reason))
	}
}

// Drain takes a device out of placement for maintenance; queued work
// finishes and the device rejoins with Rejoin. The device's tenants
// re-place onto the next ring device until then.
func (f *Fleet) Drain(id device.ID, reason string) error {
	n, ok := f.byID[id]
	if !ok {
		return fmt.Errorf("fleet: unknown device %s", id)
	}
	return n.h.Drain(reason)
}

// Fail simulates a device fault: the device leaves rotation immediately,
// its scheduler is closed (in-flight requests are re-placed onto other
// devices), and a device incident is recorded.
func (f *Fleet) Fail(id device.ID, reason string) error {
	n, ok := f.byID[id]
	if !ok {
		return fmt.Errorf("fleet: unknown device %s", id)
	}
	return n.h.Fail(reason)
}

// Rejoin returns a drained or failed device to rotation. After a failure
// the node's scheduler is rebuilt over the surviving engine (the simulated
// repair path); after a drain the running scheduler simply resumes
// attracting placements.
func (f *Fleet) Rejoin(id device.ID, reason string) error {
	n, ok := f.byID[id]
	if !ok {
		return fmt.Errorf("fleet: unknown device %s", id)
	}
	if n.srv.Load() == nil {
		srv, err := f.newServer(n)
		if err != nil {
			return err
		}
		// Publish the server before flipping state, so no placement can
		// find a Ready device with a nil scheduler.
		n.srv.Store(srv)
	}
	return n.h.SetReady(reason)
}

// Registry returns the shared device registry.
func (f *Fleet) Registry() *device.Registry { return f.registry }

// Nodes returns the number of devices in the fleet.
func (f *Fleet) Nodes() int { return len(f.nodes) }

// Device returns the i-th node's simulated SSD (nil for engine-only
// fleets), e.g. to store sequences for stored scans.
func (f *Fleet) Device(i int) *csd.SmartSSD { return f.nodes[i].dev }

// SeqLen returns the deployed engines' classification window length.
func (f *Fleet) SeqLen() int { return f.nodes[0].eng.SeqLen() }

// classOf resolves a tenant's admission class.
func (f *Fleet) classOf(tenant string) *class {
	if f.cfg.ClassOf == nil {
		return f.first
	}
	if c, ok := f.classes[f.cfg.ClassOf(tenant)]; ok {
		return c
	}
	return f.first
}

// place picks the serving node for a tenant: the tenant's consistent-hash
// home when it is ready, else the least-simulated-busy ready device
// (spillover, counted). Untenanted requests always go least-busy.
func (f *Fleet) place(tenant string) *node {
	if tenant != "" {
		home := f.ring.lookup(tenant, func(id device.ID) bool {
			n := f.byID[id]
			return n.h.IsReady() && n.srv.Load() != nil
		})
		if home != "" {
			n := f.byID[home]
			// The walk itself implements spillover: count it when the
			// first choice for this tenant was skipped.
			if first := f.ring.lookup(tenant, func(device.ID) bool { return true }); first != home {
				f.spillover.Inc()
			}
			return n
		}
		return nil
	}
	var best *node
	var bestScore int64
	for _, n := range f.nodes {
		if !n.h.IsReady() || n.srv.Load() == nil {
			continue
		}
		if sc := n.h.Score(); best == nil || sc < bestScore {
			best, bestScore = n, sc
		}
	}
	return best
}

// Predict classifies a live window on the tenant's home device (or the
// least-busy ready device for untenanted requests), re-placing once if the
// chosen device fails mid-flight.
func (f *Fleet) Predict(ctx context.Context, seq []int) (kernels.Result, infer.Timing, error) {
	return f.submit(ctx, func(srv *serve.Server) (kernels.Result, infer.Timing, error) {
		return srv.Predict(ctx, seq)
	})
}

// PredictStored classifies the sequence at the given SSD byte offset on
// the placed device; offsets presume scan targets are mirrored across the
// fleet (the background-scan replication deployment).
func (f *Fleet) PredictStored(ctx context.Context, ssdOff int64) (kernels.Result, infer.Timing, error) {
	return f.submit(ctx, func(srv *serve.Server) (kernels.Result, infer.Timing, error) {
		return srv.PredictStored(ctx, ssdOff)
	})
}

func (f *Fleet) submit(ctx context.Context, call func(*serve.Server) (kernels.Result, infer.Timing, error)) (kernels.Result, infer.Timing, error) {
	if f.closed.Load() {
		return kernels.Result{}, infer.Timing{}, ErrClosed
	}
	tenant := infer.TenantFrom(ctx)
	cl := f.classOf(tenant)
	if cl.inflight.Add(1) > cl.cap {
		cl.inflight.Add(-1)
		cl.rejected.Inc()
		f.cfg.Events.Log(ctx, eventlog.LevelWarn, "fleet", "fleet.admission.reject",
			eventlog.F("class", cl.name),
			eventlog.F("cap", cl.cap))
		return kernels.Result{}, infer.Timing{}, fmt.Errorf("%w %q", ErrAdmission, cl.name)
	}
	cl.admitted.Inc()
	cl.inflightG.Inc()
	defer func() {
		cl.inflight.Add(-1)
		cl.inflightG.Dec()
	}()

	// One retry covers the single-failure case: the failing scheduler
	// completes or fails every accepted request exactly once (responses
	// finished just before close are still delivered), so re-placing on
	// ErrClosed/ErrNoReadyDevice cannot lose or duplicate a window.
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		n := f.place(tenant)
		if n == nil {
			return kernels.Result{}, infer.Timing{}, ErrNoReadyDevice
		}
		srv := n.srv.Load()
		if srv == nil {
			lastErr = serve.ErrClosed
			continue
		}
		res, timing, err := call(srv)
		if err == nil ||
			(!errors.Is(err, serve.ErrClosed) && !errors.Is(err, serve.ErrNoReadyDevice)) {
			return res, timing, err
		}
		lastErr = err
		f.retries.Inc()
		f.cfg.Events.LogDevice(ctx, eventlog.LevelWarn, "fleet", "fleet.retry",
			string(n.h.ID()), eventlog.F("attempt", attempt+1))
	}
	return kernels.Result{}, infer.Timing{}, fmt.Errorf("fleet: request re-placement failed: %w", lastErr)
}

// NodeStats describes one fleet node.
type NodeStats struct {
	// Serve is the node's per-device serving snapshot (exactly one entry —
	// each node schedules one device).
	Serve serve.DeviceStats
}

// Stats returns per-node serving snapshots, ordered by device ID.
func (f *Fleet) Stats() []NodeStats {
	out := make([]NodeStats, 0, len(f.nodes))
	for _, n := range f.nodes {
		if srv := n.srv.Load(); srv != nil {
			out = append(out, NodeStats{Serve: srv.Stats()[0]})
		} else {
			out = append(out, NodeStats{Serve: serve.DeviceStats{
				ID:    string(n.h.ID()),
				State: n.h.State().String(),
			}})
		}
	}
	// Node order is registration order, which is ID order already; keep
	// the contract explicit against future membership changes.
	for i := 1; i < len(out); i++ {
		if out[i-1].Serve.ID > out[i].Serve.ID {
			panic("fleet: nodes out of ID order")
		}
	}
	return out
}

// QueueWait merges every node's queue-wait histogram into one fleet-wide
// wall-time distribution — the p99 the fleet benchmark gates on. It reads
// the same telemetry series exposed at /metrics; a fleet built without
// telemetry returns the zero snapshot.
func (f *Fleet) QueueWait() telemetry.HistogramSnapshot {
	if f.cfg.Telemetry == nil {
		return telemetry.HistogramSnapshot{}
	}
	var snaps []telemetry.HistogramSnapshot
	for _, m := range f.cfg.Telemetry.Snapshot() {
		if m.Name == "serve_queue_wait_seconds" && m.Histogram != nil {
			snaps = append(snaps, *m.Histogram)
		}
	}
	return telemetry.MergeHistogramSnapshots(snaps)
}

// Close shuts every node's scheduler down and detaches the lifecycle
// watcher. Close is idempotent.
func (f *Fleet) Close() error {
	if !f.closed.CompareAndSwap(false, true) {
		return nil
	}
	f.unwatch()
	for _, n := range f.nodes {
		if srv := n.srv.Swap(nil); srv != nil {
			srv.Close()
		}
	}
	f.cfg.Events.Info(context.Background(), "fleet", "fleet.close",
		eventlog.F("nodes", len(f.nodes)))
	return nil
}
