package hls

import (
	"testing"
)

// FuzzScheduleLoop drives the scheduler with arbitrary loop nests and
// checks its invariants: it never panics, never returns a schedule with
// negative cycles/II/resources, and errors exactly on the documented
// illegal shapes. Inputs are clamped to keep int64 cycle arithmetic far
// from overflow — the fuzzer probes structure, not integer width.
func FuzzScheduleLoop(f *testing.F) {
	f.Add(40, uint8(3), true, false, 2, 1, 8, true, 100, 20, 0, uint8(0))
	f.Add(32, uint8(1), false, true, 0, 4, 4, false, 0, 0, 16, uint8(2))
	f.Add(-1, uint8(0), false, false, 0, 0, 0, false, -5, 0, 0, uint8(9))
	f.Fuzz(func(t *testing.T, trip int, bodySel uint8, pipeline, carried bool,
		requestedII, unroll, mem int, partition bool,
		prologue, epilogue, subTrip int, subSel uint8) {

		clamp := func(v, lo, hi int) int {
			if v < lo {
				return lo
			}
			if v > hi {
				return hi
			}
			return v
		}
		// Body ops are picked from a menu that includes every operator
		// class plus an out-of-range op, so Latency's error path is probed.
		menu := [][]Op{
			nil,
			{IntAdd},
			{FMul, FAdd},
			{MemRead, FMul, FAdd, MemWrite},
			{FExp, FDiv},
			{Op(127)},
		}
		l := Loop{
			Name:               "fuzz",
			Trip:               clamp(trip, -4, 1<<12),
			Body:               menu[int(bodySel)%len(menu)],
			CarriedDep:         carried,
			MemAccessesPerIter: clamp(mem, -2, 64),
			Pipeline:           pipeline,
			RequestedII:        clamp(requestedII, -2, 1<<10),
			Unroll:             clamp(unroll, -2, 1<<10),
			ArrayPartition:     partition,
			Prologue:           clamp(prologue, -4, 1<<10),
			Epilogue:           clamp(epilogue, -4, 1<<10),
		}
		if st := clamp(subTrip, 0, 1<<8); st > 0 {
			l.Sub = []Loop{{
				Name: "fuzz.sub",
				Trip: st,
				Body: menu[int(subSel)%len(menu)],
			}}
		}

		s, err := ScheduleLoop(l)
		if err != nil {
			return
		}
		// Illegal shapes must not schedule silently.
		if l.Trip < 0 || l.Prologue < 0 || l.Epilogue < 0 {
			t.Fatalf("negative trip/prologue/epilogue scheduled: %+v", l)
		}
		if l.Pipeline && len(l.Sub) > 0 {
			t.Fatalf("pipelined loop with sub-loops scheduled: %+v", l)
		}
		if s.Cycles < 0 || s.II < 0 || s.Depth < 0 {
			t.Fatalf("negative schedule %+v for %+v", s, l)
		}
		if s.Res.LUT < 0 || s.Res.FF < 0 || s.Res.DSP < 0 || s.Res.BRAM < 0 {
			t.Fatalf("negative resources %+v for %+v", s.Res, l)
		}
		if l.Pipeline && l.Trip > 0 && s.II < 1 {
			t.Fatalf("pipelined loop achieved II %d < 1: %+v", s.II, l)
		}
		if l.Pipeline && s.II < s.minLegalII(l) {
			t.Fatalf("II %d below feasibility bound %d for %+v", s.II, s.minLegalII(l), l)
		}

		// Determinism: the scheduler is a pure function of the loop.
		again, err := ScheduleLoop(l)
		if err != nil {
			t.Fatalf("second schedule errored: %v", err)
		}
		if again.Cycles != s.Cycles || again.II != s.II || again.Depth != s.Depth || again.Res != s.Res {
			t.Fatalf("schedule not deterministic: %+v vs %+v", s, again)
		}
	})
}

// minLegalII recomputes the II feasibility bound the way internal/drc's
// II001/II002 rules do, so the fuzzer cross-checks scheduler and checker.
func (s Schedule) minLegalII(l Loop) int {
	ii := 1
	if l.CarriedDep && s.Depth > ii {
		ii = s.Depth
	}
	unroll := l.Unroll
	if unroll <= 0 {
		unroll = 1
	}
	if unroll > l.Trip && l.Trip > 0 {
		unroll = l.Trip
	}
	if !l.ArrayPartition && l.MemAccessesPerIter > 0 {
		memII := (l.MemAccessesPerIter*unroll + MemPorts - 1) / MemPorts
		if memII > ii {
			ii = memII
		}
	}
	return ii
}
