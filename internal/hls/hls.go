// Package hls models how Vitis High-Level Synthesis schedules loop nests
// onto FPGA fabric: initiation intervals, pipeline depths, unrolling, array
// partitioning, and the resource cost of each choice.
//
// The paper's Fig. 3 is produced by Vitis hardware emulation, which is
// itself a cycle-*estimating* model rather than real silicon. This package
// re-implements that class of estimator. A kernel is described as a loop
// nest (trip counts, per-iteration operator chains, memory accesses) plus
// the HLS pragmas applied to it, and Schedule derives:
//
//   - the achieved initiation interval II — the paper's §III-D optimization
//     target — bounded below by loop-carried dependency chains and by
//     memory-port contention (relieved by #pragma HLS ARRAY_PARTITION);
//   - total latency in clock cycles, using pipelined scheduling
//     (trip-1)·II + depth when #pragma HLS PIPELINE applies, and sequential
//     iteration otherwise;
//   - DSP/LUT/BRAM/FF consumption, which #pragma HLS UNROLL multiplies —
//     the resource/latency trade-off that makes full unrolling feasible
//     only after the fixed-point conversion shrinks multipliers from
//     floating-point macros to single DSP slices.
//
// Operator latencies are effective values in the range Vitis reports for
// UltraScale parts at a 300 MHz kernel clock; they are calibrated so the
// five-kernel LSTM of the paper lands near Fig. 3's measurements (see
// EXPERIMENTS.md for paper-vs-measured deltas).
package hls

import (
	"errors"
	"fmt"
)

// Op is a hardware operator appearing in a loop body.
type Op int

// Operators. Floating-point macros are multi-cycle and LUT/DSP hungry;
// fixed-point (integer) operators map to single DSP slices or plain LUT
// logic, which is the entire premise of the paper's fixed-point conversion.
const (
	FAdd Op = iota + 1
	FMul
	FDiv
	FAbs
	FCmp
	FExp // used only by the tanh/sigmoid ablation; softsign avoids it
	IntAdd
	IntMul
	IntDivConst // division by a compile-time constant (scale correction)
	IntAbs
	IntCmp
	Shift
	Select
	MemRead  // on-chip (BRAM/register) read
	MemWrite // on-chip write
)

// String returns the operator mnemonic.
func (o Op) String() string {
	names := map[Op]string{
		FAdd: "fadd", FMul: "fmul", FDiv: "fdiv", FAbs: "fabs", FCmp: "fcmp",
		FExp: "fexp", IntAdd: "add", IntMul: "mul", IntDivConst: "divc",
		IntAbs: "abs", IntCmp: "cmp", Shift: "shift", Select: "select",
		MemRead: "rd", MemWrite: "wr",
	}
	if n, ok := names[o]; ok {
		return n
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Latency returns the operator latency in cycles at the 300 MHz kernel
// clock, matching the order of magnitude Vitis reports for UltraScale+.
func (o Op) Latency() (int, error) {
	switch o {
	case FAdd:
		return 7, nil
	case FMul:
		return 4, nil
	case FDiv:
		return 16, nil
	case FAbs, FCmp:
		return 1, nil
	case FExp:
		return 20, nil
	case IntAdd, IntAbs, IntCmp, Shift, Select:
		return 1, nil
	case IntMul:
		return 2, nil
	case IntDivConst:
		return 3, nil // strength-reduced to multiply+shift by the compiler
	case MemRead, MemWrite:
		return 1, nil
	default:
		return 0, fmt.Errorf("hls: unknown op %d", int(o))
	}
}

// Resources aggregates fabric consumption.
type Resources struct {
	DSP  int
	LUT  int
	FF   int
	BRAM int // BRAM36 blocks
}

// Add accumulates other into r.
func (r *Resources) Add(other Resources) {
	r.DSP += other.DSP
	r.LUT += other.LUT
	r.FF += other.FF
	r.BRAM += other.BRAM
}

// Scale multiplies all resource counts by n (unroll replication).
func (r Resources) Scale(n int) Resources {
	return Resources{DSP: r.DSP * n, LUT: r.LUT * n, FF: r.FF * n, BRAM: r.BRAM * n}
}

// Fits reports whether r fits within the budget b.
func (r Resources) Fits(b Resources) bool {
	return r.DSP <= b.DSP && r.LUT <= b.LUT && r.FF <= b.FF && r.BRAM <= b.BRAM
}

// Resources returns the fabric cost of one instance of the operator, in the
// range Vitis utilization reports show for UltraScale+ at 300 MHz. The
// design-rule checker (internal/drc) uses it to predict a loop's bill
// without scheduling it.
func (o Op) Resources() Resources { return o.resources() }

// resources returns the fabric cost of one instance of the operator,
// in the range Vitis utilization reports show for UltraScale+ at 300 MHz.
func (o Op) resources() Resources {
	switch o {
	case FAdd:
		return Resources{DSP: 2, LUT: 200, FF: 300}
	case FMul:
		return Resources{DSP: 3, LUT: 100, FF: 150}
	case FDiv:
		return Resources{LUT: 800, FF: 1200}
	case FAbs, FCmp:
		return Resources{LUT: 50, FF: 50}
	case FExp:
		return Resources{DSP: 7, LUT: 1500, FF: 2000}
	case IntAdd:
		return Resources{LUT: 30, FF: 30}
	case IntMul:
		return Resources{DSP: 1, LUT: 20, FF: 40}
	case IntDivConst:
		return Resources{DSP: 1, LUT: 60, FF: 80}
	case IntAbs, IntCmp, Shift, Select:
		return Resources{LUT: 30, FF: 20}
	case MemRead, MemWrite:
		return Resources{LUT: 10, FF: 10}
	default:
		return Resources{}
	}
}

// MemPorts is the number of concurrently usable memory ports per kernel
// when buffers are *not* partitioned: dual-port BRAM.
const MemPorts = 2

// Loop describes one level of a loop nest plus its pragmas.
type Loop struct {
	// Name identifies the loop in diagnostics.
	Name string
	// Trip is the iteration count.
	Trip int
	// Body is the per-iteration operator dependency chain.
	Body []Op
	// CarriedDep marks a loop-carried dependency through the whole body
	// chain (e.g. a floating-point accumulation), which bounds the achieved
	// II from below by the body latency.
	CarriedDep bool
	// MemAccessesPerIter counts accesses per iteration to *unpartitioned*
	// buffers; they contend for MemPorts and bound II. #pragma HLS
	// ARRAY_PARTITION complete (ArrayPartition below) lifts the bound.
	MemAccessesPerIter int

	// Pipeline corresponds to #pragma HLS PIPELINE.
	Pipeline bool
	// RequestedII is the II= argument of the pipeline pragma (0 means 1).
	RequestedII int
	// Unroll corresponds to #pragma HLS UNROLL factor=N (0/1 = off).
	// Trip/Unroll iterations execute, each doing Unroll copies of the body
	// in parallel; resources multiply accordingly.
	Unroll int
	// ArrayPartition corresponds to #pragma HLS ARRAY_PARTITION complete:
	// indexed buffers become registers, removing the memory-port II bound
	// (and moving buffer storage from BRAM to FF — see Buffer).
	ArrayPartition bool

	// Sub holds nested loops executed sequentially inside each iteration.
	// A loop containing sub-loops cannot be pipelined (HLS would require
	// them fully unrolled); Schedule returns an error in that case.
	Sub []Loop

	// Prologue and Epilogue are fixed cycle counts before/after the loop:
	// AXI burst setup, adder-tree drains, activation tails. They make the
	// calibration explicit rather than buried in fudge factors.
	Prologue, Epilogue int
}

// Schedule is the result of scheduling a loop nest.
type Schedule struct {
	// Cycles is the total latency of one execution of the loop nest.
	Cycles int64
	// II is the achieved initiation interval (pipelined loops only; 0
	// otherwise).
	II int
	// Depth is the pipeline depth (body latency).
	Depth int
	// Res is the fabric consumed.
	Res Resources
	// Notes explains scheduling decisions (II bounds that fired, etc.).
	Notes []string
}

// ErrPipelineWithSubLoops is returned when PIPELINE is requested on a loop
// containing non-unrolled sub-loops.
var ErrPipelineWithSubLoops = errors.New("hls: cannot pipeline a loop containing sub-loops")

// ScheduleLoop derives the schedule of a loop nest.
func ScheduleLoop(l Loop) (Schedule, error) {
	if l.Trip < 0 {
		return Schedule{}, fmt.Errorf("hls: loop %q has negative trip count %d", l.Name, l.Trip)
	}
	if l.Prologue < 0 || l.Epilogue < 0 {
		return Schedule{}, fmt.Errorf("hls: loop %q has negative prologue/epilogue (%d, %d)",
			l.Name, l.Prologue, l.Epilogue)
	}
	unroll := l.Unroll
	if unroll <= 0 {
		unroll = 1
	}
	if unroll > l.Trip && l.Trip > 0 {
		unroll = l.Trip
	}
	effTrip := 0
	if l.Trip > 0 {
		effTrip = (l.Trip + unroll - 1) / unroll
	}

	depth := 0
	var bodyRes Resources
	for _, op := range l.Body {
		lat, err := op.Latency()
		if err != nil {
			return Schedule{}, fmt.Errorf("hls: loop %q: %w", l.Name, err)
		}
		depth += lat
		bodyRes.Add(op.resources())
	}
	bodyRes = bodyRes.Scale(unroll)

	s := Schedule{Depth: depth, Res: bodyRes}

	if l.Pipeline {
		if len(l.Sub) > 0 {
			return Schedule{}, fmt.Errorf("%w: %q", ErrPipelineWithSubLoops, l.Name)
		}
		ii := l.RequestedII
		if ii <= 0 {
			ii = 1
		}
		if l.CarriedDep && depth > ii {
			ii = depth
			s.Notes = append(s.Notes, fmt.Sprintf("loop %q: II raised to %d by carried dependency", l.Name, ii))
		}
		if !l.ArrayPartition && l.MemAccessesPerIter > 0 {
			memII := (l.MemAccessesPerIter*unroll + MemPorts - 1) / MemPorts
			if memII > ii {
				ii = memII
				s.Notes = append(s.Notes,
					fmt.Sprintf("loop %q: II raised to %d by memory-port contention (ARRAY_PARTITION would lift this)", l.Name, ii))
			}
		}
		s.II = ii
		if effTrip > 0 {
			s.Cycles = int64(effTrip-1)*int64(ii) + int64(depth)
		}
	} else {
		var subCycles int64
		for _, sub := range l.Sub {
			ss, err := ScheduleLoop(sub)
			if err != nil {
				return Schedule{}, err
			}
			subCycles += ss.Cycles
			s.Res.Add(ss.Res)
			s.Notes = append(s.Notes, ss.Notes...)
		}
		// Sequential execution: every iteration pays the full body chain,
		// its sub-loops, and one cycle of loop control.
		perIter := int64(depth) + subCycles
		if l.Trip > 0 {
			perIter++
		}
		s.Cycles = int64(effTrip) * perIter
	}

	s.Cycles += int64(l.Prologue) + int64(l.Epilogue)
	return s, nil
}

// Buffer describes an on-chip data buffer and its storage cost.
type Buffer struct {
	// Name identifies the buffer.
	Name string
	// Words is the number of 32-bit words.
	Words int
	// PartitionComplete corresponds to #pragma HLS ARRAY_PARTITION
	// complete: the buffer is implemented in flip-flops instead of BRAM.
	PartitionComplete bool
}

// Resources returns the storage cost of the buffer: fully partitioned
// buffers burn FF/LUT, unpartitioned ones consume BRAM36 blocks (1 Ki
// 32-bit words each).
func (b Buffer) Resources() Resources {
	if b.Words <= 0 {
		return Resources{}
	}
	if b.PartitionComplete {
		return Resources{FF: b.Words * 32, LUT: b.Words * 8}
	}
	blocks := (b.Words + 1023) / 1024
	return Resources{BRAM: blocks}
}

// AXI and DDR timing constants used by kernel descriptors for their
// prologue/epilogue costs. They model the paper's setup: global-memory
// buffers in two DDR banks reached over AXI master interfaces (§III-C).
const (
	// AXIReadLatency is the cycles from issuing an AXI read burst to the
	// first beat arriving from DDR.
	AXIReadLatency = 64
	// AXIWriteLatency is the cycles to retire an AXI write burst.
	AXIWriteLatency = 28
	// BurstBeat is the cycles per additional beat of an open burst.
	BurstBeat = 1
)
