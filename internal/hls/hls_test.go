package hls

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestOpLatencies(t *testing.T) {
	// Ordering invariants the paper's optimizations rely on.
	lat := func(o Op) int {
		t.Helper()
		l, err := o.Latency()
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	if !(lat(IntMul) < lat(FMul)) {
		t.Error("integer multiply must be cheaper than float multiply (fixed-point premise)")
	}
	if !(lat(IntAdd) < lat(FAdd)) {
		t.Error("integer add must be cheaper than float add")
	}
	if !(lat(IntDivConst) < lat(FDiv)) {
		t.Error("constant division must be cheaper than float division")
	}
	if !(lat(FExp) > lat(FDiv)) {
		t.Error("exp must be the most expensive float op (softsign premise)")
	}
	if _, err := Op(999).Latency(); err == nil {
		t.Error("unknown op: expected error")
	}
}

func TestOpString(t *testing.T) {
	if FAdd.String() != "fadd" || IntMul.String() != "mul" {
		t.Error("op mnemonics broken")
	}
	if !strings.HasPrefix(Op(999).String(), "Op(") {
		t.Error("unknown op formatting broken")
	}
}

func TestOpResourcesIntCheaperThanFloat(t *testing.T) {
	if IntMul.resources().DSP >= FMul.resources().DSP {
		t.Error("integer multiply must use fewer DSPs than float multiply")
	}
	if IntAdd.resources().LUT >= FAdd.resources().LUT {
		t.Error("integer add must use fewer LUTs than float add")
	}
}

func TestResourcesAddScaleFits(t *testing.T) {
	r := Resources{DSP: 1, LUT: 10, FF: 20, BRAM: 2}
	r.Add(Resources{DSP: 2, LUT: 5, FF: 5, BRAM: 1})
	if r != (Resources{DSP: 3, LUT: 15, FF: 25, BRAM: 3}) {
		t.Fatalf("Add = %+v", r)
	}
	if got := r.Scale(2); got != (Resources{DSP: 6, LUT: 30, FF: 50, BRAM: 6}) {
		t.Fatalf("Scale = %+v", got)
	}
	budget := Resources{DSP: 10, LUT: 100, FF: 100, BRAM: 10}
	if !r.Fits(budget) {
		t.Error("should fit budget")
	}
	if (Resources{DSP: 11}).Fits(budget) {
		t.Error("DSP overflow should not fit")
	}
}

func TestPipelinedLoopLatencyFormula(t *testing.T) {
	// (trip-1)*II + depth.
	l := Loop{Name: "mac", Trip: 100, Body: []Op{FMul, FAdd}, Pipeline: true}
	s, err := ScheduleLoop(l)
	if err != nil {
		t.Fatal(err)
	}
	if s.II != 1 {
		t.Fatalf("II = %d, want 1", s.II)
	}
	if s.Depth != 11 {
		t.Fatalf("Depth = %d, want 11 (fmul 4 + fadd 7)", s.Depth)
	}
	if want := int64(99*1 + 11); s.Cycles != want {
		t.Fatalf("Cycles = %d, want %d", s.Cycles, want)
	}
}

func TestCarriedDependencyBoundsII(t *testing.T) {
	l := Loop{Name: "acc", Trip: 40, Body: []Op{FMul, FAdd}, CarriedDep: true, Pipeline: true}
	s, err := ScheduleLoop(l)
	if err != nil {
		t.Fatal(err)
	}
	if s.II != 11 {
		t.Fatalf("II = %d, want 11 (carried chain)", s.II)
	}
	if len(s.Notes) == 0 || !strings.Contains(s.Notes[0], "carried dependency") {
		t.Fatalf("missing carried-dependency note: %v", s.Notes)
	}
}

func TestMemoryContentionBoundsIIAndPartitionLiftsIt(t *testing.T) {
	base := Loop{Name: "rd4", Trip: 32, Body: []Op{IntAdd}, MemAccessesPerIter: 4, Pipeline: true}
	s, err := ScheduleLoop(base)
	if err != nil {
		t.Fatal(err)
	}
	if s.II != 2 { // 4 accesses / 2 ports
		t.Fatalf("II = %d, want 2", s.II)
	}
	part := base
	part.ArrayPartition = true
	s2, err := ScheduleLoop(part)
	if err != nil {
		t.Fatal(err)
	}
	if s2.II != 1 {
		t.Fatalf("partitioned II = %d, want 1", s2.II)
	}
	if s2.Cycles >= s.Cycles {
		t.Fatalf("ARRAY_PARTITION did not reduce cycles: %d vs %d", s2.Cycles, s.Cycles)
	}
}

func TestUnrollReducesTripAndMultipliesResources(t *testing.T) {
	base := Loop{Name: "u", Trip: 64, Body: []Op{IntMul, IntAdd}, Pipeline: true, ArrayPartition: true}
	s1, err := ScheduleLoop(base)
	if err != nil {
		t.Fatal(err)
	}
	u4 := base
	u4.Unroll = 4
	s4, err := ScheduleLoop(u4)
	if err != nil {
		t.Fatal(err)
	}
	if s4.Cycles >= s1.Cycles {
		t.Fatalf("unroll did not speed up: %d vs %d", s4.Cycles, s1.Cycles)
	}
	if s4.Res.DSP != 4*s1.Res.DSP {
		t.Fatalf("unroll-4 DSP = %d, want %d", s4.Res.DSP, 4*s1.Res.DSP)
	}
	// Unroll beyond trip count clamps.
	huge := base
	huge.Unroll = 1000
	sh, err := ScheduleLoop(huge)
	if err != nil {
		t.Fatal(err)
	}
	if sh.Res.DSP != 64*s1.Res.DSP {
		t.Fatalf("clamped unroll DSP = %d, want %d", sh.Res.DSP, 64*s1.Res.DSP)
	}
}

func TestUnrollWithMemContention(t *testing.T) {
	// Unrolling without partitioning multiplies port pressure.
	l := Loop{Name: "m", Trip: 64, Body: []Op{IntAdd}, MemAccessesPerIter: 1, Unroll: 8, Pipeline: true}
	s, err := ScheduleLoop(l)
	if err != nil {
		t.Fatal(err)
	}
	if s.II != 4 { // 8 accesses / 2 ports
		t.Fatalf("II = %d, want 4", s.II)
	}
}

func TestSequentialLoopWithSubLoops(t *testing.T) {
	inner := Loop{Name: "inner", Trip: 10, Body: []Op{IntMul, IntAdd}, Pipeline: true, ArrayPartition: true}
	outer := Loop{Name: "outer", Trip: 4, Body: []Op{IntAdd}, Sub: []Loop{inner}}
	s, err := ScheduleLoop(outer)
	if err != nil {
		t.Fatal(err)
	}
	si, err := ScheduleLoop(inner)
	if err != nil {
		t.Fatal(err)
	}
	want := 4 * (1 + si.Cycles + 1) // body(IntAdd=1) + inner + control
	if s.Cycles != want {
		t.Fatalf("Cycles = %d, want %d", s.Cycles, want)
	}
}

func TestPipelineWithSubLoopsRejected(t *testing.T) {
	l := Loop{Name: "bad", Trip: 4, Pipeline: true, Sub: []Loop{{Name: "inner", Trip: 2}}}
	if _, err := ScheduleLoop(l); !errors.Is(err, ErrPipelineWithSubLoops) {
		t.Fatalf("error = %v, want ErrPipelineWithSubLoops", err)
	}
}

func TestNegativeTripRejected(t *testing.T) {
	if _, err := ScheduleLoop(Loop{Name: "neg", Trip: -1}); err == nil {
		t.Fatal("negative trip: expected error")
	}
}

func TestZeroTripLoop(t *testing.T) {
	s, err := ScheduleLoop(Loop{Name: "z", Trip: 0, Body: []Op{FAdd}, Pipeline: true, Prologue: 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.Cycles != 5 {
		t.Fatalf("zero-trip cycles = %d, want prologue only", s.Cycles)
	}
}

func TestPrologueEpilogueAdded(t *testing.T) {
	l := Loop{Name: "p", Trip: 10, Body: []Op{IntAdd}, Pipeline: true, Prologue: AXIReadLatency, Epilogue: AXIWriteLatency}
	s, err := ScheduleLoop(l)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(9 + 1 + AXIReadLatency + AXIWriteLatency); s.Cycles != want {
		t.Fatalf("Cycles = %d, want %d", s.Cycles, want)
	}
}

func TestRequestedIIHonored(t *testing.T) {
	l := Loop{Name: "ii4", Trip: 10, Body: []Op{IntAdd}, Pipeline: true, RequestedII: 4}
	s, err := ScheduleLoop(l)
	if err != nil {
		t.Fatal(err)
	}
	if s.II != 4 {
		t.Fatalf("II = %d, want 4", s.II)
	}
}

func TestBufferResources(t *testing.T) {
	if got := (Buffer{Words: 0}).Resources(); got != (Resources{}) {
		t.Errorf("empty buffer resources = %+v", got)
	}
	b := Buffer{Name: "w", Words: 1280}
	r := b.Resources()
	if r.BRAM != 2 {
		t.Errorf("1280-word buffer BRAM = %d, want 2", r.BRAM)
	}
	p := Buffer{Name: "w", Words: 1280, PartitionComplete: true}
	rp := p.Resources()
	if rp.BRAM != 0 || rp.FF == 0 {
		t.Errorf("partitioned buffer resources = %+v", rp)
	}
}

// Property: cycles are monotone non-decreasing in trip count.
func TestPropCyclesMonotoneInTrip(t *testing.T) {
	f := func(trip uint8, pipeline bool) bool {
		mk := func(n int) Loop {
			return Loop{Name: "m", Trip: n, Body: []Op{IntMul, IntAdd}, Pipeline: pipeline}
		}
		a, err1 := ScheduleLoop(mk(int(trip)))
		b, err2 := ScheduleLoop(mk(int(trip) + 1))
		return err1 == nil && err2 == nil && b.Cycles >= a.Cycles
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: pipelining never makes a loop slower than sequential execution.
func TestPropPipelineNeverSlower(t *testing.T) {
	f := func(trip uint8) bool {
		body := []Op{FMul, FAdd}
		seq, err1 := ScheduleLoop(Loop{Name: "s", Trip: int(trip), Body: body})
		pipe, err2 := ScheduleLoop(Loop{Name: "p", Trip: int(trip), Body: body, Pipeline: true})
		return err1 == nil && err2 == nil && pipe.Cycles <= seq.Cycles
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
