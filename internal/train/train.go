// Package train is the offline training harness of §III-A: it fits the
// embedding+LSTM+FC classifier on an API-call dataset with Adam and full
// BPTT, records the convergence trajectory reported in the paper's Fig. 4,
// and evaluates the headline detection metrics of §IV.
package train

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/kfrida1/csdinf/internal/activation"
	"github.com/kfrida1/csdinf/internal/dataset"
	"github.com/kfrida1/csdinf/internal/lstm"
	"github.com/kfrida1/csdinf/internal/metrics"
	"github.com/kfrida1/csdinf/internal/winapi"
)

// Config controls a training run.
type Config struct {
	// Epochs is the maximum number of passes over the training set; 0
	// defaults to 50.
	Epochs int
	// BatchSize is the mini-batch size; 0 defaults to 32.
	BatchSize int
	// LR is the Adam learning rate; 0 defaults to 3e-3.
	LR float64
	// ClipNorm bounds per-timestep state gradients during BPTT; 0 defaults
	// to 5 (<0 disables clipping).
	ClipNorm float64
	// Seed drives initialization and epoch shuffling.
	Seed int64
	// EmbedDim is the embedding size; 0 defaults to the paper's 8.
	EmbedDim int
	// HiddenSize is the LSTM width; 0 defaults to the paper's 32.
	HiddenSize int
	// CellActivation defaults to softsign (the FPGA-ready variant).
	CellActivation activation.Kind
	// EvalEvery records test metrics every N epochs; 0 defaults to 1.
	EvalEvery int
	// TargetAccuracy stops training early once test accuracy reaches it
	// (0 = run all epochs). The paper trains "until convergence".
	TargetAccuracy float64
}

func (c *Config) defaults() {
	if c.Epochs == 0 {
		c.Epochs = 50
	}
	if c.BatchSize == 0 {
		c.BatchSize = 32
	}
	if c.LR == 0 {
		c.LR = 3e-3
	}
	if c.ClipNorm == 0 {
		c.ClipNorm = 5
	}
	if c.EmbedDim == 0 {
		c.EmbedDim = 8
	}
	if c.HiddenSize == 0 {
		c.HiddenSize = 32
	}
	if c.CellActivation == 0 {
		c.CellActivation = activation.Softsign
	}
	if c.EvalEvery == 0 {
		c.EvalEvery = 1
	}
}

// EpochRecord is one point of the Fig. 4 convergence curve.
type EpochRecord struct {
	// Epoch is the 1-based epoch index.
	Epoch int
	// TrainLoss is the mean binary cross-entropy over the epoch.
	TrainLoss float64
	// Test holds the held-out metrics at this epoch.
	Test metrics.Scores
}

// Result is a completed training run.
type Result struct {
	// Model is the trained classifier.
	Model *lstm.Model
	// History is the convergence trajectory (one record per evaluated
	// epoch) — the data behind Fig. 4.
	History []EpochRecord
	// Final is the held-out evaluation of the final model.
	Final metrics.Scores
	// FinalConfusion is the matrix behind Final.
	FinalConfusion metrics.Confusion
	// EpochsRun counts completed epochs (may be fewer than Config.Epochs
	// when TargetAccuracy fires).
	EpochsRun int
	// ReachedTarget reports whether TargetAccuracy stopped training.
	ReachedTarget bool
}

// Train fits a fresh model on trainDS and evaluates on testDS.
func Train(trainDS, testDS *dataset.Dataset, cfg Config) (*Result, error) {
	if trainDS == nil || len(trainDS.Sequences) == 0 {
		return nil, errors.New("train: empty training set")
	}
	if testDS == nil || len(testDS.Sequences) == 0 {
		return nil, errors.New("train: empty test set")
	}
	cfg.defaults()
	if cfg.Epochs < 0 || cfg.BatchSize <= 0 {
		return nil, fmt.Errorf("train: bad epochs/batch (%d, %d)", cfg.Epochs, cfg.BatchSize)
	}

	model, err := lstm.NewModel(lstm.Config{
		VocabSize:      winapi.VocabSize,
		EmbedDim:       cfg.EmbedDim,
		HiddenSize:     cfg.HiddenSize,
		CellActivation: cfg.CellActivation,
	}, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("train: %w", err)
	}

	opt := &lstm.Adam{LR: cfg.LR}
	grads := model.NewGrads()
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	order := make([]int, len(trainDS.Sequences))
	for i := range order {
		order[i] = i
	}

	res := &Result{Model: model}
	for epoch := 1; epoch <= cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var lossSum float64
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := min(start+cfg.BatchSize, len(order))
			grads.Zero()
			for _, idx := range order[start:end] {
				s := trainDS.Sequences[idx]
				br, err := model.Backward(s.Items, s.Ransomware, grads, cfg.ClipNorm)
				if err != nil {
					return nil, fmt.Errorf("train: epoch %d: %w", epoch, err)
				}
				lossSum += br.Loss
			}
			if err := opt.Apply(model, grads, end-start); err != nil {
				return nil, fmt.Errorf("train: epoch %d: %w", epoch, err)
			}
		}
		res.EpochsRun = epoch

		if epoch%cfg.EvalEvery == 0 || epoch == cfg.Epochs {
			conf, err := Evaluate(model, testDS)
			if err != nil {
				return nil, fmt.Errorf("train: evaluate epoch %d: %w", epoch, err)
			}
			rec := EpochRecord{
				Epoch:     epoch,
				TrainLoss: lossSum / float64(len(order)),
				Test:      conf.Scores(),
			}
			res.History = append(res.History, rec)
			res.Final = rec.Test
			res.FinalConfusion = conf
			if cfg.TargetAccuracy > 0 && rec.Test.Accuracy >= cfg.TargetAccuracy {
				res.ReachedTarget = true
				break
			}
		}
	}
	if len(res.History) == 0 {
		conf, err := Evaluate(model, testDS)
		if err != nil {
			return nil, fmt.Errorf("train: evaluate: %w", err)
		}
		res.Final = conf.Scores()
		res.FinalConfusion = conf
	}
	return res, nil
}

// Evaluate runs the model over every sequence of ds and returns the
// confusion matrix at threshold 0.5.
func Evaluate(m *lstm.Model, ds *dataset.Dataset) (metrics.Confusion, error) {
	if m == nil {
		return metrics.Confusion{}, errors.New("train: nil model")
	}
	if ds == nil || len(ds.Sequences) == 0 {
		return metrics.Confusion{}, errors.New("train: empty evaluation set")
	}
	var conf metrics.Confusion
	for i, s := range ds.Sequences {
		pred, _, err := m.Predict(s.Items)
		if err != nil {
			return metrics.Confusion{}, fmt.Errorf("train: sequence %d: %w", i, err)
		}
		conf.Observe(pred, s.Ransomware)
	}
	return conf, nil
}

// BestAccuracy returns the peak test accuracy across the history and the
// epoch it occurred at — the paper's "peak detection accuracy of 0.9833 at
// around 4K epochs" readout.
func (r *Result) BestAccuracy() (acc float64, epoch int) {
	for _, rec := range r.History {
		if rec.Test.Accuracy > acc {
			acc, epoch = rec.Test.Accuracy, rec.Epoch
		}
	}
	return acc, epoch
}

// Score runs the model over ds and returns per-sequence scored predictions
// for threshold-independent evaluation (ROC/AUC, threshold sweeps).
func Score(m *lstm.Model, ds *dataset.Dataset) ([]metrics.ScoredPrediction, error) {
	if m == nil {
		return nil, errors.New("train: nil model")
	}
	if ds == nil || len(ds.Sequences) == 0 {
		return nil, errors.New("train: empty evaluation set")
	}
	out := make([]metrics.ScoredPrediction, len(ds.Sequences))
	for i, s := range ds.Sequences {
		p, err := m.Forward(s.Items)
		if err != nil {
			return nil, fmt.Errorf("train: sequence %d: %w", i, err)
		}
		out[i] = metrics.ScoredPrediction{Probability: p, Actual: s.Ransomware}
	}
	return out, nil
}
