package train

import (
	"testing"

	"github.com/kfrida1/csdinf/internal/dataset"
	"github.com/kfrida1/csdinf/internal/metrics"
)

// smallData builds a quick corpus and split for harness tests.
func smallData(t *testing.T) (*dataset.Dataset, *dataset.Dataset) {
	t.Helper()
	ds, err := dataset.Build(dataset.BuildConfig{
		RansomwareCount: 160,
		BenignCount:     160,
		Window:          30,
		Stride:          15,
		Seed:            11,
	})
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := ds.Split(0.25, 12)
	if err != nil {
		t.Fatal(err)
	}
	return train, test
}

func TestTrainValidation(t *testing.T) {
	trainDS, testDS := smallData(t)
	if _, err := Train(nil, testDS, Config{}); err == nil {
		t.Error("nil train set: expected error")
	}
	if _, err := Train(trainDS, nil, Config{}); err == nil {
		t.Error("nil test set: expected error")
	}
	empty := &dataset.Dataset{Window: 30}
	if _, err := Train(empty, testDS, Config{}); err == nil {
		t.Error("empty train set: expected error")
	}
	if _, err := Train(trainDS, testDS, Config{Epochs: -1}); err == nil {
		t.Error("negative epochs: expected error")
	}
	if _, err := Train(trainDS, testDS, Config{BatchSize: -1}); err == nil {
		t.Error("negative batch: expected error")
	}
}

func TestTrainLearnsSyntheticCorpus(t *testing.T) {
	trainDS, testDS := smallData(t)
	res, err := Train(trainDS, testDS, Config{
		Epochs:    12,
		BatchSize: 16,
		Seed:      3,
		EvalEvery: 2,
		// A small model is plenty for the scaled-down corpus and keeps the
		// test fast.
		EmbedDim:   6,
		HiddenSize: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Accuracy < 0.85 {
		t.Fatalf("final accuracy = %v, want >= 0.85 on synthetic corpus", res.Final.Accuracy)
	}
	if len(res.History) == 0 {
		t.Fatal("no convergence history recorded")
	}
	// History must be evaluated at the configured cadence.
	for i, rec := range res.History {
		if rec.Epoch <= 0 {
			t.Fatalf("history[%d] epoch = %d", i, rec.Epoch)
		}
		if rec.TrainLoss < 0 {
			t.Fatalf("history[%d] negative loss", i)
		}
	}
	// Loss should broadly decrease from first to last record.
	first, last := res.History[0].TrainLoss, res.History[len(res.History)-1].TrainLoss
	if last >= first {
		t.Fatalf("train loss did not decrease: %v -> %v", first, last)
	}
	if best, epoch := res.BestAccuracy(); best < res.Final.Accuracy-1e-9 || epoch == 0 {
		t.Fatalf("BestAccuracy = (%v, %d) inconsistent with final %v", best, epoch, res.Final.Accuracy)
	}
}

func TestTrainEarlyStopOnTarget(t *testing.T) {
	trainDS, testDS := smallData(t)
	res, err := Train(trainDS, testDS, Config{
		Epochs:         40,
		BatchSize:      16,
		Seed:           3,
		EmbedDim:       6,
		HiddenSize:     12,
		TargetAccuracy: 0.80,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.ReachedTarget {
		t.Fatal("never reached an easily reachable target accuracy")
	}
	if res.EpochsRun >= 40 {
		t.Fatalf("early stop did not fire: ran %d epochs", res.EpochsRun)
	}
}

func TestTrainDeterministic(t *testing.T) {
	trainDS, testDS := smallData(t)
	cfg := Config{Epochs: 3, BatchSize: 16, Seed: 5, EmbedDim: 4, HiddenSize: 6}
	a, err := Train(trainDS, testDS, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(trainDS, testDS, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Final != b.Final {
		t.Fatalf("same seed produced different results: %+v vs %+v", a.Final, b.Final)
	}
}

func TestEvaluateValidation(t *testing.T) {
	trainDS, _ := smallData(t)
	if _, err := Evaluate(nil, trainDS); err == nil {
		t.Error("nil model: expected error")
	}
	res, err := Train(trainDS, trainDS, Config{Epochs: 1, EmbedDim: 4, HiddenSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Evaluate(res.Model, &dataset.Dataset{}); err == nil {
		t.Error("empty dataset: expected error")
	}
	conf, err := Evaluate(res.Model, trainDS)
	if err != nil {
		t.Fatal(err)
	}
	if conf.Total() != len(trainDS.Sequences) {
		t.Fatalf("evaluated %d of %d sequences", conf.Total(), len(trainDS.Sequences))
	}
}

func TestScoreAndAUC(t *testing.T) {
	trainDS, testDS := smallData(t)
	res, err := Train(trainDS, testDS, Config{
		Epochs: 10, BatchSize: 16, Seed: 3, EmbedDim: 6, HiddenSize: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	preds, err := Score(res.Model, testDS)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != len(testDS.Sequences) {
		t.Fatalf("predictions = %d", len(preds))
	}
	auc, err := metrics.AUC(preds)
	if err != nil {
		t.Fatal(err)
	}
	if auc < 0.9 {
		t.Fatalf("AUC = %v on learnable corpus", auc)
	}
	// Threshold sweep: TPR must be non-increasing in the threshold.
	pts, err := metrics.ThresholdSweep(preds, []float64{0.1, 0.3, 0.5, 0.7, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].TPR > pts[i-1].TPR+1e-12 {
			t.Fatalf("TPR increased with threshold: %v", pts)
		}
	}
	if _, err := Score(nil, testDS); err == nil {
		t.Error("nil model: expected error")
	}
	if _, err := Score(res.Model, &dataset.Dataset{}); err == nil {
		t.Error("empty set: expected error")
	}
}
