package lstm

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestWeightTextRoundTrip(t *testing.T) {
	m, err := NewModel(testConfig(), 17)
	if err != nil {
		t.Fatal(err)
	}
	// Perturb so we're not round-tripping pristine init values only.
	m.FCB = -0.123456789123456789
	m.Gates[3].B[0] = 1e-17

	var buf bytes.Buffer
	if err := m.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if got.Config() != m.Config() {
		t.Fatalf("config mismatch: %+v vs %+v", got.Config(), m.Config())
	}
	seq := []int{0, 3, 7, 11, 2}
	p1, err := m.Forward(seq)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := got.Forward(seq)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatalf("round-tripped model diverges: %v vs %v", p1, p2)
	}
	// Bit-exact parameter comparison.
	for i := range m.Embedding.Data {
		if m.Embedding.Data[i] != got.Embedding.Data[i] {
			t.Fatalf("embedding[%d] %v != %v", i, m.Embedding.Data[i], got.Embedding.Data[i])
		}
	}
	if got.FCB != m.FCB {
		t.Fatalf("FCB %v != %v", got.FCB, m.FCB)
	}
}

func TestReadTextErrors(t *testing.T) {
	valid := func() string {
		m, err := NewModel(testConfig(), 1)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := m.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}()
	lines := strings.Split(strings.TrimRight(valid, "\n"), "\n")

	tests := []struct {
		name  string
		input string
	}{
		{"empty", ""},
		{"bad header", "not-a-weight-file\n"},
		{"missing config", lines[0] + "\n"},
		{"bad config key", strings.Replace(valid, "config vocab", "config bogus", 1)},
		{"bad config count", strings.Replace(valid, "cellact softsign", "cellact", 1)},
		{"bad activation", strings.Replace(valid, "cellact softsign", "cellact relu", 1)},
		{"bad vocab value", strings.Replace(valid, "vocab 12", "vocab twelve", 1)},
		{"zero vocab", strings.Replace(valid, "vocab 12", "vocab 0", 1)},
		{"truncated records", strings.Join(lines[:3], "\n") + "\n"},
		{"bad float", strings.Replace(valid, "embedding ", "embedding zzz", 1)},
		{"wrong record order", strings.Replace(valid, "gate i wx", "gate f wx", 1)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := ReadText(strings.NewReader(tt.input))
			if err == nil {
				t.Fatal("expected error, got nil")
			}
			if !errors.Is(err, ErrBadWeightFile) {
				t.Fatalf("error %v does not wrap ErrBadWeightFile", err)
			}
		})
	}
}

func TestReadTextWrongValueCount(t *testing.T) {
	m, err := NewModel(testConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	// Drop one value from the embedding record.
	text := buf.String()
	lines := strings.SplitN(text, "\n", 4)
	emb := strings.Fields(lines[2])
	lines[2] = strings.Join(emb[:len(emb)-1], " ")
	if _, err := ReadText(strings.NewReader(strings.Join(lines, "\n"))); !errors.Is(err, ErrBadWeightFile) {
		t.Fatalf("error = %v, want ErrBadWeightFile", err)
	}
}

func TestWriteTextTanhVariant(t *testing.T) {
	cfg := testConfig()
	cfg.CellActivation = 2 // activation.Tanh
	m, err := NewModel(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "cellact tanh") {
		t.Fatal("tanh variant not recorded in config line")
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Config().CellActivation != cfg.CellActivation {
		t.Fatal("tanh activation lost in round trip")
	}
}
