// Package lstm implements the offline classifier of the paper: an embedding
// layer, a single LSTM layer, and a one-unit fully-connected head with a
// logistic output, trained with truncated-free full BPTT.
//
// The paper's experimental model (§IV) uses an embedding dimension of 8, a
// hidden size of 32, and a vocabulary of 278 API calls, giving 2,224
// embedding parameters and 5,248 LSTM parameters (7,472 total) plus a 32+1
// parameter head. NewModel reproduces those counts for the same
// configuration; see TestParamCountMatchesPaper.
//
// The cell activation is configurable between tanh (the textbook LSTM) and
// softsign (the paper's FPGA-friendly replacement, §III-D); training with
// softsign yields a model whose weights can be executed bit-faithfully by the
// fixed-point kernels with no retraining.
package lstm

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/kfrida1/csdinf/internal/activation"
	"github.com/kfrida1/csdinf/internal/tensor"
)

// Config describes the classifier architecture.
type Config struct {
	// VocabSize is M, the number of distinct sequence items (API calls).
	VocabSize int
	// EmbedDim is O, the embedding size.
	EmbedDim int
	// HiddenSize is H, the LSTM hidden/cell width.
	HiddenSize int
	// CellActivation is applied to the candidate vector and the cell state
	// (tanh in the textbook LSTM, softsign per the paper). Gate activations
	// are always sigmoid.
	CellActivation activation.Kind
}

// PaperConfig returns the exact architecture evaluated in the paper.
func PaperConfig() Config {
	return Config{VocabSize: 278, EmbedDim: 8, HiddenSize: 32, CellActivation: activation.Softsign}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.VocabSize <= 0 {
		return fmt.Errorf("lstm: VocabSize must be positive, got %d", c.VocabSize)
	}
	if c.EmbedDim <= 0 {
		return fmt.Errorf("lstm: EmbedDim must be positive, got %d", c.EmbedDim)
	}
	if c.HiddenSize <= 0 {
		return fmt.Errorf("lstm: HiddenSize must be positive, got %d", c.HiddenSize)
	}
	switch c.CellActivation {
	case activation.Tanh, activation.Softsign:
		return nil
	default:
		return fmt.Errorf("lstm: unsupported cell activation %v", c.CellActivation)
	}
}

// Gate holds the parameters of one LSTM gate: y = act(Wx·x + Wh·h + b).
type Gate struct {
	Wx *tensor.Matrix // HiddenSize × EmbedDim
	Wh *tensor.Matrix // HiddenSize × HiddenSize
	B  tensor.Vector  // HiddenSize
}

// GateName identifies one of the four LSTM gates in exports and diagnostics.
type GateName int

// Gate identifiers, in the order the paper presents them (§III-A).
const (
	GateInput GateName = iota + 1
	GateForget
	GateOutput
	GateCandidate
)

// String returns the conventional single-letter name used in the paper's
// equations: i, f, o, C'.
func (g GateName) String() string {
	switch g {
	case GateInput:
		return "i"
	case GateForget:
		return "f"
	case GateOutput:
		return "o"
	case GateCandidate:
		return "C'"
	default:
		return fmt.Sprintf("GateName(%d)", int(g))
	}
}

// GateNames lists the four gates in canonical order.
var GateNames = []GateName{GateInput, GateForget, GateOutput, GateCandidate}

// Model is the trainable classifier. It is not safe for concurrent mutation;
// concurrent read-only forward passes are safe.
type Model struct {
	cfg Config

	// Embedding is the M×O item-embedding table (the paper's flattened
	// p ∈ R^{M×O} buffer consumed by kernel_preprocess).
	Embedding *tensor.Matrix

	// Gates in canonical order: input, forget, output, candidate.
	Gates [4]Gate

	// FCW and FCB map the final hidden state to a classification logit.
	FCW tensor.Vector
	FCB float64
}

// NewModel constructs a model with Xavier-initialized weights drawn from the
// given seed. The forget-gate bias is initialized to 1, the standard trick
// that lets gradients flow early in training.
func NewModel(cfg Config, seed int64) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	m := &Model{
		cfg:       cfg,
		Embedding: tensor.NewMatrix(cfg.VocabSize, cfg.EmbedDim),
		FCW:       tensor.NewVector(cfg.HiddenSize),
	}
	m.Embedding.XavierFill(rng, cfg.VocabSize, cfg.EmbedDim)
	for g := range m.Gates {
		m.Gates[g] = Gate{
			Wx: tensor.NewMatrix(cfg.HiddenSize, cfg.EmbedDim),
			Wh: tensor.NewMatrix(cfg.HiddenSize, cfg.HiddenSize),
			B:  tensor.NewVector(cfg.HiddenSize),
		}
		m.Gates[g].Wx.XavierFill(rng, cfg.EmbedDim, cfg.HiddenSize)
		m.Gates[g].Wh.XavierFill(rng, cfg.HiddenSize, cfg.HiddenSize)
	}
	// Forget-gate bias at 1.0.
	for i := range m.Gates[1].B {
		m.Gates[1].B[i] = 1
	}
	m.FCW.UniformFill(rng, math.Sqrt(1/float64(cfg.HiddenSize)))
	return m, nil
}

// Config returns the model architecture.
func (m *Model) Config() Config { return m.cfg }

// ParamCount returns (embedding params, LSTM params, head params).
func (m *Model) ParamCount() (embed, lstm, head int) {
	embed = m.cfg.VocabSize * m.cfg.EmbedDim
	perGate := m.cfg.HiddenSize*m.cfg.EmbedDim + m.cfg.HiddenSize*m.cfg.HiddenSize + m.cfg.HiddenSize
	lstm = 4 * perGate
	head = m.cfg.HiddenSize + 1
	return embed, lstm, head
}

// State is the recurrent state carried between timesteps.
type State struct {
	H tensor.Vector // hidden state h_t
	C tensor.Vector // cell state C_t
}

// NewState returns a zero state sized for the model.
func (m *Model) NewState() State {
	return State{H: tensor.NewVector(m.cfg.HiddenSize), C: tensor.NewVector(m.cfg.HiddenSize)}
}

// ErrItemOutOfRange is returned when a sequence contains an item ID outside
// [0, VocabSize).
var ErrItemOutOfRange = errors.New("lstm: sequence item outside vocabulary")

// ErrEmptySequence is returned when a forward pass receives no items.
var ErrEmptySequence = errors.New("lstm: empty sequence")

// Embed writes the embedding of item into dst (length EmbedDim).
func (m *Model) Embed(item int, dst tensor.Vector) error {
	if item < 0 || item >= m.cfg.VocabSize {
		return fmt.Errorf("%w: item %d, vocab %d", ErrItemOutOfRange, item, m.cfg.VocabSize)
	}
	copy(dst, m.Embedding.Row(item))
	return nil
}

// stepCache records one timestep's intermediate values for BPTT.
type stepCache struct {
	item   int
	x      tensor.Vector    // embedding input
	preact [4]tensor.Vector // pre-activation per gate
	gate   [4]tensor.Vector // activated gate values (i, f, o, C')
	c      tensor.Vector    // cell state after update
	actC   tensor.Vector    // cellAct(c)
	h      tensor.Vector    // hidden state
	hPrev  tensor.Vector
	cPrev  tensor.Vector
}

// Step advances the recurrent state by one item, the exact computation the
// FPGA kernels reproduce in fixed point: gate pre-activations, sigmoid gates,
// cell update Ct = f*C(t-1) + i*C', and h = o*cellAct(Ct).
//
// If cache is non-nil the intermediates are recorded for backpropagation.
func (m *Model) Step(item int, st *State, cache *stepCache) error {
	cfg := m.cfg
	x := tensor.NewVector(cfg.EmbedDim)
	if err := m.Embed(item, x); err != nil {
		return err
	}
	cellAct, err := cfg.CellActivation.Func()
	if err != nil {
		return err
	}

	var gates [4]tensor.Vector
	var preacts [4]tensor.Vector
	tmp := tensor.NewVector(cfg.HiddenSize)
	for g := range m.Gates {
		pre := tensor.NewVector(cfg.HiddenSize)
		m.Gates[g].Wx.MulVec(pre, x)
		m.Gates[g].Wh.MulVec(tmp, st.H)
		pre.Add(tmp)
		pre.Add(m.Gates[g].B)
		out := tensor.NewVector(cfg.HiddenSize)
		if GateName(g+1) == GateCandidate {
			for i, p := range pre {
				out[i] = cellAct(p)
			}
		} else {
			for i, p := range pre {
				out[i] = activation.SigmoidF(p)
			}
		}
		preacts[g], gates[g] = pre, out
	}

	hPrev, cPrev := st.H.Clone(), st.C.Clone()
	i, f, o, cand := gates[0], gates[1], gates[2], gates[3]
	newC := tensor.NewVector(cfg.HiddenSize)
	actC := tensor.NewVector(cfg.HiddenSize)
	newH := tensor.NewVector(cfg.HiddenSize)
	for k := range newC {
		newC[k] = f[k]*cPrev[k] + i[k]*cand[k]
		actC[k] = cellAct(newC[k])
		newH[k] = o[k] * actC[k]
	}
	st.C, st.H = newC, newH

	if cache != nil {
		*cache = stepCache{
			item: item, x: x,
			preact: preacts, gate: gates,
			c: newC, actC: actC, h: newH,
			hPrev: hPrev, cPrev: cPrev,
		}
	}
	return nil
}

// Logit maps a hidden state to the classification logit of the FC head.
func (m *Model) Logit(h tensor.Vector) float64 {
	return m.FCW.Dot(h) + m.FCB
}

// Forward runs the full sequence and returns the ransomware probability
// (sigmoid of the head logit at the final timestep).
func (m *Model) Forward(seq []int) (float64, error) {
	if len(seq) == 0 {
		return 0, ErrEmptySequence
	}
	st := m.NewState()
	for _, item := range seq {
		if err := m.Step(item, &st, nil); err != nil {
			return 0, err
		}
	}
	return activation.SigmoidF(m.Logit(st.H)), nil
}

// Predict returns the hard label (true = ransomware) at threshold 0.5 along
// with the probability.
func (m *Model) Predict(seq []int) (bool, float64, error) {
	p, err := m.Forward(seq)
	if err != nil {
		return false, 0, err
	}
	return p >= 0.5, p, nil
}
