package lstm

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"github.com/kfrida1/csdinf/internal/activation"
)

func testConfig() Config {
	return Config{VocabSize: 12, EmbedDim: 4, HiddenSize: 6, CellActivation: activation.Softsign}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{"paper config", PaperConfig(), false},
		{"tanh cell", Config{VocabSize: 5, EmbedDim: 2, HiddenSize: 3, CellActivation: activation.Tanh}, false},
		{"zero vocab", Config{EmbedDim: 2, HiddenSize: 3, CellActivation: activation.Tanh}, true},
		{"zero embed", Config{VocabSize: 5, HiddenSize: 3, CellActivation: activation.Tanh}, true},
		{"zero hidden", Config{VocabSize: 5, EmbedDim: 2, CellActivation: activation.Tanh}, true},
		{"sigmoid cell act", Config{VocabSize: 5, EmbedDim: 2, HiddenSize: 3, CellActivation: activation.Sigmoid}, true},
		{"missing cell act", Config{VocabSize: 5, EmbedDim: 2, HiddenSize: 3}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.cfg.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestParamCountMatchesPaper(t *testing.T) {
	m, err := NewModel(PaperConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	embed, lstmP, head := m.ParamCount()
	if embed != 2224 {
		t.Errorf("embedding params = %d, want 2224 (paper §IV)", embed)
	}
	if lstmP != 5248 {
		t.Errorf("LSTM params = %d, want 5248 (paper §IV)", lstmP)
	}
	if embed+lstmP != 7472 {
		t.Errorf("total = %d, want 7472 (paper §IV)", embed+lstmP)
	}
	if head != 33 {
		t.Errorf("head params = %d, want 32 weights + 1 bias", head)
	}
}

func TestGateNameString(t *testing.T) {
	want := map[GateName]string{GateInput: "i", GateForget: "f", GateOutput: "o", GateCandidate: "C'"}
	for g, s := range want {
		if g.String() != s {
			t.Errorf("GateName %d = %q, want %q", int(g), g.String(), s)
		}
	}
	if GateName(0).String() != "GateName(0)" {
		t.Errorf("unknown gate name formatting broke: %q", GateName(0).String())
	}
}

func TestNewModelDeterministic(t *testing.T) {
	a, err := NewModel(testConfig(), 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewModel(testConfig(), 42)
	if err != nil {
		t.Fatal(err)
	}
	pa, _ := a.Forward([]int{1, 2, 3})
	pb, _ := b.Forward([]int{1, 2, 3})
	if pa != pb {
		t.Fatalf("same seed produced different forward results: %v vs %v", pa, pb)
	}
	c, err := NewModel(testConfig(), 43)
	if err != nil {
		t.Fatal(err)
	}
	pc, _ := c.Forward([]int{1, 2, 3})
	if pa == pc {
		t.Fatal("different seeds produced identical forward results")
	}
}

func TestForgetBiasInitializedToOne(t *testing.T) {
	m, err := NewModel(testConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range m.Gates[1].B {
		if b != 1 {
			t.Fatalf("forget bias [%d] = %v, want 1", i, b)
		}
	}
}

func TestForwardErrors(t *testing.T) {
	m, err := NewModel(testConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Forward(nil); !errors.Is(err, ErrEmptySequence) {
		t.Errorf("Forward(nil) error = %v, want ErrEmptySequence", err)
	}
	if _, err := m.Forward([]int{0, 99}); !errors.Is(err, ErrItemOutOfRange) {
		t.Errorf("Forward(out of range) error = %v, want ErrItemOutOfRange", err)
	}
	if _, err := m.Forward([]int{-1}); !errors.Is(err, ErrItemOutOfRange) {
		t.Errorf("Forward(negative) error = %v, want ErrItemOutOfRange", err)
	}
}

func TestForwardProbabilityRange(t *testing.T) {
	m, err := NewModel(testConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.Forward([]int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	if err != nil {
		t.Fatal(err)
	}
	if p <= 0 || p >= 1 {
		t.Fatalf("probability %v outside (0, 1)", p)
	}
}

func TestPredictThreshold(t *testing.T) {
	m, err := NewModel(testConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	label, p, err := m.Predict([]int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if label != (p >= 0.5) {
		t.Fatalf("Predict label %v inconsistent with probability %v", label, p)
	}
}

// TestGradientCheck verifies analytic BPTT gradients against central
// differences for every parameter group, for both cell activations.
func TestGradientCheck(t *testing.T) {
	for _, act := range []activation.Kind{activation.Softsign, activation.Tanh} {
		t.Run(act.String(), func(t *testing.T) {
			cfg := Config{VocabSize: 7, EmbedDim: 3, HiddenSize: 4, CellActivation: act}
			m, err := NewModel(cfg, 11)
			if err != nil {
				t.Fatal(err)
			}
			seq := []int{1, 4, 2, 6, 0, 3}
			label := true

			grads := m.NewGrads()
			if _, err := m.Backward(seq, label, grads, 0); err != nil {
				t.Fatal(err)
			}

			lossAt := func() float64 {
				p, err := m.Forward(seq)
				if err != nil {
					t.Fatal(err)
				}
				return BCELoss(p, label)
			}

			const h = 1e-6
			check := func(name string, param []float64, grad []float64) {
				t.Helper()
				for j := range param {
					orig := param[j]
					param[j] = orig + h
					up := lossAt()
					param[j] = orig - h
					down := lossAt()
					param[j] = orig
					numeric := (up - down) / (2 * h)
					if diff := math.Abs(numeric - grad[j]); diff > 1e-4*(1+math.Abs(numeric)) {
						t.Errorf("%s[%d]: numeric %v, analytic %v", name, j, numeric, grad[j])
					}
				}
			}

			check("embedding", m.Embedding.Data, grads.Embedding.Data)
			for g := range m.Gates {
				name := GateName(g + 1).String()
				check("wx."+name, m.Gates[g].Wx.Data, grads.Gates[g].Wx.Data)
				check("wh."+name, m.Gates[g].Wh.Data, grads.Gates[g].Wh.Data)
				check("b."+name, m.Gates[g].B, grads.Gates[g].B)
			}
			check("fc.w", m.FCW, grads.FCW)

			// FCB is a scalar field, not a slice; perturb it directly.
			orig := m.FCB
			m.FCB = orig + h
			up := lossAt()
			m.FCB = orig - h
			down := lossAt()
			m.FCB = orig
			numeric := (up - down) / (2 * h)
			if diff := math.Abs(numeric - grads.FCB); diff > 1e-4*(1+math.Abs(numeric)) {
				t.Errorf("fc.b: numeric %v, analytic %v", numeric, grads.FCB)
			}
		})
	}
}

func TestBackwardErrors(t *testing.T) {
	m, err := NewModel(testConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	g := m.NewGrads()
	if _, err := m.Backward(nil, true, g, 0); !errors.Is(err, ErrEmptySequence) {
		t.Errorf("Backward(nil) error = %v, want ErrEmptySequence", err)
	}
	if _, err := m.Backward([]int{500}, true, g, 0); !errors.Is(err, ErrItemOutOfRange) {
		t.Errorf("Backward(OOV) error = %v, want ErrItemOutOfRange", err)
	}
}

func TestBCELoss(t *testing.T) {
	if got := BCELoss(1, true); got > 1e-10 {
		t.Errorf("BCE(1, true) = %v, want ~0", got)
	}
	if got := BCELoss(0, false); got > 1e-10 {
		t.Errorf("BCE(0, false) = %v, want ~0", got)
	}
	if got := BCELoss(0.5, true); math.Abs(got-math.Ln2) > 1e-12 {
		t.Errorf("BCE(0.5, true) = %v, want ln 2", got)
	}
	// Clamping: no infinities.
	if got := BCELoss(0, true); math.IsInf(got, 0) {
		t.Error("BCE(0, true) is infinite; clamping failed")
	}
}

// TestLearnsToySeparation trains on a trivially separable task: sequences
// containing item 1 are positive. A correct model + optimizer pair must reach
// high accuracy quickly.
func TestLearnsToySeparation(t *testing.T) {
	cfg := Config{VocabSize: 8, EmbedDim: 4, HiddenSize: 8, CellActivation: activation.Softsign}
	m, err := NewModel(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	type example struct {
		seq   []int
		label bool
	}
	var examples []example
	for i := 0; i < 40; i++ {
		base := []int{2, 3, 4, 5, 6, 7, 2, 3}
		seq := make([]int, len(base))
		copy(seq, base)
		label := i%2 == 0
		if label {
			seq[i%len(seq)] = 1
		}
		examples = append(examples, example{seq, label})
	}

	opt := &Adam{LR: 0.01}
	grads := m.NewGrads()
	for epoch := 0; epoch < 60; epoch++ {
		grads.Zero()
		for _, ex := range examples {
			if _, err := m.Backward(ex.seq, ex.label, grads, 5); err != nil {
				t.Fatal(err)
			}
		}
		if err := opt.Apply(m, grads, len(examples)); err != nil {
			t.Fatal(err)
		}
	}

	correct := 0
	for _, ex := range examples {
		got, _, err := m.Predict(ex.seq)
		if err != nil {
			t.Fatal(err)
		}
		if got == ex.label {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(examples)); acc < 0.95 {
		t.Fatalf("toy task accuracy = %v, want >= 0.95", acc)
	}
}

func TestSGDMomentumLearns(t *testing.T) {
	cfg := testConfig()
	m, err := NewModel(cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	seq := []int{1, 2, 3, 4}
	grads := m.NewGrads()
	opt := &SGD{LR: 0.5, Momentum: 0.9}
	var first, last float64
	for i := 0; i < 30; i++ {
		grads.Zero()
		res, err := m.Backward(seq, true, grads, 0)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = res.Loss
		}
		last = res.Loss
		if err := opt.Apply(m, grads, 1); err != nil {
			t.Fatal(err)
		}
	}
	if last >= first {
		t.Fatalf("SGD+momentum did not reduce loss: first %v, last %v", first, last)
	}
}

func TestOptimizerBatchSizeValidation(t *testing.T) {
	m, err := NewModel(testConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	g := m.NewGrads()
	if err := (&SGD{LR: 0.1}).Apply(m, g, 0); err == nil {
		t.Error("SGD.Apply(batch=0) expected error")
	}
	if err := (&Adam{}).Apply(m, g, -1); err == nil {
		t.Error("Adam.Apply(batch=-1) expected error")
	}
}

func TestGradsZero(t *testing.T) {
	m, err := NewModel(testConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	g := m.NewGrads()
	if _, err := m.Backward([]int{1, 2}, true, g, 0); err != nil {
		t.Fatal(err)
	}
	g.Zero()
	for _, v := range g.Embedding.Data {
		if v != 0 {
			t.Fatal("Zero left embedding gradient nonzero")
		}
	}
	if g.FCB != 0 {
		t.Fatal("Zero left FCB gradient nonzero")
	}
}

// Property: hidden state stays strictly inside (-1, 1) with softsign cell
// activation — |h| = |o·softsign(C)| < 1 since both factors are < 1.
func TestPropHiddenStateBounded(t *testing.T) {
	m, err := NewModel(testConfig(), 21)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		st := m.NewState()
		for _, r := range raw {
			if err := m.Step(int(r)%m.cfg.VocabSize, &st, nil); err != nil {
				return false
			}
		}
		for _, h := range st.H {
			if h <= -1 || h >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Forward is a pure function of the sequence.
func TestPropForwardDeterministic(t *testing.T) {
	m, err := NewModel(testConfig(), 23)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		seq := make([]int, len(raw))
		for i, r := range raw {
			seq[i] = int(r) % m.cfg.VocabSize
		}
		p1, err1 := m.Forward(seq)
		p2, err2 := m.Forward(seq)
		return err1 == nil && err2 == nil && p1 == p2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkForwardPaperModel(b *testing.B) {
	m, err := NewModel(PaperConfig(), 1)
	if err != nil {
		b.Fatal(err)
	}
	seq := make([]int, 100)
	for i := range seq {
		seq[i] = i % 278
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Forward(seq); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBackwardPaperModel(b *testing.B) {
	m, err := NewModel(PaperConfig(), 1)
	if err != nil {
		b.Fatal(err)
	}
	seq := make([]int, 100)
	for i := range seq {
		seq[i] = i % 278
	}
	grads := m.NewGrads()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		grads.Zero()
		if _, err := m.Backward(seq, true, grads, 5); err != nil {
			b.Fatal(err)
		}
	}
}
