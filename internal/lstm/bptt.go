package lstm

import (
	"fmt"
	"math"

	"github.com/kfrida1/csdinf/internal/activation"
	"github.com/kfrida1/csdinf/internal/tensor"
)

// Grads holds gradients with the same shapes as Model's parameters.
type Grads struct {
	Embedding *tensor.Matrix
	Gates     [4]Gate
	FCW       tensor.Vector
	FCB       float64
}

// NewGrads returns a zeroed gradient accumulator for model m.
func (m *Model) NewGrads() *Grads {
	g := &Grads{
		Embedding: tensor.NewMatrix(m.cfg.VocabSize, m.cfg.EmbedDim),
		FCW:       tensor.NewVector(m.cfg.HiddenSize),
	}
	for i := range g.Gates {
		g.Gates[i] = Gate{
			Wx: tensor.NewMatrix(m.cfg.HiddenSize, m.cfg.EmbedDim),
			Wh: tensor.NewMatrix(m.cfg.HiddenSize, m.cfg.HiddenSize),
			B:  tensor.NewVector(m.cfg.HiddenSize),
		}
	}
	return g
}

// Zero clears all accumulated gradients in place.
func (g *Grads) Zero() {
	g.Embedding.Zero()
	for i := range g.Gates {
		g.Gates[i].Wx.Zero()
		g.Gates[i].Wh.Zero()
		g.Gates[i].B.Zero()
	}
	g.FCW.Zero()
	g.FCB = 0
}

// BCELoss returns the binary cross-entropy of probability p against the
// boolean label, clamped away from log(0).
func BCELoss(p float64, label bool) float64 {
	const eps = 1e-12
	p = math.Min(math.Max(p, eps), 1-eps)
	if label {
		return -math.Log(p)
	}
	return -math.Log(1 - p)
}

// BackwardResult reports the outcome of one example's forward+backward pass.
type BackwardResult struct {
	Prob float64 // predicted ransomware probability
	Loss float64 // binary cross-entropy
}

// Backward runs a forward pass over seq, then full backpropagation through
// time of the binary cross-entropy against label, accumulating into grads.
// Per-timestep state gradients are norm-clipped at clipNorm (<= 0 disables
// clipping) to keep 100-step BPTT stable.
func (m *Model) Backward(seq []int, label bool, grads *Grads, clipNorm float64) (BackwardResult, error) {
	if len(seq) == 0 {
		return BackwardResult{}, ErrEmptySequence
	}
	cfg := m.cfg

	// Forward with caches.
	caches := make([]stepCache, len(seq))
	st := m.NewState()
	for t, item := range seq {
		if err := m.Step(item, &st, &caches[t]); err != nil {
			return BackwardResult{}, fmt.Errorf("timestep %d: %w", t, err)
		}
	}
	logit := m.Logit(st.H)
	prob := activation.SigmoidF(logit)
	y := 0.0
	if label {
		y = 1.0
	}

	// d(BCE)/d(logit) for a sigmoid output is simply (p - y).
	dLogit := prob - y

	// Head gradients.
	for i := range grads.FCW {
		grads.FCW[i] += dLogit * st.H[i]
	}
	grads.FCB += dLogit

	// Backpropagation through time.
	dh := tensor.NewVector(cfg.HiddenSize) // dLoss/dh_t
	dc := tensor.NewVector(cfg.HiddenSize) // dLoss/dC_t
	for i := range dh {
		dh[i] = dLogit * m.FCW[i]
	}

	dx := tensor.NewVector(cfg.EmbedDim)
	dhNext := tensor.NewVector(cfg.HiddenSize)
	tmpH := tensor.NewVector(cfg.HiddenSize)
	tmpX := tensor.NewVector(cfg.EmbedDim)
	dPre := [4]tensor.Vector{}
	for g := range dPre {
		dPre[g] = tensor.NewVector(cfg.HiddenSize)
	}

	for t := len(seq) - 1; t >= 0; t-- {
		c := &caches[t]
		i, f, o, cand := c.gate[0], c.gate[1], c.gate[2], c.gate[3]

		if clipNorm > 0 {
			dh.ClipNorm(clipNorm)
			dc.ClipNorm(clipNorm)
		}

		// h = o * act(C): split dh into the output gate and the cell path.
		for k := 0; k < cfg.HiddenSize; k++ {
			dO := dh[k] * c.actC[k]
			dActC := dh[k] * o[k]
			dc[k] += dActC * m.cellActDeriv(c.c[k], c.actC[k])

			dI := dc[k] * cand[k]
			dF := dc[k] * c.cPrev[k]
			dCand := dc[k] * i[k]

			// Gate pre-activation gradients.
			dPre[0][k] = dI * i[k] * (1 - i[k])
			dPre[1][k] = dF * f[k] * (1 - f[k])
			dPre[2][k] = dO * o[k] * (1 - o[k])
			dPre[3][k] = dCand * m.cellActDerivPre(c.preact[3][k], cand[k])
		}

		// Parameter gradients and upstream input/hidden gradients.
		dx.Zero()
		dhNext.Zero()
		for g := range m.Gates {
			grads.Gates[g].Wx.AddOuter(dPre[g], c.x)
			grads.Gates[g].Wh.AddOuter(dPre[g], c.hPrev)
			grads.Gates[g].B.Add(dPre[g])

			m.Gates[g].Wx.MulVecT(tmpX, dPre[g])
			dx.Add(tmpX)
			m.Gates[g].Wh.MulVecT(tmpH, dPre[g])
			dhNext.Add(tmpH)
		}

		// Embedding gradient for this item.
		grads.Embedding.Row(c.item).Add(dx)

		// Propagate to t-1: dC flows through the forget gate.
		for k := 0; k < cfg.HiddenSize; k++ {
			dc[k] *= f[k]
		}
		copy(dh, dhNext)
	}

	return BackwardResult{Prob: prob, Loss: BCELoss(prob, label)}, nil
}

// cellActDeriv evaluates d(cellAct)/dz at the cell state, given the raw cell
// value and its activated output (conventions differ per kind; see
// activation.Kind.Derivative).
func (m *Model) cellActDeriv(raw, out float64) float64 {
	switch m.cfg.CellActivation {
	case activation.Tanh:
		return 1 - out*out
	case activation.Softsign:
		d := 1 + math.Abs(raw)
		return 1 / (d * d)
	default:
		// Validate guarantees one of the above.
		panic("lstm: unreachable cell activation")
	}
}

// cellActDerivPre is cellActDeriv for the candidate pre-activation.
func (m *Model) cellActDerivPre(pre, out float64) float64 {
	return m.cellActDeriv(pre, out)
}
