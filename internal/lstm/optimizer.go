package lstm

import (
	"fmt"
	"math"
)

// Optimizer updates model parameters from accumulated gradients.
type Optimizer interface {
	// Apply performs one update of model from grads, where grads hold the
	// *sum* over batchSize examples. Implementations divide by batchSize.
	Apply(m *Model, grads *Grads, batchSize int) error
}

// paramViews returns aligned flat views over a model's parameters and a
// gradient accumulator's entries, in a stable order. Optimizer state arrays
// index into the same order.
func paramViews(m *Model, g *Grads) (params, grads [][]float64) {
	params = append(params, m.Embedding.Data)
	grads = append(grads, g.Embedding.Data)
	for i := range m.Gates {
		params = append(params, m.Gates[i].Wx.Data, m.Gates[i].Wh.Data, m.Gates[i].B)
		grads = append(grads, g.Gates[i].Wx.Data, g.Gates[i].Wh.Data, g.Gates[i].B)
	}
	params = append(params, m.FCW, []float64{m.FCB})
	grads = append(grads, g.FCW, []float64{g.FCB})
	return params, grads
}

// SGD is stochastic gradient descent with optional classical momentum.
type SGD struct {
	LR       float64
	Momentum float64

	velocity [][]float64
}

// Apply implements Optimizer.
func (s *SGD) Apply(m *Model, grads *Grads, batchSize int) error {
	if batchSize <= 0 {
		return fmt.Errorf("lstm: batch size must be positive, got %d", batchSize)
	}
	params, gs := paramViews(m, grads)
	if s.velocity == nil && s.Momentum != 0 {
		s.velocity = make([][]float64, len(params))
		for i, p := range params {
			s.velocity[i] = make([]float64, len(p))
		}
	}
	inv := 1 / float64(batchSize)
	for i, p := range params {
		g := gs[i]
		for j := range p {
			step := s.LR * g[j] * inv
			if s.Momentum != 0 {
				s.velocity[i][j] = s.Momentum*s.velocity[i][j] + step
				step = s.velocity[i][j]
			}
			p[j] -= step
		}
	}
	// FCB is copied through a one-element view; write it back.
	m.FCB = params[len(params)-1][0]
	return nil
}

// Adam implements the Adam optimizer (Kingma & Ba 2015), the optimizer used
// for all experiments here: the paper trains offline in TensorFlow, whose
// default for this model class is Adam.
type Adam struct {
	LR      float64 // defaults to 1e-3 when zero
	Beta1   float64 // defaults to 0.9 when zero
	Beta2   float64 // defaults to 0.999 when zero
	Epsilon float64 // defaults to 1e-8 when zero

	t    int
	mom  [][]float64
	vel  [][]float64
	init bool
}

func (a *Adam) defaults() {
	if a.LR == 0 {
		a.LR = 1e-3
	}
	if a.Beta1 == 0 {
		a.Beta1 = 0.9
	}
	if a.Beta2 == 0 {
		a.Beta2 = 0.999
	}
	if a.Epsilon == 0 {
		a.Epsilon = 1e-8
	}
}

// Apply implements Optimizer.
func (a *Adam) Apply(m *Model, grads *Grads, batchSize int) error {
	if batchSize <= 0 {
		return fmt.Errorf("lstm: batch size must be positive, got %d", batchSize)
	}
	a.defaults()
	params, gs := paramViews(m, grads)
	if !a.init {
		a.mom = make([][]float64, len(params))
		a.vel = make([][]float64, len(params))
		for i, p := range params {
			a.mom[i] = make([]float64, len(p))
			a.vel[i] = make([]float64, len(p))
		}
		a.init = true
	}
	a.t++
	inv := 1 / float64(batchSize)
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range params {
		g := gs[i]
		mo, ve := a.mom[i], a.vel[i]
		for j := range p {
			gj := g[j] * inv
			mo[j] = a.Beta1*mo[j] + (1-a.Beta1)*gj
			ve[j] = a.Beta2*ve[j] + (1-a.Beta2)*gj*gj
			mHat := mo[j] / bc1
			vHat := ve[j] / bc2
			p[j] -= a.LR * mHat / (math.Sqrt(vHat) + a.Epsilon)
		}
	}
	m.FCB = params[len(params)-1][0]
	return nil
}
