package lstm

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/kfrida1/csdinf/internal/activation"
)

// The text weight format mirrors the paper's offline-to-host handoff: after
// training converges, the weights and biases are extracted (the paper uses
// TensorFlow's get_weights(), which returns the input weights W_x, the
// recurrent weights W_h, and the bias terms) and written to a text file that
// the host program ingests while initializing the FPGA (§III-A).
//
// Layout (whitespace-separated, one logical record per line):
//
//	csdinf-weights v1
//	config vocab <M> embed <O> hidden <H> cellact <name>
//	embedding <M*O floats, row-major>
//	gate <i|f|o|C'> wx <H*O floats>
//	gate <i|f|o|C'> wh <H*H floats>
//	gate <i|f|o|C'> b <H floats>
//	fc w <H floats>
//	fc b <float>

// formatHeader is the magic first line of the weight text format.
const formatHeader = "csdinf-weights v1"

// ErrBadWeightFile is wrapped by all weight-parsing failures so callers can
// match the class of error with errors.Is.
var ErrBadWeightFile = errors.New("lstm: malformed weight file")

// WriteText serializes the model to the text weight format. Floats are
// written with enough digits for exact float64 round-tripping.
func (m *Model) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	actName := m.cfg.CellActivation.String()
	fmt.Fprintln(bw, formatHeader)
	fmt.Fprintf(bw, "config vocab %d embed %d hidden %d cellact %s\n",
		m.cfg.VocabSize, m.cfg.EmbedDim, m.cfg.HiddenSize, actName)

	writeFloats := func(prefix string, vals []float64) {
		bw.WriteString(prefix)
		for _, v := range vals {
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatFloat(v, 'g', 17, 64))
		}
		bw.WriteByte('\n')
	}
	writeFloats("embedding", m.Embedding.Data)
	for g, gate := range m.Gates {
		name := GateName(g + 1).String()
		writeFloats("gate "+name+" wx", gate.Wx.Data)
		writeFloats("gate "+name+" wh", gate.Wh.Data)
		writeFloats("gate "+name+" b", gate.B)
	}
	writeFloats("fc w", m.FCW)
	writeFloats("fc b", []float64{m.FCB})
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("lstm: write weights: %w", err)
	}
	return nil
}

// ReadText parses a model from the text weight format.
func ReadText(r io.Reader) (*Model, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)

	if !sc.Scan() {
		return nil, fmt.Errorf("%w: empty input", ErrBadWeightFile)
	}
	if got := strings.TrimSpace(sc.Text()); got != formatHeader {
		return nil, fmt.Errorf("%w: bad header %q", ErrBadWeightFile, got)
	}

	if !sc.Scan() {
		return nil, fmt.Errorf("%w: missing config line", ErrBadWeightFile)
	}
	cfg, err := parseConfigLine(sc.Text())
	if err != nil {
		return nil, err
	}
	m, err := NewModel(cfg, 0)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadWeightFile, err)
	}

	readFloats := func(wantPrefix []string, dst []float64) error {
		if !sc.Scan() {
			return fmt.Errorf("%w: missing %q record", ErrBadWeightFile, strings.Join(wantPrefix, " "))
		}
		fields := strings.Fields(sc.Text())
		if len(fields) < len(wantPrefix) {
			return fmt.Errorf("%w: truncated record %q", ErrBadWeightFile, sc.Text())
		}
		for i, p := range wantPrefix {
			if fields[i] != p {
				return fmt.Errorf("%w: expected record %q, got %q",
					ErrBadWeightFile, strings.Join(wantPrefix, " "), fields[i])
			}
		}
		vals := fields[len(wantPrefix):]
		if len(vals) != len(dst) {
			return fmt.Errorf("%w: record %q has %d values, want %d",
				ErrBadWeightFile, strings.Join(wantPrefix, " "), len(vals), len(dst))
		}
		for i, s := range vals {
			f, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return fmt.Errorf("%w: bad float %q in %q: %v",
					ErrBadWeightFile, s, strings.Join(wantPrefix, " "), err)
			}
			dst[i] = f
		}
		return nil
	}

	if err := readFloats([]string{"embedding"}, m.Embedding.Data); err != nil {
		return nil, err
	}
	for g := range m.Gates {
		name := GateName(g + 1).String()
		if err := readFloats([]string{"gate", name, "wx"}, m.Gates[g].Wx.Data); err != nil {
			return nil, err
		}
		if err := readFloats([]string{"gate", name, "wh"}, m.Gates[g].Wh.Data); err != nil {
			return nil, err
		}
		if err := readFloats([]string{"gate", name, "b"}, m.Gates[g].B); err != nil {
			return nil, err
		}
	}
	if err := readFloats([]string{"fc", "w"}, m.FCW); err != nil {
		return nil, err
	}
	fcb := make([]float64, 1)
	if err := readFloats([]string{"fc", "b"}, fcb); err != nil {
		return nil, err
	}
	m.FCB = fcb[0]
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("lstm: read weights: %w", err)
	}
	return m, nil
}

func parseConfigLine(line string) (Config, error) {
	fields := strings.Fields(line)
	if len(fields) != 9 || fields[0] != "config" {
		return Config{}, fmt.Errorf("%w: bad config line %q", ErrBadWeightFile, line)
	}
	var cfg Config
	keys := map[string]*int{"vocab": &cfg.VocabSize, "embed": &cfg.EmbedDim, "hidden": &cfg.HiddenSize}
	for i := 1; i < 7; i += 2 {
		p, ok := keys[fields[i]]
		if !ok {
			return Config{}, fmt.Errorf("%w: unknown config key %q", ErrBadWeightFile, fields[i])
		}
		n, err := strconv.Atoi(fields[i+1])
		if err != nil {
			return Config{}, fmt.Errorf("%w: bad config value %q: %v", ErrBadWeightFile, fields[i+1], err)
		}
		*p = n
	}
	if fields[7] != "cellact" {
		return Config{}, fmt.Errorf("%w: expected cellact key, got %q", ErrBadWeightFile, fields[7])
	}
	switch fields[8] {
	case "tanh":
		cfg.CellActivation = activation.Tanh
	case "softsign":
		cfg.CellActivation = activation.Softsign
	default:
		return Config{}, fmt.Errorf("%w: unknown cell activation %q", ErrBadWeightFile, fields[8])
	}
	return cfg, nil
}
