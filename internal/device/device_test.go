package device

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/kfrida1/csdinf/internal/eventlog"
	"github.com/kfrida1/csdinf/internal/telemetry"
)

func TestRegisterAssignsStableSortedIDs(t *testing.T) {
	r := NewRegistry(Config{})
	var ids []string
	for i := 0; i < 12; i++ {
		d := r.Register()
		if d.Index() != i {
			t.Fatalf("device %d: Index() = %d", i, d.Index())
		}
		ids = append(ids, string(d.ID()))
	}
	// Zero-padded ordinals: lexicographic order == registration order, the
	// property every sorted-by-ID listing in the stack relies on.
	if !sort.StringsAreSorted(ids) {
		t.Fatalf("IDs not lexicographically ordered: %v", ids)
	}
	if ids[0] != "csd-000" || ids[11] != "csd-011" {
		t.Fatalf("unexpected IDs: %v", ids)
	}
	if got, ok := r.Get(ID("csd-007")); !ok || got.Index() != 7 {
		t.Fatalf("Get(csd-007) = %v, %v", got, ok)
	}
	if r.Len() != 12 {
		t.Fatalf("Len() = %d", r.Len())
	}
}

// TestLifecycle walks the full state machine: provisioning → ready →
// draining → ready (rejoin) → failed → ready (rejoin), asserting watcher
// delivery, event emission, and rejection of invalid edges.
func TestLifecycle(t *testing.T) {
	events := eventlog.New(eventlog.Config{})
	r := NewRegistry(Config{Events: events})
	d := r.Register()

	var changes []Change
	cancel := r.Watch(func(c Change) { changes = append(changes, c) })
	defer cancel()

	if d.State() != Provisioning {
		t.Fatalf("fresh device state = %s", d.State())
	}
	if err := d.Drain("too-early"); err == nil {
		t.Fatal("Drain from provisioning should fail")
	}
	steps := []struct {
		op   func(string) error
		arg  string
		want State
	}{
		{d.SetReady, "deployed", Ready},
		{d.Drain, "reflash", Draining},
		{d.SetReady, "reflash-done", Ready},
		{d.Fail, "ecc-storm", Failed},
		{d.SetReady, "repaired", Ready},
	}
	for i, s := range steps {
		if err := s.op(s.arg); err != nil {
			t.Fatalf("step %d (%s): %v", i, s.arg, err)
		}
		if d.State() != s.want {
			t.Fatalf("step %d: state = %s, want %s", i, d.State(), s.want)
		}
	}
	if err := d.SetReady("again"); err == nil {
		t.Fatal("self-transition Ready → Ready should fail")
	}

	if len(changes) != len(steps) {
		t.Fatalf("watcher saw %d changes, want %d", len(changes), len(steps))
	}
	for i, c := range changes {
		if c.Device != d.ID() || c.To != steps[i].want || c.Reason != steps[i].arg {
			t.Fatalf("change %d = %+v", i, c)
		}
		if c.Seq != int64(i+1) {
			t.Fatalf("change %d Seq = %d", i, c.Seq)
		}
	}

	var wire bytes.Buffer
	for _, e := range events.Recent() {
		wire.Write(e.AppendJSON(nil))
		wire.WriteByte('\n')
	}
	out := wire.String()
	for _, want := range []string{
		`"event":"device.register"`,
		`"event":"device.ready"`,
		`"event":"device.drain"`,
		`"event":"device.rejoin"`, // draining → ready and failed → ready
		`"event":"device.fail"`,
		`"device":"csd-000"`,
		`"reason":"ecc-storm"`,
	} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("event stream missing %s:\n%s", want, out)
		}
	}
}

func TestWatchCancelStopsDelivery(t *testing.T) {
	r := NewRegistry(Config{})
	d := r.Register()
	n := 0
	cancel := r.Watch(func(Change) { n++ })
	if err := d.SetReady(""); err != nil {
		t.Fatal(err)
	}
	cancel()
	if err := d.Drain(""); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("watcher fired %d times after cancel, want 1", n)
	}
}

func TestReadyListsOnlyReadyDevices(t *testing.T) {
	r := NewRegistry(Config{})
	for i := 0; i < 4; i++ {
		r.Register()
	}
	devs := r.List()
	devs[0].SetReady("")
	devs[2].SetReady("")
	devs[2].Drain("")
	devs[3].SetReady("")
	devs[3].Fail("")
	ready := r.Ready()
	if len(ready) != 1 || ready[0].ID() != devs[0].ID() {
		t.Fatalf("Ready() = %v", ready)
	}
}

func TestHealthDegradesWithoutReadyDevices(t *testing.T) {
	r := NewRegistry(Config{})
	if status, ready := r.Health(); status != "degraded" || ready {
		t.Fatalf("empty registry Health() = %q/%v, want degraded/false", status, ready)
	}
	d := r.Register()
	if status, ready := r.Health(); status != "degraded" || ready {
		t.Fatalf("provisioning-only Health() = %q/%v, want degraded/false", status, ready)
	}
	d.SetReady("")
	if status, ready := r.Health(); status != "ok" || !ready {
		t.Fatalf("Health() with a ready device = %q/%v, want ok/true", status, ready)
	}
	d.Fail("blown-fuse")
	if status, ready := r.Health(); status != "degraded" || ready {
		t.Fatalf("Health() after last device failed = %q/%v, want degraded/false", status, ready)
	}
	var nilReg *Registry
	if status, ready := nilReg.Health(); status != "ok" || !ready {
		t.Fatalf("nil registry Health() = %q/%v, want ok/true", status, ready)
	}
}

func TestScoreAccounting(t *testing.T) {
	r := NewRegistry(Config{})
	d := r.Register()
	if d.Score() != 0 {
		t.Fatalf("fresh Score = %d", d.Score())
	}
	// Before any busy sample, queued work costs the floor estimate.
	d.IncPending()
	if d.Score() != estFloor {
		t.Fatalf("Score with 1 pending = %d, want %d", d.Score(), estFloor)
	}
	d.AddBusy(int64(4 * time.Millisecond))
	if d.Busy() != int64(4*time.Millisecond) {
		t.Fatalf("Busy = %d", d.Busy())
	}
	want := int64(4*time.Millisecond) + int64(4*time.Millisecond)
	if d.Score() != want {
		t.Fatalf("Score = %d, want busy+est = %d", d.Score(), want)
	}
	d.DecPending()
	if d.Pending() != 0 {
		t.Fatalf("Pending = %d", d.Pending())
	}
}

func TestRegistryStatsSortedAndTelemetryLabeled(t *testing.T) {
	reg := telemetry.NewRegistry()
	r := NewRegistry(Config{Telemetry: reg})
	for i := 0; i < 3; i++ {
		d := r.Register()
		d.SetReady("")
		d.AddBusy(int64(i+1) * int64(time.Millisecond))
	}
	stats := r.Stats()
	if len(stats) != 3 {
		t.Fatalf("%d stats", len(stats))
	}
	for i, s := range stats {
		if want := ID(fmt.Sprintf("csd-%03d", i)); s.ID != want {
			t.Fatalf("stats[%d].ID = %s, want %s", i, s.ID, want)
		}
		if s.State != "ready" || s.BusyTime != time.Duration(i+1)*time.Millisecond {
			t.Fatalf("stats[%d] = %+v", i, s)
		}
	}
	var b bytes.Buffer
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`device_busy_nanoseconds_total{device="csd-002"}`,
		`device_state{device="csd-001"}`,
		`device_transitions_total{device="csd-000"}`,
	} {
		if !bytes.Contains(b.Bytes(), []byte(want)) {
			t.Errorf("exposition missing %s", want)
		}
	}
}

// TestConcurrentTransitions hammers one device's lifecycle from many
// goroutines under -race: exactly one of each competing transition wins and
// the watcher sequence numbers stay dense.
func TestConcurrentTransitions(t *testing.T) {
	r := NewRegistry(Config{})
	d := r.Register()
	d.SetReady("")

	var mu sync.Mutex
	var seqs []int64
	cancel := r.Watch(func(c Change) {
		mu.Lock()
		seqs = append(seqs, c.Seq)
		mu.Unlock()
	})
	defer cancel()

	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each iteration tries a full drain/rejoin cycle; losers get
			// validation errors, never a corrupt state.
			d.Drain("stress")
			d.SetReady("stress")
		}()
	}
	wg.Wait()
	if s := d.State(); s != Ready && s != Draining {
		t.Fatalf("terminal state %s", s)
	}
	mu.Lock()
	defer mu.Unlock()
	for i := 1; i < len(seqs); i++ {
		if seqs[i] != seqs[i-1]+1 {
			t.Fatalf("watcher seq gap: %v", seqs)
		}
	}
}
