// Package device is the shared device registry: the single owner of CSD
// identity, lifecycle, and capacity accounting for every layer of the
// stack.
//
// The paper evaluates one SmartSSD; a data center runs racks of them, and
// at that scale "which device" stops being a loop index. Placement needs
// stable identities that survive drains and rejoins, telemetry and trace
// tracks need labels that mean the same thing in every layer, incident
// forensics needs to attribute verdicts to the drive that produced them,
// and maintenance flows (drain for reflash, fail on ECC storm, rejoin
// after repair) need a lifecycle state machine that every scheduler
// observes instead of reimplementing. Before this package each of those
// concerns lived privately inside internal/serve; now serve, node, fleet,
// incident, and the event log all consume the same registry.
//
// Identity: a Device has a stable ID ("csd-000", "csd-001", ...) assigned
// at registration and never reused. The zero-padded ordinal makes
// lexicographic order equal registration order, so sorted-by-ID output is
// deterministic at any fleet size.
//
// Lifecycle: Provisioning → Ready ⇄ Draining, with Failed reachable from
// any live state and Rejoin returning a drained or failed device to Ready.
// Transitions are validated, counted, published to watchers, and emitted
// as device.* events with the device attribution filled in.
//
// Accounting: the registry owns each device's simulated-busy counter,
// outstanding-request gauge, and per-request cost EWMA. Schedulers at any
// layer read one Score — accumulated simulated busy time plus the
// estimated cost of the backlog — so "least loaded" means the same thing
// to the node fan-out, the serve queues, and the fleet placer.
//
// All methods are safe for concurrent use.
package device

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/kfrida1/csdinf/internal/eventlog"
	"github.com/kfrida1/csdinf/internal/telemetry"
)

// ID is a stable device identity. IDs are assigned at registration
// ("csd-000", "csd-001", ...) and never reused; zero-padding makes
// lexicographic order equal registration order.
type ID string

// State is a device lifecycle state.
type State uint8

// Lifecycle states. The zero value is Provisioning: a registered device
// serves nothing until its owner marks it Ready.
const (
	// Provisioning: registered, engine not yet deployed or warmed.
	Provisioning State = iota
	// Ready: serving; eligible for placement.
	Ready
	// Draining: finishing queued work but accepting no new placements —
	// the graceful maintenance path (reflash, firmware update).
	Draining
	// Failed: out of service; in-flight work must be re-placed elsewhere.
	Failed
)

// String returns the lowercase state name.
func (s State) String() string {
	switch s {
	case Provisioning:
		return "provisioning"
	case Ready:
		return "ready"
	case Draining:
		return "draining"
	case Failed:
		return "failed"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Event names emitted by the registry, one per lifecycle edge. They are
// named constants so the eventname analyzer can pin the vocabulary.
const (
	EventRegister = "device.register"
	EventReady    = "device.ready"
	EventDrain    = "device.drain"
	EventFail     = "device.fail"
	EventRejoin   = "device.rejoin"
)

// Change describes one lifecycle transition, as delivered to watchers.
type Change struct {
	// Device is the transitioning device's ID.
	Device ID
	// From and To are the states on either side of the edge.
	From, To State
	// Reason is the operator- or scheduler-supplied cause ("reflash",
	// "simulated-fault", ...); may be empty.
	Reason string
	// Seq orders changes registry-wide, starting at 1.
	Seq int64
	// Time is when the transition committed.
	Time time.Time
}

// Config controls a Registry.
type Config struct {
	// Prefix names registered devices: "<prefix>-<ordinal>". Empty
	// defaults to "csd".
	Prefix string
	// Telemetry, when non-nil, receives the registry's per-device
	// instruments: device_busy_nanoseconds_total, device_pending_requests,
	// device_state (numeric State), and device_transitions_total — all
	// labeled device="<id>". With a nil registry the same instruments
	// still back the accessors, just unexported.
	Telemetry *telemetry.Registry
	// Events, when non-nil, receives one device.* event per registration
	// and lifecycle transition, with the event's device attribution set.
	Events *eventlog.Logger
	// Clock overrides time.Now for tests.
	Clock func() time.Time
}

// Registry owns a set of devices. The zero value is not usable; build one
// with NewRegistry.
type Registry struct {
	cfg Config

	mu       sync.Mutex
	devices  map[ID]*Device
	order    []*Device // registration order == ID order
	seq      int64
	watchers map[int]func(Change)
	nextW    int
}

// NewRegistry builds an empty registry.
func NewRegistry(cfg Config) *Registry {
	if cfg.Prefix == "" {
		cfg.Prefix = "csd"
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &Registry{
		cfg:      cfg,
		devices:  make(map[ID]*Device),
		watchers: make(map[int]func(Change)),
	}
}

// Device is one registered drive: identity, lifecycle, and capacity
// accounting. Devices are created by Registry.Register and live for the
// registry's lifetime — a failed device keeps its identity and may rejoin.
type Device struct {
	id  ID
	idx int
	reg *Registry

	state atomic.Uint32
	est   atomic.Int64 // EWMA per-request simulated cost, ns

	busy        *telemetry.Counter // accumulated simulated device time, ns
	pending     *telemetry.Gauge   // requests placed but not completed
	stateGauge  *telemetry.Gauge   // numeric State, for dashboards
	transitions *telemetry.Counter // lifecycle edges taken
}

// Register adds a fresh device in the Provisioning state and returns it.
func (r *Registry) Register() *Device {
	r.mu.Lock()
	idx := len(r.order)
	id := ID(fmt.Sprintf("%s-%03d", r.cfg.Prefix, idx))
	reg := r.cfg.Telemetry
	dl := telemetry.L("device", string(id))
	d := &Device{
		id: id, idx: idx, reg: r,
		busy: reg.Counter("device_busy_nanoseconds_total",
			"Accumulated simulated device time.", dl),
		pending: reg.Gauge("device_pending_requests",
			"Requests placed on the device but not yet completed.", dl),
		stateGauge: reg.Gauge("device_state",
			"Lifecycle state (0 provisioning, 1 ready, 2 draining, 3 failed).", dl),
		transitions: reg.Counter("device_transitions_total",
			"Lifecycle transitions taken.", dl),
	}
	r.devices[id] = d
	r.order = append(r.order, d)
	r.mu.Unlock()
	r.cfg.Events.LogDevice(context.Background(), eventlog.LevelInfo, "device", EventRegister,
		string(id), eventlog.F("index", idx))
	return d
}

// Get returns the device with the given ID.
func (r *Registry) Get(id ID) (*Device, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	d, ok := r.devices[id]
	return d, ok
}

// Len returns the number of registered devices.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.order)
}

// List returns every registered device in ID order.
func (r *Registry) List() []*Device {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Device(nil), r.order...)
}

// Ready returns the devices currently in the Ready state, in ID order.
func (r *Registry) Ready() []*Device {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Device, 0, len(r.order))
	for _, d := range r.order {
		if d.State() == Ready {
			out = append(out, d)
		}
	}
	return out
}

// Health judges the registry as a serving pool for liveness probes: "ok"
// (and ready) while at least one device is Ready, "degraded" (and not
// ready) once every device has drained or failed — wire it to
// telemetry.HTTPOptions.Health so /healthz?ready=1 answers 503 instead of
// pretending an empty pool can serve.
func (r *Registry) Health() (status string, ready bool) {
	if r == nil {
		return "ok", true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, d := range r.order {
		if d.State() == Ready {
			return "ok", true
		}
	}
	return "degraded", false
}

// Watch registers a lifecycle callback and returns its cancel function.
// Callbacks run synchronously on the transitioning goroutine, in Seq
// order, after the transition has committed; keep them fast and do not
// call back into the same device's transition methods from inside one.
func (r *Registry) Watch(fn func(Change)) (cancel func()) {
	r.mu.Lock()
	id := r.nextW
	r.nextW++
	r.watchers[id] = fn
	r.mu.Unlock()
	return func() {
		r.mu.Lock()
		delete(r.watchers, id)
		r.mu.Unlock()
	}
}

// ID returns the device's stable identity.
func (d *Device) ID() ID { return d.id }

// Index returns the device's registration ordinal (0, 1, 2, ...).
func (d *Device) Index() int { return d.idx }

// State returns the current lifecycle state.
func (d *Device) State() State { return State(d.state.Load()) }

// IsReady reports whether the device is eligible for placement.
func (d *Device) IsReady() bool { return d.State() == Ready }

// lifecycle edges: for each target state, the states it may be entered
// from, plus the event name of the edge.
var edges = map[State]struct {
	from  map[State]bool
	event string
}{
	Ready:    {map[State]bool{Provisioning: true, Draining: true, Failed: true}, EventReady},
	Draining: {map[State]bool{Ready: true}, EventDrain},
	Failed:   {map[State]bool{Provisioning: true, Ready: true, Draining: true}, EventFail},
}

// transition moves the device to the target state, validating the edge
// under the registry lock, then notifies watchers and emits the event.
func (d *Device) transition(to State, reason string) error {
	r := d.reg
	r.mu.Lock()
	from := d.State()
	if from == to {
		r.mu.Unlock()
		return fmt.Errorf("device: %s is already %s", d.id, to)
	}
	edge, ok := edges[to]
	if !ok || !edge.from[from] {
		r.mu.Unlock()
		return fmt.Errorf("device: %s cannot go %s → %s", d.id, from, to)
	}
	d.state.Store(uint32(to))
	d.stateGauge.Set(int64(to))
	d.transitions.Inc()
	r.seq++
	ch := Change{Device: d.id, From: from, To: to, Reason: reason, Seq: r.seq, Time: r.cfg.Clock()}
	watchers := make([]func(Change), 0, len(r.watchers))
	for _, fn := range r.watchers {
		watchers = append(watchers, fn)
	}
	r.mu.Unlock()

	for _, fn := range watchers {
		fn(ch)
	}
	event := edge.event
	// A Ready entered from Draining or Failed is a rejoin, not first light.
	if to == Ready && from != Provisioning {
		event = EventRejoin
	}
	level := eventlog.LevelInfo
	if to == Failed {
		level = eventlog.LevelError
	}
	r.cfg.Events.LogDevice(context.Background(), level, "device", event, string(d.id),
		eventlog.F("from", from.String()),
		eventlog.F("to", to.String()),
		eventlog.F("reason", reason))
	return nil
}

// SetReady marks a provisioning device serving, or rejoins a draining or
// failed device. The reason is recorded on the transition.
func (d *Device) SetReady(reason string) error { return d.transition(Ready, reason) }

// Drain stops new placements while queued work finishes. Only a Ready
// device can drain.
func (d *Device) Drain(reason string) error { return d.transition(Draining, reason) }

// Fail takes the device out of service immediately; schedulers must
// re-place its in-flight work.
func (d *Device) Fail(reason string) error { return d.transition(Failed, reason) }

// estFloor is the backlog cost assumed before the EWMA has any samples,
// so queued requests count against placement from the start.
const estFloor = int64(time.Microsecond)

// IncPending records a request placed on the device.
func (d *Device) IncPending() { d.pending.Inc() }

// DecPending records a placed request leaving the device (completed,
// canceled, or re-placed).
func (d *Device) DecPending() { d.pending.Dec() }

// Pending returns the number of outstanding requests.
func (d *Device) Pending() int64 { return d.pending.Value() }

// AddBusy accumulates simulated device time and folds the per-request
// cost into the placement EWMA.
func (d *Device) AddBusy(ns int64) {
	if ns <= 0 {
		return
	}
	d.busy.Add(ns)
	if old := d.est.Load(); old == 0 {
		d.est.Store(ns)
	} else {
		d.est.Store((3*old + ns) / 4)
	}
}

// Busy returns the accumulated simulated device time in nanoseconds.
func (d *Device) Busy() int64 { return d.busy.Value() }

// Score is the device's simulated outstanding work: accumulated busy time
// plus the estimated cost of its backlog. Lower scores attract placement.
func (d *Device) Score() int64 {
	est := d.est.Load()
	if est < estFloor {
		est = estFloor
	}
	return d.busy.Value() + d.pending.Value()*est
}

// Stats is a point-in-time read of one device's registry state.
type Stats struct {
	// ID is the stable device identity.
	ID ID `json:"id"`
	// State is the lifecycle state name.
	State string `json:"state"`
	// Pending is the outstanding-request count.
	Pending int64 `json:"pending"`
	// BusyTime is the accumulated simulated device time.
	BusyTime time.Duration `json:"busy_ns"`
	// Transitions counts lifecycle edges taken.
	Transitions int64 `json:"transitions"`
}

// Stats returns per-device registry state, sorted by device ID.
func (r *Registry) Stats() []Stats {
	devs := r.List()
	out := make([]Stats, len(devs))
	for i, d := range devs {
		out[i] = Stats{
			ID:          d.id,
			State:       d.State().String(),
			Pending:     d.Pending(),
			BusyTime:    time.Duration(d.Busy()),
			Transitions: d.transitions.Value(),
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
