package csd

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"github.com/kfrida1/csdinf/internal/ssd"
)

func newDevice(t *testing.T) *SmartSSD {
	t.Helper()
	s, err := New(Config{SSD: ssd.Config{Capacity: 16 << 20}, DRAMBytes: 1 << 20, DRAMBanks: 2})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDefaults(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Banks() != 2 {
		t.Errorf("default banks = %d, want 2 (paper §III-C)", s.Banks())
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{DRAMBanks: -1}); err == nil {
		t.Error("negative banks: expected error")
	}
	if _, err := New(Config{DRAMBytes: -1}); err == nil {
		t.Error("negative DRAM: expected error")
	}
	if _, err := New(Config{SSD: ssd.Config{Capacity: -1}}); err == nil {
		t.Error("bad SSD config: expected error")
	}
}

func TestAllocBanks(t *testing.T) {
	s := newDevice(t)
	a, err := s.Alloc(1024, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Bank != 0 || a.Size != 1024 {
		t.Fatalf("buffer = %+v", a)
	}
	if _, err := s.Alloc(1024, 2); err == nil {
		t.Error("bank out of range: expected error")
	}
	if _, err := s.Alloc(0, 0); err == nil {
		t.Error("zero size: expected error")
	}
	// Exhaust bank 1 (512 KiB per bank).
	if _, err := s.Alloc(512<<10, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Alloc(1, 1); !errors.Is(err, ErrDRAMExhausted) {
		t.Errorf("exhaustion error = %v", err)
	}
	s.ResetDRAM()
	if _, err := s.Alloc(512<<10, 1); err != nil {
		t.Fatalf("alloc after reset failed: %v", err)
	}
}

func TestTransferP2PMovesData(t *testing.T) {
	s := newDevice(t)
	seq := []int{5, 10, 277, 0, 42}
	if _, err := s.StoreSequence(4096, seq); err != nil {
		t.Fatal(err)
	}
	buf, err := s.Alloc(int64(len(seq)*ItemBytes), 0)
	if err != nil {
		t.Fatal(err)
	}
	d, err := s.TransferP2P(4096, buf)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatal("no time charged for P2P transfer")
	}
	got, err := DecodeItems(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if got[i] != seq[i] {
			t.Fatalf("item %d = %d, want %d", i, got[i], seq[i])
		}
	}
}

func TestP2PFasterAndQuieterThanHostPath(t *testing.T) {
	s := newDevice(t)
	data := make([]int, 2048)
	if _, err := s.StoreSequence(0, data); err != nil {
		t.Fatal(err)
	}
	bufA, err := s.Alloc(int64(len(data)*ItemBytes), 0)
	if err != nil {
		t.Fatal(err)
	}
	bufB, err := s.Alloc(int64(len(data)*ItemBytes), 1)
	if err != nil {
		t.Fatal(err)
	}
	p2p, err := s.TransferP2P(0, bufA)
	if err != nil {
		t.Fatal(err)
	}
	host, err := s.TransferViaHost(0, bufB)
	if err != nil {
		t.Fatal(err)
	}
	if p2p >= host {
		t.Fatalf("P2P %v not faster than host path %v", p2p, host)
	}
	tr := s.Traffic()
	if tr.P2PBytes != bufA.Size {
		t.Errorf("P2P bytes = %d, want %d", tr.P2PBytes, bufA.Size)
	}
	// Host path crosses the root complex twice.
	if tr.HostBytes != 2*bufB.Size {
		t.Errorf("host bytes = %d, want %d", tr.HostBytes, 2*bufB.Size)
	}
}

func TestTransferForeignBufferRejected(t *testing.T) {
	s1, s2 := newDevice(t), newDevice(t)
	buf, err := s2.Alloc(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.TransferP2P(0, buf); err == nil {
		t.Error("foreign buffer accepted by TransferP2P")
	}
	if _, err := s1.TransferViaHost(0, buf); err == nil {
		t.Error("foreign buffer accepted by TransferViaHost")
	}
	if _, err := s1.WriteBuffer(nil, nil); err == nil {
		t.Error("nil buffer accepted by WriteBuffer")
	}
	if _, err := s1.ReadBuffer(nil, nil); err == nil {
		t.Error("nil buffer accepted by ReadBuffer")
	}
}

func TestTransferPropagatesSSDFault(t *testing.T) {
	s := newDevice(t)
	if err := s.SSD().InjectReadFault(0); err != nil {
		t.Fatal(err)
	}
	buf, err := s.Alloc(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.TransferP2P(0, buf); !errors.Is(err, ssd.ErrMediaFault) {
		t.Fatalf("error = %v, want wrapped ErrMediaFault", err)
	}
}

func TestWriteReadBuffer(t *testing.T) {
	s := newDevice(t)
	buf, err := s.Alloc(16, 1)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("weights+biases!!")
	if _, err := s.WriteBuffer(buf, payload); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 16)
	if _, err := s.ReadBuffer(buf, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, payload) {
		t.Fatalf("round trip = %q", dst)
	}
	if _, err := s.WriteBuffer(buf, make([]byte, 17)); err == nil {
		t.Error("oversized write accepted")
	}
}

func TestEncodeDecodeItems(t *testing.T) {
	seq := []int{0, 1, 277, 1 << 20}
	data, err := EncodeItems(seq)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != len(seq)*ItemBytes {
		t.Fatalf("encoded length = %d", len(data))
	}
	got, err := DecodeItems(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if got[i] != seq[i] {
			t.Fatalf("item %d = %d, want %d", i, got[i], seq[i])
		}
	}
	if _, err := EncodeItems([]int{-1}); err == nil {
		t.Error("negative item encoded")
	}
	if _, err := DecodeItems(make([]byte, 5)); err == nil {
		t.Error("ragged byte slice decoded")
	}
}

// Property: encode/decode round-trips arbitrary valid item IDs.
func TestPropEncodeDecodeRoundTrip(t *testing.T) {
	f := func(raw []uint16) bool {
		seq := make([]int, len(raw))
		for i, r := range raw {
			seq[i] = int(r)
		}
		data, err := EncodeItems(seq)
		if err != nil {
			return false
		}
		got, err := DecodeItems(data)
		if err != nil || len(got) != len(seq) {
			return false
		}
		for i := range seq {
			if got[i] != seq[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
