package csd

import (
	"regexp"
	"testing"

	"github.com/kfrida1/csdinf/internal/eventlog"
)

// eventNamePattern mirrors the eventname lint pass's grammar; transfer
// events must stay inside it.
var eventNamePattern = regexp.MustCompile(`^[a-z][a-z0-9_-]*(\.[a-z0-9_-]+)+$`)

// TestTransferEventNamesAreConstants pins the fix for the runtime-built
// "transfer."+path event name: every transfer path must emit exactly its
// named constant, and the vocabulary must satisfy the event-name grammar.
func TestTransferEventNamesAreConstants(t *testing.T) {
	s := newDevice(t)
	log := eventlog.New(eventlog.Config{MinLevel: eventlog.LevelDebug})
	s.SetEventLogger(log, "csd0")
	s.TraceJob(77)

	seq := []int{1, 2, 3}
	if _, err := s.StoreSequence(0, seq); err != nil {
		t.Fatal(err)
	}
	buf, err := s.Alloc(int64(len(seq)*ItemBytes), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.TransferP2P(0, buf); err != nil {
		t.Fatal(err)
	}
	if _, err := s.TransferViaHost(0, buf); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteBuffer(buf, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadBuffer(buf, make([]byte, 4)); err != nil {
		t.Fatal(err)
	}

	want := []string{EvTransferP2P, EvTransferViaHost, EvTransferH2D, EvTransferD2H}
	events := log.Recent()
	if len(events) != len(want) {
		t.Fatalf("got %d events, want %d", len(events), len(want))
	}
	for i, ev := range events {
		if ev.Name != want[i] {
			t.Errorf("event %d name = %q, want %q", i, ev.Name, want[i])
		}
		if !eventNamePattern.MatchString(ev.Name) {
			t.Errorf("event name %q violates the dot-scoped grammar", ev.Name)
		}
		if ev.Job != 77 {
			t.Errorf("event %d job = %d, want the stamped 77", i, ev.Job)
		}
	}
}
