// Package csd models the SmartSSD computational storage drive of the
// paper's Fig. 1: an NVMe SSD and an FPGA with its own DRAM, joined by an
// on-board PCIe switch that supports peer-to-peer (P2P) transfers between
// the SSD and FPGA DRAM without crossing to the host.
//
// The package owns the *data plane*: where bytes live (SSD pages, FPGA DRAM
// banks, host memory) and what each movement costs. The compute plane — the
// five inference kernels scheduled on the FPGA fabric — lives in
// internal/kernels; internal/core composes the two into the deployable
// inference engine.
//
// Both data paths of Fig. 1 are implemented and timed:
//
//   - P2P: SSD → switch → FPGA DRAM. One switch-local PCIe traversal; no
//     host involvement, no root-complex traffic.
//   - Host-mediated: SSD → host → FPGA DRAM. Two root-complex traversals
//     plus a host memcpy — the traditional path the paper's P2P support
//     renders unnecessary.
//
// Traffic on each path is accounted so the P2P ablation can report exactly
// how much PCIe host traffic the architecture eliminates.
package csd

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/kfrida1/csdinf/internal/eventlog"
	"github.com/kfrida1/csdinf/internal/pcie"
	"github.com/kfrida1/csdinf/internal/ssd"
	"github.com/kfrida1/csdinf/internal/trace"
)

// Config describes a SmartSSD device.
type Config struct {
	// SSD configures the flash half; zero values take PM1733 defaults.
	SSD ssd.Config
	// DRAMBytes is the FPGA DRAM capacity; 0 defaults to 4 GB (SmartSSD).
	DRAMBytes int64
	// DRAMBanks is the number of DDR banks; 0 defaults to 2, the paper's
	// conservative choice (§III-C).
	DRAMBanks int
	// Internal is the switch-local SSD↔FPGA link; zero value defaults to
	// the SmartSSD's Gen3 x4 internal path.
	Internal pcie.Link
	// Host is the host↔device link; zero value defaults to Gen3 x4 through
	// the root complex.
	Host pcie.Link
	// HostCopyBandwidth is the host-memory staging bandwidth (bytes/s) paid
	// by host-mediated transfers; 0 defaults to 10 GB/s.
	HostCopyBandwidth float64
}

func (c *Config) defaults() {
	if c.DRAMBytes == 0 {
		c.DRAMBytes = 4 << 30
	}
	if c.DRAMBanks == 0 {
		c.DRAMBanks = 2
	}
	if c.Internal.Lanes == 0 {
		c.Internal = pcie.SmartSSDInternal
	}
	if c.Host.Lanes == 0 {
		c.Host = pcie.HostGen3x4
	}
	if c.HostCopyBandwidth == 0 {
		c.HostCopyBandwidth = 10e9
	}
}

// SmartSSD is a simulated computational storage drive. It is safe for
// concurrent use.
type SmartSSD struct {
	drive    *ssd.Drive
	internal pcie.Link
	host     pcie.Link
	hostBW   float64

	mu        sync.Mutex
	banks     []bank
	bankSize  int64
	p2pBytes  int64 // cumulative bytes moved SSD→FPGA via the switch
	hostBytes int64 // cumulative bytes crossing the host root complex

	// Timeline tracing (optional; see internal/trace). traceJob is atomic
	// because the transfer APIs predate context plumbing: the caller that
	// owns the device stream stamps the current job before transferring.
	tracer     *trace.Tracer
	traceGroup string
	traceJob   atomic.Int64

	// Structured event emission (optional; see internal/eventlog). Transfer
	// events are debug-level — one per DMA — and carry the same job ID the
	// timeline events do.
	events     *eventlog.Logger
	eventsName string
}

// SetTracer attaches a timeline tracer; subsequent transfers emit events on
// the device's SSD / PCIe / DDR tracks under the given track group (one
// group per physical device, e.g. "csd0"). A nil tracer detaches.
func (s *SmartSSD) SetTracer(t *trace.Tracer, group string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tracer = t
	s.traceGroup = group
}

// TraceJob stamps the trace correlation ID attributed to subsequent
// transfer events. The transfer APIs take no context (they model raw device
// DMA), so the single-stream owner of the device sets the job up front.
func (s *SmartSSD) TraceJob(id int64) { s.traceJob.Store(id) }

// SetEventLogger attaches a structured event logger; subsequent transfers
// emit one debug event per DMA under the given device name (matching the
// trace track group, e.g. "csd0"), carrying path, byte count, duration, and
// the current TraceJob correlation ID. A nil logger detaches.
func (s *SmartSSD) SetEventLogger(l *eventlog.Logger, device string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = l
	s.eventsName = device
}

// Event names emitted on the structured log, one per transfer path. Names
// are fixed constants so the log's vocabulary stays enumerable (and
// grep-able); the eventname lint pass rejects runtime-built names.
const (
	EvTransferP2P     = "transfer.p2p"
	EvTransferViaHost = "transfer.via-host"
	EvTransferH2D     = "transfer.h2d"
	EvTransferD2H     = "transfer.d2h"
)

// emitTransfer reports one completed DMA on the structured event log; event
// is one of the EvTransfer* constants.
func (s *SmartSSD) emitTransfer(event string, bytes int64, d time.Duration) {
	s.mu.Lock()
	l, name := s.events, s.eventsName
	s.mu.Unlock()
	if !l.Enabled(eventlog.LevelDebug) {
		return
	}
	ctx := trace.WithJob(context.Background(), s.traceJob.Load())
	l.Debug(ctx, "csd", event,
		eventlog.F("device", name),
		eventlog.F("bytes", bytes),
		eventlog.F("transfer_ns", d))
}

// traceTransfer places a serial chain of transfer stages on the device's
// timeline: each stage occupies its track for its duration, back to back
// from the group anchor, and the destination DDR bank is busy for the final
// link hop's interval (the bank fills as the link delivers; the shared
// interval merges rather than double-counts in the profiler). Advances the
// group cursor to the chain's end.
func (s *SmartSSD) traceTransfer(bank int, stages []trace.Event) {
	s.mu.Lock()
	tr, group := s.tracer, s.traceGroup
	s.mu.Unlock()
	if !tr.Enabled() || len(stages) == 0 {
		return
	}
	job := s.traceJob.Load()
	at := tr.Anchor(group)
	for i := range stages {
		stages[i].Track.Group = group
		stages[i].Cat = trace.CatTransfer
		stages[i].Job = job
		stages[i].Start = at
		at += stages[i].Dur
		tr.Emit(stages[i])
	}
	tr.Advance(group, at)
	last := stages[len(stages)-1]
	tr.Emit(trace.Event{
		Track: trace.Track{Group: group, Name: fmt.Sprintf("ddr-bank%d", bank)},
		Name:  "ddr:" + last.Name, Cat: trace.CatTransfer,
		Start: last.Start, Dur: last.Dur, Job: job,
	})
}

type bank struct {
	used int64
}

// New builds a SmartSSD from the configuration.
func New(cfg Config) (*SmartSSD, error) {
	cfg.defaults()
	if cfg.DRAMBanks <= 0 {
		return nil, fmt.Errorf("csd: DRAM banks must be positive, got %d", cfg.DRAMBanks)
	}
	if cfg.DRAMBytes <= 0 {
		return nil, fmt.Errorf("csd: DRAM size must be positive, got %d", cfg.DRAMBytes)
	}
	drive, err := ssd.New(cfg.SSD)
	if err != nil {
		return nil, fmt.Errorf("csd: %w", err)
	}
	if _, err := cfg.Internal.Bandwidth(); err != nil {
		return nil, fmt.Errorf("csd: internal link: %w", err)
	}
	if _, err := cfg.Host.Bandwidth(); err != nil {
		return nil, fmt.Errorf("csd: host link: %w", err)
	}
	s := &SmartSSD{
		drive:    drive,
		internal: cfg.Internal,
		host:     cfg.Host,
		hostBW:   cfg.HostCopyBandwidth,
		bankSize: cfg.DRAMBytes / int64(cfg.DRAMBanks),
	}
	s.banks = make([]bank, cfg.DRAMBanks)
	return s, nil
}

// SSD exposes the drive half for direct storage I/O.
func (s *SmartSSD) SSD() *ssd.Drive { return s.drive }

// Banks returns the number of FPGA DRAM banks.
func (s *SmartSSD) Banks() int { return len(s.banks) }

// Buffer is a region of FPGA DRAM allocated to a kernel argument, the
// analogue of an XRT buffer object.
type Buffer struct {
	// Bank is the DDR bank the buffer lives in.
	Bank int
	// Size is the buffer length in bytes.
	Size int64

	off  int64
	dev  *SmartSSD
	data []byte
}

// ErrDRAMExhausted is returned when a bank cannot fit an allocation.
var ErrDRAMExhausted = errors.New("csd: FPGA DRAM bank exhausted")

// Alloc reserves size bytes in the given DDR bank. Buffers live until
// ResetDRAM; the simple bump allocation mirrors how the host program of the
// paper allocates its buffers once at initialization.
func (s *SmartSSD) Alloc(size int64, bankIdx int) (*Buffer, error) {
	if size <= 0 {
		return nil, fmt.Errorf("csd: allocation size must be positive, got %d", size)
	}
	if bankIdx < 0 || bankIdx >= len(s.banks) {
		return nil, fmt.Errorf("csd: bank %d out of range [0, %d)", bankIdx, len(s.banks))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b := &s.banks[bankIdx]
	if b.used+size > s.bankSize {
		return nil, fmt.Errorf("%w: bank %d has %d of %d bytes free, need %d",
			ErrDRAMExhausted, bankIdx, s.bankSize-b.used, s.bankSize, size)
	}
	buf := &Buffer{Bank: bankIdx, Size: size, off: b.used, dev: s, data: make([]byte, size)}
	b.used += size
	return buf, nil
}

// ResetDRAM releases all buffers (previously returned Buffers become
// invalid).
func (s *SmartSSD) ResetDRAM() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.banks {
		s.banks[i].used = 0
	}
}

// Bytes returns the buffer contents. The slice aliases the buffer; callers
// treat it as the kernel's view of DRAM.
func (b *Buffer) Bytes() []byte { return b.data }

// TransferP2P moves size bytes from SSD offset ssdOff into the buffer using
// the peer-to-peer path through the on-board switch: SSD read plus one
// switch-local link traversal. No bytes cross the host root complex.
func (s *SmartSSD) TransferP2P(ssdOff int64, buf *Buffer) (time.Duration, error) {
	if buf == nil || buf.dev != s {
		return 0, errors.New("csd: buffer does not belong to this device")
	}
	readTime, err := s.drive.Read(ssdOff, buf.data)
	if err != nil {
		return 0, fmt.Errorf("csd: p2p SSD read: %w", err)
	}
	linkTime, err := s.internal.TransferTime(buf.Size)
	if err != nil {
		return 0, fmt.Errorf("csd: p2p link: %w", err)
	}
	s.mu.Lock()
	s.p2pBytes += buf.Size
	s.mu.Unlock()
	s.traceTransfer(buf.Bank, []trace.Event{
		{Track: trace.Track{Name: "ssd"}, Name: "ssd-read", Dur: readTime},
		{Track: trace.Track{Name: "pcie-internal"}, Name: "p2p", Dur: linkTime},
	})
	s.emitTransfer(EvTransferP2P, buf.Size, readTime+linkTime)
	return readTime + linkTime, nil
}

// TransferViaHost moves size bytes from SSD offset ssdOff into the buffer
// along the traditional path: SSD → host memory → FPGA DRAM. The bytes
// cross the root complex twice and pay a host staging copy.
func (s *SmartSSD) TransferViaHost(ssdOff int64, buf *Buffer) (time.Duration, error) {
	if buf == nil || buf.dev != s {
		return 0, errors.New("csd: buffer does not belong to this device")
	}
	readTime, err := s.drive.Read(ssdOff, buf.data)
	if err != nil {
		return 0, fmt.Errorf("csd: host-path SSD read: %w", err)
	}
	up, err := s.host.TransferTime(buf.Size)
	if err != nil {
		return 0, fmt.Errorf("csd: host-path uplink: %w", err)
	}
	down, err := s.host.TransferTime(buf.Size)
	if err != nil {
		return 0, fmt.Errorf("csd: host-path downlink: %w", err)
	}
	stage := time.Duration(float64(buf.Size) / s.hostBW * float64(time.Second))
	s.mu.Lock()
	s.hostBytes += 2 * buf.Size
	s.mu.Unlock()
	s.traceTransfer(buf.Bank, []trace.Event{
		{Track: trace.Track{Name: "ssd"}, Name: "ssd-read", Dur: readTime},
		{Track: trace.Track{Name: "pcie-host"}, Name: "host-up", Dur: up},
		{Track: trace.Track{Name: "host-dram"}, Name: "host-stage", Dur: stage},
		{Track: trace.Track{Name: "pcie-host"}, Name: "host-down", Dur: down},
	})
	s.emitTransfer(EvTransferViaHost, buf.Size, readTime+up+stage+down)
	return readTime + up + stage + down, nil
}

// WriteBuffer moves host data into the buffer over the host link — the
// initialization path that loads weights and embeddings at deployment
// (§III-A's host program "ingests this text file amid initializing the
// FPGA").
func (s *SmartSSD) WriteBuffer(buf *Buffer, data []byte) (time.Duration, error) {
	if buf == nil || buf.dev != s {
		return 0, errors.New("csd: buffer does not belong to this device")
	}
	if int64(len(data)) > buf.Size {
		return 0, fmt.Errorf("csd: %d bytes exceed buffer size %d", len(data), buf.Size)
	}
	copy(buf.data, data)
	t, err := s.host.TransferTime(int64(len(data)))
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	s.hostBytes += int64(len(data))
	s.mu.Unlock()
	s.traceTransfer(buf.Bank, []trace.Event{
		{Track: trace.Track{Name: "pcie-host"}, Name: "h2d", Dur: t},
	})
	s.emitTransfer(EvTransferH2D, int64(len(data)), t)
	return t, nil
}

// ReadBuffer moves buffer contents back to the host (e.g. fetching a
// classification result).
func (s *SmartSSD) ReadBuffer(buf *Buffer, dst []byte) (time.Duration, error) {
	if buf == nil || buf.dev != s {
		return 0, errors.New("csd: buffer does not belong to this device")
	}
	n := copy(dst, buf.data)
	t, err := s.host.TransferTime(int64(n))
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	s.hostBytes += int64(n)
	s.mu.Unlock()
	s.traceTransfer(buf.Bank, []trace.Event{
		{Track: trace.Track{Name: "pcie-host"}, Name: "d2h", Dur: t},
	})
	s.emitTransfer(EvTransferD2H, int64(n), t)
	return t, nil
}

// Traffic reports cumulative bytes moved on each path.
type Traffic struct {
	// P2PBytes moved through the on-board switch, invisible to the host.
	P2PBytes int64
	// HostBytes crossed the host root complex.
	HostBytes int64
}

// Traffic returns a snapshot of the traffic counters.
func (s *SmartSSD) Traffic() Traffic {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Traffic{P2PBytes: s.p2pBytes, HostBytes: s.hostBytes}
}

// ItemBytes is the on-flash size of one API-call item (little-endian
// uint32).
const ItemBytes = 4

// EncodeItems serializes API-call IDs in the on-flash format.
func EncodeItems(items []int) ([]byte, error) {
	out := make([]byte, len(items)*ItemBytes)
	for i, it := range items {
		if it < 0 || it > int(^uint32(0)>>1) {
			return nil, fmt.Errorf("csd: item %d at %d not encodable as uint32", it, i)
		}
		binary.LittleEndian.PutUint32(out[i*ItemBytes:], uint32(it))
	}
	return out, nil
}

// DecodeItems parses the on-flash format back into item IDs.
func DecodeItems(data []byte) ([]int, error) {
	if len(data)%ItemBytes != 0 {
		return nil, fmt.Errorf("csd: %d bytes is not a whole number of items", len(data))
	}
	out := make([]int, len(data)/ItemBytes)
	for i := range out {
		out[i] = int(binary.LittleEndian.Uint32(data[i*ItemBytes:]))
	}
	return out, nil
}

// StoreSequence writes an item sequence to the SSD at the given offset,
// returning the device time (a host-side preparation step in examples and
// benchmarks).
func (s *SmartSSD) StoreSequence(off int64, items []int) (time.Duration, error) {
	data, err := EncodeItems(items)
	if err != nil {
		return 0, err
	}
	return s.drive.Write(off, data)
}
