package drc

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// WriteText renders the report as a v++-style check log: one line per
// finding plus a severity summary. The output is deterministic (findings
// are emitted in design order) so it can be golden-tested.
func (r *Report) WriteText(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "=== Design-rule check: platform %s ===\n", r.Part)
	if r.Clean() {
		b.WriteString("clean: no findings\n")
	}
	for _, f := range r.Findings {
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%d error(s), %d warning(s), %d info(s)\n", r.Errors, r.Warnings, r.Infos)
	if _, err := io.WriteString(w, b.String()); err != nil {
		return fmt.Errorf("drc: write report: %w", err)
	}
	return nil
}

// JSON renders the report as indented machine-readable JSON: the format
// `csdlint drc -json` writes and CI uploads as an artifact.
func (r *Report) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("drc: marshal report: %w", err)
	}
	return append(out, '\n'), nil
}

// DecodeReport parses a JSON report produced by Report.JSON.
func DecodeReport(data []byte) (Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return Report{}, fmt.Errorf("drc: decode report: %w", err)
	}
	return r, nil
}
