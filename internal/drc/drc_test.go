package drc_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/kfrida1/csdinf/internal/absint"
	"github.com/kfrida1/csdinf/internal/drc"
	"github.com/kfrida1/csdinf/internal/fpga"
	"github.com/kfrida1/csdinf/internal/hls"
	"github.com/kfrida1/csdinf/internal/kernels"
	"github.com/kfrida1/csdinf/internal/lstm"
)

// illegalDesign seeds the three headline violations of the issue: a
// requested II below the carried-dependency bound, an UNROLL factor above
// the trip count, and a resource-budget overflow — plus an AXI bank out of
// range, all on the SmartSSD's KU15P.
func illegalDesign() drc.Design {
	return drc.Design{
		Part: fpga.KU15P,
		Kernels: []fpga.KernelSpec{
			{
				Name: "kernel_bad", CUs: 2,
				Loops: []hls.Loop{
					{
						// FAdd+FMul chain with a carried dependency: the body
						// latency (11) bounds II, but II=1 is requested.
						Name: "acc", Trip: 64, Body: []hls.Op{hls.FMul, hls.FAdd},
						CarriedDep: true, Pipeline: true, RequestedII: 1,
					},
					{
						// UNROLL 16 on an 8-trip loop: clamped by HLS.
						Name: "tiny", Trip: 8, Unroll: 16,
						Body: []hls.Op{hls.IntAdd},
					},
					{
						// Fully-unrolled float MAC array: 4096 copies of a
						// 5-DSP body per CU, ×2 CUs — far over the KU15P's
						// 1968 DSPs.
						Name: "mac", Trip: 4096, Unroll: 4096, Pipeline: true,
						ArrayPartition: true,
						Body:           []hls.Op{hls.FMul, hls.FAdd},
					},
				},
				Buffers: []hls.Buffer{{Name: "weights", Words: 4096}},
			},
		},
		Connectivity: map[string][]int{
			// The KU15P has a single DDR bank; bank 1 does not exist.
			"kernel_bad": {0, 1},
		},
	}
}

func TestIllegalDesignGolden(t *testing.T) {
	rep := drc.Check(illegalDesign())
	if rep.OK() {
		t.Fatal("illegal design passed the check")
	}
	for _, rule := range []string{drc.IICarriedDep, drc.PragUnrollExceedsTrip, drc.ResCUOverflow, drc.AXIBankRange} {
		if len(rep.ByRule(rule)) == 0 {
			t.Errorf("rule %s did not fire", rule)
		}
	}

	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "illegal.txt")
	want, err := os.ReadFile(golden)
	if os.IsNotExist(err) || os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", golden)
		return
	}
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("report drifted from %s:\ngot:\n%s\nwant:\n%s", golden, buf.Bytes(), want)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	rep := drc.Check(illegalDesign())
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := drc.DecodeReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Errors != rep.Errors || back.Warnings != rep.Warnings || len(back.Findings) != len(rep.Findings) {
		t.Fatalf("round trip lost findings: got %+v want %+v", back, rep)
	}
	if back.Findings[0].Severity != rep.Findings[0].Severity {
		t.Fatalf("severity did not survive JSON: %v vs %v", back.Findings[0], rep.Findings[0])
	}
}

// TestFindingCategory pins the category plumbing: every finding carries its
// rule group, the JSON artifact serializes it, and CategoryOf strips trailing
// digits only.
func TestFindingCategory(t *testing.T) {
	rep := drc.Check(illegalDesign())
	for _, f := range rep.Findings {
		if f.Category == "" {
			t.Errorf("finding %s has empty category", f.Rule)
		}
		if want := drc.CategoryOf(f.Rule); f.Category != want {
			t.Errorf("finding %s carries category %q, want %q", f.Rule, f.Category, want)
		}
	}
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"category": "II"`)) {
		t.Error("JSON report is missing the category field")
	}
	for id, want := range map[string]string{
		drc.IICarriedDep:     "II",
		drc.NumAccOverflow:   "NUM",
		drc.PragNegativeTrip: "PRAG",
	} {
		if got := drc.CategoryOf(id); got != want {
			t.Errorf("CategoryOf(%s) = %q, want %q", id, got, want)
		}
	}
	for _, r := range drc.Rules() {
		if r.Category != drc.CategoryOf(r.ID) {
			t.Errorf("catalogue rule %s has category %q", r.ID, r.Category)
		}
	}
}

// TestTable1DesignClean is the positive control: the paper's shipping
// configuration (fixed-point, Alveo U200, four gate CUs) carries no
// error-level findings.
func TestTable1DesignClean(t *testing.T) {
	design, err := kernels.DesignFor(lstm.PaperConfig(), kernels.Config{Level: kernels.LevelFixedPoint})
	if err != nil {
		t.Fatal(err)
	}
	rep := drc.Check(design)
	if !rep.OK() {
		var buf bytes.Buffer
		_ = rep.WriteText(&buf)
		t.Fatalf("table-1 design has error findings:\n%s", buf.String())
	}
}

// TestDeployMatrixErrorFree checks every supported deployment configuration
// is error-free, and that the known-infeasible one (fixed-point on the
// KU15P) is caught statically with the budget rule.
func TestDeployMatrixErrorFree(t *testing.T) {
	clean := []struct {
		level kernels.OptLevel
		part  fpga.Part
	}{
		{kernels.LevelVanilla, fpga.AlveoU200},
		{kernels.LevelII, fpga.AlveoU200},
		{kernels.LevelFixedPoint, fpga.AlveoU200},
		{kernels.LevelMixed, fpga.AlveoU200},
		{kernels.LevelVanilla, fpga.KU15P},
		{kernels.LevelII, fpga.KU15P},
		{kernels.LevelMixed, fpga.KU15P},
	}
	for _, c := range clean {
		design, err := kernels.DesignFor(lstm.PaperConfig(), kernels.Config{Level: c.level, Part: c.part})
		if err != nil {
			t.Fatalf("%s/%s: %v", c.level, c.part.Name, err)
		}
		if rep := drc.Check(design); !rep.OK() {
			var buf bytes.Buffer
			_ = rep.WriteText(&buf)
			t.Errorf("%s on %s should be error-free:\n%s", c.level, c.part.Name, buf.String())
		}
	}

	design, err := kernels.DesignFor(lstm.PaperConfig(), kernels.Config{Level: kernels.LevelFixedPoint, Part: fpga.KU15P})
	if err != nil {
		t.Fatal(err)
	}
	rep := drc.Check(design)
	if rep.OK() {
		t.Fatal("fixed-point on KU15P should be rejected")
	}
	budget := append(rep.ByRule(drc.ResCUOverflow),
		append(rep.ByRule(drc.ResKernelOverflow), rep.ByRule(drc.ResDesignOverflow)...)...)
	if len(budget) == 0 {
		t.Fatalf("expected a budget-overflow rule, findings: %+v", rep.Findings)
	}
}

// TestEveryRuleHasAFiringFixture exercises each catalogue rule with a
// minimal design that triggers it — the proof the rule IDs have teeth.
func TestEveryRuleHasAFiringFixture(t *testing.T) {
	part := fpga.KU15P
	kernel := func(loops []hls.Loop, bufs ...hls.Buffer) drc.Design {
		return drc.Design{Part: part, Kernels: []fpga.KernelSpec{
			{Name: "k", CUs: 1, Loops: loops, Buffers: bufs},
		}}
	}
	fixtures := map[string]drc.Design{
		drc.PragPipelineSubLoops: kernel([]hls.Loop{
			{Name: "outer", Trip: 4, Pipeline: true, Sub: []hls.Loop{{Name: "inner", Trip: 2}}},
		}),
		drc.PragNegativeTrip: kernel([]hls.Loop{{Name: "l", Trip: -1}}),
		drc.PragUnrollExceedsTrip: kernel([]hls.Loop{
			{Name: "l", Trip: 4, Unroll: 8, Body: []hls.Op{hls.IntAdd}},
		}),
		drc.PragUnrollRagged: kernel([]hls.Loop{
			{Name: "l", Trip: 10, Unroll: 4, Body: []hls.Op{hls.IntAdd}},
		}),
		drc.PragIIWithoutPipeline: kernel([]hls.Loop{
			{Name: "l", Trip: 4, RequestedII: 2, Body: []hls.Op{hls.IntAdd}},
		}),
		drc.PragPartitionNoAccess: kernel([]hls.Loop{
			{Name: "l", Trip: 4, ArrayPartition: true, Body: []hls.Op{hls.IntAdd}},
		}),
		drc.PragPipelineZeroTrip: kernel([]hls.Loop{
			{Name: "l", Trip: 0, Pipeline: true, Body: []hls.Op{hls.IntAdd}},
		}),
		drc.IICarriedDep: kernel([]hls.Loop{
			{Name: "l", Trip: 8, Pipeline: true, RequestedII: 1, CarriedDep: true,
				Body: []hls.Op{hls.FAdd}},
		}),
		drc.IIMemoryPorts: kernel([]hls.Loop{
			{Name: "l", Trip: 8, Pipeline: true, RequestedII: 1, MemAccessesPerIter: 6,
				Body: []hls.Op{hls.MemRead}},
		}),
		drc.BufDead: kernel(nil, hls.Buffer{Name: "b", Words: 0}),
		drc.BufPartitionHuge: kernel(
			[]hls.Loop{{Name: "l", Trip: 4, ArrayPartition: true, MemAccessesPerIter: 1, Body: []hls.Op{hls.MemRead}}},
			hls.Buffer{Name: "b", Words: 65536, PartitionComplete: true},
		),
		drc.BufPartitionUnindexed: kernel(nil, hls.Buffer{Name: "b", Words: 16, PartitionComplete: true}),
		drc.ResMalformedKernel:    {Part: part, Kernels: []fpga.KernelSpec{{Name: "", CUs: 1}}},
		drc.ResCUOverflow: kernel([]hls.Loop{
			{Name: "l", Trip: 4096, Unroll: 4096, Body: []hls.Op{hls.FMul, hls.FAdd}},
		}),
		drc.ResDesignOverflow: {Part: part, Kernels: []fpga.KernelSpec{
			{Name: "a", CUs: 1, Loops: []hls.Loop{{Name: "l", Trip: 512, Unroll: 512, Body: []hls.Op{hls.FMul}}}},
			{Name: "b", CUs: 1, Loops: []hls.Loop{{Name: "l", Trip: 512, Unroll: 512, Body: []hls.Op{hls.FMul}}}},
		}},
		drc.ResTightFit: kernel([]hls.Loop{
			// 600 DSPs of 1968: 30% — no; use 1800/1968 = 91%.
			{Name: "l", Trip: 600, Unroll: 600, Body: []hls.Op{hls.FMul}},
		}),
		drc.AXIBankRange: {Part: part, Kernels: []fpga.KernelSpec{{Name: "k", CUs: 1}},
			Connectivity: map[string][]int{"k": {3}}},
		drc.AXIPortConflict: {Part: part, Kernels: []fpga.KernelSpec{{Name: "k", CUs: 32}},
			Connectivity: map[string][]int{"k": {0}}},
		drc.AXIUnbound: {Part: part, Kernels: []fpga.KernelSpec{
			{Name: "a", CUs: 1}, {Name: "b", CUs: 1},
		}, Connectivity: map[string][]int{"a": {0}}},
		drc.DFUnknownKernel: {Part: part, Kernels: []fpga.KernelSpec{{Name: "k", CUs: 1}},
			Streams: []drc.Stream{{From: "k", To: "ghost", FanOut: 1}}},
		drc.DFFanOutMismatch: {Part: part, Kernels: []fpga.KernelSpec{
			{Name: "a", CUs: 1}, {Name: "b", CUs: 4},
		}, Streams: []drc.Stream{{From: "a", To: "b", FanOut: 2}}},
		drc.DFCycle: {Part: part, Kernels: []fpga.KernelSpec{
			{Name: "a", CUs: 1}, {Name: "b", CUs: 1},
		}, Streams: []drc.Stream{
			{From: "a", To: "b", FanOut: 1}, {From: "b", To: "a", FanOut: 1},
		}},
	}

	// RES003 (kernel CUs overflow while one CU fits) needs a near-budget CU.
	fixtures[drc.ResKernelOverflow] = drc.Design{Part: part, Kernels: []fpga.KernelSpec{
		{Name: "k", CUs: 4, Loops: []hls.Loop{
			{Name: "l", Trip: 600, Unroll: 600, Body: []hls.Op{hls.FMul}},
		}},
	}}

	// The NUM rules consume an attached numeric range analysis; the fixtures
	// craft minimal absint reports with the offending stage facts. (End-to-end
	// NUM001 coverage against a real overflowing model lives in
	// internal/absint and cmd/csdlint.)
	fixtures[drc.NumAccOverflow] = drc.Design{Part: part, Numeric: &absint.Report{
		Scale: 1_000_000, SeqLen: 100, Stages: []absint.StageRange{{
			Stage: "kernel_gates/i/wx_acc", Kernel: "kernel_gates", Raw: true,
			Lo: "-12500000000000000000", Hi: "12500000000000000000",
			Bits: 64, Headroom: -1, Overflow: true,
		}},
	}}
	fixtures[drc.NumActDomain] = drc.Design{Part: part, Numeric: &absint.Report{
		Scale: 1_000_000, SeqLen: 100, ActDomain: "9223372035854",
		Stages: []absint.StageRange{{
			Stage: "kernel_hidden_state/cell", Kernel: "kernel_hidden_state",
			Lo: "-10000000000000", Hi: "10000000000000",
			Bits: 44, Headroom: 19, ActInput: absint.ActSoftsign, DomainViolation: true,
		}},
	}}
	fixtures[drc.NumScaleCoarse] = drc.Design{Part: part, Numeric: &absint.Report{
		Scale: 16, SeqLen: 100, NonzeroWeights: 100, UnderflowedWeights: 20,
	}}
	fixtures[drc.NumLowHeadroom] = drc.Design{Part: part, Numeric: &absint.Report{
		Scale: 1_000_000, SeqLen: 100, Stages: []absint.StageRange{{
			Stage: "kernel_hidden_state/fc_acc", Kernel: "kernel_hidden_state", Raw: true,
			Lo: "-4611686018427387904", Hi: "4611686018427387904",
			Bits: 62, Headroom: 1,
		}},
	}}

	for _, rule := range drc.Rules() {
		d, ok := fixtures[rule.ID]
		if !ok {
			t.Errorf("rule %s has no firing fixture", rule.ID)
			continue
		}
		rep := drc.Check(d)
		if len(rep.ByRule(rule.ID)) == 0 {
			var buf bytes.Buffer
			_ = rep.WriteText(&buf)
			t.Errorf("rule %s did not fire on its fixture; report:\n%s", rule.ID, buf.String())
		}
	}
}

func TestRejectError(t *testing.T) {
	rep := drc.Check(illegalDesign())
	err := &drc.RejectError{Report: rep}
	if !errors.Is(err, drc.ErrRejected) {
		t.Fatal("RejectError should match ErrRejected")
	}
	if !errors.Is(err, fpga.ErrResourceExhausted) {
		t.Fatal("budget rejection should match fpga.ErrResourceExhausted")
	}
	if !strings.Contains(err.Error(), "error finding") {
		t.Fatalf("unhelpful message: %s", err)
	}

	// A non-budget rejection must NOT claim resource exhaustion.
	d := drc.Design{Part: fpga.KU15P, Kernels: []fpga.KernelSpec{
		{Name: "k", CUs: 1, Loops: []hls.Loop{
			{Name: "outer", Trip: 4, Pipeline: true, Sub: []hls.Loop{{Name: "inner", Trip: 2}}},
		}},
	}}
	err = &drc.RejectError{Report: drc.Check(d)}
	if errors.Is(err, fpga.ErrResourceExhausted) {
		t.Fatal("pragma rejection should not match ErrResourceExhausted")
	}
	if !errors.Is(err, drc.ErrRejected) {
		t.Fatal("pragma rejection should still match ErrRejected")
	}
}

func TestCleanReportRendering(t *testing.T) {
	rep := drc.Check(drc.Design{Part: fpga.AlveoU200, Kernels: []fpga.KernelSpec{
		{Name: "k", CUs: 1, Loops: []hls.Loop{
			{Name: "l", Trip: 8, Pipeline: true, ArrayPartition: true,
				MemAccessesPerIter: 1, Body: []hls.Op{hls.MemRead, hls.IntAdd}},
		}},
	}})
	if !rep.Clean() {
		t.Fatalf("expected clean, got %+v", rep.Findings)
	}
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "clean: no findings") {
		t.Fatalf("clean report should say so:\n%s", buf.String())
	}
}
