// Package drc is a static design-rule checker for simulated HLS/FPGA kernel
// designs: the analogue of the pragma-legality, II-feasibility, and
// resource-budget checks Vitis HLS emits at synthesis time, *before* any
// cycle emulation runs.
//
// The runtime stack (internal/hls, internal/fpga, internal/vitis) already
// fails on infeasible designs — but only when the design is scheduled or
// linked, deep inside Deploy. This package validates a design without
// running a single simulated cycle, so an illegal kernel configuration is
// reported as a catalogue of findings (rule ID, severity, kernel, object,
// message) at the door: `csdlint drc` and `csdbuild -drc` surface them on
// the command line, core.Deploy refuses error-level designs before touching
// the device, and CI fails on them with machine-readable JSON findings.
//
// Rules fall into seven groups, mirroring the sections of a v++ synthesis
// log: PRAG (pragma legality), II (initiation-interval feasibility), BUF
// (buffer/partition storage), RES (fabric budgets per CU, per kernel, and
// per device), AXI (DDR-bank connectivity and port conflicts), DF (dataflow
// stage matching), and NUM (fixed-point numeric safety, fed by the
// internal/absint interval analysis attached to Design.Numeric). See Rules
// for the full catalogue and DESIGN.md "Static analysis" for the severity
// policy.
package drc

import (
	"errors"
	"fmt"
	"strings"

	"github.com/kfrida1/csdinf/internal/absint"
	"github.com/kfrida1/csdinf/internal/fpga"
	"github.com/kfrida1/csdinf/internal/hls"
)

// Severity grades a finding.
type Severity int

// Severities, in escalating order.
const (
	// SevInfo findings are observations: legal but worth knowing (a no-op
	// pragma, a dead buffer).
	SevInfo Severity = iota + 1
	// SevWarn findings are legal designs that will not behave as written:
	// an unachievable requested II, a clamped unroll factor, a tight fit.
	SevWarn
	// SevError findings are designs the toolchain (or the device) would
	// reject: budget overflow, illegal pragma combination, broken dataflow.
	SevError
)

// String returns the lowercase severity name.
func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "info"
	case SevWarn:
		return "warn"
	case SevError:
		return "error"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// MarshalJSON renders the severity as its name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON parses a severity name.
func (s *Severity) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"info"`:
		*s = SevInfo
	case `"warn"`:
		*s = SevWarn
	case `"error"`:
		*s = SevError
	default:
		return fmt.Errorf("drc: unknown severity %s", b)
	}
	return nil
}

// Rule is one catalogue entry.
type Rule struct {
	// ID is the stable rule identifier (e.g. "RES002").
	ID string `json:"id"`
	// Category is the rule group the ID belongs to (PRAG, II, BUF, RES,
	// AXI, DF, NUM) — the ID with its trailing digits removed.
	Category string `json:"category"`
	// Severity is the rule's fixed severity.
	Severity Severity `json:"severity"`
	// Title is the one-line rule statement.
	Title string `json:"title"`
}

// CategoryOf returns the rule group of a rule ID: the ID with its trailing
// digits stripped (e.g. "NUM001" → "NUM").
func CategoryOf(id string) string {
	return strings.TrimRight(id, "0123456789")
}

// The rule catalogue. IDs are stable: tools and CI filters key on them.
// Categories derive from the IDs; withCategories fills them so the literal
// table stays readable.
var catalogue = withCategories([]Rule{
	{PragPipelineSubLoops, "", SevError, "PIPELINE on a loop containing sub-loops (HLS would require them fully unrolled)"},
	{PragNegativeTrip, "", SevError, "negative loop trip count"},
	{PragUnrollExceedsTrip, "", SevWarn, "UNROLL factor exceeds the loop trip count (factor is clamped)"},
	{PragUnrollRagged, "", SevWarn, "UNROLL factor does not divide the trip count (ragged final iterations)"},
	{PragIIWithoutPipeline, "", SevWarn, "II= requested on a loop without PIPELINE (pragma is ignored)"},
	{PragPartitionNoAccess, "", SevInfo, "ARRAY_PARTITION on a loop with no indexed memory accesses (no-op)"},
	{PragPipelineZeroTrip, "", SevWarn, "PIPELINE on a zero-trip loop (pipeline never fills)"},
	{IICarriedDep, "", SevWarn, "requested II below the loop-carried dependency bound"},
	{IIMemoryPorts, "", SevWarn, "requested II below the memory-port bound (ARRAY_PARTITION would lift it)"},
	{BufDead, "", SevInfo, "buffer with no storage (zero or negative words)"},
	{BufPartitionHuge, "", SevWarn, "ARRAY_PARTITION complete on a large buffer (register fan-out explodes FF/LUT and routing)"},
	{BufPartitionUnindexed, "", SevWarn, "ARRAY_PARTITION complete on a buffer no partitioned loop indexes (burns FF for nothing)"},
	{ResMalformedKernel, "", SevError, "malformed kernel (missing name, duplicate name, or non-positive CU count)"},
	{ResCUOverflow, "", SevError, "a single compute unit exceeds the device budget"},
	{ResKernelOverflow, "", SevError, "a kernel's compute units together exceed the device budget"},
	{ResDesignOverflow, "", SevError, "the whole design exceeds the device budget"},
	{ResTightFit, "", SevWarn, "design utilization above the routing-closure threshold"},
	{AXIBankRange, "", SevError, "AXI master bound to a DDR bank the part does not have"},
	{AXIPortConflict, "", SevWarn, "too many AXI masters contending for one DDR bank"},
	{AXIUnbound, "", SevInfo, "kernel has no DDR-bank connectivity entry while others do"},
	{DFUnknownKernel, "", SevError, "dataflow stream references a kernel not in the design"},
	{DFFanOutMismatch, "", SevWarn, "dataflow fan-out does not match the consumer's compute-unit count"},
	{DFCycle, "", SevError, "dataflow streams form a cycle"},
	{NumAccOverflow, "", SevError, "a fixed-point intermediate can overflow its int64 accumulator at this scale"},
	{NumActDomain, "", SevError, "an activation input can leave the fixed-point evaluator's safe domain"},
	{NumScaleCoarse, "", SevWarn, "scale too coarse for the weight dynamic range (nonzero weights quantize to zero)"},
	{NumLowHeadroom, "", SevInfo, "a fixed-point intermediate has fewer than the advisory headroom bits"},
})

func withCategories(rules []Rule) []Rule {
	for i := range rules {
		rules[i].Category = CategoryOf(rules[i].ID)
	}
	return rules
}

// Rule IDs.
const (
	PragPipelineSubLoops  = "PRAG001"
	PragNegativeTrip      = "PRAG002"
	PragUnrollExceedsTrip = "PRAG003"
	PragUnrollRagged      = "PRAG004"
	PragIIWithoutPipeline = "PRAG005"
	PragPartitionNoAccess = "PRAG006"
	PragPipelineZeroTrip  = "PRAG007"
	IICarriedDep          = "II001"
	IIMemoryPorts         = "II002"
	BufDead               = "BUF001"
	BufPartitionHuge      = "BUF002"
	BufPartitionUnindexed = "BUF003"
	ResMalformedKernel    = "RES001"
	ResCUOverflow         = "RES002"
	ResKernelOverflow     = "RES003"
	ResDesignOverflow     = "RES004"
	ResTightFit           = "RES005"
	AXIBankRange          = "AXI001"
	AXIPortConflict       = "AXI002"
	AXIUnbound            = "AXI003"
	DFUnknownKernel       = "DF001"
	DFFanOutMismatch      = "DF002"
	DFCycle               = "DF003"
	NumAccOverflow        = "NUM001"
	NumActDomain          = "NUM002"
	NumScaleCoarse        = "NUM003"
	NumLowHeadroom        = "NUM004"
)

// Rules returns the rule catalogue, in report order.
func Rules() []Rule {
	out := make([]Rule, len(catalogue))
	copy(out, catalogue)
	return out
}

var ruleByID = func() map[string]Rule {
	m := make(map[string]Rule, len(catalogue))
	for _, r := range catalogue {
		m[r.ID] = r
	}
	return m
}()

// Finding is one rule violation (or observation) in a design.
type Finding struct {
	// Rule is the catalogue ID.
	Rule string `json:"rule"`
	// Category is the rule group (PRAG, II, BUF, RES, AXI, DF, NUM), so
	// consumers can separate finding classes without parsing IDs.
	Category string `json:"category"`
	// Severity is the rule's severity.
	Severity Severity `json:"severity"`
	// Kernel names the offending kernel; empty for design-level findings.
	Kernel string `json:"kernel,omitempty"`
	// Object names the loop, buffer, stream, or bank within the kernel.
	Object string `json:"object,omitempty"`
	// Message is the human-readable diagnostic.
	Message string `json:"message"`
}

// String renders the finding in one line.
func (f Finding) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-7s %-5s", f.Rule, f.Severity)
	if f.Kernel != "" {
		fmt.Fprintf(&b, " %s", f.Kernel)
		if f.Object != "" {
			fmt.Fprintf(&b, "/%s", f.Object)
		}
		b.WriteString(":")
	} else if f.Object != "" {
		fmt.Fprintf(&b, " %s:", f.Object)
	}
	fmt.Fprintf(&b, " %s", f.Message)
	return b.String()
}

// Stream declares one dataflow link of the design: the producer kernel
// writes FanOut copies of its output, one per consumer compute unit (the
// paper's kernel_preprocess makes four copies of the embedding, one per
// kernel_gates CU).
type Stream struct {
	// From and To are kernel names.
	From, To string
	// FanOut is the number of copies the producer writes.
	FanOut int
}

// Design is the static view of a kernel design: everything the checker
// needs, nothing that requires running it.
type Design struct {
	// Part is the target FPGA.
	Part fpga.Part
	// Kernels are the kernel specifications to place.
	Kernels []fpga.KernelSpec
	// Streams declares the dataflow stage links (optional).
	Streams []Stream
	// Connectivity maps kernel name → the DDR bank of each of its AXI
	// master ports (optional; the sp= options of a v++ link). Nil skips
	// the AXI rules entirely; a partial map fires AXIUnbound.
	Connectivity map[string][]int
	// Numeric is the fixed-point range analysis of the datapath, attached
	// by kernels.DesignForModel when the trained weights are available
	// (fixed-point levels only). Nil skips the NUM rules: without weights
	// there is nothing sound to prove.
	Numeric *absint.Report
}

// Thresholds tune the advisory rules; zero values take defaults.
type Thresholds struct {
	// Utilization is the RES005 tight-fit fraction; 0 defaults to 0.8.
	Utilization float64
	// PartitionWords is the BUF002 register-partition limit; 0 defaults
	// to 4096 words (128 Kb of flip-flops).
	PartitionWords int
	// MastersPerBank is the AXI002 port-conflict limit; 0 defaults to 16,
	// the per-controller port cap of the Vitis DDR interconnect.
	MastersPerBank int
	// WeightUnderflow is the NUM003 scale-coarseness limit: the fraction of
	// nonzero weights allowed to quantize to zero; 0 defaults to 0.05.
	WeightUnderflow float64
	// HeadroomBits is the NUM004 advisory margin: stages with less spare
	// integer headroom are reported; 0 defaults to 2 bits.
	HeadroomBits int
}

func (t *Thresholds) defaults() {
	if t.Utilization == 0 {
		t.Utilization = 0.8
	}
	if t.PartitionWords == 0 {
		t.PartitionWords = 4096
	}
	if t.MastersPerBank == 0 {
		t.MastersPerBank = 16
	}
	if t.WeightUnderflow == 0 {
		t.WeightUnderflow = 0.05
	}
	if t.HeadroomBits == 0 {
		t.HeadroomBits = 2
	}
}

// Report is the outcome of checking one design.
type Report struct {
	// Part is the target part name.
	Part string `json:"part"`
	// Findings are the rule hits, grouped by kernel in design order, then
	// design-level findings.
	Findings []Finding `json:"findings"`
	// Errors, Warnings, and Infos count findings by severity.
	Errors   int `json:"errors"`
	Warnings int `json:"warnings"`
	Infos    int `json:"infos"`
}

// OK reports whether the design has no error-level findings.
func (r *Report) OK() bool { return r.Errors == 0 }

// Clean reports whether the design has no findings at all.
func (r *Report) Clean() bool { return len(r.Findings) == 0 }

// ByRule returns the findings with the given rule ID.
func (r *Report) ByRule(id string) []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Rule == id {
			out = append(out, f)
		}
	}
	return out
}

func (r *Report) add(rule, kernel, object, format string, args ...any) {
	def, ok := ruleByID[rule]
	if !ok {
		panic("drc: unknown rule " + rule)
	}
	r.Findings = append(r.Findings, Finding{
		Rule: rule, Category: def.Category, Severity: def.Severity,
		Kernel: kernel, Object: object,
		Message: fmt.Sprintf(format, args...),
	})
	switch def.Severity {
	case SevError:
		r.Errors++
	case SevWarn:
		r.Warnings++
	case SevInfo:
		r.Infos++
	}
}

// ErrRejected is the sentinel all DRC rejections wrap.
var ErrRejected = errors.New("drc: design rejected by design-rule check")

// RejectError is returned when a gate (core.Deploy, csdbuild -drc) refuses
// a design with error-level findings. When the rejection includes a
// resource-budget overflow it also matches fpga.ErrResourceExhausted, so
// callers that probed for the runtime placement failure keep working.
type RejectError struct {
	// Report is the full check outcome.
	Report Report
}

// Error summarizes the rejection with the first error-level finding.
func (e *RejectError) Error() string {
	for _, f := range e.Report.Findings {
		if f.Severity == SevError {
			return fmt.Sprintf("drc: design rejected on %s: %d error finding(s), first: %s",
				e.Report.Part, e.Report.Errors, f.String())
		}
	}
	return fmt.Sprintf("drc: design rejected on %s", e.Report.Part)
}

// Unwrap matches ErrRejected always, and fpga.ErrResourceExhausted when a
// budget rule fired.
func (e *RejectError) Unwrap() []error {
	errs := []error{ErrRejected}
	for _, f := range e.Report.Findings {
		switch f.Rule {
		case ResCUOverflow, ResKernelOverflow, ResDesignOverflow:
			return append(errs, fpga.ErrResourceExhausted)
		}
	}
	return errs
}

// Check validates the design against the full rule catalogue with default
// thresholds.
func Check(d Design) Report {
	return CheckWith(d, Thresholds{})
}

// CheckWith validates the design with explicit thresholds.
func CheckWith(d Design, th Thresholds) Report {
	th.defaults()
	r := Report{Part: d.Part.Name}

	seen := make(map[string]bool, len(d.Kernels))
	var total hls.Resources
	for _, k := range d.Kernels {
		if !checkKernelShape(&r, k, seen) {
			continue
		}
		res := checkKernel(&r, d.Part, k, th)
		total.Add(res)
	}
	checkDesignBudget(&r, d.Part, total, th)
	checkConnectivity(&r, d, th)
	checkDataflow(&r, d, seen)
	checkNumeric(&r, d, th)
	return r
}

// checkNumeric runs the NUM rules over the attached interval analysis.
//
// NUM001 and NUM002 are the twin halves of the overflow proof: NUM001 fires
// per stage whose interval (plus the rescale rounding bias on raw
// accumulators) escapes int64; NUM002 fires per activation input that can
// leave the evaluators' internally overflow-free domain. They frequently
// co-fire — the softsign feeding on the cell state computes c·S internally,
// the same raw product the f⊙c stage accumulates — which is correct: both
// facts must be fixed independently when the scale changes.
func checkNumeric(r *Report, d Design, th Thresholds) {
	rep := d.Numeric
	if rep == nil {
		return
	}
	for _, s := range rep.Overflows() {
		r.add(NumAccOverflow, s.Kernel, stageObject(s),
			"interval [%s, %s] needs %d magnitude bits; int64 offers 63 (scale %d, seqlen %d)",
			s.Lo, s.Hi, s.Bits, rep.Scale, rep.SeqLen)
	}
	for _, s := range rep.DomainViolations() {
		r.add(NumActDomain, s.Kernel, stageObject(s),
			"%s input can reach [%s, %s], outside the evaluator's safe domain |x| <= %s",
			s.ActInput, s.Lo, s.Hi, rep.ActDomain)
	}
	if f := rep.UnderflowFraction(); f > th.WeightUnderflow {
		r.add(NumScaleCoarse, "", "quantize",
			"scale %d zeroes %d of %d nonzero weights (%.1f%%, above the %.0f%% limit)",
			rep.Scale, rep.UnderflowedWeights, rep.NonzeroWeights, f*100, th.WeightUnderflow*100)
	}
	if rep.OverflowFree() {
		if min, ok := rep.MinHeadroom(); ok && min.Headroom < th.HeadroomBits {
			r.add(NumLowHeadroom, min.Kernel, stageObject(min),
				"tightest stage has %d bit(s) of headroom, under the %d-bit advisory margin",
				min.Headroom, th.HeadroomBits)
		}
	}
}

// stageObject strips the kernel prefix from a stage path so renderings of
// Finding (kernel + "/" + object) don't repeat it.
func stageObject(s absint.StageRange) string {
	return strings.TrimPrefix(s.Stage, s.Kernel+"/")
}

// checkKernelShape covers RES001; it returns false when the kernel is too
// malformed for the remaining rules to be meaningful.
func checkKernelShape(r *Report, k fpga.KernelSpec, seen map[string]bool) bool {
	if k.Name == "" {
		r.add(ResMalformedKernel, "", "", "kernel has no name")
		return false
	}
	if seen[k.Name] {
		r.add(ResMalformedKernel, k.Name, "", "kernel %q declared twice", k.Name)
		return false
	}
	seen[k.Name] = true
	if k.CUs <= 0 {
		r.add(ResMalformedKernel, k.Name, "", "compute-unit count must be positive, got %d", k.CUs)
		return false
	}
	return true
}

// checkKernel runs the per-loop and per-buffer rules and the per-kernel
// budget rules, returning the kernel's total (CUs×perCU) resource bill.
func checkKernel(r *Report, part fpga.Part, k fpga.KernelSpec, th Thresholds) hls.Resources {
	var perCU hls.Resources
	anyPartitionedLoop := false
	for _, l := range k.Loops {
		res := checkLoop(r, k.Name, l, th)
		perCU.Add(res)
		if loopTreePartitions(l) {
			anyPartitionedLoop = true
		}
	}
	for _, b := range k.Buffers {
		checkBuffer(r, k.Name, b, anyPartitionedLoop, th)
		perCU.Add(b.Resources())
	}

	if !perCU.Fits(part.Budget) {
		r.add(ResCUOverflow, k.Name, "",
			"one CU needs %s, exceeding the %s budget %s",
			resString(perCU), part.Name, overBudget(perCU, part.Budget))
	}
	total := perCU.Scale(k.CUs)
	if k.CUs > 1 && perCU.Fits(part.Budget) && !total.Fits(part.Budget) {
		r.add(ResKernelOverflow, k.Name, "",
			"%d CUs need %s, exceeding the %s budget %s",
			k.CUs, resString(total), part.Name, overBudget(total, part.Budget))
	}
	return total
}

// loopTreePartitions reports whether the loop or any sub-loop carries
// ARRAY_PARTITION.
func loopTreePartitions(l hls.Loop) bool {
	if l.ArrayPartition {
		return true
	}
	for _, s := range l.Sub {
		if loopTreePartitions(s) {
			return true
		}
	}
	return false
}

// checkLoop runs the PRAG and II rules on one loop (recursing into
// sub-loops) and returns the loop tree's resource cost.
func checkLoop(r *Report, kernel string, l hls.Loop, th Thresholds) hls.Resources {
	if l.Trip < 0 {
		r.add(PragNegativeTrip, kernel, l.Name, "trip count %d is negative", l.Trip)
	}
	if l.Pipeline && len(l.Sub) > 0 {
		r.add(PragPipelineSubLoops, kernel, l.Name,
			"PIPELINE on a loop with %d sub-loop(s); HLS requires sub-loops fully unrolled", len(l.Sub))
	}
	if l.Pipeline && l.Trip == 0 {
		r.add(PragPipelineZeroTrip, kernel, l.Name, "pipelined loop has a zero trip count")
	}
	unroll := l.Unroll
	if unroll > 1 && l.Trip > 0 {
		if unroll > l.Trip {
			r.add(PragUnrollExceedsTrip, kernel, l.Name,
				"UNROLL factor %d exceeds trip count %d; HLS clamps it to %d", unroll, l.Trip, l.Trip)
			unroll = l.Trip
		} else if l.Trip%unroll != 0 {
			r.add(PragUnrollRagged, kernel, l.Name,
				"UNROLL factor %d does not divide trip count %d; the final iteration runs ragged", unroll, l.Trip)
		}
	}
	if l.RequestedII > 0 && !l.Pipeline {
		r.add(PragIIWithoutPipeline, kernel, l.Name,
			"II=%d requested without PIPELINE; the pragma is ignored", l.RequestedII)
	}
	if l.ArrayPartition && l.MemAccessesPerIter == 0 {
		r.add(PragPartitionNoAccess, kernel, l.Name,
			"ARRAY_PARTITION on a loop with no indexed memory accesses is a no-op")
	}
	checkII(r, kernel, l)

	// Resource accounting mirrors hls.ScheduleLoop: the body replicated by
	// the (clamped) unroll factor, plus sub-loop trees.
	if unroll <= 0 {
		unroll = 1
	}
	var body hls.Resources
	for _, op := range l.Body {
		if _, err := op.Latency(); err == nil {
			body.Add(op.Resources())
		}
	}
	res := body.Scale(unroll)
	for _, s := range l.Sub {
		res.Add(checkLoop(r, kernel, s, th))
	}
	return res
}

// checkII fires the II-feasibility rules: the requested initiation interval
// is compared against the same lower bounds hls.ScheduleLoop enforces, so
// the checker predicts exactly the II the scheduler would achieve.
func checkII(r *Report, kernel string, l hls.Loop) {
	if !l.Pipeline || len(l.Sub) > 0 {
		return
	}
	requested := l.RequestedII
	if requested <= 0 {
		requested = 1
	}
	depth := 0
	for _, op := range l.Body {
		lat, err := op.Latency()
		if err != nil {
			return // unknown op: ScheduleLoop reports it; nothing to bound
		}
		depth += lat
	}
	if l.CarriedDep && depth > requested {
		r.add(IICarriedDep, kernel, l.Name,
			"requested II=%d but the carried dependency bounds II to the body latency %d", requested, depth)
	}
	if !l.ArrayPartition && l.MemAccessesPerIter > 0 {
		unroll := l.Unroll
		if unroll <= 0 {
			unroll = 1
		}
		if l.Trip > 0 && unroll > l.Trip {
			unroll = l.Trip
		}
		memII := (l.MemAccessesPerIter*unroll + hls.MemPorts - 1) / hls.MemPorts
		if memII > requested {
			r.add(IIMemoryPorts, kernel, l.Name,
				"requested II=%d but %d memory accesses/iter over %d ports bound II to %d (ARRAY_PARTITION lifts this)",
				requested, l.MemAccessesPerIter*unroll, hls.MemPorts, memII)
		}
	}
}

// checkBuffer runs the BUF rules on one buffer.
func checkBuffer(r *Report, kernel string, b hls.Buffer, anyPartitionedLoop bool, th Thresholds) {
	if b.Words <= 0 {
		r.add(BufDead, kernel, b.Name, "buffer declares %d words of storage", b.Words)
		return
	}
	if b.PartitionComplete {
		if b.Words > th.PartitionWords {
			r.add(BufPartitionHuge, kernel, b.Name,
				"ARRAY_PARTITION complete on %d words costs %d FF; above the %d-word register limit",
				b.Words, b.Words*32, th.PartitionWords)
		}
		if !anyPartitionedLoop {
			r.add(BufPartitionUnindexed, kernel, b.Name,
				"buffer is completely partitioned but no loop in the kernel uses ARRAY_PARTITION; the registers buy nothing")
		}
	}
}

// checkDesignBudget runs the design-level RES rules.
func checkDesignBudget(r *Report, part fpga.Part, total hls.Resources, th Thresholds) {
	if !total.Fits(part.Budget) {
		r.add(ResDesignOverflow, "", "",
			"design needs %s, exceeding the %s budget %s",
			resString(total), part.Name, overBudget(total, part.Budget))
		return
	}
	frac := func(used, budget int) float64 {
		if budget == 0 {
			return 0
		}
		return float64(used) / float64(budget)
	}
	classes := []struct {
		name         string
		used, budget int
	}{
		{"DSP", total.DSP, part.Budget.DSP},
		{"LUT", total.LUT, part.Budget.LUT},
		{"FF", total.FF, part.Budget.FF},
		{"BRAM", total.BRAM, part.Budget.BRAM},
	}
	for _, c := range classes {
		if u := frac(c.used, c.budget); u > th.Utilization {
			r.add(ResTightFit, "", c.name,
				"%s utilization %.1f%% (%d/%d) above the %.0f%% routing-closure threshold",
				c.name, u*100, c.used, c.budget, th.Utilization*100)
		}
	}
}

// checkConnectivity runs the AXI rules over the DDR-bank port map.
func checkConnectivity(r *Report, d Design, th Thresholds) {
	if d.Connectivity == nil {
		return
	}
	masters := make(map[int]int)
	bound := 0
	for _, k := range d.Kernels {
		banks, ok := d.Connectivity[k.Name]
		if !ok {
			continue
		}
		bound++
		for _, bank := range banks {
			if bank < 0 || bank >= d.Part.DDRBanks {
				r.add(AXIBankRange, k.Name, fmt.Sprintf("bank%d", bank),
					"AXI master bound to DDR bank %d; part %s has banks [0, %d)",
					bank, d.Part.Name, d.Part.DDRBanks)
				continue
			}
			masters[bank] += k.CUs
		}
	}
	if bound > 0 && bound < len(d.Kernels) {
		for _, k := range d.Kernels {
			if _, ok := d.Connectivity[k.Name]; !ok {
				r.add(AXIUnbound, k.Name, "",
					"kernel has no DDR-bank connectivity entry; its masters default to bank 0 at link time")
			}
		}
	}
	for bank := 0; bank < d.Part.DDRBanks; bank++ {
		if n := masters[bank]; n > th.MastersPerBank {
			r.add(AXIPortConflict, "", fmt.Sprintf("bank%d", bank),
				"%d AXI masters contend for DDR bank %d; the interconnect serializes above %d ports",
				n, bank, th.MastersPerBank)
		}
	}
}

// checkDataflow runs the DF rules over the declared stream links.
func checkDataflow(r *Report, d Design, kernels map[string]bool) {
	if len(d.Streams) == 0 {
		return
	}
	cus := make(map[string]int, len(d.Kernels))
	for _, k := range d.Kernels {
		cus[k.Name] = k.CUs
	}
	edges := make(map[string][]string)
	for _, s := range d.Streams {
		obj := s.From + "→" + s.To
		okFrom, okTo := kernels[s.From], kernels[s.To]
		if !okFrom {
			r.add(DFUnknownKernel, s.From, obj, "stream producer %q is not in the design", s.From)
		}
		if !okTo {
			r.add(DFUnknownKernel, s.To, obj, "stream consumer %q is not in the design", s.To)
		}
		if okFrom && okTo {
			edges[s.From] = append(edges[s.From], s.To)
			if s.FanOut != cus[s.To] {
				r.add(DFFanOutMismatch, s.From, obj,
					"stream writes %d copies but consumer %q has %d compute unit(s)",
					s.FanOut, s.To, cus[s.To])
			}
		}
	}
	if cyc := findCycle(edges); len(cyc) > 0 {
		r.add(DFCycle, "", strings.Join(cyc, "→"),
			"dataflow streams form a cycle; DATAFLOW regions must be acyclic")
	}
}

// findCycle returns one cycle in the stream graph (as a node path), or nil.
func findCycle(edges map[string][]string) []string {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int)
	var stack []string
	var cycle []string
	var visit func(n string) bool
	visit = func(n string) bool {
		color[n] = gray
		stack = append(stack, n)
		for _, m := range edges[n] {
			switch color[m] {
			case gray:
				for i, s := range stack {
					if s == m {
						cycle = append(append([]string(nil), stack[i:]...), m)
						return true
					}
				}
			case white:
				if visit(m) {
					return true
				}
			}
		}
		color[n] = black
		stack = stack[:len(stack)-1]
		return false
	}
	nodes := make([]string, 0, len(edges))
	for n := range edges {
		nodes = append(nodes, n)
	}
	// Deterministic order keeps golden output stable.
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			if nodes[j] < nodes[i] {
				nodes[i], nodes[j] = nodes[j], nodes[i]
			}
		}
	}
	for _, n := range nodes {
		if color[n] == white && visit(n) {
			return cycle
		}
	}
	return nil
}

// resString renders a resource vector compactly.
func resString(r hls.Resources) string {
	return fmt.Sprintf("DSP %d, LUT %d, FF %d, BRAM %d", r.DSP, r.LUT, r.FF, r.BRAM)
}

// overBudget names the resource classes that overflow.
func overBudget(used, budget hls.Resources) string {
	var over []string
	if used.DSP > budget.DSP {
		over = append(over, fmt.Sprintf("DSP %d/%d", used.DSP, budget.DSP))
	}
	if used.LUT > budget.LUT {
		over = append(over, fmt.Sprintf("LUT %d/%d", used.LUT, budget.LUT))
	}
	if used.FF > budget.FF {
		over = append(over, fmt.Sprintf("FF %d/%d", used.FF, budget.FF))
	}
	if used.BRAM > budget.BRAM {
		over = append(over, fmt.Sprintf("BRAM %d/%d", used.BRAM, budget.BRAM))
	}
	if len(over) == 0 {
		return "(fits)"
	}
	return "on " + strings.Join(over, ", ")
}
