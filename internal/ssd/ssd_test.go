package ssd

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func newTestDrive(t *testing.T) *Drive {
	t.Helper()
	d, err := New(Config{Capacity: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDefaults(t *testing.T) {
	d, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := d.Config()
	if cfg.Capacity != 4<<40 {
		t.Errorf("default capacity = %d, want 4 TB (PM1733)", cfg.Capacity)
	}
	if cfg.PageSize != 4096 {
		t.Errorf("default page size = %d", cfg.PageSize)
	}
	if cfg.ReadLatency != 90*time.Microsecond {
		t.Errorf("default read latency = %v", cfg.ReadLatency)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Capacity: -1}); err == nil {
		t.Error("negative capacity: expected error")
	}
	if _, err := New(Config{ReadBandwidth: -5}); err == nil {
		t.Error("negative bandwidth: expected error")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	d := newTestDrive(t)
	data := []byte("CreateFileW ReadFile CryptEncrypt WriteFile MoveFileW")
	if _, err := d.Write(100, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := d.Read(100, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip: got %q, want %q", got, data)
	}
}

func TestCrossPageAccess(t *testing.T) {
	d := newTestDrive(t)
	data := make([]byte, 10_000) // spans 3 pages
	for i := range data {
		data[i] = byte(i)
	}
	off := int64(4090) // starts near a page boundary
	if _, err := d.Write(off, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := d.Read(off, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("cross-page round trip corrupted data")
	}
}

func TestUnwrittenReadsZero(t *testing.T) {
	d := newTestDrive(t)
	p := []byte{1, 2, 3}
	if _, err := d.Read(5000, p); err != nil {
		t.Fatal(err)
	}
	for i, b := range p {
		if b != 0 {
			t.Fatalf("unwritten byte %d = %d, want 0", i, b)
		}
	}
}

func TestRangeChecks(t *testing.T) {
	d := newTestDrive(t)
	buf := make([]byte, 10)
	if _, err := d.Read(-1, buf); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("negative offset error = %v", err)
	}
	if _, err := d.Write(1<<20-5, buf); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("overflow write error = %v", err)
	}
	if _, err := d.Read(1<<20, buf[:1]); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("read at capacity error = %v", err)
	}
}

func TestTimingModel(t *testing.T) {
	d, err := New(Config{Capacity: 1 << 30, ReadLatency: 90 * time.Microsecond, ReadBandwidth: 7e9})
	if err != nil {
		t.Fatal(err)
	}
	small := make([]byte, 400) // a 100-item sequence of int32s
	tSmall, err := d.Read(0, small)
	if err != nil {
		t.Fatal(err)
	}
	// Latency-dominated: ~90 µs.
	if tSmall < 90*time.Microsecond || tSmall > 92*time.Microsecond {
		t.Fatalf("small read time = %v, want ~90µs", tSmall)
	}
	big := make([]byte, 70_000_000) // 70 MB -> ~10 ms at 7 GB/s
	tBig, err := d.Read(0, big)
	if err != nil {
		t.Fatal(err)
	}
	if tBig < 9*time.Millisecond || tBig > 12*time.Millisecond {
		t.Fatalf("70MB read time = %v, want ~10ms", tBig)
	}
}

func TestFaultInjection(t *testing.T) {
	d := newTestDrive(t)
	if _, err := d.Write(0, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := d.InjectReadFault(0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Read(0, make([]byte, 3)); !errors.Is(err, ErrMediaFault) {
		t.Fatalf("error = %v, want ErrMediaFault", err)
	}
	// Other pages unaffected.
	if _, err := d.Read(8192, make([]byte, 3)); err != nil {
		t.Fatalf("unrelated page failed: %v", err)
	}
	d.ClearFaults()
	if _, err := d.Read(0, make([]byte, 3)); err != nil {
		t.Fatalf("fault persisted after clear: %v", err)
	}
	if err := d.InjectReadFault(1 << 30); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("out-of-range fault injection error = %v", err)
	}
}

func TestStats(t *testing.T) {
	d := newTestDrive(t)
	if _, err := d.Write(0, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Read(0, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.Reads != 1 || s.Writes != 1 || s.ReadBytes != 100 {
		t.Fatalf("stats = %+v", s)
	}
}

// Property: any write followed by a read of the same range returns the same
// bytes.
func TestPropWriteReadConsistency(t *testing.T) {
	d := newTestDrive(t)
	f := func(offRaw uint16, data []byte) bool {
		off := int64(offRaw)
		if len(data) == 0 {
			return true
		}
		if _, err := d.Write(off, data); err != nil {
			return false
		}
		got := make([]byte, len(data))
		if _, err := d.Read(off, got); err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	d := newTestDrive(t)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			off := int64(g * 8192)
			data := bytes.Repeat([]byte{byte(g + 1)}, 4096)
			for i := 0; i < 20; i++ {
				if _, err := d.Write(off, data); err != nil {
					done <- err
					return
				}
				got := make([]byte, 4096)
				if _, err := d.Read(off, got); err != nil {
					done <- err
					return
				}
				if !bytes.Equal(got, data) {
					done <- errors.New("corrupted concurrent read")
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestWriteQuarantine(t *testing.T) {
	d := newTestDrive(t)
	if d.Quarantined() {
		t.Fatal("fresh drive quarantined")
	}
	if _, err := d.Write(0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	d.Quarantine(true)
	if !d.Quarantined() {
		t.Fatal("quarantine not engaged")
	}
	if _, err := d.Write(0, []byte{2}); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("write under quarantine: error = %v, want ErrQuarantined", err)
	}
	// Reads stay available: clean data remains accessible.
	got := make([]byte, 1)
	if _, err := d.Read(0, got); err != nil {
		t.Fatalf("read under quarantine failed: %v", err)
	}
	if got[0] != 1 {
		t.Fatalf("data changed under quarantine: %d", got[0])
	}
	d.Quarantine(false)
	if _, err := d.Write(0, []byte{3}); err != nil {
		t.Fatalf("write after release failed: %v", err)
	}
}
