// Package ssd models the NVMe SSD half of a computational storage drive: a
// page-addressed flash store with NAND-derived latency and bandwidth
// characteristics, plus fault injection for failure-path testing.
//
// The model follows the SmartSSD's PM1733-class drive: multi-channel NAND
// behind a controller, ~90 µs read access latency at queue depth 1 and
// multi-GB/s sequential throughput. Contents are held in memory (sparse page
// map); timing is computed, not slept, so simulations of large workloads run
// fast while reporting realistic device time.
package ssd

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Config describes the drive model.
type Config struct {
	// Capacity is the drive size in bytes; 0 defaults to 4 TB (the
	// SmartSSD's PM1733 capacity).
	Capacity int64
	// PageSize is the flash page size in bytes; 0 defaults to 4096.
	PageSize int
	// ReadLatency is the fixed NAND access latency per read command; 0
	// defaults to 90 µs (PM1733-class QD1 latency).
	ReadLatency time.Duration
	// WriteLatency is the fixed program latency per write command; 0
	// defaults to 30 µs (controller-buffered writes).
	WriteLatency time.Duration
	// ReadBandwidth is sequential read throughput in bytes/s; 0 defaults to
	// 7 GB/s (PM1733 sequential read).
	ReadBandwidth float64
	// WriteBandwidth is sequential write throughput in bytes/s; 0 defaults
	// to 3.8 GB/s.
	WriteBandwidth float64
}

func (c *Config) defaults() {
	if c.Capacity == 0 {
		c.Capacity = 4 << 40
	}
	if c.PageSize == 0 {
		c.PageSize = 4096
	}
	if c.ReadLatency == 0 {
		c.ReadLatency = 90 * time.Microsecond
	}
	if c.WriteLatency == 0 {
		c.WriteLatency = 30 * time.Microsecond
	}
	if c.ReadBandwidth == 0 {
		c.ReadBandwidth = 7e9
	}
	if c.WriteBandwidth == 0 {
		c.WriteBandwidth = 3.8e9
	}
}

func (c *Config) validate() error {
	if c.Capacity < 0 {
		return fmt.Errorf("ssd: negative capacity %d", c.Capacity)
	}
	if c.PageSize < 0 {
		return fmt.Errorf("ssd: negative page size %d", c.PageSize)
	}
	if c.ReadBandwidth < 0 || c.WriteBandwidth < 0 {
		return errors.New("ssd: negative bandwidth")
	}
	return nil
}

// Drive is a simulated NVMe SSD. It is safe for concurrent use.
type Drive struct {
	cfg Config

	mu          sync.Mutex
	pages       map[int64][]byte // page index -> page contents
	failReads   map[int64]error  // injected read faults by page index
	reads       int64            // statistics
	writes      int64
	readBytes   int64
	quarantined bool
}

// New returns an empty drive with the given configuration.
func New(cfg Config) (*Drive, error) {
	cfg.defaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Drive{
		cfg:       cfg,
		pages:     make(map[int64][]byte),
		failReads: make(map[int64]error),
	}, nil
}

// Config returns the drive's configuration (with defaults applied).
func (d *Drive) Config() Config { return d.cfg }

// ErrOutOfRange is returned for accesses beyond the drive capacity.
var ErrOutOfRange = errors.New("ssd: access beyond drive capacity")

// ErrMediaFault is the base error for injected read faults.
var ErrMediaFault = errors.New("ssd: uncorrectable media error")

// ErrQuarantined is returned by Write while the drive's write quarantine is
// engaged — the in-storage mitigation the paper's detector triggers to
// "immediately thwart any subsequent encryption by the malware" (§IV).
// Reads continue to succeed, so clean data remains accessible.
var ErrQuarantined = errors.New("ssd: write quarantine engaged")

func (d *Drive) checkRange(off int64, n int) error {
	if off < 0 || n < 0 || off+int64(n) > d.cfg.Capacity {
		return fmt.Errorf("%w: offset %d length %d capacity %d", ErrOutOfRange, off, n, d.cfg.Capacity)
	}
	return nil
}

// Write stores p at byte offset off and returns the simulated device time.
func (d *Drive) Write(off int64, p []byte) (time.Duration, error) {
	if err := d.checkRange(off, len(p)); err != nil {
		return 0, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.quarantined {
		return 0, ErrQuarantined
	}
	ps := int64(d.cfg.PageSize)
	for i := 0; i < len(p); {
		page := (off + int64(i)) / ps
		inPage := int((off + int64(i)) % ps)
		n := min(len(p)-i, d.cfg.PageSize-inPage)
		buf, ok := d.pages[page]
		if !ok {
			buf = make([]byte, d.cfg.PageSize)
			d.pages[page] = buf
		}
		copy(buf[inPage:inPage+n], p[i:i+n])
		i += n
	}
	d.writes++
	return d.cfg.WriteLatency + d.xferTime(len(p), d.cfg.WriteBandwidth), nil
}

// Read fills p from byte offset off and returns the simulated device time.
// Unwritten regions read as zeros, as a trimmed flash region does.
func (d *Drive) Read(off int64, p []byte) (time.Duration, error) {
	if err := d.checkRange(off, len(p)); err != nil {
		return 0, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	ps := int64(d.cfg.PageSize)
	for i := 0; i < len(p); {
		page := (off + int64(i)) / ps
		if err, faulty := d.failReads[page]; faulty {
			return 0, fmt.Errorf("page %d: %w", page, err)
		}
		inPage := int((off + int64(i)) % ps)
		n := min(len(p)-i, d.cfg.PageSize-inPage)
		if buf, ok := d.pages[page]; ok {
			copy(p[i:i+n], buf[inPage:inPage+n])
		} else {
			clear(p[i : i+n])
		}
		i += n
	}
	d.reads++
	d.readBytes += int64(len(p))
	return d.cfg.ReadLatency + d.xferTime(len(p), d.cfg.ReadBandwidth), nil
}

func (d *Drive) xferTime(n int, bw float64) time.Duration {
	if bw <= 0 {
		return 0
	}
	return time.Duration(float64(n) / bw * float64(time.Second))
}

// InjectReadFault makes every read touching the page at byte offset off fail
// with ErrMediaFault until ClearFaults is called. It models an uncorrectable
// NAND error for failure-path tests.
func (d *Drive) InjectReadFault(off int64) error {
	if err := d.checkRange(off, 1); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failReads[off/int64(d.cfg.PageSize)] = ErrMediaFault
	return nil
}

// ClearFaults removes all injected faults.
func (d *Drive) ClearFaults() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failReads = make(map[int64]error)
}

// Quarantine engages (or releases) the drive's write quarantine.
func (d *Drive) Quarantine(on bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.quarantined = on
}

// Quarantined reports whether the write quarantine is engaged.
func (d *Drive) Quarantined() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.quarantined
}

// Stats reports cumulative operation counts.
type Stats struct {
	Reads, Writes, ReadBytes int64
}

// Stats returns a snapshot of the drive's counters.
func (d *Drive) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return Stats{Reads: d.reads, Writes: d.writes, ReadBytes: d.readBytes}
}
