package baseline

import (
	"math"
	"testing"

	"github.com/kfrida1/csdinf/internal/lstm"
	"github.com/kfrida1/csdinf/internal/metrics"
)

func TestPresetsMatchTableIMeans(t *testing.T) {
	if got := CPUXeon.Mean(); math.Abs(got-991.5775) > 1e-9 {
		t.Errorf("CPU mean = %v, want 991.5775 (Table I)", got)
	}
	if got := GPUA100.Mean(); math.Abs(got-741.35336) > 1e-9 {
		t.Errorf("GPU mean = %v, want 741.35336 (Table I)", got)
	}
}

func TestValidate(t *testing.T) {
	bad := []FrameworkModel{
		{OpsPerItem: 0, MeanPerOpMicros: 1},
		{OpsPerItem: 1, MeanPerOpMicros: 0},
		{OpsPerItem: 1, MeanPerOpMicros: 1, CVPerOp: -1},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("model %d: expected validation error", i)
		}
	}
	if err := CPUXeon.Validate(); err != nil {
		t.Errorf("CPU preset invalid: %v", err)
	}
}

func TestSampleTrialsValidation(t *testing.T) {
	if _, err := CPUXeon.SampleTrials(0, 1); err == nil {
		t.Error("zero trials: expected error")
	}
	if _, err := (FrameworkModel{}).SampleTrials(10, 1); err == nil {
		t.Error("invalid model: expected error")
	}
}

func TestSampleDeterministicBySeed(t *testing.T) {
	a, err := GPUA100.SampleTrials(100, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GPUA100.SampleTrials(100, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
	}
	c, err := GPUA100.SampleTrials(100, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a[0] == c[0] {
		t.Fatal("different seeds produced identical first sample")
	}
}

func TestSampledStatisticsMatchCalibration(t *testing.T) {
	// With many samples, the empirical mean and spread must reproduce the
	// Table I rows they were calibrated to.
	tests := []struct {
		model                           FrameworkModel
		wantMean, wantCILow, wantCIHigh float64
	}{
		{CPUXeon, 991.5775, 217.46576, 1765.68923},
		{GPUA100, 741.35336, 394.45317, 1088.25355},
	}
	for _, tt := range tests {
		t.Run(tt.model.Name, func(t *testing.T) {
			sample, err := tt.model.SampleTrials(20_000, 42)
			if err != nil {
				t.Fatal(err)
			}
			s, err := metrics.Summarize(sample)
			if err != nil {
				t.Fatal(err)
			}
			if rel := math.Abs(s.Mean-tt.wantMean) / tt.wantMean; rel > 0.05 {
				t.Errorf("mean = %v, want %v (off %.1f%%)", s.Mean, tt.wantMean, rel*100)
			}
			low, high, err := metrics.SpreadCI(sample)
			if err != nil {
				t.Fatal(err)
			}
			// The spread interval half-width should match the paper's CI
			// half-width within 15%.
			wantHalf := (tt.wantCIHigh - tt.wantCILow) / 2
			gotHalf := (high - low) / 2
			if rel := math.Abs(gotHalf-wantHalf) / wantHalf; rel > 0.15 {
				t.Errorf("CI half-width = %v, want %v (off %.1f%%)", gotHalf, wantHalf, rel*100)
			}
		})
	}
}

func TestAllSamplesPositive(t *testing.T) {
	sample, err := CPUXeon.SampleTrials(5000, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range sample {
		if v <= 0 {
			t.Fatalf("sample %d = %v, lognormal sums must be positive", i, v)
		}
	}
}

func TestGPUFasterThanCPUOnAverage(t *testing.T) {
	cpu, err := CPUXeon.SampleTrials(5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	gpu, err := GPUA100.SampleTrials(5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	sc, _ := metrics.Summarize(cpu)
	sg, _ := metrics.Summarize(gpu)
	if sg.Mean >= sc.Mean {
		t.Fatalf("GPU mean %v should beat CPU mean %v (Table I ordering)", sg.Mean, sc.Mean)
	}
}

func TestMeasureGoCPU(t *testing.T) {
	m, err := lstm.NewModel(lstm.PaperConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	seq := make([]int, 100)
	for i := range seq {
		seq[i] = i % 278
	}
	sample, err := MeasureGoCPU(m, seq, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(sample) != 5 {
		t.Fatalf("trials = %d", len(sample))
	}
	for i, v := range sample {
		if v <= 0 {
			t.Fatalf("trial %d = %v µs", i, v)
		}
	}
}

func TestMeasureGoCPUValidation(t *testing.T) {
	m, err := lstm.NewModel(lstm.PaperConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MeasureGoCPU(nil, []int{1}, 1); err == nil {
		t.Error("nil model: expected error")
	}
	if _, err := MeasureGoCPU(m, nil, 1); err == nil {
		t.Error("empty sequence: expected error")
	}
	if _, err := MeasureGoCPU(m, []int{1}, 0); err == nil {
		t.Error("zero trials: expected error")
	}
	if _, err := MeasureGoCPU(m, []int{999}, 1); err == nil {
		t.Error("OOV sequence: expected error")
	}
}
