package baseline

import (
	"testing"

	"github.com/kfrida1/csdinf/internal/dataset"
)

func nonseqData(t *testing.T) (*dataset.Dataset, *dataset.Dataset) {
	t.Helper()
	ds, err := dataset.Build(dataset.BuildConfig{
		RansomwareCount: 304, BenignCount: 310, Window: 50, Stride: 25, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	trainDS, testDS, err := ds.Split(0.25, 8)
	if err != nil {
		t.Fatal(err)
	}
	return trainDS, testDS
}

func TestNewHistogramClassifierValidation(t *testing.T) {
	if _, err := NewHistogramClassifier(0); err == nil {
		t.Error("zero vocab: expected error")
	}
	if _, err := NewHistogramClassifier(-1); err == nil {
		t.Error("negative vocab: expected error")
	}
}

func TestHistogramFeatures(t *testing.T) {
	c, err := NewHistogramClassifier(5)
	if err != nil {
		t.Fatal(err)
	}
	f, err := c.features([]int{0, 0, 1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if f[0] != 0.5 || f[1] != 0.25 || f[4] != 0.25 || f[2] != 0 {
		t.Fatalf("features = %v", f)
	}
	if _, err := c.features(nil); err == nil {
		t.Error("empty sequence: expected error")
	}
	if _, err := c.features([]int{9}); err == nil {
		t.Error("OOV item: expected error")
	}
}

func TestHistogramTrainValidation(t *testing.T) {
	c, err := NewHistogramClassifier(278)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Train(nil, HistTrainConfig{}); err == nil {
		t.Error("nil dataset: expected error")
	}
	if err := c.Train(&dataset.Dataset{}, HistTrainConfig{}); err == nil {
		t.Error("empty dataset: expected error")
	}
	if _, err := c.Evaluate(&dataset.Dataset{}); err == nil {
		t.Error("empty evaluation: expected error")
	}
}

func TestHistogramLearnsCorpus(t *testing.T) {
	trainDS, testDS := nonseqData(t)
	c, err := NewHistogramClassifier(278)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Train(trainDS, HistTrainConfig{Epochs: 20, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	conf, err := c.Evaluate(testDS)
	if err != nil {
		t.Fatal(err)
	}
	// The snapshot model must be far better than chance — the corpus has
	// strong lexical signal — but the quantity of interest (how close it
	// gets to the LSTM) is measured in the model-selection experiment.
	if acc := conf.Accuracy(); acc < 0.8 {
		t.Fatalf("histogram accuracy = %v, should beat 0.8", acc)
	}
	if conf.Total() != len(testDS.Sequences) {
		t.Fatalf("evaluated %d of %d", conf.Total(), len(testDS.Sequences))
	}
}
