// Package baseline provides the CPU and GPU comparison points of the
// paper's Table I.
//
// The paper measures the per-item forward-pass latency of the same LSTM on
// an Intel Xeon (991.58 µs, 95% CI 217.5–1765.7) and an NVIDIA A100
// (741.35 µs, 95% CI 394.5–1088.3). Neither device is available here, and
// more importantly neither number is about raw FLOPs — a 7,472-parameter
// LSTM step is ~10K multiply-accumulates, microseconds of arithmetic even on
// one CPU core. The hundreds of microseconds the paper reports are
// framework execution overhead: per-operator dispatch on the CPU path and
// kernel-launch/synchronization costs on the GPU path, with enormous
// variance (the CPU CI spans 8×).
//
// The substitution therefore models exactly that structure: a forward pass
// is a fixed number of framework operations, each paying a heavy-tailed
// (lognormal) dispatch cost, with the per-op means calibrated to Table I's
// reported means and the dispersion to its confidence intervals. The
// ordering and magnitude of the FPGA-vs-GPU-vs-CPU comparison — the claim
// the paper is making — is reproduced; the absolute calibration constants
// are recorded here and in EXPERIMENTS.md.
//
// For honesty, MeasureGoCPU also *actually measures* a plain Go
// implementation of the forward pass on the build machine, reported
// alongside the model in the Table I harness: it shows what a
// framework-free CPU implementation costs and makes the overhead
// attribution explicit.
package baseline

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/kfrida1/csdinf/internal/lstm"
)

// FrameworkModel describes per-item inference latency on a framework-hosted
// platform as a sum of per-operation dispatch costs.
type FrameworkModel struct {
	// Name labels the platform in reports.
	Name string
	// OpsPerItem is the number of framework operations dispatched per
	// LSTM timestep.
	OpsPerItem int
	// MeanPerOpMicros is the mean cost of one operation in µs.
	MeanPerOpMicros float64
	// CVPerOp is the coefficient of variation (σ/mean) of one operation's
	// cost; dispatch costs are heavy-tailed, so this is large.
	CVPerOp float64
}

// CPUXeon is the Table I CPU row: an Intel Xeon running the classifier
// under an eager ML framework.
//
// Per timestep the framework dispatches 26 operations: 5 per gate (input
// matmul, recurrent matmul, sum, bias add, activation) × 4 gates, the
// embedding gather, and 5 cell/hidden element-wise ops. The per-op mean is
// calibrated so 26 ops reproduce the paper's 991.58 µs mean, and the CV so
// the spread interval reproduces the paper's 217.5–1765.7 µs CI.
var CPUXeon = FrameworkModel{
	Name:            "CPU (Intel Xeon)",
	OpsPerItem:      26,
	MeanPerOpMicros: 991.5775 / 26,
	CVPerOp:         2.03,
}

// GPUA100 is the Table I GPU row: an NVIDIA A100. Per timestep the runtime
// issues ~10 kernel launches (fused gate GEMMs, element-wise kernels, the
// gather, synchronization); launch+sync dominates at this tiny model size.
var GPUA100 = FrameworkModel{
	Name:            "GPU (NVIDIA A100)",
	OpsPerItem:      10,
	MeanPerOpMicros: 741.35336 / 10,
	CVPerOp:         0.76,
}

// Validate reports whether the model's parameters are usable.
func (m FrameworkModel) Validate() error {
	if m.OpsPerItem <= 0 {
		return fmt.Errorf("baseline: OpsPerItem must be positive, got %d", m.OpsPerItem)
	}
	if m.MeanPerOpMicros <= 0 {
		return fmt.Errorf("baseline: MeanPerOpMicros must be positive, got %v", m.MeanPerOpMicros)
	}
	if m.CVPerOp < 0 {
		return fmt.Errorf("baseline: CVPerOp must be non-negative, got %v", m.CVPerOp)
	}
	return nil
}

// Mean returns the expected per-item latency in µs (ops × mean per op).
func (m FrameworkModel) Mean() float64 {
	return float64(m.OpsPerItem) * m.MeanPerOpMicros
}

// SampleItem draws one per-item latency in µs: the sum of OpsPerItem
// independent lognormal dispatch costs.
func (m FrameworkModel) SampleItem(rng *rand.Rand) float64 {
	// Lognormal with mean mu_x and CV c: sigma² = ln(1+c²),
	// mu = ln(mu_x) - sigma²/2.
	sigma2 := math.Log(1 + m.CVPerOp*m.CVPerOp)
	mu := math.Log(m.MeanPerOpMicros) - sigma2/2
	sigma := math.Sqrt(sigma2)
	var total float64
	for i := 0; i < m.OpsPerItem; i++ {
		total += math.Exp(mu + sigma*rng.NormFloat64())
	}
	return total
}

// SampleTrials draws n per-item latencies deterministically from the seed.
func (m FrameworkModel) SampleTrials(n int, seed int64) ([]float64, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("baseline: trial count must be positive, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = m.SampleItem(rng)
	}
	return out, nil
}

// MeasureGoCPU measures the real wall-clock per-item latency of this
// machine running the forward pass in plain Go: total sequence time divided
// by sequence length, repeated for the requested number of trials. It is
// the framework-free reference point reported next to the modeled Table I
// rows.
func MeasureGoCPU(m *lstm.Model, seq []int, trials int) ([]float64, error) {
	if m == nil {
		return nil, errors.New("baseline: nil model")
	}
	if len(seq) == 0 {
		return nil, errors.New("baseline: empty sequence")
	}
	if trials <= 0 {
		return nil, fmt.Errorf("baseline: trial count must be positive, got %d", trials)
	}
	out := make([]float64, trials)
	for i := range out {
		start := time.Now()
		if _, err := m.Forward(seq); err != nil {
			return nil, fmt.Errorf("baseline: forward: %w", err)
		}
		elapsed := time.Since(start)
		out[i] = float64(elapsed.Nanoseconds()) / 1000 / float64(len(seq))
	}
	return out, nil
}
