package baseline

import (
	"context"
	"errors"
	"math"
	"testing"

	"github.com/kfrida1/csdinf/internal/activation"
	"github.com/kfrida1/csdinf/internal/infer"
	"github.com/kfrida1/csdinf/internal/lstm"
)

func testModel(t *testing.T) *lstm.Model {
	t.Helper()
	m, err := lstm.NewModel(lstm.Config{
		VocabSize: 20, EmbedDim: 4, HiddenSize: 6, CellActivation: activation.Softsign,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewHostLSTMValidation(t *testing.T) {
	m := testModel(t)
	if _, err := NewHostLSTM(nil, 5, nil, 1); err == nil {
		t.Error("nil model: expected error")
	}
	if _, err := NewHostLSTM(m, 0, nil, 1); err == nil {
		t.Error("zero window: expected error")
	}
	bad := FrameworkModel{OpsPerItem: -1}
	if _, err := NewHostLSTM(m, 5, &bad, 1); err == nil {
		t.Error("invalid framework model: expected error")
	}
}

func TestHostLSTMMatchesReference(t *testing.T) {
	m := testModel(t)
	h, err := NewHostLSTM(m, 5, &CPUXeon, 7)
	if err != nil {
		t.Fatal(err)
	}
	if h.SeqLen() != 5 {
		t.Fatalf("SeqLen = %d", h.SeqLen())
	}
	seq := []int{3, 1, 4, 1, 5}
	res, timing, err := h.Predict(context.Background(), seq)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.Forward(seq)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Probability-want) > 1e-12 {
		t.Fatalf("host %v vs reference %v", res.Probability, want)
	}
	if timing.Compute <= 0 {
		t.Fatal("framework model charged no compute time")
	}
	if timing.Transfer != 0 {
		t.Fatalf("host path paid a transfer: %v", timing.Transfer)
	}
	if _, _, err := h.Predict(context.Background(), []int{1, 2}); err == nil {
		t.Error("wrong length accepted")
	}
}

func TestHostLSTMMeasuredPath(t *testing.T) {
	h, err := NewHostLSTM(testModel(t), 5, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, timing, err := h.Predict(context.Background(), []int{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if timing.Compute <= 0 {
		t.Fatal("measured path charged no wall-clock time")
	}
}

func TestHostLSTMStoredAndContext(t *testing.T) {
	h, err := NewHostLSTM(testModel(t), 5, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := h.PredictStored(context.Background(), 0); !errors.Is(err, infer.ErrNoStoredData) {
		t.Fatalf("PredictStored error = %v, want ErrNoStoredData", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := h.Predict(ctx, []int{1, 2, 3, 4, 5}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Predict error = %v, want context.Canceled", err)
	}
}

func TestHistogramInferencer(t *testing.T) {
	clf, err := NewHistogramClassifier(20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewHistogramInferencer(nil, 5); err == nil {
		t.Error("nil classifier: expected error")
	}
	if _, err := NewHistogramInferencer(clf, 0); err == nil {
		t.Error("zero window: expected error")
	}
	h, err := NewHistogramInferencer(clf, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := h.Predict(context.Background(), []int{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	// Untrained classifier: z = 0 → probability exactly 0.5.
	if res.Probability != 0.5 {
		t.Fatalf("untrained probability = %v, want 0.5", res.Probability)
	}
	if _, _, err := h.Predict(context.Background(), []int{1}); err == nil {
		t.Error("wrong length accepted")
	}
	if _, _, err := h.PredictStored(context.Background(), 64); !errors.Is(err, infer.ErrNoStoredData) {
		t.Fatalf("PredictStored error = %v, want ErrNoStoredData", err)
	}
}
