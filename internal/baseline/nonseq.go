package baseline

// The paper's model selection (§III-A) argues for an LSTM over
// "non-sequential models (i.e., those that do not process data in a
// time-dependent sequence) [that] might only analyze static snapshots of
// data". This file implements exactly that comparator: a logistic
// regression over the API-call frequency histogram of a window — the
// strongest model that sees *what* was called but not *in which order* —
// so the LSTM's advantage (or lack of it, on a given corpus) can be
// measured instead of asserted.

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/kfrida1/csdinf/internal/dataset"
	"github.com/kfrida1/csdinf/internal/metrics"
)

// HistogramClassifier is a logistic regression on normalized API-call
// frequency histograms: a non-sequential snapshot model.
type HistogramClassifier struct {
	// W holds one weight per vocabulary item; B is the bias.
	W []float64
	B float64
}

// NewHistogramClassifier returns an untrained classifier over the given
// vocabulary size.
func NewHistogramClassifier(vocabSize int) (*HistogramClassifier, error) {
	if vocabSize <= 0 {
		return nil, fmt.Errorf("baseline: vocabulary size must be positive, got %d", vocabSize)
	}
	return &HistogramClassifier{W: make([]float64, vocabSize)}, nil
}

// features converts a window into its normalized call histogram.
func (c *HistogramClassifier) features(seq []int) ([]float64, error) {
	if len(seq) == 0 {
		return nil, errors.New("baseline: empty sequence")
	}
	f := make([]float64, len(c.W))
	for _, it := range seq {
		if it < 0 || it >= len(c.W) {
			return nil, fmt.Errorf("baseline: item %d outside vocabulary %d", it, len(c.W))
		}
		f[it]++
	}
	inv := 1 / float64(len(seq))
	for i := range f {
		f[i] *= inv
	}
	return f, nil
}

// Probability returns the ransomware probability of a window.
func (c *HistogramClassifier) Probability(seq []int) (float64, error) {
	f, err := c.features(seq)
	if err != nil {
		return 0, err
	}
	z := c.B
	for i, v := range f {
		z += c.W[i] * v
	}
	return 1 / (1 + math.Exp(-z)), nil
}

// Predict returns the hard label at threshold 0.5.
func (c *HistogramClassifier) Predict(seq []int) (bool, float64, error) {
	p, err := c.Probability(seq)
	if err != nil {
		return false, 0, err
	}
	return p >= 0.5, p, nil
}

// TrainConfig controls histogram-classifier training.
type HistTrainConfig struct {
	// Epochs of SGD; 0 defaults to 30.
	Epochs int
	// LR is the learning rate; 0 defaults to 1.0 (features are sparse and
	// normalized, so large steps are stable).
	LR float64
	// L2 is the weight-decay coefficient; 0 defaults to 1e-4.
	L2 float64
	// Seed drives epoch shuffling.
	Seed int64
}

// Train fits the classifier on the dataset with SGD over the logistic
// loss.
func (c *HistogramClassifier) Train(ds *dataset.Dataset, cfg HistTrainConfig) error {
	if ds == nil || len(ds.Sequences) == 0 {
		return errors.New("baseline: empty training set")
	}
	if cfg.Epochs == 0 {
		cfg.Epochs = 30
	}
	if cfg.LR == 0 {
		cfg.LR = 1.0
	}
	if cfg.L2 == 0 {
		cfg.L2 = 1e-4
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := make([]int, len(ds.Sequences))
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, idx := range order {
			s := ds.Sequences[idx]
			f, err := c.features(s.Items)
			if err != nil {
				return err
			}
			z := c.B
			for i, v := range f {
				z += c.W[i] * v
			}
			p := 1 / (1 + math.Exp(-z))
			y := 0.0
			if s.Ransomware {
				y = 1
			}
			g := p - y
			for i, v := range f {
				if v != 0 {
					c.W[i] -= cfg.LR * (g*v + cfg.L2*c.W[i])
				}
			}
			c.B -= cfg.LR * g
		}
	}
	return nil
}

// Evaluate returns the confusion matrix of the classifier over ds.
func (c *HistogramClassifier) Evaluate(ds *dataset.Dataset) (metrics.Confusion, error) {
	if ds == nil || len(ds.Sequences) == 0 {
		return metrics.Confusion{}, errors.New("baseline: empty evaluation set")
	}
	var conf metrics.Confusion
	for i, s := range ds.Sequences {
		pred, _, err := c.Predict(s.Items)
		if err != nil {
			return metrics.Confusion{}, fmt.Errorf("baseline: sequence %d: %w", i, err)
		}
		conf.Observe(pred, s.Ransomware)
	}
	return conf, nil
}
