package baseline

// This file adapts the package's comparison-point models to the stack-wide
// infer.Inferencer contract, so the host-framework LSTM (Table I's CPU/GPU
// rows) and the non-sequential histogram classifier can be dropped into any
// consumer of the interface — the detector, the mux, the serving layer —
// and compared against the CSD engine on identical streams.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/kfrida1/csdinf/internal/infer"
	"github.com/kfrida1/csdinf/internal/kernels"
	"github.com/kfrida1/csdinf/internal/lstm"
)

// HostLSTM runs the reference LSTM on the host and reports framework-model
// latencies: the same classifier the CSD engine runs, but paying the
// Table I per-item dispatch costs instead of the FPGA pipeline's. With a
// nil Framework it charges the measured Go wall-clock time instead.
type HostLSTM struct {
	model  *lstm.Model
	seqLen int

	// mu guards rng (SampleItem mutates it) and serializes Forward, which
	// mirrors the single-stream eager-framework execution being modeled.
	mu  sync.Mutex
	fw  *FrameworkModel
	rng *rand.Rand
}

var _ infer.Inferencer = (*HostLSTM)(nil)

// NewHostLSTM wraps the model as an Inferencer with the given window
// length. fw selects the framework latency model (e.g. &CPUXeon, &GPUA100);
// nil charges measured Go wall-clock time. seed drives latency sampling.
func NewHostLSTM(m *lstm.Model, seqLen int, fw *FrameworkModel, seed int64) (*HostLSTM, error) {
	if m == nil {
		return nil, errors.New("baseline: nil model")
	}
	if seqLen <= 0 {
		return nil, fmt.Errorf("baseline: window length must be positive, got %d", seqLen)
	}
	if fw != nil {
		if err := fw.Validate(); err != nil {
			return nil, err
		}
	}
	return &HostLSTM{
		model: m, seqLen: seqLen, fw: fw,
		rng: rand.New(rand.NewSource(seed)),
	}, nil
}

// Predict classifies the window on the host LSTM. Timing.Compute is the
// framework model's sampled per-item latency summed over the window (or the
// measured wall clock with a nil framework); Transfer is zero — the data is
// already in host memory.
func (h *HostLSTM) Predict(ctx context.Context, seq []int) (kernels.Result, infer.Timing, error) {
	if err := ctx.Err(); err != nil {
		return kernels.Result{}, infer.Timing{}, err
	}
	if len(seq) != h.seqLen {
		return kernels.Result{}, infer.Timing{}, fmt.Errorf("baseline: sequence length %d, host model expects %d",
			len(seq), h.seqLen)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	start := time.Now()
	p, err := h.model.Forward(seq)
	if err != nil {
		return kernels.Result{}, infer.Timing{}, fmt.Errorf("baseline: forward: %w", err)
	}
	var compute time.Duration
	if h.fw != nil {
		var micros float64
		for i := 0; i < len(seq); i++ {
			micros += h.fw.SampleItem(h.rng)
		}
		compute = time.Duration(micros * float64(time.Microsecond))
	} else {
		compute = time.Since(start)
	}
	res := kernels.Result{Ransomware: p >= 0.5, Probability: p}
	return res, infer.Timing{Compute: compute}, nil
}

// PredictStored fails: a host model has no attached storage to read from.
func (h *HostLSTM) PredictStored(ctx context.Context, ssdOff int64) (kernels.Result, infer.Timing, error) {
	if err := ctx.Err(); err != nil {
		return kernels.Result{}, infer.Timing{}, err
	}
	return kernels.Result{}, infer.Timing{}, fmt.Errorf("baseline: host LSTM offset %d: %w", ssdOff, infer.ErrNoStoredData)
}

// SeqLen returns the classification window length.
func (h *HostLSTM) SeqLen() int { return h.seqLen }

// HistogramInferencer adapts the non-sequential histogram classifier to the
// Inferencer contract, for order-blind ablations on live streams.
type HistogramInferencer struct {
	clf    *HistogramClassifier
	seqLen int
}

var _ infer.Inferencer = (*HistogramInferencer)(nil)

// NewHistogramInferencer wraps a (typically trained) histogram classifier.
func NewHistogramInferencer(clf *HistogramClassifier, seqLen int) (*HistogramInferencer, error) {
	if clf == nil {
		return nil, errors.New("baseline: nil classifier")
	}
	if seqLen <= 0 {
		return nil, fmt.Errorf("baseline: window length must be positive, got %d", seqLen)
	}
	return &HistogramInferencer{clf: clf, seqLen: seqLen}, nil
}

// Predict classifies the window's call histogram. The snapshot model is
// computationally negligible, so Timing is zero.
func (h *HistogramInferencer) Predict(ctx context.Context, seq []int) (kernels.Result, infer.Timing, error) {
	if err := ctx.Err(); err != nil {
		return kernels.Result{}, infer.Timing{}, err
	}
	if len(seq) != h.seqLen {
		return kernels.Result{}, infer.Timing{}, fmt.Errorf("baseline: sequence length %d, histogram model expects %d",
			len(seq), h.seqLen)
	}
	flagged, p, err := h.clf.Predict(seq)
	if err != nil {
		return kernels.Result{}, infer.Timing{}, err
	}
	return kernels.Result{Ransomware: flagged, Probability: p}, infer.Timing{}, nil
}

// PredictStored fails: the snapshot model has no attached storage.
func (h *HistogramInferencer) PredictStored(ctx context.Context, ssdOff int64) (kernels.Result, infer.Timing, error) {
	if err := ctx.Err(); err != nil {
		return kernels.Result{}, infer.Timing{}, err
	}
	return kernels.Result{}, infer.Timing{}, fmt.Errorf("baseline: histogram model offset %d: %w", ssdOff, infer.ErrNoStoredData)
}

// SeqLen returns the classification window length.
func (h *HistogramInferencer) SeqLen() int { return h.seqLen }
