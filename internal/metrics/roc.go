package metrics

import (
	"errors"
	"fmt"
	"sort"
)

// ScoredPrediction is one example's predicted probability and ground truth,
// the input to threshold-independent evaluation.
type ScoredPrediction struct {
	// Probability is the classifier's ransomware probability.
	Probability float64
	// Actual is the ground-truth label.
	Actual bool
}

// ThresholdPoint is the confusion matrix at one decision threshold.
type ThresholdPoint struct {
	Threshold float64
	Confusion Confusion
	// TPR is the true-positive rate (recall) at this threshold.
	TPR float64
	// FPR is the false-positive rate at this threshold.
	FPR float64
}

// ThresholdSweep evaluates the scored predictions at each threshold,
// producing the precision/recall trade-off behind the paper's fixed-0.5
// operating point.
func ThresholdSweep(preds []ScoredPrediction, thresholds []float64) ([]ThresholdPoint, error) {
	if len(preds) == 0 {
		return nil, errors.New("metrics: no predictions")
	}
	if len(thresholds) == 0 {
		return nil, errors.New("metrics: no thresholds")
	}
	out := make([]ThresholdPoint, 0, len(thresholds))
	for _, th := range thresholds {
		if th < 0 || th > 1 {
			return nil, fmt.Errorf("metrics: threshold %v outside [0, 1]", th)
		}
		var c Confusion
		for _, p := range preds {
			c.Observe(p.Probability >= th, p.Actual)
		}
		pt := ThresholdPoint{Threshold: th, Confusion: c}
		if c.TP+c.FN > 0 {
			pt.TPR = float64(c.TP) / float64(c.TP+c.FN)
		}
		if c.FP+c.TN > 0 {
			pt.FPR = float64(c.FP) / float64(c.FP+c.TN)
		}
		out = append(out, pt)
	}
	return out, nil
}

// AUC computes the area under the ROC curve by the rank-sum
// (Mann-Whitney U) formulation: the probability a random positive scores
// above a random negative, with ties counted half.
func AUC(preds []ScoredPrediction) (float64, error) {
	var pos, neg int
	for _, p := range preds {
		if p.Actual {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return 0, errors.New("metrics: AUC requires both classes")
	}
	sorted := append([]ScoredPrediction(nil), preds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Probability < sorted[j].Probability })

	// Assign average ranks, handling ties.
	ranks := make([]float64, len(sorted))
	for i := 0; i < len(sorted); {
		j := i
		for j < len(sorted) && sorted[j].Probability == sorted[i].Probability {
			j++
		}
		avg := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = avg
		}
		i = j
	}
	var rankSum float64
	for i, p := range sorted {
		if p.Actual {
			rankSum += ranks[i]
		}
	}
	u := rankSum - float64(pos)*float64(pos+1)/2
	return u / (float64(pos) * float64(neg)), nil
}
