// Package metrics implements the binary-classification metrics and the
// confidence-interval estimation used by the paper's evaluation (§IV):
// accuracy, precision, recall, F1 from a confusion matrix, and mean ± 95% CI
// for latency measurements (Table I).
package metrics

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Confusion is a binary confusion matrix. The positive class is
// "ransomware".
type Confusion struct {
	TP, FP, TN, FN int
}

// Observe records one prediction against ground truth.
func (c *Confusion) Observe(predicted, actual bool) {
	switch {
	case predicted && actual:
		c.TP++
	case predicted && !actual:
		c.FP++
	case !predicted && !actual:
		c.TN++
	default:
		c.FN++
	}
}

// Total returns the number of observations.
func (c *Confusion) Total() int { return c.TP + c.FP + c.TN + c.FN }

// Accuracy returns (TP+TN)/total, or 0 for an empty matrix.
func (c *Confusion) Accuracy() float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(t)
}

// Precision returns TP/(TP+FP), or 0 when no positives were predicted.
func (c *Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), or 0 when no positives exist.
func (c *Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall, or 0 when undefined.
func (c *Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// String formats the matrix and derived scores.
func (c *Confusion) String() string {
	return fmt.Sprintf("TP=%d FP=%d TN=%d FN=%d acc=%.4f prec=%.4f rec=%.4f f1=%.4f",
		c.TP, c.FP, c.TN, c.FN, c.Accuracy(), c.Precision(), c.Recall(), c.F1())
}

// Scores bundles the four headline metrics.
type Scores struct {
	Accuracy, Precision, Recall, F1 float64
}

// Scores returns the four headline metrics of the matrix.
func (c *Confusion) Scores() Scores {
	return Scores{Accuracy: c.Accuracy(), Precision: c.Precision(), Recall: c.Recall(), F1: c.F1()}
}

// Summary describes a latency sample: mean and a 95% confidence interval, as
// reported in the paper's Table I.
type Summary struct {
	N          int
	Mean       float64
	StdDev     float64
	CILow      float64
	CIHigh     float64
	Min, Max   float64
	Median     float64
	P95        float64
	HasCI      bool // false when N < 2
	Confidence float64
}

// ErrEmptySample is returned when summarizing zero observations.
var ErrEmptySample = errors.New("metrics: empty sample")

// Summarize computes mean, spread, and a 95% CI of the sample using the
// Student-t critical value for the sample's degrees of freedom.
func Summarize(sample []float64) (Summary, error) {
	n := len(sample)
	if n == 0 {
		return Summary{}, ErrEmptySample
	}
	var sum float64
	for _, v := range sample {
		sum += v
	}
	mean := sum / float64(n)
	var ss float64
	for _, v := range sample {
		d := v - mean
		ss += d * d
	}
	sorted := append([]float64(nil), sample...)
	sort.Float64s(sorted)
	s := Summary{
		N:          n,
		Mean:       mean,
		Min:        sorted[0],
		Max:        sorted[n-1],
		Median:     percentile(sorted, 0.5),
		P95:        percentile(sorted, 0.95),
		Confidence: 0.95,
	}
	if n >= 2 {
		sd := math.Sqrt(ss / float64(n-1))
		se := sd / math.Sqrt(float64(n))
		t := tCritical95(n - 1)
		s.StdDev = sd
		s.CILow = mean - t*se
		s.CIHigh = mean + t*se
		s.HasCI = true
	}
	return s, nil
}

// percentile returns the p-quantile of a sorted sample with linear
// interpolation.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// tCritical95 returns the two-sided 95% Student-t critical value for df
// degrees of freedom (exact table for small df, 1.96 asymptote).
func tCritical95(df int) float64 {
	table := []float64{
		0,                                                             // df 0 unused
		12.706,                                                        // 1
		4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, // 2-10
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, // 11-20
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042, // 21-30
	}
	switch {
	case df <= 0:
		return math.NaN()
	case df < len(table):
		return table[df]
	case df < 60:
		return 2.00
	case df < 120:
		return 1.98
	default:
		return 1.96
	}
}

// SpreadCI returns a 95% dispersion interval of the sample itself (mean ±
// t·sd, not the standard error). Table I's very wide CPU/GPU intervals
// (e.g. 217-1765 µs around a 991 µs mean) describe per-measurement spread
// rather than uncertainty of the mean; SpreadCI reproduces that convention.
func SpreadCI(sample []float64) (low, high float64, err error) {
	s, err := Summarize(sample)
	if err != nil {
		return 0, 0, err
	}
	if !s.HasCI {
		return s.Mean, s.Mean, nil
	}
	t := tCritical95(s.N - 1)
	return s.Mean - t*s.StdDev, s.Mean + t*s.StdDev, nil
}
