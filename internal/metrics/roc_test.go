package metrics

import (
	"math"
	"math/rand"
	"testing"
)

func perfectPreds() []ScoredPrediction {
	return []ScoredPrediction{
		{0.9, true}, {0.8, true}, {0.95, true},
		{0.1, false}, {0.2, false}, {0.05, false},
	}
}

func TestThresholdSweep(t *testing.T) {
	pts, err := ThresholdSweep(perfectPreds(), []float64{0.0, 0.5, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// Threshold 0: everything predicted positive.
	if pts[0].TPR != 1 || pts[0].FPR != 1 {
		t.Fatalf("th=0: TPR %v FPR %v", pts[0].TPR, pts[0].FPR)
	}
	// Threshold 0.5 separates perfectly.
	if pts[1].TPR != 1 || pts[1].FPR != 0 {
		t.Fatalf("th=0.5: TPR %v FPR %v", pts[1].TPR, pts[1].FPR)
	}
	if pts[1].Confusion.Accuracy() != 1 {
		t.Fatalf("th=0.5 accuracy = %v", pts[1].Confusion.Accuracy())
	}
	// Threshold 1: only probabilities >= 1 predicted positive (none here).
	if pts[2].TPR != 0 || pts[2].FPR != 0 {
		t.Fatalf("th=1: TPR %v FPR %v", pts[2].TPR, pts[2].FPR)
	}
}

func TestThresholdSweepValidation(t *testing.T) {
	if _, err := ThresholdSweep(nil, []float64{0.5}); err == nil {
		t.Error("no predictions: expected error")
	}
	if _, err := ThresholdSweep(perfectPreds(), nil); err == nil {
		t.Error("no thresholds: expected error")
	}
	if _, err := ThresholdSweep(perfectPreds(), []float64{1.5}); err == nil {
		t.Error("out-of-range threshold: expected error")
	}
}

func TestAUCPerfectSeparation(t *testing.T) {
	auc, err := AUC(perfectPreds())
	if err != nil {
		t.Fatal(err)
	}
	if auc != 1 {
		t.Fatalf("AUC = %v, want 1 for perfect separation", auc)
	}
}

func TestAUCInvertedSeparation(t *testing.T) {
	preds := []ScoredPrediction{
		{0.1, true}, {0.2, true},
		{0.8, false}, {0.9, false},
	}
	auc, err := AUC(preds)
	if err != nil {
		t.Fatal(err)
	}
	if auc != 0 {
		t.Fatalf("AUC = %v, want 0 for inverted separation", auc)
	}
}

func TestAUCRandomScoresNearHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	preds := make([]ScoredPrediction, 4000)
	for i := range preds {
		preds[i] = ScoredPrediction{Probability: rng.Float64(), Actual: rng.Intn(2) == 0}
	}
	auc, err := AUC(preds)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-0.5) > 0.05 {
		t.Fatalf("AUC on random scores = %v, want ~0.5", auc)
	}
}

func TestAUCTiesCountHalf(t *testing.T) {
	preds := []ScoredPrediction{
		{0.5, true}, {0.5, false},
	}
	auc, err := AUC(preds)
	if err != nil {
		t.Fatal(err)
	}
	if auc != 0.5 {
		t.Fatalf("AUC with full ties = %v, want 0.5", auc)
	}
}

func TestAUCRequiresBothClasses(t *testing.T) {
	if _, err := AUC([]ScoredPrediction{{0.5, true}}); err == nil {
		t.Error("single class: expected error")
	}
	if _, err := AUC(nil); err == nil {
		t.Error("empty: expected error")
	}
}
