package metrics

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestConfusionObserve(t *testing.T) {
	var c Confusion
	c.Observe(true, true)   // TP
	c.Observe(true, false)  // FP
	c.Observe(false, false) // TN
	c.Observe(false, true)  // FN
	if c.TP != 1 || c.FP != 1 || c.TN != 1 || c.FN != 1 {
		t.Fatalf("confusion = %+v", c)
	}
	if c.Total() != 4 {
		t.Fatalf("Total = %d", c.Total())
	}
}

func TestScoresKnownValues(t *testing.T) {
	// 90 TP, 2 FP, 95 TN, 5 FN.
	c := Confusion{TP: 90, FP: 2, TN: 95, FN: 5}
	if got, want := c.Accuracy(), 185.0/192.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Accuracy = %v, want %v", got, want)
	}
	if got, want := c.Precision(), 90.0/92.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Precision = %v, want %v", got, want)
	}
	if got, want := c.Recall(), 90.0/95.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Recall = %v, want %v", got, want)
	}
	p, r := c.Precision(), c.Recall()
	if got, want := c.F1(), 2*p*r/(p+r); math.Abs(got-want) > 1e-12 {
		t.Errorf("F1 = %v, want %v", got, want)
	}
	s := c.Scores()
	if s.Accuracy != c.Accuracy() || s.F1 != c.F1() {
		t.Error("Scores() disagrees with individual methods")
	}
}

func TestDegenerateScores(t *testing.T) {
	var empty Confusion
	if empty.Accuracy() != 0 || empty.Precision() != 0 || empty.Recall() != 0 || empty.F1() != 0 {
		t.Error("empty matrix must score 0 everywhere")
	}
	noPosPred := Confusion{TN: 10, FN: 5}
	if noPosPred.Precision() != 0 {
		t.Error("precision with no positive predictions must be 0")
	}
	noPos := Confusion{TN: 10, FP: 5}
	if noPos.Recall() != 0 {
		t.Error("recall with no actual positives must be 0")
	}
}

func TestConfusionString(t *testing.T) {
	c := Confusion{TP: 1, FP: 2, TN: 3, FN: 4}
	s := c.String()
	for _, want := range []string{"TP=1", "FP=2", "TN=3", "FN=4", "acc="} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestSummarizeBasics(t *testing.T) {
	s, err := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 8 {
		t.Errorf("N = %d", s.N)
	}
	if math.Abs(s.Mean-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", s.Mean)
	}
	// Sample stddev of this classic set is sqrt(32/7).
	if want := math.Sqrt(32.0 / 7.0); math.Abs(s.StdDev-want) > 1e-12 {
		t.Errorf("StdDev = %v, want %v", s.StdDev, want)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if !s.HasCI || s.CILow >= s.Mean || s.CIHigh <= s.Mean {
		t.Errorf("CI [%v, %v] does not bracket mean %v", s.CILow, s.CIHigh, s.Mean)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); !errors.Is(err, ErrEmptySample) {
		t.Fatalf("error = %v, want ErrEmptySample", err)
	}
}

func TestSummarizeSingleton(t *testing.T) {
	s, err := Summarize([]float64{42})
	if err != nil {
		t.Fatal(err)
	}
	if s.HasCI {
		t.Error("singleton sample cannot have a CI")
	}
	if s.Mean != 42 || s.Median != 42 || s.Min != 42 || s.Max != 42 {
		t.Errorf("singleton summary = %+v", s)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	if _, err := Summarize(in); err != nil {
		t.Fatal(err)
	}
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("input mutated: %v", in)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40, 50}
	tests := []struct {
		p, want float64
	}{
		{0, 10},
		{0.5, 30},
		{1, 50},
		{0.25, 20},
		{0.375, 25},
	}
	for _, tt := range tests {
		if got := percentile(sorted, tt.p); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestTCritical95(t *testing.T) {
	tests := []struct {
		df   int
		want float64
	}{
		{1, 12.706},
		{10, 2.228},
		{30, 2.042},
		{45, 2.00},
		{100, 1.98},
		{10_000, 1.96},
	}
	for _, tt := range tests {
		if got := tCritical95(tt.df); got != tt.want {
			t.Errorf("tCritical95(%d) = %v, want %v", tt.df, got, tt.want)
		}
	}
	if !math.IsNaN(tCritical95(0)) {
		t.Error("tCritical95(0) should be NaN")
	}
}

func TestCICoversTrueMean(t *testing.T) {
	// Frequentist sanity check: the 95% CI of the mean should cover the true
	// mean in roughly 95% of repeated experiments.
	rng := rand.New(rand.NewSource(9))
	const trials = 400
	covered := 0
	for i := 0; i < trials; i++ {
		sample := make([]float64, 30)
		for j := range sample {
			sample[j] = 10 + rng.NormFloat64()*3
		}
		s, err := Summarize(sample)
		if err != nil {
			t.Fatal(err)
		}
		if s.CILow <= 10 && 10 <= s.CIHigh {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.90 || rate > 0.99 {
		t.Fatalf("CI coverage = %v, want ~0.95", rate)
	}
}

func TestSpreadCI(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	sample := make([]float64, 1000)
	for i := range sample {
		sample[i] = 991 + rng.NormFloat64()*395
	}
	low, high, err := SpreadCI(sample)
	if err != nil {
		t.Fatal(err)
	}
	// Should be roughly mean ± 1.96σ, i.e. a wide per-measurement interval
	// like Table I's, not a narrow standard-error band.
	if high-low < 1000 {
		t.Fatalf("spread interval [%v, %v] too narrow", low, high)
	}
	if _, _, err := SpreadCI(nil); err == nil {
		t.Error("SpreadCI(nil) expected error")
	}
	l, h, err := SpreadCI([]float64{5})
	if err != nil || l != 5 || h != 5 {
		t.Errorf("SpreadCI singleton = (%v, %v, %v)", l, h, err)
	}
}

// Property: accuracy, precision, recall, F1 always land in [0, 1].
func TestPropScoresBounded(t *testing.T) {
	f := func(tp, fp, tn, fn uint8) bool {
		c := Confusion{TP: int(tp), FP: int(fp), TN: int(tn), FN: int(fn)}
		s := c.Scores()
		for _, v := range []float64{s.Accuracy, s.Precision, s.Recall, s.F1} {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Summarize respects ordering invariants Min <= Median <= Max and
// CILow <= Mean <= CIHigh.
func TestPropSummaryOrdering(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		sample := make([]float64, len(raw))
		for i, r := range raw {
			sample[i] = float64(r)
		}
		s, err := Summarize(sample)
		if err != nil {
			return false
		}
		if s.Min > s.Median || s.Median > s.Max {
			return false
		}
		if s.HasCI && (s.CILow > s.Mean || s.Mean > s.CIHigh) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
