// Package fixed implements the scaled-integer fixed-point arithmetic used by
// the CSD inference kernels.
//
// The paper (§III-D) scales floating-point weights, biases, and embeddings by
// a factor of 10^6 before host initialization, converting them to integers so
// the FPGA can execute multiplications on DSP slices instead of floating-point
// logic. After each multiplication the product carries a scale of 10^12 and is
// corrected back to the working scale with rounding, keeping accumulated error
// small for subsequent operations.
//
// The package is deliberately tiny and allocation-free: every kernel operation
// in internal/kernels runs on these primitives.
package fixed

import (
	"errors"
	"fmt"
	"math"
)

// DefaultScale is the scaling factor used by the paper: 10^6. It emphasizes
// the mantissa of the small weight values produced by training.
const DefaultScale = 1_000_000

// ErrOverflow is returned by checked conversions when a value cannot be
// represented at the requested scale without overflowing int64.
var ErrOverflow = errors.New("fixed: value overflows int64 at this scale")

// Value is a fixed-point number: the real value times the owning Arith scale.
// A Value is only meaningful relative to the Arith that produced it.
type Value = int64

// Arith performs fixed-point arithmetic at a particular scale.
//
// The zero value is not usable; construct with New. Arith is immutable and
// safe for concurrent use.
type Arith struct {
	scale int64
}

// New returns an Arith operating at the given scale (e.g. 1e6).
// The scale must be positive.
func New(scale int64) (Arith, error) {
	if scale <= 0 {
		return Arith{}, fmt.Errorf("fixed: scale must be positive, got %d", scale)
	}
	return Arith{scale: scale}, nil
}

// MustNew is like New but panics on an invalid scale. It is intended for
// package-level defaults with compile-time-known scales.
func MustNew(scale int64) Arith {
	a, err := New(scale)
	if err != nil {
		panic(err)
	}
	return a
}

// Default is an Arith at the paper's 10^6 scale.
var Default = MustNew(DefaultScale)

// Scale returns the scaling factor of a.
func (a Arith) Scale() int64 { return a.scale }

// FromFloat converts a float64 to fixed point with round-half-away-from-zero,
// the rounding the paper applies to "closely match the original numbers".
func (a Arith) FromFloat(f float64) Value {
	return Value(math.Round(f * float64(a.scale)))
}

// FromFloatChecked is FromFloat with overflow detection.
func (a Arith) FromFloatChecked(f float64) (Value, error) {
	scaled := f * float64(a.scale)
	if math.IsNaN(scaled) || scaled >= math.MaxInt64 || scaled <= math.MinInt64 {
		return 0, fmt.Errorf("%w: %g at scale %d", ErrOverflow, f, a.scale)
	}
	return Value(math.Round(scaled)), nil
}

// ToFloat converts a fixed-point value back to float64.
func (a Arith) ToFloat(v Value) float64 {
	return float64(v) / float64(a.scale)
}

// FromInt converts an integer real value to fixed point.
func (a Arith) FromInt(i int64) Value { return i * a.scale }

// One is the fixed-point representation of 1.0.
func (a Arith) One() Value { return a.scale }

// Add returns x + y. Addition needs no rescaling.
func (a Arith) Add(x, y Value) Value { return x + y }

// Sub returns x - y.
func (a Arith) Sub(x, y Value) Value { return x - y }

// Mul returns x * y rescaled back to the working scale with rounding.
//
// The raw product of two scale-S values carries scale S^2 (10^12 for the
// default scale); Mul performs the paper's correction by dividing the product
// by S, rounding half away from zero.
func (a Arith) Mul(x, y Value) Value {
	return roundedDiv(x*y, a.scale)
}

// MulWide is Mul using 128-bit intermediate math, immune to overflow of the
// raw product. It is slower; kernels use it only when magnitudes may be large.
func (a Arith) MulWide(x, y Value) Value {
	hi, lo := bits64Mul(x, y)
	return div128by64(hi, lo, a.scale)
}

// Div returns x / y at the working scale with rounding, or an error when y is
// zero.
func (a Arith) Div(x, y Value) (Value, error) {
	if y == 0 {
		return 0, errors.New("fixed: division by zero")
	}
	return roundedDiv(x*a.scale, y), nil
}

// Neg returns -x.
func (a Arith) Neg(x Value) Value { return -x }

// Abs returns |x|.
func (a Arith) Abs(x Value) Value {
	if x < 0 {
		return -x
	}
	return x
}

// Dot returns the fixed-point dot product of x and y, accumulating raw
// scale-S^2 products and performing a single rescale at the end. Deferring
// the correction to the accumulated sum loses less precision than rescaling
// each product, and mirrors what a DSP MAC cascade does in hardware.
//
// Dot panics if the slices have different lengths; kernel shapes are fixed at
// initialization so a mismatch is a programming error, not an input error.
func (a Arith) Dot(x, y []Value) Value {
	if len(x) != len(y) {
		panic(fmt.Sprintf("fixed: dot length mismatch %d != %d", len(x), len(y)))
	}
	var acc int64
	for i := range x {
		acc += x[i] * y[i]
	}
	return roundedDiv(acc, a.scale)
}

// QuantizeSlice converts a float64 slice to fixed point in one pass.
func (a Arith) QuantizeSlice(fs []float64) []Value {
	out := make([]Value, len(fs))
	for i, f := range fs {
		out[i] = a.FromFloat(f)
	}
	return out
}

// DequantizeSlice converts a fixed-point slice back to float64.
func (a Arith) DequantizeSlice(vs []Value) []float64 {
	out := make([]float64, len(vs))
	for i, v := range vs {
		out[i] = a.ToFloat(v)
	}
	return out
}

// MaxAbsError returns the worst-case representation error of a single
// quantization at this scale: half a unit in the last place.
func (a Arith) MaxAbsError() float64 {
	return 0.5 / float64(a.scale)
}

// roundedDiv divides num by den (den > 0) rounding half away from zero.
func roundedDiv(num, den int64) int64 {
	if num >= 0 {
		return (num + den/2) / den
	}
	return (num - den/2) / den
}

// bits64Mul returns the 128-bit product of x and y as (hi, lo) in two's
// complement.
func bits64Mul(x, y int64) (hi int64, lo uint64) {
	const mask = 0xFFFFFFFF
	neg := false
	ux, uy := uint64(x), uint64(y)
	if x < 0 {
		ux = uint64(-x)
		neg = !neg
	}
	if y < 0 {
		uy = uint64(-y)
		neg = !neg
	}
	x0, x1 := ux&mask, ux>>32
	y0, y1 := uy&mask, uy>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += x0 * y1
	uhi := x1*y1 + w2 + w1>>32
	ulo := ux * uy
	if neg {
		// Two's complement negation of the 128-bit value.
		ulo = ^ulo + 1
		uhi = ^uhi
		if ulo == 0 {
			uhi++
		}
	}
	return int64(uhi), ulo
}

// div128by64 divides the signed 128-bit value (hi, lo) by the positive den,
// rounding half away from zero. It is only used for magnitudes far from the
// 128-bit limit, so the simple long-division loop below is sufficient.
func div128by64(hi int64, lo uint64, den int64) int64 {
	neg := hi < 0
	uhi, ulo := uint64(hi), lo
	if neg {
		ulo = ^ulo + 1
		uhi = ^uhi
		if ulo == 0 {
			uhi++
		}
	}
	// Binary long division of the 128-bit magnitude by den.
	var q, r uint64
	d := uint64(den)
	for i := 127; i >= 0; i-- {
		r <<= 1
		var bit uint64
		if i >= 64 {
			bit = (uhi >> (i - 64)) & 1
		} else {
			bit = (ulo >> i) & 1
		}
		r |= bit
		if r >= d {
			r -= d
			if i < 64 {
				q |= 1 << i
			}
		}
	}
	// Round half away from zero.
	if 2*r >= d {
		q++
	}
	if neg {
		return -int64(q)
	}
	return int64(q)
}
