package fixed

import (
	"errors"
	"math"
	"testing"
)

// TestCheckedMatchesUncheckedInRange pins the core contract: inside int64,
// every checked op returns exactly the unchecked result and no error.
func TestCheckedMatchesUncheckedInRange(t *testing.T) {
	a := Default
	cases := [][2]Value{
		{0, 0},
		{a.FromFloat(1.5), a.FromFloat(-2.25)},
		{a.FromFloat(-0.001), a.FromFloat(0.001)},
		{a.FromInt(1000), a.FromInt(-3000)},
	}
	for _, c := range cases {
		x, y := c[0], c[1]
		if got, err := a.AddChecked(x, y); err != nil || got != a.Add(x, y) {
			t.Errorf("AddChecked(%d,%d) = %d,%v want %d,nil", x, y, got, err, a.Add(x, y))
		}
		if got, err := a.SubChecked(x, y); err != nil || got != a.Sub(x, y) {
			t.Errorf("SubChecked(%d,%d) = %d,%v want %d,nil", x, y, got, err, a.Sub(x, y))
		}
		if got, err := a.MulChecked(x, y); err != nil || got != a.Mul(x, y) {
			t.Errorf("MulChecked(%d,%d) = %d,%v want %d,nil", x, y, got, err, a.Mul(x, y))
		}
	}
	xs := []Value{a.FromFloat(0.5), a.FromFloat(-1.25), a.FromFloat(2.0)}
	ys := []Value{a.FromFloat(3.0), a.FromFloat(0.125), a.FromFloat(-0.75)}
	if got, err := a.DotChecked(xs, ys); err != nil || got != a.Dot(xs, ys) {
		t.Errorf("DotChecked = %d,%v want %d,nil", got, err, a.Dot(xs, ys))
	}
}

// TestCheckedReportsWrapWithWrappedValue pins the shadow-datapath property:
// on overflow the checked ops return ErrOverflow AND the identical wrapped
// value the unchecked op computes, so a probed pipeline never diverges from
// the production one.
func TestCheckedReportsWrapWithWrappedValue(t *testing.T) {
	a := Default

	x, y := Value(math.MaxInt64), Value(1)
	got, err := a.AddChecked(x, y)
	if !errors.Is(err, ErrOverflow) {
		t.Fatalf("AddChecked(max,1) err = %v, want ErrOverflow", err)
	}
	if got != x+y {
		t.Fatalf("AddChecked wrapped value = %d, want %d", got, x+y)
	}

	min := Value(math.MinInt64)
	got, err = a.SubChecked(min, 1)
	if !errors.Is(err, ErrOverflow) {
		t.Fatalf("SubChecked(min,1) err = %v, want ErrOverflow", err)
	}
	if got != min-1 {
		t.Fatalf("SubChecked wrapped value mismatch")
	}

	big := Value(4_000_000_000) // 4e9^2 = 1.6e19 > MaxInt64
	raw, err := a.MulRaw(big, big)
	if !errors.Is(err, ErrOverflow) {
		t.Fatalf("MulRaw err = %v, want ErrOverflow", err)
	}
	if raw != big*big {
		t.Fatalf("MulRaw wrapped value = %d, want %d", raw, big*big)
	}
	if _, err := a.MulChecked(big, big); !errors.Is(err, ErrOverflow) {
		t.Fatalf("MulChecked err = %v, want ErrOverflow", err)
	}

	// -1 * MinInt64 is the one product of -1 that wraps; it must not fault.
	if _, err := a.MulRaw(-1, Value(math.MinInt64)); !errors.Is(err, ErrOverflow) {
		t.Fatalf("MulRaw(-1,min) err = %v, want ErrOverflow", err)
	}
	if v, err := a.MulRaw(-1, 42); err != nil || v != -42 {
		t.Fatalf("MulRaw(-1,42) = %d,%v want -42,nil", v, err)
	}
}

// TestDotRawDetectsPartialSumWrap seeds a dot product whose individual
// products fit int64 but whose running accumulator wraps — the silent failure
// mode of the unchecked Dot this package previously could not observe.
func TestDotRawDetectsPartialSumWrap(t *testing.T) {
	a := Default
	half := Value(3 << 61) // 3*2^61 ≈ 6.9e18; two of them wrap
	xs := []Value{half, half}
	ys := []Value{1, 1}
	raw, err := a.DotRaw(xs, ys)
	if !errors.Is(err, ErrOverflow) {
		t.Fatalf("DotRaw err = %v, want ErrOverflow", err)
	}
	if raw != half+half { // wrapped, same as unchecked accumulation
		t.Fatalf("DotRaw wrapped accumulator = %d, want %d", raw, half+half)
	}
	if got := a.Dot(xs, ys); got != a.FromRaw(raw) {
		t.Fatalf("Dot = %d, FromRaw(DotRaw) = %d: checked path diverged", got, a.FromRaw(raw))
	}
}

// TestDotRawCleanMatchesDot checks the raw accumulator is exactly Dot's
// pre-rescale state on a clean input.
func TestDotRawCleanMatchesDot(t *testing.T) {
	a := Default
	xs := []Value{a.FromFloat(1.5), a.FromFloat(-2.0), a.FromFloat(0.25)}
	ys := []Value{a.FromFloat(-0.5), a.FromFloat(3.0), a.FromFloat(8.0)}
	raw, err := a.DotRaw(xs, ys)
	if err != nil {
		t.Fatalf("DotRaw err = %v", err)
	}
	if got, want := a.FromRaw(raw), a.Dot(xs, ys); got != want {
		t.Fatalf("FromRaw(DotRaw) = %d, Dot = %d", got, want)
	}
}

// TestRescale covers the three conversion paths: exact widen, rounded narrow,
// and the 128-bit general case.
func TestRescale(t *testing.T) {
	wide := MustNew(1_000_000)
	narrow := MustNew(100)

	// Widen: 1.25 at scale 100 is 125; at scale 1e6 it is 1_250_000.
	if got := wide.Rescale(125, narrow); got != 1_250_000 {
		t.Fatalf("widen Rescale = %d, want 1250000", got)
	}
	// Narrow: 1.2345 at 1e6 → 123 at 100 (1.23 rounded from 1.2345 is 1.23).
	if got := narrow.Rescale(1_234_500, wide); got != 123 {
		t.Fatalf("narrow Rescale = %d, want 123", got)
	}
	// Rounding half away from zero on the narrow path.
	if got := narrow.Rescale(1_235_000, wide); got != 124 {
		t.Fatalf("narrow Rescale half = %d, want 124", got)
	}
	if got := narrow.Rescale(-1_235_000, wide); got != -124 {
		t.Fatalf("narrow Rescale -half = %d, want -124", got)
	}
	// General path: scales 300 → 700 don't divide; 1.5 at 300 is 450,
	// at 700 it is 1050.
	s300, s700 := MustNew(300), MustNew(700)
	if got := s700.Rescale(450, s300); got != 1050 {
		t.Fatalf("general Rescale = %d, want 1050", got)
	}
	// Identity.
	if got := wide.Rescale(777, wide); got != 777 {
		t.Fatalf("identity Rescale = %d, want 777", got)
	}
}
