package fixed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNew(t *testing.T) {
	tests := []struct {
		name    string
		scale   int64
		wantErr bool
	}{
		{name: "paper scale", scale: 1_000_000},
		{name: "unit scale", scale: 1},
		{name: "power of two", scale: 1 << 16},
		{name: "zero", scale: 0, wantErr: true},
		{name: "negative", scale: -5, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			a, err := New(tt.scale)
			if (err != nil) != tt.wantErr {
				t.Fatalf("New(%d) error = %v, wantErr %v", tt.scale, err, tt.wantErr)
			}
			if err == nil && a.Scale() != tt.scale {
				t.Errorf("Scale() = %d, want %d", a.Scale(), tt.scale)
			}
		})
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(0) did not panic")
		}
	}()
	MustNew(0)
}

func TestFromFloatRounding(t *testing.T) {
	a := Default
	tests := []struct {
		f    float64
		want Value
	}{
		{0, 0},
		{1, 1_000_000},
		{-1, -1_000_000},
		{0.0000005, 1},          // rounds half away from zero
		{-0.0000005, -1},        // symmetric for negatives
		{0.0000004, 0},          // below half a ulp truncates
		{0.123456789, 123_457},  // nearest
		{-0.123456789, -123457}, // nearest, negative
		{3.25, 3_250_000},
	}
	for _, tt := range tests {
		if got := a.FromFloat(tt.f); got != tt.want {
			t.Errorf("FromFloat(%v) = %d, want %d", tt.f, got, tt.want)
		}
	}
}

func TestFromFloatCheckedOverflow(t *testing.T) {
	a := Default
	for _, f := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 1e40, -1e40} {
		if _, err := a.FromFloatChecked(f); err == nil {
			t.Errorf("FromFloatChecked(%v) expected overflow error", f)
		}
	}
	if v, err := a.FromFloatChecked(2.5); err != nil || v != 2_500_000 {
		t.Errorf("FromFloatChecked(2.5) = %d, %v; want 2500000, nil", v, err)
	}
}

func TestMulMatchesPaperCorrection(t *testing.T) {
	a := Default
	// 1.5 * 2.0 = 3.0: raw product is at scale 1e12 and must be corrected.
	x, y := a.FromFloat(1.5), a.FromFloat(2.0)
	if got := a.Mul(x, y); got != a.FromFloat(3.0) {
		t.Fatalf("Mul = %d, want %d", got, a.FromFloat(3.0))
	}
	// Small weights, the common case in this model.
	x, y = a.FromFloat(0.001), a.FromFloat(0.002)
	if got, want := a.ToFloat(a.Mul(x, y)), 0.000002; math.Abs(got-want) > 1e-6 {
		t.Fatalf("Mul small = %v, want %v", got, want)
	}
}

func TestDiv(t *testing.T) {
	a := Default
	got, err := a.Div(a.FromFloat(3.0), a.FromFloat(1.5))
	if err != nil {
		t.Fatalf("Div returned error: %v", err)
	}
	if want := a.FromFloat(2.0); got != want {
		t.Fatalf("Div = %d, want %d", got, want)
	}
	if _, err := a.Div(a.One(), 0); err == nil {
		t.Fatal("Div by zero: expected error")
	}
}

func TestDotAgainstFloatReference(t *testing.T) {
	a := Default
	xs := []float64{0.5, -0.25, 0.125, 1.5, -2.0}
	ys := []float64{1.0, 4.0, -8.0, 0.5, 0.25}
	want := 0.0
	for i := range xs {
		want += xs[i] * ys[i]
	}
	got := a.ToFloat(a.Dot(a.QuantizeSlice(xs), a.QuantizeSlice(ys)))
	if math.Abs(got-want) > 1e-5 {
		t.Fatalf("Dot = %v, want %v", got, want)
	}
}

func TestDotLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot with mismatched lengths did not panic")
		}
	}()
	Default.Dot(make([]Value, 2), make([]Value, 3))
}

func TestQuantizeDequantizeSlice(t *testing.T) {
	a := Default
	in := []float64{0.1, -0.2, 0.333333, 12.75}
	out := a.DequantizeSlice(a.QuantizeSlice(in))
	for i := range in {
		if math.Abs(out[i]-in[i]) > a.MaxAbsError() {
			t.Errorf("round trip [%d]: |%v - %v| > %v", i, out[i], in[i], a.MaxAbsError())
		}
	}
}

func TestMaxAbsError(t *testing.T) {
	if got, want := Default.MaxAbsError(), 0.5/1e6; got != want {
		t.Fatalf("MaxAbsError = %v, want %v", got, want)
	}
}

func TestMulWideLargeMagnitudes(t *testing.T) {
	a := Default
	// 3e6 * 3e6 = 9e12: the raw int64 product of the scaled values (3e12*3e12)
	// would overflow; MulWide must survive.
	x := a.FromFloat(3e6)
	got := a.ToFloat(a.MulWide(x, x))
	if math.Abs(got-9e12)/9e12 > 1e-9 {
		t.Fatalf("MulWide(3e6, 3e6) = %v, want 9e12", got)
	}
	// Sign combinations.
	if got := a.ToFloat(a.MulWide(a.FromFloat(-3e6), x)); math.Abs(got+9e12)/9e12 > 1e-9 {
		t.Fatalf("MulWide(-3e6, 3e6) = %v, want -9e12", got)
	}
}

// Property: quantization error is bounded by half a ulp at the scale.
func TestPropQuantizationErrorBounded(t *testing.T) {
	a := Default
	f := func(mantissa int32) bool {
		v := float64(mantissa) / 1024 // range ±~2e6, comfortably in-scale
		q := a.ToFloat(a.FromFloat(v))
		// Allow for float64 representation error at large magnitudes.
		return math.Abs(q-v) <= a.MaxAbsError()+math.Abs(v)*1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: addition is exact (no rescale), so it commutes and associates.
func TestPropAddCommutesAssociates(t *testing.T) {
	a := Default
	f := func(x, y, z int32) bool {
		vx, vy, vz := Value(x), Value(y), Value(z)
		if a.Add(vx, vy) != a.Add(vy, vx) {
			return false
		}
		return a.Add(a.Add(vx, vy), vz) == a.Add(vx, a.Add(vy, vz))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: multiplication commutes even with rounding.
func TestPropMulCommutes(t *testing.T) {
	a := Default
	f := func(x, y int32) bool {
		return a.Mul(Value(x), Value(y)) == a.Mul(Value(y), Value(x))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Mul result differs from the float product by at most one ulp at
// the scale (rounding of one product).
func TestPropMulErrorBounded(t *testing.T) {
	a := Default
	f := func(xm, ym int16) bool {
		x := float64(xm) / 256 // weights are small in this model
		y := float64(ym) / 256
		got := a.ToFloat(a.Mul(a.FromFloat(x), a.FromFloat(y)))
		// Two quantizations plus one rounded rescale.
		bound := math.Abs(x)*a.MaxAbsError() + math.Abs(y)*a.MaxAbsError() + 2.0/float64(a.Scale())
		return math.Abs(got-x*y) <= bound
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: MulWide agrees with Mul wherever Mul is exact (no int64 overflow
// of the raw product).
func TestPropMulWideAgreesWithMul(t *testing.T) {
	a := Default
	f := func(x, y int32) bool {
		return a.Mul(Value(x), Value(y)) == a.MulWide(Value(x), Value(y))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: negation flips sign through multiplication.
func TestPropMulNegation(t *testing.T) {
	a := Default
	f := func(x, y int32) bool {
		return a.Mul(a.Neg(Value(x)), Value(y)) == a.Neg(a.Mul(Value(x), Value(y)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRoundedDiv(t *testing.T) {
	tests := []struct {
		num, den, want int64
	}{
		{10, 3, 3},
		{11, 3, 4},   // 3.67 rounds to 4
		{-11, 3, -4}, // symmetric
		{15, 10, 2},  // half away from zero
		{-15, 10, -2},
		{14, 10, 1},
		{0, 7, 0},
	}
	for _, tt := range tests {
		if got := roundedDiv(tt.num, tt.den); got != tt.want {
			t.Errorf("roundedDiv(%d, %d) = %d, want %d", tt.num, tt.den, got, tt.want)
		}
	}
}

func TestBits64Mul(t *testing.T) {
	tests := []struct {
		x, y int64
	}{
		{0, 0}, {1, 1}, {-1, 1}, {1, -1}, {-1, -1},
		{1 << 40, 1 << 40}, {-(1 << 40), 1 << 40},
		{123456789, -987654321},
	}
	for _, tt := range tests {
		hi, lo := bits64Mul(tt.x, tt.y)
		// Verify against big-int-free check: divide back by one operand.
		if tt.x != 0 {
			got := div128by64(hi, lo, absInt64(tt.x))
			want := tt.y
			if tt.x < 0 {
				want = -want
			}
			if got != want {
				t.Errorf("bits64Mul(%d,%d)/|x| = %d, want %d", tt.x, tt.y, got, want)
			}
		}
	}
}

func absInt64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

func BenchmarkMul(b *testing.B) {
	a := Default
	x, y := a.FromFloat(0.123), a.FromFloat(-0.456)
	for i := 0; i < b.N; i++ {
		_ = a.Mul(x, y)
	}
}

func BenchmarkDot40(b *testing.B) {
	a := Default
	xs := make([]Value, 40)
	ys := make([]Value, 40)
	for i := range xs {
		xs[i] = a.FromFloat(float64(i) * 0.01)
		ys[i] = a.FromFloat(float64(40-i) * 0.01)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Dot(xs, ys)
	}
}
