package fixed

import "fmt"

// This file holds the overflow-checked variants of the Arith primitives.
//
// The unchecked ops in fixed.go are what the synthesized kernels model: plain
// int64 adds and multiplies that wrap silently, exactly like the fixed-width
// datapath on the FPGA. The checked variants compute the *same* wrapped value
// — bit-for-bit what the unchecked op would have produced — but additionally
// report ErrOverflow when the true mathematical result escaped int64. That
// property lets debug and fuzz builds (the kernels numeric probe,
// FuzzIntervalSoundness in internal/absint) shadow the production datapath
// without perturbing it: results are identical, wraps become observable.
//
// The static counterpart is internal/absint, which proves at design time that
// the checked variants can never return an error for a given model and scale.

// AddChecked is Add with overflow detection. The returned Value is the wrapped
// sum the unchecked Add produces; err is non-nil when x+y escaped int64.
func (a Arith) AddChecked(x, y Value) (Value, error) {
	s := x + y
	if (y > 0 && s < x) || (y < 0 && s > x) {
		return s, fmt.Errorf("%w: add %d + %d wrapped", ErrOverflow, x, y)
	}
	return s, nil
}

// SubChecked is Sub with overflow detection, with the same wrapped-value
// contract as AddChecked.
func (a Arith) SubChecked(x, y Value) (Value, error) {
	d := x - y
	if (y < 0 && d < x) || (y > 0 && d > x) {
		return d, fmt.Errorf("%w: sub %d - %d wrapped", ErrOverflow, x, y)
	}
	return d, nil
}

// MulRaw returns the raw scale-S^2 product x*y without the rescale that Mul
// applies, detecting overflow of the product. The returned Value is the
// wrapped product on overflow, matching what the unchecked x*y computes.
func (a Arith) MulRaw(x, y Value) (Value, error) {
	p := x * y
	if x == 0 {
		return 0, nil
	}
	if x == -1 {
		// p/x below would fault for y == MinInt64; -MinInt64 is the only
		// product of -1 that wraps.
		if p == minInt64 && y == minInt64 {
			return p, fmt.Errorf("%w: mul %d * %d wrapped", ErrOverflow, x, y)
		}
		return p, nil
	}
	if p/x != y {
		return p, fmt.Errorf("%w: mul %d * %d wrapped", ErrOverflow, x, y)
	}
	return p, nil
}

// MulChecked is Mul with overflow detection on both the raw product and the
// rounding bias added by the final rescale.
func (a Arith) MulChecked(x, y Value) (Value, error) {
	p, err := a.MulRaw(x, y)
	if err != nil {
		return roundedDiv(p, a.scale), err
	}
	if rErr := a.rescaleRoundCheck(p); rErr != nil {
		return roundedDiv(p, a.scale), rErr
	}
	return roundedDiv(p, a.scale), nil
}

// FromRaw rescales a raw scale-S^2 accumulator (as produced by MulRaw or
// DotRaw) back to the working scale with rounding — the correction Mul and Dot
// apply internally.
func (a Arith) FromRaw(raw Value) Value { return roundedDiv(raw, a.scale) }

// DotRaw returns the raw scale-S^2 accumulator of the dot product — the value
// Dot holds immediately before its final rescale — detecting overflow of every
// product and every partial sum along the way. The returned Value is always
// the same accumulator the unchecked Dot computes (wrapped on overflow); the
// first overflow encountered is reported.
//
// Like Dot, it panics on a length mismatch: kernel shapes are fixed at
// initialization, so a mismatch is a programming error.
func (a Arith) DotRaw(x, y []Value) (Value, error) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("fixed: dot length mismatch %d != %d", len(x), len(y)))
	}
	var acc int64
	var firstErr error
	for i := range x {
		p, err := a.MulRaw(x[i], y[i])
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("%w: dot product at index %d", ErrOverflow, i)
		}
		s := acc + p
		if (p > 0 && s < acc) || (p < 0 && s > acc) {
			if firstErr == nil {
				firstErr = fmt.Errorf("%w: dot accumulator wrapped at index %d", ErrOverflow, i)
			}
		}
		acc = s
	}
	return acc, firstErr
}

// DotChecked is Dot with overflow detection: same wrapped result, plus
// ErrOverflow when any product, partial sum, or the final rounding bias
// escaped int64.
func (a Arith) DotChecked(x, y []Value) (Value, error) {
	raw, err := a.DotRaw(x, y)
	if err != nil {
		return roundedDiv(raw, a.scale), err
	}
	if rErr := a.rescaleRoundCheck(raw); rErr != nil {
		return roundedDiv(raw, a.scale), rErr
	}
	return roundedDiv(raw, a.scale), nil
}

// Rescale converts v from the scale of `from` to the scale of a. When the
// scales divide evenly the conversion is exact integer math (a widening
// multiply or a rounded narrowing divide); otherwise it goes through the
// 128-bit v*a.scale/from.scale path. This is the only sanctioned way to move
// a Value between two Ariths — a raw multiply by the scale ratio is exactly
// the kind of unchecked arithmetic the fixedwidth analyzer flags.
func (a Arith) Rescale(v Value, from Arith) Value {
	if a.scale == from.scale {
		return v
	}
	if a.scale%from.scale == 0 {
		return v * (a.scale / from.scale)
	}
	if from.scale%a.scale == 0 {
		return roundedDiv(v, from.scale/a.scale)
	}
	hi, lo := bits64Mul(v, a.scale)
	return div128by64(hi, lo, from.scale)
}

// rescaleRoundCheck reports whether roundedDiv(raw, a.scale) would overflow
// while adding its half-denominator rounding bias.
func (a Arith) rescaleRoundCheck(raw Value) error {
	half := a.scale / 2
	if raw >= 0 && raw > maxInt64-half {
		return fmt.Errorf("%w: rescale rounding bias on %d wrapped", ErrOverflow, raw)
	}
	if raw < 0 && raw < minInt64+half {
		return fmt.Errorf("%w: rescale rounding bias on %d wrapped", ErrOverflow, raw)
	}
	return nil
}

const (
	maxInt64 = int64(^uint64(0) >> 1)
	minInt64 = -maxInt64 - 1
)
