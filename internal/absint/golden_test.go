package absint_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"github.com/kfrida1/csdinf/internal/absint"
	"github.com/kfrida1/csdinf/internal/dataset"
	"github.com/kfrida1/csdinf/internal/lstm"
	"github.com/kfrida1/csdinf/internal/train"
)

// trainedModel quick-trains the paper architecture on a deterministic
// miniature corpus — enough epochs for the weights to leave the Xavier
// initialization regime, small enough for test budgets. Everything is
// seeded, so the weights (and therefore the analyzed intervals) are
// reproducible.
func trainedModel(t testing.TB) *lstm.Model {
	t.Helper()
	ds, err := dataset.Build(dataset.BuildConfig{RansomwareCount: 120, BenignCount: 120, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	trainDS, testDS, err := ds.Split(0.2, 12)
	if err != nil {
		t.Fatal(err)
	}
	res, err := train.Train(trainDS, testDS, train.Config{Epochs: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return res.Model
}

// TestGoldenTrainedRangeSweep goldens the full text report of the trained
// paper model across the ROADMAP item 4 width-sweep scales 2⁸, 2¹², 2¹⁶ —
// pinning both the analysis results and the report format. Refresh with
// UPDATE_GOLDEN=1 after a deliberate change.
func TestGoldenTrainedRangeSweep(t *testing.T) {
	m := trainedModel(t)
	var buf bytes.Buffer
	for _, scale := range []int64{1 << 8, 1 << 12, 1 << 16} {
		rep, err := absint.Analyze(m, absint.Config{Scale: scale})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OverflowFree() {
			t.Errorf("trained model refuted at scale %d", scale)
		}
		if err := rep.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		buf.WriteString("\n")
	}

	golden := filepath.Join("testdata", "ranges_sweep.txt")
	want, err := os.ReadFile(golden)
	if os.IsNotExist(err) || os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", golden)
		return
	}
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("range report drifted from %s:\ngot:\n%s\nwant:\n%s", golden, buf.Bytes(), want)
	}
}

// TestJSONRoundTrip checks the -json artifact payload carries the whole
// report faithfully.
func TestJSONRoundTrip(t *testing.T) {
	m, err := lstm.NewModel(lstm.PaperConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := absint.Analyze(m, absint.Config{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"scale": 1000000`, `"stages"`, absint.StageLogit, `"act_domain"`} {
		if !bytes.Contains(data, []byte(want)) {
			t.Errorf("JSON artifact missing %q", want)
		}
	}
}
