package absint

import (
	"math/big"
	"testing"

	"github.com/kfrida1/csdinf/internal/activation"
	"github.com/kfrida1/csdinf/internal/fixed"
	"github.com/kfrida1/csdinf/internal/lstm"
)

// TestAnalyzePaperModelClean proves the property the whole PR exists for:
// the paper's architecture at the paper's scale and window is overflow-free,
// with comfortable headroom everywhere.
func TestAnalyzePaperModelClean(t *testing.T) {
	m, err := lstm.NewModel(lstm.PaperConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OverflowFree() {
		t.Fatalf("paper model at default scale refuted:\noverflows: %v\ndomain: %v",
			rep.Overflows(), rep.DomainViolations())
	}
	min, ok := rep.MinHeadroom()
	if !ok {
		t.Fatal("no stages analyzed")
	}
	if min.Headroom < 2 {
		t.Fatalf("min headroom %d at %s: expected comfortable margin at scale 10^6", min.Headroom, min.Stage)
	}
	if rep.UnderflowedWeights != 0 {
		t.Fatalf("scale 10^6 underflowed %d weights", rep.UnderflowedWeights)
	}
}

// TestAnalyzeStageCoverage pins the stage inventory: every intermediate of
// the fixed datapath must appear exactly once, under its kernel.
func TestAnalyzeStageCoverage(t *testing.T) {
	m, err := lstm.NewModel(lstm.PaperConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{StageEmbed}
	for _, g := range lstm.GateNames {
		want = append(want,
			GateStage(g, StageWxAcc), GateStage(g, StageWhAcc),
			GateStage(g, StagePreact), GateStage(g, StageGateOut))
	}
	want = append(want, StageCellForgetRaw, StageCellInputRaw, StageCellState,
		StageCellAct, StageHiddenRaw, StageHiddenState, StageFCAcc, StageLogit)

	seen := map[string]int{}
	for _, s := range rep.Stages {
		seen[s.Stage]++
	}
	for _, name := range want {
		if seen[name] != 1 {
			t.Errorf("stage %s appears %d times, want 1", name, seen[name])
		}
	}
	if len(rep.Stages) != len(want) {
		t.Errorf("report has %d stages, want %d", len(rep.Stages), len(want))
	}
	for _, s := range rep.Stages {
		if s.Kernel == "" {
			t.Errorf("stage %s has no kernel", s.Stage)
		}
	}
}

// TestSeededOverflowRefuted is the negative proof: a model with weights far
// outside the trained regime must be refuted at the default scale — this is
// the same fixture cmd/csdlint's NUM-001 exit-code test deploys.
func TestSeededOverflowRefuted(t *testing.T) {
	m := overflowModel(t)
	rep, err := Analyze(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OverflowFree() {
		t.Fatal("overflow fixture was proved clean")
	}
	ovs := rep.Overflows()
	if len(ovs) == 0 {
		t.Fatal("refuted report lists no overflow stages")
	}
	var sawAcc bool
	for _, s := range ovs {
		if s.Stage == GateStage(lstm.GateInput, StageWxAcc) {
			sawAcc = true
			if s.Headroom >= 0 {
				t.Errorf("overflowing accumulator reports headroom %d", s.Headroom)
			}
		}
	}
	if !sawAcc {
		t.Errorf("input-gate wx accumulator not among overflows: %v", ovs)
	}
}

// overflowModel builds a tiny model whose weights (~±2500) make the raw
// scale-S² input dot products exceed int64 at the default 10⁶ scale:
// (2500·10⁶)² ≈ 6·10¹⁸·10³ ≫ 2⁶³.
func overflowModel(t *testing.T) *lstm.Model {
	t.Helper()
	cfg := lstm.Config{VocabSize: 4, EmbedDim: 2, HiddenSize: 2, CellActivation: activation.Softsign}
	m, err := lstm.NewModel(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.VocabSize; i++ {
		row := m.Embedding.Row(i)
		for o := range row {
			row[o] = 2500
		}
	}
	for g := range m.Gates {
		for r := 0; r < cfg.HiddenSize; r++ {
			wx := m.Gates[g].Wx.Row(r)
			for o := range wx {
				wx[o] = 2500
			}
		}
	}
	return m
}

// TestSigmoidRangeCoarseScale pins the soundness subtlety the fuzzer first
// surfaced: at coarse scales the PLAN segment coefficients round up, and the
// quantized sigmoid can exceed 1.0 — so the gate-output interval must come
// from the quantized coefficients, not the real-valued [0, 1].
func TestSigmoidRangeCoarseScale(t *testing.T) {
	a := analysis{arith: fixed.MustNew(16)}
	iv := a.sigmoidRange()
	one := big.NewInt(16)
	if iv.hi.Cmp(one) <= 0 {
		t.Fatalf("scale-16 sigmoid hi = %s, expected above one: FromFloat(0.03125)=1 makes the top segment overshoot", iv.hi)
	}
	if iv.lo.Sign() >= 0 {
		t.Fatalf("scale-16 sigmoid lo = %s, expected negative (1 - overshoot)", iv.lo)
	}
	// At the paper's scale the coefficients are exact and the classic
	// [0, 1] bound holds.
	a = analysis{arith: fixed.Default}
	iv = a.sigmoidRange()
	if iv.hi.Cmp(big.NewInt(fixed.DefaultScale)) != 0 || iv.lo.Sign() != 0 {
		t.Fatalf("scale-10⁶ sigmoid range [%s, %s], want [0, 1000000]", iv.lo, iv.hi)
	}
}

// TestUnderflowAccounting checks NUM003's signal: at a scale of 2⁸ most
// Xavier-initialized weights (|w| ≲ 0.3) survive, but weights below half the
// quantization step vanish.
func TestUnderflowAccounting(t *testing.T) {
	m, err := lstm.NewModel(lstm.PaperConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := Analyze(m, Config{Scale: 4})
	if err != nil {
		t.Fatal(err)
	}
	if coarse.UnderflowedWeights == 0 {
		t.Fatal("scale 4 should underflow many Xavier weights")
	}
	if f := coarse.UnderflowFraction(); f <= 0 || f > 1 {
		t.Fatalf("underflow fraction %v out of range", f)
	}
	fine, err := Analyze(m, Config{Scale: fixed.DefaultScale})
	if err != nil {
		t.Fatal(err)
	}
	if fine.NonzeroWeights != coarse.NonzeroWeights {
		t.Fatalf("nonzero count depends on scale: %d vs %d", fine.NonzeroWeights, coarse.NonzeroWeights)
	}
}

// TestQuantizeOverflow covers the degenerate case where the scale itself is
// too large for the weights: quantization overflows before any datapath
// stage exists, and the report must refuse with quantize/* stages.
func TestQuantizeOverflow(t *testing.T) {
	cfg := lstm.Config{VocabSize: 4, EmbedDim: 2, HiddenSize: 2, CellActivation: activation.Softsign}
	m, err := lstm.NewModel(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	m.Embedding.Row(0)[0] = 1e12 // 1e12 · 1e9 scale ≫ 2⁶³
	rep, err := Analyze(m, Config{Scale: 1_000_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OverflowFree() {
		t.Fatal("unrepresentable weight proved clean")
	}
	st, ok := rep.Stage("quantize/embedding")
	if !ok || !st.Overflow {
		t.Fatalf("missing quantize overflow stage, got %+v", rep.Stages)
	}
}

// TestConfigValidation exercises the guard rails.
func TestConfigValidation(t *testing.T) {
	m, err := lstm.NewModel(lstm.Config{VocabSize: 4, EmbedDim: 2, HiddenSize: 2, CellActivation: activation.Softsign}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(nil, Config{}); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := Analyze(m, Config{Scale: -5}); err == nil {
		t.Error("negative scale accepted")
	}
	if _, err := Analyze(m, Config{Scale: maxScale + 1}); err == nil {
		t.Error("huge scale accepted")
	}
	if _, err := Analyze(m, Config{SeqLen: -1}); err == nil {
		t.Error("negative seqlen accepted")
	}
}

// TestContains checks the fuzzer's containment primitive against a known
// stage.
func TestContains(t *testing.T) {
	m, err := lstm.NewModel(lstm.PaperConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if in, ok := rep.Contains(StageHiddenState, 0); !ok || !in {
		t.Fatalf("Contains(hidden, 0) = %v, %v; zero state must be inside", in, ok)
	}
	if _, ok := rep.Contains("no/such/stage", 0); ok {
		t.Fatal("unknown stage reported as known")
	}
	// The hidden state is bounded by ±1.0 at the working scale.
	if in, _ := rep.Contains(StageHiddenState, 2*fixed.DefaultScale); in {
		t.Fatal("value at 2.0 inside the hidden-state interval")
	}
}
